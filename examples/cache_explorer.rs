//! Cache explorer: sweep locality × cache size and compare the static
//! top-N cache against ScratchPipe's always-hit scratchpad — hit rates,
//! iteration times and the resulting speedup, printed as a heat map.
//!
//! ```bash
//! cargo run --release --example cache_explorer
//! ```

use systems::{run_system, ExperimentConfig, SystemKind};
use tracegen::LocalityProfile;

fn main() {
    let fractions = [0.02, 0.05, 0.10];
    let iterations = 8;

    println!("ScratchPipe speedup over the static top-N cache (paper-scale model)\n");
    print!("{:<10}", "locality");
    for f in fractions {
        print!("   cache {:>3.0}%", 100.0 * f);
    }
    println!();

    for profile in LocalityProfile::SWEEP {
        print!("{:<10}", profile.name());
        for fraction in fractions {
            let cfg = ExperimentConfig::paper(profile, fraction, iterations);
            let stat = run_system(SystemKind::StaticCache, &cfg).expect("static");
            let sp = run_system(SystemKind::ScratchPipe, &cfg).expect("scratchpipe");
            print!("   {:>9.2}x", sp.speedup_over(&stat));
        }
        println!();
    }

    println!("\nHit rates (static cache / ScratchPipe unique-ID):\n");
    print!("{:<10}", "locality");
    for f in fractions {
        print!("   cache {:>3.0}%  ", 100.0 * f);
    }
    println!();
    for profile in LocalityProfile::SWEEP {
        print!("{:<10}", profile.name());
        for fraction in fractions {
            let cfg = ExperimentConfig::paper(profile, fraction, iterations);
            let stat = run_system(SystemKind::StaticCache, &cfg).expect("static");
            let sp = run_system(SystemKind::ScratchPipe, &cfg).expect("scratchpipe");
            print!(
                "   {:>4.0}%/{:>4.0}%  ",
                100.0 * stat.hit_rate.unwrap_or(0.0),
                100.0 * sp.hit_rate.unwrap_or(0.0)
            );
        }
        println!();
    }

    println!(
        "\nReading the map: the static cache only approaches ScratchPipe when \
         locality is high AND the cache is large; ScratchPipe's advantage is \
         largest exactly where caching is hardest (paper Figures 6 and 13). \
         Note ScratchPipe *trains* every lookup at GPU speed regardless of \
         its unique-ID hit rate — misses are prefetched, never stalled on."
    );
}
