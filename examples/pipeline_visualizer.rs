//! Pipeline visualizer: render ScratchPipe's six-stage pipelined execution
//! as an ASCII Gantt chart (the paper's Figure 9/10, drawn from a real
//! simulated schedule), and contrast it with the straw-man's serialized
//! execution.
//!
//! ```bash
//! cargo run --release --example pipeline_visualizer
//! ```

use memsim::pipeline::{PipelineSim, Resource, StageDef, StageTimes};
use memsim::SimTime;

fn render(title: &str, sim: &PipelineSim, times: &[StageTimes], width: usize) {
    let sched = sim.schedule(times);
    println!("\n=== {title} ===");
    println!(
        "makespan {:.1} ms | steady-state iteration {:.1} ms",
        sched.makespan.as_millis(),
        sched.steady_state_iteration_time().as_millis()
    );
    let scale = width as f64 / sched.makespan.as_secs();
    for (s, def) in sim.stages().iter().enumerate() {
        let mut line = vec![b' '; width + 1];
        for slot in sched.slots.iter().filter(|sl| sl.stage == s) {
            let a = (slot.start.as_secs() * scale) as usize;
            let b = ((slot.finish.as_secs() * scale) as usize).min(width);
            let glyph = b"0123456789"[slot.iteration % 10];
            for c in &mut line[a..=b] {
                *c = glyph;
            }
        }
        println!(
            "{:<9} [{:<8}] |{}|",
            def.name,
            def.resource.to_string(),
            String::from_utf8(line).expect("ascii")
        );
    }
    for r in [Resource::Gpu, Resource::CpuMem, Resource::PcieH2D] {
        println!(
            "  {:<9} utilization {:>5.1}%",
            r.to_string(),
            100.0 * sched.utilization(r)
        );
    }
}

fn main() {
    // Representative steady-state stage latencies for a medium-locality
    // trace at a 2 % scratchpad (from the fig12b bench): the digits in the
    // chart are mini-batch indices mod 10.
    let ms = SimTime::from_millis;
    let stage_time = StageTimes(vec![
        ms(0.9),  // Plan       (GPU)
        ms(9.5),  // Collect    (CPU memory)
        ms(6.2),  // Exchange   (PCIe)
        ms(10.8), // Insert     (CPU memory)
        ms(20.5), // Train      (GPU)
    ]);
    let defs = vec![
        StageDef::new("Plan", Resource::Gpu),
        StageDef::new("Collect", Resource::CpuMem),
        StageDef::new("Exchange", Resource::PcieH2D),
        StageDef::new("Insert", Resource::CpuMem),
        StageDef::new("Train", Resource::Gpu),
    ];
    let n = 8;

    // ScratchPipe: stages of consecutive batches overlap.
    let pipelined = PipelineSim::new(defs.clone());
    render(
        "ScratchPipe (pipelined — paper Figure 10)",
        &pipelined,
        &vec![stage_time.clone(); n],
        100,
    );

    // Straw-man: same work, but each batch owns the whole machine until
    // it finishes (modeled by chaining every stage on one resource).
    let serial_defs: Vec<StageDef> = defs
        .iter()
        .map(|d| StageDef::new(d.name.clone(), Resource::Gpu))
        .collect();
    let strawman = PipelineSim::new(serial_defs);
    render(
        "Straw-man (sequential — paper §IV-B)",
        &strawman,
        &vec![stage_time; n],
        100,
    );

    println!(
        "\nThe pipelined schedule completes one mini-batch per max-stage time \
         (the red 'cycle' of Figure 7) instead of one per *sum* of stages — \
         that difference is the paper's 1.8x straw-man→ScratchPipe gain."
    );
}
