//! Cost advisor: given *your* RecSys workload shape, which training-system
//! design point should you deploy, and on which instance?
//!
//! Sweeps three representative deployment scenarios through every design
//! point (including the §VI-G multi-GPU ScratchPipe extension) and prints
//! a recommendation based on dollars per million iterations.
//!
//! ```bash
//! cargo run --release --example cost_advisor
//! ```

use memsim::{InstanceSpec, SystemSpec, TrainingCost};
use systems::report::TrainingSystem;
use systems::{run_system, ExperimentConfig, ModelShape, ScratchPipeMultiGpu, SystemKind};
use tracegen::{LocalityProfile, TraceGenerator};

struct Scenario {
    name: &'static str,
    shape: ModelShape,
    profile: LocalityProfile,
}

fn main() {
    let iters = 8;
    let scenarios = [
        Scenario {
            name: "Content filtering (small model, head-heavy traffic)",
            shape: ModelShape::paper_with_lookups(1),
            profile: LocalityProfile::High,
        },
        Scenario {
            name: "CTR ranking (paper default)",
            shape: ModelShape::paper_default(),
            profile: LocalityProfile::Medium,
        },
        Scenario {
            name: "Cold-start heavy marketplace (long-tail traffic)",
            shape: ModelShape::paper_with_lookups(50),
            profile: LocalityProfile::Low,
        },
    ];

    for sc in scenarios {
        println!("\n=== {} ===", sc.name);
        println!(
            "    {} tables x {}M rows, {} lookups/table, {} locality",
            sc.shape.num_tables,
            sc.shape.rows_per_table / 1_000_000,
            sc.shape.lookups_per_sample,
            sc.profile.name()
        );
        let mut cfg = ExperimentConfig::paper(sc.profile, 0.02, iters);
        cfg.shape = sc.shape.clone();

        let mut options: Vec<(String, f64, f64)> = Vec::new(); // (label, ms, $)
        for (kind, instance) in [
            (SystemKind::Hybrid, InstanceSpec::p3_2xlarge()),
            (SystemKind::StaticCache, InstanceSpec::p3_2xlarge()),
            (SystemKind::ScratchPipe, InstanceSpec::p3_2xlarge()),
            (SystemKind::MultiGpu8, InstanceSpec::p3_16xlarge()),
        ] {
            let r = run_system(kind, &cfg).expect("simulation");
            let cost = TrainingCost::per_million_iterations(instance.clone(), r.iteration_time);
            options.push((
                format!("{} on {}", r.system, instance.name),
                r.iteration_time.as_millis(),
                cost.total_usd,
            ));
        }
        // The §VI-G extension.
        {
            let mut multi = ScratchPipeMultiGpu::new(
                cfg.shape.clone(),
                cfg.cache_fraction,
                SystemSpec::p3_16xlarge(),
            );
            let slots = multi.slots_per_table() as u64;
            let gen = TraceGenerator::new(cfg.shape.trace_config(cfg.profile, cfg.seed));
            let hot: Vec<Vec<u64>> = (0..cfg.shape.num_tables)
                .map(|t| gen.hot_rows(t, slots))
                .collect();
            multi = multi.with_prewarm(hot);
            let r = multi.simulate(&cfg.batches()).expect("multi-GPU SP");
            let cost =
                TrainingCost::per_million_iterations(InstanceSpec::p3_16xlarge(), r.iteration_time);
            options.push((
                format!("{} on p3.16xlarge", r.system),
                r.iteration_time.as_millis(),
                cost.total_usd,
            ));
        }

        println!(
            "    {:<42} {:>10} {:>12}",
            "design point", "iter (ms)", "$/1M iters"
        );
        for (label, ms, usd) in &options {
            println!("    {label:<42} {ms:>10.2} {usd:>11.2}$");
        }
        let best = options
            .iter()
            .min_by(|a, b| a.2.partial_cmp(&b.2).expect("finite"))
            .expect("non-empty");
        println!(
            "    -> cheapest: {} (${:.2} per 1M iterations)",
            best.0, best.2
        );
    }
    println!(
        "\nAcross every scenario the single-GPU ScratchPipe node is the cost \
         leader — the paper's thesis, and §VI-G's prediction that scaling \
         ScratchPipe out does not pay."
    );
}
