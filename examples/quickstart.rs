//! Quickstart: train a small DLRM through the ScratchPipe runtime and
//! verify that the pipelined execution performed *exactly* the same SGD as
//! plain sequential training.
//!
//! ```bash
//! cargo run --release --example quickstart
//! ```

use scratchpipe::runtime::train_direct;
use scratchpipe::{Pipeline, PipelineConfig, Schedule};
use systems::DlrmBackend;
use tracegen::{LocalityProfile, TraceConfig, TraceGenerator};

fn main() {
    // 1. A small workload: 4 tables × 20k rows, batch 64, medium locality.
    let trace_cfg = TraceConfig {
        num_tables: 4,
        rows_per_table: 20_000,
        lookups_per_sample: 8,
        batch_size: 64,
        profile: LocalityProfile::Medium,
        seed: 42,
    };
    let dlrm_cfg = dlrm::DlrmConfig::tiny_with_tables(4);
    let dim = dlrm_cfg.emb_dim;
    let iterations = 50;
    let batches = TraceGenerator::new(trace_cfg).take_batches(iterations);
    println!(
        "Workload: {} tables x {} rows, dim {dim}, {} iterations of batch {}",
        trace_cfg.num_tables, trace_cfg.rows_per_table, iterations, trace_cfg.batch_size
    );

    // 2. Reference: sequential training straight on the CPU tables.
    let make_tables = || -> Vec<embeddings::EmbeddingTable> {
        (0..trace_cfg.num_tables)
            .map(|t| {
                embeddings::EmbeddingTable::seeded(trace_cfg.rows_per_table as usize, dim, t as u64)
            })
            .collect()
    };
    let mut reference = make_tables();
    let mut ref_backend = DlrmBackend::new(&dlrm_cfg, 0.05, 7);
    let ref_losses = train_direct(&mut reference, &batches, &mut ref_backend);

    // 3. ScratchPipe: a 2 000-slot scratchpad per table (10 % of each
    //    table), six-stage pipelined execution, always-hit guarantee.
    let config = PipelineConfig::functional(dim, 2_000);
    let mut runtime = Pipeline::builder()
        .config(config)
        .tables(make_tables())
        .backend(DlrmBackend::new(&dlrm_cfg, 0.05, 7))
        .schedule(Schedule::Sync)
        .build()
        .expect("pipeline");
    let report = runtime.run(&batches).expect("pipelined training");

    println!(
        "\nScratchPipe: hit rate {:.1}% | loss {:.4} -> {:.4} | peak held slots {:?}",
        100.0 * report.hit_rate(),
        report.records.first().map(|r| r.loss).unwrap_or(0.0),
        report.records.last().map(|r| r.loss).unwrap_or(0.0),
        report.peak_held_slots,
    );

    // 4. The paper's correctness claim, verified bit-for-bit.
    let trained = runtime.into_tables();
    for (t, (a, b)) in reference.iter().zip(&trained).enumerate() {
        assert!(
            a.bit_eq(b),
            "table {t} diverged — this should be impossible"
        );
    }
    for (a, b) in ref_losses.iter().zip(report.records.iter().map(|r| r.loss)) {
        assert_eq!(a.to_bits(), b.to_bits(), "losses diverged");
    }
    println!(
        "\nVerified: pipelined ScratchPipe training is bit-identical to \
         sequential SGD across {} tables and {} iterations.",
        trained.len(),
        iterations
    );
}
