//! CTR-model training end to end: train a DLRM on a synthetic
//! click-through workload with a *learnable* structure, monitor the loss,
//! and compare the wall-clock/cost projections of every system design
//! point for the same job.
//!
//! The synthetic labels follow a planted rule (a sample is a "click" when
//! its hottest-table row is in the popular head), so a working training
//! loop must drive the loss below the 0.693 coin-flip baseline.
//!
//! ```bash
//! cargo run --release --example ctr_training
//! ```

use dlrm::DlrmModel;
use embeddings::{ops, EmbeddingTable, SparseBatch};
use memsim::{InstanceSpec, TrainingCost};
use systems::{run_system, ExperimentConfig, SystemKind};
use tracegen::{LocalityProfile, TraceConfig, TraceGenerator};

fn main() {
    // ---- Functional part: actually learn something. ----
    let trace_cfg = TraceConfig {
        num_tables: 2,
        rows_per_table: 5_000,
        lookups_per_sample: 4,
        batch_size: 128,
        profile: LocalityProfile::High,
        seed: 9,
    };
    let dlrm_cfg = dlrm::DlrmConfig::tiny_with_tables(2);
    let dim = dlrm_cfg.emb_dim;
    let gen = TraceGenerator::new(trace_cfg);
    let hot_oracle = gen.hot_oracle();
    let batches = gen.take_batches(120);

    let mut tables: Vec<EmbeddingTable> = (0..trace_cfg.num_tables)
        .map(|t| EmbeddingTable::seeded(trace_cfg.rows_per_table as usize, dim, t as u64))
        .collect();
    let mut model = DlrmModel::seeded(&dlrm_cfg, 3);

    // Planted rule: click ⇔ the sample's first lookup in table 0 is a
    // top-500 row. The embedding layer must learn to separate hot rows.
    let labels_for = |batch: &SparseBatch| -> Vec<f32> {
        (0..batch.batch_size())
            .map(|s| f32::from(hot_oracle.is_hot(0, batch.bag(0).sample(s)[0], 500)))
            .collect()
    };

    let lr = 0.1;
    let mut first_losses = Vec::new();
    let mut last_losses = Vec::new();
    // Flat pooled/gradient arenas (num_tables × batch × dim), allocated
    // once and refilled every iteration — the same layout the ScratchPipe
    // [Train] stage uses.
    let stride = trace_cfg.batch_size * dim;
    let mut pooled = vec![0.0f32; trace_cfg.num_tables * stride];
    let mut grads = vec![0.0f32; pooled.len()];
    let mut scratch = dlrm::DlrmScratch::new();
    for (i, batch) in batches.iter().enumerate() {
        for (t, bag) in batch.bags() {
            ops::gather_reduce_into(
                &tables[t],
                bag,
                |id| id as usize,
                &mut pooled[t * stride..(t + 1) * stride],
            );
        }
        let dense = vec![0.0f32; batch.batch_size() * dlrm_cfg.dense_dim];
        let labels = labels_for(batch);
        let out = model.train_step_with(&mut scratch, &dense, &pooled, &labels, lr, &mut grads);
        for (t, bag) in batch.bags() {
            ops::embedding_backward(
                &mut tables[t],
                bag,
                &grads[t * stride..(t + 1) * stride],
                lr,
            );
        }
        if i < 10 {
            first_losses.push(out.loss);
        }
        if i >= batches.len() - 10 {
            last_losses.push(out.loss);
        }
    }
    let mean = |v: &[f32]| v.iter().sum::<f32>() / v.len() as f32;
    let (first, last) = (mean(&first_losses), mean(&last_losses));
    println!("CTR training: BCE loss {first:.4} (start) -> {last:.4} (end)");
    assert!(
        last < first && last < 0.60,
        "model failed to learn the planted rule"
    );
    println!("The model learned the planted popularity rule (coin-flip = 0.693).\n");

    // ---- Systems part: what would this job cost at production scale? ----
    println!("Projected production run (paper-scale model, 1M iterations):");
    println!(
        "{:<18} {:>12} {:>14} {:>12}",
        "system", "iter (ms)", "instance", "cost"
    );
    for (kind, instance) in [
        (SystemKind::Hybrid, InstanceSpec::p3_2xlarge()),
        (SystemKind::StaticCache, InstanceSpec::p3_2xlarge()),
        (SystemKind::ScratchPipe, InstanceSpec::p3_2xlarge()),
        (SystemKind::MultiGpu8, InstanceSpec::p3_16xlarge()),
    ] {
        let cfg = ExperimentConfig::paper(LocalityProfile::High, 0.02, 8);
        let report = run_system(kind, &cfg).expect("simulation");
        let cost = TrainingCost::per_million_iterations(instance, report.iteration_time);
        println!(
            "{:<18} {:>12.2} {:>14} {:>11.2}$",
            report.system,
            report.iteration_time.as_millis(),
            cost.instance.name,
            cost.total_usd
        );
    }
    println!(
        "\nScratchPipe delivers near-GPU-only iteration times at one-eighth \
         of the instance price (paper Table I)."
    );
}
