//! Driver equivalence — one driver, interchangeable schedules.
//!
//! The [`Pipeline`] drives the same five [`Stage`](scratchpipe::Stage)
//! implementors under every [`Schedule`]; this suite pins down that the
//! synchronous register schedule, the per-stage-thread schedule and the
//! intra-stage data-parallel schedule are
//! observably *identical*: bit-identical tables, and
//! [`PipelineReport`]s whose JSON serializations match byte-for-byte
//! (records, losses, per-stage traffic, flush traffic, peak held slots).
//!
//! This subsumes the old sync-vs-threaded stage-parity suite: report
//! equality is checked wholesale through the serde path rather than
//! field-by-field, so a new report field is covered the day it is added.

use embeddings::EmbeddingTable;
use scratchpipe::{Pipeline, PipelineConfig, PipelineReport, Schedule, UnitBackend};
use systems::DlrmBackend;
use tracegen::{LocalityProfile, TraceConfig, TraceGenerator};

fn make_tables(num: usize, rows: usize, dim: usize, seed0: u64) -> Vec<EmbeddingTable> {
    (0..num)
        .map(|t| EmbeddingTable::seeded(rows, dim, seed0 + t as u64))
        .collect()
}

/// Reports must agree on *everything*, including float bit patterns —
/// the serde JSON path preserves both (shortest-round-trip floats), so
/// string equality is the strongest practical whole-report comparison.
fn assert_reports_identical(sync: &PipelineReport, threaded: &PipelineReport, label: &str) {
    let a = serde_json::to_string(sync).expect("serialize sync report");
    let b = serde_json::to_string(threaded).expect("serialize threaded report");
    assert_eq!(a, b, "{label}: reports diverged");
    // Belt and braces: loss bit patterns, independent of the JSON path.
    for (s, t) in sync.records.iter().zip(&threaded.records) {
        assert_eq!(
            s.loss.to_bits(),
            t.loss.to_bits(),
            "{label}: loss bits diverged at iteration {}",
            s.index
        );
    }
}

#[test]
fn sync_and_threaded_schedules_agree_on_tables_and_reports() {
    for profile in [
        LocalityProfile::Random,
        LocalityProfile::Medium,
        LocalityProfile::High,
    ] {
        let tc = TraceConfig {
            num_tables: 3,
            rows_per_table: 400,
            lookups_per_sample: 4,
            batch_size: 8,
            profile,
            seed: 77,
        };
        let batches = TraceGenerator::new(tc).take_batches(30);
        let dim = 8;
        // §VI-D worst case: 6 windowed batches × 8 × 4 = 192 held rows.
        let config = PipelineConfig::functional(dim, 192);

        let run = |schedule: Schedule| {
            let mut rt = Pipeline::builder()
                .config(config.clone())
                .tables(make_tables(3, 400, dim, 9000))
                .backend(UnitBackend::new(0.05))
                .schedule(schedule)
                .parallelism(4)
                .build()
                .expect("pipeline");
            let report = rt.run(&batches).expect("run");
            (report, rt.into_tables())
        };
        let (sync_report, sync_tables) = run(Schedule::Sync);
        for schedule in [Schedule::Threaded, Schedule::DataParallel] {
            let (other_report, other_tables) = run(schedule);
            for (t, (a, b)) in sync_tables.iter().zip(&other_tables).enumerate() {
                assert!(
                    a.bit_eq(b),
                    "{profile:?}/{}: table {t} diverged at row {:?}",
                    schedule.name(),
                    a.first_diff_row(b)
                );
            }
            assert_reports_identical(
                &sync_report,
                &other_report,
                &format!("{profile:?}/{}", schedule.name()),
            );
        }
    }
}

#[test]
fn schedule_equivalence_holds_with_full_dlrm_backend() {
    // The Train stage's traffic includes the dense backend's contribution;
    // run both schedules with the real DLRM backend to cover it.
    let tc = TraceConfig {
        num_tables: 2,
        rows_per_table: 300,
        lookups_per_sample: 4,
        batch_size: 8,
        profile: LocalityProfile::Medium,
        seed: 5,
    };
    let batches = TraceGenerator::new(tc).take_batches(15);
    let dlrm_cfg = dlrm::DlrmConfig::tiny_with_tables(2);
    let dim = dlrm_cfg.emb_dim;
    let config = PipelineConfig::functional(dim, 192);

    let run = |schedule: Schedule| {
        let mut rt = Pipeline::builder()
            .config(config.clone())
            .tables(make_tables(2, 300, dim, 40))
            .backend(DlrmBackend::new(&dlrm_cfg, 0.05, 7))
            .schedule(schedule)
            .parallelism(3)
            .build()
            .expect("pipeline");
        let report = rt.run(&batches).expect("run");
        (report, rt.into_tables())
    };
    let (sync_report, sync_tables) = run(Schedule::Sync);
    for schedule in [Schedule::Threaded, Schedule::DataParallel] {
        let (other_report, other_tables) = run(schedule);
        for (a, b) in sync_tables.iter().zip(&other_tables) {
            assert!(a.bit_eq(b), "{} diverged", schedule.name());
        }
        assert_reports_identical(&sync_report, &other_report, schedule.name());
    }
}

#[test]
fn auto_schedule_matches_both_fixed_schedules() {
    // Whatever `Auto` resolves to, the observable results must be the
    // common result of the fixed schedules.
    let tc = TraceConfig {
        num_tables: 3,
        rows_per_table: 400,
        lookups_per_sample: 4,
        batch_size: 8,
        profile: LocalityProfile::Medium,
        seed: 31,
    };
    let batches = TraceGenerator::new(tc).take_batches(20);
    let config = PipelineConfig::functional(8, 192);
    let run = |schedule: Schedule| {
        let mut rt = Pipeline::builder()
            .config(config.clone())
            .tables(make_tables(3, 400, 8, 500))
            .backend(UnitBackend::new(0.05))
            .schedule(schedule)
            .build()
            .expect("pipeline");
        let report = rt.run(&batches).expect("run");
        (report, rt.into_tables())
    };
    let (auto_report, auto_tables) = run(Schedule::Auto);
    let (sync_report, sync_tables) = run(Schedule::Sync);
    for (a, b) in auto_tables.iter().zip(&sync_tables) {
        assert!(a.bit_eq(b));
    }
    assert_reports_identical(&sync_report, &auto_report, "auto");
}
