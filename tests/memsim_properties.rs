//! Property tests of the timing substrate: the pipeline scheduler must
//! respect conservation laws for *arbitrary* stage geometries, and every
//! report type must survive serde round-trips (reports are the artifact
//! the bench harness persists).

use memsim::pipeline::{PipelineSim, Resource, StageDef, StageTimes};
use memsim::{CostModel, SimTime, SystemSpec, Traffic};
use proptest::prelude::*;

fn arb_resource() -> impl Strategy<Value = Resource> {
    prop_oneof![
        Just(Resource::CpuMem),
        Just(Resource::Gpu),
        Just(Resource::PcieH2D),
        Just(Resource::PcieD2H),
        Just(Resource::Host),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Makespan lower bounds: no schedule can beat either the critical
    /// path of one iteration or the total work queued on any resource.
    #[test]
    fn schedule_respects_lower_bounds(
        resources in proptest::collection::vec(arb_resource(), 1..6),
        durations in proptest::collection::vec(
            proptest::collection::vec(1u32..50, 1..6), 1..30),
    ) {
        let stages: Vec<StageDef> = resources
            .iter()
            .enumerate()
            .map(|(i, &r)| StageDef::new(format!("s{i}"), r))
            .collect();
        let s = stages.len();
        let sim = PipelineSim::new(stages);
        let iters: Vec<StageTimes> = durations
            .iter()
            .map(|d| {
                StageTimes(
                    (0..s)
                        .map(|i| SimTime::from_millis(d[i % d.len()] as f64))
                        .collect(),
                )
            })
            .collect();
        let sched = sim.schedule(&iters);

        // Bound 1: longest single iteration (its stages are serialized by
        // data dependence).
        let critical = iters
            .iter()
            .map(StageTimes::total)
            .fold(SimTime::ZERO, SimTime::max);
        prop_assert!(sched.makespan + SimTime::from_micros(1.0) >= critical);

        // Bound 2: per-resource total work.
        for r in Resource::ALL {
            let work: SimTime = iters
                .iter()
                .flat_map(|it| {
                    it.0.iter()
                        .zip(sim.stages())
                        .filter(move |(_, def)| def.resource == r)
                        .map(|(t, _)| *t)
                })
                .sum();
            prop_assert!(
                sched.makespan + SimTime::from_micros(1.0) >= work,
                "resource {} work {} exceeds makespan {}", r, work, sched.makespan
            );
            // Busy-time accounting must equal queued work exactly.
            let busy = sched.resource_busy[r.index()];
            prop_assert!((busy.as_secs() - work.as_secs()).abs() < 1e-9);
        }

        // Completions are monotone (FIFO stages).
        for w in sched.iteration_finish.windows(2) {
            prop_assert!(w[0] <= w[1]);
        }
        // Every stage instance was scheduled exactly once.
        prop_assert_eq!(sched.slots.len(), iters.len() * s);
    }

    /// Stage time from the cost model is monotone in traffic: adding bytes
    /// anywhere can never make a stage faster.
    #[test]
    fn cost_model_is_monotone(
        base_bytes in 0u64..(1 << 28),
        extra in 0u64..(1 << 28),
    ) {
        let m = CostModel::new(SystemSpec::isca_paper());
        let t0 = Traffic {
            cpu_random_read_bytes: base_bytes,
            gpu_stream_write_bytes: base_bytes / 2,
            pcie_h2d_bytes: base_bytes / 4,
            ..Traffic::default()
        };
        let mut t1 = t0;
        t1.cpu_random_read_bytes += extra;
        prop_assert!(m.traffic_time(&t1) >= m.traffic_time(&t0));
        let mut t2 = t0;
        t2.gpu_random_write_bytes += extra;
        prop_assert!(m.traffic_time(&t2) >= m.traffic_time(&t0));
        // Serialized time dominates overlapped time.
        prop_assert!(m.serialized_time(&t0) >= m.traffic_time(&t0));
    }
}

#[test]
fn reports_round_trip_through_serde() {
    // SystemReport / Schedule / Traffic are persisted by the bench
    // harness; a round-trip must preserve them.
    let cfg = systems::ExperimentConfig::scaled_down(tracegen::LocalityProfile::Medium, 0.1, 5);
    let report = systems::run_system(systems::SystemKind::ScratchPipe, &cfg).expect("run");
    let json = serde_json::to_string(&report).expect("serialize");
    let back: systems::SystemReport = serde_json::from_str(&json).expect("deserialize");
    assert_eq!(back.system, report.system);
    assert_eq!(back.iterations, report.iterations);
    assert_eq!(back.stage_names, report.stage_names);
    assert_eq!(
        back.iteration_time.as_secs().to_bits(),
        report.iteration_time.as_secs().to_bits()
    );
    assert_eq!(back.hit_rate, report.hit_rate);
}
