//! Flat-arena vs per-row reference: property tests pinning the
//! stride-indexed gather→reduce→scatter path (the hot path after the
//! buffer-flattening refactor) against the old per-row `Vec<Vec<f32>>`
//! implementation, preserved here as a test-only reference before the
//! production copy was deleted.
//!
//! Floating-point addition is not associative, so the assertions are
//! **bitwise**: the flat path must perform the same additions in the same
//! order as the row-at-a-time reference.

use embeddings::store::DenseStore;
use embeddings::{ops, EmbeddingTable, TableBag, VectorStore};
use proptest::prelude::*;
use scratchpipe::{stages, TablePlan};

const ROWS: u64 = 32;
const DIM: usize = 4;

/// The old per-row forward: gather every looked-up row into its own
/// `Vec<f32>`, then sum-pool per sample in bag order.
fn reference_gather_reduce(table: &EmbeddingTable, bag: &TableBag) -> Vec<f32> {
    let dim = table.dim();
    let mut out = Vec::new();
    for sample in bag.samples() {
        let rows: Vec<Vec<f32>> = sample
            .iter()
            .map(|&id| table.row(id as usize).to_vec())
            .collect();
        let mut acc = vec![0.0f32; dim];
        for row in &rows {
            for (a, v) in acc.iter_mut().zip(row) {
                *a += v;
            }
        }
        out.extend_from_slice(&acc);
    }
    out
}

/// The old per-row backward: duplicate each sample's gradient into one
/// `Vec<f32>` per lookup, coalesce duplicates by stable sort (ties in
/// occurrence order), and scatter-update with SGD.
fn reference_backward(table: &mut EmbeddingTable, bag: &TableBag, grads: &[f32], lr: f32) {
    let dim = table.dim();
    let mut per_lookup: Vec<(u64, Vec<f32>)> = Vec::new();
    for (s, sample) in bag.samples().enumerate() {
        let g = grads[s * dim..(s + 1) * dim].to_vec();
        for &id in sample {
            per_lookup.push((id, g.clone()));
        }
    }
    let mut order: Vec<usize> = (0..per_lookup.len()).collect();
    order.sort_by_key(|&i| per_lookup[i].0); // stable
    let mut unique: Vec<u64> = Vec::new();
    let mut sums: Vec<Vec<f32>> = Vec::new();
    for &i in &order {
        let (id, g) = &per_lookup[i];
        if unique.last() == Some(id) {
            let acc = sums.last_mut().expect("non-empty with last id");
            for (a, v) in acc.iter_mut().zip(g) {
                *a += v;
            }
        } else {
            unique.push(*id);
            sums.push(g.clone());
        }
    }
    for (id, g) in unique.iter().zip(&sums) {
        let row = table.row_mut(*id as usize);
        for (w, v) in row.iter_mut().zip(g) {
            *w -= lr * v;
        }
    }
}

fn arb_bag() -> impl Strategy<Value = TableBag> {
    let sample = proptest::collection::vec(0u64..ROWS, 0..6);
    proptest::collection::vec(sample, 1..5).prop_map(|samples| TableBag::from_samples(&samples))
}

/// A scrambled id → slot permutation plus a scratchpad holding each row's
/// data at its assigned slot — the \[Train\] stage's indirection. The
/// plan carries the deduplicated flat layout: sorted `unique_ids`,
/// aligned `unique_slots`, and (once [`stages::index_lookups`] runs) the
/// per-lookup index into them.
fn scrambled_scratchpad(table: &EmbeddingTable) -> (TablePlan, DenseStore) {
    let mut plan = TablePlan::default();
    let mut store = DenseStore::zeros(ROWS as usize, DIM);
    for id in 0..ROWS {
        let slot = ((id * 7 + 3) % ROWS) as u32; // 7 ⊥ 32 → permutation
        plan.unique_ids.push(id);
        plan.unique_slots.push(slot);
        store.copy_row_from(slot as usize, table, id as usize);
    }
    (plan, store)
}

fn deterministic_grads(bag: &TableBag) -> Vec<f32> {
    (0..bag.batch_size() * DIM)
        .map(|i| (i % 7) as f32 * 0.25 - 0.75)
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// Forward: `gather_reduce_into` over the flat arena matches the
    /// per-row reference bit for bit, for arbitrary bags (duplicates,
    /// empty samples and all).
    #[test]
    fn flat_gather_reduce_matches_per_row_reference(bag in arb_bag()) {
        let table = EmbeddingTable::seeded(ROWS as usize, DIM, 11);
        let expect = reference_gather_reduce(&table, &bag);
        let mut flat = vec![f32::NAN; bag.batch_size() * DIM]; // dirty arena
        ops::gather_reduce_into(&table, &bag, |id| id as usize, &mut flat);
        for (i, (a, b)) in expect.iter().zip(&flat).enumerate() {
            prop_assert_eq!(a.to_bits(), b.to_bits(), "element {}", i);
        }
    }

    /// Backward: the flat duplicate→coalesce→scatter matches the per-row
    /// reference bit for bit on the updated table.
    #[test]
    fn flat_backward_matches_per_row_reference(bag in arb_bag()) {
        let grads = deterministic_grads(&bag);
        let mut expect = EmbeddingTable::seeded(ROWS as usize, DIM, 23);
        let mut flat = expect.clone();
        reference_backward(&mut expect, &bag, &grads, 0.125);
        ops::embedding_backward(&mut flat, &bag, &grads, 0.125);
        prop_assert!(
            expect.bit_eq(&flat),
            "diverged at row {:?}",
            expect.first_diff_row(&flat)
        );
    }

    /// The full stage-kernel round trip through a *scrambled* scratchpad
    /// (the real \[Train\] indirection): gather through the plan's
    /// id→slot map into a flat pooled slice, scatter gradients back, and
    /// compare every row against the identity-mapped reference table.
    #[test]
    fn stage_kernels_match_reference_through_slot_indirection(bag in arb_bag()) {
        let table = EmbeddingTable::seeded(ROWS as usize, DIM, 31);
        let (mut plan, mut store) = scrambled_scratchpad(&table);
        stages::index_lookups(&mut plan, &bag);

        // Forward through the slot indirection.
        let expect_pooled = reference_gather_reduce(&table, &bag);
        let mut pooled = vec![0.0f32; bag.batch_size() * DIM];
        stages::gather_pooled(&store, &bag, &plan, &mut pooled);
        for (a, b) in expect_pooled.iter().zip(&pooled) {
            prop_assert_eq!(a.to_bits(), b.to_bits());
        }

        // Backward through the slot indirection.
        let grads = deterministic_grads(&bag);
        let mut expect_table = table.clone();
        reference_backward(&mut expect_table, &bag, &grads, 0.125);
        stages::scatter_grads(&mut store, &bag, &grads, 0.125, &plan);
        for id in 0..ROWS {
            let slot = plan.slot_of(id).expect("permutation covers every id") as usize;
            let expect_row = expect_table.row(id as usize);
            let got_row = store.row(slot);
            for (a, b) in expect_row.iter().zip(got_row) {
                prop_assert_eq!(a.to_bits(), b.to_bits(), "row {}", id);
            }
        }
    }
}
