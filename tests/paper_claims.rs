//! End-to-end checks of the paper's quantitative claims, at reduced
//! iteration counts so they stay cheap. The full-resolution numbers are
//! produced by the `sp-bench` binaries and recorded in `EXPERIMENTS.md`.
//!
//! Paper-scale claims run the 10 M-row cache simulators; they are compiled
//! always but executed only under `--release`
//! (`cfg_attr(debug_assertions, ignore)`), matching how the figures are
//! generated.

use memsim::{InstanceSpec, TrainingCost};
use systems::{run_system, ExperimentConfig, SystemKind};
use tracegen::LocalityProfile;

const QUICK_ITERS: usize = 8;

#[test]
#[cfg_attr(debug_assertions, ignore = "paper-scale: run with --release")]
fn headline_speedup_vs_static_cache() {
    // Paper abstract: avg 2.8× (max 4.2×) vs static caching.
    let mut speedups = Vec::new();
    for profile in LocalityProfile::SWEEP {
        for fraction in [0.02, 0.06, 0.10] {
            let cfg = ExperimentConfig::paper(profile, fraction, QUICK_ITERS);
            let sp = run_system(SystemKind::ScratchPipe, &cfg).expect("sp");
            let st = run_system(SystemKind::StaticCache, &cfg).expect("static");
            speedups.push(sp.speedup_over(&st));
        }
    }
    let avg = speedups.iter().sum::<f64>() / speedups.len() as f64;
    let max = speedups.iter().cloned().fold(0.0f64, f64::max);
    assert!((2.0..3.8).contains(&avg), "avg speedup {avg}");
    assert!((2.8..5.0).contains(&max), "max speedup {max}");
    assert!(speedups.iter().all(|&s| s > 1.3), "{speedups:?}");
}

#[test]
#[cfg_attr(debug_assertions, ignore = "paper-scale: run with --release")]
fn headline_speedup_vs_hybrid() {
    // Paper abstract: avg 5.1× (max 6.6×) vs the no-cache hybrid.
    let mut speedups = Vec::new();
    for profile in LocalityProfile::SWEEP {
        let cfg = ExperimentConfig::paper(profile, 0.02, QUICK_ITERS);
        let sp = run_system(SystemKind::ScratchPipe, &cfg).expect("sp");
        let hy = run_system(SystemKind::Hybrid, &cfg).expect("hybrid");
        speedups.push(sp.speedup_over(&hy));
    }
    let avg = speedups.iter().sum::<f64>() / speedups.len() as f64;
    assert!((3.5..7.0).contains(&avg), "avg {avg} ({speedups:?})");
}

#[test]
#[cfg_attr(debug_assertions, ignore = "paper-scale: run with --release")]
fn table1_iteration_times_and_costs() {
    // Table I bands: ScratchPipe 26–48 ms, 8-GPU 16–19 ms; cost saving
    // avg 4.0× (max 5.7×).
    let mut savings = Vec::new();
    for profile in LocalityProfile::SWEEP {
        let cfg = ExperimentConfig::paper(profile, 0.02, QUICK_ITERS);
        let sp = run_system(SystemKind::ScratchPipe, &cfg).expect("sp");
        let mg = run_system(SystemKind::MultiGpu8, &cfg).expect("mg");
        let sp_ms = sp.iteration_time.as_millis();
        let mg_ms = mg.iteration_time.as_millis();
        assert!((18.0..62.0).contains(&sp_ms), "{profile}: sp {sp_ms} ms");
        assert!((10.0..26.0).contains(&mg_ms), "{profile}: 8-GPU {mg_ms} ms");
        let sp_cost =
            TrainingCost::per_million_iterations(InstanceSpec::p3_2xlarge(), sp.iteration_time);
        let mg_cost =
            TrainingCost::per_million_iterations(InstanceSpec::p3_16xlarge(), mg.iteration_time);
        savings.push(mg_cost.total_usd / sp_cost.total_usd);
    }
    let avg = savings.iter().sum::<f64>() / savings.len() as f64;
    assert!((2.5..6.5).contains(&avg), "avg cost saving {avg}");
    // More savings with higher locality (paper's trend).
    assert!(savings[3] > savings[0], "{savings:?}");
}

#[test]
#[cfg_attr(debug_assertions, ignore = "paper-scale: run with --release")]
fn figure12b_bottleneck_flips_with_locality() {
    // Train-bound at high locality, CPU-bound (Collect+Insert) at random.
    let cfg = ExperimentConfig::paper(LocalityProfile::High, 0.10, QUICK_ITERS);
    let r = run_system(SystemKind::ScratchPipe, &cfg).expect("sp");
    assert!(r.breakdown[4].1 > r.breakdown[1].1 + r.breakdown[3].1);

    let cfg = ExperimentConfig::paper(LocalityProfile::Random, 0.02, QUICK_ITERS);
    let r = run_system(SystemKind::ScratchPipe, &cfg).expect("sp");
    assert!(r.breakdown[1].1 + r.breakdown[3].1 > r.breakdown[4].1);
}

#[test]
#[cfg_attr(debug_assertions, ignore = "paper-scale: run with --release")]
fn figure14_energy_ratio_tracks_time_ratio() {
    for profile in [LocalityProfile::Random, LocalityProfile::High] {
        let cfg = ExperimentConfig::paper(profile, 0.02, QUICK_ITERS);
        let sp = run_system(SystemKind::ScratchPipe, &cfg).expect("sp");
        let st = run_system(SystemKind::StaticCache, &cfg).expect("static");
        let time_ratio = st.iteration_time / sp.iteration_time;
        let energy_ratio =
            st.energy_per_iteration.total_joules() / sp.energy_per_iteration.total_joules();
        assert!(
            (energy_ratio / time_ratio - 1.0).abs() < 0.5,
            "{profile}: energy {energy_ratio} vs time {time_ratio}"
        );
        // Absolute scale: tens of Joules per iteration (paper's 0–80 J axis).
        let j = st.energy_per_iteration.total_joules();
        assert!((5.0..120.0).contains(&j), "{profile}: static {j} J");
    }
}

#[test]
fn pipelining_beats_serial_cache_management_at_any_scale() {
    // Scale-independent claim: for identical cache decisions, overlapping
    // the stages can only shorten the iteration (Figure 7). The *system*
    // ordering vs the hybrid baseline is a paper-scale property (small
    // models are per-op-overhead-bound, where caching does not pay) and is
    // asserted by the release-only tests above.
    let cfg = ExperimentConfig::scaled_down(LocalityProfile::Medium, 0.1, 10);
    let sp = run_system(SystemKind::ScratchPipe, &cfg).expect("sp");
    let straw = run_system(SystemKind::StrawMan, &cfg).expect("straw");
    assert!(sp.iteration_time < straw.iteration_time);
}
