//! Dedup-correctness: the deduplicated Train kernels (gather through the
//! `lookup_unique → unique_slots` indirection, coalesce-into-buckets
//! backward) must be **bit-identical** to the pre-dedup reference — the
//! hash-mapped `gather_reduce_into` / `embedding_backward_mapped` pair
//! that paid a probe per raw lookup and materialized a per-lookup
//! duplicate buffer.
//!
//! Exercised at widths {1, 2, 4} through a scrambled slot permutation,
//! over arbitrary bags (duplicate-heavy, empty samples and all), plus the
//! sample-range sharding the DataParallel schedule uses.

use embeddings::store::DenseStore;
use embeddings::{ops, EmbeddingTable, TableBag, VectorStore};
use proptest::prelude::*;
use scratchpipe::{stages, TablePlan};

const ROWS: u64 = 48;

fn arb_bag() -> impl Strategy<Value = TableBag> {
    // Small ID domain → heavy intra-batch duplication, the case dedup
    // exists for.
    let sample = proptest::collection::vec(0u64..ROWS, 0..8);
    proptest::collection::vec(sample, 1..6).prop_map(|samples| TableBag::from_samples(&samples))
}

/// A scrambled id → slot permutation as a dedup-layout [`TablePlan`],
/// plus a store holding each row's data at its assigned slot.
fn scrambled_plan(table: &EmbeddingTable, bag: &TableBag, dim: usize) -> (TablePlan, DenseStore) {
    let mut plan = TablePlan::default();
    let mut store = DenseStore::zeros(ROWS as usize, dim);
    for id in 0..ROWS {
        let slot = ((id * 11 + 5) % ROWS) as u32; // 11 ⊥ 48 → permutation
        plan.unique_ids.push(id);
        plan.unique_slots.push(slot);
        store.copy_row_from(slot as usize, table, id as usize);
    }
    stages::index_lookups(&mut plan, bag);
    (plan, store)
}

/// The pre-dedup mapping equivalent to the plan's flat layout.
fn slot_map(plan: &TablePlan) -> impl Fn(u64) -> usize + '_ {
    move |id| plan.slot_of(id).expect("id planned") as usize
}

fn grads_for(bag: &TableBag, dim: usize) -> Vec<f32> {
    (0..bag.batch_size() * dim)
        .map(|i| match i % 5 {
            0 => -0.0, // negative zero must survive the first-touch copy
            k => (k as f32) * 0.375 - 1.0,
        })
        .collect()
}

fn check_width(bag: &TableBag, dim: usize) {
    let table = EmbeddingTable::seeded(ROWS as usize, dim, 7 + dim as u64);
    let (plan, store) = scrambled_plan(&table, bag, dim);

    // Forward: dedup-indexed gather vs hash-mapped reference.
    let mut reference = vec![f32::NAN; bag.batch_size() * dim];
    ops::gather_reduce_into(&store, bag, slot_map(&plan), &mut reference);
    let mut deduped = vec![f32::NAN; bag.batch_size() * dim];
    stages::gather_pooled(&store, bag, &plan, &mut deduped);
    for (i, (a, b)) in reference.iter().zip(&deduped).enumerate() {
        prop_assert_eq!(a.to_bits(), b.to_bits(), "dim {} pooled element {}", dim, i);
    }

    // Sharded forward: any sample-range partition stitches to the same bits.
    let cuts = [0, bag.batch_size() / 2, bag.batch_size()];
    let mut stitched = vec![f32::NAN; bag.batch_size() * dim];
    for w in cuts.windows(2) {
        let (lo, hi) = (w[0], w[1]);
        stages::gather_pooled_range(
            &store,
            bag,
            &plan,
            lo,
            hi,
            &mut stitched[lo * dim..hi * dim],
        );
    }
    for (a, b) in reference.iter().zip(&stitched) {
        prop_assert_eq!(a.to_bits(), b.to_bits());
    }

    // Backward: dedup coalesce-into-buckets scatter vs duplicate→coalesce
    // reference, compared slot by slot.
    let grads = grads_for(bag, dim);
    let mut ref_store = store.clone();
    ops::embedding_backward_mapped(&mut ref_store, bag, &grads, 0.125, slot_map(&plan));
    let mut dedup_store = store.clone();
    stages::scatter_grads(&mut dedup_store, bag, &grads, 0.125, &plan);
    for slot in 0..ROWS as usize {
        let a = ref_store.row(slot);
        let b = dedup_store.row(slot);
        for (x, y) in a.iter().zip(b) {
            prop_assert_eq!(x.to_bits(), y.to_bits(), "dim {} slot {}", dim, slot);
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn dedup_kernels_bit_identical_at_width_1(bag in arb_bag()) {
        check_width(&bag, 1);
    }

    #[test]
    fn dedup_kernels_bit_identical_at_width_2(bag in arb_bag()) {
        check_width(&bag, 2);
    }

    #[test]
    fn dedup_kernels_bit_identical_at_width_4(bag in arb_bag()) {
        check_width(&bag, 4);
    }
}
