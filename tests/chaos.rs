//! Chaos suite — deterministic fault injection against the supervised
//! recovery runtime.
//!
//! The headline property: a seeded [`FaultPlan`] whose faults are all
//! recoverable must leave **no trace in the results** — the supervised
//! run's `PipelineReport` serializes byte-identically to a fault-free
//! run's, and the trained tables are bit-identical — while the audit
//! stream records every injection, rollback, retry and degradation.
//! Unrecoverable plans must fail *cleanly*: `ScratchError::Aborted` with
//! full provenance, tables flushed at exactly the last committed
//! iteration.

use embeddings::EmbeddingTable;
use proptest::prelude::*;
use scratchpipe::runtime::train_direct;
use scratchpipe::{
    Fault, FaultKind, FaultPlan, FaultySink, MemorySink, Pipeline, PipelineConfig, RecoveryPolicy,
    Schedule, ScratchError, SupervisedRun, UnitBackend,
};
use serde::Value;
use tracegen::{LocalityProfile, TraceConfig, TraceGenerator};

const N: usize = 12;
const DIM: usize = 8;
const ROWS: usize = 400;

fn trace() -> Vec<embeddings::SparseBatch> {
    let tc = TraceConfig {
        num_tables: 3,
        rows_per_table: ROWS as u64,
        lookups_per_sample: 4,
        batch_size: 8,
        profile: LocalityProfile::Medium,
        seed: 0xC4A5,
    };
    TraceGenerator::new(tc).take_batches(N)
}

fn tables() -> Vec<EmbeddingTable> {
    (0..3)
        .map(|t| EmbeddingTable::seeded(ROWS, DIM, 700 + t))
        .collect()
}

fn build(
    schedule: Schedule,
    parallelism: usize,
    plan: Option<FaultPlan>,
    sink: Option<MemorySink>,
) -> Pipeline<UnitBackend> {
    let mut b = Pipeline::builder()
        .config(PipelineConfig::functional(DIM, 192))
        .tables(tables())
        .backend(UnitBackend::new(0.05))
        .schedule(schedule)
        .parallelism(parallelism)
        .named("chaos");
    if let Some(plan) = plan {
        b = b.faults(plan);
    }
    if let Some(sink) = sink {
        b = b.audit(sink);
    }
    b.build().expect("pipeline")
}

fn fault(iteration: usize, stage: &str, shard: usize, kind: FaultKind, fires: u32) -> Fault {
    Fault {
        iteration,
        stage: stage.to_owned(),
        shard,
        kind,
        fires,
        slow_nanos: if kind == FaultKind::SlowShard {
            7_777
        } else {
            0
        },
    }
}

/// One recoverable fault of every kind, spread over the trace. Every
/// `fires` stays below the default retry budget of 3.
fn recoverable_plan() -> FaultPlan {
    FaultPlan::new(vec![
        fault(2, "Plan", 0, FaultKind::StageError, 2),
        fault(5, "Collect", 1, FaultKind::WorkerPanic, 1),
        fault(7, "Collect", 0, FaultKind::CorruptPayload, 1),
        fault(3, "Train", 2, FaultKind::SlowShard, 1),
        fault(9, "Insert", 0, FaultKind::StageError, 1),
    ])
}

fn baseline(schedule: Schedule, parallelism: usize) -> (String, Vec<EmbeddingTable>) {
    let mut rt = build(schedule, parallelism, None, None);
    let report = rt.run(&trace()).expect("fault-free run");
    let json = serde_json::to_string(&report).expect("serialize");
    (json, rt.into_tables())
}

#[test]
fn recovered_run_is_byte_identical_to_fault_free() {
    for (schedule, parallelism) in [
        (Schedule::Sync, 1),
        (Schedule::Threaded, 1),
        (Schedule::DataParallel, 2),
    ] {
        let (base_json, base_tables) = baseline(schedule, parallelism);
        let mut rt = build(schedule, parallelism, Some(recoverable_plan()), None);
        let SupervisedRun { report, stats } = rt
            .run_supervised(&trace(), RecoveryPolicy::default())
            .expect("all faults recoverable");
        assert_eq!(
            serde_json::to_string(&report).expect("serialize"),
            base_json,
            "{schedule:?}: recovered report must be byte-identical"
        );
        // StageError×2 + WorkerPanic×1 + CorruptPayload×1 + StageError×1
        // failing attempts; the slowdown fires but never fails.
        assert_eq!(stats.rollbacks, 5, "{schedule:?}");
        assert_eq!(stats.retries, 5, "{schedule:?}");
        assert_eq!(stats.degradations, 0, "{schedule:?}");
        assert_eq!(stats.faults_injected, 6, "{schedule:?}");
        assert_eq!(stats.final_schedule, Some(schedule), "{schedule:?}");
        let recovered = rt.into_tables();
        for (t, (a, b)) in recovered.iter().zip(&base_tables).enumerate() {
            assert!(
                a.bit_eq(b),
                "{schedule:?}: table {t} diverged after recovery"
            );
        }
    }
}

#[test]
fn supervised_run_without_faults_matches_plain_run() {
    let (base_json, base_tables) = baseline(Schedule::Sync, 1);
    let mut rt = build(Schedule::Sync, 1, None, None);
    let SupervisedRun { report, stats } = rt
        .run_supervised(&trace(), RecoveryPolicy::default())
        .expect("clean run");
    assert_eq!(
        serde_json::to_string(&report).expect("serialize"),
        base_json
    );
    assert_eq!(stats.rollbacks, 0);
    assert_eq!(stats.faults_injected, 0);
    assert_eq!(stats.final_schedule, Some(Schedule::Sync));
    for (a, b) in rt.into_tables().iter().zip(&base_tables) {
        assert!(a.bit_eq(b));
    }
}

#[test]
fn unrecoverable_fault_aborts_with_provenance_and_committed_tables() {
    let abort_at = 4usize;
    let plan = FaultPlan::new(vec![fault(
        abort_at,
        "Train",
        0,
        FaultKind::StageError,
        u32::MAX,
    )]);
    let mut rt = build(Schedule::Sync, 1, Some(plan), None);
    let policy = RecoveryPolicy {
        retry_budget: 2,
        checkpoint_interval: 1,
    };
    let err = rt
        .run_supervised(&trace(), policy)
        .expect_err("persistent fault must abort");
    match &err {
        ScratchError::Aborted {
            iteration,
            attempts,
            schedule,
            cause,
        } => {
            assert_eq!(*iteration, abort_at);
            assert_eq!(*attempts, 2, "single-rung ladder × budget 2");
            assert_eq!(schedule, "sync");
            assert_eq!(
                **cause,
                ScratchError::Injected {
                    iteration: abort_at,
                    stage: "Train".to_owned(),
                }
            );
        }
        other => panic!("expected Aborted, got {other:?}"),
    }
    // The tables hold exactly the committed prefix: training the first
    // `abort_at` batches directly is bit-identical.
    let mut expected = tables();
    let mut backend = UnitBackend::new(0.05);
    train_direct(&mut expected, &trace()[..abort_at], &mut backend);
    for (t, (got, want)) in rt.into_tables().iter().zip(&expected).enumerate() {
        assert!(got.bit_eq(want), "table {t} not at the committed prefix");
    }
}

#[test]
fn degradation_ladder_walks_down_to_sync() {
    // fires = 5 survives DataParallel (attempts 0,1) and Threaded (2,3)
    // and the first Sync attempt (4), then attempt 5 succeeds on Sync.
    let plan = FaultPlan::new(vec![fault(1, "Insert", 0, FaultKind::StageError, 5)]);
    let (base_json, base_tables) = baseline(Schedule::DataParallel, 2);
    let mut rt = build(Schedule::DataParallel, 2, Some(plan), None);
    let policy = RecoveryPolicy {
        retry_budget: 2,
        checkpoint_interval: 1,
    };
    let SupervisedRun { report, stats } = rt
        .run_supervised(&trace(), policy)
        .expect("recoverable on the last rung");
    assert_eq!(
        serde_json::to_string(&report).expect("serialize"),
        base_json
    );
    assert_eq!(stats.rollbacks, 5);
    assert_eq!(stats.degradations, 2, "DataParallel → Threaded → Sync");
    assert_eq!(stats.retries, 3);
    assert_eq!(stats.final_schedule, Some(Schedule::Sync));
    for (a, b) in rt.into_tables().iter().zip(&base_tables) {
        assert!(a.bit_eq(b));
    }
}

#[test]
fn audit_stream_tells_the_recovery_story() {
    let sink = MemorySink::new();
    let mut rt = build(
        Schedule::Sync,
        1,
        Some(recoverable_plan()),
        Some(sink.clone()),
    );
    rt.run_supervised(&trace(), RecoveryPolicy::default())
        .expect("recoverable");
    let mut injected = 0u64;
    let mut rolled_back = 0u64;
    let mut retried = 0u64;
    let mut iterations = 0u64;
    for line in sink.lines() {
        let event: Value = serde_json::from_str(&line).expect("parse");
        let Some(Value::Str(kind)) = event.get("event") else {
            panic!("missing event kind");
        };
        match kind.as_str() {
            "fault_injected" => injected += 1,
            "iteration_rolled_back" => rolled_back += 1,
            "stage_retried" => retried += 1,
            "iteration" => iterations += 1,
            "run_started" | "run_completed" => {}
            other => panic!("unexpected event kind {other}"),
        }
    }
    assert_eq!(injected, 6);
    assert_eq!(rolled_back, 5);
    assert_eq!(retried, 5, "rollbacks == retries when nothing degrades");
    assert_eq!(iterations, N as u64, "one committed event per mini-batch");
}

#[test]
fn aborted_run_audits_committed_iterations_and_run_aborted() {
    let sink = MemorySink::new();
    let plan = FaultPlan::new(vec![fault(3, "Plan", 0, FaultKind::StageError, u32::MAX)]);
    let mut rt = build(Schedule::Sync, 1, Some(plan), Some(sink.clone()));
    let policy = RecoveryPolicy {
        retry_budget: 1,
        checkpoint_interval: 1,
    };
    rt.run_supervised(&trace(), policy).expect_err("must abort");
    let lines = sink.lines();
    let last: Value = serde_json::from_str(lines.last().expect("nonempty")).expect("parse");
    assert!(matches!(last.get("event"), Some(Value::Str(k)) if k == "run_aborted"));
    assert!(matches!(last.get("committed"), Some(Value::UInt(3))));
    let iteration_events = lines
        .iter()
        .filter(|l| {
            let e: Value = serde_json::from_str(l).expect("parse");
            matches!(e.get("event"), Some(Value::Str(k)) if k == "iteration")
        })
        .count();
    assert_eq!(iteration_events, 3, "exactly the committed prefix");
}

#[test]
fn seeded_plans_replay_identically() {
    let plan = FaultPlan::seeded(0xFEED, N, 4);
    let round_trip = FaultPlan::from_json(&plan.to_json()).expect("round trip");
    assert_eq!(plan, round_trip);
    let run = || {
        let mut rt = build(Schedule::Sync, 1, Some(plan.clone()), None);
        let out = rt.run_supervised(&trace(), RecoveryPolicy::default());
        match out {
            Ok(SupervisedRun { report, stats }) => (
                Ok((serde_json::to_string(&report).expect("serialize"), stats)),
                rt.into_tables(),
            ),
            Err(e) => (Err(e), rt.into_tables()),
        }
    };
    let (a, tables_a) = run();
    let (b, tables_b) = run();
    match (&a, &b) {
        (Ok((ja, sa)), Ok((jb, sb))) => {
            assert_eq!(ja, jb);
            assert_eq!(sa, sb);
        }
        (Err(ea), Err(eb)) => assert_eq!(ea, eb),
        _ => panic!("replay diverged: {a:?} vs {b:?}"),
    }
    for (x, y) in tables_a.iter().zip(&tables_b) {
        assert!(x.bit_eq(y), "replayed tables diverged");
    }
}

#[test]
fn faulty_audit_sink_never_disturbs_the_run() {
    let (base_json, base_tables) = baseline(Schedule::Sync, 1);
    let inner = MemorySink::new();
    let sink = FaultySink::new(inner.clone(), vec![1, 3, 4]);
    let dropped = sink.dropped_counter();
    let mut rt = Pipeline::builder()
        .config(PipelineConfig::functional(DIM, 192))
        .tables(tables())
        .backend(UnitBackend::new(0.05))
        .schedule(Schedule::Sync)
        .named("chaos")
        .audit(sink)
        .build()
        .expect("pipeline");
    let report = rt.run(&trace()).expect("run");
    assert_eq!(
        serde_json::to_string(&report).expect("serialize"),
        base_json
    );
    assert_eq!(
        dropped.load(std::sync::atomic::Ordering::Relaxed),
        3,
        "exactly the planned lines dropped"
    );
    assert_eq!(inner.lines().len(), N + 2 - 3);
    for (a, b) in rt.into_tables().iter().zip(&base_tables) {
        assert!(a.bit_eq(b), "a failing audit sink must be a pure observer");
    }
}

/// The recovery decision stream, as `(event, iteration, attempt, detail)`
/// tuples with the envelope stripped.
fn recovery_sequence(lines: &[String]) -> Vec<String> {
    let mut seq = Vec::new();
    for line in lines {
        let event: Value = serde_json::from_str(line).expect("parse");
        let Some(Value::Str(kind)) = event.get("event") else {
            continue;
        };
        let grab = |key: &str| -> String {
            match event.get(key) {
                Some(Value::UInt(n)) => n.to_string(),
                Some(Value::Str(s)) => s.clone(),
                _ => String::new(),
            }
        };
        match kind.as_str() {
            "fault_injected" => seq.push(format!(
                "inject:{}:{}:{}:{}:{}",
                grab("iteration"),
                grab("attempt"),
                grab("stage"),
                grab("kind"),
                grab("shard")
            )),
            "iteration_rolled_back" => seq.push(format!(
                "rollback:{}:{}:{}",
                grab("iteration"),
                grab("attempt"),
                grab("cause")
            )),
            "stage_retried" => seq.push(format!(
                "retry:{}:{}:{}",
                grab("iteration"),
                grab("attempt"),
                grab("schedule")
            )),
            "schedule_degraded" => seq.push(format!(
                "degrade:{}:{}:{}",
                grab("iteration"),
                grab("from"),
                grab("to")
            )),
            "run_aborted" => seq.push(format!(
                "abort:{}:{}:{}",
                grab("iteration"),
                grab("attempts"),
                grab("schedule")
            )),
            _ => {}
        }
    }
    seq
}

type WidthOutcome = (
    Vec<String>,
    Result<String, ScratchError>,
    Vec<EmbeddingTable>,
);

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Worker-pool width is unobservable in recovery: the same seeded
    /// plan yields the identical injection/rollback/retry/degradation
    /// sequence and bit-identical tables at widths 1, 2 and 4.
    #[test]
    fn recovery_is_width_invariant(seed in 0u64..1_000) {
        let plan = FaultPlan::seeded(seed, N, 3);
        let mut reference: Option<WidthOutcome> = None;
        for width in [1usize, 2, 4] {
            let sink = MemorySink::new();
            let mut rt = build(
                Schedule::DataParallel,
                width,
                Some(plan.clone()),
                Some(sink.clone()),
            );
            let outcome = rt
                .run_supervised(&trace(), RecoveryPolicy::default())
                .map(|run| serde_json::to_string(&run.report).expect("serialize"));
            let seq = recovery_sequence(&sink.lines());
            let trained = rt.into_tables();
            match &reference {
                None => reference = Some((seq, outcome, trained)),
                Some((ref_seq, ref_outcome, ref_tables)) => {
                    prop_assert_eq!(&seq, ref_seq, "width {} recovery sequence", width);
                    match (&outcome, ref_outcome) {
                        (Ok(a), Ok(b)) => prop_assert_eq!(a, b, "width {}", width),
                        (Err(a), Err(b)) => prop_assert_eq!(a, b, "width {}", width),
                        _ => prop_assert!(false, "width {} outcome kind diverged", width),
                    }
                    for (x, y) in trained.iter().zip(ref_tables) {
                        prop_assert!(x.bit_eq(y), "width {} tables diverged", width);
                    }
                }
            }
        }
    }
}
