//! Hazard-window ablation — demonstrating that the paper's Hold-mask
//! sliding window (§IV-C: 3 past + current + 2 future) is exactly
//! load-bearing:
//!
//! * with the paper window, training is always correct;
//! * shrinking either side admits real RAW hazards, caught by the hazard
//!   checker and visible as numeric corruption when the checker is off.

use embeddings::{EmbeddingTable, SparseBatch, TableBag};
use scratchpipe::runtime::train_direct;
use scratchpipe::{Pipeline, PipelineConfig, Schedule, ScratchError, UnitBackend, WindowConfig};

fn pipeline(config: PipelineConfig, tables: Vec<EmbeddingTable>) -> Pipeline<UnitBackend> {
    Pipeline::builder()
        .config(config)
        .tables(tables)
        .backend(UnitBackend::new(0.2))
        .schedule(Schedule::Sync)
        .build()
        .expect("pipeline")
}

fn mk(ids: &[u64]) -> SparseBatch {
    SparseBatch::new(vec![TableBag::from_samples(&[ids.to_vec()])])
}

fn tables() -> Vec<EmbeddingTable> {
    vec![EmbeddingTable::seeded(64, 4, 7)]
}

/// A trace engineered so that, with a 2-slot cache, evictions repeatedly
/// target rows needed by nearby batches.
fn adversarial_trace() -> Vec<SparseBatch> {
    vec![
        mk(&[1, 2]),
        mk(&[3]),
        mk(&[1]),
        mk(&[4]),
        mk(&[2]),
        mk(&[5]),
        mk(&[3]),
        mk(&[1, 4]),
    ]
}

#[test]
fn paper_window_survives_adversarial_trace() {
    // With the full window the same trace needs more headroom (the window
    // holds more slots), so use a larger scratchpad; it must run cleanly
    // and match sequential training bit-for-bit.
    let mut reference = tables();
    let _ = train_direct(
        &mut reference,
        &adversarial_trace(),
        &mut UnitBackend::new(0.2),
    );
    let mut rt = pipeline(PipelineConfig::functional(4, 24), tables());
    let _ = rt.run(&adversarial_trace()).expect("paper window is safe");
    let out = rt.into_tables();
    assert!(reference[0].bit_eq(&out[0]));
}

#[test]
fn zero_future_window_is_detected_as_raw4() {
    let config = PipelineConfig::functional(4, 2).with_window(WindowConfig { past: 0, future: 0 });
    let mut rt = pipeline(config, tables());
    let err = rt.run(&adversarial_trace()).expect_err("hazard expected");
    assert!(
        matches!(err, ScratchError::HazardViolation { .. }),
        "got {err}"
    );
}

#[test]
fn window_matrix_safe_configs_match_sequential() {
    // Every window at least as wide as the paper's (3, 2) must be safe
    // AND bit-identical; wider windows only hold more slots.
    let mut reference = tables();
    let _ = train_direct(
        &mut reference,
        &adversarial_trace(),
        &mut UnitBackend::new(0.2),
    );
    for (past, future) in [(3u32, 2u32), (4, 2), (3, 3), (5, 4)] {
        let config = PipelineConfig::functional(4, 32).with_window(WindowConfig { past, future });
        let mut rt = pipeline(config, tables());
        let _ = rt
            .run(&adversarial_trace())
            .unwrap_or_else(|e| panic!("window ({past},{future}): {e}"));
        let out = rt.into_tables();
        assert!(
            reference[0].bit_eq(&out[0]),
            "window ({past},{future}) diverged"
        );
    }
}

#[test]
fn undersized_windows_corrupt_training_when_unchecked() {
    // The smoking gun for the mechanism: disable the checker, shrink the
    // window, and watch SGD silently corrupt — for at least one of the
    // undersized configurations (which one depends on eviction timing).
    let mut reference = tables();
    let _ = train_direct(
        &mut reference,
        &adversarial_trace(),
        &mut UnitBackend::new(0.2),
    );
    let mut any_diverged = false;
    for (past, future) in [(0u32, 0u32), (1, 0), (0, 1)] {
        let mut config =
            PipelineConfig::functional(4, 2).with_window(WindowConfig { past, future });
        config.check_hazards = false;
        let mut rt = pipeline(config, tables());
        if rt.run(&adversarial_trace()).is_ok() {
            let out = rt.into_tables();
            if !reference[0].bit_eq(&out[0]) {
                any_diverged = true;
            }
        } else {
            // Capacity exhaustion also counts as "cannot run correctly".
            any_diverged = true;
        }
    }
    assert!(
        any_diverged,
        "at least one undersized window must corrupt or fail"
    );
}

#[test]
fn always_hit_guarantee_under_stress() {
    // 300 batches of skewed traffic over a small scratchpad: the hazard
    // checker (which asserts data-residency at every train) must stay
    // silent with the paper window.
    use tracegen::{LocalityProfile, TraceConfig, TraceGenerator};
    let tc = TraceConfig {
        num_tables: 2,
        rows_per_table: 1_000,
        lookups_per_sample: 6,
        batch_size: 12,
        profile: LocalityProfile::High,
        seed: 77,
    };
    let batches = TraceGenerator::new(tc).take_batches(300);
    let tables: Vec<EmbeddingTable> = (0..2)
        .map(|t| EmbeddingTable::seeded(1_000, 4, t as u64))
        .collect();
    let mut rt = Pipeline::builder()
        .config(PipelineConfig::functional(4, 400))
        .tables(tables)
        .backend(UnitBackend::new(0.05))
        .schedule(Schedule::Sync)
        .build()
        .expect("pipeline");
    let report = rt.run(&batches).expect("no hazards under stress");
    assert_eq!(report.iterations, 300);
    assert!(report.hit_rate() > 0.4);
}
