//! Sync-vs-threaded stage parity: both runtimes drive the *same* stage
//! kernels (`scratchpipe::stages`), so on the same seeded trace they must
//! produce bit-identical tables **and identical per-stage
//! [`StageTraffic`]** — every iteration, plus the final flush and the
//! peak-held working-set measurement. The traffic half is the part that
//! used to be unasserted (and unreported by the threaded runtime); with
//! the shared kernel layer it holds by construction, and this test keeps
//! it that way.

use embeddings::EmbeddingTable;
use scratchpipe::threaded::run_threaded;
use scratchpipe::{PipelineConfig, PipelineRuntime, UnitBackend};
use systems::DlrmBackend;
use tracegen::{LocalityProfile, TraceConfig, TraceGenerator};

fn make_tables(num: usize, rows: usize, dim: usize, seed0: u64) -> Vec<EmbeddingTable> {
    (0..num)
        .map(|t| EmbeddingTable::seeded(rows, dim, seed0 + t as u64))
        .collect()
}

#[test]
fn sync_and_threaded_runtimes_agree_on_tables_and_stage_traffic() {
    for profile in [
        LocalityProfile::Random,
        LocalityProfile::Medium,
        LocalityProfile::High,
    ] {
        let tc = TraceConfig {
            num_tables: 3,
            rows_per_table: 400,
            lookups_per_sample: 4,
            batch_size: 8,
            profile,
            seed: 77,
        };
        let batches = TraceGenerator::new(tc).take_batches(30);
        let dim = 8;
        // §VI-D worst case: 6 windowed batches × 8 × 4 = 192 held rows.
        let config = PipelineConfig::functional(dim, 192);

        let mut rt = PipelineRuntime::new(
            config.clone(),
            make_tables(3, 400, dim, 9000),
            UnitBackend::new(0.05),
        )
        .unwrap();
        let sync_report = rt.run(&batches).unwrap();
        let sync_tables = rt.into_tables();

        let (threaded_tables, threaded_report) = run_threaded(
            config,
            make_tables(3, 400, dim, 9000),
            UnitBackend::new(0.05),
            &batches,
        )
        .unwrap();

        // Bit-identical model state.
        for (t, (a, b)) in sync_tables.iter().zip(&threaded_tables).enumerate() {
            assert!(
                a.bit_eq(b),
                "{profile:?}: table {t} diverged at row {:?}",
                a.first_diff_row(b)
            );
        }

        // Identical per-iteration records: cache events, losses, and the
        // full per-stage traffic.
        assert_eq!(sync_report.records.len(), threaded_report.records.len());
        for (s, th) in sync_report.records.iter().zip(&threaded_report.records) {
            assert_eq!(s.index, th.index);
            assert_eq!(s.hits, th.hits, "iteration {}", s.index);
            assert_eq!(s.misses, th.misses, "iteration {}", s.index);
            assert_eq!(s.evictions, th.evictions, "iteration {}", s.index);
            assert_eq!(s.total_lookups, th.total_lookups, "iteration {}", s.index);
            assert_eq!(s.unique_rows, th.unique_rows, "iteration {}", s.index);
            assert_eq!(s.loss.to_bits(), th.loss.to_bits(), "iteration {}", s.index);
            assert_eq!(
                s.traffic, th.traffic,
                "{profile:?}: stage traffic diverged at iteration {}",
                s.index
            );
        }

        // Identical flush and working-set accounting.
        assert_eq!(sync_report.flush_traffic, threaded_report.flush_traffic);
        assert_eq!(sync_report.peak_held_slots, threaded_report.peak_held_slots);
    }
}

#[test]
fn stage_traffic_parity_holds_with_full_dlrm_backend() {
    // The Train stage's traffic includes the dense backend's contribution;
    // run both schedules with the real DLRM backend to cover it.
    let tc = TraceConfig {
        num_tables: 2,
        rows_per_table: 300,
        lookups_per_sample: 4,
        batch_size: 8,
        profile: LocalityProfile::Medium,
        seed: 5,
    };
    let batches = TraceGenerator::new(tc).take_batches(15);
    let dlrm_cfg = dlrm::DlrmConfig::tiny_with_tables(2);
    let dim = dlrm_cfg.emb_dim;
    let config = PipelineConfig::functional(dim, 192);

    let mut rt = PipelineRuntime::new(
        config.clone(),
        make_tables(2, 300, dim, 40),
        DlrmBackend::new(&dlrm_cfg, 0.05, 7),
    )
    .unwrap();
    let sync_report = rt.run(&batches).unwrap();
    let sync_tables = rt.into_tables();

    let (threaded_tables, threaded_report) = run_threaded(
        config,
        make_tables(2, 300, dim, 40),
        DlrmBackend::new(&dlrm_cfg, 0.05, 7),
        &batches,
    )
    .unwrap();

    for (a, b) in sync_tables.iter().zip(&threaded_tables) {
        assert!(a.bit_eq(b));
    }
    for (s, th) in sync_report.records.iter().zip(&threaded_report.records) {
        assert_eq!(s.traffic, th.traffic, "iteration {}", s.index);
        assert_eq!(s.loss.to_bits(), th.loss.to_bits());
    }
}
