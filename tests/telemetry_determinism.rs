//! Telemetry determinism and reconciliation — the observability layer's
//! two contracts, tested in-process.
//!
//! **Determinism:** [`Telemetry::deterministic_digest`] renders the
//! structural span tree (which spans exist, on which lanes) and every
//! non-wall-clock metric value. Re-running the same seeded trace at the
//! same pool width must reproduce it byte-for-byte — at widths 1, 2
//! and 4, under every schedule. This is what "identical METRICS.json
//! modulo wall-clock durations" means operationally: the digest *is*
//! the wall-clock-stripped view of METRICS.json plus the span tree.
//!
//! **Reconciliation:** the pipeline records one integer per stage
//! execution and hands it to both the audit stream (`stage_nanos`) and
//! the `sp_stage_latency_ns` histogram, so the histogram's `sum` equals
//! the summed audit nanos **exactly** — the same check
//! `audit_check --metrics` runs over artifacts, here without any file
//! round-trip.

use proptest::prelude::*;
use scratchpipe::{MemorySink, Pipeline, PipelineConfig, Schedule, Telemetry, UnitBackend};
use serde::Value;
use tracegen::{LocalityProfile, TraceConfig, TraceGenerator};

const NUM_TABLES: usize = 2;
const ROWS: u64 = 300;
const DIM: usize = 8;
const SLOTS: usize = 120;
const ITERS: usize = 12;

fn batches(seed: u64) -> Vec<embeddings::SparseBatch> {
    let tc = TraceConfig {
        num_tables: NUM_TABLES,
        rows_per_table: ROWS,
        lookups_per_sample: 4,
        batch_size: 8,
        profile: LocalityProfile::Medium,
        seed,
    };
    TraceGenerator::new(tc).take_batches(ITERS)
}

/// One audited, metered run; returns the collector and the audit lines.
fn run_once(seed: u64, schedule: Schedule, width: usize, label: &str) -> (Telemetry, Vec<String>) {
    let tables: Vec<embeddings::EmbeddingTable> = (0..NUM_TABLES)
        .map(|t| embeddings::EmbeddingTable::seeded(ROWS as usize, DIM, 40 + t as u64))
        .collect();
    let telemetry = Telemetry::new();
    let sink = MemorySink::new();
    let mut rt = Pipeline::builder()
        .config(PipelineConfig::functional(DIM, SLOTS))
        .tables(tables)
        .backend(UnitBackend::new(0.05))
        .schedule(schedule)
        .parallelism(width)
        .telemetry(telemetry.clone())
        .audit(sink.clone())
        .named(label)
        .build()
        .expect("pipeline");
    rt.run(&batches(seed)).expect("run");
    (telemetry, sink.lines())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Same seed, same width, same schedule -> byte-identical digest:
    /// the span tree and every non-wall-clock metric reproduce exactly,
    /// whatever the machine was doing between the two runs.
    #[test]
    fn digest_is_seed_deterministic_at_every_width(seed in 0u64..1_000) {
        for schedule in [Schedule::Sync, Schedule::Threaded, Schedule::DataParallel] {
            for width in [1usize, 2, 4] {
                let label = format!("det-{}-w{width}", schedule.name());
                let (a, _) = run_once(seed, schedule, width, &label);
                let (b, _) = run_once(seed, schedule, width, &label);
                prop_assert_eq!(
                    a.deterministic_digest(),
                    b.deterministic_digest(),
                    "schedule {:?} width {} digest diverged",
                    schedule,
                    width
                );
            }
        }
    }
}

fn uint(v: &Value, key: &str) -> u64 {
    match v.get(key) {
        Some(Value::UInt(n)) => *n,
        other => panic!("field {key}: expected UInt, got {other:?}"),
    }
}

fn label<'v>(metric: &'v Value, key: &str) -> Option<&'v str> {
    let Some(Value::Map(labels)) = metric.get("labels") else {
        panic!("metric lacks labels map");
    };
    labels
        .iter()
        .find(|(k, _)| k == key)
        .and_then(|(_, v)| match v {
            Value::Str(s) => Some(s.as_str()),
            _ => None,
        })
}

#[test]
fn stage_histograms_reconcile_exactly_with_the_audit_stream() {
    for (schedule, width) in [
        (Schedule::Sync, 1),
        (Schedule::Threaded, 1),
        (Schedule::DataParallel, 2),
    ] {
        let name = format!("reconcile-{}", schedule.name());
        let (telemetry, lines) = run_once(7, schedule, width, &name);

        // Audit side: per-stage sums and counts over iteration events.
        let mut audit_ns: std::collections::BTreeMap<String, u64> = Default::default();
        let mut iterations = 0u64;
        for line in &lines {
            let event: Value = serde_json::from_str(line).expect("audit line parses");
            if !matches!(event.get("event"), Some(Value::Str(k)) if k == "iteration") {
                continue;
            }
            iterations += 1;
            let Some(Value::Map(nanos)) = event.get("stage_nanos") else {
                panic!("iteration lacks stage_nanos");
            };
            for (stage, v) in nanos {
                let Value::UInt(ns) = v else {
                    panic!("stage_nanos.{stage} not UInt");
                };
                *audit_ns.entry(stage.clone()).or_default() += ns;
            }
        }
        assert_eq!(iterations, ITERS as u64);

        // Telemetry side: the sp_stage_latency_ns histograms.
        let doc: Value =
            serde_json::from_str(&telemetry.metrics_json()).expect("METRICS.json parses");
        let Some(Value::Seq(metrics)) = doc.get("metrics") else {
            panic!("metrics: expected a sequence");
        };
        let mut stages_checked = 0;
        for m in metrics {
            match m.get("name") {
                Some(Value::Str(n)) if n == "sp_stage_latency_ns" => {}
                _ => continue,
            }
            assert_eq!(label(m, "run"), Some(name.as_str()));
            let stage = label(m, "stage").expect("stage label").to_owned();
            // The heart of the contract: both sides summed the *same*
            // integers, so equality is exact - no tolerance.
            assert_eq!(
                uint(m, "sum"),
                audit_ns[&stage],
                "{schedule:?}: stage {stage} histogram sum != summed stage_nanos"
            );
            assert_eq!(
                uint(m, "count"),
                iterations,
                "{schedule:?}: stage {stage} count"
            );
            stages_checked += 1;
        }
        assert_eq!(stages_checked, 5, "{schedule:?}: all five stages metered");
    }
}

#[test]
fn attaching_telemetry_does_not_perturb_results_or_audit() {
    // Telemetry must be a pure observer, like audit: same report, same
    // audit stream (minus nothing - the stream has no telemetry fields),
    // with and without a collector attached.
    let run = |telemetry: Option<Telemetry>| {
        let tables: Vec<embeddings::EmbeddingTable> = (0..NUM_TABLES)
            .map(|t| embeddings::EmbeddingTable::seeded(ROWS as usize, DIM, 40 + t as u64))
            .collect();
        let sink = MemorySink::new();
        let mut b = Pipeline::builder()
            .config(PipelineConfig::functional(DIM, SLOTS))
            .tables(tables)
            .backend(UnitBackend::new(0.05))
            .schedule(Schedule::DataParallel)
            .parallelism(2)
            .audit(sink.clone())
            .named("observer-purity");
        if let Some(t) = telemetry {
            b = b.telemetry(t);
        }
        let mut rt = b.build().expect("pipeline");
        let report = rt.run(&batches(3)).expect("run");
        let body = serde_json::to_string(&report).expect("serialize");
        (body, sink.lines(), rt.into_tables())
    };
    let (metered_report, metered_lines, metered_tables) = run(Some(Telemetry::new()));
    let (plain_report, plain_lines, plain_tables) = run(None);
    assert_eq!(
        metered_report, plain_report,
        "telemetry must be a pure observer"
    );
    // Audit lines differ only in the random run_id and wall-clock nanos;
    // compare their deterministic shape: event kinds in order.
    let kinds = |lines: &[String]| -> Vec<String> {
        lines
            .iter()
            .map(|l| {
                let v: Value = serde_json::from_str(l).expect("parse");
                match v.get("event") {
                    Some(Value::Str(k)) => k.clone(),
                    other => panic!("event: {other:?}"),
                }
            })
            .collect()
    };
    assert_eq!(kinds(&metered_lines), kinds(&plain_lines));
    for (a, b) in metered_tables.iter().zip(&plain_tables) {
        assert!(a.bit_eq(b), "trained tables diverged under telemetry");
    }
}
