//! Cross-crate equivalence tests — the paper's central correctness claim:
//! ScratchPipe "does not change the algorithmic properties of RecSys
//! training and provides identical training accuracy vs. the original
//! training algorithm executed over baseline hybrid CPU-GPU" (§II-D).
//!
//! We verify this *literally*: every system design point, under every
//! eviction policy and scheduling mode — including the multi-threaded
//! runtime — produces bit-identical embedding tables, bit-identical dense
//! MLP weights and bit-identical per-iteration losses.

use scratchpipe::runtime::train_direct;
use scratchpipe::{EvictionPolicy, Pipeline, PipelineConfig, Schedule};
use systems::{train_functional, DlrmBackend, ExperimentConfig, SystemKind};
use tracegen::{LocalityProfile, TraceGenerator};

fn scaled(profile: LocalityProfile) -> ExperimentConfig {
    ExperimentConfig::scaled_down(profile, 0.15, 12)
}

#[test]
fn all_five_systems_train_identically_across_localities() {
    for profile in [
        LocalityProfile::Random,
        LocalityProfile::Low,
        LocalityProfile::High,
    ] {
        let cfg = scaled(profile);
        let (ref_tables, ref_backend, ref_losses) =
            train_functional(SystemKind::Hybrid, &cfg, 0.05).expect("reference");
        for kind in [
            SystemKind::StaticCache,
            SystemKind::StrawMan,
            SystemKind::ScratchPipe,
            SystemKind::MultiGpu8,
        ] {
            let (tables, backend, losses) =
                train_functional(kind, &cfg, 0.05).unwrap_or_else(|e| panic!("{kind}: {e}"));
            for (t, (a, b)) in ref_tables.iter().zip(&tables).enumerate() {
                assert!(
                    a.bit_eq(b),
                    "{profile:?}/{kind}: table {t} diverged at row {:?}",
                    a.first_diff_row(b)
                );
            }
            assert!(
                backend.model().bit_eq(ref_backend.model()),
                "{profile:?}/{kind}: dense model diverged"
            );
            for (i, (a, b)) in ref_losses.iter().zip(&losses).enumerate() {
                assert_eq!(a.to_bits(), b.to_bits(), "{profile:?}/{kind}: loss {i}");
            }
        }
    }
}

#[test]
fn every_eviction_policy_is_equivalence_preserving() {
    for policy in EvictionPolicy::ALL {
        let mut cfg = scaled(LocalityProfile::Medium);
        cfg.policy = policy;
        let (ref_tables, _, _) = train_functional(SystemKind::Hybrid, &cfg, 0.05).expect("ref");
        let (tables, _, _) =
            train_functional(SystemKind::ScratchPipe, &cfg, 0.05).expect("scratchpipe");
        for (a, b) in ref_tables.iter().zip(&tables) {
            assert!(a.bit_eq(b), "policy {policy} diverged");
        }
    }
}

#[test]
fn threaded_runtime_matches_direct_training_with_full_dlrm() {
    let cfg = scaled(LocalityProfile::Medium);
    let batches = cfg.batches();
    let make_tables = || -> Vec<embeddings::EmbeddingTable> {
        (0..cfg.shape.num_tables)
            .map(|t| {
                embeddings::EmbeddingTable::seeded(
                    cfg.shape.rows_per_table as usize,
                    cfg.shape.dim,
                    t as u64,
                )
            })
            .collect()
    };
    let mut reference = make_tables();
    let mut ref_backend = DlrmBackend::new(&cfg.shape.dlrm, 0.05, cfg.seed);
    let ref_losses = train_direct(&mut reference, &batches, &mut ref_backend);

    let mut rt = Pipeline::builder()
        .config(PipelineConfig::functional(cfg.shape.dim, 9_000))
        .tables(make_tables())
        .backend(DlrmBackend::new(&cfg.shape.dlrm, 0.05, cfg.seed))
        .schedule(Schedule::Threaded)
        .build()
        .expect("pipeline");
    let report = rt.run(&batches).expect("threaded run");
    let tables = rt.into_tables();
    for (t, (a, b)) in reference.iter().zip(&tables).enumerate() {
        assert!(
            a.bit_eq(b),
            "threaded: table {t} diverged at row {:?}",
            a.first_diff_row(b)
        );
    }
    for (a, r) in ref_losses.iter().zip(&report.records) {
        assert_eq!(a.to_bits(), r.loss.to_bits());
    }
}

#[test]
fn prewarmed_scratchpad_preserves_equivalence() {
    // Pre-warming seeds the cache with *valid* table data, so it must not
    // perturb training in any way.
    let cfg = scaled(LocalityProfile::High);
    let batches = cfg.batches();
    let gen = TraceGenerator::new(cfg.shape.trace_config(cfg.profile, cfg.seed));
    let make_tables = || -> Vec<embeddings::EmbeddingTable> {
        (0..cfg.shape.num_tables)
            .map(|t| {
                embeddings::EmbeddingTable::seeded(
                    cfg.shape.rows_per_table as usize,
                    cfg.shape.dim,
                    t as u64,
                )
            })
            .collect()
    };
    let mut reference = make_tables();
    let _ = train_direct(
        &mut reference,
        &batches,
        &mut DlrmBackend::new(&cfg.shape.dlrm, 0.05, cfg.seed),
    );

    let slots = 8_000u64;
    let hot: Vec<Vec<u64>> = (0..cfg.shape.num_tables)
        .map(|t| gen.hot_rows(t, slots))
        .collect();
    let mut rt = Pipeline::builder()
        .config(PipelineConfig::functional(cfg.shape.dim, slots as usize))
        .tables(make_tables())
        .backend(DlrmBackend::new(&cfg.shape.dlrm, 0.05, cfg.seed))
        .schedule(Schedule::Sync)
        .build()
        .expect("pipeline");
    rt.prewarm(&hot).expect("prewarm");
    let report = rt.run(&batches).expect("run");
    assert!(report.hit_rate() > 0.5, "prewarm should lift the hit rate");
    let tables = rt.into_tables();
    for (a, b) in reference.iter().zip(&tables) {
        assert!(a.bit_eq(b), "prewarmed run diverged");
    }
}
