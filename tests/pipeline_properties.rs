//! Property-based integration tests over the whole stack: for *arbitrary*
//! traces and scratchpad geometries (within the provisioning rule), the
//! pipelined runtime must match direct sequential training bit-for-bit,
//! always hit, and never leak or duplicate cache slots.

use embeddings::{EmbeddingTable, SparseBatch, TableBag};
use proptest::prelude::*;
use scratchpipe::runtime::train_direct;
use scratchpipe::{EvictionPolicy, Pipeline, PipelineConfig, Schedule, UnitBackend};

const ROWS: u64 = 64;
const DIM: usize = 4;

fn pipeline(config: PipelineConfig, schedule: Schedule) -> Pipeline<UnitBackend> {
    Pipeline::builder()
        .config(config)
        .tables(tables())
        .backend(UnitBackend::new(0.1))
        .schedule(schedule)
        .build()
        .expect("pipeline")
}

fn arb_trace() -> impl Strategy<Value = Vec<SparseBatch>> {
    // 2 tables, up to 24 batches of 1-3 samples × 1-4 lookups over 64 rows.
    let sample = proptest::collection::vec(0u64..ROWS, 1..4);
    let table = proptest::collection::vec(sample, 1..3);
    let batch = (table.clone(), table).prop_map(|(t0, t1)| {
        // Equalize batch sizes across the two tables.
        let b = t0.len().min(t1.len());
        SparseBatch::new(vec![
            TableBag::from_samples(&t0[..b]),
            TableBag::from_samples(&t1[..b]),
        ])
    });
    proptest::collection::vec(batch, 1..24)
}

fn tables() -> Vec<EmbeddingTable> {
    (0..2)
        .map(|t| EmbeddingTable::seeded(ROWS as usize, DIM, t))
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn pipelined_always_matches_sequential(trace in arb_trace(), policy in 0usize..3) {
        let policy = EvictionPolicy::ALL[policy];
        let mut reference = tables();
        let _ = train_direct(&mut reference, &trace, &mut UnitBackend::new(0.1));

        // Slots sized by the §VI-D rule: 6 batches × ≤ 3×4 unique ids
        // per table, with margin.
        let config = PipelineConfig::functional(DIM, 64).with_policy(policy);
        let mut rt = pipeline(config, Schedule::Sync);
        let report = rt.run(&trace).expect("paper window must be hazard-free");
        prop_assert_eq!(report.iterations, trace.len());
        let out = rt.into_tables();
        for (t, (a, b)) in reference.iter().zip(&out).enumerate() {
            prop_assert!(
                a.bit_eq(b),
                "policy {} table {} diverged at {:?}", policy, t, a.first_diff_row(b)
            );
        }
    }

    #[test]
    fn sequential_strawman_always_matches(trace in arb_trace()) {
        let mut reference = tables();
        let _ = train_direct(&mut reference, &trace, &mut UnitBackend::new(0.1));
        let config = PipelineConfig::functional(DIM, 16).sequential();
        let mut rt = pipeline(config, Schedule::Sequential);
        let _ = rt.run(&trace).expect("sequential is hazard-free");
        let out = rt.into_tables();
        for (a, b) in reference.iter().zip(&out) {
            prop_assert!(a.bit_eq(b));
        }
    }

    #[test]
    fn cache_accounting_invariants(trace in arb_trace()) {
        let config = PipelineConfig::functional(DIM, 64);
        let mut rt = pipeline(config, Schedule::Sync);
        let report = rt.run(&trace).expect("run");
        for rec in &report.records {
            // Per-batch: hits + misses == unique rows of the batch.
            prop_assert_eq!(rec.hits + rec.misses, rec.unique_rows);
            // Evictions can never exceed misses (each miss evicts ≤ 1 row).
            prop_assert!(rec.evictions <= rec.misses);
        }
        // Manager consistency after the run: each resident row maps to a
        // unique slot.
        for m in rt.managers() {
            let residents = m.residents();
            let mut slots: Vec<u32> = residents.iter().map(|&(_, s)| s).collect();
            slots.sort_unstable();
            let before = slots.len();
            slots.dedup();
            prop_assert_eq!(before, slots.len(), "slot double-mapped");
            prop_assert!(residents.len() <= 64);
        }
    }
}
