//! Cross-validation of the two simulation paths (DESIGN.md decision #1):
//! the *functional* runtime (real f32 training) and the *analytic* runtime
//! (metadata + traffic only) must make identical cache decisions and count
//! identical traffic on identical traces — this is what justifies running
//! the paper-scale figures through the cheap analytic path.

use scratchpipe::{Pipeline, PipelineConfig, Schedule, UnitBackend};
use tracegen::{LocalityProfile, TraceConfig, TraceGenerator};

fn trace_cfg(profile: LocalityProfile) -> TraceConfig {
    TraceConfig {
        num_tables: 3,
        rows_per_table: 3_000,
        lookups_per_sample: 6,
        batch_size: 24,
        profile,
        seed: 0xFEED,
    }
}

#[test]
fn analytic_equals_functional_event_for_event() {
    for profile in LocalityProfile::SWEEP {
        let tc = trace_cfg(profile);
        let batches = TraceGenerator::new(tc).take_batches(25);
        let slots = 900;

        let functional = {
            let tables: Vec<embeddings::EmbeddingTable> = (0..tc.num_tables)
                .map(|t| {
                    embeddings::EmbeddingTable::seeded(tc.rows_per_table as usize, 8, t as u64)
                })
                .collect();
            let mut rt = Pipeline::builder()
                .config(PipelineConfig::functional(8, slots))
                .tables(tables)
                .backend(UnitBackend::new(0.01))
                .schedule(Schedule::Sync)
                .build()
                .expect("functional pipeline");
            rt.run(&batches).expect("functional run")
        };
        let analytic = {
            let mut rt = Pipeline::builder()
                .config(PipelineConfig::analytic(8, slots))
                .analytic_tables(tc.num_tables, tc.rows_per_table)
                .backend(UnitBackend::new(0.01))
                .schedule(Schedule::Sync)
                .build()
                .expect("analytic pipeline");
            rt.run(&batches).expect("analytic run")
        };

        assert_eq!(functional.iterations, analytic.iterations);
        for (f, a) in functional.records.iter().zip(&analytic.records) {
            assert_eq!(f.hits, a.hits, "{profile}: iteration {}", f.index);
            assert_eq!(f.misses, a.misses, "{profile}: iteration {}", f.index);
            assert_eq!(f.evictions, a.evictions, "{profile}: iteration {}", f.index);
            // Traffic equality per stage — the quantity the cost model consumes.
            assert_eq!(f.traffic.plan, a.traffic.plan, "{profile}");
            assert_eq!(f.traffic.collect, a.traffic.collect, "{profile}");
            assert_eq!(f.traffic.exchange, a.traffic.exchange, "{profile}");
            assert_eq!(f.traffic.insert, a.traffic.insert, "{profile}");
            assert_eq!(f.traffic.train, a.traffic.train, "{profile}");
        }
        assert_eq!(functional.peak_held_slots, analytic.peak_held_slots);
        assert!((functional.hit_rate() - analytic.hit_rate()).abs() < 1e-12);
    }
}

#[test]
fn traffic_conservation_across_the_pipeline() {
    // Global conservation: every byte that leaves the CPU tables over PCIe
    // is either still resident at the end or was written back. Checked via
    // fill/evict/resident counts.
    let tc = trace_cfg(LocalityProfile::Medium);
    let batches = TraceGenerator::new(tc).take_batches(30);
    let mut rt = Pipeline::builder()
        .config(PipelineConfig::analytic(8, 700))
        .analytic_tables(tc.num_tables, tc.rows_per_table)
        .backend(UnitBackend::new(0.01))
        .schedule(Schedule::Sync)
        .build()
        .expect("pipeline");
    let report = rt.run(&batches).expect("run");
    let fills: u64 = report.records.iter().map(|r| r.misses).sum();
    let evictions: u64 = report.records.iter().map(|r| r.evictions).sum();
    let resident: u64 = rt.managers().iter().map(|m| m.occupancy() as u64).sum();
    assert_eq!(fills, evictions + resident, "row conservation");
    // Byte-level: exchange H2D bytes == fills × row bytes.
    let total = report.total_traffic();
    assert_eq!(total.exchange.pcie_h2d_bytes, fills * 8 * 4);
    assert_eq!(total.exchange.pcie_d2h_bytes, evictions * 8 * 4);
}
