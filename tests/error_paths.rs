//! Exact-variant error contracts — misconfiguration and bad input must
//! fail with the *documented* `ScratchError` variant and a message that
//! names the offending quantity, not a generic failure.

use embeddings::{EmbeddingTable, SparseBatch, TableBag};
use scratchpipe::{Pipeline, PipelineConfig, RecoveryPolicy, Schedule, ScratchError, UnitBackend};

fn tables(num: usize, rows: usize, dim: usize) -> Vec<EmbeddingTable> {
    (0..num)
        .map(|t| EmbeddingTable::seeded(rows, dim, t as u64))
        .collect()
}

fn batch(num_tables: usize, ids: &[u64]) -> SparseBatch {
    SparseBatch::new(
        (0..num_tables)
            .map(|_| TableBag::from_samples(&[ids.to_vec()]))
            .collect(),
    )
}

fn assert_invalid_config(result: Result<impl std::fmt::Debug, ScratchError>, needle: &str) {
    match result {
        Err(ScratchError::InvalidConfig { detail }) => assert!(
            detail.contains(needle),
            "detail {detail:?} does not mention {needle:?}"
        ),
        other => panic!("expected InvalidConfig mentioning {needle:?}, got {other:?}"),
    }
}

#[test]
fn builder_without_config_names_the_missing_piece() {
    let result = Pipeline::builder()
        .tables(tables(1, 16, 4))
        .backend(UnitBackend::new(0.1))
        .build();
    assert_invalid_config(result, "needs a config");
}

#[test]
fn builder_without_backend_names_the_missing_piece() {
    let result = Pipeline::<UnitBackend>::builder()
        .config(PipelineConfig::functional(4, 8))
        .tables(tables(1, 16, 4))
        .build();
    assert_invalid_config(result, "needs a backend");
}

#[test]
fn builder_without_tables_is_rejected() {
    let result = Pipeline::builder()
        .config(PipelineConfig::functional(4, 8))
        .backend(UnitBackend::new(0.1))
        .build();
    assert_invalid_config(result, "at least one embedding table");
}

#[test]
fn builder_rejects_tables_and_analytic_together() {
    let result = Pipeline::builder()
        .config(PipelineConfig::functional(4, 8))
        .tables(tables(1, 16, 4))
        .analytic_tables(2, 100)
        .backend(UnitBackend::new(0.1))
        .build();
    assert_invalid_config(result, "not both");
}

#[test]
fn builder_rejects_table_dim_mismatch() {
    let result = Pipeline::builder()
        .config(PipelineConfig::functional(8, 8))
        .tables(tables(1, 16, 4))
        .backend(UnitBackend::new(0.1))
        .build();
    assert_invalid_config(result, "dim mismatch");
}

#[test]
fn threaded_schedule_on_analytic_pipeline_is_rejected_at_run() {
    let mut rt = Pipeline::builder()
        .config(PipelineConfig::analytic(4, 8))
        .analytic_tables(1, 64)
        .backend(UnitBackend::new(0.1))
        .schedule(Schedule::Threaded)
        .build()
        .expect("builds fine; schedule resolves at run");
    let result = rt.run(&[batch(1, &[1, 2])]);
    assert_invalid_config(result, "functional mode");
}

#[test]
fn run_rejects_empty_batches() {
    let mut rt = Pipeline::builder()
        .config(PipelineConfig::functional(4, 8))
        .tables(tables(1, 64, 4))
        .backend(UnitBackend::new(0.1))
        .build()
        .expect("pipeline");
    let empty = SparseBatch::new(vec![TableBag::from_samples(&[])]);
    let result = rt.run(&[batch(1, &[1]), empty]);
    assert_invalid_config(result, "batch 1 is empty");
}

#[test]
fn run_rejects_table_count_mismatch() {
    let mut rt = Pipeline::builder()
        .config(PipelineConfig::functional(4, 8))
        .tables(tables(2, 64, 4))
        .backend(UnitBackend::new(0.1))
        .build()
        .expect("pipeline");
    let result = rt.run(&[batch(1, &[1])]);
    assert_invalid_config(result, "covers 1 tables, pipeline has 2");
}

#[test]
fn run_rejects_out_of_range_ids() {
    let mut rt = Pipeline::builder()
        .config(PipelineConfig::functional(4, 8))
        .tables(tables(1, 64, 4))
        .backend(UnitBackend::new(0.1))
        .build()
        .expect("pipeline");
    let result = rt.run(&[batch(1, &[63, 64])]);
    assert_invalid_config(result, "id 64 exceeds 64 rows");
}

#[test]
fn supervised_rejects_zero_budget_and_zero_interval() {
    for policy in [
        RecoveryPolicy {
            retry_budget: 0,
            checkpoint_interval: 1,
        },
        RecoveryPolicy {
            retry_budget: 3,
            checkpoint_interval: 0,
        },
    ] {
        let mut rt = Pipeline::builder()
            .config(PipelineConfig::functional(4, 8))
            .tables(tables(1, 64, 4))
            .backend(UnitBackend::new(0.1))
            .build()
            .expect("pipeline");
        let result = rt.run_supervised(&[batch(1, &[1])], policy);
        match result {
            Err(ScratchError::InvalidConfig { detail }) => {
                assert!(detail.contains("retry_budget"), "detail: {detail}");
            }
            other => panic!("expected InvalidConfig, got {other:?}"),
        }
    }
}
