//! Worker-count invariance — the data-parallel determinism contract.
//!
//! `Schedule::DataParallel` shards Collect, Insert and the Train
//! gather/scatter over a `WorkerPool`, but sharding only ever moves work
//! between threads along disjoint-output boundaries: no floating-point
//! reduction is split, so the pool width must be *unobservable* in every
//! result. This suite pins that down the strongest way available: for
//! arbitrary traces, parallelism ∈ {1, 2, 4, 7} must produce
//! byte-identical `PipelineReport` JSON, bit-identical trained tables and
//! identical audit iteration totals.

use embeddings::{EmbeddingTable, SparseBatch, TableBag};
use proptest::prelude::*;
use scratchpipe::{IterationRecord, MemorySink, Pipeline, PipelineConfig, Schedule, UnitBackend};
use serde::{Deserialize as _, Value};
use tracegen::{LocalityProfile, TraceConfig, TraceGenerator};

const WIDTHS: [usize; 4] = [1, 2, 4, 7];

/// Aggregate of one audit stream's `iteration` events.
#[derive(Debug, PartialEq, Eq)]
struct AuditTotals {
    iterations: u64,
    hits: u64,
    misses: u64,
    evictions: u64,
    loss_bits: Vec<u32>,
}

fn audit_totals(lines: &[String]) -> AuditTotals {
    let mut totals = AuditTotals {
        iterations: 0,
        hits: 0,
        misses: 0,
        evictions: 0,
        loss_bits: Vec::new(),
    };
    for line in lines {
        let event: Value = serde_json::from_str(line).expect("audit line parses");
        if !matches!(event.get("event"), Some(Value::Str(kind)) if kind == "iteration") {
            continue;
        }
        let rec = IterationRecord::from_value(&event).expect("IterationRecord");
        totals.iterations += 1;
        totals.hits += rec.hits;
        totals.misses += rec.misses;
        totals.evictions += rec.evictions;
        totals.loss_bits.push(rec.loss.to_bits());
    }
    totals
}

/// Runs one trace under `schedule` at `parallelism`, returning the
/// report JSON, the trained tables and the audit totals.
fn run(
    tables: Vec<EmbeddingTable>,
    dim: usize,
    slots: usize,
    trace: &[SparseBatch],
    schedule: Schedule,
    parallelism: usize,
) -> (String, Vec<EmbeddingTable>, AuditTotals) {
    let sink = MemorySink::new();
    let mut rt = Pipeline::builder()
        .config(PipelineConfig::functional(dim, slots))
        .tables(tables)
        .backend(UnitBackend::new(0.1))
        .schedule(schedule)
        .parallelism(parallelism)
        .audit(sink.clone())
        .build()
        .expect("pipeline");
    let report = rt.run(trace).expect("run");
    let json = serde_json::to_string(&report).expect("serialize report");
    (json, rt.into_tables(), audit_totals(&sink.lines()))
}

const ROWS: u64 = 64;
const DIM: usize = 4;

fn small_tables() -> Vec<EmbeddingTable> {
    (0..2)
        .map(|t| EmbeddingTable::seeded(ROWS as usize, DIM, t))
        .collect()
}

fn arb_trace() -> impl Strategy<Value = Vec<SparseBatch>> {
    // 2 tables, up to 16 batches of 1-3 samples × 1-4 lookups over 64 rows.
    let sample = proptest::collection::vec(0u64..ROWS, 1..4);
    let table = proptest::collection::vec(sample, 1..3);
    let batch = (table.clone(), table).prop_map(|(t0, t1)| {
        let b = t0.len().min(t1.len());
        SparseBatch::new(vec![
            TableBag::from_samples(&t0[..b]),
            TableBag::from_samples(&t1[..b]),
        ])
    });
    proptest::collection::vec(batch, 1..16)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn any_worker_count_is_byte_identical(trace in arb_trace()) {
        let (base_json, base_tables, base_totals) =
            run(small_tables(), DIM, 64, &trace, Schedule::DataParallel, WIDTHS[0]);
        prop_assert_eq!(base_totals.iterations as usize, trace.len());
        for &width in &WIDTHS[1..] {
            let (json, tables, totals) =
                run(small_tables(), DIM, 64, &trace, Schedule::DataParallel, width);
            prop_assert_eq!(&base_json, &json, "report JSON diverged at width {}", width);
            prop_assert_eq!(&base_totals, &totals, "audit totals diverged at width {}", width);
            for (t, (a, b)) in base_tables.iter().zip(&tables).enumerate() {
                prop_assert!(
                    a.bit_eq(b),
                    "width {} table {} diverged at {:?}", width, t, a.first_diff_row(b)
                );
            }
        }
    }
}

/// The same invariance at a shape large enough that the stage regions
/// clear `WorkerPool::MIN_SHARD_WORK` and the wide pools genuinely spawn
/// threads (gather work = 128 × 8 × 4 tables × dim 16 = 65 536 elements),
/// checked against the plain synchronous schedule as ground truth.
#[test]
fn wide_pools_match_sync_above_the_sharding_floor() {
    let tc = TraceConfig {
        num_tables: 4,
        rows_per_table: 3_000,
        lookups_per_sample: 8,
        batch_size: 128,
        profile: LocalityProfile::Medium,
        seed: 123,
    };
    let dim = 16;
    let batches = TraceGenerator::new(tc).take_batches(12);
    let mk_tables = || -> Vec<EmbeddingTable> {
        (0..tc.num_tables)
            .map(|t| EmbeddingTable::seeded(tc.rows_per_table as usize, dim, 700 + t as u64))
            .collect()
    };
    let slots = 3_000;
    let (sync_json, sync_tables, sync_totals) =
        run(mk_tables(), dim, slots, &batches, Schedule::Sync, 1);
    for width in WIDTHS {
        let (json, tables, totals) = run(
            mk_tables(),
            dim,
            slots,
            &batches,
            Schedule::DataParallel,
            width,
        );
        assert_eq!(sync_json, json, "width {width}: report JSON diverged");
        assert_eq!(sync_totals, totals, "width {width}: audit totals diverged");
        for (t, (a, b)) in sync_tables.iter().zip(&tables).enumerate() {
            assert!(
                a.bit_eq(b),
                "width {width}: table {t} diverged at {:?}",
                a.first_diff_row(b)
            );
        }
    }
}
