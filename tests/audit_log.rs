//! Golden audit-log test — the JSONL stream is the run's ground truth.
//!
//! A pipeline run with an audit sink attached must produce a stream that
//! (a) parses line-by-line as JSON with the documented envelope, (b)
//! reconstructs every [`IterationRecord`] through the ordinary serde
//! path, and (c) *reconciles*: the per-stage traffic summed over the
//! `iteration` events equals [`PipelineReport::total_traffic`], and the
//! closing `run_completed` summary matches the report. This is what lets
//! the benchmark reproduce its numbers from the log alone.

use scratchpipe::{
    FileSink, IterationRecord, MemorySink, Pipeline, PipelineConfig, Schedule, StageTraffic,
    UnitBackend,
};
use serde::{Deserialize as _, Value};
use tracegen::{LocalityProfile, TraceConfig, TraceGenerator};

fn run_with_audit(schedule: Schedule) -> (scratchpipe::PipelineReport, Vec<String>) {
    run_with_audit_at(schedule, 1)
}

fn run_with_audit_at(
    schedule: Schedule,
    parallelism: usize,
) -> (scratchpipe::PipelineReport, Vec<String>) {
    let tc = TraceConfig {
        num_tables: 3,
        rows_per_table: 500,
        lookups_per_sample: 4,
        batch_size: 8,
        profile: LocalityProfile::Medium,
        seed: 0xA0D1,
    };
    let batches = TraceGenerator::new(tc).take_batches(25);
    let tables: Vec<embeddings::EmbeddingTable> = (0..3)
        .map(|t| embeddings::EmbeddingTable::seeded(500, 8, 60 + t))
        .collect();
    let sink = MemorySink::new();
    let mut rt = Pipeline::builder()
        .config(PipelineConfig::functional(8, 192))
        .tables(tables)
        .backend(UnitBackend::new(0.05))
        .schedule(schedule)
        .parallelism(parallelism)
        .audit(sink.clone())
        .named("audit-golden")
        .build()
        .expect("pipeline");
    let report = rt.run(&batches).expect("run");
    (report, sink.lines())
}

fn str_field<'v>(event: &'v Value, key: &str) -> &'v str {
    match event.get(key) {
        Some(Value::Str(s)) => s,
        other => panic!("field {key}: expected Str, got {other:?}"),
    }
}

fn uint_field(event: &Value, key: &str) -> u64 {
    match event.get(key) {
        Some(Value::UInt(n)) => *n,
        other => panic!("field {key}: expected UInt, got {other:?}"),
    }
}

#[test]
fn every_line_parses_with_the_documented_envelope() {
    let (_, lines) = run_with_audit(Schedule::Sync);
    assert!(!lines.is_empty());
    let mut run_id = None;
    for (i, line) in lines.iter().enumerate() {
        let event: Value = serde_json::from_str(line)
            .unwrap_or_else(|e| panic!("line {i} is not valid JSON: {e}"));
        let kind = str_field(&event, "event");
        assert!(
            ["run_started", "iteration", "run_completed"].contains(&kind),
            "line {i}: unknown event kind {kind}"
        );
        assert_eq!(str_field(&event, "run"), "audit-golden");
        assert_eq!(
            uint_field(&event, "seq"),
            i as u64,
            "seq is the line number"
        );
        let id = str_field(&event, "run_id").to_owned();
        assert!(!id.is_empty());
        match &run_id {
            None => run_id = Some(id),
            Some(first) => assert_eq!(first, &id, "run_id constant within a run"),
        }
    }
    let first: Value = serde_json::from_str(&lines[0]).unwrap();
    assert_eq!(str_field(&first, "event"), "run_started");
    let last: Value = serde_json::from_str(lines.last().unwrap()).unwrap();
    assert_eq!(str_field(&last, "event"), "run_completed");
}

#[test]
fn iteration_events_reconcile_with_the_report() {
    for schedule in [Schedule::Sync, Schedule::Threaded, Schedule::DataParallel] {
        let (report, lines) = run_with_audit_at(schedule, 2);
        let mut summed = StageTraffic::default();
        let mut indices = Vec::new();
        for line in &lines {
            let event: Value = serde_json::from_str(line).expect("parse");
            if str_field(&event, "event") != "iteration" {
                continue;
            }
            // The iteration event *is* a serialized IterationRecord (plus
            // the envelope and stage_nanos, which deserialization ignores).
            let rec = IterationRecord::from_value(&event).expect("IterationRecord");
            let reference = &report.records[rec.index];
            assert_eq!(rec.hits, reference.hits);
            assert_eq!(rec.misses, reference.misses);
            assert_eq!(rec.evictions, reference.evictions);
            assert_eq!(rec.total_lookups, reference.total_lookups);
            assert_eq!(rec.unique_rows, reference.unique_rows);
            assert_eq!(rec.loss.to_bits(), reference.loss.to_bits());
            assert_eq!(rec.traffic, reference.traffic);
            summed += rec.traffic;
            indices.push(rec.index);
            // Per-stage wall-clock timings exist for all five stages.
            let Some(Value::Map(nanos)) = event.get("stage_nanos") else {
                panic!("iteration event lacks stage_nanos map");
            };
            let names: Vec<&str> = nanos.iter().map(|(k, _)| k.as_str()).collect();
            assert_eq!(names, ["Plan", "Collect", "Exchange", "Insert", "Train"]);
            // The sharded stages report a per-shard timing breakdown;
            // Plan and Exchange never shard and are omitted from it.
            let Some(Value::Map(shards)) = event.get("stage_shards") else {
                panic!("iteration event lacks stage_shards map");
            };
            let shard_names: Vec<&str> = shards.iter().map(|(k, _)| k.as_str()).collect();
            assert_eq!(shard_names, ["Collect", "Insert", "Train"]);
            for (stage, entry) in shards {
                let Value::Seq(items) = entry else {
                    panic!("stage_shards.{stage}: expected a sequence");
                };
                assert!(!items.is_empty(), "stage_shards.{stage} is empty");
                assert!(
                    items.iter().all(|v| matches!(v, Value::UInt(_))),
                    "stage_shards.{stage}: non-integer shard nanos"
                );
            }
        }
        // One event per mini-batch, in order.
        assert_eq!(indices, (0..report.iterations).collect::<Vec<_>>());
        // The reconciliation at the heart of the audit contract.
        assert_eq!(
            summed,
            report.total_traffic(),
            "{schedule:?}: summed per-stage traffic != report total"
        );
    }
}

#[test]
fn run_completed_summary_matches_the_report() {
    let (report, lines) = run_with_audit(Schedule::Sync);
    let last: Value = serde_json::from_str(lines.last().unwrap()).expect("parse");
    assert_eq!(uint_field(&last, "iterations"), report.iterations as u64);
    assert!(uint_field(&last, "elapsed_ns") > 0);
    assert_eq!(str_field(&last, "schedule"), "sync");
    let flush = memsim::Traffic::from_value(last.get("flush_traffic").expect("flush_traffic"))
        .expect("Traffic");
    assert_eq!(flush, report.flush_traffic);
    match last.get("hit_rate") {
        Some(Value::Float(hr)) => assert!((hr - report.hit_rate()).abs() < 1e-12),
        other => panic!("hit_rate: {other:?}"),
    }
    match last.get("peak_held_slots") {
        Some(Value::Seq(items)) => assert_eq!(items.len(), report.peak_held_slots.len()),
        other => panic!("peak_held_slots: {other:?}"),
    }
    // A lossless sink reports zero drops in the closing event.
    assert_eq!(uint_field(&last, "dropped_lines"), 0);
}

#[test]
fn disabled_audit_emits_nothing_and_changes_nothing() {
    // Same run with and without a sink: identical reports, empty stream.
    let tc = TraceConfig {
        num_tables: 2,
        rows_per_table: 200,
        lookups_per_sample: 4,
        batch_size: 8,
        profile: LocalityProfile::Medium,
        seed: 9,
    };
    let batches = TraceGenerator::new(tc).take_batches(10);
    let tables = || -> Vec<embeddings::EmbeddingTable> {
        (0..2)
            .map(|t| embeddings::EmbeddingTable::seeded(200, 8, t))
            .collect()
    };
    let run = |sink: Option<MemorySink>| {
        let mut b = Pipeline::builder()
            .config(PipelineConfig::functional(8, 192))
            .tables(tables())
            .backend(UnitBackend::new(0.05))
            .schedule(Schedule::Sync);
        if let Some(s) = sink {
            b = b.audit(s);
        }
        b.build().expect("pipeline").run(&batches).expect("run")
    };
    let audited_sink = MemorySink::new();
    let audited = run(Some(audited_sink.clone()));
    let silent = run(None);
    assert_eq!(
        serde_json::to_string(&audited).unwrap(),
        serde_json::to_string(&silent).unwrap(),
        "audit must be a pure observer"
    );
    assert_eq!(audited_sink.lines().len(), batches.len() + 2);
}

/// A writer whose every byte fails — the worst disk imaginable.
struct BrokenWriter;

impl std::io::Write for BrokenWriter {
    fn write(&mut self, _buf: &[u8]) -> std::io::Result<usize> {
        Err(std::io::Error::other("disk full"))
    }

    fn flush(&mut self) -> std::io::Result<()> {
        Err(std::io::Error::other("disk full"))
    }
}

#[test]
fn file_sink_write_failures_drop_lines_without_panicking() {
    // Audit output is best-effort: a sink whose writer errors on every
    // line must not panic or perturb the run, and must count what it
    // lost so the truncation is detectable afterwards.
    let tc = TraceConfig {
        num_tables: 2,
        rows_per_table: 200,
        lookups_per_sample: 4,
        batch_size: 8,
        profile: LocalityProfile::Medium,
        seed: 9,
    };
    let batches = TraceGenerator::new(tc).take_batches(10);
    let tables: Vec<embeddings::EmbeddingTable> = (0..2)
        .map(|t| embeddings::EmbeddingTable::seeded(200, 8, t))
        .collect();
    let sink = FileSink::from_writer(BrokenWriter);
    assert_eq!(sink.dropped_lines(), 0);
    let dropped = sink.dropped_counter();
    let mut rt = Pipeline::builder()
        .config(PipelineConfig::functional(8, 192))
        .tables(tables)
        .backend(UnitBackend::new(0.05))
        .schedule(Schedule::Sync)
        .audit(sink)
        .build()
        .expect("pipeline");
    let report = rt
        .run(&batches)
        .expect("a broken audit disk must not fail the run");
    assert_eq!(report.iterations, batches.len());
    assert_eq!(
        dropped.load(std::sync::atomic::Ordering::Relaxed),
        batches.len() as u64 + 2,
        "every attempted line (run_started + iterations + run_completed) is counted"
    );
}

/// A writer that fails its first `failures` write calls, then recovers —
/// a disk that was briefly full. Successful writes land in `buf`.
struct FlakyWriter {
    failures: usize,
    buf: std::sync::Arc<std::sync::Mutex<Vec<u8>>>,
}

impl std::io::Write for FlakyWriter {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        if self.failures > 0 {
            self.failures -= 1;
            return Err(std::io::Error::other("disk full"));
        }
        self.buf.lock().unwrap().extend_from_slice(buf);
        Ok(buf.len())
    }

    fn flush(&mut self) -> std::io::Result<()> {
        Ok(())
    }
}

#[test]
fn run_completed_reports_dropped_lines_in_the_stream_itself() {
    // When a FileSink loses early lines, the closing run_completed event
    // must carry the drop count, so a reader of the (truncated) stream
    // can tell it is incomplete without access to the in-process counter.
    let tc = TraceConfig {
        num_tables: 2,
        rows_per_table: 200,
        lookups_per_sample: 4,
        batch_size: 8,
        profile: LocalityProfile::Medium,
        seed: 9,
    };
    let batches = TraceGenerator::new(tc).take_batches(10);
    let tables: Vec<embeddings::EmbeddingTable> = (0..2)
        .map(|t| embeddings::EmbeddingTable::seeded(200, 8, t))
        .collect();
    let buf = std::sync::Arc::new(std::sync::Mutex::new(Vec::new()));
    // Lose run_started and the first two iteration lines, then recover.
    let sink = FileSink::from_writer(FlakyWriter {
        failures: 3,
        buf: buf.clone(),
    });
    let mut rt = Pipeline::builder()
        .config(PipelineConfig::functional(8, 192))
        .tables(tables)
        .backend(UnitBackend::new(0.05))
        .schedule(Schedule::Sync)
        .audit(sink)
        .build()
        .expect("pipeline");
    rt.run(&batches).expect("run");
    let written = String::from_utf8(buf.lock().unwrap().clone()).expect("utf8");
    let lines: Vec<&str> = written.lines().collect();
    assert_eq!(
        lines.len(),
        batches.len() + 2 - 3,
        "exactly the surviving lines landed"
    );
    let last: Value = serde_json::from_str(lines.last().unwrap()).expect("parse");
    assert_eq!(str_field(&last, "event"), "run_completed");
    assert_eq!(
        uint_field(&last, "dropped_lines"),
        3,
        "the stream itself records how many lines it lost"
    );
    // seq still counts every *attempted* line, exposing the gaps.
    assert_eq!(uint_field(&last, "seq"), batches.len() as u64 + 1);
}
