//! Offline vendored stand-in for the
//! [`crossbeam`](https://crates.io/crates/crossbeam) crate: just the
//! `channel` module, implemented over `Mutex` + `Condvar`.
//!
//! The build environment has no network access to crates.io, so this
//! workspace vendors the subset it uses: MPMC `bounded` / `unbounded`
//! channels with blocking `send` / `recv`, disconnection semantics and a
//! blocking receiver iterator. The threaded ScratchPipe runtime only
//! needs correctness and backpressure, not lock-free throughput.

/// Multi-producer multi-consumer channels.
pub mod channel {
    use std::collections::VecDeque;
    use std::sync::{Arc, Condvar, Mutex};

    struct State<T> {
        queue: VecDeque<T>,
        senders: usize,
        receivers: usize,
    }

    struct Chan<T> {
        state: Mutex<State<T>>,
        capacity: Option<usize>,
        not_empty: Condvar,
        not_full: Condvar,
    }

    /// Error returned by [`Sender::send`] when all receivers are gone.
    /// Carries the unsent message, like crossbeam's `SendError`.
    #[derive(Debug, PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    /// Error returned by [`Receiver::recv`] when the channel is empty and
    /// all senders are gone.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct RecvError;

    /// Error returned by [`Receiver::try_recv`]: either the queue is
    /// momentarily empty, or it is empty *and* disconnected. Mirrors
    /// crossbeam's `TryRecvError`.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum TryRecvError {
        /// No message available right now; senders still exist.
        Empty,
        /// No message available and every sender has been dropped.
        Disconnected,
    }

    /// The sending half of a channel.
    #[derive(Debug)]
    pub struct Sender<T> {
        chan: Arc<Chan<T>>,
    }

    /// The receiving half of a channel.
    #[derive(Debug)]
    pub struct Receiver<T> {
        chan: Arc<Chan<T>>,
    }

    impl<T> std::fmt::Debug for Chan<T> {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.debug_struct("Chan")
                .field("capacity", &self.capacity)
                .finish()
        }
    }

    fn new_channel<T>(capacity: Option<usize>) -> (Sender<T>, Receiver<T>) {
        let chan = Arc::new(Chan {
            state: Mutex::new(State {
                queue: VecDeque::new(),
                senders: 1,
                receivers: 1,
            }),
            capacity,
            not_empty: Condvar::new(),
            not_full: Condvar::new(),
        });
        (Sender { chan: chan.clone() }, Receiver { chan })
    }

    /// Create a channel holding at most `cap` in-flight messages; `send`
    /// blocks while full (backpressure).
    pub fn bounded<T>(cap: usize) -> (Sender<T>, Receiver<T>) {
        new_channel(Some(cap))
    }

    /// Create a channel with unlimited buffering; `send` never blocks.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        new_channel(None)
    }

    impl<T> Sender<T> {
        /// Block until the message is enqueued, or return it in
        /// `Err(SendError)` if every receiver has been dropped.
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            let mut state = self.chan.state.lock().unwrap();
            loop {
                if state.receivers == 0 {
                    return Err(SendError(value));
                }
                let full = self
                    .chan
                    .capacity
                    .is_some_and(|cap| state.queue.len() >= cap);
                if !full {
                    state.queue.push_back(value);
                    self.chan.not_empty.notify_one();
                    return Ok(());
                }
                state = self.chan.not_full.wait(state).unwrap();
            }
        }

        /// The number of messages currently queued in the channel.
        pub fn len(&self) -> usize {
            self.chan.state.lock().unwrap().queue.len()
        }

        /// Whether the channel currently holds no messages.
        pub fn is_empty(&self) -> bool {
            self.len() == 0
        }
    }

    impl<T> Receiver<T> {
        /// Block until a message arrives, or return `Err(RecvError)` once
        /// the queue is drained and every sender has been dropped.
        pub fn recv(&self) -> Result<T, RecvError> {
            let mut state = self.chan.state.lock().unwrap();
            loop {
                if let Some(value) = state.queue.pop_front() {
                    self.chan.not_full.notify_one();
                    return Ok(value);
                }
                if state.senders == 0 {
                    return Err(RecvError);
                }
                state = self.chan.not_empty.wait(state).unwrap();
            }
        }

        /// Non-blocking receive: pops a queued message if one is ready.
        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            let mut state = self.chan.state.lock().unwrap();
            if let Some(value) = state.queue.pop_front() {
                self.chan.not_full.notify_one();
                return Ok(value);
            }
            if state.senders == 0 {
                Err(TryRecvError::Disconnected)
            } else {
                Err(TryRecvError::Empty)
            }
        }

        /// A blocking iterator that yields until the channel disconnects.
        pub fn iter(&self) -> Iter<'_, T> {
            Iter { receiver: self }
        }
    }

    /// Blocking iterator over received messages; ends on disconnect.
    #[derive(Debug)]
    pub struct Iter<'a, T> {
        receiver: &'a Receiver<T>,
    }

    impl<T> Iterator for Iter<'_, T> {
        type Item = T;

        fn next(&mut self) -> Option<T> {
            self.receiver.recv().ok()
        }
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            self.chan.state.lock().unwrap().senders += 1;
            Sender {
                chan: self.chan.clone(),
            }
        }
    }

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Self {
            self.chan.state.lock().unwrap().receivers += 1;
            Receiver {
                chan: self.chan.clone(),
            }
        }
    }

    impl<T> Drop for Sender<T> {
        fn drop(&mut self) {
            let mut state = self.chan.state.lock().unwrap();
            state.senders -= 1;
            if state.senders == 0 {
                drop(state);
                self.chan.not_empty.notify_all();
            }
        }
    }

    impl<T> Drop for Receiver<T> {
        fn drop(&mut self) {
            let mut state = self.chan.state.lock().unwrap();
            state.receivers -= 1;
            if state.receivers == 0 {
                drop(state);
                self.chan.not_full.notify_all();
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::channel::{bounded, unbounded, RecvError};
    use std::thread;

    #[test]
    fn fifo_order_and_disconnect() {
        let (tx, rx) = unbounded();
        for i in 0..10 {
            tx.send(i).unwrap();
        }
        drop(tx);
        let got: Vec<i32> = rx.iter().collect();
        assert_eq!(got, (0..10).collect::<Vec<_>>());
        assert_eq!(rx.recv(), Err(RecvError));
    }

    #[test]
    fn bounded_applies_backpressure_across_threads() {
        let (tx, rx) = bounded(2);
        let producer = thread::spawn(move || {
            for i in 0..100u64 {
                tx.send(i).unwrap();
            }
        });
        let got: Vec<u64> = rx.iter().collect();
        producer.join().unwrap();
        assert_eq!(got, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn send_fails_after_receiver_drops() {
        let (tx, rx) = bounded(1);
        drop(rx);
        assert!(tx.send(1).is_err());
    }
}
