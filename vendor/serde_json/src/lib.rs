//! Offline vendored JSON front-end for the vendored `serde` stand-in:
//! renders [`serde::Value`] trees as JSON text and parses them back.
//!
//! Floats are printed with Rust's shortest round-trip formatting (std's
//! `Display` for `f64` is guaranteed to parse back to the same bits), so
//! serialize→deserialize preserves every finite `f64` exactly — the
//! property the report round-trip tests check with `to_bits`. Non-finite
//! floats are rejected, as in real `serde_json`.

use serde::{Deserialize, Serialize, Value};

pub use serde::Error;

/// Serialize `value` as compact JSON text.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&value.to_value(), &mut out)?;
    Ok(out)
}

/// Deserialize a `T` from JSON text.
pub fn from_str<T: Deserialize>(text: &str) -> Result<T, Error> {
    T::from_value(&parse(text)?)
}

/// Parse JSON text into a [`Value`] tree.
pub fn parse(text: &str) -> Result<Value, Error> {
    let bytes = text.as_bytes();
    let mut pos = 0;
    let value = parse_value(bytes, &mut pos)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(Error(format!("trailing characters at byte {pos}")));
    }
    Ok(value)
}

fn write_value(value: &Value, out: &mut String) -> Result<(), Error> {
    match value {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::UInt(n) => out.push_str(&n.to_string()),
        Value::Int(n) => out.push_str(&n.to_string()),
        Value::Float(f) => {
            if !f.is_finite() {
                return Err(Error(format!("cannot serialize non-finite float {f}")));
            }
            // Shortest round-trip representation; force a `.0` so the
            // value reads back as a float-looking token.
            let s = f.to_string();
            out.push_str(&s);
            if !s.contains(['.', 'e', 'E']) {
                out.push_str(".0");
            }
        }
        Value::Str(s) => write_string(s, out),
        Value::Seq(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_value(item, out)?;
            }
            out.push(']');
        }
        Value::Map(entries) => {
            out.push('{');
            for (i, (key, item)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_string(key, out);
                out.push(':');
                write_value(item, out)?;
            }
            out.push('}');
        }
    }
    Ok(())
}

fn write_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && matches!(bytes[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn expect(bytes: &[u8], pos: &mut usize, token: &str) -> Result<(), Error> {
    if bytes[*pos..].starts_with(token.as_bytes()) {
        *pos += token.len();
        Ok(())
    } else {
        Err(Error(format!(
            "expected `{token}` at byte {pos}",
            pos = *pos
        )))
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize) -> Result<Value, Error> {
    skip_ws(bytes, pos);
    match bytes.get(*pos) {
        None => Err(Error("unexpected end of input".to_string())),
        Some(b'n') => expect(bytes, pos, "null").map(|()| Value::Null),
        Some(b't') => expect(bytes, pos, "true").map(|()| Value::Bool(true)),
        Some(b'f') => expect(bytes, pos, "false").map(|()| Value::Bool(false)),
        Some(b'"') => parse_string(bytes, pos).map(Value::Str),
        Some(b'[') => {
            *pos += 1;
            let mut items = Vec::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b']') {
                *pos += 1;
                return Ok(Value::Seq(items));
            }
            loop {
                items.push(parse_value(bytes, pos)?);
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b']') => {
                        *pos += 1;
                        return Ok(Value::Seq(items));
                    }
                    _ => return Err(Error(format!("expected `,` or `]` at byte {}", *pos))),
                }
            }
        }
        Some(b'{') => {
            *pos += 1;
            let mut entries = Vec::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b'}') {
                *pos += 1;
                return Ok(Value::Map(entries));
            }
            loop {
                skip_ws(bytes, pos);
                let key = parse_string(bytes, pos)?;
                skip_ws(bytes, pos);
                expect(bytes, pos, ":")?;
                let value = parse_value(bytes, pos)?;
                entries.push((key, value));
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b'}') => {
                        *pos += 1;
                        return Ok(Value::Map(entries));
                    }
                    _ => return Err(Error(format!("expected `,` or `}}` at byte {}", *pos))),
                }
            }
        }
        Some(_) => parse_number(bytes, pos),
    }
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String, Error> {
    if bytes.get(*pos) != Some(&b'"') {
        return Err(Error(format!("expected string at byte {}", *pos)));
    }
    *pos += 1;
    let mut out = String::new();
    loop {
        match bytes.get(*pos) {
            None => return Err(Error("unterminated string".to_string())),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match bytes.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'u') => {
                        let hex = bytes
                            .get(*pos + 1..*pos + 5)
                            .ok_or_else(|| Error("truncated \\u escape".to_string()))?;
                        let hex = std::str::from_utf8(hex)
                            .map_err(|_| Error("bad \\u escape".to_string()))?;
                        let code = u32::from_str_radix(hex, 16)
                            .map_err(|_| Error("bad \\u escape".to_string()))?;
                        // Surrogate pairs are not needed for this workspace's
                        // report payloads; reject rather than mis-decode.
                        let c = char::from_u32(code)
                            .ok_or_else(|| Error(format!("invalid \\u{hex} escape")))?;
                        out.push(c);
                        *pos += 4;
                    }
                    other => return Err(Error(format!("bad escape {other:?}"))),
                }
                *pos += 1;
            }
            Some(_) => {
                // Consume one UTF-8 code point.
                let rest = std::str::from_utf8(&bytes[*pos..])
                    .map_err(|_| Error("invalid UTF-8 in string".to_string()))?;
                let c = rest.chars().next().unwrap();
                out.push(c);
                *pos += c.len_utf8();
            }
        }
    }
}

fn parse_number(bytes: &[u8], pos: &mut usize) -> Result<Value, Error> {
    let start = *pos;
    if bytes.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    let mut is_float = false;
    while let Some(&b) = bytes.get(*pos) {
        match b {
            b'0'..=b'9' => *pos += 1,
            b'.' | b'e' | b'E' | b'+' | b'-' => {
                is_float = true;
                *pos += 1;
            }
            _ => break,
        }
    }
    let text = std::str::from_utf8(&bytes[start..*pos]).unwrap();
    if text.is_empty() || text == "-" {
        return Err(Error(format!("expected number at byte {start}")));
    }
    if !is_float {
        if let Ok(n) = text.parse::<u64>() {
            return Ok(Value::UInt(n));
        }
        if let Ok(n) = text.parse::<i64>() {
            return Ok(Value::Int(n));
        }
    }
    text.parse::<f64>()
        .map(Value::Float)
        .map_err(|_| Error(format!("invalid number `{text}`")))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn floats_round_trip_bit_exactly() {
        for f in [
            0.0f64,
            -0.0,
            1.0,
            1.5,
            1e-300,
            123.456_789_012_345_68,
            f64::MIN_POSITIVE,
        ] {
            let json = to_string(&f).unwrap();
            let back: f64 = from_str(&json).unwrap();
            assert_eq!(back.to_bits(), f.to_bits(), "{f} -> {json}");
        }
        assert!(to_string(&f64::NAN).is_err());
    }

    #[test]
    fn structures_round_trip() {
        let v = Value::Map(vec![
            (
                "name".to_string(),
                Value::Str("a \"quoted\"\nstring".to_string()),
            ),
            (
                "xs".to_string(),
                Value::Seq(vec![Value::UInt(1), Value::Int(-2), Value::Null]),
            ),
            ("flag".to_string(), Value::Bool(true)),
        ]);
        let mut out = String::new();
        super::write_value(&v, &mut out).unwrap();
        assert_eq!(parse(&out).unwrap(), v);
    }

    #[test]
    fn integers_keep_full_precision() {
        let json = to_string(&u64::MAX).unwrap();
        let back: u64 = from_str(&json).unwrap();
        assert_eq!(back, u64::MAX);
    }
}
