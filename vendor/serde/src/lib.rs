//! Offline vendored stand-in for [`serde`](https://serde.rs).
//!
//! The build environment has no network access to crates.io, so this
//! workspace vendors a simplified serde: instead of the real crate's
//! visitor-based `Serializer`/`Deserializer` architecture, values
//! convert to and from a self-describing [`Value`] tree, and the
//! `serde_json` stand-in renders that tree as JSON. The derive macros
//! (`#[derive(Serialize, Deserialize)]`, re-exported from
//! `serde_derive`) and the external-tagging conventions match real
//! serde for the shapes this workspace uses: named-field structs,
//! tuple structs, and enums with unit or one-field tuple variants.

use std::collections::HashMap;
use std::fmt;

pub use serde_derive::{Deserialize, Serialize};

/// A self-describing value tree: the interchange format between
/// `Serialize`, `Deserialize` and the `serde_json` stand-in.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// JSON `null`.
    Null,
    /// A boolean.
    Bool(bool),
    /// A non-negative integer.
    UInt(u64),
    /// A negative integer.
    Int(i64),
    /// A floating-point number.
    Float(f64),
    /// A string.
    Str(String),
    /// An ordered sequence.
    Seq(Vec<Value>),
    /// An ordered map with string keys (field order is preserved).
    Map(Vec<(String, Value)>),
}

impl Value {
    /// Look up a key in a `Map` value.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Map(entries) => entries.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }
}

/// Error produced when a [`Value`] does not match the target type.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error(pub String);

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "deserialization error: {}", self.0)
    }
}

impl std::error::Error for Error {}

impl Error {
    /// Build an error describing an unexpected value shape.
    pub fn unexpected(expected: &str, got: &Value) -> Error {
        Error(format!("expected {expected}, got {got:?}"))
    }
}

/// Types convertible into a [`Value`] tree.
pub trait Serialize {
    /// Convert `self` to a value tree.
    fn to_value(&self) -> Value;
}

/// Types reconstructible from a [`Value`] tree.
pub trait Deserialize: Sized {
    /// Reconstruct `Self` from a value tree.
    fn from_value(value: &Value) -> Result<Self, Error>;
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Bool(b) => Ok(*b),
            other => Err(Error::unexpected("bool", other)),
        }
    }
}

macro_rules! impl_serde_uint {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::UInt(*self as u64)
            }
        }
        impl Deserialize for $t {
            fn from_value(value: &Value) -> Result<Self, Error> {
                let n = match value {
                    Value::UInt(n) => *n,
                    Value::Int(n) if *n >= 0 => *n as u64,
                    Value::Float(f) if f.fract() == 0.0 && *f >= 0.0 => *f as u64,
                    other => return Err(Error::unexpected("unsigned integer", other)),
                };
                <$t>::try_from(n).map_err(|_| Error(format!(
                    "{} out of range for {}", n, stringify!($t))))
            }
        }
    )*};
}

impl_serde_uint!(u8, u16, u32, u64, usize);

macro_rules! impl_serde_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                let v = *self as i64;
                if v >= 0 { Value::UInt(v as u64) } else { Value::Int(v) }
            }
        }
        impl Deserialize for $t {
            fn from_value(value: &Value) -> Result<Self, Error> {
                let n: i64 = match value {
                    Value::Int(n) => *n,
                    Value::UInt(n) => i64::try_from(*n)
                        .map_err(|_| Error(format!("{n} out of range for i64")))?,
                    Value::Float(f) if f.fract() == 0.0 => *f as i64,
                    other => return Err(Error::unexpected("integer", other)),
                };
                <$t>::try_from(n).map_err(|_| Error(format!(
                    "{} out of range for {}", n, stringify!($t))))
            }
        }
    )*};
}

impl_serde_int!(i8, i16, i32, i64, isize);

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::Float(*self)
    }
}

impl Deserialize for f64 {
    fn from_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Float(f) => Ok(*f),
            Value::UInt(n) => Ok(*n as f64),
            Value::Int(n) => Ok(*n as f64),
            other => Err(Error::unexpected("number", other)),
        }
    }
}

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        Value::Float(f64::from(*self))
    }
}

impl Deserialize for f32 {
    fn from_value(value: &Value) -> Result<Self, Error> {
        f64::from_value(value).map(|f| f as f32)
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Str(s) => Ok(s.clone()),
            other => Err(Error::unexpected("string", other)),
        }
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_owned())
    }
}

impl Serialize for char {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Deserialize for char {
    fn from_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Str(s) if s.chars().count() == 1 => Ok(s.chars().next().unwrap()),
            other => Err(Error::unexpected("single-char string", other)),
        }
    }
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn from_value(value: &Value) -> Result<Self, Error> {
        Ok(value.clone())
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(v) => v.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Seq(items) => items.iter().map(T::from_value).collect(),
            other => Err(Error::unexpected("sequence", other)),
        }
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize + fmt::Debug, const N: usize> Deserialize for [T; N] {
    fn from_value(value: &Value) -> Result<Self, Error> {
        let items = Vec::<T>::from_value(value)?;
        let len = items.len();
        <[T; N]>::try_from(items)
            .map_err(|_| Error(format!("expected array of length {N}, got {len}")))
    }
}

impl<A: Serialize, B: Serialize> Serialize for (A, B) {
    fn to_value(&self) -> Value {
        Value::Seq(vec![self.0.to_value(), self.1.to_value()])
    }
}

impl<A: Deserialize, B: Deserialize> Deserialize for (A, B) {
    fn from_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Seq(items) if items.len() == 2 => {
                Ok((A::from_value(&items[0])?, B::from_value(&items[1])?))
            }
            other => Err(Error::unexpected("2-element sequence", other)),
        }
    }
}

impl<V: Serialize, S> Serialize for HashMap<String, V, S> {
    fn to_value(&self) -> Value {
        let mut entries: Vec<(String, Value)> = self
            .iter()
            .map(|(k, v)| (k.clone(), v.to_value()))
            .collect();
        // HashMap iteration order is unstable; sort for deterministic output.
        entries.sort_by(|a, b| a.0.cmp(&b.0));
        Value::Map(entries)
    }
}

impl<V: Deserialize, S: std::hash::BuildHasher + Default> Deserialize for HashMap<String, V, S> {
    fn from_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Map(entries) => entries
                .iter()
                .map(|(k, v)| Ok((k.clone(), V::from_value(v)?)))
                .collect(),
            other => Err(Error::unexpected("map", other)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_round_trip() {
        assert_eq!(u64::from_value(&42u64.to_value()).unwrap(), 42);
        assert_eq!(i32::from_value(&(-7i32).to_value()).unwrap(), -7);
        assert_eq!(f64::from_value(&1.5f64.to_value()).unwrap(), 1.5);
        assert_eq!(
            String::from_value(&"hi".to_string().to_value()).unwrap(),
            "hi"
        );
        assert_eq!(Option::<u8>::from_value(&Value::Null).unwrap(), None);
        let v: Vec<u32> = Deserialize::from_value(&vec![1u32, 2, 3].to_value()).unwrap();
        assert_eq!(v, vec![1, 2, 3]);
    }
}
