//! Offline vendored stand-in for
//! [`parking_lot`](https://crates.io/crates/parking_lot): a `Mutex` with
//! parking_lot's ergonomics (`lock()` returns the guard directly, no
//! poisoning; `into_inner` consumes the mutex) implemented over
//! `std::sync::Mutex`. Poisoning is transparently ignored, matching
//! parking_lot's behavior of not tracking poison at all.

use std::sync::{self, PoisonError};

pub use std::sync::MutexGuard;

/// A mutual-exclusion lock with parking_lot's panic-free API.
#[derive(Debug, Default)]
pub struct Mutex<T>(sync::Mutex<T>);

impl<T> Mutex<T> {
    /// Wrap `value` in a new mutex.
    pub fn new(value: T) -> Self {
        Mutex(sync::Mutex::new(value))
    }

    /// Acquire the lock, blocking until available. Never panics on a
    /// poisoned lock — the poison flag is discarded, as in parking_lot.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Consume the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

#[cfg(test)]
mod tests {
    use super::Mutex;
    use std::sync::Arc;
    use std::thread;

    #[test]
    fn counts_across_threads() {
        let counter = Arc::new(Mutex::new(0u64));
        let handles: Vec<_> = (0..8)
            .map(|_| {
                let counter = counter.clone();
                thread::spawn(move || {
                    for _ in 0..1000 {
                        *counter.lock() += 1;
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(Arc::try_unwrap(counter).unwrap().into_inner(), 8000);
    }
}
