//! Offline vendored derive macros for the vendored `serde` stand-in.
//!
//! Implements `#[derive(Serialize)]` and `#[derive(Deserialize)]` with
//! the `proc_macro` API alone (no `syn`/`quote`, which are unavailable
//! offline). Supported shapes — the ones this workspace uses:
//!
//! * structs with named fields,
//! * tuple structs (the one-field "newtype" form serializes
//!   transparently, matching real serde),
//! * enums whose variants are unit or one-field tuple variants
//!   (externally tagged, matching real serde: `"Variant"` or
//!   `{"Variant": value}`).
//!
//! Generic parameters, named-field enum variants and `#[serde(...)]`
//! attributes are not supported and fail with a compile error.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// The shape of the type a derive is applied to.
enum Shape {
    NamedStruct {
        name: String,
        fields: Vec<String>,
    },
    TupleStruct {
        name: String,
        arity: usize,
    },
    Enum {
        name: String,
        variants: Vec<(String, usize)>,
    },
}

#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    expand(input, gen_serialize)
}

#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    expand(input, gen_deserialize)
}

fn expand(input: TokenStream, gen: fn(&Shape) -> String) -> TokenStream {
    match parse_shape(input) {
        Ok(shape) => gen(&shape)
            .parse()
            .expect("serde_derive generated invalid Rust"),
        Err(msg) => format!("compile_error!({msg:?});").parse().unwrap(),
    }
}

/// Skip any `#[...]` attributes (including doc comments) at the cursor.
fn skip_attrs(tokens: &[TokenTree], mut i: usize) -> usize {
    while i + 1 < tokens.len() {
        match (&tokens[i], &tokens[i + 1]) {
            (TokenTree::Punct(p), TokenTree::Group(g))
                if p.as_char() == '#' && g.delimiter() == Delimiter::Bracket =>
            {
                i += 2;
            }
            _ => break,
        }
    }
    i
}

/// Skip a visibility qualifier (`pub`, `pub(crate)`, ...) at the cursor.
fn skip_vis(tokens: &[TokenTree], mut i: usize) -> usize {
    if matches!(&tokens[i], TokenTree::Ident(id) if id.to_string() == "pub") {
        i += 1;
        if i < tokens.len() {
            if let TokenTree::Group(g) = &tokens[i] {
                if g.delimiter() == Delimiter::Parenthesis {
                    i += 1;
                }
            }
        }
    }
    i
}

/// Number of comma-separated items at angle-bracket depth 0 of a token
/// run (commas inside `<...>` belong to generic arguments; commas inside
/// parens/brackets/braces are hidden inside `Group` tokens).
fn count_top_level_items(tokens: &[TokenTree]) -> usize {
    if tokens.is_empty() {
        return 0;
    }
    let mut depth = 0i32;
    let mut items = 1;
    let mut last_was_comma = false;
    for t in tokens {
        last_was_comma = false;
        if let TokenTree::Punct(p) = t {
            match p.as_char() {
                '<' => depth += 1,
                '>' => depth -= 1,
                ',' if depth == 0 => {
                    items += 1;
                    last_was_comma = true;
                }
                _ => {}
            }
        }
    }
    // A trailing comma does not start a new item.
    if last_was_comma {
        items -= 1;
    }
    items
}

fn parse_shape(input: TokenStream) -> Result<Shape, String> {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = skip_attrs(&tokens, 0);
    i = skip_vis(&tokens, i);

    let kind = match &tokens[i] {
        TokenTree::Ident(id) => id.to_string(),
        other => return Err(format!("expected `struct` or `enum`, got {other}")),
    };
    i += 1;
    let name = match &tokens[i] {
        TokenTree::Ident(id) => id.to_string(),
        other => return Err(format!("expected type name, got {other}")),
    };
    i += 1;
    if matches!(&tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        return Err(format!(
            "serde_derive (vendored) does not support generics on `{name}`"
        ));
    }

    match kind.as_str() {
        "struct" => match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Ok(Shape::NamedStruct {
                    name,
                    fields: parse_named_fields(g.stream())?,
                })
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                let inner: Vec<TokenTree> = g.stream().into_iter().collect();
                Ok(Shape::TupleStruct {
                    name,
                    arity: count_top_level_items(&inner),
                })
            }
            other => Err(format!("unsupported struct body for `{name}`: {other:?}")),
        },
        "enum" => match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => Ok(Shape::Enum {
                name,
                variants: parse_variants(g.stream())?,
            }),
            other => Err(format!("unsupported enum body for `{name}`: {other:?}")),
        },
        other => Err(format!("expected `struct` or `enum`, got `{other}`")),
    }
}

/// Field names of a named-field struct body.
fn parse_named_fields(body: TokenStream) -> Result<Vec<String>, String> {
    let tokens: Vec<TokenTree> = body.into_iter().collect();
    let mut fields = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        i = skip_vis(&tokens, skip_attrs(&tokens, i));
        match &tokens[i] {
            TokenTree::Ident(id) => fields.push(id.to_string()),
            other => return Err(format!("expected field name, got {other}")),
        }
        i += 1;
        match &tokens[i] {
            TokenTree::Punct(p) if p.as_char() == ':' => i += 1,
            other => return Err(format!("expected `:` after field name, got {other}")),
        }
        // Skip the type: everything up to a comma at angle depth 0.
        let mut depth = 0i32;
        while i < tokens.len() {
            if let TokenTree::Punct(p) = &tokens[i] {
                match p.as_char() {
                    '<' => depth += 1,
                    '>' => depth -= 1,
                    ',' if depth == 0 => break,
                    _ => {}
                }
            }
            i += 1;
        }
        i += 1; // past the comma (or end)
    }
    Ok(fields)
}

/// `(variant name, tuple arity)` pairs of an enum body; arity 0 = unit.
fn parse_variants(body: TokenStream) -> Result<Vec<(String, usize)>, String> {
    let tokens: Vec<TokenTree> = body.into_iter().collect();
    let mut variants = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        i = skip_attrs(&tokens, i);
        let name = match &tokens[i] {
            TokenTree::Ident(id) => id.to_string(),
            other => return Err(format!("expected variant name, got {other}")),
        };
        i += 1;
        let mut arity = 0;
        if let Some(TokenTree::Group(g)) = tokens.get(i) {
            match g.delimiter() {
                Delimiter::Parenthesis => {
                    let inner: Vec<TokenTree> = g.stream().into_iter().collect();
                    arity = count_top_level_items(&inner);
                    i += 1;
                }
                Delimiter::Brace => {
                    return Err(format!(
                        "serde_derive (vendored) does not support struct variant `{name}`"
                    ));
                }
                _ => {}
            }
        }
        if arity > 1 {
            return Err(format!(
                "serde_derive (vendored) supports at most one field per variant; `{name}` has {arity}"
            ));
        }
        variants.push((name, arity));
        // Skip an optional discriminant, then the separating comma.
        while i < tokens.len() {
            if let TokenTree::Punct(p) = &tokens[i] {
                if p.as_char() == ',' {
                    i += 1;
                    break;
                }
            }
            i += 1;
        }
    }
    Ok(variants)
}

fn gen_serialize(shape: &Shape) -> String {
    match shape {
        Shape::NamedStruct { name, fields } => {
            let entries: Vec<String> = fields
                .iter()
                .map(|f| format!("({f:?}.to_string(), ::serde::Serialize::to_value(&self.{f}))"))
                .collect();
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                     fn to_value(&self) -> ::serde::Value {{\n\
                         ::serde::Value::Map(vec![{}])\n\
                     }}\n\
                 }}",
                entries.join(", ")
            )
        }
        Shape::TupleStruct { name, arity: 1 } => format!(
            "impl ::serde::Serialize for {name} {{\n\
                 fn to_value(&self) -> ::serde::Value {{\n\
                     ::serde::Serialize::to_value(&self.0)\n\
                 }}\n\
             }}"
        ),
        Shape::TupleStruct { name, arity } => {
            let items: Vec<String> = (0..*arity)
                .map(|k| format!("::serde::Serialize::to_value(&self.{k})"))
                .collect();
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                     fn to_value(&self) -> ::serde::Value {{\n\
                         ::serde::Value::Seq(vec![{}])\n\
                     }}\n\
                 }}",
                items.join(", ")
            )
        }
        Shape::Enum { name, variants } => {
            let arms: Vec<String> = variants
                .iter()
                .map(|(v, arity)| {
                    if *arity == 0 {
                        format!("{name}::{v} => ::serde::Value::Str({v:?}.to_string()),")
                    } else {
                        format!(
                            "{name}::{v}(x) => ::serde::Value::Map(vec![({v:?}.to_string(), \
                             ::serde::Serialize::to_value(x))]),"
                        )
                    }
                })
                .collect();
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                     fn to_value(&self) -> ::serde::Value {{\n\
                         match self {{ {} }}\n\
                     }}\n\
                 }}",
                arms.join("\n")
            )
        }
    }
}

fn gen_deserialize(shape: &Shape) -> String {
    match shape {
        Shape::NamedStruct { name, fields } => {
            let inits: Vec<String> = fields
                .iter()
                .map(|f| {
                    format!(
                        "{f}: ::serde::Deserialize::from_value(\
                         value.get({f:?}).unwrap_or(&::serde::Value::Null))?"
                    )
                })
                .collect();
            format!(
                "impl ::serde::Deserialize for {name} {{\n\
                     fn from_value(value: &::serde::Value) -> Result<Self, ::serde::Error> {{\n\
                         Ok({name} {{ {} }})\n\
                     }}\n\
                 }}",
                inits.join(", ")
            )
        }
        Shape::TupleStruct { name, arity: 1 } => format!(
            "impl ::serde::Deserialize for {name} {{\n\
                 fn from_value(value: &::serde::Value) -> Result<Self, ::serde::Error> {{\n\
                     Ok({name}(::serde::Deserialize::from_value(value)?))\n\
                 }}\n\
             }}"
        ),
        Shape::TupleStruct { name, arity } => {
            let items: Vec<String> = (0..*arity)
                .map(|k| format!("::serde::Deserialize::from_value(&items[{k}])?"))
                .collect();
            format!(
                "impl ::serde::Deserialize for {name} {{\n\
                     fn from_value(value: &::serde::Value) -> Result<Self, ::serde::Error> {{\n\
                         match value {{\n\
                             ::serde::Value::Seq(items) if items.len() == {arity} => \
                                 Ok({name}({items})),\n\
                             other => Err(::serde::Error::unexpected(\
                                 \"sequence of length {arity}\", other)),\n\
                         }}\n\
                     }}\n\
                 }}",
                items = items.join(", ")
            )
        }
        Shape::Enum { name, variants } => {
            let unit_arms: Vec<String> = variants
                .iter()
                .filter(|(_, arity)| *arity == 0)
                .map(|(v, _)| format!("{v:?} => Ok({name}::{v}),"))
                .collect();
            let data_arms: Vec<String> = variants
                .iter()
                .filter(|(_, arity)| *arity == 1)
                .map(|(v, _)| {
                    format!(
                        "if let Some(inner) = value.get({v:?}) {{\n\
                             return Ok({name}::{v}(::serde::Deserialize::from_value(inner)?));\n\
                         }}"
                    )
                })
                .collect();
            format!(
                "impl ::serde::Deserialize for {name} {{\n\
                     fn from_value(value: &::serde::Value) -> Result<Self, ::serde::Error> {{\n\
                         match value {{\n\
                             ::serde::Value::Str(s) => match s.as_str() {{\n\
                                 {}\n\
                                 other => Err(::serde::Error(format!(\n\
                                     \"unknown variant {{other}} for {name}\"))),\n\
                             }},\n\
                             ::serde::Value::Map(_) => {{\n\
                                 {}\n\
                                 Err(::serde::Error::unexpected(\"variant of {name}\", value))\n\
                             }}\n\
                             other => Err(::serde::Error::unexpected(\"variant of {name}\", other)),\n\
                         }}\n\
                     }}\n\
                 }}",
                unit_arms.join("\n"),
                data_arms.join("\n")
            )
        }
    }
}
