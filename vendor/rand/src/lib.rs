//! Offline vendored stand-in for the [`rand`](https://crates.io/crates/rand)
//! crate, API-compatible with the subset this workspace uses.
//!
//! The build environment has no network access to crates.io, so the
//! workspace vendors a minimal deterministic implementation: the
//! rand-0.8-era `Rng` / `SeedableRng` traits and an [`rngs::StdRng`]
//! backed by xoshiro256++ seeded via SplitMix64. All sampling is
//! deterministic for a given seed, which is exactly the property the
//! ScratchPipe equivalence tests rely on.

/// The core source of randomness: a stream of `u64`/`u32` words.
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let word = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&word[..chunk.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Types that can be sampled uniformly from a half-open or inclusive range.
pub trait SampleUniform: Sized {
    /// Sample uniformly from `[low, high)`.
    fn sample_half_open<G: RngCore + ?Sized>(low: Self, high: Self, rng: &mut G) -> Self;
    /// Sample uniformly from `[low, high]`.
    fn sample_inclusive<G: RngCore + ?Sized>(low: Self, high: Self, rng: &mut G) -> Self;
}

macro_rules! impl_sample_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_half_open<G: RngCore + ?Sized>(low: Self, high: Self, rng: &mut G) -> Self {
                assert!(low < high, "gen_range: empty range");
                let span = (high as u128).wrapping_sub(low as u128);
                low.wrapping_add((rng.next_u64() as u128 % span) as $t)
            }
            fn sample_inclusive<G: RngCore + ?Sized>(low: Self, high: Self, rng: &mut G) -> Self {
                assert!(low <= high, "gen_range: empty range");
                // Signed `low` sign-extends to a huge u128; wrapping
                // arithmetic still yields the true span mod 2^128, which
                // fits because these types are at most 64 bits wide.
                let span = (high as u128).wrapping_sub(low as u128).wrapping_add(1);
                low.wrapping_add((rng.next_u64() as u128 % span) as $t)
            }
        }
    )*};
}

impl_sample_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_sample_uniform_float {
    ($($t:ty => $unit:ident),*) => {$(
        impl SampleUniform for $t {
            fn sample_half_open<G: RngCore + ?Sized>(low: Self, high: Self, rng: &mut G) -> Self {
                assert!(low < high, "gen_range: empty range");
                low + (high - low) * $unit(rng)
            }
            fn sample_inclusive<G: RngCore + ?Sized>(low: Self, high: Self, rng: &mut G) -> Self {
                assert!(low <= high, "gen_range: empty range");
                low + (high - low) * $unit(rng)
            }
        }
    )*};
}

fn unit_f64<G: RngCore + ?Sized>(rng: &mut G) -> f64 {
    // 53 mantissa bits -> uniform in [0, 1).
    (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

fn unit_f32<G: RngCore + ?Sized>(rng: &mut G) -> f32 {
    // 24 mantissa bits -> uniform in [0, 1).
    (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
}

impl_sample_uniform_float!(f64 => unit_f64, f32 => unit_f32);

/// Range argument accepted by [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Sample a value uniformly from this range.
    fn sample_single<G: RngCore + ?Sized>(self, rng: &mut G) -> T;
}

impl<T: SampleUniform> SampleRange<T> for core::ops::Range<T> {
    fn sample_single<G: RngCore + ?Sized>(self, rng: &mut G) -> T {
        T::sample_half_open(self.start, self.end, rng)
    }
}

impl<T: SampleUniform + Copy> SampleRange<T> for core::ops::RangeInclusive<T> {
    fn sample_single<G: RngCore + ?Sized>(self, rng: &mut G) -> T {
        T::sample_inclusive(*self.start(), *self.end(), rng)
    }
}

/// Values producible directly by [`Rng::gen`].
pub trait Standard: Sized {
    /// Generate a value from the rng's standard distribution.
    fn standard<G: RngCore + ?Sized>(rng: &mut G) -> Self;
}

impl Standard for f64 {
    fn standard<G: RngCore + ?Sized>(rng: &mut G) -> Self {
        unit_f64(rng)
    }
}

impl Standard for f32 {
    fn standard<G: RngCore + ?Sized>(rng: &mut G) -> Self {
        unit_f32(rng)
    }
}

impl Standard for u64 {
    fn standard<G: RngCore + ?Sized>(rng: &mut G) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn standard<G: RngCore + ?Sized>(rng: &mut G) -> Self {
        rng.next_u32()
    }
}

impl Standard for bool {
    fn standard<G: RngCore + ?Sized>(rng: &mut G) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// User-facing sampling methods, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Generate a value from the standard distribution (floats in `[0, 1)`).
    fn gen<T: Standard>(&mut self) -> T {
        T::standard(self)
    }

    /// Sample uniformly from a range (`low..high` or `low..=high`).
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        T: SampleUniform,
        R: SampleRange<T>,
    {
        range.sample_single(self)
    }

    /// Return `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!(
            (0.0..=1.0).contains(&p),
            "gen_bool: p={p} not a probability"
        );
        unit_f64(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Rngs constructible from a seed.
pub trait SeedableRng: Sized {
    /// Build the rng from a `u64` seed (expanded via SplitMix64).
    fn seed_from_u64(seed: u64) -> Self;
}

/// Concrete rng implementations.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic xoshiro256++ generator (stand-in for rand's `StdRng`).
    ///
    /// Not cryptographically secure; statistically solid for simulation
    /// and test workloads, and fully reproducible per seed.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut state = seed;
            let s = [
                splitmix64(&mut state),
                splitmix64(&mut state),
                splitmix64(&mut state),
                splitmix64(&mut state),
            ];
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
        let mut c = StdRng::seed_from_u64(8);
        assert_ne!(a.gen::<u64>(), c.gen::<u64>());
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = StdRng::seed_from_u64(42);
        for _ in 0..1000 {
            let x: u64 = rng.gen_range(10..20);
            assert!((10..20).contains(&x));
            let y: f64 = rng.gen_range(-1.0..1.0);
            assert!((-1.0..1.0).contains(&y));
            let z: f32 = rng.gen_range(-0.5..=0.5);
            assert!((-0.5..=0.5).contains(&z));
            let s: i32 = rng.gen_range(-5..=5);
            assert!((-5..=5).contains(&s));
            let u: f64 = rng.gen();
            assert!((0.0..1.0).contains(&u));
        }
    }

    #[test]
    fn gen_bool_rate_is_sane() {
        let mut rng = StdRng::seed_from_u64(1);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((2200..2800).contains(&hits), "p=0.25 gave {hits}/10000");
    }

    #[test]
    fn works_through_unsized_rng() {
        fn sample(rng: &mut (impl Rng + ?Sized)) -> u64 {
            rng.gen_range(0..100)
        }
        let mut rng = StdRng::seed_from_u64(3);
        let dynrng: &mut StdRng = &mut rng;
        assert!(sample(dynrng) < 100);
    }
}
