//! Offline vendored stand-in for [`proptest`](https://proptest-rs.github.io).
//!
//! The build environment has no network access to crates.io, so this
//! workspace vendors the subset of proptest its property tests use:
//! composable [`Strategy`] values (ranges, `Just`, tuples, `prop_map`,
//! `prop_oneof!`, `collection::vec`) and the [`proptest!`] macro, which
//! runs each test body over `ProptestConfig::cases` deterministically
//! seeded random cases. There is **no shrinking**: a failing case
//! reports its generated inputs (captured with `Debug` before the body
//! runs) instead of a minimized counterexample.

use rand::rngs::StdRng;
use rand::{Rng, SampleRange, SampleUniform, SeedableRng};

/// Runner configuration (the `cases` knob only).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases to run per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` cases per property.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

/// The random source handed to strategies: a seeded [`StdRng`].
#[derive(Debug, Clone)]
pub struct TestRng(StdRng);

impl TestRng {
    /// Deterministic rng for one case of one named test.
    pub fn for_case(test_name: &str, case: u64) -> Self {
        // FNV-1a over the test name, mixed with the case index, so every
        // test walks an independent, reproducible sequence.
        let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
        for b in test_name.bytes() {
            hash ^= u64::from(b);
            hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
        }
        TestRng(StdRng::seed_from_u64(
            hash ^ case.wrapping_mul(0x9E37_79B9_7F4A_7C15),
        ))
    }

    fn gen_range<T: SampleUniform, R: SampleRange<T>>(&mut self, range: R) -> T {
        self.0.gen_range(range)
    }
}

/// A generator of values of type `Self::Value`.
pub trait Strategy {
    /// The type of value this strategy produces.
    type Value;

    /// Produce one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform every generated value with `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Erase the concrete strategy type.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        Box::new(self)
    }
}

/// A type-erased strategy (used by `prop_oneof!`).
pub type BoxedStrategy<T> = Box<dyn Strategy<Value = T>>;

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        (**self).generate(rng)
    }
}

/// Strategy that always yields a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// The result of [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// Uniform choice among boxed strategies (built by [`prop_oneof!`]).
pub struct OneOf<T>(pub Vec<BoxedStrategy<T>>);

impl<T> std::fmt::Debug for OneOf<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "OneOf({} strategies)", self.0.len())
    }
}

impl<T> Strategy for OneOf<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        assert!(
            !self.0.is_empty(),
            "prop_oneof! needs at least one alternative"
        );
        let idx = rng.gen_range(0..self.0.len());
        self.0[idx].generate(rng)
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

impl<A: Strategy, B: Strategy> Strategy for (A, B) {
    type Value = (A::Value, B::Value);

    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (self.0.generate(rng), self.1.generate(rng))
    }
}

impl<A: Strategy, B: Strategy, C: Strategy> Strategy for (A, B, C) {
    type Value = (A::Value, B::Value, C::Value);

    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (
            self.0.generate(rng),
            self.1.generate(rng),
            self.2.generate(rng),
        )
    }
}

/// Boolean strategies.
pub mod bool {
    use super::{Strategy, TestRng};

    /// Strategy yielding `true` or `false` with equal probability.
    #[derive(Debug, Clone, Copy)]
    pub struct Any;

    /// The uniform boolean strategy.
    pub const ANY: Any = Any;

    impl Strategy for Any {
        type Value = bool;

        fn generate(&self, rng: &mut TestRng) -> bool {
            rng.gen_range(0u8..2) == 1
        }
    }
}

/// Collection strategies.
pub mod collection {
    use super::{Strategy, TestRng};
    use std::collections::BTreeSet;

    /// Strategy producing `Vec`s whose length is drawn from `sizes` and
    /// whose elements are drawn from `element`.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        sizes: std::ops::Range<usize>,
    }

    /// A `Vec` strategy: `vec(element, min..max)`.
    pub fn vec<S: Strategy>(element: S, sizes: std::ops::Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, sizes }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let len = self.sizes.clone().generate(rng);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// Strategy producing `BTreeSet`s with a target size drawn from
    /// `sizes`. If the element domain is too small to reach the target
    /// size, a bounded number of draws caps the set below it.
    #[derive(Debug, Clone)]
    pub struct BTreeSetStrategy<S> {
        element: S,
        sizes: std::ops::Range<usize>,
    }

    /// A `BTreeSet` strategy: `btree_set(element, min..max)`.
    pub fn btree_set<S>(element: S, sizes: std::ops::Range<usize>) -> BTreeSetStrategy<S>
    where
        S: Strategy,
        S::Value: Ord,
    {
        BTreeSetStrategy { element, sizes }
    }

    impl<S: Strategy> Strategy for BTreeSetStrategy<S>
    where
        S::Value: Ord,
    {
        type Value = BTreeSet<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let target = self.sizes.clone().generate(rng);
            let mut set = BTreeSet::new();
            // Duplicates don't grow the set; cap the attempts so a small
            // element domain can't loop forever.
            for _ in 0..target.saturating_mul(20).max(64) {
                if set.len() >= target {
                    break;
                }
                set.insert(self.element.generate(rng));
            }
            set
        }
    }
}

/// Everything a property test needs: `use proptest::prelude::*;`.
pub mod prelude {
    pub use crate::collection;
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest, BoxedStrategy, Just,
        ProptestConfig, Strategy,
    };
}

/// Uniform choice among alternatives: `prop_oneof![a, b, c]`.
#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {
        $crate::OneOf(vec![$($crate::Strategy::boxed($strategy)),+])
    };
}

/// Assert inside a property body (plain `assert!` here; no shrinking).
#[macro_export]
macro_rules! prop_assert {
    ($($args:tt)*) => { assert!($($args)*) };
}

/// Equality assert inside a property body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($args:tt)*) => { assert_eq!($($args)*) };
}

/// Inequality assert inside a property body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($args:tt)*) => { assert_ne!($($args)*) };
}

/// Define property tests: each `fn name(arg in strategy, ...) { body }`
/// becomes a `#[test]` running `ProptestConfig::cases` seeded cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { $config; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { $crate::ProptestConfig::default(); $($rest)* }
    };
}

/// Implementation detail of [`proptest!`].
#[macro_export]
#[doc(hidden)]
macro_rules! __proptest_impl {
    ($config:expr;) => {};
    ($config:expr;
     $(#[$meta:meta])*
     fn $name:ident($($arg:ident in $strategy:expr),+ $(,)?) $body:block
     $($rest:tt)*) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $config;
            let test_name = concat!(module_path!(), "::", stringify!($name));
            for case in 0..u64::from(config.cases) {
                let mut rng = $crate::TestRng::for_case(test_name, case);
                $(let $arg = $crate::Strategy::generate(&($strategy), &mut rng);)+
                // Capture inputs *before* the body can move them, so a
                // failure can report the offending case.
                let case_desc = || {
                    let mut desc = String::new();
                    $(desc.push_str(&format!(
                        "  {} = {:?}\n", stringify!($arg), &$arg));)+
                    desc
                };
                let case_desc = case_desc();
                let outcome = ::std::panic::catch_unwind(
                    ::std::panic::AssertUnwindSafe(|| $body));
                if let Err(panic) = outcome {
                    eprintln!(
                        "proptest {test_name} failed at case {case}/{}:\n{case_desc}",
                        config.cases
                    );
                    ::std::panic::resume_unwind(panic);
                }
            }
        }
        $crate::__proptest_impl! { $config; $($rest)* }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn ranges_and_vec_respect_bounds() {
        let mut rng = crate::TestRng::for_case("bounds", 0);
        let strat = collection::vec(5u64..10, 2..4);
        for _ in 0..100 {
            let v = strat.generate(&mut rng);
            assert!((2..4).contains(&v.len()));
            assert!(v.iter().all(|x| (5..10).contains(x)));
        }
    }

    #[test]
    fn oneof_hits_every_alternative() {
        let mut rng = crate::TestRng::for_case("oneof", 0);
        let strat = prop_oneof![Just(1u8), Just(2u8), Just(3u8)];
        let mut seen = [false; 4];
        for _ in 0..200 {
            seen[strat.generate(&mut rng) as usize] = true;
        }
        assert_eq!(&seen[1..], &[true, true, true]);
    }

    #[test]
    fn cases_are_deterministic() {
        let a = crate::TestRng::for_case("t", 3).gen_range(0u64..1 << 60);
        let b = crate::TestRng::for_case("t", 3).gen_range(0u64..1 << 60);
        let c = crate::TestRng::for_case("t", 4).gen_range(0u64..1 << 60);
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn macro_generates_and_maps(
            xs in collection::vec(0u32..100, 1..8),
            bounds in (0u64..50, 50u64..100),
            label in prop_oneof![Just("a"), Just("b")].prop_map(|s| s.to_string()),
        ) {
            prop_assert!(!xs.is_empty() && xs.len() < 8);
            prop_assert!(bounds.0 < bounds.1);
            prop_assert_ne!(label.as_str(), "c");
            prop_assert_eq!(label.len(), 1);
        }
    }
}
