//! Offline vendored stand-in for [`criterion`](https://crates.io/crates/criterion).
//!
//! The build environment has no network access to crates.io, so this
//! workspace vendors a minimal wall-clock harness with the same API
//! surface its benches use: `Criterion::benchmark_group`,
//! `bench_function` / `bench_with_input`, `Throughput`,
//! `BenchmarkId::from_parameter`, `Bencher::iter` and the
//! `criterion_group!` / `criterion_main!` macros. Each benchmark warms
//! up briefly, then measures batches until a time budget is reached and
//! prints mean wall-clock time per iteration (plus derived throughput).
//! No statistics, plots, or baseline comparisons.

use std::fmt;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Throughput annotation: scales the reported rate.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Bytes processed per iteration.
    Bytes(u64),
    /// Logical elements processed per iteration.
    Elements(u64),
}

/// Identifier for one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId(String);

impl BenchmarkId {
    /// Build an id from a parameter value (e.g. a size being swept).
    pub fn from_parameter<P: fmt::Display>(parameter: P) -> Self {
        BenchmarkId(parameter.to_string())
    }

    /// Build an id from a function name and a parameter value.
    pub fn new<S: Into<String>, P: fmt::Display>(function_name: S, parameter: P) -> Self {
        BenchmarkId(format!("{}/{}", function_name.into(), parameter))
    }
}

impl From<&str> for BenchmarkId {
    fn from(name: &str) -> Self {
        BenchmarkId(name.to_string())
    }
}

impl From<String> for BenchmarkId {
    fn from(name: String) -> Self {
        BenchmarkId(name)
    }
}

/// Runs closures and measures them.
#[derive(Debug)]
pub struct Bencher {
    measured: Option<Duration>,
    iters_done: u64,
}

impl Bencher {
    /// Measure `f`, called repeatedly until the time budget is spent.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // Warm-up: at least one call, up to ~50 ms.
        let warmup_deadline = Instant::now() + Duration::from_millis(50);
        loop {
            black_box(f());
            if Instant::now() >= warmup_deadline {
                break;
            }
        }
        // Measurement: batches until ~200 ms of samples are collected.
        let mut total = Duration::ZERO;
        let mut iters = 0u64;
        let budget = Duration::from_millis(200);
        while total < budget {
            let start = Instant::now();
            black_box(f());
            total += start.elapsed();
            iters += 1;
        }
        self.measured = Some(total);
        self.iters_done = iters;
    }
}

/// Top-level benchmark driver.
#[derive(Debug, Default)]
pub struct Criterion {}

impl Criterion {
    /// Start a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        println!("\n== {name} ==");
        BenchmarkGroup {
            _criterion: self,
            name,
            throughput: None,
        }
    }

    /// Run a stand-alone benchmark (no group).
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: impl Into<BenchmarkId>, f: F) {
        let id = id.into();
        run_one("", &id.0, None, f);
    }
}

/// A group of related benchmarks sharing a throughput annotation.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Set the per-iteration throughput used for rate reporting.
    pub fn throughput(&mut self, throughput: Throughput) {
        self.throughput = Some(throughput);
    }

    /// Benchmark `f` under `id`.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: impl Into<BenchmarkId>, f: F) {
        let id = id.into();
        run_one(&self.name, &id.0, self.throughput, f);
    }

    /// Benchmark `f` with an explicit input value.
    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) {
        run_one(&self.name, &id.0, self.throughput, |b| f(b, input));
    }

    /// End the group (prints nothing extra in this stand-in).
    pub fn finish(self) {}
}

fn run_one<F: FnMut(&mut Bencher)>(
    group: &str,
    id: &str,
    throughput: Option<Throughput>,
    mut f: F,
) {
    let mut bencher = Bencher {
        measured: None,
        iters_done: 0,
    };
    f(&mut bencher);
    let label = if group.is_empty() {
        id.to_string()
    } else {
        format!("{group}/{id}")
    };
    match bencher.measured {
        Some(total) if bencher.iters_done > 0 => {
            let per_iter = total.as_secs_f64() / bencher.iters_done as f64;
            let rate = match throughput {
                Some(Throughput::Bytes(n)) => {
                    format!(" ({:.2} GiB/s)", n as f64 / per_iter / (1u64 << 30) as f64)
                }
                Some(Throughput::Elements(n)) => {
                    format!(" ({:.2} Melem/s)", n as f64 / per_iter / 1e6)
                }
                None => String::new(),
            };
            println!(
                "{label}: {}{rate}  [{} iters]",
                format_time(per_iter),
                bencher.iters_done
            );
        }
        _ => println!("{label}: no measurement (Bencher::iter never called)"),
    }
}

fn format_time(seconds: f64) -> String {
    if seconds < 1e-6 {
        format!("{:.1} ns", seconds * 1e9)
    } else if seconds < 1e-3 {
        format!("{:.2} µs", seconds * 1e6)
    } else if seconds < 1.0 {
        format!("{:.2} ms", seconds * 1e3)
    } else {
        format!("{seconds:.3} s")
    }
}

/// Bundle benchmark functions into one group runner.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Entry point running every group passed to it.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn measures_and_reports() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("smoke");
        group.throughput(Throughput::Elements(64));
        let mut ran = false;
        group.bench_function("sum", |b| {
            ran = true;
            b.iter(|| (0..64u64).sum::<u64>())
        });
        group.bench_with_input(BenchmarkId::from_parameter(8), &8u64, |b, &n| {
            b.iter(|| (0..n).product::<u64>())
        });
        group.finish();
        assert!(ran);
    }
}
