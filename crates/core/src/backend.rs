//! The dense-model backend interface of the \[Train\] stage.
//!
//! ScratchPipe is agnostic to what the backend DNN looks like: the
//! \[Train\] stage pools embeddings out of the scratchpad, hands them to a
//! [`DenseBackend`], and scatters the returned gradients back. The
//! `systems` crate plugs a full DLRM in here; this crate ships a
//! [`UnitBackend`] whose gradient is a scalar multiple of the pooled
//! values — enough to make every embedding update *depend on the gathered
//! data*, so any stale read in the pipeline shows up as numeric divergence
//! in the equivalence tests.

use embeddings::SparseBatch;
use memsim::Traffic;

/// One training step's result from the dense backend.
#[derive(Debug, Clone)]
pub struct StepResult {
    /// Gradients w.r.t. each table's pooled embeddings
    /// (`batch × dim` per table).
    pub embedding_grads: Vec<Vec<f32>>,
    /// Scalar training loss of the step (0 for synthetic backends).
    pub loss: f32,
}

/// The dense (MLP) half of the model, as seen from the \[Train\] stage.
pub trait DenseBackend {
    /// Executes one dense forward/backward step for `batch`, given the
    /// pooled embeddings of every table, and returns the gradients to
    /// backpropagate into the embedding layer.
    fn step(&mut self, iteration: usize, batch: &SparseBatch, pooled: &[Vec<f32>]) -> StepResult;

    /// Learning rate the embedding SGD scatter should apply.
    fn learning_rate(&self) -> f32;

    /// The hardware traffic one dense step generates (GEMM FLOPs, kernel
    /// dispatches, activation bytes). Synthetic backends return zero.
    fn traffic(&self, _batch_size: usize) -> Traffic {
        Traffic::ZERO
    }
}

/// A minimal deterministic backend: `grad = scale × pooled`.
///
/// Under SGD this decays every touched row toward zero, and — because the
/// gradient is a function of the *gathered values* — it turns any stale
/// gather anywhere in the pipeline into a lasting numeric difference.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct UnitBackend {
    lr: f32,
    scale: f32,
}

impl UnitBackend {
    /// Creates a backend with learning rate `lr` and gradient scale 0.5.
    pub fn new(lr: f32) -> Self {
        UnitBackend { lr, scale: 0.5 }
    }

    /// Creates a backend with an explicit gradient scale.
    pub fn with_scale(lr: f32, scale: f32) -> Self {
        UnitBackend { lr, scale }
    }
}

impl DenseBackend for UnitBackend {
    fn step(&mut self, _iteration: usize, _batch: &SparseBatch, pooled: &[Vec<f32>]) -> StepResult {
        let embedding_grads = pooled
            .iter()
            .map(|p| p.iter().map(|&v| v * self.scale).collect())
            .collect();
        StepResult {
            embedding_grads,
            loss: 0.0,
        }
    }

    fn learning_rate(&self) -> f32 {
        self.lr
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use embeddings::SparseBatch;

    #[test]
    fn unit_backend_scales_pooled_values() {
        let mut b = UnitBackend::with_scale(0.1, 2.0);
        let batch = SparseBatch::from_rows(1, &[vec![vec![0]]]);
        let pooled = vec![vec![1.0, -3.0]];
        let r = b.step(0, &batch, &pooled);
        assert_eq!(r.embedding_grads, vec![vec![2.0, -6.0]]);
        assert_eq!(r.loss, 0.0);
        assert_eq!(b.learning_rate(), 0.1);
    }

    #[test]
    fn default_traffic_is_zero() {
        let b = UnitBackend::new(0.01);
        assert!(b.traffic(2048).is_zero());
    }
}
