//! The dense-model backend interface of the \[Train\] stage.
//!
//! ScratchPipe is agnostic to what the backend DNN looks like: the
//! \[Train\] stage pools embeddings out of the scratchpad into a flat
//! arena, hands a [`PooledView`] of it to a [`DenseBackend`], and scatters
//! the gradients the backend wrote into the caller's flat gradient arena
//! back into the scratchpad. The `systems` crate plugs a full DLRM in
//! here; this crate ships a [`UnitBackend`] whose gradient is a scalar
//! multiple of the pooled values — enough to make every embedding update
//! *depend on the gathered data*, so any stale read in the pipeline shows
//! up as numeric divergence in the equivalence tests.
//!
//! # Flat buffer layout
//!
//! Both the pooled embeddings and their gradients use one stride-indexed
//! buffer: table `t` occupies `t·batch·dim .. (t+1)·batch·dim`, and sample
//! `s`'s vector sits at `s·dim` within that block. The arenas are
//! allocated once per run (see [`crate::stages::TrainArena`]) and reused
//! every iteration — no per-table or per-row `Vec`s exist on the hot path.

use embeddings::SparseBatch;
use memsim::Traffic;

/// Borrowed view of the flat `num_tables × batch × dim` pooled-embedding
/// arena the \[Train\] stage hands to a [`DenseBackend`].
#[derive(Debug, Clone, Copy)]
pub struct PooledView<'a> {
    data: &'a [f32],
    num_tables: usize,
    batch: usize,
    dim: usize,
}

impl<'a> PooledView<'a> {
    /// Wraps a flat buffer.
    ///
    /// # Panics
    ///
    /// Panics if `data.len() != num_tables × batch × dim`.
    pub fn new(data: &'a [f32], num_tables: usize, batch: usize, dim: usize) -> Self {
        assert_eq!(
            data.len(),
            num_tables * batch * dim,
            "pooled arena must be num_tables × batch × dim"
        );
        PooledView {
            data,
            num_tables,
            batch,
            dim,
        }
    }

    /// Number of tables.
    pub fn num_tables(&self) -> usize {
        self.num_tables
    }

    /// Samples per table block.
    pub fn batch(&self) -> usize {
        self.batch
    }

    /// Embedding width.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Table `t`'s `batch × dim` block.
    ///
    /// # Panics
    ///
    /// Panics if `t >= num_tables`.
    pub fn table(&self, t: usize) -> &'a [f32] {
        let stride = self.batch * self.dim;
        &self.data[t * stride..(t + 1) * stride]
    }

    /// The whole flat buffer (the layout the DLRM interaction consumes
    /// directly).
    pub fn as_flat(&self) -> &'a [f32] {
        self.data
    }
}

/// One training step's result from the dense backend. The embedding
/// gradients are written into the caller-provided flat arena, not
/// returned.
#[derive(Debug, Clone, Copy)]
pub struct StepResult {
    /// Scalar training loss of the step (0 for synthetic backends).
    pub loss: f32,
}

/// The dense (MLP) half of the model, as seen from the \[Train\] stage.
pub trait DenseBackend {
    /// Executes one dense forward/backward step for `batch`, given the
    /// pooled embeddings of every table, and **overwrites** `grads` (same
    /// flat layout and length as `pooled` — a dirty reused arena is fine)
    /// with the gradients to backpropagate into the embedding layer.
    fn step(
        &mut self,
        iteration: usize,
        batch: &SparseBatch,
        pooled: PooledView<'_>,
        grads: &mut [f32],
    ) -> StepResult;

    /// Learning rate the embedding SGD scatter should apply.
    fn learning_rate(&self) -> f32;

    /// The hardware traffic one dense step generates (GEMM FLOPs, kernel
    /// dispatches, activation bytes). Synthetic backends return zero.
    fn traffic(&self, _batch_size: usize) -> Traffic {
        Traffic::ZERO
    }
}

/// A minimal deterministic backend: `grad = scale × pooled`.
///
/// Under SGD this decays every touched row toward zero, and — because the
/// gradient is a function of the *gathered values* — it turns any stale
/// gather anywhere in the pipeline into a lasting numeric difference.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct UnitBackend {
    lr: f32,
    scale: f32,
}

impl UnitBackend {
    /// Creates a backend with learning rate `lr` and gradient scale 0.5.
    pub fn new(lr: f32) -> Self {
        UnitBackend { lr, scale: 0.5 }
    }

    /// Creates a backend with an explicit gradient scale.
    pub fn with_scale(lr: f32, scale: f32) -> Self {
        UnitBackend { lr, scale }
    }
}

impl DenseBackend for UnitBackend {
    fn step(
        &mut self,
        _iteration: usize,
        _batch: &SparseBatch,
        pooled: PooledView<'_>,
        grads: &mut [f32],
    ) -> StepResult {
        assert_eq!(grads.len(), pooled.as_flat().len(), "gradient arena shape");
        for (g, &v) in grads.iter_mut().zip(pooled.as_flat()) {
            *g = v * self.scale;
        }
        StepResult { loss: 0.0 }
    }

    fn learning_rate(&self) -> f32 {
        self.lr
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use embeddings::SparseBatch;

    #[test]
    fn unit_backend_scales_pooled_values() {
        let mut b = UnitBackend::with_scale(0.1, 2.0);
        let batch = SparseBatch::from_rows(1, &[vec![vec![0]]]);
        let pooled = [1.0, -3.0];
        let mut grads = [f32::NAN; 2]; // dirty reused arena
        let r = b.step(0, &batch, PooledView::new(&pooled, 1, 1, 2), &mut grads);
        assert_eq!(grads, [2.0, -6.0]);
        assert_eq!(r.loss, 0.0);
        assert_eq!(b.learning_rate(), 0.1);
    }

    #[test]
    fn pooled_view_slices_tables() {
        let data: Vec<f32> = (0..12).map(|i| i as f32).collect();
        let v = PooledView::new(&data, 2, 3, 2); // 2 tables × 3 samples × 2
        assert_eq!(v.num_tables(), 2);
        assert_eq!(v.batch(), 3);
        assert_eq!(v.dim(), 2);
        assert_eq!(v.table(0), &data[..6]);
        assert_eq!(v.table(1), &data[6..]);
        assert_eq!(v.as_flat(), &data[..]);
    }

    #[test]
    #[should_panic(expected = "num_tables × batch × dim")]
    fn pooled_view_rejects_bad_shape() {
        let _ = PooledView::new(&[0.0; 5], 2, 1, 2);
    }

    #[test]
    fn default_traffic_is_zero() {
        let b = UnitBackend::new(0.01);
        assert!(b.traffic(2048).is_zero());
    }
}
