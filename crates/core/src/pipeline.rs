//! The single generic pipeline driver.
//!
//! [`Pipeline`] owns five [`Stage`] implementors (Plan / Collect /
//! Exchange / Insert / Train) and drives them under a [`Schedule`]:
//!
//! * [`Schedule::Sync`] — the paper's Figure-10 register pipeline: one
//!   cycle executes every occupied stage in reverse register order on one
//!   thread, so at steady state five mini-batches are in flight.
//! * [`Schedule::Threaded`] — one OS thread per stage connected by
//!   bounded channels (the software analogue of CPU threads, DMA engines
//!   and GPU streams running concurrently), with each stage's declared
//!   [`StageBarrier`]s enforced as watermark waits.
//! * [`Schedule::Sequential`] — the §IV-B straw-man: each mini-batch
//!   passes through all five stages before the next is admitted.
//! * [`Schedule::DataParallel`] — the register pipeline with intra-stage
//!   data parallelism: Collect, Insert and the Train gather/scatter shard
//!   their iteration over a [`WorkerPool`]
//!   (width set by [`PipelineBuilder::parallelism`]).
//! * [`Schedule::Auto`] — picks Sync, Threaded or DataParallel from the
//!   per-iteration work (see [`Schedule::AUTO_THREADED_MIN_WORK`] and
//!   [`Schedule::AUTO_PARALLEL_MIN_WORK`]).
//!
//! Because every schedule drives the *same* stage objects, bit-exact
//! training and per-stage traffic parity between schedules hold by
//! construction — the driver-equivalence suite asserts it.
//!
//! Construction goes through [`PipelineBuilder`] (no positional
//! constructors), and every run can emit a structured JSONL audit stream
//! via [`AuditSink`] — see [`crate::audit`].

use std::fmt;
use std::ops::Range;
use std::sync::atomic::AtomicBool;
use std::sync::Arc;
use std::time::Instant;

use crossbeam::channel::{bounded, unbounded, Receiver, Sender, TryRecvError};
use embeddings::store::DenseStore;
use embeddings::{EmbeddingTable, SparseBatch, VectorStore};
use memsim::Traffic;
use parking_lot::Mutex;
use serde::{Deserialize, Serialize};

use crate::audit::{AuditEmitter, AuditSink, RunDescriptor};
use crate::backend::DenseBackend;
use crate::config::PipelineConfig;
use crate::error::ScratchError;
use crate::faults::{FaultInjector, FaultPlan};
use crate::recovery::{RecoveryPolicy, RecoveryStats, SupervisedRun, TableUndo};
use crate::runtime::{IterationRecord, PipelineReport};
use crate::scratchpad::ScratchpadManager;
use crate::stage::{
    CollectStage, ExchangeStage, InsertStage, PlanStage, SharedState, Stage, StageCtx, TrainStage,
};
use crate::stages::{self, PayloadPool, StagePayload};
use crate::telemetry::{Lane, RunTelemetry, Telemetry};
use crate::workers::WorkerPool;

/// How the [`Pipeline`] overlaps (or serializes) its stages.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Schedule {
    /// Register-order synchronous pipeline on one thread (paper Fig. 10).
    Sync,
    /// The unpipelined straw-man: one batch finishes all stages before
    /// the next starts. No overlap, so no hazards can arise.
    Sequential,
    /// One OS thread per stage, bounded channels, watermark barriers.
    /// Requires functional mode.
    Threaded,
    /// The synchronous register pipeline with intra-stage data
    /// parallelism: Collect and Insert shard by table, the Train gather
    /// shards by (table × sample range) and its scatter by table, all over
    /// one [`WorkerPool`]. Bit-identical to every other schedule at any
    /// worker count (shards own disjoint outputs; no floating-point
    /// reduction is ever split). Requires functional mode.
    DataParallel,
    /// Chooses [`Schedule::Sync`], [`Schedule::Threaded`] or
    /// [`Schedule::DataParallel`] per run from the per-iteration work
    /// estimate and the configured worker-pool width.
    Auto,
}

impl Schedule {
    /// Per-iteration work (first-batch sparse lookups × embedding dim —
    /// the f32 elements gathered per iteration) below which [`Auto`]
    /// stays on the synchronous schedule: for small shapes the channel
    /// hand-offs and lock traffic of the threaded schedule cost more
    /// than the overlap wins (measured from the audit stage timings of
    /// `BENCH_pipeline.json`'s small shape, which regressed threaded
    /// 1755.8 vs sync 1762.9 iters/s at work = 16 384; the medium shape,
    /// work = 131 072, gains ~17 %).
    ///
    /// [`Auto`]: Schedule::Auto
    pub const AUTO_THREADED_MIN_WORK: u64 = 48_000;

    /// Per-iteration work (same units as
    /// [`Schedule::AUTO_THREADED_MIN_WORK`]) at or above which [`Auto`]
    /// upgrades from [`Threaded`] to [`DataParallel`] when the worker
    /// pool is wider than one thread: intra-stage sharding only pays once
    /// each stage region clears [`WorkerPool::MIN_SHARD_WORK`] per worker,
    /// so the crossover sits well above the threaded one.
    ///
    /// [`Auto`]: Schedule::Auto
    /// [`Threaded`]: Schedule::Threaded
    /// [`DataParallel`]: Schedule::DataParallel
    pub const AUTO_PARALLEL_MIN_WORK: u64 = 96_000;

    /// Stable lower-case name, as used in audit events.
    pub fn name(self) -> &'static str {
        match self {
            Schedule::Sync => "sync",
            Schedule::Sequential => "sequential",
            Schedule::Threaded => "threaded",
            Schedule::DataParallel => "data_parallel",
            Schedule::Auto => "auto",
        }
    }
}

// Not `#[derive(Default)]`: the vendored serde derive cannot parse a
// `#[default]` variant attribute alongside `Serialize`/`Deserialize`.
#[allow(clippy::derivable_impls)]
impl Default for Schedule {
    fn default() -> Self {
        Schedule::Auto
    }
}

/// Builder for [`Pipeline`] — the only way to construct one.
///
/// ```
/// # use scratchpipe::{Pipeline, PipelineConfig, Schedule, UnitBackend};
/// # use embeddings::EmbeddingTable;
/// let tables = vec![EmbeddingTable::seeded(100, 8, 1)];
/// let pipeline = Pipeline::builder()
///     .config(PipelineConfig::functional(8, 50))
///     .tables(tables)
///     .backend(UnitBackend::new(0.05))
///     .schedule(Schedule::Sync)
///     .build()
///     .unwrap();
/// # let _ = pipeline;
/// ```
pub struct PipelineBuilder<B> {
    config: Option<PipelineConfig>,
    tables: Vec<EmbeddingTable>,
    analytic: Option<(usize, u64)>,
    backend: Option<B>,
    schedule: Schedule,
    parallelism: usize,
    auto_threaded_min_work: u64,
    auto_parallel_min_work: u64,
    sink: Option<Box<dyn AuditSink>>,
    name: String,
    faults: Option<FaultPlan>,
    telemetry: Option<Telemetry>,
}

impl<B> fmt::Debug for PipelineBuilder<B> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("PipelineBuilder")
            .field("config", &self.config)
            .field("tables", &self.tables.len())
            .field("analytic", &self.analytic)
            .field("schedule", &self.schedule)
            .field("parallelism", &self.parallelism)
            .field("audit", &self.sink.is_some())
            .field("name", &self.name)
            .finish()
    }
}

impl<B> Default for PipelineBuilder<B> {
    fn default() -> Self {
        PipelineBuilder {
            config: None,
            tables: Vec::new(),
            analytic: None,
            backend: None,
            schedule: Schedule::default(),
            parallelism: 0,
            auto_threaded_min_work: Schedule::AUTO_THREADED_MIN_WORK,
            auto_parallel_min_work: Schedule::AUTO_PARALLEL_MIN_WORK,
            sink: None,
            name: "pipeline".to_owned(),
            faults: None,
            telemetry: None,
        }
    }
}

impl<B: DenseBackend> PipelineBuilder<B> {
    /// Creates an empty builder (see also [`Pipeline::builder`]).
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets the pipeline configuration (required).
    pub fn config(mut self, config: PipelineConfig) -> Self {
        self.config = Some(config);
        self
    }

    /// Trains these CPU embedding tables in place (functional mode).
    /// Mutually exclusive with [`PipelineBuilder::analytic_tables`].
    pub fn tables(mut self, tables: Vec<EmbeddingTable>) -> Self {
        self.tables = tables;
        self
    }

    /// Simulates `num_tables` virtual tables of `rows_per_table` rows —
    /// metadata and traffic only, no data (forces analytic mode).
    /// Mutually exclusive with [`PipelineBuilder::tables`].
    pub fn analytic_tables(mut self, num_tables: usize, rows_per_table: u64) -> Self {
        self.analytic = Some((num_tables, rows_per_table));
        self
    }

    /// Sets the dense-model backend (required).
    pub fn backend(mut self, backend: B) -> Self {
        self.backend = Some(backend);
        self
    }

    /// Sets the schedule (default [`Schedule::Auto`]).
    pub fn schedule(mut self, schedule: Schedule) -> Self {
        self.schedule = schedule;
        self
    }

    /// Sets the intra-stage worker count used by
    /// [`Schedule::DataParallel`] (and by [`Schedule::Auto`] when it
    /// resolves there). `0` — the default — sizes the pool to the
    /// machine's available parallelism. Any width produces bit-identical
    /// training results; only the wall-clock changes.
    pub fn parallelism(mut self, workers: usize) -> Self {
        self.parallelism = workers;
        self
    }

    /// Overrides the per-iteration work floor (f32 elements gathered) at
    /// which [`Schedule::Auto`] leaves the synchronous schedule (default
    /// [`Schedule::AUTO_THREADED_MIN_WORK`]).
    pub fn auto_threaded_min_work(mut self, work_elems: u64) -> Self {
        self.auto_threaded_min_work = work_elems;
        self
    }

    /// Overrides the per-iteration work floor at which
    /// [`Schedule::Auto`] upgrades to [`Schedule::DataParallel`] (default
    /// [`Schedule::AUTO_PARALLEL_MIN_WORK`]; only reached when the worker
    /// pool is wider than one thread).
    pub fn auto_parallel_min_work(mut self, work_elems: u64) -> Self {
        self.auto_parallel_min_work = work_elems;
        self
    }

    /// Attaches an audit sink: every run emits JSONL events to it.
    pub fn audit(mut self, sink: impl AuditSink + 'static) -> Self {
        self.sink = Some(Box::new(sink));
        self
    }

    /// Names the run in audit events (default `"pipeline"`).
    pub fn named(mut self, name: &str) -> Self {
        self.name = name.to_owned();
        self
    }

    /// Attaches a [`Telemetry`] collector: every run records a span tree
    /// (run → iteration → stage → shard, plus barrier stalls) and the
    /// metric catalog into it, keyed by the pipeline's audit name
    /// ([`PipelineBuilder::named`]). One collector may be shared across
    /// pipelines — it is a cheap `Arc` clone — so several runs land in one
    /// `trace.json` / `METRICS.json` snapshot. Without this call no
    /// collector exists and every recording hook is a single `None`
    /// check, the same contract as [`PipelineBuilder::faults`].
    pub fn telemetry(mut self, telemetry: Telemetry) -> Self {
        self.telemetry = Some(telemetry);
        self
    }

    /// Arms a deterministic [`FaultPlan`]: its faults fire at their
    /// `(iteration, stage, shard)` coordinates during [`Pipeline::run`]
    /// (raw propagation, attempt 0 only) and
    /// [`Pipeline::run_supervised`] (retried/degraded per the recovery
    /// policy). Without this call no injector exists and every fault
    /// hook is a single `None` check.
    pub fn faults(mut self, plan: FaultPlan) -> Self {
        self.faults = Some(plan);
        self
    }

    /// Builds the pipeline.
    ///
    /// # Errors
    ///
    /// Returns [`ScratchError::InvalidConfig`] if the configuration is
    /// missing, inconsistent with the tables, or both [`tables`] and
    /// [`analytic_tables`] were given.
    ///
    /// [`tables`]: PipelineBuilder::tables
    /// [`analytic_tables`]: PipelineBuilder::analytic_tables
    pub fn build(self) -> Result<Pipeline<B>, ScratchError> {
        let mut config = self.config.ok_or_else(|| ScratchError::InvalidConfig {
            detail: "PipelineBuilder needs a config".to_owned(),
        })?;
        let backend = self.backend.ok_or_else(|| ScratchError::InvalidConfig {
            detail: "PipelineBuilder needs a backend".to_owned(),
        })?;
        if self.analytic.is_some() && !self.tables.is_empty() {
            return Err(ScratchError::InvalidConfig {
                detail: "give tables() or analytic_tables(), not both".to_owned(),
            });
        }

        let (num_tables, table_rows, cpu_tables, storages, data_resident);
        if let Some((tables, rows)) = self.analytic {
            config.functional = false;
            config.check_hazards = false;
            config.validate()?;
            if tables == 0 {
                return Err(ScratchError::InvalidConfig {
                    detail: "need at least one embedding table".to_owned(),
                });
            }
            num_tables = tables;
            table_rows = rows;
            cpu_tables = Vec::new();
            storages = Vec::new();
            data_resident = (0..num_tables).map(|_| Mutex::new(Vec::new())).collect();
        } else {
            config.validate()?;
            if self.tables.is_empty() {
                return Err(ScratchError::InvalidConfig {
                    detail: "need at least one embedding table".to_owned(),
                });
            }
            if self.tables.iter().any(|t| t.dim() != config.dim) {
                return Err(ScratchError::InvalidConfig {
                    detail: "table dim mismatch with config".to_owned(),
                });
            }
            num_tables = self.tables.len();
            table_rows = self.tables[0].rows() as u64;
            storages = if config.functional {
                (0..num_tables)
                    .map(|_| Mutex::new(DenseStore::zeros(config.slots_per_table, config.dim)))
                    .collect()
            } else {
                Vec::new()
            };
            data_resident = (0..num_tables)
                .map(|_| Mutex::new(vec![None; config.slots_per_table]))
                .collect();
            cpu_tables = self.tables.into_iter().map(Mutex::new).collect();
        }

        let managers: Vec<ScratchpadManager> = (0..num_tables)
            .map(|_| ScratchpadManager::new(config.slots_per_table, config.window, config.policy))
            .collect::<Result<_, _>>()?;

        let shared = Arc::new(SharedState {
            storages,
            cpu_tables,
            data_resident,
            functional: config.functional,
            check_hazards: config.check_hazards,
            dim: config.dim,
            undo_active: AtomicBool::new(false),
            undo: (0..num_tables)
                .map(|_| Mutex::new(TableUndo::default()))
                .collect(),
        });

        let audit = match self.sink {
            Some(sink) => AuditEmitter::new(sink, RunDescriptor::fresh(&self.name)),
            None => AuditEmitter::disabled(),
        };

        Ok(Pipeline {
            name: self.name,
            plan: PlanStage::new(
                managers,
                config.window.future as usize,
                config.check_hazards,
            ),
            collect: CollectStage::new(Arc::clone(&shared), config.window),
            exchange: ExchangeStage::new(config.dim as u64 * 4),
            insert: InsertStage::new(Arc::clone(&shared)),
            train: TrainStage::new(Arc::clone(&shared), backend),
            shared,
            table_rows,
            schedule: self.schedule,
            workers: if self.parallelism == 0 {
                WorkerPool::auto()
            } else {
                WorkerPool::new(self.parallelism)
            },
            auto_threaded_min_work: self.auto_threaded_min_work,
            auto_parallel_min_work: self.auto_parallel_min_work,
            config,
            pool: PayloadPool::new(),
            audit,
            faults: self.faults.map(FaultInjector::new),
            telemetry: self.telemetry,
        })
    }
}

/// The generic five-stage ScratchPipe pipeline — the single driver behind
/// every schedule. See the [module docs](self) and the
/// [crate-level documentation](crate) for an end-to-end example.
pub struct Pipeline<B> {
    name: String,
    config: PipelineConfig,
    schedule: Schedule,
    workers: WorkerPool,
    auto_threaded_min_work: u64,
    auto_parallel_min_work: u64,
    table_rows: u64,
    shared: Arc<SharedState>,
    plan: PlanStage,
    collect: CollectStage,
    exchange: ExchangeStage,
    insert: InsertStage,
    train: TrainStage<B>,
    pool: PayloadPool,
    audit: AuditEmitter,
    faults: Option<FaultInjector>,
    telemetry: Option<Telemetry>,
}

impl<B> fmt::Debug for Pipeline<B> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Pipeline")
            .field("config", &self.config)
            .field("schedule", &self.schedule)
            .field("tables", &self.plan.managers().len())
            .field("audit", &self.audit.enabled())
            .finish()
    }
}

impl<B: DenseBackend + Send> Pipeline<B> {
    /// Starts building a pipeline.
    pub fn builder() -> PipelineBuilder<B> {
        PipelineBuilder::new()
    }

    /// The pipeline configuration.
    pub fn config(&self) -> &PipelineConfig {
        &self.config
    }

    /// The configured schedule (possibly [`Schedule::Auto`]).
    pub fn schedule(&self) -> Schedule {
        self.schedule
    }

    /// The intra-stage worker pool [`Schedule::DataParallel`] shards
    /// over (width 1 unless [`PipelineBuilder::parallelism`] widened it).
    pub fn workers(&self) -> WorkerPool {
        self.workers
    }

    /// The per-table scratchpad managers (for cache statistics).
    pub fn managers(&self) -> &[ScratchpadManager] {
        self.plan.managers()
    }

    /// The dense backend.
    pub fn backend(&self) -> &B {
        self.train.backend()
    }

    /// Consumes the pipeline and returns the trained CPU tables (call
    /// after [`Pipeline::run`], which flushes the scratchpad).
    ///
    /// # Panics
    ///
    /// Panics in analytic mode, which has no tables.
    pub fn into_tables(self) -> Vec<EmbeddingTable> {
        let Pipeline {
            shared,
            collect,
            insert,
            train,
            ..
        } = self;
        drop((collect, insert, train));
        let Ok(shared) = Arc::try_unwrap(shared) else {
            unreachable!("all stage handles dropped");
        };
        assert!(
            !shared.cpu_tables.is_empty(),
            "into_tables on an analytic pipeline"
        );
        shared
            .cpu_tables
            .into_iter()
            .map(Mutex::into_inner)
            .collect()
    }

    /// Pre-fills every table's scratchpad with the given rows (hottest
    /// first, truncated to the slot count), reproducing the steady-state
    /// cache content a long warm-up would converge to. In functional mode
    /// the row data is copied from the CPU tables, so training remains
    /// exactly equivalent to sequential execution.
    ///
    /// # Errors
    ///
    /// Returns [`ScratchError::InvalidConfig`] if the table count differs
    /// or a row is out of range.
    ///
    /// # Panics
    ///
    /// Panics if called after training has started.
    pub fn prewarm(&mut self, hot_rows: &[Vec<u64>]) -> Result<(), ScratchError> {
        if hot_rows.len() != self.plan.managers().len() {
            return Err(ScratchError::InvalidConfig {
                detail: format!(
                    "prewarm covers {} tables, pipeline has {}",
                    hot_rows.len(),
                    self.plan.managers().len()
                ),
            });
        }
        for rows in hot_rows {
            if rows.iter().any(|&r| r >= self.table_rows) {
                return Err(ScratchError::InvalidConfig {
                    detail: "prewarm row out of range".to_owned(),
                });
            }
        }
        for (t, rows) in hot_rows.iter().enumerate() {
            let take = rows.len().min(self.config.slots_per_table);
            let managers = self.plan.managers_mut();
            managers[t].prewarm(&rows[..take]);
            if self.config.functional {
                for &row in &rows[..take] {
                    let slot = managers[t].lookup(row).expect("just prewarmed");
                    {
                        let mut store = self.shared.storages[t].lock();
                        let table = self.shared.cpu_tables[t].lock();
                        store.copy_row_from(slot as usize, &*table, row as usize);
                    }
                    self.shared.data_resident[t].lock()[slot as usize] = Some(row);
                }
            }
        }
        Ok(())
    }

    /// The schedule a run over `batches` would actually execute:
    /// [`Schedule::Auto`] resolves here, and [`Schedule::Threaded`] /
    /// [`Schedule::DataParallel`] are rejected in analytic mode (there is
    /// no data for the stage threads or worker shards to move, and the
    /// sync schedule counts identical cache events).
    ///
    /// # Errors
    ///
    /// Returns [`ScratchError::InvalidConfig`] for an explicit
    /// [`Schedule::Threaded`] or [`Schedule::DataParallel`] on a
    /// non-functional pipeline.
    pub fn effective_schedule(&self, batches: &[SparseBatch]) -> Result<Schedule, ScratchError> {
        match self.schedule {
            Schedule::Sync => Ok(Schedule::Sync),
            Schedule::Sequential => Ok(Schedule::Sequential),
            Schedule::Threaded => {
                if self.config.functional {
                    Ok(Schedule::Threaded)
                } else {
                    Err(ScratchError::InvalidConfig {
                        detail: "threaded schedule requires functional mode".to_owned(),
                    })
                }
            }
            Schedule::DataParallel => {
                if self.config.functional {
                    Ok(Schedule::DataParallel)
                } else {
                    Err(ScratchError::InvalidConfig {
                        detail: "data-parallel schedule requires functional mode".to_owned(),
                    })
                }
            }
            Schedule::Auto => {
                if !self.config.functional {
                    return Ok(Schedule::Sync);
                }
                let work = batches
                    .first()
                    .map_or(0, |b| b.total_lookups() as u64 * self.config.dim as u64);
                if self.workers.threads() > 1 && work >= self.auto_parallel_min_work {
                    Ok(Schedule::DataParallel)
                } else if work >= self.auto_threaded_min_work {
                    Ok(Schedule::Threaded)
                } else {
                    Ok(Schedule::Sync)
                }
            }
        }
    }

    /// Runs the pipeline over `batches` under the configured schedule,
    /// then flushes the scratchpad back to the CPU tables. Emits the
    /// audit event stream if a sink is attached.
    ///
    /// # Errors
    ///
    /// * [`ScratchError::CapacityExhausted`] if a scratchpad is too small
    ///   for the sliding window's working set (§VI-D provisioning rule).
    /// * [`ScratchError::HazardViolation`] if hazard checking is enabled
    ///   and the window configuration admits a RAW hazard.
    /// * [`ScratchError::InvalidConfig`] if a batch disagrees with the
    ///   pipeline shape, or the schedule is invalid for this mode.
    pub fn run(&mut self, batches: &[SparseBatch]) -> Result<PipelineReport, ScratchError> {
        self.validate_batches(batches)?;
        let schedule = self.effective_schedule(batches)?;
        let n = batches.len();
        // Sorted unique IDs per (batch, table): used by Plan, future
        // registration and the hazard checker.
        let uniq: Vec<Vec<Vec<u64>>> = batches
            .iter()
            .map(|b| b.bags().map(|(_, bag)| bag.unique_ids()).collect())
            .collect();
        let mut records: Vec<IterationRecord> = (0..n)
            .map(|i| IterationRecord {
                index: i,
                ..IterationRecord::default()
            })
            .collect();
        let mut timings: Vec<Vec<u64>> = vec![Vec::new(); n];
        let mut shard_timings: Vec<Vec<Vec<u64>>> = vec![Vec::new(); n];

        self.audit
            .run_started(schedule.name(), n, self.plan.managers().len(), &self.config);
        let run_tel = self
            .telemetry
            .as_ref()
            .map(|t| t.begin_run(&self.name, schedule.name()));
        let started = Instant::now();
        let dim = self.config.dim;
        // Plain runs are attempt 0 forever: armed faults fire raw, with
        // no supervisor to catch them.
        if let Some(inj) = &self.faults {
            inj.begin_attempt(0);
            let _ = inj.drain_log();
        }
        let names: Vec<&'static str>;
        {
            let mut stages: [&mut dyn Stage; 5] = [
                &mut self.plan,
                &mut self.collect,
                &mut self.exchange,
                &mut self.insert,
                &mut self.train,
            ];
            names = stages.iter().map(|s| s.name()).collect();
            let faults = self.faults.as_ref();
            let telemetry = run_tel.as_ref();
            match schedule {
                Schedule::Sequential => drive_sequential(
                    &mut stages,
                    &mut self.pool,
                    dim,
                    WorkerPool::inline(),
                    batches,
                    &uniq,
                    0..n,
                    faults,
                    telemetry,
                    &mut records,
                    &mut timings,
                    &mut shard_timings,
                )?,
                Schedule::Sync => drive_sync(
                    &mut stages,
                    &mut self.pool,
                    dim,
                    WorkerPool::inline(),
                    batches,
                    &uniq,
                    0..n,
                    faults,
                    telemetry,
                    &mut records,
                    &mut timings,
                    &mut shard_timings,
                )?,
                // Data parallelism rides the register pipeline: the same
                // driver, but stages see the real worker pool.
                Schedule::DataParallel => drive_sync(
                    &mut stages,
                    &mut self.pool,
                    dim,
                    self.workers,
                    batches,
                    &uniq,
                    0..n,
                    faults,
                    telemetry,
                    &mut records,
                    &mut timings,
                    &mut shard_timings,
                )?,
                Schedule::Threaded => {
                    drive_threaded(
                        &mut stages,
                        dim,
                        batches,
                        &uniq,
                        0..n,
                        faults,
                        telemetry,
                        &mut records,
                        &mut timings,
                        &mut shard_timings,
                    )?;
                }
                Schedule::Auto => unreachable!("Auto resolved by effective_schedule"),
            }
        }
        let elapsed_ns = started.elapsed().as_nanos() as u64;
        if let Some(inj) = &self.faults {
            for rec in inj.drain_log() {
                self.audit.fault_injected(&rec);
            }
        }

        let flush_traffic = self.flush();
        let report = PipelineReport {
            iterations: n,
            records,
            flush_traffic,
            peak_held_slots: self
                .plan
                .managers()
                .iter()
                .map(|m| m.stats().peak_held)
                .collect(),
        };
        for ((rec, nanos), shards) in report.records.iter().zip(&timings).zip(&shard_timings) {
            self.audit.iteration(rec, &names, nanos, shards);
        }
        self.audit
            .run_completed(&report, elapsed_ns, schedule.name());
        if let Some(tel) = &run_tel {
            let pool_width = match schedule {
                Schedule::DataParallel => self.workers.threads(),
                _ => 1,
            };
            tel.finish_run(
                elapsed_ns,
                n,
                pool_width,
                self.config.slots_per_table,
                self.plan.managers(),
            );
        }
        Ok(report)
    }

    /// Runs the pipeline under supervision: the trace executes in
    /// checkpointed segments ([`RecoveryPolicy::checkpoint_interval`]
    /// iterations each, default 1). Before each segment the supervisor
    /// snapshots the scratchpad managers and the dense backend and arms a
    /// first-touch undo log on the shared table state; a failing segment
    /// rolls all of it back and retries. A schedule rung that exhausts
    /// its [`RecoveryPolicy::retry_budget`] degrades down the ladder
    /// `DataParallel → Threaded → Sync` (monotonically — a degraded run
    /// never climbs back) before the run aborts.
    ///
    /// Recovery is deterministic: with an armed seeded [`FaultPlan`]
    /// whose faults are all recoverable, the returned report and the
    /// trained tables are byte-identical to a fault-free
    /// [`Pipeline::run`] over the same trace, at any worker-pool width.
    ///
    /// # Errors
    ///
    /// Everything [`Pipeline::run`] returns, plus
    /// [`ScratchError::Aborted`] when the ladder's last rung exhausts its
    /// retry budget — the scratchpad is flushed first, so the tables hold
    /// exactly the last committed segment. A policy with a zero budget or
    /// interval is rejected as [`ScratchError::InvalidConfig`].
    pub fn run_supervised(
        &mut self,
        batches: &[SparseBatch],
        policy: RecoveryPolicy,
    ) -> Result<SupervisedRun, ScratchError>
    where
        B: Clone,
    {
        if policy.retry_budget == 0 || policy.checkpoint_interval == 0 {
            return Err(ScratchError::InvalidConfig {
                detail: "recovery policy requires retry_budget >= 1 and checkpoint_interval >= 1"
                    .to_owned(),
            });
        }
        self.validate_batches(batches)?;
        let base = self.effective_schedule(batches)?;
        let ladder: Vec<Schedule> = match base {
            Schedule::DataParallel => {
                vec![Schedule::DataParallel, Schedule::Threaded, Schedule::Sync]
            }
            Schedule::Threaded => vec![Schedule::Threaded, Schedule::Sync],
            other => vec![other],
        };
        let n = batches.len();
        let uniq: Vec<Vec<Vec<u64>>> = batches
            .iter()
            .map(|b| b.bags().map(|(_, bag)| bag.unique_ids()).collect())
            .collect();
        let mut records: Vec<IterationRecord> = (0..n)
            .map(|i| IterationRecord {
                index: i,
                ..IterationRecord::default()
            })
            .collect();
        let mut timings: Vec<Vec<u64>> = vec![Vec::new(); n];
        let mut shard_timings: Vec<Vec<Vec<u64>>> = vec![Vec::new(); n];
        let mut stats = RecoveryStats::default();

        self.audit.run_started(
            ladder[0].name(),
            n,
            self.plan.managers().len(),
            &self.config,
        );
        let run_tel = self
            .telemetry
            .as_ref()
            .map(|t| t.begin_run(&self.name, ladder[0].name()));
        let started = Instant::now();
        let dim = self.config.dim;
        let names: Vec<&'static str> = {
            let stage_refs: [&dyn Stage; 5] = [
                &self.plan,
                &self.collect,
                &self.exchange,
                &self.insert,
                &self.train,
            ];
            stage_refs.iter().map(|s| s.name()).collect()
        };
        if let Some(inj) = &self.faults {
            let _ = inj.drain_log();
        }
        self.shared.begin_undo();
        let mut rung = 0usize;
        let mut seg_start = 0usize;
        while seg_start < n {
            let seg_end = (seg_start + policy.checkpoint_interval).min(n);
            // Cheap global snapshots; per-row pre-images ride the
            // first-touch undo log instead.
            let managers_snapshot = self.plan.managers().to_vec();
            let backend_snapshot = self.train.backend().clone();
            let mut attempt: u32 = 0;
            loop {
                if let Some(inj) = &self.faults {
                    inj.begin_attempt(attempt);
                }
                let result = {
                    let mut stages: [&mut dyn Stage; 5] = [
                        &mut self.plan,
                        &mut self.collect,
                        &mut self.exchange,
                        &mut self.insert,
                        &mut self.train,
                    ];
                    let faults = self.faults.as_ref();
                    let telemetry = run_tel.as_ref();
                    match ladder[rung] {
                        Schedule::Sequential => drive_sequential(
                            &mut stages,
                            &mut self.pool,
                            dim,
                            WorkerPool::inline(),
                            batches,
                            &uniq,
                            seg_start..seg_end,
                            faults,
                            telemetry,
                            &mut records,
                            &mut timings,
                            &mut shard_timings,
                        ),
                        Schedule::Sync => drive_sync(
                            &mut stages,
                            &mut self.pool,
                            dim,
                            WorkerPool::inline(),
                            batches,
                            &uniq,
                            seg_start..seg_end,
                            faults,
                            telemetry,
                            &mut records,
                            &mut timings,
                            &mut shard_timings,
                        ),
                        Schedule::DataParallel => drive_sync(
                            &mut stages,
                            &mut self.pool,
                            dim,
                            self.workers,
                            batches,
                            &uniq,
                            seg_start..seg_end,
                            faults,
                            telemetry,
                            &mut records,
                            &mut timings,
                            &mut shard_timings,
                        ),
                        Schedule::Threaded => drive_threaded(
                            &mut stages,
                            dim,
                            batches,
                            &uniq,
                            seg_start..seg_end,
                            faults,
                            telemetry,
                            &mut records,
                            &mut timings,
                            &mut shard_timings,
                        ),
                        Schedule::Auto => unreachable!("Auto resolved by effective_schedule"),
                    }
                };
                if let Some(inj) = &self.faults {
                    for rec in inj.drain_log() {
                        stats.faults_injected += 1;
                        self.audit.fault_injected(&rec);
                    }
                }
                match result {
                    Ok(()) => {
                        self.shared.commit_undo();
                        break;
                    }
                    Err(cause) => {
                        self.shared.rollback_undo();
                        self.plan
                            .managers_mut()
                            .clone_from_slice(&managers_snapshot);
                        *self.train.backend_mut() = backend_snapshot.clone();
                        stats.rollbacks += 1;
                        attempt += 1;
                        self.audit
                            .iteration_rolled_back(seg_start, attempt, &cause.to_string());
                        if attempt % policy.retry_budget == 0 {
                            if rung + 1 < ladder.len() {
                                self.audit.schedule_degraded(
                                    seg_start,
                                    ladder[rung].name(),
                                    ladder[rung + 1].name(),
                                );
                                rung += 1;
                                stats.degradations += 1;
                            } else {
                                // Ladder exhausted: flush what committed so
                                // the tables land exactly on the last
                                // checkpoint, then abort with provenance.
                                self.shared.end_undo();
                                let _ = self.flush();
                                for ((rec, nanos), shards) in records[..seg_start]
                                    .iter()
                                    .zip(&timings)
                                    .zip(&shard_timings)
                                {
                                    self.audit.iteration(rec, &names, nanos, shards);
                                }
                                self.audit.run_aborted(
                                    seg_start,
                                    attempt,
                                    ladder[rung].name(),
                                    &cause.to_string(),
                                );
                                if let Some(tel) = &run_tel {
                                    publish_recovery_counters(tel, &stats, true);
                                    let pool_width = match ladder[rung] {
                                        Schedule::DataParallel => self.workers.threads(),
                                        _ => 1,
                                    };
                                    tel.finish_run(
                                        started.elapsed().as_nanos() as u64,
                                        seg_start,
                                        pool_width,
                                        self.config.slots_per_table,
                                        self.plan.managers(),
                                    );
                                }
                                return Err(ScratchError::Aborted {
                                    iteration: seg_start,
                                    attempts: attempt,
                                    schedule: ladder[rung].name().to_owned(),
                                    cause: Box::new(cause),
                                });
                            }
                        } else {
                            stats.retries += 1;
                            self.audit
                                .stage_retried(seg_start, attempt, ladder[rung].name());
                        }
                    }
                }
            }
            seg_start = seg_end;
        }
        self.shared.end_undo();
        let elapsed_ns = started.elapsed().as_nanos() as u64;

        let flush_traffic = self.flush();
        let report = PipelineReport {
            iterations: n,
            records,
            flush_traffic,
            peak_held_slots: self
                .plan
                .managers()
                .iter()
                .map(|m| m.stats().peak_held)
                .collect(),
        };
        for ((rec, nanos), shards) in report.records.iter().zip(&timings).zip(&shard_timings) {
            self.audit.iteration(rec, &names, nanos, shards);
        }
        self.audit
            .run_completed(&report, elapsed_ns, ladder[rung].name());
        if let Some(tel) = &run_tel {
            publish_recovery_counters(tel, &stats, false);
            let pool_width = match ladder[rung] {
                Schedule::DataParallel => self.workers.threads(),
                _ => 1,
            };
            tel.finish_run(
                elapsed_ns,
                n,
                pool_width,
                self.config.slots_per_table,
                self.plan.managers(),
            );
        }
        stats.final_schedule = Some(ladder[rung]);
        Ok(SupervisedRun { report, stats })
    }

    /// Writes every resident scratchpad row back to its CPU table and
    /// returns the traffic of doing so. Idempotent;
    /// [`Pipeline::run`] calls it automatically.
    pub fn flush(&mut self) -> Traffic {
        let mut traffic = Traffic::ZERO;
        let rb = self.shared.row_bytes();
        for (t, manager) in self.plan.managers().iter().enumerate() {
            let residents = manager.residents();
            traffic += stages::flush_traffic(residents.len() as u64, rb);
            if self.config.functional {
                // Only rows whose data actually arrived are dirty; with
                // correct windows every resident row is.
                let store = self.shared.storages[t].lock();
                let mut table = self.shared.cpu_tables[t].lock();
                let resident = self.shared.data_resident[t].lock();
                stages::flush_rows(&store, &mut table, &residents, |row, slot| {
                    resident[slot as usize] == Some(row)
                });
            }
        }
        if traffic.pcie_d2h_bytes > 0 {
            traffic.pcie_ops += 1;
        }
        traffic
    }

    fn validate_batches(&self, batches: &[SparseBatch]) -> Result<(), ScratchError> {
        let num_tables = self.plan.managers().len();
        for (i, b) in batches.iter().enumerate() {
            if b.batch_size() == 0 {
                return Err(ScratchError::InvalidConfig {
                    detail: format!("batch {i} is empty (zero samples)"),
                });
            }
            if b.num_tables() != num_tables {
                return Err(ScratchError::InvalidConfig {
                    detail: format!(
                        "batch covers {} tables, pipeline has {num_tables}",
                        b.num_tables()
                    ),
                });
            }
            for (t, bag) in b.bags() {
                if let Some(max) = bag.max_id() {
                    if max >= self.table_rows {
                        return Err(ScratchError::InvalidConfig {
                            detail: format!("table {t}: id {max} exceeds {} rows", self.table_rows),
                        });
                    }
                }
            }
        }
        Ok(())
    }
}

/// Publishes the supervisor's [`RecoveryStats`] as run-labelled absolute
/// counters, once, at run end — which is exactly what makes them equal
/// the audit stream's fault/recovery event counts.
fn publish_recovery_counters(tel: &RunTelemetry, stats: &RecoveryStats, aborted: bool) {
    tel.set_run_counter("sp_recovery_rollbacks_total", stats.rollbacks);
    tel.set_run_counter("sp_recovery_retries_total", stats.retries);
    tel.set_run_counter("sp_recovery_degradations_total", stats.degradations);
    tel.set_run_counter("sp_recovery_faults_injected_total", stats.faults_injected);
    tel.set_run_counter("sp_recovery_aborts_total", u64::from(aborted));
}

/// Fills one finished iteration's record from its retired payload.
fn finalize_record(
    rec: &mut IterationRecord,
    p: &StagePayload,
    batches: &[SparseBatch],
    uniq: &[Vec<Vec<u64>>],
) {
    rec.index = p.index;
    rec.hits = p.plans.iter().map(|t| t.hits).sum();
    rec.misses = p.plans.iter().map(|t| t.misses).sum();
    rec.evictions = p.plans.iter().map(|t| t.evictions.len() as u64).sum();
    rec.total_lookups = batches[p.index].total_lookups() as u64;
    rec.unique_rows = uniq[p.index].iter().map(|u| u.len() as u64).sum();
    rec.loss = p.loss;
    rec.traffic = p.traffic;
}

/// Executes `stage` on `payload`, appending the wall-clock nanoseconds to
/// the payload's timing trail and the per-shard nanos the stage reported
/// (empty for unsharded stages) to its shard trail. With telemetry
/// attached, the *same* duration integer that lands in the audit stream's
/// `stage_nanos` is recorded as the stage span and histogram observation
/// — that shared integer is what makes `audit_check --metrics` reconcile
/// exactly.
fn timed_execute(
    stage: &mut dyn Stage,
    ctx: &StageCtx<'_>,
    payload: &mut StagePayload,
) -> Result<(), ScratchError> {
    if let Some(inj) = ctx.faults {
        if let Some(e) = inj.stage_error(ctx.index, stage.name()) {
            return Err(e);
        }
    }
    payload.shard_nanos.clear();
    let span_start = ctx.telemetry.map_or(0, RunTelemetry::now_ns);
    let t0 = Instant::now();
    stage.execute(ctx, payload)?;
    let dur_ns = t0.elapsed().as_nanos() as u64;
    payload.stage_nanos.push(dur_ns);
    if let Some(tel) = ctx.telemetry {
        tel.stage_span(ctx.lane, ctx.index, stage.name(), span_start, dur_ns);
    }
    let mut shard = std::mem::take(&mut payload.shard_nanos);
    if let Some(inj) = ctx.faults {
        // Artificial slowdowns are logical time: they land in the shard
        // trail (and thus the audit stream) without sleeping.
        for (s, nanos) in inj.slowdowns(ctx.index, stage.name()) {
            if shard.is_empty() {
                shard.push(nanos);
            } else {
                let len = shard.len();
                shard[s % len] += nanos;
            }
        }
    }
    payload.stage_shards.push(shard);
    Ok(())
}

/// The straw-man schedule: every batch runs all stages to completion
/// before the next is admitted (`pipelined = false`, so victim-safety
/// distances don't apply).
#[allow(clippy::too_many_arguments)]
fn drive_sequential(
    stages: &mut [&mut dyn Stage],
    pool: &mut PayloadPool,
    dim: usize,
    workers: WorkerPool,
    batches: &[SparseBatch],
    uniq: &[Vec<Vec<u64>>],
    range: Range<usize>,
    faults: Option<&FaultInjector>,
    telemetry: Option<&RunTelemetry>,
    records: &mut [IterationRecord],
    timings: &mut [Vec<u64>],
    shard_timings: &mut [Vec<Vec<u64>>],
) -> Result<(), ScratchError> {
    for i in range {
        let ctx = StageCtx {
            batches,
            uniq,
            index: i,
            pipelined: false,
            workers,
            faults,
            telemetry,
            lane: Lane::Main,
        };
        let mut p = pool.take(dim);
        for stage in stages.iter_mut() {
            timed_execute(*stage, &ctx, &mut p)?;
        }
        finalize_record(&mut records[i], &p, batches, uniq);
        timings[i] = std::mem::take(&mut p.stage_nanos);
        shard_timings[i] = std::mem::take(&mut p.stage_shards);
        pool.release(p);
    }
    Ok(())
}

/// The synchronous register pipeline (paper Fig. 10): each cycle consumes
/// the stage registers in reverse order — so at steady state stage `s`
/// processes batch `c - s` in cycle `c` — then admits the next batch at
/// \[Plan\]. Implicitly satisfies every [`StageBarrier`].
#[allow(clippy::too_many_arguments)]
fn drive_sync(
    stages: &mut [&mut dyn Stage],
    pool: &mut PayloadPool,
    dim: usize,
    workers: WorkerPool,
    batches: &[SparseBatch],
    uniq: &[Vec<Vec<u64>>],
    range: Range<usize>,
    faults: Option<&FaultInjector>,
    telemetry: Option<&RunTelemetry>,
    records: &mut [IterationRecord],
    timings: &mut [Vec<u64>],
    shard_timings: &mut [Vec<Vec<u64>>],
) -> Result<(), ScratchError> {
    let k = stages.len();
    // regs[s] holds the payload that stage s produced last cycle.
    let mut regs: Vec<Option<StagePayload>> = (0..k).map(|_| None).collect();
    let mut next = range.start;
    loop {
        for s in (1..k).rev() {
            if let Some(mut p) = regs[s - 1].take() {
                let ctx = StageCtx {
                    batches,
                    uniq,
                    index: p.index,
                    pipelined: true,
                    workers,
                    faults,
                    telemetry,
                    lane: Lane::Main,
                };
                timed_execute(stages[s], &ctx, &mut p)?;
                if s == k - 1 {
                    finalize_record(&mut records[p.index], &p, batches, uniq);
                    timings[p.index] = std::mem::take(&mut p.stage_nanos);
                    shard_timings[p.index] = std::mem::take(&mut p.stage_shards);
                    pool.release(p);
                } else {
                    regs[s] = Some(p);
                }
            }
        }
        if next < range.end {
            let ctx = StageCtx {
                batches,
                uniq,
                index: next,
                pipelined: true,
                workers,
                faults,
                telemetry,
                lane: Lane::Main,
            };
            let mut p = pool.take(dim);
            timed_execute(stages[0], &ctx, &mut p)?;
            regs[0] = Some(p);
            next += 1;
        } else if regs.iter().all(Option::is_none) {
            break;
        }
    }
    Ok(())
}

/// The concurrent schedule: one OS thread per stage, bounded data
/// channels between adjacent stages, retired payloads recycled back to
/// the first stage, and each stage's declared [`StageBarrier`]s enforced
/// as watermark waits (a watched stage broadcasts each completed batch
/// index; the waiter blocks until `completed >= i - lag`).
///
/// Any stage error is stored (first wins) and shuts the pipeline down
/// through channel disconnection.
#[allow(clippy::too_many_arguments)]
fn drive_threaded(
    stages: &mut [&mut dyn Stage],
    dim: usize,
    batches: &[SparseBatch],
    uniq: &[Vec<Vec<u64>>],
    range: Range<usize>,
    faults: Option<&FaultInjector>,
    telemetry: Option<&RunTelemetry>,
    records: &mut [IterationRecord],
    timings: &mut [Vec<u64>],
    shard_timings: &mut [Vec<Vec<u64>>],
) -> Result<(), ScratchError> {
    let k = stages.len();
    assert!(k >= 2, "threaded schedule needs at least two stages");

    // Resolve barrier names to stage indices and wire one watermark
    // channel per (waiter, watched) pair. Each wait keeps the watched
    // stage's name so a blocking wait can be recorded as a stall span.
    let names: Vec<&'static str> = stages.iter().map(|s| s.name()).collect();
    let mut waits: Vec<Vec<(Receiver<usize>, i64, &'static str)>> =
        (0..k).map(|_| Vec::new()).collect();
    let mut signals: Vec<Vec<Sender<usize>>> = (0..k).map(|_| Vec::new()).collect();
    for s in 0..k {
        for barrier in stages[s].barriers() {
            let watched = names
                .iter()
                .position(|&nm| nm == barrier.after)
                .ok_or_else(|| ScratchError::InvalidConfig {
                    detail: format!(
                        "stage {} declares a barrier on unknown stage {}",
                        names[s], barrier.after
                    ),
                })?;
            let (tx, rx) = unbounded::<usize>();
            signals[watched].push(tx);
            waits[s].push((rx, barrier.lag as i64, names[watched]));
        }
    }

    // Data channels between adjacent stages (depth 2, like the register
    // file's one-in-flight-plus-one-ready occupancy), plus the recycle
    // path from the last stage back to the first.
    let mut txs: Vec<Option<Sender<StagePayload>>> = (0..k).map(|_| None).collect();
    let mut rxs: Vec<Option<Receiver<StagePayload>>> = (0..k).map(|_| None).collect();
    for s in 0..k - 1 {
        let (tx, rx) = bounded::<StagePayload>(2);
        txs[s] = Some(tx);
        rxs[s + 1] = Some(rx);
    }
    let (recycle_tx, recycle_rx) = unbounded::<StagePayload>();

    let error: Arc<Mutex<Option<ScratchError>>> = Arc::new(Mutex::new(None));
    let store_error = |slot: &Arc<Mutex<Option<ScratchError>>>, e: ScratchError| {
        let mut guard = slot.lock();
        if guard.is_none() {
            *guard = Some(e);
        }
    };

    let watermark_floor = range.start as i64 - 1;
    std::thread::scope(|scope| {
        let mut sink = Some((records, timings, shard_timings));
        let mut recycle_rx = Some(recycle_rx);
        let mut recycle_tx = Some(recycle_tx);
        let stage_iter = stages
            .iter_mut()
            .zip(rxs)
            .zip(txs)
            .zip(waits)
            .zip(signals)
            .enumerate();
        for (s, ((((stage, rx), tx), stage_waits), stage_signals)) in stage_iter {
            let err_slot = Arc::clone(&error);
            // Copy the downstream stage's name out of `names` so the
            // `move` closure captures one `&'static str`, not the Vec.
            let downstream = (s + 1 < k).then(|| names[s + 1]);
            let lane = Lane::Stage(s as u8);
            if s == 0 {
                // First stage: source loop over the trace, reusing
                // recycled payloads.
                let recycle_rx = recycle_rx.take().expect("one source stage");
                let tx = tx.expect("source stage has a downstream");
                let range = range.clone();
                scope.spawn(move || {
                    for i in range {
                        // An empty recycle path just mints a payload; a
                        // disconnected one means the sink died early and
                        // must surface as an explicit error, not silent
                        // fresh-payload churn.
                        let mut p = match recycle_rx.try_recv() {
                            Ok(p) => p,
                            Err(TryRecvError::Empty) => StagePayload::new(dim),
                            Err(TryRecvError::Disconnected) => {
                                store_error(
                                    &err_slot,
                                    ScratchError::ChannelDisconnected {
                                        stage: stage.name().to_owned(),
                                    },
                                );
                                return;
                            }
                        };
                        let ctx = StageCtx {
                            batches,
                            uniq,
                            index: i,
                            pipelined: true,
                            workers: WorkerPool::inline(),
                            faults,
                            telemetry,
                            lane,
                        };
                        if let Err(e) = timed_execute(*stage, &ctx, &mut p) {
                            store_error(&err_slot, e);
                            return;
                        }
                        if tx.send(p).is_err() {
                            return;
                        }
                        if let (Some(tel), Some(receiver)) = (telemetry, downstream) {
                            tel.channel_depth(receiver, tx.len() as u64);
                        }
                        for sig in &stage_signals {
                            let _ = sig.send(i);
                        }
                    }
                });
            } else {
                let rx = rx.expect("non-source stage has an upstream");
                let last_sink = if s == k - 1 { sink.take() } else { None };
                let recycle = if s == k - 1 { recycle_tx.take() } else { None };
                scope.spawn(move || {
                    let mut last_sink = last_sink;
                    // Batches before the driven range committed in earlier
                    // segments, so their watermarks are already satisfied.
                    let mut done: Vec<i64> = vec![watermark_floor; stage_waits.len()];
                    for mut p in rx.iter() {
                        let i = p.index;
                        for (w, (wrx, lag, watched)) in stage_waits.iter().enumerate() {
                            if done[w] >= i as i64 - lag {
                                continue;
                            }
                            // Only waits that actually block become stall
                            // spans — a satisfied watermark costs nothing.
                            let stall_start = telemetry.map(RunTelemetry::now_ns);
                            while done[w] < i as i64 - lag {
                                match wrx.recv() {
                                    Ok(completed) => done[w] = completed as i64,
                                    Err(_) => return,
                                }
                            }
                            if let (Some(tel), Some(start)) = (telemetry, stall_start) {
                                tel.barrier_stall(lane, i, stage.name(), watched, start);
                            }
                        }
                        let ctx = StageCtx {
                            batches,
                            uniq,
                            index: i,
                            pipelined: true,
                            workers: WorkerPool::inline(),
                            faults,
                            telemetry,
                            lane,
                        };
                        if let Err(e) = timed_execute(*stage, &ctx, &mut p) {
                            store_error(&err_slot, e);
                            return;
                        }
                        if let Some(tx) = &tx {
                            if tx.send(p).is_err() {
                                return;
                            }
                            if let (Some(tel), Some(receiver)) = (telemetry, downstream) {
                                tel.channel_depth(receiver, tx.len() as u64);
                            }
                            for sig in &stage_signals {
                                let _ = sig.send(i);
                            }
                        } else {
                            // Sink stage: retire the payload.
                            let (records, timings, shard_timings) =
                                last_sink.as_mut().expect("one sink stage");
                            finalize_record(&mut records[i], &p, batches, uniq);
                            timings[i] = std::mem::take(&mut p.stage_nanos);
                            shard_timings[i] = std::mem::take(&mut p.stage_shards);
                            for sig in &stage_signals {
                                let _ = sig.send(i);
                            }
                            if let Some(recycle) = &recycle {
                                let _ = recycle.send(p);
                            }
                        }
                    }
                });
            }
        }
    });

    // All stage threads joined at scope exit; take the first stored error
    // without assuming exclusive ownership of the slot.
    let first = error.lock().take();
    match first {
        Some(e) => Err(e),
        None => Ok(()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backend::UnitBackend;
    use crate::config::WindowConfig;
    use crate::runtime::train_direct;
    use embeddings::TableBag;
    use tracegen::{LocalityProfile, TraceConfig, TraceGenerator};

    fn make_tables(num: usize, rows: usize, dim: usize) -> Vec<EmbeddingTable> {
        (0..num)
            .map(|t| EmbeddingTable::seeded(rows, dim, 1000 + t as u64))
            .collect()
    }

    fn trace(profile: LocalityProfile, n: usize) -> (TraceConfig, Vec<SparseBatch>) {
        let cfg = TraceConfig {
            num_tables: 3,
            rows_per_table: 400,
            lookups_per_sample: 4,
            batch_size: 8,
            profile,
            seed: 11,
        };
        (cfg, TraceGenerator::new(cfg).take_batches(n))
    }

    fn functional(
        config: PipelineConfig,
        tables: Vec<EmbeddingTable>,
        schedule: Schedule,
    ) -> Pipeline<UnitBackend> {
        Pipeline::builder()
            .config(config)
            .tables(tables)
            .backend(UnitBackend::new(0.05))
            .schedule(schedule)
            .build()
            .unwrap()
    }

    /// The headline correctness test: pipelined ScratchPipe produces
    /// bit-identical tables to direct sequential training.
    #[test]
    fn pipelined_training_is_bit_identical_to_sequential() {
        for profile in [LocalityProfile::Random, LocalityProfile::High] {
            let (tcfg, batches) = trace(profile, 25);
            let dim = 8;
            let mut direct_tables = make_tables(tcfg.num_tables, tcfg.rows_per_table as usize, dim);
            let mut direct_backend = UnitBackend::new(0.05);
            let _ = train_direct(&mut direct_tables, &batches, &mut direct_backend);

            let config = PipelineConfig::functional(dim, 200);
            let sp_tables = make_tables(tcfg.num_tables, tcfg.rows_per_table as usize, dim);
            let mut pipe = functional(config, sp_tables, Schedule::Sync);
            let report = pipe.run(&batches).unwrap();
            assert_eq!(report.iterations, 25);
            let sp_tables = pipe.into_tables();
            for (t, (a, b)) in direct_tables.iter().zip(&sp_tables).enumerate() {
                assert!(
                    a.bit_eq(b),
                    "{profile:?}: table {t} diverged at row {:?}",
                    a.first_diff_row(b)
                );
            }
        }
    }

    #[test]
    fn threaded_pipeline_is_bit_identical_to_sequential() {
        for profile in [LocalityProfile::Random, LocalityProfile::High] {
            let cfg = TraceConfig {
                num_tables: 3,
                rows_per_table: 300,
                lookups_per_sample: 4,
                batch_size: 8,
                profile,
                seed: 21,
            };
            let batches = TraceGenerator::new(cfg).take_batches(40);
            let mut direct = make_tables(3, 300, 8);
            let direct_losses = train_direct(&mut direct, &batches, &mut UnitBackend::new(0.05));

            // §VI-D worst case: 6 windowed batches × 8 samples × 4 lookups
            // = 192 unique rows can be held at once; provision for all of
            // them so the test is independent of the trace's RNG stream.
            let mut pipe = functional(
                PipelineConfig::functional(8, 192),
                make_tables(3, 300, 8),
                Schedule::Threaded,
            );
            let report = pipe.run(&batches).unwrap();
            let threaded = pipe.into_tables();
            for (t, (a, b)) in direct.iter().zip(&threaded).enumerate() {
                assert!(
                    a.bit_eq(b),
                    "{profile:?} table {t} diverged at {:?}",
                    a.first_diff_row(b)
                );
            }
            assert_eq!(direct_losses.len(), report.records.len());
            for (a, r) in direct_losses.iter().zip(&report.records) {
                assert_eq!(a.to_bits(), r.loss.to_bits());
            }
        }
    }

    #[test]
    fn strawman_sequential_window_is_also_bit_identical() {
        let (tcfg, batches) = trace(LocalityProfile::Medium, 20);
        let dim = 8;
        let mut direct_tables = make_tables(tcfg.num_tables, tcfg.rows_per_table as usize, dim);
        let _ = train_direct(&mut direct_tables, &batches, &mut UnitBackend::new(0.05));

        let config = PipelineConfig::functional(dim, 64).sequential();
        let mut pipe = functional(
            config,
            make_tables(tcfg.num_tables, tcfg.rows_per_table as usize, dim),
            Schedule::Sequential,
        );
        let _ = pipe.run(&batches).unwrap();
        let sp = pipe.into_tables();
        for (a, b) in direct_tables.iter().zip(&sp) {
            assert!(a.bit_eq(b));
        }
    }

    #[test]
    fn always_hit_property_holds() {
        // With correct windows the hazard checker (which contains the
        // always-hit assertion) never fires, and the hit rate matches the
        // plan-stage accounting.
        let (_, batches) = trace(LocalityProfile::High, 30);
        let mut pipe = functional(
            PipelineConfig::functional(8, 200),
            make_tables(3, 400, 8),
            Schedule::Sync,
        );
        let report = pipe.run(&batches).unwrap();
        assert!(report.hit_rate() > 0.0);
        assert_eq!(report.records.len(), 30);
    }

    /// Negative test: break the future window and feed an adversarial
    /// trace. The hazard checker must catch the RAW-4 eviction.
    #[test]
    fn broken_future_window_is_detected() {
        // Adversarial trace on one table, two slots:
        //   batch 0: {1, 2}   (fills slots 0, 1)
        //   batch 1: {3}      (must evict; with future=0 it may evict 1 or 2)
        //   batch 2: {1, 2}   (needs whichever was evicted → RAW-4)
        let mk = |ids: &[u64]| SparseBatch::new(vec![TableBag::from_samples(&[ids.to_vec()])]);
        let batches = vec![mk(&[1, 2]), mk(&[3]), mk(&[1, 2])];
        let config =
            PipelineConfig::functional(4, 2).with_window(WindowConfig { past: 0, future: 0 });
        let mut pipe = functional(config, make_tables(1, 10, 4), Schedule::Sync);
        let err = pipe.run(&batches).unwrap_err();
        assert!(
            matches!(err, ScratchError::HazardViolation { .. }),
            "expected hazard violation, got {err:?}"
        );
    }

    /// Negative test without the checker: the same broken window must
    /// produce *numerically different* tables than sequential training —
    /// demonstrating the Hold-mask mechanism is load-bearing.
    #[test]
    fn broken_window_without_checker_diverges_numerically() {
        let mk = |ids: &[u64]| SparseBatch::new(vec![TableBag::from_samples(&[ids.to_vec()])]);
        // Row 1 is trained by batch 0, evicted by batch 1 (write-back in
        // flight), then batch 2 re-fetches it from the CPU table *before*
        // the write-back lands → it trains on stale data.
        let batches = vec![mk(&[1, 2]), mk(&[3]), mk(&[1]), mk(&[4]), mk(&[1])];
        let mut direct_tables = make_tables(1, 10, 4);
        let _ = train_direct(&mut direct_tables, &batches, &mut UnitBackend::new(0.3));

        let mut config =
            PipelineConfig::functional(4, 2).with_window(WindowConfig { past: 0, future: 0 });
        config.check_hazards = false;
        let mut pipe = Pipeline::builder()
            .config(config)
            .tables(make_tables(1, 10, 4))
            .backend(UnitBackend::new(0.3))
            .schedule(Schedule::Sync)
            .build()
            .unwrap();
        let _ = pipe.run(&batches).unwrap();
        let sp = pipe.into_tables();
        assert!(
            !direct_tables[0].bit_eq(&sp[0]),
            "broken window should corrupt training"
        );
    }

    #[test]
    fn capacity_exhaustion_reports_table() {
        let mk = |ids: &[u64]| SparseBatch::new(vec![TableBag::from_samples(&[ids.to_vec()])]);
        let batches = vec![mk(&[1, 2]), mk(&[3, 4])];
        let mut pipe = functional(
            PipelineConfig::functional(4, 2),
            make_tables(1, 10, 4),
            Schedule::Sync,
        );
        let err = pipe.run(&batches).unwrap_err();
        assert!(matches!(
            err,
            ScratchError::CapacityExhausted { table: 0, .. }
        ));
    }

    #[test]
    fn threaded_capacity_error_propagates() {
        let cfg = TraceConfig {
            num_tables: 1,
            rows_per_table: 1000,
            lookups_per_sample: 8,
            batch_size: 16,
            profile: LocalityProfile::Random,
            seed: 1,
        };
        let batches = TraceGenerator::new(cfg).take_batches(10);
        let mut pipe = functional(
            PipelineConfig::functional(8, 4), // far too small
            make_tables(1, 1000, 8),
            Schedule::Threaded,
        );
        let err = pipe.run(&batches).unwrap_err();
        assert!(matches!(err, ScratchError::CapacityExhausted { .. }));
    }

    #[test]
    fn traffic_accounting_is_consistent() {
        let (_, batches) = trace(LocalityProfile::Medium, 12);
        let mut pipe = functional(
            PipelineConfig::functional(8, 150),
            make_tables(3, 400, 8),
            Schedule::Sync,
        );
        let report = pipe.run(&batches).unwrap();
        let total = report.total_traffic();
        // Misses flow CPU→GPU: collect reads = exchange h2d = insert fills.
        assert_eq!(
            total.collect.cpu_random_read_bytes,
            total.exchange.pcie_h2d_bytes
        );
        assert_eq!(
            total.exchange.pcie_h2d_bytes,
            total.insert.gpu_random_write_bytes
        );
        // Evictions flow GPU→CPU symmetrically.
        assert_eq!(
            total.collect.gpu_random_read_bytes,
            total.exchange.pcie_d2h_bytes
        );
        assert_eq!(
            total.exchange.pcie_d2h_bytes,
            total.insert.cpu_random_write_bytes
        );
        // Train traffic is pure GPU.
        assert_eq!(total.train.cpu_bytes(), 0);
        assert!(total.train.gpu_bytes() > 0);
    }

    #[test]
    fn analytic_mode_counts_identical_cache_events() {
        let (tcfg, batches) = trace(LocalityProfile::Low, 15);
        let functional_report = {
            let mut pipe = functional(
                PipelineConfig::functional(8, 150),
                make_tables(tcfg.num_tables, tcfg.rows_per_table as usize, 8),
                Schedule::Sync,
            );
            pipe.run(&batches).unwrap()
        };
        let analytic = {
            let mut pipe = Pipeline::builder()
                .config(PipelineConfig::analytic(8, 150))
                .analytic_tables(tcfg.num_tables, tcfg.rows_per_table)
                .backend(UnitBackend::new(0.01))
                .schedule(Schedule::Sync)
                .build()
                .unwrap();
            pipe.run(&batches).unwrap()
        };
        for (f, a) in functional_report.records.iter().zip(&analytic.records) {
            assert_eq!(f.hits, a.hits, "iteration {}", f.index);
            assert_eq!(f.misses, a.misses);
            assert_eq!(f.evictions, a.evictions);
            assert_eq!(f.traffic.exchange, a.traffic.exchange);
        }
    }

    #[test]
    fn higher_locality_yields_higher_hit_rate() {
        let run = |p| {
            let (tcfg, batches) = trace(p, 30);
            let mut pipe = Pipeline::builder()
                .config(PipelineConfig::analytic(8, 160)) // 40 % of 400 rows
                .analytic_tables(tcfg.num_tables, tcfg.rows_per_table)
                .backend(UnitBackend::new(0.01))
                .build()
                .unwrap();
            pipe.run(&batches).unwrap().hit_rate()
        };
        let low = run(LocalityProfile::Random);
        let high = run(LocalityProfile::High);
        assert!(high > low + 0.1, "high {high} vs random {low}");
    }

    #[test]
    fn report_helpers() {
        let (_, batches) = trace(LocalityProfile::Medium, 10);
        let mut pipe = functional(
            PipelineConfig::functional(8, 150),
            make_tables(3, 400, 8),
            Schedule::Sync,
        );
        let report = pipe.run(&batches).unwrap();
        assert_eq!(report.records.len(), 10);
        let steady = report.steady_traffic(4);
        assert!(steady.train.gpu_bytes() > 0);
        assert!(report.records[0].dup_ratio() >= 1.0);
        assert_eq!(report.peak_held_slots.len(), 3);
        assert!(report.peak_held_slots.iter().all(|&p| p > 0));
        let _ = report.mean_loss();
    }

    #[test]
    fn mismatched_batch_rejected() {
        let mut pipe = functional(
            PipelineConfig::functional(8, 50),
            make_tables(2, 100, 8),
            Schedule::Sync,
        );
        let bad = SparseBatch::from_rows(1, &[vec![vec![1]]]);
        assert!(matches!(
            pipe.run(&[bad]),
            Err(ScratchError::InvalidConfig { .. })
        ));
    }

    #[test]
    fn out_of_range_id_rejected() {
        let mut pipe = functional(
            PipelineConfig::functional(8, 50),
            make_tables(1, 100, 8),
            Schedule::Sync,
        );
        let bad = SparseBatch::from_rows(1, &[vec![vec![100]]]);
        assert!(matches!(
            pipe.run(&[bad]),
            Err(ScratchError::InvalidConfig { .. })
        ));
    }

    #[test]
    fn empty_trace_is_fine() {
        for schedule in [
            Schedule::Sync,
            Schedule::Sequential,
            Schedule::Threaded,
            Schedule::DataParallel,
        ] {
            let mut pipe = functional(
                PipelineConfig::functional(8, 50),
                make_tables(1, 100, 8),
                schedule,
            );
            let report = pipe.run(&[]).unwrap();
            assert_eq!(report.iterations, 0);
        }
    }

    #[test]
    fn empty_trace_returns_tables_unchanged() {
        let tables = make_tables(2, 100, 8);
        let expect = tables.clone();
        let mut pipe = functional(
            PipelineConfig::functional(8, 50),
            tables,
            Schedule::Threaded,
        );
        let report = pipe.run(&[]).unwrap();
        assert!(report.records.is_empty());
        let out = pipe.into_tables();
        for (a, b) in expect.iter().zip(&out) {
            assert!(a.bit_eq(b));
        }
    }

    #[test]
    fn eviction_policies_all_train_correctly() {
        use crate::policy::EvictionPolicy;
        let (tcfg, batches) = trace(LocalityProfile::Medium, 20);
        let dim = 8;
        let mut direct = make_tables(tcfg.num_tables, tcfg.rows_per_table as usize, dim);
        let _ = train_direct(&mut direct, &batches, &mut UnitBackend::new(0.05));
        for policy in EvictionPolicy::ALL {
            let config = PipelineConfig::functional(dim, 150).with_policy(policy);
            let mut pipe = functional(
                config,
                make_tables(tcfg.num_tables, tcfg.rows_per_table as usize, dim),
                Schedule::Sync,
            );
            let _ = pipe.run(&batches).unwrap();
            let sp = pipe.into_tables();
            for (a, b) in direct.iter().zip(&sp) {
                assert!(a.bit_eq(b), "policy {policy} diverged");
            }
        }
    }

    #[test]
    fn threaded_report_carries_stage_traffic() {
        let cfg = TraceConfig {
            num_tables: 2,
            rows_per_table: 200,
            lookups_per_sample: 4,
            batch_size: 8,
            profile: LocalityProfile::Medium,
            seed: 4,
        };
        let batches = TraceGenerator::new(cfg).take_batches(12);
        let mut pipe = functional(
            PipelineConfig::functional(8, 130),
            make_tables(2, 200, 8),
            Schedule::Threaded,
        );
        let report = pipe.run(&batches).unwrap();
        assert_eq!(report.iterations, 12);
        let total = report.total_traffic();
        assert!(total.plan.pcie_h2d_bytes > 0, "plan uploads sparse IDs");
        assert!(total.train.gpu_bytes() > 0, "train is pure GPU work");
        // Miss flow is conserved: collect reads = exchange h2d = insert fills.
        assert_eq!(
            total.collect.cpu_random_read_bytes,
            total.exchange.pcie_h2d_bytes
        );
        assert_eq!(
            total.exchange.pcie_h2d_bytes,
            total.insert.gpu_random_write_bytes
        );
        assert!(report.hit_rate() > 0.0);
        assert_eq!(report.peak_held_slots.len(), 2);
    }

    #[test]
    fn analytic_mode_rejects_threaded_schedule() {
        for schedule in [Schedule::Threaded, Schedule::DataParallel] {
            let mut pipe = Pipeline::builder()
                .config(PipelineConfig::analytic(8, 100))
                .analytic_tables(1, 100)
                .backend(UnitBackend::new(0.05))
                .schedule(schedule)
                .build()
                .unwrap();
            let err = pipe.run(&[]).unwrap_err();
            assert!(matches!(err, ScratchError::InvalidConfig { .. }));
        }
    }

    /// The data-parallel schedule is bit-identical to sync at every pool
    /// width — the worker-pool sharding never splits a floating-point
    /// reduction, so the width is invisible in the results.
    #[test]
    fn data_parallel_is_bit_identical_at_any_width() {
        let (tcfg, batches) = trace(LocalityProfile::Medium, 25);
        let dim = 8;
        let run = |schedule, parallelism| {
            let mut pipe = Pipeline::builder()
                .config(PipelineConfig::functional(dim, 192))
                .tables(make_tables(
                    tcfg.num_tables,
                    tcfg.rows_per_table as usize,
                    dim,
                ))
                .backend(UnitBackend::new(0.05))
                .schedule(schedule)
                .parallelism(parallelism)
                .build()
                .unwrap();
            let report = pipe.run(&batches).unwrap();
            (report, pipe.into_tables())
        };
        let (sync_report, sync_tables) = run(Schedule::Sync, 1);
        for width in [1, 2, 4, 7] {
            let (dp_report, dp_tables) = run(Schedule::DataParallel, width);
            for (s, d) in sync_report.records.iter().zip(&dp_report.records) {
                assert_eq!(s.hits, d.hits, "width {width}");
                assert_eq!(s.traffic, d.traffic, "width {width}");
                assert_eq!(s.loss.to_bits(), d.loss.to_bits(), "width {width}");
            }
            assert_eq!(sync_report.flush_traffic, dp_report.flush_traffic);
            assert_eq!(sync_report.peak_held_slots, dp_report.peak_held_slots);
            for (a, b) in sync_tables.iter().zip(&dp_tables) {
                assert!(a.bit_eq(b), "width {width}");
            }
        }
    }

    fn auto_pipe(parallelism: usize) -> (Pipeline<UnitBackend>, Vec<SparseBatch>) {
        // Big shape: 256 samples × 8 lookups × 4 tables × dim 32
        // = 262 144 elements per iteration — above both default floors.
        let cfg = TraceConfig {
            num_tables: 4,
            rows_per_table: 5_000,
            lookups_per_sample: 8,
            batch_size: 256,
            profile: LocalityProfile::Medium,
            seed: 9,
        };
        let big = TraceGenerator::new(cfg).take_batches(1);
        let pipe = Pipeline::builder()
            .config(PipelineConfig::functional(32, 4_000))
            .tables(make_tables(4, 5_000, 32))
            .backend(UnitBackend::new(0.05))
            .schedule(Schedule::Auto)
            .parallelism(parallelism)
            .build()
            .unwrap();
        (pipe, big)
    }

    #[test]
    fn auto_schedule_scales_with_per_iteration_work() {
        // Small shape: 8 samples × 4 lookups × 3 tables × dim 8 = 768
        // f32 elements per iteration — far below the crossover, so Auto
        // stays synchronous regardless of pool width.
        let (_, small) = trace(LocalityProfile::Medium, 2);
        let pipe = functional(
            PipelineConfig::functional(8, 150),
            make_tables(3, 400, 8),
            Schedule::Auto,
        );
        assert_eq!(pipe.effective_schedule(&small).unwrap(), Schedule::Sync);
        assert_eq!(pipe.effective_schedule(&[]).unwrap(), Schedule::Sync);

        // Big shape with a width-1 pool: Auto goes threaded — data
        // parallelism has nothing to shard over.
        let (pipe, big) = auto_pipe(1);
        assert_eq!(pipe.effective_schedule(&big).unwrap(), Schedule::Threaded);

        // Same shape with a wider pool: Auto upgrades to data-parallel.
        let (pipe, big) = auto_pipe(4);
        assert_eq!(
            pipe.effective_schedule(&big).unwrap(),
            Schedule::DataParallel
        );

        // Analytic pipelines always resolve to sync.
        let analytic = Pipeline::<UnitBackend>::builder()
            .config(PipelineConfig::analytic(32, 4_000))
            .analytic_tables(4, 5_000)
            .backend(UnitBackend::new(0.05))
            .build()
            .unwrap();
        assert_eq!(analytic.effective_schedule(&big).unwrap(), Schedule::Sync);
    }

    #[test]
    fn auto_thresholds_are_overridable_on_both_sides() {
        // Work for this shape: 256 × 8 × 4 × 32 = 262 144 elements.
        let work = 262_144u64;

        // Threaded floor, width-1 pool. Exactly at the floor → Threaded;
        // one element above the work → Sync.
        let mk = |parallelism: usize, threaded: u64, parallel: u64| {
            let cfg = TraceConfig {
                num_tables: 4,
                rows_per_table: 5_000,
                lookups_per_sample: 8,
                batch_size: 256,
                profile: LocalityProfile::Medium,
                seed: 9,
            };
            let big = TraceGenerator::new(cfg).take_batches(1);
            let pipe = Pipeline::builder()
                .config(PipelineConfig::functional(32, 4_000))
                .tables(make_tables(4, 5_000, 32))
                .backend(UnitBackend::new(0.05))
                .schedule(Schedule::Auto)
                .parallelism(parallelism)
                .auto_threaded_min_work(threaded)
                .auto_parallel_min_work(parallel)
                .build()
                .unwrap();
            pipe.effective_schedule(&big).unwrap()
        };
        assert_eq!(mk(1, work, u64::MAX), Schedule::Threaded);
        assert_eq!(mk(1, work + 1, u64::MAX), Schedule::Sync);

        // Parallel floor, width-4 pool. At the floor → DataParallel; one
        // above → falls back to the threaded decision.
        assert_eq!(mk(4, 0, work), Schedule::DataParallel);
        assert_eq!(mk(4, 0, work + 1), Schedule::Threaded);
        assert_eq!(mk(4, work + 1, work + 1), Schedule::Sync);

        // A wide pool never matters below the parallel floor with a
        // width-1 pool equivalent: parallel floor met but width 1 → the
        // threaded path decides.
        assert_eq!(mk(1, 0, work), Schedule::Threaded);
    }

    #[test]
    fn builder_rejects_inconsistent_setups() {
        let missing_config = Pipeline::<UnitBackend>::builder()
            .tables(make_tables(1, 10, 4))
            .backend(UnitBackend::new(0.1))
            .build();
        assert!(missing_config.is_err());

        let missing_backend = Pipeline::<UnitBackend>::builder()
            .config(PipelineConfig::functional(4, 10))
            .tables(make_tables(1, 10, 4))
            .build();
        assert!(missing_backend.is_err());

        let no_tables = Pipeline::<UnitBackend>::builder()
            .config(PipelineConfig::functional(4, 10))
            .backend(UnitBackend::new(0.1))
            .build();
        assert!(no_tables.is_err());

        let both = Pipeline::<UnitBackend>::builder()
            .config(PipelineConfig::functional(4, 10))
            .tables(make_tables(1, 10, 4))
            .analytic_tables(1, 10)
            .backend(UnitBackend::new(0.1))
            .build();
        assert!(both.is_err());

        let dim_mismatch = Pipeline::<UnitBackend>::builder()
            .config(PipelineConfig::functional(8, 10))
            .tables(make_tables(1, 10, 4))
            .backend(UnitBackend::new(0.1))
            .build();
        assert!(dim_mismatch.is_err());
    }

    #[test]
    fn sync_and_threaded_reports_are_identical() {
        let (tcfg, batches) = trace(LocalityProfile::Medium, 30);
        let dim = 8;
        let run = |schedule| {
            let mut pipe = functional(
                PipelineConfig::functional(dim, 192),
                make_tables(tcfg.num_tables, tcfg.rows_per_table as usize, dim),
                schedule,
            );
            let report = pipe.run(&batches).unwrap();
            (report, pipe.into_tables())
        };
        let (sync_report, sync_tables) = run(Schedule::Sync);
        let (thr_report, thr_tables) = run(Schedule::Threaded);
        for (s, t) in sync_report.records.iter().zip(&thr_report.records) {
            assert_eq!(s.hits, t.hits);
            assert_eq!(s.traffic, t.traffic);
            assert_eq!(s.loss.to_bits(), t.loss.to_bits());
        }
        assert_eq!(sync_report.flush_traffic, thr_report.flush_traffic);
        assert_eq!(sync_report.peak_held_slots, thr_report.peak_held_slots);
        for (a, b) in sync_tables.iter().zip(&thr_tables) {
            assert!(a.bit_eq(b));
        }
    }
}
