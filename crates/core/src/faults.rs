//! Deterministic fault injection for the Stage pipeline.
//!
//! A [`FaultPlan`] is a replayable list of faults pinned to precise
//! `(iteration, stage, shard)` coordinates — no wall-clock, no global
//! state — so a chaos run is exactly reproducible from the plan's seed or
//! its JSON spec. The plan is armed on a pipeline with
//! [`PipelineBuilder::faults`], which threads a [`FaultInjector`] through
//! every [`StageCtx`](crate::stage::StageCtx); without it the hook is a
//! `None` check and the fault-free hot path is untouched.
//!
//! # Fault kinds
//!
//! * [`FaultKind::StageError`] — the stage fails before executing, with
//!   [`ScratchError::Injected`].
//! * [`FaultKind::WorkerPanic`] — one worker-pool shard task of the stage
//!   panics; the pool catches it (`catch_unwind`) and converts it to
//!   [`ScratchError::WorkerPanic`].
//! * [`FaultKind::SlowShard`] — adds logical nanoseconds to one of the
//!   stage's per-shard timings (surfaced via the audit stream's
//!   `stage_shards`); never fails the stage.
//! * [`FaultKind::CorruptPayload`] — flips bits in the rows staged at
//!   \[Collect\]; the payload checksum catches the corruption at
//!   \[Insert\] as [`ScratchError::PayloadCorrupted`] before any state is
//!   mutated. Checksumming is only switched on when the plan contains at
//!   least one such fault.
//!
//! # Attempt-based triggering
//!
//! A fault fires while `attempt < fires`, where `attempt` is the
//! supervised runtime's per-iteration attempt counter (always 0 under
//! plain [`Pipeline::run`]). Triggering is a pure predicate of
//! `(iteration, stage, attempt)` — no decrementing counters — so it does
//! not matter how many stages consult the injector concurrently or in
//! what order: replays are exact under every schedule and pool width.
//! `fires = u32::MAX` makes a fault persistent (unrecoverable).
//!
//! [`Pipeline::run`]: crate::pipeline::Pipeline::run
//! [`PipelineBuilder::faults`]: crate::pipeline::PipelineBuilder::faults
//! [`ScratchError::Injected`]: crate::error::ScratchError::Injected
//! [`ScratchError::WorkerPanic`]: crate::error::ScratchError::WorkerPanic
//! [`ScratchError::PayloadCorrupted`]: crate::error::ScratchError::PayloadCorrupted

use std::collections::HashMap;
use std::fmt;
use std::sync::atomic::{AtomicU32, AtomicU64, Ordering};
use std::sync::Arc;

use parking_lot::Mutex;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Error as SerdeError, Serialize, Value};

use crate::audit::AuditSink;
use crate::error::ScratchError;

/// The canonical stage names a fault may target.
pub const STAGE_NAMES: [&str; 5] = ["Plan", "Collect", "Exchange", "Insert", "Train"];

/// What a [`Fault`] does when it fires. See the [module docs](self).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum FaultKind {
    /// Fail the stage with [`ScratchError::Injected`] before it executes.
    ///
    /// [`ScratchError::Injected`]: crate::error::ScratchError::Injected
    StageError,
    /// Panic one worker-pool shard task of the stage.
    WorkerPanic,
    /// Add logical nanoseconds to one per-shard timing (non-failing).
    SlowShard,
    /// Corrupt the rows staged at \[Collect\] (caught by checksum at
    /// \[Insert\]).
    CorruptPayload,
}

impl FaultKind {
    /// Stable lower-case name, as used in audit events and JSON specs.
    pub fn name(self) -> &'static str {
        match self {
            FaultKind::StageError => "stage_error",
            FaultKind::WorkerPanic => "worker_panic",
            FaultKind::SlowShard => "slow_shard",
            FaultKind::CorruptPayload => "corrupt_payload",
        }
    }

    fn from_name(name: &str) -> Option<FaultKind> {
        match name {
            "stage_error" => Some(FaultKind::StageError),
            "worker_panic" => Some(FaultKind::WorkerPanic),
            "slow_shard" => Some(FaultKind::SlowShard),
            "corrupt_payload" => Some(FaultKind::CorruptPayload),
            _ => None,
        }
    }
}

impl fmt::Display for FaultKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// One fault at precise `(iteration, stage, shard)` coordinates.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Fault {
    /// Mini-batch index the fault targets.
    pub iteration: usize,
    /// Stage name the fault targets (one of [`STAGE_NAMES`]; matched
    /// case-insensitively). Ignored by [`FaultKind::CorruptPayload`],
    /// which always strikes between \[Collect\] and \[Insert\].
    pub stage: String,
    /// Shard coordinate for [`FaultKind::WorkerPanic`] /
    /// [`FaultKind::SlowShard`] (taken modulo the stage's shard count, so
    /// any value is valid).
    pub shard: usize,
    /// What happens when the fault fires.
    pub kind: FaultKind,
    /// The fault fires on attempts `0..fires` of its iteration;
    /// `u32::MAX` makes it persistent (unrecoverable).
    pub fires: u32,
    /// Logical nanoseconds added by [`FaultKind::SlowShard`] (0 for
    /// other kinds).
    pub slow_nanos: u64,
}

impl Serialize for Fault {
    fn to_value(&self) -> Value {
        Value::Map(vec![
            ("iteration".to_owned(), Value::UInt(self.iteration as u64)),
            ("stage".to_owned(), Value::Str(self.stage.clone())),
            ("shard".to_owned(), Value::UInt(self.shard as u64)),
            ("kind".to_owned(), Value::Str(self.kind.name().to_owned())),
            ("fires".to_owned(), Value::UInt(u64::from(self.fires))),
            ("slow_nanos".to_owned(), Value::UInt(self.slow_nanos)),
        ])
    }
}

impl Deserialize for Fault {
    fn from_value(value: &Value) -> Result<Self, SerdeError> {
        let field = |name: &str| {
            value
                .get(name)
                .ok_or_else(|| SerdeError(format!("fault is missing field `{name}`")))
        };
        let kind_name = match field("kind")? {
            Value::Str(s) => s.as_str(),
            other => return Err(SerdeError::unexpected("fault kind string", other)),
        };
        let kind = FaultKind::from_name(kind_name)
            .ok_or_else(|| SerdeError(format!("unknown fault kind `{kind_name}`")))?;
        let stage = match field("stage")? {
            Value::Str(s) => s.clone(),
            other => return Err(SerdeError::unexpected("stage name string", other)),
        };
        Ok(Fault {
            iteration: usize::from_value(field("iteration")?)?,
            stage,
            shard: usize::from_value(field("shard")?)?,
            kind,
            fires: u32::from_value(field("fires")?)?,
            slow_nanos: u64::from_value(field("slow_nanos")?)?,
        })
    }
}

/// A replayable set of faults: the unit of chaos-test configuration.
///
/// Build one explicitly ([`FaultPlan::new`]), from a seed
/// ([`FaultPlan::seeded`]) or from a JSON spec ([`FaultPlan::from_json`]);
/// arm it with [`PipelineBuilder::faults`].
///
/// [`PipelineBuilder::faults`]: crate::pipeline::PipelineBuilder::faults
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct FaultPlan {
    /// Seed the plan was generated from, when [`FaultPlan::seeded`] built
    /// it (provenance only; the faults below are what executes).
    pub seed: Option<u64>,
    /// The faults, in declaration order (first match wins per consult).
    pub faults: Vec<Fault>,
}

impl FaultPlan {
    /// An empty plan (arming it still costs nothing on the hot path, but
    /// makes the injector and its audit accounting active).
    pub fn none() -> Self {
        FaultPlan::default()
    }

    /// A plan executing exactly `faults`.
    pub fn new(faults: Vec<Fault>) -> Self {
        FaultPlan { seed: None, faults }
    }

    /// Whether the plan contains no faults.
    pub fn is_empty(&self) -> bool {
        self.faults.is_empty()
    }

    /// Generates `count` pseudo-random *recoverable* faults over
    /// `0..iterations` from `seed` — the chaos suite's seed-matrix entry
    /// point. Every generated fault fires once or twice, so any default
    /// retry budget ≥ 3 recovers it; kinds and coordinates are drawn
    /// uniformly (with stages restricted to where each kind can strike).
    pub fn seeded(seed: u64, iterations: usize, count: usize) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut faults = Vec::with_capacity(count);
        if iterations > 0 {
            for _ in 0..count {
                let iteration = rng.gen_range(0..iterations as u64) as usize;
                let kind = match rng.gen_range(0..4u64) {
                    0 => FaultKind::StageError,
                    1 => FaultKind::WorkerPanic,
                    2 => FaultKind::SlowShard,
                    _ => FaultKind::CorruptPayload,
                };
                let stage = match kind {
                    FaultKind::StageError => STAGE_NAMES[rng.gen_range(0..5u64) as usize],
                    FaultKind::WorkerPanic | FaultKind::SlowShard => {
                        ["Collect", "Insert", "Train"][rng.gen_range(0..3u64) as usize]
                    }
                    FaultKind::CorruptPayload => "Collect",
                };
                let slow_nanos = if kind == FaultKind::SlowShard {
                    rng.gen_range(1_000..1_000_000u64)
                } else {
                    0
                };
                faults.push(Fault {
                    iteration,
                    stage: stage.to_owned(),
                    shard: rng.gen_range(0..4u64) as usize,
                    kind,
                    fires: 1 + rng.gen_range(0..2u64) as u32,
                    slow_nanos,
                });
            }
        }
        FaultPlan {
            seed: Some(seed),
            faults,
        }
    }

    /// Serializes the plan as a JSON spec (replayable via
    /// [`FaultPlan::from_json`]).
    pub fn to_json(&self) -> String {
        serde_json::to_string(self).expect("fault plans contain no non-finite floats")
    }

    /// Parses a plan from a JSON spec produced by [`FaultPlan::to_json`]
    /// (or written by hand).
    ///
    /// # Errors
    ///
    /// Returns [`ScratchError::InvalidConfig`] on malformed JSON or an
    /// unknown fault kind.
    pub fn from_json(text: &str) -> Result<Self, ScratchError> {
        serde_json::from_str(text).map_err(|e| ScratchError::InvalidConfig {
            detail: format!("bad fault plan spec: {e}"),
        })
    }
}

impl Serialize for FaultPlan {
    fn to_value(&self) -> Value {
        let mut entries = Vec::with_capacity(2);
        if let Some(seed) = self.seed {
            entries.push(("seed".to_owned(), Value::UInt(seed)));
        }
        entries.push((
            "faults".to_owned(),
            Value::Seq(self.faults.iter().map(Serialize::to_value).collect()),
        ));
        Value::Map(entries)
    }
}

impl Deserialize for FaultPlan {
    fn from_value(value: &Value) -> Result<Self, SerdeError> {
        let seed = match value.get("seed") {
            Some(v) => Some(u64::from_value(v)?),
            None => None,
        };
        let faults = match value.get("faults") {
            Some(Value::Seq(items)) => items
                .iter()
                .map(Fault::from_value)
                .collect::<Result<Vec<_>, _>>()?,
            Some(other) => return Err(SerdeError::unexpected("fault list", other)),
            None => Vec::new(),
        };
        Ok(FaultPlan { seed, faults })
    }
}

/// One fault firing, as recorded by the injector and surfaced as a
/// `fault_injected` audit event.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct InjectionRecord {
    /// Iteration the fault fired at.
    pub iteration: usize,
    /// Attempt (within the supervised runtime's per-iteration counter)
    /// the fault fired on.
    pub attempt: u32,
    /// Stage the fault fired in.
    pub stage: String,
    /// Kind of fault that fired.
    pub kind: FaultKind,
    /// Shard coordinate (0 for whole-stage faults).
    pub shard: usize,
}

/// The armed, thread-safe form of a [`FaultPlan`]: stages consult it at
/// their hook points, the supervised runtime advances its attempt counter
/// and drains its firing log into the audit stream.
///
/// Triggering is a pure predicate (see the [module docs](self)), so the
/// injector is safely shared by concurrently executing stage threads.
pub struct FaultInjector {
    by_iter: HashMap<usize, Vec<Fault>>,
    attempt: AtomicU32,
    log: Mutex<Vec<InjectionRecord>>,
    checksums: bool,
}

impl fmt::Debug for FaultInjector {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("FaultInjector")
            .field(
                "faults",
                &self.by_iter.values().map(Vec::len).sum::<usize>(),
            )
            .field("attempt", &self.attempt.load(Ordering::Relaxed))
            .field("checksums", &self.checksums)
            .finish()
    }
}

impl FaultInjector {
    /// Arms a plan.
    pub fn new(plan: FaultPlan) -> Self {
        let checksums = plan
            .faults
            .iter()
            .any(|f| f.kind == FaultKind::CorruptPayload);
        let mut by_iter: HashMap<usize, Vec<Fault>> = HashMap::new();
        for fault in plan.faults {
            by_iter.entry(fault.iteration).or_default().push(fault);
        }
        FaultInjector {
            by_iter,
            attempt: AtomicU32::new(0),
            log: Mutex::new(Vec::new()),
            checksums,
        }
    }

    /// Whether \[Collect\] should checksum staged payloads (true iff the
    /// plan contains a [`FaultKind::CorruptPayload`] fault — otherwise
    /// checksumming would tax the fault-free path for nothing).
    pub fn checksums_enabled(&self) -> bool {
        self.checksums
    }

    /// Sets the attempt counter for the next execution attempt. Called by
    /// the supervised runtime before each (re)try; plain runs stay at 0.
    pub fn begin_attempt(&self, attempt: u32) {
        self.attempt.store(attempt, Ordering::SeqCst);
    }

    /// The current attempt counter.
    pub fn attempt(&self) -> u32 {
        self.attempt.load(Ordering::SeqCst)
    }

    fn fire<'s>(
        &'s self,
        iteration: usize,
        kind: FaultKind,
        stage: Option<&str>,
    ) -> Option<&'s Fault> {
        let attempt = self.attempt();
        let fault = self.by_iter.get(&iteration)?.iter().find(|f| {
            f.kind == kind
                && attempt < f.fires
                && stage.map_or(true, |s| f.stage.eq_ignore_ascii_case(s))
        })?;
        self.log.lock().push(InjectionRecord {
            iteration,
            attempt,
            stage: stage.unwrap_or(&fault.stage).to_owned(),
            kind,
            shard: if kind == FaultKind::StageError {
                0
            } else {
                fault.shard
            },
        });
        Some(fault)
    }

    /// Consulted by the driver before executing `stage` on `iteration`:
    /// a firing [`FaultKind::StageError`] yields the error to fail with.
    pub fn stage_error(&self, iteration: usize, stage: &str) -> Option<ScratchError> {
        self.fire(iteration, FaultKind::StageError, Some(stage))
            .map(|_| ScratchError::Injected {
                iteration,
                stage: stage.to_owned(),
            })
    }

    /// Consulted by sharding stages before spawning their worker tasks: a
    /// firing [`FaultKind::WorkerPanic`] yields the shard coordinate whose
    /// task must panic (callers reduce it modulo their task count).
    pub fn worker_panic(&self, iteration: usize, stage: &str) -> Option<usize> {
        self.fire(iteration, FaultKind::WorkerPanic, Some(stage))
            .map(|f| f.shard)
    }

    /// Consulted by the driver after a stage completes: every firing
    /// [`FaultKind::SlowShard`] yields `(shard, logical nanos)` to add to
    /// the stage's per-shard timings.
    pub fn slowdowns(&self, iteration: usize, stage: &str) -> Vec<(usize, u64)> {
        let attempt = self.attempt();
        let Some(faults) = self.by_iter.get(&iteration) else {
            return Vec::new();
        };
        let mut out = Vec::new();
        for f in faults {
            if f.kind == FaultKind::SlowShard
                && attempt < f.fires
                && f.stage.eq_ignore_ascii_case(stage)
            {
                self.log.lock().push(InjectionRecord {
                    iteration,
                    attempt,
                    stage: stage.to_owned(),
                    kind: FaultKind::SlowShard,
                    shard: f.shard,
                });
                out.push((f.shard, f.slow_nanos));
            }
        }
        out
    }

    /// Whether a [`FaultKind::CorruptPayload`] fault targets `iteration`
    /// on the current attempt. Does **not** log — \[Collect\] calls
    /// [`FaultInjector::record_corruption`] once rows were actually
    /// corrupted (an empty payload has nothing to corrupt).
    pub fn should_corrupt(&self, iteration: usize) -> bool {
        let attempt = self.attempt();
        self.by_iter.get(&iteration).is_some_and(|faults| {
            faults
                .iter()
                .any(|f| f.kind == FaultKind::CorruptPayload && attempt < f.fires)
        })
    }

    /// Records that \[Collect\] corrupted `iteration`'s staged rows.
    pub fn record_corruption(&self, iteration: usize) {
        self.log.lock().push(InjectionRecord {
            iteration,
            attempt: self.attempt(),
            stage: "Collect".to_owned(),
            kind: FaultKind::CorruptPayload,
            shard: 0,
        });
    }

    /// Drains the firing log, sorted into a deterministic order (stage
    /// threads may append concurrently, so arrival order is not stable;
    /// the sorted log is).
    pub fn drain_log(&self) -> Vec<InjectionRecord> {
        let mut log = std::mem::take(&mut *self.log.lock());
        log.sort();
        log
    }
}

/// An [`AuditSink`] decorator that deterministically fails writes: lines
/// whose index (counting every line offered to this sink, from 0) is in
/// the configured set are dropped and counted instead of forwarded — the
/// audit-sink half of fault injection, and the test double for the
/// best-effort sink contract ([`FileSink`](crate::audit::FileSink)
/// behaves the same way when its writer errors).
pub struct FaultySink<S> {
    inner: S,
    drop_lines: Vec<u64>,
    written: u64,
    dropped: Arc<AtomicU64>,
}

impl<S: fmt::Debug> fmt::Debug for FaultySink<S> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("FaultySink")
            .field("inner", &self.inner)
            .field("drop_lines", &self.drop_lines)
            .field("written", &self.written)
            .finish()
    }
}

impl<S: AuditSink> FaultySink<S> {
    /// Wraps `inner`, dropping the lines with the given indices.
    pub fn new(inner: S, drop_lines: Vec<u64>) -> Self {
        FaultySink {
            inner,
            drop_lines,
            written: 0,
            dropped: Arc::new(AtomicU64::new(0)),
        }
    }

    /// A shared handle to the dropped-line counter (usable after the sink
    /// moved into a pipeline).
    pub fn dropped_counter(&self) -> Arc<AtomicU64> {
        Arc::clone(&self.dropped)
    }
}

impl<S: AuditSink> AuditSink for FaultySink<S> {
    fn write_line(&mut self, line: &str) {
        let index = self.written;
        self.written += 1;
        if self.drop_lines.contains(&index) {
            self.dropped.fetch_add(1, Ordering::Relaxed);
        } else {
            self.inner.write_line(line);
        }
    }

    fn flush(&mut self) {
        self.inner.flush();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::audit::MemorySink;

    fn fault(iteration: usize, stage: &str, kind: FaultKind, fires: u32) -> Fault {
        Fault {
            iteration,
            stage: stage.to_owned(),
            shard: 1,
            kind,
            fires,
            slow_nanos: if kind == FaultKind::SlowShard { 500 } else { 0 },
        }
    }

    #[test]
    fn json_spec_round_trips() {
        let plan = FaultPlan {
            seed: Some(42),
            faults: vec![
                fault(3, "Train", FaultKind::StageError, 2),
                fault(5, "Collect", FaultKind::CorruptPayload, u32::MAX),
            ],
        };
        let json = plan.to_json();
        assert_eq!(FaultPlan::from_json(&json).unwrap(), plan);
        assert!(FaultPlan::from_json("{nope").is_err());
        assert!(FaultPlan::from_json(r#"{"faults":[{"iteration":0,"stage":"Plan","shard":0,"kind":"meteor_strike","fires":1,"slow_nanos":0}]}"#).is_err());
    }

    #[test]
    fn seeded_plans_are_reproducible_and_recoverable() {
        let a = FaultPlan::seeded(7, 20, 6);
        let b = FaultPlan::seeded(7, 20, 6);
        assert_eq!(a, b);
        assert_eq!(a.faults.len(), 6);
        assert!(a.faults.iter().all(|f| f.iteration < 20));
        assert!(a.faults.iter().all(|f| f.fires >= 1 && f.fires <= 2));
        let c = FaultPlan::seeded(8, 20, 6);
        assert_ne!(a, c);
        assert!(FaultPlan::seeded(9, 0, 6).is_empty());
    }

    #[test]
    fn attempt_predicate_gates_firing() {
        let inj = FaultInjector::new(FaultPlan::new(vec![fault(
            2,
            "Insert",
            FaultKind::StageError,
            2,
        )]));
        assert!(inj.stage_error(2, "Insert").is_some());
        assert!(inj.stage_error(2, "insert").is_some(), "case-insensitive");
        assert!(inj.stage_error(2, "Train").is_none());
        assert!(inj.stage_error(1, "Insert").is_none());
        inj.begin_attempt(1);
        assert!(inj.stage_error(2, "Insert").is_some());
        inj.begin_attempt(2);
        assert!(inj.stage_error(2, "Insert").is_none(), "fires exhausted");
        let log = inj.drain_log();
        assert_eq!(log.len(), 3);
        assert_eq!(log[0].attempt, 0);
        assert_eq!(log[1].attempt, 0);
        assert_eq!(log[2].attempt, 1);
        assert!(inj.drain_log().is_empty(), "drain clears");
    }

    #[test]
    fn kind_specific_consults() {
        let inj = FaultInjector::new(FaultPlan::new(vec![
            fault(0, "Collect", FaultKind::WorkerPanic, 1),
            fault(0, "Train", FaultKind::SlowShard, 1),
            fault(1, "Collect", FaultKind::CorruptPayload, 1),
        ]));
        assert!(inj.checksums_enabled());
        assert_eq!(inj.worker_panic(0, "Collect"), Some(1));
        assert_eq!(inj.worker_panic(0, "Insert"), None);
        assert_eq!(inj.slowdowns(0, "Train"), vec![(1, 500)]);
        assert!(inj.slowdowns(0, "Collect").is_empty());
        assert!(inj.should_corrupt(1));
        assert!(!inj.should_corrupt(0));
        inj.begin_attempt(1);
        assert!(!inj.should_corrupt(1));

        let no_corruption = FaultInjector::new(FaultPlan::new(vec![fault(
            0,
            "Plan",
            FaultKind::StageError,
            1,
        )]));
        assert!(!no_corruption.checksums_enabled());
    }

    #[test]
    fn faulty_sink_drops_configured_lines_only() {
        let mem = MemorySink::new();
        let mut sink = FaultySink::new(mem.clone(), vec![1, 3]);
        let dropped = sink.dropped_counter();
        for k in 0..5 {
            sink.write_line(&format!("line{k}"));
        }
        assert_eq!(mem.lines(), vec!["line0", "line2", "line4"]);
        assert_eq!(dropped.load(Ordering::Relaxed), 2);
    }
}
