//! Hold masks — the sliding-window hazard-elimination mechanism.
//!
//! Paper §IV-D, Algorithm 1: every scratchpad slot carries a small bitmask.
//! Bit `k`, set when a mini-batch claims the slot at plan-cycle `c`,
//! means *"this slot is referenced by the batch whose \[Plan\] runs `k`
//! cycles from now (relative to claim time)"* and therefore protects the
//! slot from eviction through plan-cycle `c + k`. The \[Plan\] stage may
//! only evict slots whose mask is all-zero.
//!
//! Two implementations are provided:
//!
//! * [`NaiveHoldMask`] — the paper's Algorithm 1 verbatim: every plan cycle
//!   shifts **every** slot's mask right by one (`O(slots)` per cycle).
//! * [`HoldMask`] — an equivalent *stamped* representation: each slot
//!   stores `(mask, stamp)` and the shift happens lazily at query time
//!   (`mask >> (now − stamp)`), making `advance` O(1). A property test
//!   proves both implementations agree on random schedules.

/// The paper's Algorithm-1 bitmask array with an explicit global shift.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NaiveHoldMask {
    masks: Vec<u32>,
    width: u32,
}

impl NaiveHoldMask {
    /// Creates all-clear masks for `slots` slots with `width` window bits.
    ///
    /// # Panics
    ///
    /// Panics if `width` is 0 or exceeds 31.
    pub fn new(slots: usize, width: u32) -> Self {
        assert!(width > 0 && width <= 31, "width must be in 1..=31");
        NaiveHoldMask {
            masks: vec![0; slots],
            width,
        }
    }

    /// Algorithm 1 step B: advance the window by one plan cycle
    /// (`HoldMask[i] >>= 1` for every slot).
    pub fn advance(&mut self) {
        for m in &mut self.masks {
            *m >>= 1;
        }
    }

    /// Sets protection bit `k` on `slot` (protects through the `k`-th
    /// upcoming plan cycle, inclusive).
    ///
    /// # Panics
    ///
    /// Panics if `k >= width`.
    pub fn set_bit(&mut self, slot: u32, k: u32) {
        assert!(
            k < self.width,
            "bit {k} outside window width {}",
            self.width
        );
        self.masks[slot as usize] |= 1 << k;
    }

    /// True if `slot` may be evicted (mask all-zero).
    pub fn is_clear(&self, slot: u32) -> bool {
        self.masks[slot as usize] == 0
    }

    /// Raw mask value (for diagnostics and differential tests).
    pub fn raw(&self, slot: u32) -> u32 {
        self.masks[slot as usize]
    }
}

/// Lazily-shifted Hold mask: O(1) `advance`, same observable behavior as
/// [`NaiveHoldMask`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HoldMask {
    masks: Vec<u32>,
    stamps: Vec<u64>,
    cycle: u64,
    width: u32,
}

impl HoldMask {
    /// Creates all-clear masks for `slots` slots with `width` window bits.
    ///
    /// # Panics
    ///
    /// Panics if `width` is 0 or exceeds 31.
    pub fn new(slots: usize, width: u32) -> Self {
        assert!(width > 0 && width <= 31, "width must be in 1..=31");
        HoldMask {
            masks: vec![0; slots],
            stamps: vec![0; slots],
            cycle: 0,
            width,
        }
    }

    /// Current plan cycle.
    pub fn cycle(&self) -> u64 {
        self.cycle
    }

    /// Advances the window by one plan cycle — O(1).
    pub fn advance(&mut self) {
        self.cycle += 1;
    }

    /// The mask of `slot` as it stands at the current cycle.
    pub fn effective(&self, slot: u32) -> u32 {
        let s = slot as usize;
        let age = self.cycle - self.stamps[s];
        if age >= 32 {
            0
        } else {
            self.masks[s] >> age
        }
    }

    /// Sets protection bit `k` on `slot` at the current cycle.
    ///
    /// # Panics
    ///
    /// Panics if `k >= width`.
    pub fn set_bit(&mut self, slot: u32, k: u32) {
        assert!(
            k < self.width,
            "bit {k} outside window width {}",
            self.width
        );
        let eff = self.effective(slot);
        let s = slot as usize;
        self.masks[s] = eff | (1 << k);
        self.stamps[s] = self.cycle;
    }

    /// True if `slot` may be evicted (effective mask all-zero).
    pub fn is_clear(&self, slot: u32) -> bool {
        self.effective(slot) == 0
    }

    /// The first plan cycle at which `slot` becomes evictable, assuming no
    /// further protection — drives the manager's expiry buckets.
    pub fn first_clear_cycle(&self, slot: u32) -> u64 {
        let eff = self.effective(slot);
        self.cycle + (32 - eff.leading_zeros()) as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bit_k_protects_exactly_k_plus_one_cycles() {
        // Paper: a bit set at cycle c with offset k holds the slot through
        // plan cycle c + k and frees it at c + k + 1.
        for k in 0..6u32 {
            let mut m = HoldMask::new(1, 6);
            m.set_bit(0, k);
            for step in 0..=k {
                assert!(!m.is_clear(0), "k={k}: held at +{step}");
                m.advance();
            }
            assert!(m.is_clear(0), "k={k}: clear at +{}", k + 1);
        }
    }

    #[test]
    fn naive_matches_paper_figure11_decay() {
        let mut m = NaiveHoldMask::new(3, 3);
        // Figure 11(b): after batch 1 plans {slot 2, slot 3} the masks read
        // "10" (past view). Model: set current bit (bit 2 of width 3).
        m.set_bit(2, 2);
        m.advance();
        assert_eq!(m.raw(2), 0b10);
        m.advance();
        assert_eq!(m.raw(2), 0b01);
        m.advance();
        assert!(m.is_clear(2));
    }

    #[test]
    fn first_clear_cycle_predicts_expiry() {
        let mut m = HoldMask::new(2, 6);
        m.set_bit(0, 3);
        assert_eq!(m.first_clear_cycle(0), 4);
        m.advance();
        assert_eq!(m.first_clear_cycle(0), 4);
        // Re-protection extends expiry.
        m.set_bit(0, 5);
        assert_eq!(m.first_clear_cycle(0), 1 + 6);
        // Untouched slot is clear now.
        assert_eq!(m.first_clear_cycle(1), m.cycle());
    }

    #[test]
    fn overlapping_protections_take_the_max() {
        let mut m = HoldMask::new(1, 6);
        m.set_bit(0, 5); // future registration
        m.advance();
        m.set_bit(0, 3); // becomes current batch
                         // Held through max(0+5, 1+3) = cycle 5; clear at 6.
        for _ in 1..=4 {
            m.advance();
            assert!(!m.is_clear(0), "cycle {}", m.cycle());
        }
        m.advance();
        assert!(m.is_clear(0));
    }

    #[test]
    fn lazy_shift_survives_long_idle_gaps() {
        let mut m = HoldMask::new(1, 6);
        m.set_bit(0, 5);
        for _ in 0..100 {
            m.advance();
        }
        assert!(m.is_clear(0));
        assert_eq!(m.effective(0), 0);
        // Re-protect after the gap.
        m.set_bit(0, 2);
        assert!(!m.is_clear(0));
    }

    #[test]
    #[should_panic(expected = "outside window width")]
    fn bit_beyond_width_rejected() {
        let mut m = HoldMask::new(1, 3);
        m.set_bit(0, 3);
    }

    #[test]
    #[should_panic(expected = "width must be in 1..=31")]
    fn oversized_width_rejected() {
        let _ = NaiveHoldMask::new(1, 32);
    }

    proptest::proptest! {
        /// Differential test: the stamped implementation is observationally
        /// equivalent to the paper's Algorithm-1 global-shift masks under
        /// arbitrary interleavings of advances and bit-sets.
        #[test]
        fn stamped_equals_naive(ops in proptest::collection::vec(
            (0u32..8, 0u32..6, proptest::bool::ANY), 1..200)
        ) {
            let mut naive = NaiveHoldMask::new(8, 6);
            let mut fast = HoldMask::new(8, 6);
            for (slot, bit, advance) in ops {
                if advance {
                    naive.advance();
                    fast.advance();
                } else {
                    naive.set_bit(slot, bit);
                    fast.set_bit(slot, bit);
                }
                for s in 0..8u32 {
                    proptest::prop_assert_eq!(
                        naive.is_clear(s), fast.is_clear(s),
                        "slot {} diverged (naive raw {:b}, fast eff {:b})",
                        s, naive.raw(s), fast.effective(s)
                    );
                    proptest::prop_assert_eq!(naive.raw(s), fast.effective(s));
                }
            }
        }
    }
}
