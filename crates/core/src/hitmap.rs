//! The Hit-Map: the scratchpad's (key, value) index.
//!
//! Paper §IV-D: the GPU scratchpad is addressed through a key-value store
//! mapping a row's sparse feature ID to the scratchpad slot caching it.
//! Crucially, the Hit-Map is updated **at \[Plan\] time**, four pipeline
//! cycles before the Storage array actually holds the data — it always
//! reflects the *future* caching status, so that each mini-batch's plan
//! sees the state the scratchpad will have by the time that batch trains.
//!
//! Internally the map is a [`SlotIndex`] — the purpose-built
//! open-addressing index of [`crate::index`] — rather than a std
//! `HashMap`: the Plan stage probes this structure once per unique ID
//! per mini-batch, and on a single-core host those probes dominate the
//! Plan critical path.

use crate::index::SlotIndex;

/// Maps sparse feature IDs to scratchpad slot indices for one table.
#[derive(Debug, Clone, Default)]
pub struct HitMap {
    map: SlotIndex,
    lifetime_hits: u64,
    lifetime_misses: u64,
}

impl HitMap {
    /// Creates an empty Hit-Map.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates an empty Hit-Map with reserved capacity.
    pub fn with_capacity(cap: usize) -> Self {
        HitMap {
            map: SlotIndex::with_capacity(cap),
            lifetime_hits: 0,
            lifetime_misses: 0,
        }
    }

    /// Queries without recording statistics (used for future-window
    /// registration, which the paper does not count as a cache access).
    pub fn peek(&self, id: u64) -> Option<u32> {
        self.map.get(id)
    }

    /// Queries and records a hit or miss.
    pub fn query(&mut self, id: u64) -> Option<u32> {
        match self.map.get(id) {
            Some(slot) => {
                self.lifetime_hits += 1;
                Some(slot)
            }
            None => {
                self.lifetime_misses += 1;
                None
            }
        }
    }

    /// Records a hit or miss for an ID the caller already resolved via
    /// [`HitMap::peek`] — lets Plan probe each current ID once instead of
    /// twice (peek for protection, query for planning).
    pub(crate) fn record(&mut self, hit: bool) {
        if hit {
            self.lifetime_hits += 1;
        } else {
            self.lifetime_misses += 1;
        }
    }

    /// Inserts a mapping (the new occupant of `slot`).
    ///
    /// # Panics
    ///
    /// Panics if `id` is already mapped — the Plan stage must never map an
    /// ID twice.
    pub fn insert(&mut self, id: u64, slot: u32) {
        let prev = self.map.insert(id, slot);
        assert!(prev.is_none(), "id {id} already cached in slot {prev:?}");
    }

    /// Removes the mapping for `id`, returning its slot.
    pub fn remove(&mut self, id: u64) -> Option<u32> {
        self.map.remove(id)
    }

    /// Number of cached rows.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// True if nothing is cached.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Lifetime `(hits, misses)` counted by [`HitMap::query`].
    pub fn stats(&self) -> (u64, u64) {
        (self.lifetime_hits, self.lifetime_misses)
    }

    /// Lifetime hit rate in `[0, 1]` (0 if never queried).
    pub fn hit_rate(&self) -> f64 {
        let total = self.lifetime_hits + self.lifetime_misses;
        if total == 0 {
            0.0
        } else {
            self.lifetime_hits as f64 / total as f64
        }
    }

    /// Iterates over `(id, slot)` pairs in unspecified order.
    pub fn iter(&self) -> impl Iterator<Item = (u64, u32)> + '_ {
        self.map.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn query_tracks_hits_and_misses() {
        let mut m = HitMap::new();
        m.insert(7089, 2);
        m.insert(2021, 3);
        assert_eq!(m.query(7089), Some(2));
        assert_eq!(m.query(3010), None);
        assert_eq!(m.stats(), (1, 1));
        assert!((m.hit_rate() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn peek_does_not_count() {
        let mut m = HitMap::new();
        m.insert(1, 0);
        assert_eq!(m.peek(1), Some(0));
        assert_eq!(m.peek(2), None);
        assert_eq!(m.stats(), (0, 0));
        assert_eq!(m.hit_rate(), 0.0);
    }

    #[test]
    fn remove_returns_slot() {
        let mut m = HitMap::new();
        m.insert(5, 9);
        assert_eq!(m.remove(5), Some(9));
        assert_eq!(m.remove(5), None);
        assert!(m.is_empty());
    }

    #[test]
    fn figure11_second_cycle_scenario() {
        // Paper Figure 11(b): after batch 1 planned {7089→2, 2021→3}, the
        // second batch of IDs 3010/7089 must see miss/hit even though the
        // Storage array is still empty — the Hit-Map is deliberately ahead
        // of Storage by the pipeline depth.
        let mut m = HitMap::new();
        m.insert(7089, 2);
        m.insert(2021, 3);
        assert_eq!(m.query(3010), None, "miss for 3010");
        assert_eq!(m.query(7089), Some(2), "hit for 7089");
    }

    #[test]
    #[should_panic(expected = "already cached")]
    fn double_insert_rejected() {
        let mut m = HitMap::new();
        m.insert(1, 0);
        m.insert(1, 1);
    }

    #[test]
    fn iteration_covers_all_entries() {
        let mut m = HitMap::with_capacity(4);
        m.insert(10, 0);
        m.insert(20, 1);
        let mut pairs: Vec<_> = m.iter().collect();
        pairs.sort_unstable();
        assert_eq!(pairs, vec![(10, 0), (20, 1)]);
        assert_eq!(m.len(), 2);
    }
}
