//! Error types of the ScratchPipe runtime.

use std::fmt;

/// Errors produced by scratchpad management and the pipeline runtime.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ScratchError {
    /// The Plan stage needed a victim but every slot is held by the
    /// sliding window. Per paper §VI-D the scratchpad must be provisioned
    /// for the worst-case working set of the concurrent mini-batches; this
    /// error reports a violation of that provisioning rule.
    CapacityExhausted {
        /// Table whose scratchpad ran out of evictable slots.
        table: usize,
        /// Plan cycle at which the exhaustion occurred.
        cycle: u64,
        /// Configured slot count of the table's scratchpad.
        slots: usize,
    },
    /// A hazard check failed — the pipeline was about to perform an access
    /// ordering that would corrupt training (only reachable when the
    /// sliding window is mis-configured, e.g. in the negative tests).
    HazardViolation {
        /// Human-readable description of the violated invariant.
        detail: String,
    },
    /// Configuration rejected at construction.
    InvalidConfig {
        /// What was wrong.
        detail: String,
    },
    /// A fault deliberately injected by an active
    /// [`FaultPlan`](crate::faults::FaultPlan) — never produced by real
    /// pipeline logic.
    Injected {
        /// Iteration the fault fired at.
        iteration: usize,
        /// Stage the fault fired in.
        stage: String,
    },
    /// A worker task panicked inside [`WorkerPool::run_tasks`]
    /// (caught via `catch_unwind` and converted, so one bad shard cannot
    /// poison the whole scope).
    ///
    /// [`WorkerPool::run_tasks`]: crate::workers::WorkerPool::run_tasks
    WorkerPanic {
        /// Submission-order index of the panicking task.
        task: usize,
        /// The panic payload, when it was a string.
        detail: String,
    },
    /// A staged payload failed its checksum between \[Collect\] and
    /// \[Insert\] — the rows in flight were corrupted.
    PayloadCorrupted {
        /// Iteration whose payload failed verification.
        iteration: usize,
        /// Checksum recorded when the rows were staged.
        expected: u64,
        /// Checksum recomputed at \[Insert\].
        actual: u64,
    },
    /// An inter-stage channel of the threaded schedule disconnected
    /// unexpectedly — a peer stage died without recording an error first.
    ChannelDisconnected {
        /// Stage that observed the disconnect.
        stage: String,
    },
    /// A supervised run exhausted its retry budget on every rung of the
    /// degradation ladder. Carries the full fault provenance; the tables
    /// are left at the last committed iteration.
    Aborted {
        /// First iteration that could not be committed.
        iteration: usize,
        /// Total attempts spent on that iteration across all rungs.
        attempts: u32,
        /// Name of the schedule rung of the final attempt.
        schedule: String,
        /// The error of the final failed attempt.
        cause: Box<ScratchError>,
    },
}

impl fmt::Display for ScratchError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ScratchError::CapacityExhausted { table, cycle, slots } => write!(
                f,
                "scratchpad of table {table} exhausted at plan cycle {cycle}: all {slots} slots held by the sliding window"
            ),
            ScratchError::HazardViolation { detail } => {
                write!(f, "pipeline hazard violation: {detail}")
            }
            ScratchError::InvalidConfig { detail } => {
                write!(f, "invalid configuration: {detail}")
            }
            ScratchError::Injected { iteration, stage } => {
                write!(f, "injected fault at iteration {iteration}, stage {stage}")
            }
            ScratchError::WorkerPanic { task, detail } => {
                write!(f, "worker task {task} panicked: {detail}")
            }
            ScratchError::PayloadCorrupted {
                iteration,
                expected,
                actual,
            } => write!(
                f,
                "payload of iteration {iteration} corrupted in flight: \
                 staged checksum {expected:#018x}, insert-time checksum {actual:#018x}"
            ),
            ScratchError::ChannelDisconnected { stage } => write!(
                f,
                "stage {stage}: inter-stage channel disconnected without a recorded error"
            ),
            ScratchError::Aborted {
                iteration,
                attempts,
                schedule,
                cause,
            } => write!(
                f,
                "supervised run aborted at iteration {iteration} after {attempts} attempts \
                 (final schedule {schedule}): {cause}"
            ),
        }
    }
}

impl std::error::Error for ScratchError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_informative() {
        let e = ScratchError::CapacityExhausted {
            table: 3,
            cycle: 17,
            slots: 128,
        };
        let s = e.to_string();
        assert!(s.contains("table 3") && s.contains("cycle 17") && s.contains("128"));

        let e = ScratchError::HazardViolation {
            detail: "stale read".to_owned(),
        };
        assert!(e.to_string().contains("stale read"));

        let e = ScratchError::InvalidConfig {
            detail: "zero slots".to_owned(),
        };
        assert!(e.to_string().contains("zero slots"));
    }

    #[test]
    fn error_trait_is_implemented() {
        fn takes_error<E: std::error::Error>(_: E) {}
        takes_error(ScratchError::InvalidConfig {
            detail: String::new(),
        });
    }
}
