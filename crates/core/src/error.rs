//! Error types of the ScratchPipe runtime.

use std::fmt;

/// Errors produced by scratchpad management and the pipeline runtime.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ScratchError {
    /// The Plan stage needed a victim but every slot is held by the
    /// sliding window. Per paper §VI-D the scratchpad must be provisioned
    /// for the worst-case working set of the concurrent mini-batches; this
    /// error reports a violation of that provisioning rule.
    CapacityExhausted {
        /// Table whose scratchpad ran out of evictable slots.
        table: usize,
        /// Plan cycle at which the exhaustion occurred.
        cycle: u64,
        /// Configured slot count of the table's scratchpad.
        slots: usize,
    },
    /// A hazard check failed — the pipeline was about to perform an access
    /// ordering that would corrupt training (only reachable when the
    /// sliding window is mis-configured, e.g. in the negative tests).
    HazardViolation {
        /// Human-readable description of the violated invariant.
        detail: String,
    },
    /// Configuration rejected at construction.
    InvalidConfig {
        /// What was wrong.
        detail: String,
    },
}

impl fmt::Display for ScratchError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ScratchError::CapacityExhausted { table, cycle, slots } => write!(
                f,
                "scratchpad of table {table} exhausted at plan cycle {cycle}: all {slots} slots held by the sliding window"
            ),
            ScratchError::HazardViolation { detail } => {
                write!(f, "pipeline hazard violation: {detail}")
            }
            ScratchError::InvalidConfig { detail } => {
                write!(f, "invalid configuration: {detail}")
            }
        }
    }
}

impl std::error::Error for ScratchError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_informative() {
        let e = ScratchError::CapacityExhausted {
            table: 3,
            cycle: 17,
            slots: 128,
        };
        let s = e.to_string();
        assert!(s.contains("table 3") && s.contains("cycle 17") && s.contains("128"));

        let e = ScratchError::HazardViolation {
            detail: "stale read".to_owned(),
        };
        assert!(e.to_string().contains("stale read"));

        let e = ScratchError::InvalidConfig {
            detail: "zero slots".to_owned(),
        };
        assert!(e.to_string().contains("zero slots"));
    }

    #[test]
    fn error_trait_is_implemented() {
        fn takes_error<E: std::error::Error>(_: E) {}
        takes_error(ScratchError::InvalidConfig {
            detail: String::new(),
        });
    }
}
