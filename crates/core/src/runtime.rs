//! The pipelined ScratchPipe runtime (paper Figure 10).
//!
//! [`PipelineRuntime::run`] executes a trace of mini-batches through the
//! stage registers
//!
//! ```text
//! cycle c:  Train(c-4)  Insert(c-3)  Exchange(c-2)  Collect(c-1)  Plan(c)
//! ```
//!
//! (stages executed in reverse order within a cycle, like a synchronous
//! pipeline's registers). The \[Load\] stage of the paper is realized by
//! the \[Plan\] stage's *look-ahead* into the trace — which is the whole
//! point of the paper: the training dataset already contains every future
//! sparse ID.
//!
//! The runtime is **functional**: real embedding rows move between the CPU
//! tables, the staging buffers and the GPU scratchpad, and the \[Train\]
//! stage performs real SGD. After [`PipelineRuntime::run`] the CPU tables
//! (with the scratchpad flushed back) are bit-identical to sequential
//! training — see [`train_direct`] for the reference implementation the
//! tests compare against.
//!
//! In *analytic* mode (`functional = false`) the same cache decisions are
//! made on metadata only, and the runtime produces just the per-stage
//! [`Traffic`] vectors — this is how the paper-scale (40 GB-model)
//! experiments run without allocating 40 GB.

use embeddings::store::DenseStore;
use embeddings::{ops, EmbeddingTable, SparseBatch, VectorStore};
use memsim::Traffic;
use serde::{Deserialize, Serialize};

use crate::backend::DenseBackend;
use crate::config::PipelineConfig;
use crate::error::ScratchError;
use crate::scratchpad::{ScratchpadManager, TablePlan};
use crate::stages::{self, PayloadPool, StagePayload, TrainArena};

/// Per-stage traffic of one iteration (or the sum over a run).
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct StageTraffic {
    /// \[Plan\]: sparse-ID upload + Hit-Map probing.
    pub plan: Traffic,
    /// \[Collect\]: CPU-table gathers of missed rows, scratchpad gathers of
    /// victim rows.
    pub collect: Traffic,
    /// \[Exchange\]: duplex PCIe transfers.
    pub exchange: Traffic,
    /// \[Insert\]: CPU-table write-backs, scratchpad fills.
    pub insert: Traffic,
    /// \[Train\]: embedding gathers/reduce/coalesce/scatter + dense model.
    pub train: Traffic,
}

impl StageTraffic {
    /// Stage names in pipeline order (matching the struct fields).
    pub const STAGE_NAMES: [&'static str; 5] = ["Plan", "Collect", "Exchange", "Insert", "Train"];

    /// Per-stage traffic in pipeline order.
    pub fn stages(&self) -> [Traffic; 5] {
        [
            self.plan,
            self.collect,
            self.exchange,
            self.insert,
            self.train,
        ]
    }

    /// Sum of all stages.
    pub fn total(&self) -> Traffic {
        self.plan + self.collect + self.exchange + self.insert + self.train
    }
}

impl std::ops::Add for StageTraffic {
    type Output = StageTraffic;
    fn add(self, rhs: StageTraffic) -> StageTraffic {
        StageTraffic {
            plan: self.plan + rhs.plan,
            collect: self.collect + rhs.collect,
            exchange: self.exchange + rhs.exchange,
            insert: self.insert + rhs.insert,
            train: self.train + rhs.train,
        }
    }
}

impl std::ops::AddAssign for StageTraffic {
    fn add_assign(&mut self, rhs: StageTraffic) {
        *self = *self + rhs;
    }
}

/// Statistics of one pipeline iteration.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct IterationRecord {
    /// Mini-batch index.
    pub index: usize,
    /// Unique-ID hits across tables at \[Plan\].
    pub hits: u64,
    /// Unique-ID misses (fills) across tables.
    pub misses: u64,
    /// Evictions (write-backs) across tables.
    pub evictions: u64,
    /// Total sparse lookups of the batch.
    pub total_lookups: u64,
    /// Unique rows touched by the batch.
    pub unique_rows: u64,
    /// Dense-model loss reported by the backend.
    pub loss: f32,
    /// Per-stage traffic of this iteration.
    pub traffic: StageTraffic,
}

impl IterationRecord {
    /// Lookup duplication factor (`total_lookups / unique_rows`), the
    /// quantity that drives gradient-coalescing volume.
    pub fn dup_ratio(&self) -> f64 {
        if self.unique_rows == 0 {
            1.0
        } else {
            self.total_lookups as f64 / self.unique_rows as f64
        }
    }
}

/// Result of a pipelined run.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct PipelineReport {
    /// Number of mini-batches trained.
    pub iterations: usize,
    /// Per-iteration statistics.
    pub records: Vec<IterationRecord>,
    /// Traffic of the final scratchpad flush back to CPU tables.
    pub flush_traffic: Traffic,
    /// Peak held (non-evictable) slots per table — the §VI-D working-set
    /// measurement.
    pub peak_held_slots: Vec<usize>,
}

impl PipelineReport {
    /// Sum of all iterations' stage traffic.
    pub fn total_traffic(&self) -> StageTraffic {
        self.records
            .iter()
            .fold(StageTraffic::default(), |acc, r| acc + r.traffic)
    }

    /// Mean per-iteration stage traffic over the steady-state portion
    /// (skipping the first `skip` cold-cache iterations).
    pub fn steady_traffic(&self, skip: usize) -> StageTraffic {
        let tail: Vec<_> = self.records.iter().skip(skip).collect();
        if tail.is_empty() {
            return StageTraffic::default();
        }
        let sum = tail
            .iter()
            .fold(StageTraffic::default(), |acc, r| acc + r.traffic);
        // Scale down via integer division on bytes: implemented by scaling
        // each Traffic through f64 would lose exactness; instead divide the
        // u64 fields.
        let n = tail.len() as u64;
        let div = |t: Traffic| Traffic {
            cpu_random_read_bytes: t.cpu_random_read_bytes / n,
            cpu_random_write_bytes: t.cpu_random_write_bytes / n,
            cpu_stream_read_bytes: t.cpu_stream_read_bytes / n,
            cpu_stream_write_bytes: t.cpu_stream_write_bytes / n,
            gpu_random_read_bytes: t.gpu_random_read_bytes / n,
            gpu_random_write_bytes: t.gpu_random_write_bytes / n,
            gpu_stream_read_bytes: t.gpu_stream_read_bytes / n,
            gpu_stream_write_bytes: t.gpu_stream_write_bytes / n,
            pcie_h2d_bytes: t.pcie_h2d_bytes / n,
            pcie_d2h_bytes: t.pcie_d2h_bytes / n,
            nvlink_bytes: t.nvlink_bytes / n,
            gpu_flops: t.gpu_flops / n,
            cpu_flops: t.cpu_flops / n,
            gpu_ops: (t.gpu_ops as u64 / n) as u32,
            cpu_ops: (t.cpu_ops as u64 / n) as u32,
            pcie_ops: (t.pcie_ops as u64 / n) as u32,
        };
        StageTraffic {
            plan: div(sum.plan),
            collect: div(sum.collect),
            exchange: div(sum.exchange),
            insert: div(sum.insert),
            train: div(sum.train),
        }
    }

    /// Aggregate unique-ID hit rate across the run.
    pub fn hit_rate(&self) -> f64 {
        let hits: u64 = self.records.iter().map(|r| r.hits).sum();
        let misses: u64 = self.records.iter().map(|r| r.misses).sum();
        if hits + misses == 0 {
            0.0
        } else {
            hits as f64 / (hits + misses) as f64
        }
    }

    /// Mean loss over all iterations.
    pub fn mean_loss(&self) -> f32 {
        if self.records.is_empty() {
            return 0.0;
        }
        self.records.iter().map(|r| r.loss).sum::<f32>() / self.records.len() as f32
    }
}

/// The functional, single-node ScratchPipe runtime.
///
/// The five stage bodies live in [`crate::stages`]; this type is the
/// *synchronous driver*: it iterates the shared kernels in reverse
/// register order, holding the staging arenas in a recycled
/// [`StagePayload`] per in-flight mini-batch and the \[Train\] buffers in
/// one [`TrainArena`] for the whole run.
///
/// See the [crate-level documentation](crate) for an end-to-end example.
#[derive(Debug)]
pub struct PipelineRuntime<B> {
    config: PipelineConfig,
    managers: Vec<ScratchpadManager>,
    storages: Vec<DenseStore>,
    cpu_tables: Vec<EmbeddingTable>,
    table_rows: u64,
    backend: B,
    /// Which row's *data* each slot actually holds right now (updated at
    /// \[Insert\] time, unlike the Hit-Map which runs ahead). Drives the
    /// always-hit hazard assertion.
    data_resident: Vec<Vec<Option<u64>>>,
    /// Recycled in-flight payloads (staging arenas).
    pool: PayloadPool,
    /// The \[Train\] stage's flat pooled/gradient arenas.
    arena: TrainArena,
}

impl<B: DenseBackend> PipelineRuntime<B> {
    /// Creates a functional runtime that trains `tables` in place.
    ///
    /// # Errors
    ///
    /// Returns [`ScratchError::InvalidConfig`] if the configuration is
    /// inconsistent with the tables.
    pub fn new(
        config: PipelineConfig,
        tables: Vec<EmbeddingTable>,
        backend: B,
    ) -> Result<Self, ScratchError> {
        config.validate()?;
        if tables.is_empty() {
            return Err(ScratchError::InvalidConfig {
                detail: "need at least one embedding table".to_owned(),
            });
        }
        if tables.iter().any(|t| t.dim() != config.dim) {
            return Err(ScratchError::InvalidConfig {
                detail: "table dim mismatch with config".to_owned(),
            });
        }
        let rows = tables[0].rows() as u64;
        let num_tables = tables.len();
        Ok(PipelineRuntime {
            managers: Self::make_managers(&config, num_tables)?,
            storages: if config.functional {
                (0..num_tables)
                    .map(|_| DenseStore::zeros(config.slots_per_table, config.dim))
                    .collect()
            } else {
                Vec::new()
            },
            data_resident: vec![vec![None; config.slots_per_table]; num_tables],
            cpu_tables: tables,
            table_rows: rows,
            backend,
            config,
            pool: PayloadPool::new(),
            arena: TrainArena::new(),
        })
    }

    /// Creates an analytic (metadata + traffic only) runtime over virtual
    /// tables of `rows_per_table` rows.
    ///
    /// # Errors
    ///
    /// Returns [`ScratchError::InvalidConfig`] on inconsistent parameters.
    pub fn new_analytic(
        mut config: PipelineConfig,
        num_tables: usize,
        rows_per_table: u64,
        backend: B,
    ) -> Result<Self, ScratchError> {
        config.functional = false;
        config.check_hazards = false;
        config.validate()?;
        if num_tables == 0 {
            return Err(ScratchError::InvalidConfig {
                detail: "need at least one embedding table".to_owned(),
            });
        }
        Ok(PipelineRuntime {
            managers: Self::make_managers(&config, num_tables)?,
            storages: Vec::new(),
            data_resident: vec![Vec::new(); num_tables],
            cpu_tables: Vec::new(),
            table_rows: rows_per_table,
            backend,
            config,
            pool: PayloadPool::new(),
            arena: TrainArena::new(),
        })
    }

    fn make_managers(
        config: &PipelineConfig,
        num_tables: usize,
    ) -> Result<Vec<ScratchpadManager>, ScratchError> {
        (0..num_tables)
            .map(|_| ScratchpadManager::new(config.slots_per_table, config.window, config.policy))
            .collect()
    }

    /// The runtime configuration.
    pub fn config(&self) -> &PipelineConfig {
        &self.config
    }

    /// The (possibly mid-training) CPU tables. Note that resident
    /// scratchpad rows are only reflected here after a flush.
    pub fn tables(&self) -> &[EmbeddingTable] {
        &self.cpu_tables
    }

    /// The per-table scratchpad managers (for cache statistics).
    pub fn managers(&self) -> &[ScratchpadManager] {
        &self.managers
    }

    /// The dense backend.
    pub fn backend(&self) -> &B {
        &self.backend
    }

    /// Consumes the runtime and returns the trained CPU tables
    /// (call after [`PipelineRuntime::run`], which flushes).
    pub fn into_tables(self) -> Vec<EmbeddingTable> {
        self.cpu_tables
    }

    /// Pre-fills every table's scratchpad with the given rows (hottest
    /// first, truncated to the slot count), reproducing the steady-state
    /// cache content a long warm-up would converge to. In functional mode
    /// the row data is copied from the CPU tables, so training remains
    /// exactly equivalent to sequential execution.
    ///
    /// # Errors
    ///
    /// Returns [`ScratchError::InvalidConfig`] if the table count differs
    /// or a row is out of range.
    ///
    /// # Panics
    ///
    /// Panics if called after training has started.
    pub fn prewarm(&mut self, hot_rows: &[Vec<u64>]) -> Result<(), ScratchError> {
        if hot_rows.len() != self.managers.len() {
            return Err(ScratchError::InvalidConfig {
                detail: format!(
                    "prewarm covers {} tables, runtime has {}",
                    hot_rows.len(),
                    self.managers.len()
                ),
            });
        }
        for rows in hot_rows {
            if rows.iter().any(|&r| r >= self.table_rows) {
                return Err(ScratchError::InvalidConfig {
                    detail: "prewarm row out of range".to_owned(),
                });
            }
        }
        for (t, rows) in hot_rows.iter().enumerate() {
            let take = rows.len().min(self.config.slots_per_table);
            self.managers[t].prewarm(&rows[..take]);
            if self.config.functional {
                for &row in &rows[..take] {
                    let slot = self.managers[t].lookup(row).expect("just prewarmed");
                    self.storages[t].copy_row_from(
                        slot as usize,
                        &self.cpu_tables[t],
                        row as usize,
                    );
                    self.data_resident[t][slot as usize] = Some(row);
                }
            }
        }
        Ok(())
    }

    /// Runs the straw-man execution of §IV-B: every mini-batch passes
    /// through all five stages **before** the next one is admitted. No
    /// stages overlap, so the [`WindowConfig::SEQUENTIAL`] window suffices
    /// and no pipeline hazards can arise — this is the paper's
    /// "dynamic cache without pipelining" baseline.
    ///
    /// # Errors
    ///
    /// Same as [`PipelineRuntime::run`], except hazards are impossible.
    ///
    /// [`WindowConfig::SEQUENTIAL`]: crate::config::WindowConfig::SEQUENTIAL
    pub fn run_sequential(
        &mut self,
        batches: &[SparseBatch],
    ) -> Result<PipelineReport, ScratchError> {
        self.validate_batches(batches)?;
        let uniq: Vec<Vec<Vec<u64>>> = batches
            .iter()
            .map(|b| b.bags().map(|(_, bag)| bag.unique_ids()).collect())
            .collect();
        let mut records = Vec::with_capacity(batches.len());
        for i in 0..batches.len() {
            let (mut p, plan_traffic) = self.do_plan(i, batches, &uniq, false)?;
            let mut rec = IterationRecord {
                index: i,
                total_lookups: batches[i].total_lookups() as u64,
                unique_rows: uniq[i].iter().map(|u| u.len() as u64).sum(),
                hits: p.plans.iter().map(|t| t.hits).sum(),
                misses: p.plans.iter().map(|t| t.misses).sum(),
                evictions: p.plans.iter().map(|t| t.evictions.len() as u64).sum(),
                ..IterationRecord::default()
            };
            rec.traffic.plan = plan_traffic;
            rec.traffic.collect = self.do_collect(&mut p)?;
            rec.traffic.exchange = self.do_exchange(&p);
            rec.traffic.insert = self.do_insert(&p);
            let (train_traffic, loss) = self.do_train(&p, batches)?;
            rec.traffic.train = train_traffic;
            rec.loss = loss;
            records.push(rec);
            self.pool.release(p);
        }
        let flush_traffic = self.flush();
        Ok(PipelineReport {
            iterations: batches.len(),
            records,
            flush_traffic,
            peak_held_slots: self.managers.iter().map(|m| m.stats().peak_held).collect(),
        })
    }

    /// Runs the pipelined training over `batches`, then flushes the
    /// scratchpad back to the CPU tables.
    ///
    /// # Errors
    ///
    /// * [`ScratchError::CapacityExhausted`] if the scratchpad is too small
    ///   for the sliding window's working set (§VI-D provisioning rule).
    /// * [`ScratchError::HazardViolation`] if hazard checking is enabled
    ///   and the window configuration admits a RAW hazard.
    /// * [`ScratchError::InvalidConfig`] if a batch disagrees with the
    ///   runtime shape.
    pub fn run(&mut self, batches: &[SparseBatch]) -> Result<PipelineReport, ScratchError> {
        self.validate_batches(batches)?;
        let n = batches.len();
        // Pre-compute sorted unique IDs per (batch, table): used by Plan,
        // future registration and the hazard checker.
        let uniq: Vec<Vec<Vec<u64>>> = batches
            .iter()
            .map(|b| b.bags().map(|(_, bag)| bag.unique_ids()).collect())
            .collect();

        let mut records: Vec<IterationRecord> = (0..n)
            .map(|i| IterationRecord {
                index: i,
                total_lookups: batches[i].total_lookups() as u64,
                unique_rows: uniq[i].iter().map(|u| u.len() as u64).sum(),
                ..IterationRecord::default()
            })
            .collect();

        let mut plan_out: Option<StagePayload> = None;
        let mut collect_out: Option<StagePayload> = None;
        let mut exchange_out: Option<StagePayload> = None;
        let mut insert_out: Option<StagePayload> = None;
        let mut next = 0usize;

        loop {
            // Reverse pipeline order: consume registers before refilling.
            if let Some(p) = insert_out.take() {
                let (traffic, loss) = self.do_train(&p, batches)?;
                records[p.index].traffic.train = traffic;
                records[p.index].loss = loss;
                self.pool.release(p);
            }
            if let Some(p) = exchange_out.take() {
                records[p.index].traffic.insert = self.do_insert(&p);
                insert_out = Some(p);
            }
            if let Some(p) = collect_out.take() {
                records[p.index].traffic.exchange = self.do_exchange(&p);
                exchange_out = Some(p);
            }
            if let Some(mut p) = plan_out.take() {
                records[p.index].traffic.collect = self.do_collect(&mut p)?;
                collect_out = Some(p);
            }
            if next < n {
                let (payload, traffic) = self.do_plan(next, batches, &uniq, true)?;
                let rec = &mut records[next];
                rec.traffic.plan = traffic;
                rec.hits = payload.plans.iter().map(|p| p.hits).sum();
                rec.misses = payload.plans.iter().map(|p| p.misses).sum();
                rec.evictions = payload.plans.iter().map(|p| p.evictions.len() as u64).sum();
                plan_out = Some(payload);
                next += 1;
            } else if plan_out.is_none()
                && collect_out.is_none()
                && exchange_out.is_none()
                && insert_out.is_none()
            {
                break;
            }
        }

        let flush_traffic = self.flush();
        Ok(PipelineReport {
            iterations: n,
            records,
            flush_traffic,
            peak_held_slots: self.managers.iter().map(|m| m.stats().peak_held).collect(),
        })
    }

    fn validate_batches(&self, batches: &[SparseBatch]) -> Result<(), ScratchError> {
        for b in batches {
            if b.num_tables() != self.managers.len() {
                return Err(ScratchError::InvalidConfig {
                    detail: format!(
                        "batch covers {} tables, runtime has {}",
                        b.num_tables(),
                        self.managers.len()
                    ),
                });
            }
            for (t, bag) in b.bags() {
                if let Some(max) = bag.max_id() {
                    if max >= self.table_rows {
                        return Err(ScratchError::InvalidConfig {
                            detail: format!("table {t}: id {max} exceeds {} rows", self.table_rows),
                        });
                    }
                }
            }
        }
        Ok(())
    }

    fn row_bytes(&self) -> u64 {
        self.config.dim as u64 * 4
    }

    fn do_plan(
        &mut self,
        i: usize,
        batches: &[SparseBatch],
        uniq: &[Vec<Vec<u64>>],
        pipelined: bool,
    ) -> Result<(StagePayload, Traffic), ScratchError> {
        let future_depth = self.config.window.future as usize;
        let (plans, traffic) =
            stages::plan(&mut self.managers, &batches[i], uniq, i, future_depth)?;

        // Victim-safety distances only exist when stages of different
        // batches overlap; sequential execution cannot race.
        if self.config.check_hazards && pipelined {
            self.check_victim_safety(i, &plans, uniq)?;
        }

        Ok((self.pool.acquire(self.config.dim, i, plans), traffic))
    }

    /// Asserts the paper's sliding-window guarantee: an evicted row must
    /// not be referenced by any batch in the hazard window
    /// `[i-past, i-1] ∪ [i+1, i+future]` — otherwise a RAW-②/③ (pending
    /// scratchpad write) or RAW-④ (pending CPU write-back racing a
    /// re-fetch) would occur in the pipeline.
    fn check_victim_safety(
        &self,
        i: usize,
        plans: &[TablePlan],
        uniq: &[Vec<Vec<u64>>],
    ) -> Result<(), ScratchError> {
        let past = 3usize; // stage distance Train←Collect in this pipeline
        let future = 2usize; // stage distance Insert→Collect
        for (t, plan) in plans.iter().enumerate() {
            for ev in &plan.evictions {
                let lo = i.saturating_sub(past);
                for (j, u) in uniq.iter().enumerate().skip(lo).take(i - lo) {
                    if u[t].binary_search(&ev.row).is_ok() {
                        return Err(ScratchError::HazardViolation {
                            detail: format!(
                                "plan {i} evicts row {} of table {t}, still referenced by \
                                 in-flight batch {j} (RAW-2/3)",
                                ev.row
                            ),
                        });
                    }
                }
                let hi = (i + future).min(uniq.len() - 1);
                for (j, u) in uniq.iter().enumerate().skip(i + 1).take(hi - i) {
                    if u[t].binary_search(&ev.row).is_ok() {
                        return Err(ScratchError::HazardViolation {
                            detail: format!(
                                "plan {i} evicts row {} of table {t}, needed by upcoming \
                                 batch {j} (RAW-4)",
                                ev.row
                            ),
                        });
                    }
                }
            }
        }
        Ok(())
    }

    fn do_collect(&mut self, p: &mut StagePayload) -> Result<Traffic, ScratchError> {
        let traffic = stages::collect_traffic(&p.plans, self.row_bytes());
        if self.config.functional {
            for (t, plan) in p.plans.iter().enumerate() {
                if self.config.check_hazards {
                    for ev in &plan.evictions {
                        if self.data_resident[t][ev.slot as usize] != Some(ev.row) {
                            return Err(ScratchError::HazardViolation {
                                detail: format!(
                                    "collect {}: victim slot {} of table {t} holds {:?}, \
                                     expected row {} (RAW-3)",
                                    p.index,
                                    ev.slot,
                                    self.data_resident[t][ev.slot as usize],
                                    ev.row
                                ),
                            });
                        }
                    }
                }
                stages::stage_misses(plan, &self.cpu_tables[t], &mut p.staged_miss);
                stages::stage_evictions(plan, &self.storages[t], &mut p.staged_evict);
            }
        }
        Ok(traffic)
    }

    fn do_exchange(&self, p: &StagePayload) -> Traffic {
        stages::exchange_traffic(&p.plans, self.row_bytes())
    }

    fn do_insert(&mut self, p: &StagePayload) -> Traffic {
        let traffic = stages::insert_traffic(&p.plans, self.row_bytes());
        if self.config.functional {
            for (t, plan) in p.plans.iter().enumerate() {
                stages::insert_evictions(t, plan, &p.staged_evict, &mut self.cpu_tables[t]);
                stages::insert_fills(t, plan, &p.staged_miss, &mut self.storages[t]);
                for f in &plan.fills {
                    self.data_resident[t][f.slot as usize] = Some(f.row);
                }
            }
        }
        traffic
    }

    fn do_train(
        &mut self,
        p: &StagePayload,
        batches: &[SparseBatch],
    ) -> Result<(Traffic, f32), ScratchError> {
        let batch = &batches[p.index];
        // Traffic: embedding forward + backward entirely on GPU memory.
        let mut traffic = stages::train_traffic(&p.plans, batch, self.config.dim);
        traffic += self.backend.traffic(batch.batch_size());

        if !self.config.functional {
            return Ok((traffic, 0.0));
        }

        // Always-hit assertion: every row's data is resident before the
        // train step gathers it (the paper's core guarantee).
        if self.config.check_hazards {
            for (t, plan) in p.plans.iter().enumerate() {
                for (&id, &slot) in plan.assignments.iter() {
                    if self.data_resident[t][slot as usize] != Some(id) {
                        return Err(ScratchError::HazardViolation {
                            detail: format!(
                                "train {}: table {t} row {id} not resident in slot {slot} \
                                 (holds {:?}) — always-hit property violated",
                                p.index, self.data_resident[t][slot as usize]
                            ),
                        });
                    }
                }
            }
        }

        // Functional training from the scratchpad, through the flat
        // pooled/gradient arenas.
        self.arena
            .prepare(p.plans.len(), batch.batch_size(), self.config.dim);
        for (t, plan) in p.plans.iter().enumerate() {
            stages::gather_pooled(
                &self.storages[t],
                batch.bag(t),
                plan,
                self.arena.pooled_table_mut(t),
            );
        }
        let (pooled, grads) = self.arena.split();
        let step = self.backend.step(p.index, batch, pooled, grads);
        let lr = self.backend.learning_rate();
        for (t, plan) in p.plans.iter().enumerate() {
            stages::scatter_grads(
                &mut self.storages[t],
                batch.bag(t),
                self.arena.grads_table(t),
                lr,
                plan,
            );
        }
        Ok((traffic, step.loss))
    }

    /// Writes every resident scratchpad row back to its CPU table and
    /// returns the traffic of doing so. Idempotent.
    pub fn flush(&mut self) -> Traffic {
        let mut traffic = Traffic::ZERO;
        let rb = self.row_bytes();
        for (t, manager) in self.managers.iter().enumerate() {
            let residents = manager.residents();
            traffic += stages::flush_traffic(residents.len() as u64, rb);
            if self.config.functional {
                // Only rows whose data actually arrived are dirty; with
                // correct windows every resident row is.
                let resident = &self.data_resident[t];
                stages::flush_rows(
                    &self.storages[t],
                    &mut self.cpu_tables[t],
                    &residents,
                    |row, slot| resident[slot as usize] == Some(row),
                );
            }
        }
        if traffic.pcie_d2h_bytes > 0 {
            traffic.pcie_ops += 1;
        }
        traffic
    }
}

/// Reference implementation: sequential training directly on the CPU
/// tables, no cache. The pipelined runtime must produce **bit-identical**
/// tables and losses — the paper's "identical algorithmic behavior" claim.
pub fn train_direct<B: DenseBackend>(
    tables: &mut [EmbeddingTable],
    batches: &[SparseBatch],
    backend: &mut B,
) -> Vec<f32> {
    let mut losses = Vec::with_capacity(batches.len());
    let dim = tables.first().map_or(0, VectorStore::dim);
    let mut arena = TrainArena::new();
    for (i, batch) in batches.iter().enumerate() {
        arena.prepare(tables.len(), batch.batch_size(), dim);
        for (t, bag) in batch.bags() {
            ops::gather_reduce_into(&tables[t], bag, |id| id as usize, arena.pooled_table_mut(t));
        }
        let (pooled, grads) = arena.split();
        let step = backend.step(i, batch, pooled, grads);
        let lr = backend.learning_rate();
        for (t, bag) in batch.bags() {
            ops::embedding_backward(&mut tables[t], bag, arena.grads_table(t), lr);
        }
        losses.push(step.loss);
    }
    losses
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backend::UnitBackend;
    use crate::config::WindowConfig;
    use embeddings::TableBag;
    use tracegen::{LocalityProfile, TraceConfig, TraceGenerator};

    fn make_tables(num: usize, rows: usize, dim: usize) -> Vec<EmbeddingTable> {
        (0..num)
            .map(|t| EmbeddingTable::seeded(rows, dim, 1000 + t as u64))
            .collect()
    }

    fn trace(profile: LocalityProfile, n: usize) -> (TraceConfig, Vec<SparseBatch>) {
        let cfg = TraceConfig {
            num_tables: 3,
            rows_per_table: 400,
            lookups_per_sample: 4,
            batch_size: 8,
            profile,
            seed: 11,
        };
        (cfg, TraceGenerator::new(cfg).take_batches(n))
    }

    /// The headline correctness test: pipelined ScratchPipe produces
    /// bit-identical tables to direct sequential training.
    #[test]
    fn pipelined_training_is_bit_identical_to_sequential() {
        for profile in [LocalityProfile::Random, LocalityProfile::High] {
            let (tcfg, batches) = trace(profile, 25);
            let dim = 8;
            let mut direct_tables = make_tables(tcfg.num_tables, tcfg.rows_per_table as usize, dim);
            let mut direct_backend = UnitBackend::new(0.05);
            let _ = train_direct(&mut direct_tables, &batches, &mut direct_backend);

            let config = PipelineConfig::functional(dim, 200);
            let sp_tables = make_tables(tcfg.num_tables, tcfg.rows_per_table as usize, dim);
            let mut rt = PipelineRuntime::new(config, sp_tables, UnitBackend::new(0.05)).unwrap();
            let report = rt.run(&batches).unwrap();
            assert_eq!(report.iterations, 25);
            let sp_tables = rt.into_tables();
            for (t, (a, b)) in direct_tables.iter().zip(&sp_tables).enumerate() {
                assert!(
                    a.bit_eq(b),
                    "{profile:?}: table {t} diverged at row {:?}",
                    a.first_diff_row(b)
                );
            }
        }
    }

    #[test]
    fn strawman_sequential_window_is_also_bit_identical() {
        let (tcfg, batches) = trace(LocalityProfile::Medium, 20);
        let dim = 8;
        let mut direct_tables = make_tables(tcfg.num_tables, tcfg.rows_per_table as usize, dim);
        let _ = train_direct(&mut direct_tables, &batches, &mut UnitBackend::new(0.05));

        let config = PipelineConfig::functional(dim, 64).sequential();
        let mut rt = PipelineRuntime::new(
            config,
            make_tables(tcfg.num_tables, tcfg.rows_per_table as usize, dim),
            UnitBackend::new(0.05),
        )
        .unwrap();
        let _ = rt.run_sequential(&batches).unwrap();
        let sp = rt.into_tables();
        for (a, b) in direct_tables.iter().zip(&sp) {
            assert!(a.bit_eq(b));
        }
    }

    #[test]
    fn always_hit_property_holds() {
        // With correct windows the hazard checker (which contains the
        // always-hit assertion) never fires, and the hit rate matches the
        // plan-stage accounting.
        let (_, batches) = trace(LocalityProfile::High, 30);
        let mut rt = PipelineRuntime::new(
            PipelineConfig::functional(8, 200),
            make_tables(3, 400, 8),
            UnitBackend::new(0.01),
        )
        .unwrap();
        let report = rt.run(&batches).unwrap();
        assert!(report.hit_rate() > 0.0);
        assert_eq!(report.records.len(), 30);
    }

    /// Negative test: break the future window and feed an adversarial
    /// trace. The hazard checker must catch the RAW-4 eviction.
    #[test]
    fn broken_future_window_is_detected() {
        // Adversarial trace on one table, two slots:
        //   batch 0: {1, 2}   (fills slots 0, 1)
        //   batch 1: {3}      (must evict; with future=0 it may evict 1 or 2)
        //   batch 2: {1, 2}   (needs whichever was evicted → RAW-4)
        let mk = |ids: &[u64]| SparseBatch::new(vec![TableBag::from_samples(&[ids.to_vec()])]);
        let batches = vec![mk(&[1, 2]), mk(&[3]), mk(&[1, 2])];
        let config =
            PipelineConfig::functional(4, 2).with_window(WindowConfig { past: 0, future: 0 });
        let mut rt =
            PipelineRuntime::new(config, make_tables(1, 10, 4), UnitBackend::new(0.1)).unwrap();
        let err = rt.run(&batches).unwrap_err();
        assert!(
            matches!(err, ScratchError::HazardViolation { .. }),
            "expected hazard violation, got {err:?}"
        );
    }

    /// Negative test without the checker: the same broken window must
    /// produce *numerically different* tables than sequential training —
    /// demonstrating the Hold-mask mechanism is load-bearing.
    #[test]
    fn broken_window_without_checker_diverges_numerically() {
        let mk = |ids: &[u64]| SparseBatch::new(vec![TableBag::from_samples(&[ids.to_vec()])]);
        // Row 1 is trained by batch 0, evicted by batch 1 (write-back in
        // flight), then batch 2 re-fetches it from the CPU table *before*
        // the write-back lands → it trains on stale data.
        let batches = vec![mk(&[1, 2]), mk(&[3]), mk(&[1]), mk(&[4]), mk(&[1])];
        let mut direct_tables = make_tables(1, 10, 4);
        let _ = train_direct(&mut direct_tables, &batches, &mut UnitBackend::new(0.3));

        let mut config =
            PipelineConfig::functional(4, 2).with_window(WindowConfig { past: 0, future: 0 });
        config.check_hazards = false;
        let mut rt =
            PipelineRuntime::new(config, make_tables(1, 10, 4), UnitBackend::new(0.3)).unwrap();
        let _ = rt.run(&batches).unwrap();
        let sp = rt.into_tables();
        assert!(
            !direct_tables[0].bit_eq(&sp[0]),
            "broken window should corrupt training"
        );
    }

    #[test]
    fn capacity_exhaustion_reports_table() {
        let mk = |ids: &[u64]| SparseBatch::new(vec![TableBag::from_samples(&[ids.to_vec()])]);
        let batches = vec![mk(&[1, 2]), mk(&[3, 4])];
        let mut rt = PipelineRuntime::new(
            PipelineConfig::functional(4, 2),
            make_tables(1, 10, 4),
            UnitBackend::new(0.1),
        )
        .unwrap();
        let err = rt.run(&batches).unwrap_err();
        assert!(matches!(
            err,
            ScratchError::CapacityExhausted { table: 0, .. }
        ));
    }

    #[test]
    fn traffic_accounting_is_consistent() {
        let (_, batches) = trace(LocalityProfile::Medium, 12);
        let mut rt = PipelineRuntime::new(
            PipelineConfig::functional(8, 150),
            make_tables(3, 400, 8),
            UnitBackend::new(0.01),
        )
        .unwrap();
        let report = rt.run(&batches).unwrap();
        let total = report.total_traffic();
        // Misses flow CPU→GPU: collect reads = exchange h2d = insert fills.
        assert_eq!(
            total.collect.cpu_random_read_bytes,
            total.exchange.pcie_h2d_bytes
        );
        assert_eq!(
            total.exchange.pcie_h2d_bytes,
            total.insert.gpu_random_write_bytes
        );
        // Evictions flow GPU→CPU symmetrically.
        assert_eq!(
            total.collect.gpu_random_read_bytes,
            total.exchange.pcie_d2h_bytes
        );
        assert_eq!(
            total.exchange.pcie_d2h_bytes,
            total.insert.cpu_random_write_bytes
        );
        // Train traffic is pure GPU.
        assert_eq!(total.train.cpu_bytes(), 0);
        assert!(total.train.gpu_bytes() > 0);
    }

    #[test]
    fn analytic_mode_counts_identical_cache_events() {
        let (tcfg, batches) = trace(LocalityProfile::Low, 15);
        let functional = {
            let mut rt = PipelineRuntime::new(
                PipelineConfig::functional(8, 150),
                make_tables(tcfg.num_tables, tcfg.rows_per_table as usize, 8),
                UnitBackend::new(0.01),
            )
            .unwrap();
            rt.run(&batches).unwrap()
        };
        let analytic = {
            let mut rt = PipelineRuntime::new_analytic(
                PipelineConfig::analytic(8, 150),
                tcfg.num_tables,
                tcfg.rows_per_table,
                UnitBackend::new(0.01),
            )
            .unwrap();
            rt.run(&batches).unwrap()
        };
        for (f, a) in functional.records.iter().zip(&analytic.records) {
            assert_eq!(f.hits, a.hits, "iteration {}", f.index);
            assert_eq!(f.misses, a.misses);
            assert_eq!(f.evictions, a.evictions);
            assert_eq!(f.traffic.exchange, a.traffic.exchange);
        }
    }

    #[test]
    fn higher_locality_yields_higher_hit_rate() {
        let run = |p| {
            let (tcfg, batches) = trace(p, 30);
            let mut rt = PipelineRuntime::new_analytic(
                PipelineConfig::analytic(8, 160), // 40 % of 400 rows
                tcfg.num_tables,
                tcfg.rows_per_table,
                UnitBackend::new(0.01),
            )
            .unwrap();
            rt.run(&batches).unwrap().hit_rate()
        };
        let low = run(LocalityProfile::Random);
        let high = run(LocalityProfile::High);
        assert!(high > low + 0.1, "high {high} vs random {low}");
    }

    #[test]
    fn report_helpers() {
        let (_, batches) = trace(LocalityProfile::Medium, 10);
        let mut rt = PipelineRuntime::new(
            PipelineConfig::functional(8, 150),
            make_tables(3, 400, 8),
            UnitBackend::new(0.01),
        )
        .unwrap();
        let report = rt.run(&batches).unwrap();
        assert_eq!(report.records.len(), 10);
        let steady = report.steady_traffic(4);
        assert!(steady.train.gpu_bytes() > 0);
        assert!(report.records[0].dup_ratio() >= 1.0);
        assert_eq!(report.peak_held_slots.len(), 3);
        assert!(report.peak_held_slots.iter().all(|&p| p > 0));
        let _ = report.mean_loss();
    }

    #[test]
    fn mismatched_batch_rejected() {
        let mut rt = PipelineRuntime::new(
            PipelineConfig::functional(8, 50),
            make_tables(2, 100, 8),
            UnitBackend::new(0.01),
        )
        .unwrap();
        let bad = SparseBatch::from_rows(1, &[vec![vec![1]]]);
        assert!(matches!(
            rt.run(&[bad]),
            Err(ScratchError::InvalidConfig { .. })
        ));
    }

    #[test]
    fn out_of_range_id_rejected() {
        let mut rt = PipelineRuntime::new(
            PipelineConfig::functional(8, 50),
            make_tables(1, 100, 8),
            UnitBackend::new(0.01),
        )
        .unwrap();
        let bad = SparseBatch::from_rows(1, &[vec![vec![100]]]);
        assert!(matches!(
            rt.run(&[bad]),
            Err(ScratchError::InvalidConfig { .. })
        ));
    }

    #[test]
    fn empty_trace_is_fine() {
        let mut rt = PipelineRuntime::new(
            PipelineConfig::functional(8, 50),
            make_tables(1, 100, 8),
            UnitBackend::new(0.01),
        )
        .unwrap();
        let report = rt.run(&[]).unwrap();
        assert_eq!(report.iterations, 0);
    }

    #[test]
    fn eviction_policies_all_train_correctly() {
        use crate::policy::EvictionPolicy;
        let (tcfg, batches) = trace(LocalityProfile::Medium, 20);
        let dim = 8;
        let mut direct = make_tables(tcfg.num_tables, tcfg.rows_per_table as usize, dim);
        let _ = train_direct(&mut direct, &batches, &mut UnitBackend::new(0.05));
        for policy in EvictionPolicy::ALL {
            let config = PipelineConfig::functional(dim, 150).with_policy(policy);
            let mut rt = PipelineRuntime::new(
                config,
                make_tables(tcfg.num_tables, tcfg.rows_per_table as usize, dim),
                UnitBackend::new(0.05),
            )
            .unwrap();
            let _ = rt.run(&batches).unwrap();
            let sp = rt.into_tables();
            for (a, b) in direct.iter().zip(&sp) {
                assert!(a.bit_eq(b), "policy {policy} diverged");
            }
        }
    }
}
