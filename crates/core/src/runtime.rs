//! Run reports and the sequential reference trainer.
//!
//! The pipeline *driver* lives in [`crate::pipeline`] (the generic
//! [`Pipeline`](crate::pipeline::Pipeline) over [`Stage`](crate::stage::Stage)
//! implementors); this module holds what a run *produces*: per-stage
//! [`StageTraffic`], per-iteration [`IterationRecord`]s and the
//! aggregate [`PipelineReport`] — plus [`train_direct`], the cache-less
//! sequential reference implementation every pipelined schedule must
//! match bit-for-bit (the paper's "identical algorithmic behavior"
//! claim).
//!
//! All report types serialize through the vendored serde stand-in, and
//! the audit event stream (see [`crate::audit`]) reuses the exact same
//! `Serialize` path — summing the `traffic` field of emitted `iteration`
//! events reproduces [`PipelineReport::total_traffic`].

use embeddings::{ops, EmbeddingTable, SparseBatch, VectorStore};
use memsim::Traffic;
use serde::{Deserialize, Serialize};

use crate::backend::DenseBackend;
use crate::stages::TrainArena;

/// Per-stage traffic of one iteration (or the sum over a run).
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct StageTraffic {
    /// \[Plan\]: sparse-ID upload + Hit-Map probing.
    pub plan: Traffic,
    /// \[Collect\]: CPU-table gathers of missed rows, scratchpad gathers of
    /// victim rows.
    pub collect: Traffic,
    /// \[Exchange\]: duplex PCIe transfers.
    pub exchange: Traffic,
    /// \[Insert\]: CPU-table write-backs, scratchpad fills.
    pub insert: Traffic,
    /// \[Train\]: embedding gathers/reduce/coalesce/scatter + dense model.
    pub train: Traffic,
}

impl StageTraffic {
    /// Stage names in pipeline order (matching the struct fields).
    pub const STAGE_NAMES: [&'static str; 5] = ["Plan", "Collect", "Exchange", "Insert", "Train"];

    /// Per-stage traffic in pipeline order.
    pub fn stages(&self) -> [Traffic; 5] {
        [
            self.plan,
            self.collect,
            self.exchange,
            self.insert,
            self.train,
        ]
    }

    /// Sum of all stages.
    pub fn total(&self) -> Traffic {
        self.plan + self.collect + self.exchange + self.insert + self.train
    }
}

impl std::ops::Add for StageTraffic {
    type Output = StageTraffic;
    fn add(self, rhs: StageTraffic) -> StageTraffic {
        StageTraffic {
            plan: self.plan + rhs.plan,
            collect: self.collect + rhs.collect,
            exchange: self.exchange + rhs.exchange,
            insert: self.insert + rhs.insert,
            train: self.train + rhs.train,
        }
    }
}

impl std::ops::AddAssign for StageTraffic {
    fn add_assign(&mut self, rhs: StageTraffic) {
        *self = *self + rhs;
    }
}

/// Statistics of one pipeline iteration.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct IterationRecord {
    /// Mini-batch index.
    pub index: usize,
    /// Unique-ID hits across tables at \[Plan\].
    pub hits: u64,
    /// Unique-ID misses (fills) across tables.
    pub misses: u64,
    /// Evictions (write-backs) across tables.
    pub evictions: u64,
    /// Total sparse lookups of the batch.
    pub total_lookups: u64,
    /// Unique rows touched by the batch.
    pub unique_rows: u64,
    /// Dense-model loss reported by the backend.
    pub loss: f32,
    /// Per-stage traffic of this iteration.
    pub traffic: StageTraffic,
}

impl IterationRecord {
    /// Lookup duplication factor (`total_lookups / unique_rows`), the
    /// quantity that drives gradient-coalescing volume.
    pub fn dup_ratio(&self) -> f64 {
        if self.unique_rows == 0 {
            1.0
        } else {
            self.total_lookups as f64 / self.unique_rows as f64
        }
    }
}

/// Result of a pipelined run.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct PipelineReport {
    /// Number of mini-batches trained.
    pub iterations: usize,
    /// Per-iteration statistics.
    pub records: Vec<IterationRecord>,
    /// Traffic of the final scratchpad flush back to CPU tables.
    pub flush_traffic: Traffic,
    /// Peak held (non-evictable) slots per table — the §VI-D working-set
    /// measurement.
    pub peak_held_slots: Vec<usize>,
}

impl PipelineReport {
    /// Sum of all iterations' stage traffic.
    pub fn total_traffic(&self) -> StageTraffic {
        self.records
            .iter()
            .fold(StageTraffic::default(), |acc, r| acc + r.traffic)
    }

    /// Mean per-iteration stage traffic over the steady-state portion
    /// (skipping the first `skip` cold-cache iterations).
    pub fn steady_traffic(&self, skip: usize) -> StageTraffic {
        let tail: Vec<_> = self.records.iter().skip(skip).collect();
        if tail.is_empty() {
            return StageTraffic::default();
        }
        let sum = tail
            .iter()
            .fold(StageTraffic::default(), |acc, r| acc + r.traffic);
        // Scale down via integer division on bytes: implemented by scaling
        // each Traffic through f64 would lose exactness; instead divide the
        // u64 fields.
        let n = tail.len() as u64;
        let div = |t: Traffic| Traffic {
            cpu_random_read_bytes: t.cpu_random_read_bytes / n,
            cpu_random_write_bytes: t.cpu_random_write_bytes / n,
            cpu_stream_read_bytes: t.cpu_stream_read_bytes / n,
            cpu_stream_write_bytes: t.cpu_stream_write_bytes / n,
            gpu_random_read_bytes: t.gpu_random_read_bytes / n,
            gpu_random_write_bytes: t.gpu_random_write_bytes / n,
            gpu_stream_read_bytes: t.gpu_stream_read_bytes / n,
            gpu_stream_write_bytes: t.gpu_stream_write_bytes / n,
            pcie_h2d_bytes: t.pcie_h2d_bytes / n,
            pcie_d2h_bytes: t.pcie_d2h_bytes / n,
            nvlink_bytes: t.nvlink_bytes / n,
            gpu_flops: t.gpu_flops / n,
            cpu_flops: t.cpu_flops / n,
            gpu_ops: (t.gpu_ops as u64 / n) as u32,
            cpu_ops: (t.cpu_ops as u64 / n) as u32,
            pcie_ops: (t.pcie_ops as u64 / n) as u32,
        };
        StageTraffic {
            plan: div(sum.plan),
            collect: div(sum.collect),
            exchange: div(sum.exchange),
            insert: div(sum.insert),
            train: div(sum.train),
        }
    }

    /// Aggregate unique-ID hit rate across the run.
    pub fn hit_rate(&self) -> f64 {
        let hits: u64 = self.records.iter().map(|r| r.hits).sum();
        let misses: u64 = self.records.iter().map(|r| r.misses).sum();
        if hits + misses == 0 {
            0.0
        } else {
            hits as f64 / (hits + misses) as f64
        }
    }

    /// Mean loss over all iterations.
    pub fn mean_loss(&self) -> f32 {
        if self.records.is_empty() {
            return 0.0;
        }
        self.records.iter().map(|r| r.loss).sum::<f32>() / self.records.len() as f32
    }
}

/// Reference implementation: sequential training directly on the CPU
/// tables, no cache. The pipelined runtime must produce **bit-identical**
/// tables and losses — the paper's "identical algorithmic behavior" claim.
pub fn train_direct<B: DenseBackend>(
    tables: &mut [EmbeddingTable],
    batches: &[SparseBatch],
    backend: &mut B,
) -> Vec<f32> {
    let mut losses = Vec::with_capacity(batches.len());
    let dim = tables.first().map_or(0, VectorStore::dim);
    let mut arena = TrainArena::new();
    for (i, batch) in batches.iter().enumerate() {
        arena.prepare(tables.len(), batch.batch_size(), dim);
        for (t, bag) in batch.bags() {
            ops::gather_reduce_into(&tables[t], bag, |id| id as usize, arena.pooled_table_mut(t));
        }
        let (pooled, grads) = arena.split();
        let step = backend.step(i, batch, pooled, grads);
        let lr = backend.learning_rate();
        for (t, bag) in batch.bags() {
            ops::embedding_backward(&mut tables[t], bag, arena.grads_table(t), lr);
        }
        losses.push(step.loss);
    }
    losses
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn report_json_round_trips() {
        let mut report = PipelineReport {
            iterations: 1,
            records: vec![IterationRecord {
                index: 0,
                hits: 3,
                misses: 2,
                evictions: 1,
                total_lookups: 8,
                unique_rows: 5,
                loss: 0.125,
                traffic: StageTraffic::default(),
            }],
            flush_traffic: Traffic::ZERO,
            peak_held_slots: vec![4],
        };
        report.records[0].traffic.train.gpu_flops = 99;
        let json = serde_json::to_string(&report).unwrap();
        let back: PipelineReport = serde_json::from_str(&json).unwrap();
        assert_eq!(back.records[0].hits, 3);
        assert_eq!(back.records[0].loss.to_bits(), 0.125f32.to_bits());
        assert_eq!(back.records[0].traffic.train.gpu_flops, 99);
        assert_eq!(back.peak_held_slots, vec![4]);
    }

    #[test]
    fn stage_traffic_total_sums_all_stages() {
        let mut st = StageTraffic::default();
        st.plan.pcie_h2d_bytes = 1;
        st.collect.cpu_random_read_bytes = 2;
        st.exchange.pcie_h2d_bytes = 4;
        st.insert.gpu_random_write_bytes = 8;
        st.train.gpu_flops = 16;
        let total = st.total();
        assert_eq!(total.pcie_h2d_bytes, 5);
        assert_eq!(total.cpu_random_read_bytes, 2);
        assert_eq!(total.gpu_random_write_bytes, 8);
        assert_eq!(total.gpu_flops, 16);
        assert_eq!(st.stages().len(), StageTraffic::STAGE_NAMES.len());
    }

    #[test]
    fn dup_ratio_handles_empty_batches() {
        let rec = IterationRecord::default();
        assert!((rec.dup_ratio() - 1.0).abs() < f64::EPSILON);
    }
}
