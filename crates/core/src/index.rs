//! A purpose-built open-addressing `u64 → u32` index for the hot path.
//!
//! The Plan stage probes the Hit-Map once per unique ID per mini-batch,
//! and on a 1-CPU host every probe is on the critical path. A std
//! `HashMap` pays SipHash per probe plus bucket-control indirection; this
//! index replaces it with the cheapest structure that is still correct
//! for the workload:
//!
//! * **power-of-two capacity** — the bucket for a hash is a single mask,
//!   no integer division;
//! * **multiply-xor hash** (FxHash-style) — one `wrapping_mul` by a
//!   64-bit odd constant plus one xor-shift, fine for feature IDs which
//!   are already well-spread and never adversarial;
//! * **linear probing** — probe sequences are contiguous cache lines;
//! * **backward-shift deletion** — removal re-compacts the probe chain
//!   instead of leaving tombstones, so long-lived maps (the Hit-Map lives
//!   for a whole run and churns every batch) never degrade.
//!
//! Keys and values live in two parallel flat arrays; an empty bucket is
//! marked by the value sentinel [`EMPTY`], so lookups touch exactly one
//! `u64` lane and one `u32` lane. Values must therefore be below
//! `u32::MAX`, which holds by construction for scratchpad slot indices.
//!
//! A proptest at the bottom pins the behaviour (including the
//! backward-shift path) against a `std::collections::HashMap` reference
//! model.

/// Value sentinel marking an empty bucket. [`SlotIndex::insert`] rejects it.
const EMPTY: u32 = u32::MAX;

/// Fibonacci-style odd multiplier (2^64 / φ), the classic multiply-hash
/// constant: one multiply spreads low-entropy keys across the high bits,
/// the xor-shift folds them back down for the mask.
const HASH_MUL: u64 = 0x9E37_79B9_7F4A_7C15;

/// Minimum non-zero capacity (power of two).
const MIN_CAP: usize = 8;

/// Open-addressing `u64 → u32` map: power-of-two capacity, multiply-xor
/// hash, linear probing, tombstone-free backward-shift removal.
#[derive(Debug, Clone, Default)]
pub struct SlotIndex {
    /// Keys, valid only where `vals[i] != EMPTY`.
    keys: Vec<u64>,
    /// Values; `EMPTY` marks a vacant bucket.
    vals: Vec<u32>,
    /// Occupied bucket count.
    len: usize,
}

impl SlotIndex {
    /// Creates an empty index (allocates nothing until first insert).
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates an index pre-sized so `n` entries fit without rehashing.
    pub fn with_capacity(n: usize) -> Self {
        let mut s = Self::default();
        if n > 0 {
            s.rehash(Self::cap_for(n));
        }
        s
    }

    /// Smallest power-of-two table size keeping `n` entries at or below
    /// the 3/4 load-factor ceiling. Linear probing degrades sharply past
    /// ~3/4 occupancy (miss chains grow as 1/(1−α)²), and the 12 bytes
    /// per bucket make headroom cheap.
    fn cap_for(n: usize) -> usize {
        let needed = n + n.div_ceil(3) + 1; // n <= cap*3/4  ⇔  cap >= ceil(4n/3)
        needed.next_power_of_two().max(MIN_CAP)
    }

    #[inline]
    fn mask(&self) -> usize {
        self.vals.len() - 1
    }

    /// Home bucket for `key` in a table of the current capacity.
    #[inline]
    fn home(&self, key: u64) -> usize {
        let h = key.wrapping_mul(HASH_MUL);
        ((h ^ (h >> 32)) as usize) & self.mask()
    }

    /// Number of mappings.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True if no mappings exist.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Looks up `key`.
    #[inline]
    pub fn get(&self, key: u64) -> Option<u32> {
        if self.len == 0 {
            return None;
        }
        let mask = self.mask();
        let mut i = self.home(key);
        loop {
            let v = self.vals[i];
            if v == EMPTY {
                return None;
            }
            if self.keys[i] == key {
                return Some(v);
            }
            i = (i + 1) & mask;
        }
    }

    /// Inserts or replaces the mapping for `key`, returning the previous
    /// value if one existed.
    ///
    /// # Panics
    ///
    /// Panics if `val == u32::MAX` (reserved as the empty sentinel).
    pub fn insert(&mut self, key: u64, val: u32) -> Option<u32> {
        assert!(val != EMPTY, "u32::MAX is reserved as the empty sentinel");
        if self.vals.is_empty() || (self.len + 1) * 4 > self.vals.len() * 3 {
            let target = Self::cap_for(self.len + 1).max(self.vals.len() * 2);
            self.rehash(target);
        }
        let mask = self.mask();
        let mut i = self.home(key);
        loop {
            let v = self.vals[i];
            if v == EMPTY {
                self.keys[i] = key;
                self.vals[i] = val;
                self.len += 1;
                return None;
            }
            if self.keys[i] == key {
                self.vals[i] = val;
                return Some(v);
            }
            i = (i + 1) & mask;
        }
    }

    /// Removes the mapping for `key`, returning its value. The probe
    /// chain is re-compacted by backward shifting, so no tombstones are
    /// ever left behind.
    pub fn remove(&mut self, key: u64) -> Option<u32> {
        if self.len == 0 {
            return None;
        }
        let mask = self.mask();
        let mut i = self.home(key);
        let removed = loop {
            let v = self.vals[i];
            if v == EMPTY {
                return None;
            }
            if self.keys[i] == key {
                break v;
            }
            i = (i + 1) & mask;
        };
        // Backward-shift: walk the chain after the hole; any entry whose
        // home bucket lies cyclically outside (i, j] can legally move back
        // into the hole, re-opening the hole at its old position.
        let mut j = i;
        loop {
            j = (j + 1) & mask;
            if self.vals[j] == EMPTY {
                break;
            }
            let h = self.home(self.keys[j]);
            // `h` cyclically in (i, j] means the entry is already as close
            // to home as the hole allows — skip it.
            let in_gap = if i <= j {
                i < h && h <= j
            } else {
                i < h || h <= j
            };
            if !in_gap {
                self.keys[i] = self.keys[j];
                self.vals[i] = self.vals[j];
                i = j;
            }
        }
        self.vals[i] = EMPTY;
        self.len -= 1;
        Some(removed)
    }

    /// Removes every mapping, keeping the allocation.
    pub fn clear(&mut self) {
        self.vals.fill(EMPTY);
        self.len = 0;
    }

    /// Iterates over `(key, value)` pairs in unspecified order.
    pub fn iter(&self) -> impl Iterator<Item = (u64, u32)> + '_ {
        self.keys
            .iter()
            .zip(self.vals.iter())
            .filter(|(_, &v)| v != EMPTY)
            .map(|(&k, &v)| (k, v))
    }

    /// Grows (or initialises) the table to `new_cap` buckets and
    /// reinserts every live entry.
    fn rehash(&mut self, new_cap: usize) {
        debug_assert!(new_cap.is_power_of_two());
        debug_assert!(self.len * 8 <= new_cap * 7);
        let old_keys = std::mem::replace(&mut self.keys, vec![0; new_cap]);
        let old_vals = std::mem::replace(&mut self.vals, vec![EMPTY; new_cap]);
        let mask = new_cap - 1;
        for (k, v) in old_keys.into_iter().zip(old_vals) {
            if v == EMPTY {
                continue;
            }
            let mut i = self.home(k);
            while self.vals[i] != EMPTY {
                i = (i + 1) & mask;
            }
            self.keys[i] = k;
            self.vals[i] = v;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use std::collections::HashMap;

    #[test]
    fn insert_get_remove_roundtrip() {
        let mut m = SlotIndex::new();
        assert!(m.is_empty());
        assert_eq!(m.get(42), None);
        assert_eq!(m.insert(42, 7), None);
        assert_eq!(m.get(42), Some(7));
        assert_eq!(m.insert(42, 9), Some(7));
        assert_eq!(m.len(), 1);
        assert_eq!(m.remove(42), Some(9));
        assert_eq!(m.remove(42), None);
        assert!(m.is_empty());
    }

    #[test]
    fn grows_past_initial_capacity() {
        let mut m = SlotIndex::with_capacity(4);
        for k in 0..10_000u64 {
            m.insert(k, (k % 1000) as u32);
        }
        assert_eq!(m.len(), 10_000);
        for k in 0..10_000u64 {
            assert_eq!(m.get(k), Some((k % 1000) as u32), "key {k}");
        }
        assert_eq!(m.get(10_000), None);
    }

    #[test]
    fn colliding_chain_survives_middle_removal() {
        // Force one probe chain by saturating a tiny table region: keys
        // chosen so several share a home bucket after masking, then delete
        // from the middle of the chain and verify the tail is still
        // reachable (the backward-shift must re-compact it).
        let mut m = SlotIndex::with_capacity(6);
        let cap = m.vals.len();
        let mut chain = Vec::new();
        let mut k = 0u64;
        while chain.len() < 4 {
            if m.home(k) == m.home(chain.first().copied().unwrap_or(k)) {
                chain.push(k);
            }
            k += 1;
            assert!(k < 1_000_000, "no colliding keys found for cap {cap}");
        }
        for (i, &key) in chain.iter().enumerate() {
            m.insert(key, i as u32);
        }
        assert_eq!(m.remove(chain[1]), Some(1));
        assert_eq!(m.get(chain[0]), Some(0));
        assert_eq!(m.get(chain[2]), Some(2));
        assert_eq!(m.get(chain[3]), Some(3));
        assert_eq!(m.get(chain[1]), None);
    }

    #[test]
    fn clear_retains_capacity() {
        let mut m = SlotIndex::with_capacity(100);
        for k in 0..100 {
            m.insert(k, k as u32);
        }
        let cap = m.vals.len();
        m.clear();
        assert!(m.is_empty());
        assert_eq!(m.vals.len(), cap);
        assert_eq!(m.get(5), None);
        m.insert(5, 1);
        assert_eq!(m.get(5), Some(1));
    }

    #[test]
    #[should_panic(expected = "reserved")]
    fn sentinel_value_rejected() {
        SlotIndex::new().insert(1, u32::MAX);
    }

    #[test]
    fn iter_matches_contents() {
        let mut m = SlotIndex::new();
        for k in [3u64, 1, 4, 1, 5] {
            m.insert(k, (k * 10) as u32);
        }
        let mut pairs: Vec<_> = m.iter().collect();
        pairs.sort_unstable();
        assert_eq!(pairs, vec![(1, 10), (3, 30), (4, 40), (5, 50)]);
    }

    /// Ops for the reference-model proptest. Keys are drawn from a small
    /// domain so insert/remove/get interleavings repeatedly hit the same
    /// chains, exercising backward-shift deletion inside live clusters.
    #[derive(Debug, Clone)]
    enum Op {
        Insert(u64, u32),
        Remove(u64),
        Get(u64),
    }

    fn op_strategy() -> impl Strategy<Value = Op> {
        prop_oneof![
            (0u64..64, 0u32..1000).prop_map(|(k, v)| Op::Insert(k, v)),
            (0u64..64).prop_map(Op::Remove),
            (0u64..64).prop_map(Op::Get),
        ]
    }

    proptest! {
        #[test]
        fn matches_hashmap_reference(ops in proptest::collection::vec(op_strategy(), 1..400)) {
            let mut idx = SlotIndex::new();
            let mut reference: HashMap<u64, u32> = HashMap::new();
            for op in &ops {
                match *op {
                    Op::Insert(k, v) => {
                        prop_assert_eq!(idx.insert(k, v), reference.insert(k, v));
                    }
                    Op::Remove(k) => {
                        prop_assert_eq!(idx.remove(k), reference.remove(&k));
                    }
                    Op::Get(k) => {
                        prop_assert_eq!(idx.get(k), reference.get(&k).copied());
                    }
                }
                prop_assert_eq!(idx.len(), reference.len());
            }
            let mut got: Vec<_> = idx.iter().collect();
            got.sort_unstable();
            let mut want: Vec<_> = reference.iter().map(|(&k, &v)| (k, v)).collect();
            want.sort_unstable();
            prop_assert_eq!(got, want);
        }
    }
}
