//! A multi-threaded pipeline runtime: each stage runs on its own OS
//! thread, connected by bounded channels — the software analogue of the
//! paper's concurrently-executing pipeline stages on CPU threads, DMA
//! engines and GPU streams.
//!
//! The stage *bodies* are the shared kernels of [`crate::stages`] — the
//! same code the synchronous [`PipelineRuntime`] iterates — so bit-exact
//! equivalence with [`train_direct`](crate::runtime::train_direct) and
//! per-stage-traffic parity with the synchronous runtime hold by
//! construction. This module only contributes the *schedule*: threads,
//! channels and two explicit watermarks that impose the only cross-stage
//! orderings the synchronous pipeline provides implicitly:
//!
//! * `Collect(i)` waits until `Train(i-4)` has finished — a victim slot
//!   chosen at `Plan(i)` may belong to batch `i-4`, whose final update
//!   must land before the slot is read out for write-back;
//! * `Collect(i)` waits until `Insert(i-3)` has finished — a row missed by
//!   batch `i` may have been evicted by batch `i-3`, whose CPU write-back
//!   must land before the row is re-read.
//!
//! Every other access pair is made disjoint by the Hold-mask window, which
//! is what lets the stages run concurrently at all.
//!
//! Retired [`StagePayload`]s flow back to the \[Plan\] thread over a
//! recycle channel, so the steady state keeps exactly pipeline-depth
//! payloads alive and the staging arenas are never reallocated.
//!
//! [`PipelineRuntime`]: crate::runtime::PipelineRuntime

use std::sync::Arc;

use crossbeam::channel::{bounded, unbounded};
use embeddings::store::DenseStore;
use embeddings::{EmbeddingTable, SparseBatch};
use memsim::Traffic;
use parking_lot::Mutex;

use crate::backend::DenseBackend;
use crate::config::PipelineConfig;
use crate::error::ScratchError;
use crate::runtime::{IterationRecord, PipelineReport};
use crate::scratchpad::ScratchpadManager;
use crate::stages::{self, StagePayload, TrainArena};

/// Runs the full ScratchPipe pipeline with one thread per stage.
///
/// Returns the trained tables (scratchpad flushed) and a full
/// [`PipelineReport`] — including per-iteration losses and per-stage
/// [`StageTraffic`](crate::runtime::StageTraffic) identical to what the
/// synchronous runtime reports for the same trace.
///
/// # Errors
///
/// Propagates [`ScratchError::CapacityExhausted`] /
/// [`ScratchError::InvalidConfig`] from the planning thread.
pub fn run_threaded<B>(
    config: PipelineConfig,
    tables: Vec<EmbeddingTable>,
    backend: B,
    batches: &[SparseBatch],
) -> Result<(Vec<EmbeddingTable>, PipelineReport), ScratchError>
where
    B: DenseBackend + Send,
{
    config.validate()?;
    if !config.functional {
        return Err(ScratchError::InvalidConfig {
            detail: "threaded runtime requires functional mode".to_owned(),
        });
    }
    if tables.is_empty() {
        return Err(ScratchError::InvalidConfig {
            detail: "need at least one embedding table".to_owned(),
        });
    }
    let num_tables = tables.len();
    let dim = config.dim;
    let row_bytes = dim as u64 * 4;
    let n = batches.len();

    let uniq: Arc<Vec<Vec<Vec<u64>>>> = Arc::new(
        batches
            .iter()
            .map(|b| b.bags().map(|(_, bag)| bag.unique_ids()).collect())
            .collect(),
    );
    let storages: Arc<Vec<Mutex<DenseStore>>> = Arc::new(
        (0..num_tables)
            .map(|_| Mutex::new(DenseStore::zeros(config.slots_per_table, dim)))
            .collect(),
    );
    let cpu_tables: Arc<Vec<Mutex<EmbeddingTable>>> =
        Arc::new(tables.into_iter().map(Mutex::new).collect());

    let mut managers: Vec<ScratchpadManager> = (0..num_tables)
        .map(|_| ScratchpadManager::new(config.slots_per_table, config.window, config.policy))
        .collect::<Result<_, _>>()?;

    let (plan_tx, plan_rx) = bounded::<StagePayload>(2);
    let (collect_tx, collect_rx) = bounded::<StagePayload>(2);
    let (exchange_tx, exchange_rx) = bounded::<StagePayload>(2);
    let (insert_tx, insert_rx) = bounded::<StagePayload>(2);
    // Watermark channels: completed batch indices, strictly in order.
    let (train_wm_tx, train_wm_rx) = unbounded::<usize>();
    let (insert_wm_tx, insert_wm_rx) = unbounded::<usize>();
    // Retired payloads flow back to [Plan] for arena reuse.
    let (recycle_tx, recycle_rx) = unbounded::<StagePayload>();

    let plan_error: Arc<Mutex<Option<ScratchError>>> = Arc::new(Mutex::new(None));
    let mut records: Vec<IterationRecord> = (0..n)
        .map(|i| IterationRecord {
            index: i,
            ..IterationRecord::default()
        })
        .collect();
    let mut backend = backend;

    std::thread::scope(|scope| {
        // ---- Plan thread (owns the cache managers). ----
        let uniq_p = Arc::clone(&uniq);
        let err_slot = Arc::clone(&plan_error);
        let future_depth = config.window.future as usize;
        let managers_ref = &mut managers;
        let plan_thread = scope.spawn(move || {
            for (i, batch) in batches.iter().enumerate() {
                match stages::plan(managers_ref, batch, &uniq_p, i, future_depth) {
                    Ok((plans, traffic)) => {
                        let mut p = recycle_rx
                            .try_recv()
                            .unwrap_or_else(|_| StagePayload::new(dim));
                        p.rearm(i, plans);
                        p.traffic.plan = traffic;
                        if plan_tx.send(p).is_err() {
                            return;
                        }
                    }
                    Err(e) => {
                        *err_slot.lock() = Some(e);
                        return;
                    }
                }
            }
        });

        // ---- Collect thread (waits on the two watermarks). ----
        let storages_c = Arc::clone(&storages);
        let cpu_c = Arc::clone(&cpu_tables);
        scope.spawn(move || {
            let mut train_done: i64 = -1;
            let mut insert_done: i64 = -1;
            for mut p in plan_rx.iter() {
                let i = p.index as i64;
                while train_done < i - 4 {
                    match train_wm_rx.recv() {
                        Ok(k) => train_done = k as i64,
                        Err(_) => return,
                    }
                }
                while insert_done < i - 3 {
                    match insert_wm_rx.recv() {
                        Ok(k) => insert_done = k as i64,
                        Err(_) => return,
                    }
                }
                for t in 0..num_tables {
                    let plan = &p.plans[t];
                    {
                        let table = cpu_c[t].lock();
                        stages::stage_misses(plan, &table, &mut p.staged_miss);
                    }
                    {
                        let store = storages_c[t].lock();
                        stages::stage_evictions(plan, &store, &mut p.staged_evict);
                    }
                }
                p.traffic.collect = stages::collect_traffic(&p.plans, row_bytes);
                if collect_tx.send(p).is_err() {
                    return;
                }
            }
        });

        // ---- Exchange thread (models the duplex PCIe DMA hop). ----
        scope.spawn(move || {
            for mut p in collect_rx.iter() {
                p.traffic.exchange = stages::exchange_traffic(&p.plans, row_bytes);
                if exchange_tx.send(p).is_err() {
                    return;
                }
            }
        });

        // ---- Insert thread. ----
        let storages_i = Arc::clone(&storages);
        let cpu_i = Arc::clone(&cpu_tables);
        scope.spawn(move || {
            for mut p in exchange_rx.iter() {
                for t in 0..num_tables {
                    let plan = &p.plans[t];
                    {
                        let mut table = cpu_i[t].lock();
                        stages::insert_evictions(t, plan, &p.staged_evict, &mut table);
                    }
                    {
                        let mut store = storages_i[t].lock();
                        stages::insert_fills(t, plan, &p.staged_miss, &mut store);
                    }
                }
                p.traffic.insert = stages::insert_traffic(&p.plans, row_bytes);
                let idx = p.index;
                if insert_tx.send(p).is_err() {
                    return;
                }
                let _ = insert_wm_tx.send(idx);
            }
        });

        // ---- Train thread (owns the dense backend and the arena). ----
        let storages_t = Arc::clone(&storages);
        let uniq_t = Arc::clone(&uniq);
        let records_ref = &mut records;
        let backend_ref = &mut backend;
        scope.spawn(move || {
            let mut arena = TrainArena::new();
            for mut p in insert_rx.iter() {
                let batch = &batches[p.index];
                arena.prepare(num_tables, batch.batch_size(), dim);
                for t in 0..num_tables {
                    let store = storages_t[t].lock();
                    stages::gather_pooled(
                        &store,
                        batch.bag(t),
                        &p.plans[t],
                        arena.pooled_table_mut(t),
                    );
                }
                let (pooled, grads) = arena.split();
                let step = backend_ref.step(p.index, batch, pooled, grads);
                let lr = backend_ref.learning_rate();
                for t in 0..num_tables {
                    let mut store = storages_t[t].lock();
                    stages::scatter_grads(
                        &mut store,
                        batch.bag(t),
                        arena.grads_table(t),
                        lr,
                        &p.plans[t],
                    );
                }
                p.traffic.train = stages::train_traffic(&p.plans, batch, dim)
                    + backend_ref.traffic(batch.batch_size());

                let rec = &mut records_ref[p.index];
                rec.hits = p.plans.iter().map(|t| t.hits).sum();
                rec.misses = p.plans.iter().map(|t| t.misses).sum();
                rec.evictions = p.plans.iter().map(|t| t.evictions.len() as u64).sum();
                rec.total_lookups = batch.total_lookups() as u64;
                rec.unique_rows = uniq_t[p.index].iter().map(|u| u.len() as u64).sum();
                rec.loss = step.loss;
                rec.traffic = p.traffic;

                let idx = p.index;
                let _ = train_wm_tx.send(idx);
                let _ = recycle_tx.send(p);
            }
        });

        plan_thread.join().expect("plan thread panicked");
    });

    if let Some(e) = plan_error.lock().take() {
        return Err(e);
    }

    // Flush resident rows back to the CPU tables.
    let storages = Arc::try_unwrap(storages).expect("stage threads joined");
    let cpu_tables = Arc::try_unwrap(cpu_tables).expect("stage threads joined");
    let mut tables: Vec<EmbeddingTable> = cpu_tables.into_iter().map(Mutex::into_inner).collect();
    let storages: Vec<DenseStore> = storages.into_iter().map(Mutex::into_inner).collect();
    let mut flush_traffic = Traffic::ZERO;
    for (t, manager) in managers.iter().enumerate() {
        let residents = manager.residents();
        flush_traffic += stages::flush_traffic(residents.len() as u64, row_bytes);
        stages::flush_rows(&storages[t], &mut tables[t], &residents, |_, _| true);
    }
    if flush_traffic.pcie_d2h_bytes > 0 {
        flush_traffic.pcie_ops += 1;
    }
    let report = PipelineReport {
        iterations: n,
        records,
        flush_traffic,
        peak_held_slots: managers.iter().map(|m| m.stats().peak_held).collect(),
    };
    Ok((tables, report))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backend::UnitBackend;
    use crate::runtime::train_direct;
    use tracegen::{LocalityProfile, TraceConfig, TraceGenerator};

    fn make_tables(num: usize, rows: usize, dim: usize) -> Vec<EmbeddingTable> {
        (0..num)
            .map(|t| EmbeddingTable::seeded(rows, dim, 500 + t as u64))
            .collect()
    }

    #[test]
    fn threaded_pipeline_is_bit_identical_to_sequential() {
        for profile in [LocalityProfile::Random, LocalityProfile::High] {
            let cfg = TraceConfig {
                num_tables: 3,
                rows_per_table: 300,
                lookups_per_sample: 4,
                batch_size: 8,
                profile,
                seed: 21,
            };
            let batches = TraceGenerator::new(cfg).take_batches(40);
            let mut direct = make_tables(3, 300, 8);
            let direct_losses = train_direct(&mut direct, &batches, &mut UnitBackend::new(0.05));

            // §VI-D worst case: 6 windowed batches × 8 samples × 4 lookups
            // = 192 unique rows can be held at once; provision for all of
            // them so the test is independent of the trace's RNG stream.
            let (threaded, report) = run_threaded(
                PipelineConfig::functional(8, 192),
                make_tables(3, 300, 8),
                UnitBackend::new(0.05),
                &batches,
            )
            .unwrap();
            for (t, (a, b)) in direct.iter().zip(&threaded).enumerate() {
                assert!(
                    a.bit_eq(b),
                    "{profile:?} table {t} diverged at {:?}",
                    a.first_diff_row(b)
                );
            }
            assert_eq!(direct_losses.len(), report.records.len());
            for (a, r) in direct_losses.iter().zip(&report.records) {
                assert_eq!(a.to_bits(), r.loss.to_bits());
            }
        }
    }

    #[test]
    fn threaded_report_carries_stage_traffic() {
        let cfg = TraceConfig {
            num_tables: 2,
            rows_per_table: 200,
            lookups_per_sample: 4,
            batch_size: 8,
            profile: LocalityProfile::Medium,
            seed: 4,
        };
        let batches = TraceGenerator::new(cfg).take_batches(12);
        let (_, report) = run_threaded(
            PipelineConfig::functional(8, 130),
            make_tables(2, 200, 8),
            UnitBackend::new(0.05),
            &batches,
        )
        .unwrap();
        assert_eq!(report.iterations, 12);
        let total = report.total_traffic();
        assert!(total.plan.pcie_h2d_bytes > 0, "plan uploads sparse IDs");
        assert!(total.train.gpu_bytes() > 0, "train is pure GPU work");
        // Miss flow is conserved: collect reads = exchange h2d = insert fills.
        assert_eq!(
            total.collect.cpu_random_read_bytes,
            total.exchange.pcie_h2d_bytes
        );
        assert_eq!(
            total.exchange.pcie_h2d_bytes,
            total.insert.gpu_random_write_bytes
        );
        assert!(report.hit_rate() > 0.0);
        assert_eq!(report.peak_held_slots.len(), 2);
    }

    #[test]
    fn threaded_capacity_error_propagates() {
        let cfg = TraceConfig {
            num_tables: 1,
            rows_per_table: 1000,
            lookups_per_sample: 8,
            batch_size: 16,
            profile: LocalityProfile::Random,
            seed: 1,
        };
        let batches = TraceGenerator::new(cfg).take_batches(10);
        let err = run_threaded(
            PipelineConfig::functional(8, 4), // far too small
            make_tables(1, 1000, 8),
            UnitBackend::new(0.05),
            &batches,
        )
        .unwrap_err();
        assert!(matches!(err, ScratchError::CapacityExhausted { .. }));
    }

    #[test]
    fn analytic_mode_is_rejected() {
        let err = run_threaded(
            PipelineConfig::analytic(8, 100),
            make_tables(1, 100, 8),
            UnitBackend::new(0.05),
            &[],
        )
        .unwrap_err();
        assert!(matches!(err, ScratchError::InvalidConfig { .. }));
    }

    #[test]
    fn empty_trace_returns_tables_unchanged() {
        let tables = make_tables(2, 100, 8);
        let expect = tables.clone();
        let (out, report) = run_threaded(
            PipelineConfig::functional(8, 50),
            tables,
            UnitBackend::new(0.05),
            &[],
        )
        .unwrap();
        assert!(report.records.is_empty());
        for (a, b) in expect.iter().zip(&out) {
            assert!(a.bit_eq(b));
        }
    }
}
