//! A multi-threaded pipeline runtime: each stage runs on its own OS
//! thread, connected by bounded channels — the software analogue of the
//! paper's concurrently-executing pipeline stages on CPU threads, DMA
//! engines and GPU streams.
//!
//! Two explicit watermarks impose the only cross-stage orderings the
//! synchronous pipeline provides implicitly:
//!
//! * `Collect(i)` waits until `Train(i-4)` has finished — a victim slot
//!   chosen at `Plan(i)` may belong to batch `i-4`, whose final update
//!   must land before the slot is read out for write-back;
//! * `Collect(i)` waits until `Insert(i-3)` has finished — a row missed by
//!   batch `i` may have been evicted by batch `i-3`, whose CPU write-back
//!   must land before the row is re-read.
//!
//! Every other access pair is made disjoint by the Hold-mask window, which
//! is what lets the stages run concurrently at all. The final model state
//! is bit-identical to [`train_direct`](crate::runtime::train_direct) —
//! asserted by the tests.

use std::sync::Arc;

use crossbeam::channel::{bounded, unbounded};
use embeddings::store::DenseStore;
use embeddings::{ops, EmbeddingTable, SparseBatch, VectorStore};
use parking_lot::Mutex;

use crate::backend::DenseBackend;
use crate::config::PipelineConfig;
use crate::error::ScratchError;
use crate::scratchpad::{ScratchpadManager, TablePlan};

/// Payload passed along the stage threads.
struct Payload {
    index: usize,
    plans: Vec<TablePlan>,
    staged_miss: Vec<Vec<f32>>,
    staged_evict: Vec<Vec<f32>>,
}

/// Runs the full ScratchPipe pipeline with one thread per stage.
///
/// Returns the trained tables (scratchpad flushed) and per-iteration
/// losses.
///
/// # Errors
///
/// Propagates [`ScratchError::CapacityExhausted`] /
/// [`ScratchError::InvalidConfig`] from the planning thread.
pub fn run_threaded<B>(
    config: PipelineConfig,
    tables: Vec<EmbeddingTable>,
    backend: B,
    batches: &[SparseBatch],
) -> Result<(Vec<EmbeddingTable>, Vec<f32>), ScratchError>
where
    B: DenseBackend + Send,
{
    config.validate()?;
    if !config.functional {
        return Err(ScratchError::InvalidConfig {
            detail: "threaded runtime requires functional mode".to_owned(),
        });
    }
    if tables.is_empty() {
        return Err(ScratchError::InvalidConfig {
            detail: "need at least one embedding table".to_owned(),
        });
    }
    let num_tables = tables.len();
    let dim = config.dim;
    let n = batches.len();

    let uniq: Arc<Vec<Vec<Vec<u64>>>> = Arc::new(
        batches
            .iter()
            .map(|b| b.bags().map(|(_, bag)| bag.unique_ids()).collect())
            .collect(),
    );
    let storages: Arc<Vec<Mutex<DenseStore>>> = Arc::new(
        (0..num_tables)
            .map(|_| Mutex::new(DenseStore::zeros(config.slots_per_table, dim)))
            .collect(),
    );
    let cpu_tables: Arc<Vec<Mutex<EmbeddingTable>>> =
        Arc::new(tables.into_iter().map(Mutex::new).collect());

    let mut managers: Vec<ScratchpadManager> = (0..num_tables)
        .map(|_| ScratchpadManager::new(config.slots_per_table, config.window, config.policy))
        .collect::<Result<_, _>>()?;

    let (plan_tx, plan_rx) = bounded::<Payload>(2);
    let (collect_tx, collect_rx) = bounded::<Payload>(2);
    let (exchange_tx, exchange_rx) = bounded::<Payload>(2);
    let (insert_tx, insert_rx) = bounded::<Payload>(2);
    // Watermark channels: completed batch indices, strictly in order.
    let (train_wm_tx, train_wm_rx) = unbounded::<usize>();
    let (insert_wm_tx, insert_wm_rx) = unbounded::<usize>();

    let plan_error: Arc<Mutex<Option<ScratchError>>> = Arc::new(Mutex::new(None));
    let mut losses = vec![0.0f32; n];
    let mut backend = backend;

    std::thread::scope(|scope| {
        // ---- Plan thread (owns the cache managers). ----
        let uniq_p = Arc::clone(&uniq);
        let err_slot = Arc::clone(&plan_error);
        let future_depth = config.window.future as usize;
        let managers_ref = &mut managers;
        let plan_thread = scope.spawn(move || {
            for i in 0..n {
                let mut plans = Vec::with_capacity(num_tables);
                for (t, manager) in managers_ref.iter_mut().enumerate() {
                    let futures: Vec<&[u64]> = (1..=future_depth)
                        .filter_map(|k| uniq_p.get(i + k).map(|pt| pt[t].as_slice()))
                        .collect();
                    match manager.plan(&uniq_p[i][t], &futures) {
                        Ok(p) => plans.push(p),
                        Err(e) => {
                            *err_slot.lock() = Some(match e {
                                ScratchError::CapacityExhausted { cycle, slots, .. } => {
                                    ScratchError::CapacityExhausted {
                                        table: t,
                                        cycle,
                                        slots,
                                    }
                                }
                                other => other,
                            });
                            return;
                        }
                    }
                }
                let payload = Payload {
                    index: i,
                    plans,
                    staged_miss: vec![Vec::new(); num_tables],
                    staged_evict: vec![Vec::new(); num_tables],
                };
                if plan_tx.send(payload).is_err() {
                    return;
                }
            }
        });

        // ---- Collect thread (waits on the two watermarks). ----
        let storages_c = Arc::clone(&storages);
        let cpu_c = Arc::clone(&cpu_tables);
        scope.spawn(move || {
            let mut train_done: i64 = -1;
            let mut insert_done: i64 = -1;
            for mut p in plan_rx.iter() {
                let i = p.index as i64;
                while train_done < i - 4 {
                    match train_wm_rx.recv() {
                        Ok(k) => train_done = k as i64,
                        Err(_) => return,
                    }
                }
                while insert_done < i - 3 {
                    match insert_wm_rx.recv() {
                        Ok(k) => insert_done = k as i64,
                        Err(_) => return,
                    }
                }
                for t in 0..num_tables {
                    let plan = &p.plans[t];
                    let mut miss = Vec::with_capacity(plan.fills.len() * dim);
                    {
                        let table = cpu_c[t].lock();
                        for f in &plan.fills {
                            miss.extend_from_slice(table.row(f.row as usize));
                        }
                    }
                    let mut evict = Vec::with_capacity(plan.evictions.len() * dim);
                    {
                        let store = storages_c[t].lock();
                        for ev in &plan.evictions {
                            evict.extend_from_slice(store.row(ev.slot as usize));
                        }
                    }
                    p.staged_miss[t] = miss;
                    p.staged_evict[t] = evict;
                }
                if collect_tx.send(p).is_err() {
                    return;
                }
            }
        });

        // ---- Exchange thread (models the duplex PCIe DMA hop). ----
        scope.spawn(move || {
            for p in collect_rx.iter() {
                if exchange_tx.send(p).is_err() {
                    return;
                }
            }
        });

        // ---- Insert thread. ----
        let storages_i = Arc::clone(&storages);
        let cpu_i = Arc::clone(&cpu_tables);
        scope.spawn(move || {
            for p in exchange_rx.iter() {
                for t in 0..num_tables {
                    let plan = &p.plans[t];
                    {
                        let mut table = cpu_i[t].lock();
                        for (k, ev) in plan.evictions.iter().enumerate() {
                            table
                                .row_mut(ev.row as usize)
                                .copy_from_slice(&p.staged_evict[t][k * dim..(k + 1) * dim]);
                        }
                    }
                    {
                        let mut store = storages_i[t].lock();
                        for (k, f) in plan.fills.iter().enumerate() {
                            store
                                .row_mut(f.slot as usize)
                                .copy_from_slice(&p.staged_miss[t][k * dim..(k + 1) * dim]);
                        }
                    }
                }
                let idx = p.index;
                if insert_tx.send(p).is_err() {
                    return;
                }
                let _ = insert_wm_tx.send(idx);
            }
        });

        // ---- Train thread (owns the dense backend). ----
        let storages_t = Arc::clone(&storages);
        let losses_ref = &mut losses;
        let backend_ref = &mut backend;
        scope.spawn(move || {
            for p in insert_rx.iter() {
                let batch = &batches[p.index];
                let pooled: Vec<Vec<f32>> = (0..num_tables)
                    .map(|t| {
                        let store = storages_t[t].lock();
                        ops::gather_reduce_mapped(&*store, batch.bag(t), |id| {
                            p.plans[t].assignments[&id] as usize
                        })
                    })
                    .collect();
                let step = backend_ref.step(p.index, batch, &pooled);
                let lr = backend_ref.learning_rate();
                for t in 0..num_tables {
                    let mut store = storages_t[t].lock();
                    ops::embedding_backward_mapped(
                        &mut *store,
                        batch.bag(t),
                        &step.embedding_grads[t],
                        lr,
                        |id| p.plans[t].assignments[&id] as usize,
                    );
                }
                losses_ref[p.index] = step.loss;
                let _ = train_wm_tx.send(p.index);
            }
        });

        plan_thread.join().expect("plan thread panicked");
    });

    if let Some(e) = plan_error.lock().take() {
        return Err(e);
    }

    // Flush resident rows back to the CPU tables.
    let storages = Arc::try_unwrap(storages).expect("stage threads joined");
    let cpu_tables = Arc::try_unwrap(cpu_tables).expect("stage threads joined");
    let mut tables: Vec<EmbeddingTable> = cpu_tables.into_iter().map(Mutex::into_inner).collect();
    let storages: Vec<DenseStore> = storages.into_iter().map(Mutex::into_inner).collect();
    for (t, manager) in managers.iter().enumerate() {
        for (row, slot) in manager.residents() {
            let src = storages[t].row(slot as usize).to_vec();
            tables[t].row_mut(row as usize).copy_from_slice(&src);
        }
    }
    Ok((tables, losses))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backend::UnitBackend;
    use crate::runtime::train_direct;
    use tracegen::{LocalityProfile, TraceConfig, TraceGenerator};

    fn make_tables(num: usize, rows: usize, dim: usize) -> Vec<EmbeddingTable> {
        (0..num)
            .map(|t| EmbeddingTable::seeded(rows, dim, 500 + t as u64))
            .collect()
    }

    #[test]
    fn threaded_pipeline_is_bit_identical_to_sequential() {
        for profile in [LocalityProfile::Random, LocalityProfile::High] {
            let cfg = TraceConfig {
                num_tables: 3,
                rows_per_table: 300,
                lookups_per_sample: 4,
                batch_size: 8,
                profile,
                seed: 21,
            };
            let batches = TraceGenerator::new(cfg).take_batches(40);
            let mut direct = make_tables(3, 300, 8);
            let direct_losses = train_direct(&mut direct, &batches, &mut UnitBackend::new(0.05));

            // §VI-D worst case: 6 windowed batches × 8 samples × 4 lookups
            // = 192 unique rows can be held at once; provision for all of
            // them so the test is independent of the trace's RNG stream.
            let (threaded, losses) = run_threaded(
                PipelineConfig::functional(8, 192),
                make_tables(3, 300, 8),
                UnitBackend::new(0.05),
                &batches,
            )
            .unwrap();
            for (t, (a, b)) in direct.iter().zip(&threaded).enumerate() {
                assert!(
                    a.bit_eq(b),
                    "{profile:?} table {t} diverged at {:?}",
                    a.first_diff_row(b)
                );
            }
            assert_eq!(direct_losses.len(), losses.len());
        }
    }

    #[test]
    fn threaded_capacity_error_propagates() {
        let cfg = TraceConfig {
            num_tables: 1,
            rows_per_table: 1000,
            lookups_per_sample: 8,
            batch_size: 16,
            profile: LocalityProfile::Random,
            seed: 1,
        };
        let batches = TraceGenerator::new(cfg).take_batches(10);
        let err = run_threaded(
            PipelineConfig::functional(8, 4), // far too small
            make_tables(1, 1000, 8),
            UnitBackend::new(0.05),
            &batches,
        )
        .unwrap_err();
        assert!(matches!(err, ScratchError::CapacityExhausted { .. }));
    }

    #[test]
    fn analytic_mode_is_rejected() {
        let err = run_threaded(
            PipelineConfig::analytic(8, 100),
            make_tables(1, 100, 8),
            UnitBackend::new(0.05),
            &[],
        )
        .unwrap_err();
        assert!(matches!(err, ScratchError::InvalidConfig { .. }));
    }

    #[test]
    fn empty_trace_returns_tables_unchanged() {
        let tables = make_tables(2, 100, 8);
        let expect = tables.clone();
        let (out, losses) = run_threaded(
            PipelineConfig::functional(8, 50),
            tables,
            UnitBackend::new(0.05),
            &[],
        )
        .unwrap();
        assert!(losses.is_empty());
        for (a, b) in expect.iter().zip(&out) {
            assert!(a.bit_eq(b));
        }
    }
}
