//! Runtime configuration.

use serde::{Deserialize, Serialize};

use crate::error::ScratchError;
use crate::policy::EvictionPolicy;

/// The sliding-window geometry of the Hold mask (paper §IV-C).
///
/// At steady state `past + 1 + future` mini-batches are in flight. The
/// paper derives `past = 3` (the stage distance from \[Train\] back to
/// \[Collect\], protecting against RAW-②/③) and `future = 2` (the distance
/// from \[Insert\] forward to \[Collect\], protecting against RAW-④).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct WindowConfig {
    /// Previous mini-batches whose slots may not be evicted.
    pub past: u32,
    /// Upcoming mini-batches whose cached slots may not be evicted.
    pub future: u32,
}

impl WindowConfig {
    /// The paper's pipelined configuration: 3 past + 2 future.
    pub const PAPER: WindowConfig = WindowConfig { past: 3, future: 2 };

    /// The straw-man (sequential, unpipelined) configuration: with no
    /// overlap between mini-batches, only the current batch needs
    /// protection.
    pub const SEQUENTIAL: WindowConfig = WindowConfig { past: 0, future: 0 };

    /// Total concurrent mini-batches tracked: `past + 1 + future`.
    pub fn width(self) -> u32 {
        self.past + 1 + self.future
    }

    /// Highest Hold-mask bit position used (`width - 1`).
    pub fn max_bit(self) -> u32 {
        self.width() - 1
    }

    /// Validates that the window fits the 32-bit Hold-mask words.
    pub fn validate(self) -> Result<(), ScratchError> {
        if self.width() > 31 {
            return Err(ScratchError::InvalidConfig {
                detail: format!("window width {} exceeds 31", self.width()),
            });
        }
        Ok(())
    }
}

impl Default for WindowConfig {
    fn default() -> Self {
        Self::PAPER
    }
}

/// Full configuration of a [`Pipeline`](crate::Pipeline).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PipelineConfig {
    /// Embedding vector width (must match the CPU tables).
    pub dim: usize,
    /// Scratchpad slots per table.
    pub slots_per_table: usize,
    /// Hold-mask window geometry.
    pub window: WindowConfig,
    /// Victim selection policy among evictable slots.
    pub policy: EvictionPolicy,
    /// Store and train real embedding data (`true`) or only simulate cache
    /// metadata and traffic (`false`, used for paper-scale timing runs
    /// where 40 GB of table data would be pointless to allocate).
    pub functional: bool,
    /// Run the per-cycle hazard checker (asserts the always-hit property
    /// and victim-safety; costs time, default on in tests).
    pub check_hazards: bool,
}

impl PipelineConfig {
    /// Functional (real-arithmetic) configuration with paper windows.
    pub fn functional(dim: usize, slots_per_table: usize) -> Self {
        PipelineConfig {
            dim,
            slots_per_table,
            window: WindowConfig::PAPER,
            policy: EvictionPolicy::Lru,
            functional: true,
            check_hazards: true,
        }
    }

    /// Metadata-only configuration for paper-scale traffic simulation.
    pub fn analytic(dim: usize, slots_per_table: usize) -> Self {
        PipelineConfig {
            functional: false,
            check_hazards: false,
            ..Self::functional(dim, slots_per_table)
        }
    }

    /// Switches to the sequential straw-man window.
    pub fn sequential(mut self) -> Self {
        self.window = WindowConfig::SEQUENTIAL;
        self
    }

    /// Overrides the eviction policy.
    pub fn with_policy(mut self, policy: EvictionPolicy) -> Self {
        self.policy = policy;
        self
    }

    /// Overrides the window geometry (used by the hazard negative-tests).
    pub fn with_window(mut self, window: WindowConfig) -> Self {
        self.window = window;
        self
    }

    /// Validates the configuration.
    pub fn validate(&self) -> Result<(), ScratchError> {
        if self.dim == 0 {
            return Err(ScratchError::InvalidConfig {
                detail: "dim must be positive".to_owned(),
            });
        }
        if self.slots_per_table == 0 {
            return Err(ScratchError::InvalidConfig {
                detail: "slots_per_table must be positive".to_owned(),
            });
        }
        self.window.validate()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_window_matches_section_4c() {
        let w = WindowConfig::PAPER;
        assert_eq!(w.past, 3);
        assert_eq!(w.future, 2);
        assert_eq!(w.width(), 6);
        assert_eq!(w.max_bit(), 5);
        w.validate().expect("paper window valid");
    }

    #[test]
    fn sequential_window_is_width_one() {
        assert_eq!(WindowConfig::SEQUENTIAL.width(), 1);
    }

    #[test]
    fn oversized_window_rejected() {
        let w = WindowConfig {
            past: 20,
            future: 15,
        };
        assert!(w.validate().is_err());
    }

    #[test]
    fn builders_compose() {
        let c = PipelineConfig::functional(8, 100)
            .sequential()
            .with_policy(EvictionPolicy::Random);
        assert_eq!(c.window, WindowConfig::SEQUENTIAL);
        assert_eq!(c.policy, EvictionPolicy::Random);
        assert!(c.functional);
        c.validate().expect("valid");
    }

    #[test]
    fn analytic_mode_disables_functional() {
        let c = PipelineConfig::analytic(128, 1000);
        assert!(!c.functional);
        assert!(!c.check_hazards);
    }

    #[test]
    fn validation_rejects_degenerate_configs() {
        assert!(PipelineConfig::functional(0, 10).validate().is_err());
        assert!(PipelineConfig::functional(8, 0).validate().is_err());
    }
}
