//! Eviction policies and the victim pool.
//!
//! When the \[Plan\] stage misses, it must pick a victim among the slots
//! whose Hold mask is clear (paper Algorithm 1, `CHOOSE_VICTIM`). The
//! paper's default policy is LRU, with LFU and random eviction studied in
//! the §VI-E sensitivity analysis — ScratchPipe's performance is robust
//! across all three because *which* evictable slot is chosen never affects
//! correctness, only the future hit rate.

use std::collections::BTreeSet;

use serde::{Deserialize, Serialize};

/// Victim-selection policy among evictable slots.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum EvictionPolicy {
    /// Evict the least-recently-used evictable slot (paper default).
    Lru,
    /// Evict the least-frequently-used evictable slot.
    Lfu,
    /// Evict a pseudo-random evictable slot (deterministic per seed).
    Random,
}

impl EvictionPolicy {
    /// All policies, for ablation sweeps.
    pub const ALL: [EvictionPolicy; 3] = [
        EvictionPolicy::Lru,
        EvictionPolicy::Lfu,
        EvictionPolicy::Random,
    ];

    /// Display name.
    pub fn name(self) -> &'static str {
        match self {
            EvictionPolicy::Lru => "LRU",
            EvictionPolicy::Lfu => "LFU",
            EvictionPolicy::Random => "Random",
        }
    }
}

impl std::fmt::Display for EvictionPolicy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// The pool of currently evictable slots, ordered by policy priority.
///
/// The scratchpad manager inserts a slot when its Hold mask expires and
/// removes it when the slot is touched (protected) again; `pop` yields the
/// policy's preferred victim in `O(log n)`.
#[derive(Debug, Clone)]
pub struct VictimPool {
    policy: EvictionPolicy,
    ordered: BTreeSet<(u64, u32)>,
    in_pool: Vec<bool>,
    priority: Vec<u64>,
    tick: u64,
}

impl VictimPool {
    /// Creates an empty pool over `slots` slots.
    pub fn new(slots: usize, policy: EvictionPolicy) -> Self {
        VictimPool {
            policy,
            ordered: BTreeSet::new(),
            in_pool: vec![false; slots],
            priority: vec![0; slots],
            tick: 0,
        }
    }

    /// The policy this pool orders by.
    pub fn policy(&self) -> EvictionPolicy {
        self.policy
    }

    /// Number of evictable slots currently pooled.
    pub fn len(&self) -> usize {
        self.ordered.len()
    }

    /// True if no slot is evictable.
    pub fn is_empty(&self) -> bool {
        self.ordered.is_empty()
    }

    /// True if `slot` is currently pooled.
    pub fn contains(&self, slot: u32) -> bool {
        self.in_pool[slot as usize]
    }

    /// Records an access to `slot` at plan-cycle `cycle`, updating the
    /// policy metadata. Does **not** change pool membership — the manager
    /// removes touched slots separately because protection, not recency,
    /// governs membership — but a pooled slot is repositioned so the
    /// ordered set's keys stay consistent.
    pub fn touch(&mut self, slot: u32, cycle: u64) {
        let s = slot as usize;
        if self.in_pool[s] {
            self.ordered.remove(&(self.priority[s], slot));
        }
        match self.policy {
            EvictionPolicy::Lru => self.priority[s] = cycle,
            EvictionPolicy::Lfu => self.priority[s] += 1,
            EvictionPolicy::Random => {
                self.tick += 1;
                self.priority[s] = splitmix(slot as u64 ^ (self.tick << 20));
            }
        }
        if self.in_pool[s] {
            self.ordered.insert((self.priority[s], slot));
        }
    }

    /// Adds `slot` to the pool (idempotent).
    pub fn insert(&mut self, slot: u32) {
        let s = slot as usize;
        if self.in_pool[s] {
            return;
        }
        self.in_pool[s] = true;
        self.ordered.insert((self.priority[s], slot));
    }

    /// Removes `slot` from the pool if present.
    pub fn remove(&mut self, slot: u32) {
        let s = slot as usize;
        if !self.in_pool[s] {
            return;
        }
        self.in_pool[s] = false;
        let removed = self.ordered.remove(&(self.priority[s], slot));
        debug_assert!(removed, "pool bookkeeping out of sync for slot {slot}");
    }

    /// Pops the policy-preferred victim, or `None` if the pool is empty.
    pub fn pop(&mut self) -> Option<u32> {
        let &(p, slot) = self.ordered.iter().next()?;
        self.ordered.remove(&(p, slot));
        self.in_pool[slot as usize] = false;
        Some(slot)
    }
}

/// SplitMix64 — deterministic pseudo-random priorities.
fn splitmix(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = x;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lru_pops_oldest_touch() {
        let mut p = VictimPool::new(4, EvictionPolicy::Lru);
        p.touch(0, 10);
        p.touch(1, 5);
        p.touch(2, 20);
        for s in 0..3 {
            p.insert(s);
        }
        assert_eq!(p.pop(), Some(1));
        assert_eq!(p.pop(), Some(0));
        assert_eq!(p.pop(), Some(2));
        assert_eq!(p.pop(), None);
    }

    #[test]
    fn lfu_pops_least_frequent() {
        let mut p = VictimPool::new(4, EvictionPolicy::Lfu);
        for _ in 0..3 {
            p.touch(0, 0);
        }
        p.touch(1, 0);
        p.touch(2, 0);
        p.touch(2, 0);
        for s in 0..3 {
            p.insert(s);
        }
        assert_eq!(p.pop(), Some(1)); // freq 1
        assert_eq!(p.pop(), Some(2)); // freq 2
        assert_eq!(p.pop(), Some(0)); // freq 3
    }

    #[test]
    fn random_policy_is_deterministic_and_complete() {
        let run = || {
            let mut p = VictimPool::new(8, EvictionPolicy::Random);
            for s in 0..8 {
                p.touch(s, 0);
                p.insert(s);
            }
            let mut order = Vec::new();
            while let Some(s) = p.pop() {
                order.push(s);
            }
            order
        };
        let a = run();
        let b = run();
        assert_eq!(a, b, "deterministic");
        let mut sorted = a.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..8).collect::<Vec<_>>(), "complete");
        assert_ne!(a, sorted, "random order should not be identity");
    }

    #[test]
    fn membership_tracking() {
        let mut p = VictimPool::new(4, EvictionPolicy::Lru);
        assert!(p.is_empty());
        p.insert(2);
        assert!(p.contains(2));
        assert!(!p.contains(1));
        assert_eq!(p.len(), 1);
        p.remove(2);
        assert!(p.is_empty());
        // Idempotent operations.
        p.remove(2);
        p.insert(3);
        p.insert(3);
        assert_eq!(p.len(), 1);
    }

    #[test]
    fn touch_then_insert_uses_fresh_priority() {
        let mut p = VictimPool::new(2, EvictionPolicy::Lru);
        p.touch(0, 1);
        p.touch(1, 2);
        p.insert(0);
        p.insert(1);
        // Re-touch slot 0 outside the pool: must not corrupt ordering,
        // because the manager always removes before re-protecting.
        p.remove(0);
        p.touch(0, 99);
        p.insert(0);
        assert_eq!(p.pop(), Some(1));
        assert_eq!(p.pop(), Some(0));
    }

    #[test]
    fn policy_names() {
        assert_eq!(EvictionPolicy::Lru.to_string(), "LRU");
        assert_eq!(EvictionPolicy::ALL.len(), 3);
    }
}
