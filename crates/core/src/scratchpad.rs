//! The per-table scratchpad manager: Hit-Map + Hold masks + victim pool.
//!
//! Paper §IV-G notes that ScratchPipe manages its GPU cache *per embedding
//! table*; a [`ScratchpadManager`] is one such instance. Its central
//! operation is [`ScratchpadManager::plan`] — the \[Plan\] stage of
//! Algorithm 1:
//!
//! 1. advance the sliding window by one plan cycle,
//! 2. query the [`HitMap`] for every unique ID of the current mini-batch;
//!    hits are re-protected, misses are assigned a slot (a never-used free
//!    slot, or an evictable victim chosen by the [`VictimPool`]),
//! 3. register the next `future` mini-batches' cached IDs so upcoming
//!    batches' rows cannot be evicted from under them (removes RAW-④),
//! 4. emit a [`TablePlan`]: which rows to fetch from the CPU table
//!    (\[Collect\]/\[Insert\] fills), which dirty rows to write back
//!    (evictions), and the full ID→slot assignment the \[Train\] stage
//!    will use.
//!
//! Victim selection is `O(log n)` via expiry buckets: whenever a slot is
//! protected, the cycle at which its Hold mask clears is computed and the
//! slot is queued in a bucket for that cycle; each `plan` drains the due
//! buckets into the policy-ordered pool.

use std::collections::VecDeque;

use crate::config::WindowConfig;
use crate::error::ScratchError;
use crate::hitmap::HitMap;
use crate::holdmask::HoldMask;
use crate::policy::{EvictionPolicy, VictimPool};

/// A scheduled fill: fetch `row` from the CPU table into scratchpad `slot`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Fill {
    /// Sparse feature ID (CPU-table row) to fetch.
    pub row: u64,
    /// Destination scratchpad slot.
    pub slot: u32,
}

/// A scheduled eviction: write the dirty contents of `slot` (row `row`)
/// back to the CPU table.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Evict {
    /// Sparse feature ID (CPU-table row) being evicted.
    pub row: u64,
    /// Scratchpad slot it occupied.
    pub slot: u32,
}

/// The \[Plan\] stage's output for one table and one mini-batch.
///
/// The batch's address translation is a **deduplicated flat layout**
/// rather than a per-ID hash map: `unique_ids[k]` (the batch's unique IDs
/// in plan order — ascending for every pipeline-produced plan, since the
/// driver feeds `TableBag::unique_ids`) is cached in scratchpad slot
/// `unique_slots[k]`, and every raw lookup `j` of the batch resolves
/// through `lookup_unique[j]` (an index into the unique vectors, filled
/// in by [`crate::stages::index_lookups`]). The Train gather thus reads
/// each unique row once and fans out through a `u32` indirection instead
/// of paying a hash probe per raw lookup, and Collect stages each missed
/// row exactly once.
#[derive(Debug, Clone, Default)]
pub struct TablePlan {
    /// The batch's unique IDs, in plan order (hits and fills alike).
    pub unique_ids: Vec<u64>,
    /// Scratchpad slot caching `unique_ids[k]`, aligned with `unique_ids`.
    pub unique_slots: Vec<u32>,
    /// Per-raw-lookup index into `unique_ids`/`unique_slots`, in bag
    /// order; empty until [`crate::stages::index_lookups`] runs.
    pub lookup_unique: Vec<u32>,
    /// Rows to prefetch from the CPU table.
    pub fills: Vec<Fill>,
    /// Dirty rows to write back to the CPU table.
    pub evictions: Vec<Evict>,
    /// Unique IDs that hit in the Hit-Map.
    pub hits: u64,
    /// Unique IDs that missed.
    pub misses: u64,
}

impl TablePlan {
    /// Number of unique IDs this plan covers.
    pub fn num_unique(&self) -> usize {
        self.unique_ids.len()
    }

    /// Slot assigned to `id`, if it is part of this plan.
    ///
    /// Binary-searches `unique_ids`, so it requires the plan to have been
    /// built from an ascending `current` slice (true for every plan the
    /// pipeline produces).
    pub fn slot_of(&self, id: u64) -> Option<u32> {
        debug_assert!(
            self.unique_ids.windows(2).all(|w| w[0] <= w[1]),
            "slot_of needs sorted ids"
        );
        self.unique_ids
            .binary_search(&id)
            .ok()
            .map(|k| self.unique_slots[k])
    }

    /// Iterates `(id, slot)` pairs in plan order.
    pub fn assignments(&self) -> impl Iterator<Item = (u64, u32)> + '_ {
        self.unique_ids
            .iter()
            .zip(self.unique_slots.iter())
            .map(|(&id, &slot)| (id, slot))
    }
}

/// Cumulative statistics of one scratchpad.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ScratchpadStats {
    /// Unique-ID hits across all plans.
    pub hits: u64,
    /// Unique-ID misses (= fills) across all plans.
    pub misses: u64,
    /// Evictions (write-backs) across all plans.
    pub evictions: u64,
    /// Peak number of slots simultaneously protected or pending
    /// (the §VI-D working-set measurement).
    pub peak_held: usize,
}

/// Cache metadata manager for one embedding table.
#[derive(Debug, Clone)]
pub struct ScratchpadManager {
    slots: usize,
    window: WindowConfig,
    hit_map: HitMap,
    hold: HoldMask,
    slot_row: Vec<Option<u64>>,
    pool: VictimPool,
    free: Vec<u32>,
    expiry: VecDeque<Vec<u32>>,
    expiry_base: u64,
    stats: ScratchpadStats,
    /// Reusable per-plan probe cache: the protection pass records each
    /// current ID's Hit-Map result here so the planning pass below never
    /// probes the same ID twice.
    probe: Vec<Option<u32>>,
}

impl ScratchpadManager {
    /// Creates a manager with `slots` cache slots.
    ///
    /// # Errors
    ///
    /// Returns [`ScratchError::InvalidConfig`] for zero slots or an
    /// oversized window.
    pub fn new(
        slots: usize,
        window: WindowConfig,
        policy: EvictionPolicy,
    ) -> Result<Self, ScratchError> {
        if slots == 0 {
            return Err(ScratchError::InvalidConfig {
                detail: "scratchpad needs at least one slot".to_owned(),
            });
        }
        window.validate()?;
        Ok(ScratchpadManager {
            slots,
            window,
            hit_map: HitMap::with_capacity(slots),
            hold: HoldMask::new(slots, window.width()),
            slot_row: vec![None; slots],
            pool: VictimPool::new(slots, policy),
            // Stack of never-used slots, popped in ascending order.
            free: (0..slots as u32).rev().collect(),
            expiry: VecDeque::new(),
            expiry_base: 0,
            stats: ScratchpadStats::default(),
            probe: Vec::new(),
        })
    }

    /// Number of slots.
    pub fn slots(&self) -> usize {
        self.slots
    }

    /// Number of rows currently mapped.
    pub fn occupancy(&self) -> usize {
        self.hit_map.len()
    }

    /// Cumulative statistics.
    pub fn stats(&self) -> ScratchpadStats {
        self.stats
    }

    /// Lifetime unique-ID hit rate.
    pub fn hit_rate(&self) -> f64 {
        let total = self.stats.hits + self.stats.misses;
        if total == 0 {
            0.0
        } else {
            self.stats.hits as f64 / total as f64
        }
    }

    /// The row currently mapped to `slot`, if any.
    pub fn slot_row(&self, slot: u32) -> Option<u64> {
        self.slot_row[slot as usize]
    }

    /// The slot currently mapped to `row`, if cached.
    pub fn lookup(&self, row: u64) -> Option<u32> {
        self.hit_map.peek(row)
    }

    /// All `(row, slot)` pairs currently resident, sorted by row (used by
    /// the final flush back to CPU tables).
    pub fn residents(&self) -> Vec<(u64, u32)> {
        let mut v: Vec<(u64, u32)> = self.hit_map.iter().collect();
        v.sort_unstable();
        v
    }

    /// Protects `slot` through the `bit`-th upcoming plan cycle and queues
    /// its new expiry.
    fn protect(&mut self, slot: u32, bit: u32) {
        self.hold.set_bit(slot, bit);
        self.pool.remove(slot);
        let expiry = self.hold.first_clear_cycle(slot);
        self.queue_expiry(slot, expiry);
    }

    fn queue_expiry(&mut self, slot: u32, at_cycle: u64) {
        debug_assert!(at_cycle >= self.expiry_base);
        let idx = (at_cycle - self.expiry_base) as usize;
        while self.expiry.len() <= idx {
            self.expiry.push_back(Vec::new());
        }
        self.expiry[idx].push(slot);
    }

    /// Drains due expiry buckets into the victim pool.
    fn refresh_pool(&mut self, now: u64) {
        while self.expiry_base <= now {
            let Some(bucket) = self.expiry.pop_front() else {
                self.expiry_base = now + 1;
                break;
            };
            self.expiry_base += 1;
            for slot in bucket {
                // A later re-protection may have superseded this entry.
                if self.hold.is_clear(slot)
                    && self.slot_row[slot as usize].is_some()
                    && !self.pool.contains(slot)
                {
                    self.pool.insert(slot);
                }
            }
        }
    }

    /// Pre-fills free slots with `rows` (hottest first), marking them
    /// immediately evictable. This reproduces the steady-state cache
    /// content a long warm-up run would converge to, so short simulations
    /// measure steady-state eviction traffic instead of cold-fill traffic.
    ///
    /// # Panics
    ///
    /// Panics if called after planning has started or with duplicate rows.
    pub fn prewarm(&mut self, rows: &[u64]) {
        assert_eq!(self.hold.cycle(), 0, "prewarm must precede planning");
        // Fill coldest-first so that the victim pool's tie-breaking (by
        // slot index) evicts the coldest prewarmed rows first.
        for &row in rows.iter().rev() {
            let Some(slot) = self.free.pop() else { break };
            self.hit_map.insert(row, slot);
            self.slot_row[slot as usize] = Some(row);
            self.pool.insert(slot);
        }
    }

    /// Executes the \[Plan\] stage for one mini-batch of this table.
    ///
    /// * `current` — the batch's unique row IDs (deduplicated; order sets
    ///   the deterministic processing order).
    /// * `futures` — unique row IDs of the next `window.future` batches,
    ///   nearest first (fewer are allowed near the end of a trace).
    ///
    /// # Errors
    ///
    /// Returns [`ScratchError::CapacityExhausted`] if a miss finds no free
    /// or evictable slot — the §VI-D provisioning rule was violated.
    pub fn plan(&mut self, current: &[u64], futures: &[&[u64]]) -> Result<TablePlan, ScratchError> {
        self.hold.advance();
        let now = self.hold.cycle();
        self.refresh_pool(now);

        let mut out = TablePlan::default();
        let past_bit = self.window.past;

        // Protection must precede any victim selection. The paper's
        // exclusion superset covers the *current* batch and the future
        // window (§IV-C "three previous, one current, and two future"):
        //
        // * current-batch cached rows — otherwise an early miss in this
        //   very batch could evict a row a later ID of the same batch
        //   hits on (an intra-batch RAW);
        // * future-window cached rows — otherwise an in-flight CPU
        //   write-back could race a re-fetch (RAW-④).
        //
        // Rows a future batch needs but which are not yet cached need no
        // shield, and rows the current batch inserts below carry their own
        // current-batch protection long enough for any in-window batch to
        // re-protect them on hit.
        //
        // The probe result is cached per current ID: protection runs
        // before any victim selection, and every protected slot is exempt
        // from eviction for the rest of this plan, so a hit seen here is
        // still a hit (in the same slot) in the planning pass below.
        let mut probe = std::mem::take(&mut self.probe);
        probe.clear();
        probe.extend(current.iter().map(|&id| self.hit_map.peek(id)));
        for cached in probe.iter().flatten() {
            self.protect(*cached, past_bit);
        }
        let max_k = self.window.future.min(futures.len() as u32);
        for k in 1..=max_k {
            let bit = past_bit + k;
            for &id in futures[(k - 1) as usize] {
                if let Some(slot) = self.hit_map.peek(id) {
                    self.protect(slot, bit);
                }
            }
        }

        out.unique_ids.extend_from_slice(current);
        out.unique_slots.reserve(current.len());
        for (&id, &cached) in current.iter().zip(probe.iter()) {
            let slot = if let Some(slot) = cached {
                self.hit_map.record(true);
                out.hits += 1;
                self.pool.touch(slot, now);
                slot
            } else {
                self.hit_map.record(false);
                out.misses += 1;
                let slot = match self.free.pop().or_else(|| self.pool.pop()) {
                    Some(s) => s,
                    None => {
                        return Err(ScratchError::CapacityExhausted {
                            table: usize::MAX, // caller contextualizes
                            cycle: now,
                            slots: self.slots,
                        });
                    }
                };
                if let Some(old_row) = self.slot_row[slot as usize] {
                    let removed = self.hit_map.remove(old_row);
                    debug_assert_eq!(removed, Some(slot), "hit-map out of sync");
                    out.evictions.push(Evict { row: old_row, slot });
                    self.stats.evictions += 1;
                }
                self.slot_row[slot as usize] = Some(id);
                self.hit_map.insert(id, slot);
                self.pool.touch(slot, now);
                self.protect(slot, past_bit);
                out.fills.push(Fill { row: id, slot });
                slot
            };
            out.unique_slots.push(slot);
        }
        self.probe = probe;
        self.stats.hits += out.hits;
        self.stats.misses += out.misses;

        let held = self.slots - self.free.len() - self.pool.len();
        self.stats.peak_held = self.stats.peak_held.max(held);
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mgr(slots: usize, window: WindowConfig) -> ScratchpadManager {
        ScratchpadManager::new(slots, window, EvictionPolicy::Lru).expect("valid")
    }

    #[test]
    fn cold_misses_use_free_slots_in_order() {
        let mut m = mgr(4, WindowConfig::SEQUENTIAL);
        let plan = m.plan(&[10, 20], &[]).unwrap();
        assert_eq!(plan.misses, 2);
        assert_eq!(plan.hits, 0);
        assert!(plan.evictions.is_empty());
        assert_eq!(
            plan.fills,
            vec![Fill { row: 10, slot: 0 }, Fill { row: 20, slot: 1 }]
        );
        assert_eq!(m.occupancy(), 2);
    }

    #[test]
    fn repeat_access_hits() {
        let mut m = mgr(4, WindowConfig::SEQUENTIAL);
        let _ = m.plan(&[10, 20], &[]).unwrap();
        let plan = m.plan(&[10, 30], &[]).unwrap();
        assert_eq!(plan.hits, 1);
        assert_eq!(plan.misses, 1);
        assert_eq!(plan.slot_of(10), Some(0));
        assert!((m.hit_rate() - 0.25).abs() < 1e-12);
    }

    #[test]
    fn unique_layout_aligned_with_input_order() {
        let mut m = mgr(4, WindowConfig::SEQUENTIAL);
        let _ = m.plan(&[10, 20], &[]).unwrap();
        let plan = m.plan(&[10, 20, 30], &[]).unwrap();
        assert_eq!(plan.unique_ids, vec![10, 20, 30]);
        assert_eq!(plan.unique_slots.len(), 3);
        for (k, (id, slot)) in plan.assignments().enumerate() {
            assert_eq!(id, plan.unique_ids[k]);
            assert_eq!(slot, plan.unique_slots[k]);
            assert_eq!(m.lookup(id), Some(slot));
        }
        assert_eq!(plan.num_unique(), 3);
        assert_eq!(plan.slot_of(99), None);
        assert!(plan.lookup_unique.is_empty(), "filled by stages layer");
    }

    #[test]
    fn eviction_after_protection_expires() {
        // Sequential window: slots free one plan after use.
        let mut m = mgr(2, WindowConfig::SEQUENTIAL);
        let _ = m.plan(&[1, 2], &[]).unwrap();
        let plan = m.plan(&[3], &[]).unwrap();
        // Slot 0 (row 1, LRU-oldest) is evicted.
        assert_eq!(plan.evictions, vec![Evict { row: 1, slot: 0 }]);
        assert_eq!(plan.fills, vec![Fill { row: 3, slot: 0 }]);
        assert_eq!(m.lookup(1), None);
        assert_eq!(m.lookup(3), Some(0));
        assert_eq!(m.lookup(2), Some(1));
    }

    #[test]
    fn paper_window_protects_past_three_batches() {
        // With the paper window, rows planned in the last 3 batches must
        // never be evicted.
        let mut m = mgr(4, WindowConfig::PAPER);
        let _ = m.plan(&[1], &[]).unwrap(); // batch 0 → slot 0
        let _ = m.plan(&[2], &[]).unwrap(); // batch 1 → slot 1
        let _ = m.plan(&[3], &[]).unwrap(); // batch 2 → slot 2
        let _ = m.plan(&[4], &[]).unwrap(); // batch 3 → slot 3
                                            // Batch 4: all four slots belong to batches 1..4's window? Batch 0's
                                            // slot (row 1) expired: protection lasted through plan cycle 1+3=4,
                                            // so at cycle 5 it is evictable.
        let plan = m.plan(&[5], &[]).unwrap();
        assert_eq!(plan.evictions, vec![Evict { row: 1, slot: 0 }]);
    }

    #[test]
    fn capacity_exhausted_when_window_holds_everything() {
        let mut m = mgr(2, WindowConfig::PAPER);
        let _ = m.plan(&[1, 2], &[]).unwrap();
        // Batch 1 needs two new slots but slots 0, 1 are held (past window).
        let err = m.plan(&[3, 4], &[]).unwrap_err();
        assert!(matches!(err, ScratchError::CapacityExhausted { .. }));
    }

    #[test]
    fn future_registration_blocks_eviction() {
        let mut m = mgr(2, WindowConfig { past: 0, future: 2 });
        let _ = m.plan(&[1, 2], &[]).unwrap();
        // Next plan: the batch after next (future slot k=2) needs row 1.
        // Without registration, row 1 (slot 0) would be the LRU victim;
        // registration runs *before* victim selection, so eviction must
        // fall on row 2 instead.
        let future1: &[u64] = &[];
        let future2: &[u64] = &[1];
        let plan = m.plan(&[3], &[future1, future2]).unwrap();
        assert_eq!(plan.evictions, vec![Evict { row: 2, slot: 1 }]);
        assert_eq!(m.lookup(1), Some(0), "future-registered row survives");
        assert_eq!(m.lookup(3), Some(1));
    }

    #[test]
    fn same_batch_ids_never_evict_each_other() {
        // Algorithm 1: ids processed earlier in the batch set their hold
        // bit immediately, so later misses cannot victimize them.
        let mut m = mgr(2, WindowConfig::SEQUENTIAL);
        let _ = m.plan(&[1, 2], &[]).unwrap();
        let plan = m.plan(&[3, 4], &[]).unwrap();
        // Both old rows evicted, but 3 and 4 end up in distinct slots.
        assert_eq!(plan.evictions.len(), 2);
        let s3 = m.lookup(3).unwrap();
        let s4 = m.lookup(4).unwrap();
        assert_ne!(s3, s4);
    }

    #[test]
    fn lru_policy_picks_oldest_evictable() {
        let mut m = mgr(3, WindowConfig::SEQUENTIAL);
        let _ = m.plan(&[1], &[]).unwrap();
        let _ = m.plan(&[2], &[]).unwrap();
        let _ = m.plan(&[3], &[]).unwrap();
        let plan = m.plan(&[4], &[]).unwrap();
        assert_eq!(plan.evictions[0].row, 1, "LRU evicts the oldest");
        // Touch row 2, then insert: row 3 becomes oldest untouched.
        let _ = m.plan(&[2], &[]).unwrap();
        let plan = m.plan(&[5], &[]).unwrap();
        assert_eq!(plan.evictions[0].row, 3);
    }

    #[test]
    fn stats_accumulate() {
        let mut m = mgr(2, WindowConfig::SEQUENTIAL);
        let _ = m.plan(&[1, 2], &[]).unwrap();
        let _ = m.plan(&[1, 3], &[]).unwrap();
        let s = m.stats();
        assert_eq!(s.hits, 1);
        assert_eq!(s.misses, 3);
        assert_eq!(s.evictions, 1);
        assert!(s.peak_held >= 2);
    }

    #[test]
    fn residents_sorted_by_row() {
        let mut m = mgr(4, WindowConfig::SEQUENTIAL);
        let _ = m.plan(&[30, 10, 20], &[]).unwrap();
        let rows: Vec<u64> = m.residents().iter().map(|&(r, _)| r).collect();
        assert_eq!(rows, vec![10, 20, 30]);
    }

    #[test]
    fn zero_slots_rejected() {
        assert!(ScratchpadManager::new(0, WindowConfig::PAPER, EvictionPolicy::Lru).is_err());
    }

    #[test]
    fn deterministic_across_runs() {
        let run = || {
            // 24 slots ≥ the worst-case window working set (6 batches × 3
            // unique ids), per the §VI-D provisioning rule; 31 distinct
            // rows ensure steady eviction churn.
            let mut m = mgr(24, WindowConfig::PAPER);
            let mut log = Vec::new();
            let batches: Vec<Vec<u64>> = (0..20u64)
                .map(|i| vec![i % 31, (i * 5) % 31, (i * 11) % 31])
                .map(|mut v| {
                    v.sort_unstable();
                    v.dedup();
                    v
                })
                .collect();
            for (i, b) in batches.iter().enumerate() {
                let f1 = batches.get(i + 1).map(|v| v.as_slice()).unwrap_or(&[]);
                let f2 = batches.get(i + 2).map(|v| v.as_slice()).unwrap_or(&[]);
                let plan = m.plan(b, &[f1, f2]).unwrap();
                log.push((plan.fills.clone(), plan.evictions.clone()));
            }
            log
        };
        assert_eq!(run(), run());
    }

    proptest::proptest! {
        /// Invariant: after any plan sequence, the Hit-Map and slot_row are
        /// mutually consistent and every current-batch ID is mapped.
        #[test]
        fn hitmap_and_slots_stay_consistent(
            batches in proptest::collection::vec(
                proptest::collection::btree_set(0u64..50, 1..6), 1..30)
        ) {
            let mut m = mgr(32, WindowConfig::PAPER);
            let batches: Vec<Vec<u64>> =
                batches.into_iter().map(|s| s.into_iter().collect()).collect();
            for (i, b) in batches.iter().enumerate() {
                let f1 = batches.get(i + 1).map(|v| v.as_slice()).unwrap_or(&[]);
                let f2 = batches.get(i + 2).map(|v| v.as_slice()).unwrap_or(&[]);
                let plan = m.plan(b, &[f1, f2]).unwrap();
                // Every batch id has an assignment.
                for id in b {
                    let slot = plan.slot_of(*id).expect("planned id has a slot");
                    proptest::prop_assert_eq!(m.lookup(*id), Some(slot));
                    proptest::prop_assert_eq!(m.slot_row(slot), Some(*id));
                }
                // fills + hits == unique ids
                proptest::prop_assert_eq!(
                    plan.fills.len() as u64 + plan.hits, b.len() as u64);
            }
            // Global consistency: hit_map ↔ slot_row bijection.
            for (row, slot) in m.residents() {
                proptest::prop_assert_eq!(m.slot_row(slot), Some(row));
            }
        }
    }
}
