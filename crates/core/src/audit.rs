//! Structured audit events for pipeline runs.
//!
//! Every [`Pipeline`](crate::pipeline::Pipeline) run can emit a JSONL
//! audit stream — one JSON object per line — to an [`AuditSink`]. The
//! stream is the run's ground truth: per-iteration stage timings and
//! [`StageTraffic`](crate::runtime::StageTraffic), hit/evict counts, and
//! a closing summary from which the benchmark numbers (iterations/sec,
//! bytes staged, hit rate) are reproducible without re-running.
//!
//! # Event schema
//!
//! Every line carries the envelope fields `event`, `run_id`, `run`
//! (descriptor name) and `seq` (line number within the run, from 0).
//! See `docs/runtime-api.md` for the full field tables:
//!
//! * `run_started` — schedule, iteration count and the pipeline
//!   configuration.
//! * `iteration` — one per mini-batch: the serialized
//!   [`IterationRecord`](crate::runtime::IterationRecord) (index, hits,
//!   misses, evictions, total_lookups, unique_rows, loss, per-stage
//!   `traffic`) plus `stage_nanos`, a map of per-stage wall-clock
//!   nanoseconds, and — when a stage sharded work over a
//!   [`WorkerPool`](crate::workers::WorkerPool) — `stage_shards`, a map
//!   from stage name to the per-shard wall-clock nanoseconds of every
//!   shard task that stage ran (omitted entirely when no stage sharded).
//! * `run_completed` — elapsed nanoseconds, flush traffic, peak held
//!   slots, hit rate and mean loss.
//!
//! Fault injection and the supervised recovery runtime add five more
//! kinds, all stamped with the same envelope:
//!
//! * `fault_injected` — one per fired fault: iteration, attempt, stage,
//!   fault kind and shard.
//! * `iteration_rolled_back` — a segment attempt failed and its state was
//!   rolled back to the checkpoint (iteration, attempt, cause).
//! * `stage_retried` — the rolled-back segment will retry on the same
//!   schedule rung (iteration, attempt, schedule).
//! * `schedule_degraded` — a rung exhausted its retry budget and the run
//!   degraded down the ladder (iteration, `from`, `to`).
//! * `run_aborted` — terminal event of a failed supervised run:
//!   iteration (first uncommitted), committed count, attempts on the
//!   final rung, schedule and cause. Replaces `run_completed`.
//!
//! Events serialize through the same [`serde::Serialize`] path as
//! [`PipelineReport`](crate::runtime::PipelineReport), so the audit
//! stream and report JSON never disagree on field names.

use std::fmt;
use std::fs::File;
use std::io::{self, BufWriter, Write as _};
use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use parking_lot::Mutex;
use serde::{Serialize, Value};

use crate::faults::InjectionRecord;
use crate::runtime::{IterationRecord, PipelineReport};

/// Destination for audit JSONL lines. Implementors must tolerate being
/// handed one complete JSON object per `write_line` call and must not
/// add or reorder content (the line *is* the event).
pub trait AuditSink: Send {
    /// Writes one complete JSON object (no trailing newline included).
    fn write_line(&mut self, line: &str);

    /// Flushes buffered lines; called once when a run completes.
    fn flush(&mut self) {}

    /// Lines this sink failed to deliver so far. Lossless sinks (the
    /// default) report 0; [`FileSink`] counts failed writes. The emitter
    /// samples this just before the terminal `run_completed` /
    /// `run_aborted` event, so truncation is detectable *from the stream
    /// itself*, not only in-process.
    fn dropped_lines(&self) -> u64 {
        0
    }
}

/// An in-memory [`AuditSink`] for tests and for deriving benchmark
/// numbers from the audit stream without touching the filesystem.
/// Cloning shares the underlying line buffer.
#[derive(Debug, Clone, Default)]
pub struct MemorySink {
    lines: Arc<Mutex<Vec<String>>>,
}

impl MemorySink {
    /// Creates an empty sink.
    pub fn new() -> Self {
        Self::default()
    }

    /// A snapshot of every line written so far.
    pub fn lines(&self) -> Vec<String> {
        self.lines.lock().clone()
    }
}

impl AuditSink for MemorySink {
    fn write_line(&mut self, line: &str) {
        self.lines.lock().push(line.to_owned());
    }
}

/// A buffered [`AuditSink`] writing one JSON object per line, usually to
/// a file.
///
/// # Write-failure semantics
///
/// Audit output is best-effort observability: a failed write must never
/// panic or poison a training run. A line whose write errors is dropped
/// and counted — [`FileSink::dropped_lines`] exposes the count (shareable
/// via [`FileSink::dropped_counter`] since the sink itself moves into the
/// pipeline), so callers that care can tell a clean stream from a
/// truncated one after the run.
pub struct FileSink {
    writer: Box<dyn io::Write + Send>,
    dropped: Arc<AtomicU64>,
}

impl fmt::Debug for FileSink {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("FileSink")
            .field("dropped", &self.dropped.load(Ordering::Relaxed))
            .finish()
    }
}

impl FileSink {
    /// Creates (or truncates) the file at `path`.
    ///
    /// # Errors
    ///
    /// Propagates the underlying I/O error.
    pub fn create(path: impl AsRef<Path>) -> std::io::Result<Self> {
        Ok(Self::from_writer(BufWriter::new(File::create(path)?)))
    }

    /// Wraps an arbitrary writer (tests use this to exercise the
    /// write-failure contract without a filesystem).
    pub fn from_writer(writer: impl io::Write + Send + 'static) -> Self {
        FileSink {
            writer: Box::new(writer),
            dropped: Arc::new(AtomicU64::new(0)),
        }
    }

    /// Lines dropped because the underlying writer errored.
    pub fn dropped_lines(&self) -> u64 {
        self.dropped.load(Ordering::Relaxed)
    }

    /// A handle to the dropped-line counter that stays readable after
    /// the sink is boxed into a pipeline.
    pub fn dropped_counter(&self) -> Arc<AtomicU64> {
        Arc::clone(&self.dropped)
    }
}

impl AuditSink for FileSink {
    fn write_line(&mut self, line: &str) {
        if writeln!(self.writer, "{line}").is_err() {
            self.dropped.fetch_add(1, Ordering::Relaxed);
        }
    }

    fn flush(&mut self) {
        let _ = self.writer.flush();
    }

    fn dropped_lines(&self) -> u64 {
        self.dropped.load(Ordering::Relaxed)
    }
}

/// Process-wide counter making [`RunDescriptor::fresh`] IDs unique.
static RUN_COUNTER: AtomicU64 = AtomicU64::new(0);

/// Identity of one pipeline run, stamped on every audit event.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RunDescriptor {
    /// Unique-per-process run ID (`<pid>-<counter>`).
    pub run_id: String,
    /// Human-readable run name (defaults to `"pipeline"`).
    pub name: String,
}

impl RunDescriptor {
    /// Allocates a fresh descriptor with a unique `run_id`.
    pub fn fresh(name: &str) -> Self {
        let n = RUN_COUNTER.fetch_add(1, Ordering::Relaxed);
        RunDescriptor {
            run_id: format!("{}-{}", std::process::id(), n),
            name: name.to_owned(),
        }
    }
}

/// Emits the audit event stream for one pipeline. Holds the optional
/// sink; with no sink every emit is a no-op.
pub struct AuditEmitter {
    sink: Option<Box<dyn AuditSink>>,
    descriptor: RunDescriptor,
    seq: u64,
}

impl fmt::Debug for AuditEmitter {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("AuditEmitter")
            .field("enabled", &self.sink.is_some())
            .field("descriptor", &self.descriptor)
            .field("seq", &self.seq)
            .finish()
    }
}

impl AuditEmitter {
    /// An emitter writing to `sink` under `descriptor`'s identity.
    pub fn new(sink: Box<dyn AuditSink>, descriptor: RunDescriptor) -> Self {
        AuditEmitter {
            sink: Some(sink),
            descriptor,
            seq: 0,
        }
    }

    /// An emitter that drops every event.
    pub fn disabled() -> Self {
        AuditEmitter {
            sink: None,
            descriptor: RunDescriptor {
                run_id: String::new(),
                name: String::new(),
            },
            seq: 0,
        }
    }

    /// Whether a sink is attached.
    pub fn enabled(&self) -> bool {
        self.sink.is_some()
    }

    /// Serializes one event: the envelope (`event`, `run_id`, `run`,
    /// `seq`) followed by `fields`, as a single JSON line.
    fn emit(&mut self, event: &str, fields: Vec<(String, Value)>) {
        let Some(sink) = self.sink.as_mut() else {
            return;
        };
        let mut entries = vec![
            ("event".to_owned(), Value::Str(event.to_owned())),
            (
                "run_id".to_owned(),
                Value::Str(self.descriptor.run_id.clone()),
            ),
            ("run".to_owned(), Value::Str(self.descriptor.name.clone())),
            ("seq".to_owned(), Value::UInt(self.seq)),
        ];
        entries.extend(fields);
        if let Ok(line) = serde_json::to_string(&Value::Map(entries)) {
            sink.write_line(&line);
            self.seq += 1;
        }
    }

    /// Emits the `run_started` event.
    pub fn run_started(
        &mut self,
        schedule: &str,
        iterations: usize,
        num_tables: usize,
        config: &crate::config::PipelineConfig,
    ) {
        if self.sink.is_none() {
            return;
        }
        self.emit(
            "run_started",
            vec![
                ("schedule".to_owned(), Value::Str(schedule.to_owned())),
                ("iterations".to_owned(), Value::UInt(iterations as u64)),
                ("num_tables".to_owned(), Value::UInt(num_tables as u64)),
                ("dim".to_owned(), Value::UInt(config.dim as u64)),
                (
                    "slots_per_table".to_owned(),
                    Value::UInt(config.slots_per_table as u64),
                ),
                (
                    "policy".to_owned(),
                    Value::Str(config.policy.name().to_owned()),
                ),
                (
                    "window".to_owned(),
                    Value::Seq(vec![
                        Value::UInt(u64::from(config.window.past)),
                        Value::UInt(u64::from(config.window.future)),
                    ]),
                ),
                ("functional".to_owned(), Value::Bool(config.functional)),
            ],
        );
    }

    /// Emits one `iteration` event: the serialized record plus the
    /// per-stage wall-clock timings and, for stages that sharded work
    /// over a worker pool, the per-shard timing breakdown (`shards[s]`
    /// aligns with `stage_names[s]`; empty entries are omitted).
    pub fn iteration(
        &mut self,
        record: &IterationRecord,
        stage_names: &[&str],
        nanos: &[u64],
        shards: &[Vec<u64>],
    ) {
        if self.sink.is_none() {
            return;
        }
        let mut fields = match record.to_value() {
            Value::Map(entries) => entries,
            other => vec![("record".to_owned(), other)],
        };
        let timing: Vec<(String, Value)> = stage_names
            .iter()
            .zip(nanos)
            .map(|(name, &ns)| ((*name).to_owned(), Value::UInt(ns)))
            .collect();
        fields.push(("stage_nanos".to_owned(), Value::Map(timing)));
        let shard_map: Vec<(String, Value)> = stage_names
            .iter()
            .zip(shards)
            .filter(|(_, s)| !s.is_empty())
            .map(|(name, s)| {
                (
                    (*name).to_owned(),
                    Value::Seq(s.iter().map(|&ns| Value::UInt(ns)).collect()),
                )
            })
            .collect();
        if !shard_map.is_empty() {
            fields.push(("stage_shards".to_owned(), Value::Map(shard_map)));
        }
        self.emit("iteration", fields);
    }

    /// Emits the closing `run_completed` event and flushes the sink.
    /// `dropped_lines` is the sink's drop counter sampled just before
    /// this line is written — lines lost *before* the summary; whether
    /// the summary itself lands is the reader's to observe.
    pub fn run_completed(&mut self, report: &PipelineReport, elapsed_ns: u64, schedule: &str) {
        let Some(sink) = self.sink.as_ref() else {
            return;
        };
        let dropped = sink.dropped_lines();
        self.emit(
            "run_completed",
            vec![
                ("dropped_lines".to_owned(), Value::UInt(dropped)),
                (
                    "iterations".to_owned(),
                    Value::UInt(report.iterations as u64),
                ),
                ("elapsed_ns".to_owned(), Value::UInt(elapsed_ns)),
                ("schedule".to_owned(), Value::Str(schedule.to_owned())),
                ("flush_traffic".to_owned(), report.flush_traffic.to_value()),
                (
                    "peak_held_slots".to_owned(),
                    report.peak_held_slots.to_value(),
                ),
                ("hit_rate".to_owned(), Value::Float(report.hit_rate())),
                (
                    "mean_loss".to_owned(),
                    Value::Float(f64::from(report.mean_loss())),
                ),
            ],
        );
        if let Some(sink) = self.sink.as_mut() {
            sink.flush();
        }
    }

    /// Emits one `fault_injected` event for a fault the injector fired.
    pub fn fault_injected(&mut self, record: &InjectionRecord) {
        if self.sink.is_none() {
            return;
        }
        self.emit(
            "fault_injected",
            vec![
                ("iteration".to_owned(), Value::UInt(record.iteration as u64)),
                ("attempt".to_owned(), Value::UInt(u64::from(record.attempt))),
                ("stage".to_owned(), Value::Str(record.stage.clone())),
                ("kind".to_owned(), Value::Str(record.kind.name().to_owned())),
                ("shard".to_owned(), Value::UInt(record.shard as u64)),
            ],
        );
    }

    /// Emits one `iteration_rolled_back` event: the segment starting at
    /// `iteration` failed its `attempt`-th attempt and was restored to
    /// the checkpoint.
    pub fn iteration_rolled_back(&mut self, iteration: usize, attempt: u32, cause: &str) {
        if self.sink.is_none() {
            return;
        }
        self.emit(
            "iteration_rolled_back",
            vec![
                ("iteration".to_owned(), Value::UInt(iteration as u64)),
                ("attempt".to_owned(), Value::UInt(u64::from(attempt))),
                ("cause".to_owned(), Value::Str(cause.to_owned())),
            ],
        );
    }

    /// Emits one `stage_retried` event: the rolled-back segment will run
    /// again on the same schedule rung.
    pub fn stage_retried(&mut self, iteration: usize, attempt: u32, schedule: &str) {
        if self.sink.is_none() {
            return;
        }
        self.emit(
            "stage_retried",
            vec![
                ("iteration".to_owned(), Value::UInt(iteration as u64)),
                ("attempt".to_owned(), Value::UInt(u64::from(attempt))),
                ("schedule".to_owned(), Value::Str(schedule.to_owned())),
            ],
        );
    }

    /// Emits one `schedule_degraded` event: `from` exhausted its retry
    /// budget and the run moves down the ladder to `to`.
    pub fn schedule_degraded(&mut self, iteration: usize, from: &str, to: &str) {
        if self.sink.is_none() {
            return;
        }
        self.emit(
            "schedule_degraded",
            vec![
                ("iteration".to_owned(), Value::UInt(iteration as u64)),
                ("from".to_owned(), Value::Str(from.to_owned())),
                ("to".to_owned(), Value::Str(to.to_owned())),
            ],
        );
    }

    /// Emits the terminal `run_aborted` event (instead of
    /// `run_completed`) and flushes the sink. `iteration` is the first
    /// uncommitted iteration — everything before it committed and was
    /// flushed to the CPU tables.
    pub fn run_aborted(&mut self, iteration: usize, attempts: u32, schedule: &str, cause: &str) {
        let Some(sink) = self.sink.as_ref() else {
            return;
        };
        let dropped = sink.dropped_lines();
        self.emit(
            "run_aborted",
            vec![
                ("dropped_lines".to_owned(), Value::UInt(dropped)),
                ("iteration".to_owned(), Value::UInt(iteration as u64)),
                ("committed".to_owned(), Value::UInt(iteration as u64)),
                ("attempts".to_owned(), Value::UInt(u64::from(attempts))),
                ("schedule".to_owned(), Value::Str(schedule.to_owned())),
                ("cause".to_owned(), Value::Str(cause.to_owned())),
            ],
        );
        if let Some(sink) = self.sink.as_mut() {
            sink.flush();
        }
    }
}
