//! Structured audit events for pipeline runs.
//!
//! Every [`Pipeline`](crate::pipeline::Pipeline) run can emit a JSONL
//! audit stream — one JSON object per line — to an [`AuditSink`]. The
//! stream is the run's ground truth: per-iteration stage timings and
//! [`StageTraffic`](crate::runtime::StageTraffic), hit/evict counts, and
//! a closing summary from which the benchmark numbers (iterations/sec,
//! bytes staged, hit rate) are reproducible without re-running.
//!
//! # Event schema
//!
//! Every line carries the envelope fields `event`, `run_id`, `run`
//! (descriptor name) and `seq` (line number within the run, from 0).
//! Three event kinds exist — see `docs/runtime-api.md` for the full
//! field table:
//!
//! * `run_started` — schedule, iteration count and the pipeline
//!   configuration.
//! * `iteration` — one per mini-batch: the serialized
//!   [`IterationRecord`](crate::runtime::IterationRecord) (index, hits,
//!   misses, evictions, total_lookups, unique_rows, loss, per-stage
//!   `traffic`) plus `stage_nanos`, a map of per-stage wall-clock
//!   nanoseconds, and — when a stage sharded work over a
//!   [`WorkerPool`](crate::workers::WorkerPool) — `stage_shards`, a map
//!   from stage name to the per-shard wall-clock nanoseconds of every
//!   shard task that stage ran (omitted entirely when no stage sharded).
//! * `run_completed` — elapsed nanoseconds, flush traffic, peak held
//!   slots, hit rate and mean loss.
//!
//! Events serialize through the same [`serde::Serialize`] path as
//! [`PipelineReport`](crate::runtime::PipelineReport), so the audit
//! stream and report JSON never disagree on field names.

use std::fmt;
use std::fs::File;
use std::io::{BufWriter, Write as _};
use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use parking_lot::Mutex;
use serde::{Serialize, Value};

use crate::runtime::{IterationRecord, PipelineReport};

/// Destination for audit JSONL lines. Implementors must tolerate being
/// handed one complete JSON object per `write_line` call and must not
/// add or reorder content (the line *is* the event).
pub trait AuditSink: Send {
    /// Writes one complete JSON object (no trailing newline included).
    fn write_line(&mut self, line: &str);

    /// Flushes buffered lines; called once when a run completes.
    fn flush(&mut self) {}
}

/// An in-memory [`AuditSink`] for tests and for deriving benchmark
/// numbers from the audit stream without touching the filesystem.
/// Cloning shares the underlying line buffer.
#[derive(Debug, Clone, Default)]
pub struct MemorySink {
    lines: Arc<Mutex<Vec<String>>>,
}

impl MemorySink {
    /// Creates an empty sink.
    pub fn new() -> Self {
        Self::default()
    }

    /// A snapshot of every line written so far.
    pub fn lines(&self) -> Vec<String> {
        self.lines.lock().clone()
    }
}

impl AuditSink for MemorySink {
    fn write_line(&mut self, line: &str) {
        self.lines.lock().push(line.to_owned());
    }
}

/// A buffered file [`AuditSink`] writing one JSON object per line.
pub struct FileSink {
    writer: BufWriter<File>,
}

impl fmt::Debug for FileSink {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("FileSink").finish()
    }
}

impl FileSink {
    /// Creates (or truncates) the file at `path`.
    ///
    /// # Errors
    ///
    /// Propagates the underlying I/O error.
    pub fn create(path: impl AsRef<Path>) -> std::io::Result<Self> {
        Ok(FileSink {
            writer: BufWriter::new(File::create(path)?),
        })
    }
}

impl AuditSink for FileSink {
    fn write_line(&mut self, line: &str) {
        // Audit output is best-effort observability: swallow I/O errors
        // rather than poison a training run.
        let _ = writeln!(self.writer, "{line}");
    }

    fn flush(&mut self) {
        let _ = self.writer.flush();
    }
}

/// Process-wide counter making [`RunDescriptor::fresh`] IDs unique.
static RUN_COUNTER: AtomicU64 = AtomicU64::new(0);

/// Identity of one pipeline run, stamped on every audit event.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RunDescriptor {
    /// Unique-per-process run ID (`<pid>-<counter>`).
    pub run_id: String,
    /// Human-readable run name (defaults to `"pipeline"`).
    pub name: String,
}

impl RunDescriptor {
    /// Allocates a fresh descriptor with a unique `run_id`.
    pub fn fresh(name: &str) -> Self {
        let n = RUN_COUNTER.fetch_add(1, Ordering::Relaxed);
        RunDescriptor {
            run_id: format!("{}-{}", std::process::id(), n),
            name: name.to_owned(),
        }
    }
}

/// Emits the audit event stream for one pipeline. Holds the optional
/// sink; with no sink every emit is a no-op.
pub struct AuditEmitter {
    sink: Option<Box<dyn AuditSink>>,
    descriptor: RunDescriptor,
    seq: u64,
}

impl fmt::Debug for AuditEmitter {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("AuditEmitter")
            .field("enabled", &self.sink.is_some())
            .field("descriptor", &self.descriptor)
            .field("seq", &self.seq)
            .finish()
    }
}

impl AuditEmitter {
    /// An emitter writing to `sink` under `descriptor`'s identity.
    pub fn new(sink: Box<dyn AuditSink>, descriptor: RunDescriptor) -> Self {
        AuditEmitter {
            sink: Some(sink),
            descriptor,
            seq: 0,
        }
    }

    /// An emitter that drops every event.
    pub fn disabled() -> Self {
        AuditEmitter {
            sink: None,
            descriptor: RunDescriptor {
                run_id: String::new(),
                name: String::new(),
            },
            seq: 0,
        }
    }

    /// Whether a sink is attached.
    pub fn enabled(&self) -> bool {
        self.sink.is_some()
    }

    /// Serializes one event: the envelope (`event`, `run_id`, `run`,
    /// `seq`) followed by `fields`, as a single JSON line.
    fn emit(&mut self, event: &str, fields: Vec<(String, Value)>) {
        let Some(sink) = self.sink.as_mut() else {
            return;
        };
        let mut entries = vec![
            ("event".to_owned(), Value::Str(event.to_owned())),
            (
                "run_id".to_owned(),
                Value::Str(self.descriptor.run_id.clone()),
            ),
            ("run".to_owned(), Value::Str(self.descriptor.name.clone())),
            ("seq".to_owned(), Value::UInt(self.seq)),
        ];
        entries.extend(fields);
        if let Ok(line) = serde_json::to_string(&Value::Map(entries)) {
            sink.write_line(&line);
            self.seq += 1;
        }
    }

    /// Emits the `run_started` event.
    pub fn run_started(
        &mut self,
        schedule: &str,
        iterations: usize,
        num_tables: usize,
        config: &crate::config::PipelineConfig,
    ) {
        if self.sink.is_none() {
            return;
        }
        self.emit(
            "run_started",
            vec![
                ("schedule".to_owned(), Value::Str(schedule.to_owned())),
                ("iterations".to_owned(), Value::UInt(iterations as u64)),
                ("num_tables".to_owned(), Value::UInt(num_tables as u64)),
                ("dim".to_owned(), Value::UInt(config.dim as u64)),
                (
                    "slots_per_table".to_owned(),
                    Value::UInt(config.slots_per_table as u64),
                ),
                (
                    "policy".to_owned(),
                    Value::Str(config.policy.name().to_owned()),
                ),
                (
                    "window".to_owned(),
                    Value::Seq(vec![
                        Value::UInt(u64::from(config.window.past)),
                        Value::UInt(u64::from(config.window.future)),
                    ]),
                ),
                ("functional".to_owned(), Value::Bool(config.functional)),
            ],
        );
    }

    /// Emits one `iteration` event: the serialized record plus the
    /// per-stage wall-clock timings and, for stages that sharded work
    /// over a worker pool, the per-shard timing breakdown (`shards[s]`
    /// aligns with `stage_names[s]`; empty entries are omitted).
    pub fn iteration(
        &mut self,
        record: &IterationRecord,
        stage_names: &[&str],
        nanos: &[u64],
        shards: &[Vec<u64>],
    ) {
        if self.sink.is_none() {
            return;
        }
        let mut fields = match record.to_value() {
            Value::Map(entries) => entries,
            other => vec![("record".to_owned(), other)],
        };
        let timing: Vec<(String, Value)> = stage_names
            .iter()
            .zip(nanos)
            .map(|(name, &ns)| ((*name).to_owned(), Value::UInt(ns)))
            .collect();
        fields.push(("stage_nanos".to_owned(), Value::Map(timing)));
        let shard_map: Vec<(String, Value)> = stage_names
            .iter()
            .zip(shards)
            .filter(|(_, s)| !s.is_empty())
            .map(|(name, s)| {
                (
                    (*name).to_owned(),
                    Value::Seq(s.iter().map(|&ns| Value::UInt(ns)).collect()),
                )
            })
            .collect();
        if !shard_map.is_empty() {
            fields.push(("stage_shards".to_owned(), Value::Map(shard_map)));
        }
        self.emit("iteration", fields);
    }

    /// Emits the closing `run_completed` event and flushes the sink.
    pub fn run_completed(&mut self, report: &PipelineReport, elapsed_ns: u64, schedule: &str) {
        if self.sink.is_none() {
            return;
        }
        self.emit(
            "run_completed",
            vec![
                (
                    "iterations".to_owned(),
                    Value::UInt(report.iterations as u64),
                ),
                ("elapsed_ns".to_owned(), Value::UInt(elapsed_ns)),
                ("schedule".to_owned(), Value::Str(schedule.to_owned())),
                ("flush_traffic".to_owned(), report.flush_traffic.to_value()),
                (
                    "peak_held_slots".to_owned(),
                    report.peak_held_slots.to_value(),
                ),
                ("hit_rate".to_owned(), Value::Float(report.hit_rate())),
                (
                    "mean_loss".to_owned(),
                    Value::Float(f64::from(report.mean_loss())),
                ),
            ],
        );
        if let Some(sink) = self.sink.as_mut() {
            sink.flush();
        }
    }
}
