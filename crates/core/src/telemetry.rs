//! Telemetry for pipeline runs: hierarchical span tracing and a
//! deterministic metrics registry.
//!
//! A [`Telemetry`] handle is attached to a pipeline with
//! [`PipelineBuilder::telemetry`] and shared (it is a cheap `Arc` clone)
//! across as many pipelines as should land in one snapshot. Every run
//! then records a **span tree** — run → iteration → stage → shard, plus
//! barrier-stall spans under the threaded schedule — and a set of
//! **metrics** (counters, gauges, log₂-bucketed histograms). Both are
//! snapshotted on demand:
//!
//! * [`Telemetry::write_chrome_trace`] — Chrome trace-event JSON
//!   (`trace.json`), loadable in Perfetto or `chrome://tracing`. Each run
//!   is a process; lane 0 is the driver thread, lanes 1–5 are the
//!   threaded schedule's stage threads, lanes 100+ are
//!   `DataParallel` workers.
//! * [`Telemetry::write_metrics_json`] — machine-readable `METRICS.json`
//!   (consumed by `audit_check --metrics` for exact reconciliation
//!   against the audit stream's `stage_nanos`).
//! * [`Telemetry::write_prometheus`] — Prometheus-style text exposition.
//!
//! # Determinism
//!
//! Histogram buckets are fixed powers of two (upper bounds 2⁰ … 2⁶³,
//! then +Inf) — no wall-clock feeds a bucket *boundary*, only observed
//! values. Every metric whose value is not a wall-clock measurement
//! (cache stats, shard/task counts, recovery counters, iteration counts)
//! is bit-identical across same-seed runs at any pool width;
//! [`Telemetry::deterministic_digest`] renders exactly that stable
//! subset, plus the structural span tree (which spans exist, on which
//! lanes — not how long they took), for tests to compare.
//!
//! # Overhead contract
//!
//! A pipeline without a telemetry handle pays one `Option` check per
//! hook — the same pattern as fault injection — so the disabled hot path
//! is byte-for-byte the pre-telemetry code path. The
//! `telemetry_overhead` bench bin asserts the enabled path stays within
//! a few percent. See `docs/observability.md` for the full contract and
//! metric catalog.
//!
//! [`PipelineBuilder::telemetry`]: crate::pipeline::PipelineBuilder::telemetry

use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::io::Write as _;
use std::path::Path;
use std::sync::Arc;
use std::time::Instant;

use parking_lot::Mutex;
use serde::Value;

use crate::scratchpad::ScratchpadManager;
use crate::workers::ShardTiming;

/// The lane (Chrome-trace `tid`) a span renders on: which thread-like
/// execution context did the work.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Lane {
    /// The driver thread (sync / sequential / data-parallel schedules).
    Main,
    /// Stage thread `s` (0 = Plan … 4 = Train) of the threaded schedule.
    Stage(u8),
    /// Worker `w` of a data-parallel shard region (0 = the thread that
    /// entered the region).
    Worker(u16),
}

impl Lane {
    /// The Chrome-trace thread ID this lane renders as.
    fn tid(self) -> u64 {
        match self {
            Lane::Main => 0,
            Lane::Stage(s) => 1 + u64::from(s),
            Lane::Worker(w) => 100 + u64::from(w),
        }
    }
}

/// Synthetic lanes used by the trace writer for derived spans.
const LANE_RUN: u64 = 89;
const LANE_ITER_BASE: u64 = 90;
/// Overlapping in-flight iterations round-robin over this many lanes so
/// the trace renders them side by side instead of stacked.
const ITER_LANES: u64 = 6;

#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
enum SpanKind {
    Run,
    Stage,
    Shard,
    Stall,
}

impl SpanKind {
    fn category(self) -> &'static str {
        match self {
            SpanKind::Run => "run",
            SpanKind::Stage => "stage",
            SpanKind::Shard => "shard",
            SpanKind::Stall => "stall",
        }
    }
}

#[derive(Debug, Clone)]
struct SpanRecord {
    run: u32,
    kind: SpanKind,
    lane: Lane,
    iteration: u32,
    /// Stage the span belongs to (`""` for run spans).
    stage: &'static str,
    /// Stall spans: the watched stage the waiter blocked on.
    aux: &'static str,
    /// Shard spans: worker that ran the task.
    worker: u16,
    start_ns: u64,
    dur_ns: u64,
}

/// Fixed log₂ histogram: bucket `i` has upper bound `2^i` nanoseconds
/// (or units) for `i` in `0..64`, plus an implicit `+Inf` bucket. The
/// boundaries never depend on observed values or wall-clock state.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
struct Histogram {
    count: u64,
    sum: u64,
    /// `buckets[i]` counts observations `v` with `2^(i-1) < v <= 2^i`
    /// (index 0: `v <= 1`); index [`Histogram::BUCKETS`] is `+Inf`.
    buckets: Vec<u64>,
}

impl Histogram {
    const BUCKETS: usize = 64;

    fn observe(&mut self, v: u64) {
        if self.buckets.is_empty() {
            self.buckets = vec![0; Self::BUCKETS + 1];
        }
        let idx = if v <= 1 {
            0
        } else {
            (64 - (v - 1).leading_zeros() as usize).min(Self::BUCKETS)
        };
        self.buckets[idx] += 1;
        self.count += 1;
        self.sum = self.sum.saturating_add(v);
    }

    /// `(upper-bound label, bucket count)` for every non-empty bucket.
    fn nonzero_buckets(&self) -> Vec<(String, u64)> {
        self.buckets
            .iter()
            .enumerate()
            .filter(|(_, &c)| c > 0)
            .map(|(i, &c)| {
                let le = if i >= Self::BUCKETS {
                    "+Inf".to_owned()
                } else {
                    (1u128 << i).to_string()
                };
                (le, c)
            })
            .collect()
    }
}

#[derive(Debug, Clone)]
enum MetricValue {
    Counter(u64),
    Gauge(f64),
    Histogram(Histogram),
}

/// Registry key: metric name plus labels sorted by label name.
type MetricKey = (&'static str, Vec<(&'static str, String)>);

/// Static metric metadata: exposition type/unit/help and whether the
/// *value* is deterministic across same-seed runs (wall-clock-valued
/// metrics and timing-dependent ones are not).
struct MetricMeta {
    kind: &'static str,
    unit: &'static str,
    help: &'static str,
    deterministic: bool,
}

fn meta(name: &str) -> MetricMeta {
    let m = |kind, unit, help, deterministic| MetricMeta {
        kind,
        unit,
        help,
        deterministic,
    };
    match name {
        "sp_run_iterations_total" => m("counter", "iterations", "Iterations the run committed", true),
        "sp_run_elapsed_ns" => m("gauge", "ns", "Wall-clock duration of the run", false),
        "sp_worker_pool_width" => m("gauge", "workers", "Configured worker-pool width", true),
        "sp_stage_latency_ns" => m(
            "histogram",
            "ns",
            "Per-iteration wall-clock latency of one stage (sum reconciles exactly with the audit stream's stage_nanos)",
            false,
        ),
        "sp_shard_latency_ns" => m(
            "histogram",
            "ns",
            "Wall-clock latency of one worker-pool shard task",
            false,
        ),
        "sp_shard_tasks_total" => m("counter", "tasks", "Shard tasks run through the worker pool", true),
        "sp_worker_busy_ns_total" => m("counter", "ns", "Nanoseconds workers spent running shard tasks", false),
        "sp_worker_idle_ns_total" => m(
            "counter",
            "ns",
            "Nanoseconds workers sat idle inside shard regions (region wall-clock x workers - busy)",
            false,
        ),
        "sp_barrier_stalls_total" => m(
            "counter",
            "stalls",
            "Watermark-barrier waits that actually blocked (threaded schedule)",
            false,
        ),
        "sp_barrier_stall_ns_total" => m(
            "counter",
            "ns",
            "Nanoseconds stage threads spent blocked on watermark barriers",
            false,
        ),
        "sp_channel_queue_depth" => m(
            "histogram",
            "payloads",
            "Depth of the bounded inter-stage channel at each send (threaded schedule; labelled by receiving stage)",
            false,
        ),
        "sp_scratchpad_occupancy_rows" => m("gauge", "rows", "Rows resident in the scratchpad at run end", true),
        "sp_scratchpad_slots" => m("gauge", "rows", "Provisioned scratchpad slots", true),
        "sp_scratchpad_peak_held_rows" => m(
            "gauge",
            "rows",
            "Peak slots simultaneously protected or pending (working-set size)",
            true,
        ),
        "sp_scratchpad_hits_total" => m("counter", "rows", "Unique-ID scratchpad hits", true),
        "sp_scratchpad_misses_total" => m("counter", "rows", "Unique-ID scratchpad misses (fills)", true),
        "sp_scratchpad_evictions_total" => m(
            "counter",
            "rows",
            "Scratchpad evictions (write-backs) - eviction pressure",
            true,
        ),
        "sp_scratchpad_hit_rate" => m("gauge", "ratio", "Unique-ID hit rate over the whole run", true),
        "sp_recovery_rollbacks_total" => m("counter", "events", "Segments rolled back by the supervisor", true),
        "sp_recovery_retries_total" => m("counter", "events", "Same-rung retries by the supervisor", true),
        "sp_recovery_degradations_total" => m(
            "counter",
            "events",
            "Schedule-ladder degradations by the supervisor",
            true,
        ),
        "sp_recovery_faults_injected_total" => m("counter", "events", "Faults the injector fired", true),
        "sp_recovery_aborts_total" => m("counter", "events", "Supervised runs that aborted", true),
        _ => m("gauge", "", "", false),
    }
}

#[derive(Debug)]
struct RunInfo {
    label: String,
    schedule: String,
}

#[derive(Debug)]
struct Inner {
    epoch: Instant,
    spans: Mutex<Vec<SpanRecord>>,
    runs: Mutex<Vec<RunInfo>>,
    metrics: Mutex<BTreeMap<MetricKey, MetricValue>>,
}

/// A shared telemetry collector. Cloning is cheap (`Arc`); attach one
/// handle to every pipeline whose runs should land in the same
/// `trace.json` / `METRICS.json` snapshot. See the [module docs](self).
#[derive(Debug, Clone)]
pub struct Telemetry {
    inner: Arc<Inner>,
}

impl Default for Telemetry {
    fn default() -> Self {
        Telemetry::new()
    }
}

impl Telemetry {
    /// Creates an empty collector; its epoch (trace time zero) is now.
    pub fn new() -> Self {
        Telemetry {
            inner: Arc::new(Inner {
                epoch: Instant::now(),
                spans: Mutex::new(Vec::new()),
                runs: Mutex::new(Vec::new()),
                metrics: Mutex::new(BTreeMap::new()),
            }),
        }
    }

    /// Nanoseconds since the collector's epoch.
    pub fn now_ns(&self) -> u64 {
        self.inner.epoch.elapsed().as_nanos() as u64
    }

    /// Opens a per-run recording session. Called by the pipeline at the
    /// start of every run; the session's run label is the pipeline's
    /// audit name, which is what joins metrics to audit events.
    pub(crate) fn begin_run(&self, label: &str, schedule: &str) -> RunTelemetry {
        let run = {
            let mut runs = self.inner.runs.lock();
            runs.push(RunInfo {
                label: label.to_owned(),
                schedule: schedule.to_owned(),
            });
            (runs.len() - 1) as u32
        };
        RunTelemetry {
            telemetry: self.clone(),
            run,
            label: label.to_owned(),
            start_ns: self.now_ns(),
        }
    }

    fn push_span(&self, span: SpanRecord) {
        self.inner.spans.lock().push(span);
    }

    fn add_counter(&self, key: MetricKey, v: u64) {
        let mut metrics = self.inner.metrics.lock();
        match metrics.entry(key).or_insert(MetricValue::Counter(0)) {
            MetricValue::Counter(c) => *c += v,
            _ => unreachable!("metric kind is fixed per name"),
        }
    }

    fn set_counter(&self, key: MetricKey, v: u64) {
        self.inner
            .metrics
            .lock()
            .insert(key, MetricValue::Counter(v));
    }

    fn set_gauge(&self, key: MetricKey, v: f64) {
        self.inner.metrics.lock().insert(key, MetricValue::Gauge(v));
    }

    fn observe(&self, key: MetricKey, v: u64) {
        let mut metrics = self.inner.metrics.lock();
        match metrics
            .entry(key)
            .or_insert_with(|| MetricValue::Histogram(Histogram::default()))
        {
            MetricValue::Histogram(h) => h.observe(v),
            _ => unreachable!("metric kind is fixed per name"),
        }
    }

    /// A snapshot of the recorded spans, sorted for stable output.
    fn span_snapshot(&self) -> Vec<SpanRecord> {
        let mut spans = self.inner.spans.lock().clone();
        spans.sort_by_key(|s| {
            (
                s.run,
                s.iteration,
                s.kind,
                s.stage,
                s.lane.tid(),
                s.worker,
                s.start_ns,
            )
        });
        spans
    }

    /// Renders the span tree as Chrome trace-event JSON (the
    /// `chrome://tracing` / Perfetto format). Each run is a process;
    /// see the [module docs](self) for the lane layout. Iteration spans
    /// are derived from their stage spans and rendered on round-robin
    /// side lanes so overlapping in-flight iterations stay readable.
    pub fn chrome_trace_json(&self) -> String {
        let spans = self.span_snapshot();
        let runs = self.inner.runs.lock();
        let mut events: Vec<Value> = Vec::new();
        let str_v = |s: &str| Value::Str(s.to_owned());
        let map = |entries: Vec<(&str, Value)>| {
            Value::Map(
                entries
                    .into_iter()
                    .map(|(k, v)| (k.to_owned(), v))
                    .collect(),
            )
        };
        let metadata = |name: &str, pid: u64, tid: Option<u64>, arg: Value| {
            let mut entries = vec![
                ("ph", str_v("M")),
                ("name", str_v(name)),
                ("pid", Value::UInt(pid)),
            ];
            if let Some(tid) = tid {
                entries.push(("tid", Value::UInt(tid)));
            }
            entries.push(("args", map(vec![("name", arg)])));
            map(entries)
        };

        // Process metadata: one process per run, named by the run label
        // (exactly the audit `run` field, so traces join to the stream).
        for (run, info) in runs.iter().enumerate() {
            let pid = run as u64 + 1;
            events.push(metadata("process_name", pid, None, str_v(&info.label)));
            events.push(metadata("process_labels", pid, None, str_v(&info.schedule)));
        }
        // Thread metadata for every lane that actually appears.
        let mut lanes: BTreeMap<(u64, u64), String> = BTreeMap::new();
        for s in &spans {
            let pid = u64::from(s.run) + 1;
            match s.kind {
                SpanKind::Run => {
                    lanes
                        .entry((pid, LANE_RUN))
                        .or_insert_with(|| "run".to_owned());
                }
                SpanKind::Stage | SpanKind::Stall => {
                    lanes
                        .entry((pid, s.lane.tid()))
                        .or_insert_with(|| match s.lane {
                            Lane::Main => "driver".to_owned(),
                            Lane::Stage(_) => format!("stage {}", s.stage),
                            Lane::Worker(w) => format!("worker {w}"),
                        });
                }
                SpanKind::Shard => {
                    lanes
                        .entry((pid, s.lane.tid()))
                        .or_insert_with(|| match s.lane {
                            Lane::Worker(w) => format!("worker {w}"),
                            Lane::Main => "driver".to_owned(),
                            Lane::Stage(_) => format!("stage {}", s.stage),
                        });
                }
            }
        }
        // Derived iteration lanes.
        let mut iter_bounds: BTreeMap<(u32, u32), (u64, u64)> = BTreeMap::new();
        for s in spans.iter().filter(|s| s.kind == SpanKind::Stage) {
            let end = s.start_ns + s.dur_ns;
            iter_bounds
                .entry((s.run, s.iteration))
                .and_modify(|(lo, hi)| {
                    *lo = (*lo).min(s.start_ns);
                    *hi = (*hi).max(end);
                })
                .or_insert((s.start_ns, end));
        }
        for &(run, iteration) in iter_bounds.keys() {
            let pid = u64::from(run) + 1;
            let tid = LANE_ITER_BASE + u64::from(iteration) % ITER_LANES;
            lanes
                .entry((pid, tid))
                .or_insert_with(|| format!("iterations +{}", u64::from(iteration) % ITER_LANES));
        }
        for ((pid, tid), name) in &lanes {
            events.push(metadata("thread_name", *pid, Some(*tid), str_v(name)));
        }

        let us = |ns: u64| Value::Float(ns as f64 / 1000.0);
        for ((run, iteration), (lo, hi)) in &iter_bounds {
            events.push(map(vec![
                ("ph", str_v("X")),
                ("cat", str_v("iteration")),
                ("name", str_v(&format!("iter {iteration}"))),
                ("pid", Value::UInt(u64::from(*run) + 1)),
                (
                    "tid",
                    Value::UInt(LANE_ITER_BASE + u64::from(*iteration) % ITER_LANES),
                ),
                ("ts", us(*lo)),
                ("dur", us(hi.saturating_sub(*lo))),
                (
                    "args",
                    map(vec![
                        ("iteration", Value::UInt(u64::from(*iteration))),
                        ("start_ns", Value::UInt(*lo)),
                        ("dur_ns", Value::UInt(hi.saturating_sub(*lo))),
                    ]),
                ),
            ]));
        }
        for s in &spans {
            let pid = u64::from(s.run) + 1;
            let (tid, name) = match s.kind {
                SpanKind::Run => (LANE_RUN, "run".to_owned()),
                SpanKind::Stage => (s.lane.tid(), s.stage.to_owned()),
                SpanKind::Shard => (s.lane.tid(), format!("{}[{}]", s.stage, s.worker)),
                SpanKind::Stall => (s.lane.tid(), format!("stall:{}<-{}", s.stage, s.aux)),
            };
            let mut args = vec![
                ("iteration", Value::UInt(u64::from(s.iteration))),
                ("start_ns", Value::UInt(s.start_ns)),
                ("dur_ns", Value::UInt(s.dur_ns)),
            ];
            if s.kind == SpanKind::Shard {
                args.push(("worker", Value::UInt(u64::from(s.worker))));
            }
            if !s.stage.is_empty() {
                args.push(("stage", str_v(s.stage)));
            }
            events.push(map(vec![
                ("ph", str_v("X")),
                ("cat", str_v(s.kind.category())),
                ("name", str_v(&name)),
                ("pid", Value::UInt(pid)),
                ("tid", Value::UInt(tid)),
                ("ts", us(s.start_ns)),
                ("dur", us(s.dur_ns)),
                ("args", map(args)),
            ]));
        }
        let doc = map(vec![
            ("traceEvents", Value::Seq(events)),
            ("displayTimeUnit", str_v("ms")),
        ]);
        serde_json::to_string(&doc).expect("trace serialization is infallible")
    }

    /// Writes [`Telemetry::chrome_trace_json`] to `path`.
    ///
    /// # Errors
    ///
    /// Propagates the underlying I/O error.
    pub fn write_chrome_trace(&self, path: impl AsRef<Path>) -> std::io::Result<()> {
        write_file(path, &self.chrome_trace_json())
    }

    /// Renders the metrics registry as machine-readable JSON
    /// (`METRICS.json`): `{"version": 1, "metrics": [...]}` with one
    /// entry per `(name, labels)` pair, sorted, carrying `type`, `unit`,
    /// structured `labels`, and either `value` or
    /// `count`/`sum`/`buckets` (non-empty buckets as `[le, count]`
    /// pairs, `le` the power-of-two upper bound or `"+Inf"`).
    pub fn metrics_json(&self) -> String {
        let metrics = self.inner.metrics.lock();
        let mut out: Vec<Value> = Vec::new();
        for ((name, labels), value) in metrics.iter() {
            let info = meta(name);
            let mut entries = vec![
                ("name".to_owned(), Value::Str((*name).to_owned())),
                ("type".to_owned(), Value::Str(info.kind.to_owned())),
                ("unit".to_owned(), Value::Str(info.unit.to_owned())),
                (
                    "labels".to_owned(),
                    Value::Map(
                        labels
                            .iter()
                            .map(|(k, v)| ((*k).to_owned(), Value::Str(v.clone())))
                            .collect(),
                    ),
                ),
            ];
            match value {
                MetricValue::Counter(c) => entries.push(("value".to_owned(), Value::UInt(*c))),
                MetricValue::Gauge(g) => entries.push(("value".to_owned(), Value::Float(*g))),
                MetricValue::Histogram(h) => {
                    entries.push(("count".to_owned(), Value::UInt(h.count)));
                    entries.push(("sum".to_owned(), Value::UInt(h.sum)));
                    entries.push((
                        "buckets".to_owned(),
                        Value::Seq(
                            h.nonzero_buckets()
                                .into_iter()
                                .map(|(le, c)| Value::Seq(vec![Value::Str(le), Value::UInt(c)]))
                                .collect(),
                        ),
                    ));
                }
            }
            out.push(Value::Map(entries));
        }
        let doc = Value::Map(vec![
            ("version".to_owned(), Value::UInt(1)),
            ("metrics".to_owned(), Value::Seq(out)),
        ]);
        serde_json::to_string(&doc).expect("metrics serialization is infallible")
    }

    /// Writes [`Telemetry::metrics_json`] to `path`.
    ///
    /// # Errors
    ///
    /// Propagates the underlying I/O error.
    pub fn write_metrics_json(&self, path: impl AsRef<Path>) -> std::io::Result<()> {
        write_file(path, &self.metrics_json())
    }

    /// Renders the metrics registry as Prometheus-style text exposition
    /// (`# HELP` / `# TYPE` comments, cumulative histogram buckets,
    /// `_sum` / `_count` series).
    pub fn prometheus_text(&self) -> String {
        let metrics = self.inner.metrics.lock();
        let mut out = String::new();
        let mut last_name = "";
        let render_labels = |labels: &[(&'static str, String)], extra: Option<(&str, &str)>| {
            let mut pairs: Vec<String> =
                labels.iter().map(|(k, v)| format!("{k}=\"{v}\"")).collect();
            if let Some((k, v)) = extra {
                pairs.push(format!("{k}=\"{v}\""));
            }
            if pairs.is_empty() {
                String::new()
            } else {
                format!("{{{}}}", pairs.join(","))
            }
        };
        for ((name, labels), value) in metrics.iter() {
            let info = meta(name);
            if *name != last_name {
                let _ = writeln!(out, "# HELP {name} {}", info.help);
                let _ = writeln!(out, "# TYPE {name} {}", info.kind);
                last_name = name;
            }
            match value {
                MetricValue::Counter(c) => {
                    let _ = writeln!(out, "{name}{} {c}", render_labels(labels, None));
                }
                MetricValue::Gauge(g) => {
                    let _ = writeln!(out, "{name}{} {g}", render_labels(labels, None));
                }
                MetricValue::Histogram(h) => {
                    let mut cumulative = 0;
                    for (le, c) in h.nonzero_buckets() {
                        cumulative += c;
                        let _ = writeln!(
                            out,
                            "{name}_bucket{} {cumulative}",
                            render_labels(labels, Some(("le", &le)))
                        );
                    }
                    if h.buckets.last().copied().unwrap_or(0) == 0 {
                        let _ = writeln!(
                            out,
                            "{name}_bucket{} {cumulative}",
                            render_labels(labels, Some(("le", "+Inf")))
                        );
                    }
                    let _ = writeln!(out, "{name}_sum{} {}", render_labels(labels, None), h.sum);
                    let _ = writeln!(
                        out,
                        "{name}_count{} {}",
                        render_labels(labels, None),
                        h.count
                    );
                }
            }
        }
        out
    }

    /// Writes [`Telemetry::prometheus_text`] to `path`.
    ///
    /// # Errors
    ///
    /// Propagates the underlying I/O error.
    pub fn write_prometheus(&self, path: impl AsRef<Path>) -> std::io::Result<()> {
        write_file(path, &self.prometheus_text())
    }

    /// Renders the deterministic subset of the telemetry: the structural
    /// span tree (which spans exist, on which lanes, with which workers —
    /// durations and stall spans excluded) and every metric whose value
    /// does not derive from wall-clock time (histograms contribute their
    /// observation *count*). Two same-seed runs at the same pool width
    /// produce identical digests, whatever the machine is doing.
    pub fn deterministic_digest(&self) -> String {
        let mut out = String::new();
        {
            let runs = self.inner.runs.lock();
            for (i, info) in runs.iter().enumerate() {
                let _ = writeln!(
                    out,
                    "run {i} label={} schedule={}",
                    info.label, info.schedule
                );
            }
        }
        let spans = self.span_snapshot();
        let mut i = 0;
        while i < spans.len() {
            let s = &spans[i];
            match s.kind {
                // Stall spans (and their count) are timing-dependent.
                SpanKind::Stall => i += 1,
                SpanKind::Run => {
                    let _ = writeln!(out, "span run r{}", s.run);
                    i += 1;
                }
                SpanKind::Stage => {
                    let _ = writeln!(
                        out,
                        "span stage r{} i{} {} lane={}",
                        s.run,
                        s.iteration,
                        s.stage,
                        s.lane.tid()
                    );
                    i += 1;
                }
                SpanKind::Shard => {
                    // Group the contiguous shard spans of one
                    // (run, iteration, stage) region into one line.
                    let (run, iteration, stage) = (s.run, s.iteration, s.stage);
                    let mut workers = Vec::new();
                    while i < spans.len() {
                        let t = &spans[i];
                        if t.kind != SpanKind::Shard
                            || t.run != run
                            || t.iteration != iteration
                            || t.stage != stage
                        {
                            break;
                        }
                        workers.push(format!("{}:{}", t.lane.tid(), t.worker));
                        i += 1;
                    }
                    let _ = writeln!(
                        out,
                        "span shards r{run} i{iteration} {stage} [{}]",
                        workers.join(",")
                    );
                }
            }
        }
        let metrics = self.inner.metrics.lock();
        for ((name, labels), value) in metrics.iter() {
            let info = meta(name);
            let labels_s: Vec<String> = labels.iter().map(|(k, v)| format!("{k}={v}")).collect();
            let labels_s = labels_s.join(",");
            match value {
                MetricValue::Histogram(h) => {
                    let _ = writeln!(out, "metric {name}{{{labels_s}}} count={}", h.count);
                }
                MetricValue::Counter(c) if info.deterministic => {
                    let _ = writeln!(out, "metric {name}{{{labels_s}}} {c}");
                }
                MetricValue::Gauge(g) if info.deterministic => {
                    let _ = writeln!(out, "metric {name}{{{labels_s}}} {g}");
                }
                // Wall-clock-valued: presence only.
                MetricValue::Counter(_) | MetricValue::Gauge(_) => {
                    let _ = writeln!(out, "metric {name}{{{labels_s}}} present");
                }
            }
        }
        out
    }
}

fn write_file(path: impl AsRef<Path>, content: &str) -> std::io::Result<()> {
    let mut f = std::fs::File::create(path)?;
    f.write_all(content.as_bytes())?;
    writeln!(f)?;
    f.flush()
}

/// One pipeline run's recording session, created internally by the
/// pipeline from its attached [`Telemetry`] handle and carried through
/// [`StageCtx`](crate::stage::StageCtx) (as `Option<&RunTelemetry>` —
/// `None` keeps every hook a single branch). Stage implementors may use
/// it to record extra spans or shard regions of their own.
#[derive(Debug)]
pub struct RunTelemetry {
    telemetry: Telemetry,
    run: u32,
    label: String,
    start_ns: u64,
}

impl RunTelemetry {
    /// Nanoseconds since the collector's epoch (span timestamps).
    pub fn now_ns(&self) -> u64 {
        self.telemetry.now_ns()
    }

    /// The run label (the pipeline's audit name).
    pub fn label(&self) -> &str {
        &self.label
    }

    fn run_labels(&self) -> Vec<(&'static str, String)> {
        vec![("run", self.label.clone())]
    }

    fn stage_labels(&self, stage: &'static str) -> Vec<(&'static str, String)> {
        vec![("run", self.label.clone()), ("stage", stage.to_owned())]
    }

    /// Records one stage execution: a span on `lane` plus an observation
    /// in the `sp_stage_latency_ns` histogram. `dur_ns` must be exactly
    /// the value reported to the audit stream's `stage_nanos`, which is
    /// what makes `audit_check --metrics` reconcile exactly.
    pub fn stage_span(
        &self,
        lane: Lane,
        iteration: usize,
        stage: &'static str,
        start_ns: u64,
        dur_ns: u64,
    ) {
        self.telemetry.push_span(SpanRecord {
            run: self.run,
            kind: SpanKind::Stage,
            lane,
            iteration: iteration as u32,
            stage,
            aux: "",
            worker: 0,
            start_ns,
            dur_ns,
        });
        self.telemetry
            .observe(("sp_stage_latency_ns", self.stage_labels(stage)), dur_ns);
    }

    /// Records one worker-pool shard region: a span per shard task (on
    /// worker lanes when the region ran pooled, on `lane` when it ran
    /// inline), shard-latency observations, task counts and the region's
    /// busy/idle nanoseconds. `region_start_ns` is [`RunTelemetry::now_ns`]
    /// sampled just before `run_tasks`; `timings` is what `run_tasks`
    /// returned.
    pub fn shard_region(
        &self,
        lane: Lane,
        iteration: usize,
        stage: &'static str,
        region_start_ns: u64,
        timings: &[ShardTiming],
        pooled: bool,
    ) {
        if timings.is_empty() {
            return;
        }
        let mut busy = 0u64;
        let mut region_end = 0u64;
        let mut max_worker = 0u16;
        for t in timings {
            self.telemetry.push_span(SpanRecord {
                run: self.run,
                kind: SpanKind::Shard,
                lane: if pooled { Lane::Worker(t.worker) } else { lane },
                iteration: iteration as u32,
                stage,
                aux: "",
                worker: t.worker,
                start_ns: region_start_ns + t.start_ns,
                dur_ns: t.dur_ns,
            });
            self.telemetry
                .observe(("sp_shard_latency_ns", self.stage_labels(stage)), t.dur_ns);
            busy += t.dur_ns;
            region_end = region_end.max(t.start_ns + t.dur_ns);
            max_worker = max_worker.max(t.worker);
        }
        let labels = self.stage_labels(stage);
        self.telemetry.add_counter(
            ("sp_shard_tasks_total", labels.clone()),
            timings.len() as u64,
        );
        self.telemetry
            .add_counter(("sp_worker_busy_ns_total", labels.clone()), busy);
        let width = u64::from(max_worker) + 1;
        let idle = (width * region_end).saturating_sub(busy);
        self.telemetry
            .add_counter(("sp_worker_idle_ns_total", labels), idle);
    }

    /// Records one watermark-barrier wait that actually blocked:
    /// `stage`'s thread waited from `start_ns` until now for `watched`
    /// to reach its lagged batch index.
    pub fn barrier_stall(
        &self,
        lane: Lane,
        iteration: usize,
        stage: &'static str,
        watched: &'static str,
        start_ns: u64,
    ) {
        let dur_ns = self.now_ns().saturating_sub(start_ns);
        self.telemetry.push_span(SpanRecord {
            run: self.run,
            kind: SpanKind::Stall,
            lane,
            iteration: iteration as u32,
            stage,
            aux: watched,
            worker: 0,
            start_ns,
            dur_ns,
        });
        let labels = self.stage_labels(stage);
        self.telemetry
            .add_counter(("sp_barrier_stalls_total", labels.clone()), 1);
        self.telemetry
            .add_counter(("sp_barrier_stall_ns_total", labels), dur_ns);
    }

    /// Observes the bounded inter-stage channel's depth at a send
    /// (threaded schedule), labelled by the receiving stage.
    pub fn channel_depth(&self, receiver: &'static str, depth: u64) {
        self.telemetry.observe(
            ("sp_channel_queue_depth", self.stage_labels(receiver)),
            depth,
        );
    }

    /// Sets a run-labelled counter to an absolute value (recovery
    /// counters are published once, at run end, from the supervisor's
    /// stats — so they equal the audit stream's event counts exactly).
    pub(crate) fn set_run_counter(&self, name: &'static str, value: u64) {
        self.telemetry.set_counter((name, self.run_labels()), value);
    }

    /// Closes the run: records the run span, run-level gauges and the
    /// end-of-run scratchpad stats.
    pub(crate) fn finish_run(
        &self,
        elapsed_ns: u64,
        iterations: usize,
        pool_width: usize,
        slots_per_table: usize,
        managers: &[ScratchpadManager],
    ) {
        self.telemetry.push_span(SpanRecord {
            run: self.run,
            kind: SpanKind::Run,
            lane: Lane::Main,
            iteration: 0,
            stage: "",
            aux: "",
            worker: 0,
            start_ns: self.start_ns,
            dur_ns: self.now_ns().saturating_sub(self.start_ns),
        });
        let run = self.run_labels();
        self.telemetry
            .set_counter(("sp_run_iterations_total", run.clone()), iterations as u64);
        self.telemetry
            .set_gauge(("sp_run_elapsed_ns", run.clone()), elapsed_ns as f64);
        self.telemetry
            .set_gauge(("sp_worker_pool_width", run.clone()), pool_width as f64);
        let (mut hits, mut misses) = (0u64, 0u64);
        for (t, manager) in managers.iter().enumerate() {
            let stats = manager.stats();
            hits += stats.hits;
            misses += stats.misses;
            let labels = || vec![("run", self.label.clone()), ("table", t.to_string())];
            self.telemetry.set_gauge(
                ("sp_scratchpad_occupancy_rows", labels()),
                manager.occupancy() as f64,
            );
            self.telemetry
                .set_gauge(("sp_scratchpad_slots", labels()), slots_per_table as f64);
            self.telemetry.set_gauge(
                ("sp_scratchpad_peak_held_rows", labels()),
                stats.peak_held as f64,
            );
            self.telemetry
                .set_counter(("sp_scratchpad_hits_total", labels()), stats.hits);
            self.telemetry
                .set_counter(("sp_scratchpad_misses_total", labels()), stats.misses);
            self.telemetry
                .set_counter(("sp_scratchpad_evictions_total", labels()), stats.evictions);
        }
        let total = hits + misses;
        let hit_rate = if total == 0 {
            0.0
        } else {
            hits as f64 / total as f64
        };
        self.telemetry
            .set_gauge(("sp_scratchpad_hit_rate", run), hit_rate);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_buckets_are_powers_of_two() {
        let mut h = Histogram::default();
        for v in [0u64, 1, 2, 3, 4, 5, 1023, 1024, 1025] {
            h.observe(v);
        }
        assert_eq!(h.count, 9);
        assert_eq!(h.sum, 3087);
        // v <= 1 -> bucket 0; v = 2 -> le 2; v in (2,4] -> le 4.
        assert_eq!(h.buckets[0], 2);
        assert_eq!(h.buckets[1], 1);
        assert_eq!(h.buckets[2], 2);
        assert_eq!(h.buckets[3], 1);
        assert_eq!(h.buckets[10], 2, "1023 and 1024 land in le=1024");
        assert_eq!(h.buckets[11], 1, "1025 lands in le=2048");
        let huge = u64::MAX;
        h.observe(huge);
        assert_eq!(h.buckets[Histogram::BUCKETS], 1, "overflow lands in +Inf");
    }

    #[test]
    fn metrics_render_in_stable_order() {
        let tel = Telemetry::new();
        let run = tel.begin_run("t", "sync");
        run.stage_span(Lane::Main, 0, "Plan", 0, 100);
        run.stage_span(Lane::Main, 0, "Train", 10, 50);
        let a = tel.prometheus_text();
        let b = tel.prometheus_text();
        assert_eq!(a, b);
        assert!(a.contains("# TYPE sp_stage_latency_ns histogram"));
        assert!(a.contains("sp_stage_latency_ns_sum{run=\"t\",stage=\"Plan\"} 100"));
        assert!(a.contains("sp_stage_latency_ns_count{run=\"t\",stage=\"Train\"} 1"));
        let json = tel.metrics_json();
        assert!(json.starts_with("{\"version\":1,"));
        assert!(json.contains("\"name\":\"sp_stage_latency_ns\""));
    }

    #[test]
    fn digest_excludes_wall_clock_values() {
        let tel = Telemetry::new();
        let run = tel.begin_run("d", "sync");
        run.stage_span(Lane::Main, 0, "Plan", 0, 12345);
        let digest = tel.deterministic_digest();
        assert!(digest.contains("span stage r0 i0 Plan lane=0"));
        assert!(digest.contains("metric sp_stage_latency_ns{run=d,stage=Plan} count=1"));
        assert!(
            !digest.contains("12345"),
            "durations must not leak into the digest:\n{digest}"
        );
    }

    #[test]
    fn chrome_trace_is_valid_json_with_lanes() {
        let tel = Telemetry::new();
        let run = tel.begin_run("trace-me", "threaded");
        run.stage_span(Lane::Stage(1), 0, "Collect", 100, 500);
        run.barrier_stall(Lane::Stage(1), 1, "Collect", "Train", 700);
        run.shard_region(
            Lane::Main,
            0,
            "Train",
            1000,
            &[
                ShardTiming {
                    start_ns: 0,
                    dur_ns: 10,
                    worker: 0,
                },
                ShardTiming {
                    start_ns: 2,
                    dur_ns: 8,
                    worker: 1,
                },
            ],
            true,
        );
        let json = tel.chrome_trace_json();
        let parsed = serde_json::from_str(&json).expect("trace must parse");
        let Value::Map(entries) = parsed else {
            panic!("trace root must be a map");
        };
        assert!(entries.iter().any(|(k, _)| k == "traceEvents"));
        assert!(json.contains("\"process_name\""));
        assert!(json.contains("stall:Collect<-Train"));
        assert!(json.contains("\"worker 1\""));
    }
}
