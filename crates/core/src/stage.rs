//! The [`Stage`] trait and the five canonical ScratchPipe stage
//! implementors.
//!
//! The paper describes one five-stage pipeline — Plan / Collect /
//! Exchange / Insert / Train — and this module gives each stage a first-
//! class object: a [`Stage`] processes one in-flight [`StagePayload`] per
//! mini-batch, records its own [`Traffic`] into the payload, and declares
//! (via [`Stage::barriers`]) the cross-batch orderings it needs when
//! stages of *different* mini-batches execute concurrently. A single
//! generic driver — [`Pipeline`](crate::pipeline::Pipeline) — owns the
//! schedule; it never knows what a stage does, only the order payloads
//! flow. That is what makes the two schedules (register-order sync and
//! per-stage threads) bit-identical *by construction*: they drive the
//! same five objects.
//!
//! The heavy lifting still lives in the free kernels of [`crate::stages`];
//! a stage implementor is the thin stateful shell around them: the Plan
//! stage owns the per-table [`ScratchpadManager`]s, the Train stage owns
//! the dense backend and its [`TrainArena`], and Collect/Insert/Train
//! share the mutable model state ([`SharedState`]) behind per-table locks
//! so the threaded schedule can interleave them safely.

use std::fmt;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use embeddings::store::DenseStore;
use embeddings::{EmbeddingTable, VectorStore};
use parking_lot::Mutex;

use crate::backend::DenseBackend;
use crate::error::ScratchError;
use crate::faults::FaultInjector;
use crate::recovery::TableUndo;
use crate::scratchpad::{ScratchpadManager, TablePlan};
use crate::stages::{self, StagePayload, TrainArena};
use crate::telemetry::{Lane, RunTelemetry};
use crate::workers::WorkerPool;

/// Per-execution context handed to every [`Stage::execute`] call: the
/// whole trace (stages look ahead and behind), the payload's mini-batch
/// index, and whether mini-batches overlap in flight.
#[derive(Clone, Copy)]
pub struct StageCtx<'a> {
    /// The full trace of mini-batches.
    pub batches: &'a [embeddings::SparseBatch],
    /// Sorted unique IDs per `(batch, table)` — `uniq[j][t]`.
    pub uniq: &'a [Vec<Vec<u64>>],
    /// Mini-batch index this execution processes.
    pub index: usize,
    /// Whether stages of different mini-batches overlap (true for the
    /// sync and threaded schedules, false for the sequential straw-man).
    /// Victim-safety distances only exist under overlap.
    pub pipelined: bool,
    /// Worker pool for intra-stage data parallelism. Width 1 (the
    /// default) runs every shard inline; the data-parallel schedule hands
    /// stages a wider pool. Sharding never changes results — only where
    /// the disjoint pieces are computed.
    pub workers: WorkerPool,
    /// The armed fault injector, when a
    /// [`FaultPlan`](crate::faults::FaultPlan) is attached. `None` — the
    /// default — makes every injection hook a single branch, so the
    /// fault-free hot path is untouched.
    pub faults: Option<&'a FaultInjector>,
    /// The run's telemetry session, when a [`Telemetry`] handle is
    /// attached. Same pattern as `faults`: `None` — the default — makes
    /// every recording hook a single branch.
    ///
    /// [`Telemetry`]: crate::telemetry::Telemetry
    pub telemetry: Option<&'a RunTelemetry>,
    /// The lane spans from this execution render on: [`Lane::Main`] for
    /// the single-driver schedules, the stage's own [`Lane::Stage`] under
    /// the threaded schedule. Shard spans override this with worker lanes
    /// when a region actually runs pooled.
    pub lane: Lane,
}

impl fmt::Debug for StageCtx<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("StageCtx")
            .field("index", &self.index)
            .field("pipelined", &self.pipelined)
            .field("batches", &self.batches.len())
            .finish()
    }
}

impl<'a> StageCtx<'a> {
    /// The mini-batch this execution processes.
    pub fn batch(&self) -> &'a embeddings::SparseBatch {
        &self.batches[self.index]
    }
}

/// A cross-batch ordering a stage requires from a concurrent schedule:
/// before this stage runs batch `i`, the stage named `after` must have
/// completed batch `i - lag`. The synchronous schedule satisfies every
/// such barrier implicitly (registers advance one batch per cycle); the
/// threaded schedule turns each barrier into a watermark wait.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StageBarrier {
    /// Name of the downstream stage whose completion is awaited.
    pub after: &'static str,
    /// Batch-index lag: batch `i` may start once `after` finished `i - lag`.
    pub lag: usize,
}

/// One pipeline stage: a stateful processor of in-flight mini-batch
/// payloads.
///
/// # Contract
///
/// * `execute` processes exactly one payload for `ctx.index`, records the
///   stage's [`Traffic`](memsim::Traffic) into the payload's per-stage
///   slot, and must be deterministic: the report a run produces may not
///   depend on the schedule driving the stages.
/// * A stage may hold mutable state across calls (cache managers, model
///   storage, arenas), but any state shared with *other* stages must be
///   behind locks, because the threaded schedule executes different
///   stages concurrently (on different mini-batches).
/// * `barriers` declares the only cross-batch orderings the stage needs
///   beyond "payloads arrive in batch order". Lags are what make the
///   Hold-mask window sufficient: everything not covered by a barrier
///   must be made disjoint by the window itself.
pub trait Stage: Send {
    /// Stable stage name — used in audit events, progress displays and to
    /// resolve [`StageBarrier::after`] references.
    fn name(&self) -> &'static str;

    /// Cross-batch orderings this stage requires from concurrent
    /// schedules. Default: none.
    fn barriers(&self) -> Vec<StageBarrier> {
        Vec::new()
    }

    /// Processes the payload for mini-batch `ctx.index`.
    ///
    /// # Errors
    ///
    /// Stage-specific: capacity exhaustion at \[Plan\], hazard violations
    /// at \[Collect\]/\[Train\] when checking is enabled.
    fn execute(
        &mut self,
        ctx: &StageCtx<'_>,
        payload: &mut StagePayload,
    ) -> Result<(), ScratchError>;
}

/// Mutable model state shared by the Collect, Insert and Train stages
/// (and the final flush): the GPU scratchpad storage, the CPU tables, and
/// the data-residency shadow that backs the hazard checker. Each table's
/// state sits behind its own lock so the threaded schedule can interleave
/// stage bodies; under the sync schedule the locks are uncontended.
#[derive(Debug)]
pub(crate) struct SharedState {
    /// Per-table GPU scratchpad storage (empty in analytic mode).
    pub storages: Vec<Mutex<DenseStore>>,
    /// Per-table CPU embedding tables (empty in analytic mode).
    pub cpu_tables: Vec<Mutex<EmbeddingTable>>,
    /// Which row's *data* each slot actually holds right now (updated at
    /// \[Insert\] time, unlike the Hit-Map which runs ahead). Drives the
    /// always-hit hazard assertion.
    pub data_resident: Vec<Mutex<Vec<Option<u64>>>>,
    /// Whether real embedding data moves (false = analytic mode).
    pub functional: bool,
    /// Whether the hazard checker is active.
    pub check_hazards: bool,
    /// Embedding vector width.
    pub dim: usize,
    /// Whether the supervised runtime is recording undo deltas. Stages
    /// check this once per worker task; when false (every plain run) the
    /// undo hooks cost one relaxed load.
    pub undo_active: AtomicBool,
    /// Per-table first-touch undo logs for the current checkpointed
    /// segment. Lock-ordering rule: `undo[t]` is always acquired *while
    /// holding* the table-`t` resource lock it shadows (storage, CPU
    /// table or residency) and released before that lock — `undo[t]` is
    /// strictly innermost, so Insert(i+1) and Train(i) can never deadlock
    /// on a table they both dirty.
    pub undo: Vec<Mutex<TableUndo>>,
}

impl SharedState {
    pub(crate) fn row_bytes(&self) -> u64 {
        self.dim as u64 * 4
    }

    /// Starts recording undo deltas (idempotent).
    pub(crate) fn begin_undo(&self) {
        self.undo_active.store(true, Ordering::SeqCst);
    }

    /// Stops recording undo deltas and drops any pending log.
    pub(crate) fn end_undo(&self) {
        self.undo_active.store(false, Ordering::SeqCst);
        for undo in &self.undo {
            undo.lock().clear();
        }
    }

    /// Commits the current segment: the deltas are dropped, the mutated
    /// state stands. Recording stays active for the next segment.
    pub(crate) fn commit_undo(&self) {
        for undo in &self.undo {
            undo.lock().clear();
        }
    }

    /// Rolls every table back to its last checkpoint image. Only called
    /// by the supervisor after all stage threads have joined, so the
    /// multi-lock acquisition here cannot deadlock with stage bodies.
    pub(crate) fn rollback_undo(&self) {
        for (t, undo) in self.undo.iter().enumerate() {
            let mut undo = undo.lock();
            let mut table = self.cpu_tables.get(t).map(Mutex::lock);
            let mut store = self.storages.get(t).map(Mutex::lock);
            let mut resident = self.data_resident[t].lock();
            undo.rollback(table.as_deref_mut(), store.as_deref_mut(), &mut resident);
        }
    }
}

/// \[Plan\] — owns the per-table scratchpad managers: advances the
/// Hit-Map, assigns slots, picks victims (Hold-mask permitting) and
/// registers the look-ahead window. Also runs the victim-safety half of
/// the hazard checker, which is a *plan-time* property.
pub struct PlanStage {
    managers: Vec<ScratchpadManager>,
    future_depth: usize,
    check_hazards: bool,
}

impl fmt::Debug for PlanStage {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("PlanStage")
            .field("tables", &self.managers.len())
            .field("future_depth", &self.future_depth)
            .finish()
    }
}

impl PlanStage {
    pub(crate) fn new(
        managers: Vec<ScratchpadManager>,
        future_depth: usize,
        check_hazards: bool,
    ) -> Self {
        PlanStage {
            managers,
            future_depth,
            check_hazards,
        }
    }

    /// The per-table scratchpad managers (for cache statistics).
    pub fn managers(&self) -> &[ScratchpadManager] {
        &self.managers
    }

    pub(crate) fn managers_mut(&mut self) -> &mut [ScratchpadManager] {
        &mut self.managers
    }

    /// Asserts the paper's sliding-window guarantee: an evicted row must
    /// not be referenced by any batch in the hazard window
    /// `[i-past, i-1] ∪ [i+1, i+future]` — otherwise a RAW-②/③ (pending
    /// scratchpad write) or RAW-④ (pending CPU write-back racing a
    /// re-fetch) would occur in the pipeline.
    fn check_victim_safety(
        i: usize,
        plans: &[TablePlan],
        uniq: &[Vec<Vec<u64>>],
    ) -> Result<(), ScratchError> {
        let past = 3usize; // stage distance Train←Collect in this pipeline
        let future = 2usize; // stage distance Insert→Collect
        for (t, plan) in plans.iter().enumerate() {
            for ev in &plan.evictions {
                let lo = i.saturating_sub(past);
                for (j, u) in uniq.iter().enumerate().skip(lo).take(i - lo) {
                    if u[t].binary_search(&ev.row).is_ok() {
                        return Err(ScratchError::HazardViolation {
                            detail: format!(
                                "plan {i} evicts row {} of table {t}, still referenced by \
                                 in-flight batch {j} (RAW-2/3)",
                                ev.row
                            ),
                        });
                    }
                }
                let hi = (i + future).min(uniq.len() - 1);
                for (j, u) in uniq
                    .iter()
                    .enumerate()
                    .skip(i + 1)
                    .take(hi.saturating_sub(i))
                {
                    if u[t].binary_search(&ev.row).is_ok() {
                        return Err(ScratchError::HazardViolation {
                            detail: format!(
                                "plan {i} evicts row {} of table {t}, needed by upcoming \
                                 batch {j} (RAW-4)",
                                ev.row
                            ),
                        });
                    }
                }
            }
        }
        Ok(())
    }
}

impl Stage for PlanStage {
    fn name(&self) -> &'static str {
        "Plan"
    }

    fn execute(
        &mut self,
        ctx: &StageCtx<'_>,
        payload: &mut StagePayload,
    ) -> Result<(), ScratchError> {
        let (plans, traffic) = stages::plan(
            &mut self.managers,
            ctx.batch(),
            ctx.uniq,
            ctx.index,
            self.future_depth,
        )?;
        if self.check_hazards && ctx.pipelined {
            Self::check_victim_safety(ctx.index, &plans, ctx.uniq)?;
        }
        payload.rearm(ctx.index, plans);
        payload.traffic.plan = traffic;
        Ok(())
    }
}

/// \[Collect\] — gathers missed rows from the CPU tables and victim rows
/// from the scratchpad into the payload's staging arenas. Runs the
/// victim-residency (RAW-3) half of the hazard checker.
pub struct CollectStage {
    shared: Arc<SharedState>,
    barriers: Vec<StageBarrier>,
}

impl fmt::Debug for CollectStage {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("CollectStage")
            .field("barriers", &self.barriers)
            .finish()
    }
}

impl CollectStage {
    pub(crate) fn new(shared: Arc<SharedState>, window: crate::config::WindowConfig) -> Self {
        // The two orderings the synchronous register file provides
        // implicitly (see the paper's §IV-C hazard analysis):
        // * a victim slot chosen at Plan(i) may belong to batch i-(past+1),
        //   whose final Train update must land before the slot is read out;
        // * a row missed by batch i may have been evicted by batch
        //   i-(future+1), whose CPU write-back must land before the re-read.
        let barriers = vec![
            StageBarrier {
                after: "Train",
                lag: window.past as usize + 1,
            },
            StageBarrier {
                after: "Insert",
                lag: window.future as usize + 1,
            },
        ];
        CollectStage { shared, barriers }
    }
}

impl Stage for CollectStage {
    fn name(&self) -> &'static str {
        "Collect"
    }

    fn barriers(&self) -> Vec<StageBarrier> {
        self.barriers.clone()
    }

    fn execute(
        &mut self,
        ctx: &StageCtx<'_>,
        payload: &mut StagePayload,
    ) -> Result<(), ScratchError> {
        payload.traffic.collect = stages::collect_traffic(&payload.plans, self.shared.row_bytes());
        if !self.shared.functional {
            return Ok(());
        }
        // The RAW-3 residency check stays serial: it is cheap, and a
        // deterministic error (first failing table wins) is part of the
        // schedule-equivalence contract.
        if self.shared.check_hazards {
            for (t, plan) in payload.plans.iter().enumerate() {
                let resident = self.shared.data_resident[t].lock();
                for ev in &plan.evictions {
                    if resident[ev.slot as usize] != Some(ev.row) {
                        return Err(ScratchError::HazardViolation {
                            detail: format!(
                                "collect {}: victim slot {} of table {t} holds {:?}, \
                                 expected row {} (RAW-3)",
                                payload.index, ev.slot, resident[ev.slot as usize], ev.row
                            ),
                        });
                    }
                }
            }
        }
        // Shard per table: each worker owns one table's pre-sized miss and
        // evict blocks and takes only that table's locks.
        let miss_counts: Vec<usize> = payload.plans.iter().map(|p| p.fills.len()).collect();
        let evict_counts: Vec<usize> = payload.plans.iter().map(|p| p.evictions.len()).collect();
        let staged_rows: usize = miss_counts.iter().chain(&evict_counts).sum();
        payload.staged_miss.prepare(&miss_counts);
        payload.staged_evict.prepare(&evict_counts);
        let pool = ctx.workers.for_work((staged_rows * self.shared.dim) as u64);
        let shared = &*self.shared;
        let plans = &payload.plans;
        let num_tables = plans.len();
        let panic_task = ctx
            .faults
            .and_then(|f| f.worker_panic(ctx.index, "Collect"))
            .map(|shard| shard % num_tables.max(1));
        let index = ctx.index;
        let tasks: Vec<_> = payload
            .staged_miss
            .table_blocks_mut()
            .into_iter()
            .zip(payload.staged_evict.table_blocks_mut())
            .zip(plans)
            .enumerate()
            .map(|(t, ((miss_block, evict_block), plan))| {
                move || {
                    if panic_task == Some(t) {
                        panic!(
                            "injected worker panic (iteration {index}, stage Collect, shard {t})"
                        );
                    }
                    {
                        let table = shared.cpu_tables[t].lock();
                        stages::stage_misses_into(plan, &table, miss_block);
                    }
                    {
                        let store = shared.storages[t].lock();
                        stages::stage_evictions_into(plan, &store, evict_block);
                    }
                }
            })
            .collect();
        let region_start = ctx.telemetry.map_or(0, RunTelemetry::now_ns);
        let (_, timings) = pool.run_tasks(tasks)?;
        if let Some(tel) = ctx.telemetry {
            tel.shard_region(
                ctx.lane,
                ctx.index,
                "Collect",
                region_start,
                &timings,
                !pool.is_inline(),
            );
        }
        payload.shard_nanos.extend(timings.iter().map(|t| t.dur_ns));
        // Payload integrity: checksum the staged rows so corruption in
        // flight (injected or real) is caught at [Insert] before any
        // model state is touched. Only armed when the fault plan contains
        // CorruptPayload faults — checksumming every payload would tax
        // the fault-free path.
        if let Some(inj) = ctx.faults {
            if inj.checksums_enabled() {
                payload.checksum = Some(stages::staged_checksum(
                    &payload.staged_miss,
                    &payload.staged_evict,
                ));
                if inj.should_corrupt(ctx.index)
                    && (payload.staged_miss.corrupt_first_row()
                        || payload.staged_evict.corrupt_first_row())
                {
                    inj.record_corruption(ctx.index);
                }
            }
        }
        Ok(())
    }
}

/// \[Exchange\] — the duplex PCIe hop. The data movement itself is the
/// staging arenas changing owner inside the payload, so this stage only
/// accounts the transfer traffic.
#[derive(Debug)]
pub struct ExchangeStage {
    row_bytes: u64,
}

impl ExchangeStage {
    pub(crate) fn new(row_bytes: u64) -> Self {
        ExchangeStage { row_bytes }
    }
}

impl Stage for ExchangeStage {
    fn name(&self) -> &'static str {
        "Exchange"
    }

    fn execute(
        &mut self,
        _ctx: &StageCtx<'_>,
        payload: &mut StagePayload,
    ) -> Result<(), ScratchError> {
        payload.traffic.exchange = stages::exchange_traffic(&payload.plans, self.row_bytes);
        Ok(())
    }
}

/// \[Insert\] — lands staged missed rows in their scratchpad slots and
/// staged victim rows back in the CPU tables, then advances the
/// data-residency shadow (the hazard checker's ground truth).
pub struct InsertStage {
    shared: Arc<SharedState>,
}

impl fmt::Debug for InsertStage {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("InsertStage").finish()
    }
}

impl InsertStage {
    pub(crate) fn new(shared: Arc<SharedState>) -> Self {
        InsertStage { shared }
    }
}

impl Stage for InsertStage {
    fn name(&self) -> &'static str {
        "Insert"
    }

    fn execute(
        &mut self,
        ctx: &StageCtx<'_>,
        payload: &mut StagePayload,
    ) -> Result<(), ScratchError> {
        payload.traffic.insert = stages::insert_traffic(&payload.plans, self.shared.row_bytes());
        if !self.shared.functional {
            return Ok(());
        }
        // Verify the staged rows against the checksum [Collect] recorded
        // — BEFORE any model state is mutated, so a corrupted payload
        // fails the iteration cleanly instead of landing garbage.
        if let Some(expected) = payload.checksum {
            let actual = stages::staged_checksum(&payload.staged_miss, &payload.staged_evict);
            if actual != expected {
                return Err(ScratchError::PayloadCorrupted {
                    iteration: payload.index,
                    expected,
                    actual,
                });
            }
        }
        // Shard per table: each worker lands one table's fills and
        // write-backs and advances its residency shadow, taking only that
        // table's locks.
        let moved_rows: usize = payload
            .plans
            .iter()
            .map(|p| p.fills.len() + p.evictions.len())
            .sum();
        let pool = ctx.workers.for_work((moved_rows * self.shared.dim) as u64);
        let shared = &*self.shared;
        let staged_miss = &payload.staged_miss;
        let staged_evict = &payload.staged_evict;
        let num_tables = payload.plans.len();
        let panic_task = ctx
            .faults
            .and_then(|f| f.worker_panic(ctx.index, "Insert"))
            .map(|shard| shard % num_tables.max(1));
        let index = ctx.index;
        let undo_on = shared.undo_active.load(Ordering::Relaxed);
        let tasks: Vec<_> = payload
            .plans
            .iter()
            .enumerate()
            .map(|(t, plan)| {
                move || {
                    if panic_task == Some(t) {
                        panic!(
                            "injected worker panic (iteration {index}, stage Insert, shard {t})"
                        );
                    }
                    {
                        let mut table = shared.cpu_tables[t].lock();
                        if undo_on {
                            // Undo lock strictly inside the resource lock
                            // (see the SharedState lock-ordering rule).
                            let mut undo = shared.undo[t].lock();
                            for ev in &plan.evictions {
                                undo.save_cpu_row(ev.row, table.row(ev.row as usize));
                            }
                        }
                        stages::insert_evictions(t, plan, staged_evict, &mut table);
                    }
                    {
                        let mut store = shared.storages[t].lock();
                        if undo_on {
                            let mut undo = shared.undo[t].lock();
                            for f in &plan.fills {
                                undo.save_store_row(f.slot, store.row(f.slot as usize));
                            }
                        }
                        stages::insert_fills(t, plan, staged_miss, &mut store);
                    }
                    {
                        let mut resident = shared.data_resident[t].lock();
                        if undo_on {
                            let mut undo = shared.undo[t].lock();
                            for f in &plan.fills {
                                undo.save_resident(f.slot, resident[f.slot as usize]);
                            }
                        }
                        for f in &plan.fills {
                            resident[f.slot as usize] = Some(f.row);
                        }
                    }
                }
            })
            .collect();
        let region_start = ctx.telemetry.map_or(0, RunTelemetry::now_ns);
        let (_, timings) = pool.run_tasks(tasks)?;
        if let Some(tel) = ctx.telemetry {
            tel.shard_region(
                ctx.lane,
                ctx.index,
                "Insert",
                region_start,
                &timings,
                !pool.is_inline(),
            );
        }
        payload.shard_nanos.extend(timings.iter().map(|t| t.dur_ns));
        Ok(())
    }
}

/// \[Train\] — owns the dense backend and the flat pooled/gradient
/// arenas: gathers pooled embeddings from the scratchpad, steps the dense
/// model, scatters embedding gradients back. Runs the always-hit half of
/// the hazard checker and records the iteration's loss into the payload.
pub struct TrainStage<B> {
    shared: Arc<SharedState>,
    backend: B,
    arena: TrainArena,
}

impl<B> fmt::Debug for TrainStage<B> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("TrainStage").finish()
    }
}

impl<B: DenseBackend> TrainStage<B> {
    pub(crate) fn new(shared: Arc<SharedState>, backend: B) -> Self {
        TrainStage {
            shared,
            backend,
            arena: TrainArena::new(),
        }
    }

    /// The dense backend.
    pub fn backend(&self) -> &B {
        &self.backend
    }

    /// Mutable access for the supervised runtime's snapshot/restore.
    pub(crate) fn backend_mut(&mut self) -> &mut B {
        &mut self.backend
    }
}

impl<B: DenseBackend + Send> Stage for TrainStage<B> {
    fn name(&self) -> &'static str {
        "Train"
    }

    fn execute(
        &mut self,
        ctx: &StageCtx<'_>,
        payload: &mut StagePayload,
    ) -> Result<(), ScratchError> {
        let batch = ctx.batch();
        // Traffic: embedding forward + backward entirely on GPU memory,
        // plus the dense backend's own contribution.
        let mut traffic = stages::train_traffic(&payload.plans, batch, self.shared.dim);
        traffic += self.backend.traffic(batch.batch_size());
        payload.traffic.train = traffic;
        payload.loss = 0.0;
        if !self.shared.functional {
            return Ok(());
        }

        // Always-hit assertion: every row's data is resident before the
        // train step gathers it (the paper's core guarantee).
        if self.shared.check_hazards {
            for (t, plan) in payload.plans.iter().enumerate() {
                let resident = self.shared.data_resident[t].lock();
                for (id, slot) in plan.assignments() {
                    if resident[slot as usize] != Some(id) {
                        return Err(ScratchError::HazardViolation {
                            detail: format!(
                                "train {}: table {t} row {id} not resident in slot {slot} \
                                 (holds {:?}) — always-hit property violated",
                                payload.index, resident[slot as usize]
                            ),
                        });
                    }
                }
            }
        }

        // Functional training from the scratchpad, through the flat
        // pooled/gradient arenas.
        let dim = self.shared.dim;
        let batch_size = batch.batch_size();
        self.arena.prepare(payload.plans.len(), batch_size, dim);

        // Forward gather, sharded by (table × contiguous sample range):
        // every sample's pooled sum is computed whole by exactly one
        // worker, so any pool width gathers bit-identical arenas. All
        // storages are read-locked up front so chunks of the same table
        // can gather concurrently.
        let gather_pool = ctx.workers.for_work((batch.total_lookups() * dim) as u64);
        let ranges = gather_pool.split_ranges(batch_size);
        {
            let plans = &payload.plans;
            let guards: Vec<_> = self.shared.storages.iter().map(|m| m.lock()).collect();
            let mut tasks = Vec::with_capacity(plans.len() * ranges.len());
            for (t, block) in self.arena.pooled_blocks_mut().enumerate() {
                let plan = &plans[t];
                let bag = batch.bag(t);
                let store: &DenseStore = &guards[t];
                let mut rest = block;
                for r in &ranges {
                    let (head, tail) = rest.split_at_mut(r.len() * dim);
                    rest = tail;
                    let (lo, hi) = (r.start, r.end);
                    tasks.push(move || stages::gather_pooled_range(store, bag, plan, lo, hi, head));
                }
            }
            let region_start = ctx.telemetry.map_or(0, RunTelemetry::now_ns);
            let (_, timings) = gather_pool.run_tasks(tasks)?;
            if let Some(tel) = ctx.telemetry {
                tel.shard_region(
                    ctx.lane,
                    ctx.index,
                    "Train",
                    region_start,
                    &timings,
                    !gather_pool.is_inline(),
                );
            }
            payload.shard_nanos.extend(timings.iter().map(|t| t.dur_ns));
        }

        // The dense step stays single-shard: its batch-wide weight-update
        // reductions have a pinned accumulation order (see the determinism
        // contract in docs/runtime-api.md).
        let (pooled, grads) = self.arena.split();
        let step = self.backend.step(payload.index, batch, pooled, grads);
        let lr = self.backend.learning_rate();

        // Backward scatter, sharded per table: the duplicate → coalesce →
        // scatter chain of a table is one unsplittable reduction, but
        // different tables touch disjoint storages.
        let scatter_pool = ctx
            .workers
            .for_work((batch.total_lookups() * dim * 2) as u64);
        let shared = &*self.shared;
        let arena = &self.arena;
        let num_tables = payload.plans.len();
        let panic_task = ctx
            .faults
            .and_then(|f| f.worker_panic(ctx.index, "Train"))
            .map(|shard| shard % num_tables.max(1));
        let index = ctx.index;
        let undo_on = shared.undo_active.load(Ordering::Relaxed);
        let tasks: Vec<_> = payload
            .plans
            .iter()
            .enumerate()
            .map(|(t, plan)| {
                let bag = batch.bag(t);
                move || {
                    if panic_task == Some(t) {
                        panic!("injected worker panic (iteration {index}, stage Train, shard {t})");
                    }
                    let mut store = shared.storages[t].lock();
                    if undo_on {
                        // Undo lock strictly inside the storage lock (see
                        // the SharedState lock-ordering rule).
                        let mut undo = shared.undo[t].lock();
                        for &slot in &plan.unique_slots {
                            undo.save_store_row(slot, store.row(slot as usize));
                        }
                    }
                    stages::scatter_grads(&mut store, bag, arena.grads_table(t), lr, plan);
                }
            })
            .collect();
        let region_start = ctx.telemetry.map_or(0, RunTelemetry::now_ns);
        let (_, timings) = scatter_pool.run_tasks(tasks)?;
        if let Some(tel) = ctx.telemetry {
            tel.shard_region(
                ctx.lane,
                ctx.index,
                "Train",
                region_start,
                &timings,
                !scatter_pool.is_inline(),
            );
        }
        payload.shard_nanos.extend(timings.iter().map(|t| t.dur_ns));

        payload.loss = step.loss;
        Ok(())
    }
}
