//! Scoped worker pool for intra-stage data parallelism.
//!
//! [`WorkerPool`] is the fork-join primitive behind
//! `Schedule::DataParallel`: a stage splits its iteration into disjoint
//! shard tasks (per table, or per contiguous sample range) and hands them
//! to [`WorkerPool::run_tasks`], which fans them out over
//! [`std::thread::scope`] and returns results *and per-shard wall-clock
//! nanos* in task order. The pool is deliberately stateless — a width plus
//! a spawn policy — so it can live inside the `Copy` stage context and
//! cost nothing when parallelism is disabled.
//!
//! # Determinism
//!
//! The pool never changes *what* is computed, only *where*: every task
//! owns a disjoint slice of the output, and callers are required to shard
//! along boundaries that keep each floating-point reduction whole (a
//! sample's pooled sum, a table's coalesced gradient). Results are
//! reassembled in task-submission order, so any width — including the
//! inline width-1 path — produces bit-identical output. That contract is
//! what lets [`WorkerPool::for_work`] pick inline execution for small
//! iterations without perturbing a single bit.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::time::Instant;

use crate::error::ScratchError;

/// Timing of one shard task, measured against a region clock that starts
/// when [`WorkerPool::run_tasks`] is entered. The two timestamps come
/// from the same `Instant` reads the pool always took for its per-task
/// nanos, so recording them adds nothing to the hot path; telemetry
/// turns them into absolute worker-lane spans by adding the region's
/// start time.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShardTiming {
    /// Start offset in nanoseconds from region entry.
    pub start_ns: u64,
    /// Wall-clock duration of the task in nanoseconds.
    pub dur_ns: u64,
    /// Worker that ran the task (0 = the calling thread; tasks are dealt
    /// round-robin, so worker `w` runs tasks `w, w+groups, …`).
    pub worker: u16,
}

/// Renders a caught panic payload as a human-readable string.
fn panic_detail(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_owned()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_owned()
    }
}

/// A fixed-width fork-join worker pool.
///
/// Width 1 (the [`WorkerPool::inline`] pool) executes tasks on the calling
/// thread with no synchronization at all; wider pools distribute tasks
/// round-robin over scoped threads spawned per [`WorkerPool::run_tasks`]
/// call. Spawning per region keeps the pool borrow-friendly (tasks may
/// capture non-`'static` references to stage state) at the cost of a
/// thread launch per region, which [`WorkerPool::MIN_SHARD_WORK`] keeps
/// off the small-iteration path.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WorkerPool {
    threads: usize,
}

impl WorkerPool {
    /// Work floor (in f32 elements touched) below which
    /// [`WorkerPool::for_work`] degrades to inline execution: under it,
    /// the per-region thread-launch cost outweighs any parallel gain.
    pub const MIN_SHARD_WORK: u64 = 32_768;

    /// A pool of exactly `threads` workers (clamped to at least 1).
    pub fn new(threads: usize) -> Self {
        WorkerPool {
            threads: threads.max(1),
        }
    }

    /// The width-1 pool: every task runs inline on the calling thread.
    pub const fn inline() -> Self {
        WorkerPool { threads: 1 }
    }

    /// A pool sized to the machine's available parallelism (1 if that
    /// cannot be determined).
    pub fn auto() -> Self {
        let threads = std::thread::available_parallelism()
            .map(std::num::NonZeroUsize::get)
            .unwrap_or(1);
        WorkerPool::new(threads)
    }

    /// Pool width.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Whether tasks run on the calling thread only.
    pub fn is_inline(&self) -> bool {
        self.threads == 1
    }

    /// The pool to use for a region touching roughly `work_elems` f32
    /// elements: this pool if the region is big enough to amortize thread
    /// launches, the inline pool otherwise. Because shard decomposition
    /// never changes results, callers may apply this freely per region.
    pub fn for_work(&self, work_elems: u64) -> WorkerPool {
        if work_elems >= Self::MIN_SHARD_WORK {
            *self
        } else {
            WorkerPool::inline()
        }
    }

    /// Splits `0..total` into at most `threads` contiguous, near-equal,
    /// non-empty ranges (fewer when `total < threads`; none when `total`
    /// is 0).
    pub fn split_ranges(&self, total: usize) -> Vec<std::ops::Range<usize>> {
        let shards = self.threads.min(total);
        let mut out = Vec::with_capacity(shards);
        let mut start = 0;
        for k in 0..shards {
            // Distribute the remainder one item at a time: shard k gets
            // ⌈(total - k·size)/…⌉-balanced length.
            let len = (total - start) / (shards - k);
            out.push(start..start + len);
            start += len;
        }
        out
    }

    /// Runs every task, returning `(results, per-task [`ShardTiming`]s)`
    /// in task-submission order regardless of which worker ran what.
    ///
    /// Width 1 (or a single task) executes inline; otherwise tasks are
    /// dealt round-robin to `min(threads, tasks)` scoped workers, with the
    /// calling thread serving as worker 0.
    ///
    /// # Errors
    ///
    /// A panicking task is caught (`catch_unwind`) and converted to
    /// [`ScratchError::WorkerPanic`] instead of poisoning the scope; when
    /// several tasks panic, the lowest submission index wins. Tasks other
    /// than the panicking one still run to completion — any partial
    /// writes the failed task made to its disjoint output are the
    /// caller's to discard (the supervised pipeline rolls them back).
    pub fn run_tasks<T, F>(&self, tasks: Vec<F>) -> Result<(Vec<T>, Vec<ShardTiming>), ScratchError>
    where
        T: Send,
        F: FnOnce() -> T + Send,
    {
        let region_t0 = Instant::now();
        let timed = |worker: u16, task: F| {
            let start_ns = region_t0.elapsed().as_nanos() as u64;
            let out = catch_unwind(AssertUnwindSafe(task))
                .map_err(|payload| panic_detail(payload.as_ref()));
            let end_ns = region_t0.elapsed().as_nanos() as u64;
            (
                out,
                ShardTiming {
                    start_ns,
                    dur_ns: end_ns.saturating_sub(start_ns),
                    worker,
                },
            )
        };
        let n = tasks.len();
        let mut slots: Vec<Option<(Result<T, String>, ShardTiming)>> =
            (0..n).map(|_| None).collect();
        if self.threads <= 1 || n <= 1 {
            for (k, task) in tasks.into_iter().enumerate() {
                slots[k] = Some(timed(0, task));
            }
        } else {
            let groups = self.threads.min(n);
            let mut buckets: Vec<Vec<(usize, F)>> = (0..groups).map(|_| Vec::new()).collect();
            for (k, task) in tasks.into_iter().enumerate() {
                buckets[k % groups].push((k, task));
            }
            std::thread::scope(|scope| {
                let mut rest = buckets.into_iter().enumerate();
                let (_, local) = rest.next().expect("at least one bucket");
                let handles: Vec<_> = rest
                    .map(|(w, bucket)| {
                        let timed = &timed;
                        scope.spawn(move || {
                            bucket
                                .into_iter()
                                .map(|(k, task)| (k, timed(w as u16, task)))
                                .collect::<Vec<_>>()
                        })
                    })
                    .collect();
                for (k, task) in local {
                    slots[k] = Some(timed(0, task));
                }
                for handle in handles {
                    for (k, result) in handle.join().expect("worker thread died outside a task") {
                        slots[k] = Some(result);
                    }
                }
            });
        }
        let (mut outs, mut timings) = (Vec::with_capacity(n), Vec::with_capacity(n));
        for (k, slot) in slots.into_iter().enumerate() {
            let (out, timing) = slot.expect("every task produced a result");
            match out {
                Ok(v) => {
                    outs.push(v);
                    timings.push(timing);
                }
                Err(detail) => return Err(ScratchError::WorkerPanic { task: k, detail }),
            }
        }
        Ok((outs, timings))
    }
}

impl Default for WorkerPool {
    fn default() -> Self {
        WorkerPool::inline()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_come_back_in_task_order() {
        for threads in [1, 2, 4, 7] {
            let pool = WorkerPool::new(threads);
            let tasks: Vec<_> = (0..23).map(|k| move || k * k).collect();
            let (outs, nanos) = pool.run_tasks(tasks).unwrap();
            assert_eq!(outs, (0..23).map(|k| k * k).collect::<Vec<i32>>());
            assert_eq!(nanos.len(), 23);
        }
    }

    #[test]
    fn disjoint_slices_can_be_written_from_tasks() {
        let mut data = vec![0u64; 64];
        let pool = WorkerPool::new(4);
        let tasks: Vec<_> = data
            .chunks_mut(16)
            .enumerate()
            .map(|(i, chunk)| {
                move || {
                    for (j, v) in chunk.iter_mut().enumerate() {
                        *v = (i * 16 + j) as u64;
                    }
                }
            })
            .collect();
        pool.run_tasks(tasks).unwrap();
        assert_eq!(data, (0..64).collect::<Vec<u64>>());
    }

    #[test]
    fn panicking_task_is_caught_as_worker_panic() {
        for threads in [1, 2, 4] {
            let pool = WorkerPool::new(threads);
            let tasks: Vec<Box<dyn FnOnce() -> usize + Send>> = (0..8usize)
                .map(|k| {
                    Box::new(move || {
                        if k == 5 {
                            panic!("shard {k} exploded");
                        }
                        k
                    }) as Box<dyn FnOnce() -> usize + Send>
                })
                .collect();
            let err = pool.run_tasks(tasks).unwrap_err();
            assert_eq!(
                err,
                ScratchError::WorkerPanic {
                    task: 5,
                    detail: "shard 5 exploded".to_owned(),
                },
                "width {threads}"
            );
        }
    }

    #[test]
    fn first_panic_by_submission_order_wins() {
        let pool = WorkerPool::new(4);
        let tasks: Vec<Box<dyn FnOnce() + Send>> = (0..8)
            .map(|k| {
                Box::new(move || {
                    if k >= 3 {
                        panic!("task {k}");
                    }
                }) as Box<dyn FnOnce() + Send>
            })
            .collect();
        match pool.run_tasks(tasks).unwrap_err() {
            ScratchError::WorkerPanic { task, detail } => {
                assert_eq!(task, 3);
                assert_eq!(detail, "task 3");
            }
            other => panic!("expected WorkerPanic, got {other:?}"),
        }
    }

    #[test]
    fn split_ranges_cover_exactly_once() {
        for threads in [1, 2, 3, 8] {
            let pool = WorkerPool::new(threads);
            for total in [0usize, 1, 7, 8, 9, 100] {
                let ranges = pool.split_ranges(total);
                assert_eq!(ranges.len(), threads.min(total));
                assert!(ranges.iter().all(|r| !r.is_empty()));
                let mut next = 0;
                for r in &ranges {
                    assert_eq!(r.start, next);
                    next = r.end;
                }
                assert_eq!(next, total, "{threads} threads over {total}");
                // Near-equal: lengths differ by at most one.
                if let (Some(lo), Some(hi)) = (
                    ranges.iter().map(|r| r.len()).min(),
                    ranges.iter().map(|r| r.len()).max(),
                ) {
                    assert!(hi - lo <= 1);
                }
            }
        }
    }

    #[test]
    fn zero_width_clamps_to_inline() {
        let pool = WorkerPool::new(0);
        assert_eq!(pool.threads(), 1);
        assert!(pool.is_inline());
    }

    #[test]
    fn small_work_degrades_to_inline() {
        let pool = WorkerPool::new(8);
        assert!(pool.for_work(WorkerPool::MIN_SHARD_WORK - 1).is_inline());
        assert_eq!(pool.for_work(WorkerPool::MIN_SHARD_WORK), pool);
    }
}
