//! `scratchpipe` — the paper's primary contribution: a software runtime
//! that manages GPU DRAM as an **always-hit embedding cache** for RecSys
//! training.
//!
//! # How it works (paper §IV)
//!
//! Conventional embedding caches react to misses; ScratchPipe *never
//! misses*, because the training dataset records every future sparse
//! feature ID. The runtime reads ahead, and a six-stage software pipeline
//!
//! ```text
//! Load → Plan → Collect → Exchange → Insert → Train
//! ```
//!
//! prefetches exactly the rows each upcoming mini-batch needs into a GPU
//! *scratchpad* before its training step begins:
//!
//! * **\[Plan\]** ([`ScratchpadManager::plan`]) queries the [`HitMap`],
//!   assigns scratchpad slots to missed rows, and picks eviction victims —
//!   but only among slots whose [`HoldMask`] is clear. The Hold mask
//!   implements the paper's sliding window (3 past + current + 2 future
//!   mini-batches) that eliminates the pipeline's RAW hazards ①–④.
//! * **\[Collect\]** gathers missed rows from the CPU tables and victim
//!   rows from the scratchpad.
//! * **\[Exchange\]** crosses PCIe in both directions simultaneously.
//! * **\[Insert\]** fills missed rows into the scratchpad and writes
//!   evicted (dirty, trained) rows back to the CPU tables.
//! * **\[Train\]** runs the full embedding + DNN training step entirely at
//!   GPU memory speed — every access is a hit, by construction.
//!
//! The [`Pipeline`] executes this pipeline functionally: real `f32`
//! embeddings are trained, and the final model state is **bit-identical**
//! to sequential execution of the same trace — the paper's claim that
//! ScratchPipe "does not change the algorithmic properties of SGD",
//! which this crate's tests verify literally.
//!
//! # One stage layer, one driver, pluggable schedules
//!
//! The five stage bodies live **once**: free kernels in [`stages`],
//! wrapped by the [`Stage`] implementors of [`stage`]. The single generic
//! driver, [`Pipeline`], executes them under a [`Schedule`] — the
//! synchronous register pipeline ([`Schedule::Sync`]), one OS thread per
//! stage ([`Schedule::Threaded`]), intra-stage data parallelism over a
//! [`WorkerPool`] ([`Schedule::DataParallel`]), the unpipelined straw-man
//! ([`Schedule::Sequential`]), or work-based selection
//! ([`Schedule::Auto`]) — so bit-exact equivalence with
//! [`runtime::train_direct`], and identical per-stage [`StageTraffic`]
//! accounting between schedules, holds by construction. Pipelines are
//! built with [`PipelineBuilder`], and every run can emit a structured
//! JSONL audit stream ([`audit`]).
//!
//! # Flat hot-path buffer layout
//!
//! Every hot-path buffer is a single stride-indexed `f32` arena, allocated
//! once per run and reused each iteration (stride = `dim`; row `i` of a
//! buffer lives at `i*dim..(i+1)*dim`):
//!
//! * staged miss/evict rows ([`stages::StagedRows`]) concatenate all
//!   tables with per-table row offsets;
//! * pooled embeddings and embedding gradients
//!   ([`stages::TrainArena`]) are `num_tables × batch × dim`, table `t` at
//!   `t·batch·dim..`, sample `s` at `s·dim` within the table block — the
//!   exact layout [`backend::PooledView`] exposes to the dense backend and
//!   the DLRM interaction consumes without copying.
//!
//! # Example
//!
//! ```
//! use embeddings::EmbeddingTable;
//! use scratchpipe::{Pipeline, PipelineConfig, Schedule, UnitBackend};
//! use tracegen::{LocalityProfile, TraceConfig, TraceGenerator};
//!
//! let trace_cfg = TraceConfig::functional_default(LocalityProfile::Medium);
//! let batches = TraceGenerator::new(trace_cfg).take_batches(10);
//! let tables: Vec<EmbeddingTable> = (0..trace_cfg.num_tables)
//!     .map(|t| EmbeddingTable::seeded(trace_cfg.rows_per_table as usize, 16, t as u64))
//!     .collect();
//! let mut pipeline = Pipeline::builder()
//!     .config(PipelineConfig::functional(16, 4096))
//!     .tables(tables)
//!     .backend(UnitBackend::new(0.01))
//!     .schedule(Schedule::Sync)
//!     .build()
//!     .unwrap();
//! let report = pipeline.run(&batches).unwrap();
//! assert_eq!(report.iterations, 10);
//! let trained = pipeline.into_tables();
//! assert_eq!(trained.len(), trace_cfg.num_tables);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod audit;
pub mod backend;
pub mod config;
pub mod error;
pub mod faults;
pub mod hitmap;
pub mod holdmask;
pub mod index;
pub mod pipeline;
pub mod policy;
pub mod recovery;
pub mod runtime;
pub mod scratchpad;
pub mod stage;
pub mod stages;
pub mod telemetry;
pub mod workers;

pub use audit::{AuditEmitter, AuditSink, FileSink, MemorySink, RunDescriptor};
pub use backend::{DenseBackend, PooledView, StepResult, UnitBackend};
pub use config::{PipelineConfig, WindowConfig};
pub use error::ScratchError;
pub use faults::{Fault, FaultInjector, FaultKind, FaultPlan, FaultySink, InjectionRecord};
pub use hitmap::HitMap;
pub use holdmask::{HoldMask, NaiveHoldMask};
pub use index::SlotIndex;
pub use pipeline::{Pipeline, PipelineBuilder, Schedule};
pub use policy::EvictionPolicy;
pub use recovery::{RecoveryPolicy, RecoveryStats, SupervisedRun};
pub use runtime::{IterationRecord, PipelineReport, StageTraffic};
pub use scratchpad::{ScratchpadManager, TablePlan};
pub use stage::{Stage, StageBarrier, StageCtx};
pub use stages::{PayloadPool, StagePayload, StagedRows, TrainArena};
pub use telemetry::{Lane, RunTelemetry, Telemetry};
pub use workers::{ShardTiming, WorkerPool};
