//! The shared stage-kernel layer: one implementation of the five
//! Plan/Collect/Exchange/Insert/Train stage bodies, wrapped by the
//! [`Stage`](crate::stage::Stage) implementors of [`crate::stage`] and
//! driven under every [`Schedule`](crate::pipeline::Schedule) by the
//! generic [`Pipeline`](crate::pipeline::Pipeline). The paper describes
//! one pipeline; this module is its single source of truth, so bit-exact
//! equivalence between schedules — and identical per-stage
//! [`StageTraffic`] accounting — holds by construction rather than by
//! copy-paste discipline.
//!
//! # Flat hot-path buffers
//!
//! Every buffer a mini-batch carries through the pipeline is a flat,
//! stride-indexed arena reused across iterations:
//!
//! * [`StagedRows`] — the \[Collect\]→\[Insert\] staging payload (missed
//!   rows gathered from the CPU tables, victim rows gathered from the
//!   scratchpad), all tables concatenated into one `DenseStore` with
//!   per-table offsets. Row `k` of table `t` lives at
//!   `(offset[t] + k) · dim ..`.
//! * [`TrainArena`] — the \[Train\] stage's pooled-embedding and
//!   embedding-gradient buffers, `num_tables × batch × dim` each, handed
//!   to the dense backend as a [`PooledView`].
//! * [`StagePayload`] / [`PayloadPool`] — the per-mini-batch pipeline
//!   register; retired payloads are recycled, so a steady-state run keeps
//!   exactly *pipeline-depth* payloads alive and allocates none.

use embeddings::store::DenseStore;
use embeddings::{ops, EmbeddingTable, SparseBatch, TableBag, VectorStore};
use memsim::cost::primitives;
use memsim::Traffic;

use crate::backend::PooledView;
use crate::error::ScratchError;
use crate::runtime::StageTraffic;
use crate::scratchpad::{ScratchpadManager, TablePlan};

/// Staged embedding rows for one in-flight mini-batch: all tables
/// concatenated into one flat arena with per-table row offsets.
///
/// The backing [`DenseStore`] is cleared — not deallocated — between
/// iterations, so the steady state stages rows with zero allocator
/// traffic.
#[derive(Debug)]
pub struct StagedRows {
    rows: DenseStore,
    /// `offsets[t]..offsets[t + 1]` is table `t`'s row range;
    /// `offsets.len() == tables_sealed + 1`.
    offsets: Vec<usize>,
}

impl StagedRows {
    /// Creates an empty arena for `dim`-wide rows.
    pub fn new(dim: usize) -> Self {
        StagedRows {
            rows: DenseStore::zeros(0, dim),
            offsets: vec![0],
        }
    }

    /// Drops all staged rows and table boundaries, keeping the allocation.
    pub fn reset(&mut self) {
        self.rows.clear_rows();
        self.offsets.truncate(1);
    }

    /// Pre-allocates space for `additional` more rows.
    pub fn reserve_rows(&mut self, additional: usize) {
        self.rows.reserve_rows(additional);
    }

    /// Sizes and seals the arena for exactly `counts[t]` rows per table in
    /// one shot, so the per-table blocks can be filled *out of order* (or
    /// concurrently) through [`StagedRows::table_blocks_mut`]. The result
    /// is indistinguishable from pushing every row through
    /// [`StagedRows::push_row`] + [`StagedRows::end_table`] in table order
    /// once all blocks are written.
    pub fn prepare(&mut self, counts: &[usize]) {
        self.rows.clear_rows();
        self.offsets.truncate(1);
        let mut total = 0;
        for &c in counts {
            total += c;
            self.offsets.push(total);
        }
        self.rows.resize_rows(total);
    }

    /// Disjoint mutable per-table row blocks (flat `table_rows(t) × dim`
    /// slices), one per table sealed by [`StagedRows::prepare`] — the
    /// write targets handed to collect workers.
    pub fn table_blocks_mut(&mut self) -> Vec<&mut [f32]> {
        let dim = self.rows.dim();
        let bounds: Vec<usize> = self.offsets.iter().map(|&o| o * dim).collect();
        let mut out = Vec::with_capacity(bounds.len().saturating_sub(1));
        let mut rest = self.rows.as_flat_mut();
        for w in bounds.windows(2) {
            let (head, tail) = rest.split_at_mut(w[1] - w[0]);
            out.push(head);
            rest = tail;
        }
        out
    }

    /// Appends one row to the table currently being staged.
    ///
    /// # Panics
    ///
    /// Panics if `row.len() != dim`.
    pub fn push_row(&mut self, row: &[f32]) {
        self.rows.push_row(row);
    }

    /// Seals the current table: subsequent rows belong to the next table.
    pub fn end_table(&mut self) {
        self.offsets.push(self.rows.len());
    }

    /// Row `k` of (sealed) table `t`.
    ///
    /// # Panics
    ///
    /// Panics if `t` is unsealed or `k` out of range.
    pub fn row(&self, t: usize, k: usize) -> &[f32] {
        let (lo, hi) = (self.offsets[t], self.offsets[t + 1]);
        assert!(k < hi - lo, "staged row {k} out of range for table {t}");
        self.rows.row(lo + k)
    }

    /// Rows staged for (sealed) table `t`.
    pub fn table_rows(&self, t: usize) -> usize {
        self.offsets[t + 1] - self.offsets[t]
    }

    /// Total rows staged across all tables.
    pub fn total_rows(&self) -> usize {
        self.rows.len()
    }

    /// Total staged bytes (fp32 payload).
    pub fn staged_bytes(&self) -> u64 {
        (self.rows.len() * self.rows.dim() * 4) as u64
    }

    /// Folds this arena's table boundaries and row bits into an FNV-1a
    /// checksum state (see [`staged_checksum`]).
    fn fold_checksum(&self, mut hash: u64) -> u64 {
        const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;
        for &offset in &self.offsets {
            hash = (hash ^ offset as u64).wrapping_mul(FNV_PRIME);
        }
        for &v in self.rows.as_flat() {
            hash = (hash ^ u64::from(v.to_bits())).wrapping_mul(FNV_PRIME);
        }
        hash
    }

    /// Flips the bits of the first staged element (fault injection's
    /// payload corruption). Returns false when nothing is staged.
    pub(crate) fn corrupt_first_row(&mut self) -> bool {
        match self.rows.as_flat_mut().first_mut() {
            Some(v) => {
                *v = f32::from_bits(v.to_bits() ^ 0xDEAD_BEEF);
                true
            }
            None => false,
        }
    }
}

/// FNV-1a checksum over a payload's staged miss and evict arenas (table
/// boundaries and the exact f32 bit patterns). \[Collect\] records it
/// when a [`FaultPlan`](crate::faults::FaultPlan) with payload-corruption
/// faults is armed; \[Insert\] recomputes and compares before touching
/// any model state.
pub fn staged_checksum(miss: &StagedRows, evict: &StagedRows) -> u64 {
    const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    evict.fold_checksum(miss.fold_checksum(FNV_OFFSET))
}

/// One mini-batch's pipeline register: the plans chosen at \[Plan\], the
/// rows staged at \[Collect\], and the per-stage traffic accumulated as
/// the payload flows through the pipeline.
#[derive(Debug)]
pub struct StagePayload {
    /// Mini-batch index.
    pub index: usize,
    /// Per-table \[Plan\] output.
    pub plans: Vec<TablePlan>,
    /// Missed rows gathered from the CPU tables (CPU→GPU direction).
    pub staged_miss: StagedRows,
    /// Victim rows gathered from the scratchpad (GPU→CPU direction).
    pub staged_evict: StagedRows,
    /// Per-stage traffic of this mini-batch, filled in stage by stage.
    pub traffic: StageTraffic,
    /// Training loss of this mini-batch, filled at \[Train\].
    pub loss: f32,
    /// Wall-clock nanoseconds per executed stage, in execution order
    /// (recorded by the pipeline driver for the audit log).
    pub stage_nanos: Vec<u64>,
    /// Per-shard wall-clock nanoseconds of each executed stage's parallel
    /// regions, aligned with [`StagePayload::stage_nanos`] (empty for
    /// stages that ran no shardable region).
    pub stage_shards: Vec<Vec<u64>>,
    /// Scratch the *currently executing* stage appends its parallel
    /// regions' per-shard nanos to; the driver moves it into
    /// [`StagePayload::stage_shards`] after each stage.
    pub shard_nanos: Vec<u64>,
    /// Integrity checksum of the staged arenas, recorded at \[Collect\]
    /// and verified at \[Insert\] — `None` (the default) skips both
    /// sides. Only populated when an armed fault plan contains
    /// payload-corruption faults.
    pub checksum: Option<u64>,
}

impl StagePayload {
    /// Creates a payload with empty arenas for `dim`-wide rows.
    pub fn new(dim: usize) -> Self {
        StagePayload {
            index: 0,
            plans: Vec::new(),
            staged_miss: StagedRows::new(dim),
            staged_evict: StagedRows::new(dim),
            traffic: StageTraffic::default(),
            loss: 0.0,
            stage_nanos: Vec::new(),
            stage_shards: Vec::new(),
            shard_nanos: Vec::new(),
            checksum: None,
        }
    }

    /// Re-arms a (possibly recycled) payload for mini-batch `index`,
    /// pre-reserving the staging arenas for exactly the rows the plans
    /// will move so \[Collect\] never grows them mid-stage.
    pub fn rearm(&mut self, index: usize, plans: Vec<TablePlan>) {
        self.index = index;
        self.staged_miss.reset();
        self.staged_evict.reset();
        self.traffic = StageTraffic::default();
        self.loss = 0.0;
        self.stage_nanos.clear();
        self.stage_shards.clear();
        self.shard_nanos.clear();
        self.checksum = None;
        let (fills, evicts) = plans.iter().fold((0, 0), |(f, e), p| {
            (f + p.fills.len(), e + p.evictions.len())
        });
        self.staged_miss.reserve_rows(fills);
        self.staged_evict.reserve_rows(evicts);
        self.plans = plans;
    }
}

/// A free list of retired [`StagePayload`]s. The pipeline holds at most
/// *depth* payloads in flight, so after warm-up every acquire is a reuse.
#[derive(Debug, Default)]
pub struct PayloadPool {
    free: Vec<StagePayload>,
}

impl PayloadPool {
    /// Creates an empty pool.
    pub fn new() -> Self {
        Self::default()
    }

    /// Takes a recycled payload (or allocates the pipeline's next one) and
    /// re-arms it.
    pub fn acquire(&mut self, dim: usize, index: usize, plans: Vec<TablePlan>) -> StagePayload {
        let mut p = self.free.pop().unwrap_or_else(|| StagePayload::new(dim));
        p.rearm(index, plans);
        p
    }

    /// Takes a recycled payload (or allocates the pipeline's next one)
    /// **without** re-arming it — the \[Plan\] stage re-arms once it has
    /// chosen the plans.
    pub fn take(&mut self, dim: usize) -> StagePayload {
        self.free.pop().unwrap_or_else(|| StagePayload::new(dim))
    }

    /// Returns a retired payload to the free list.
    pub fn release(&mut self, payload: StagePayload) {
        self.free.push(payload);
    }
}

/// The \[Train\] stage's flat pooled/gradient arenas, allocated once per
/// run and re-sliced every iteration.
#[derive(Debug, Default)]
pub struct TrainArena {
    pooled: Vec<f32>,
    grads: Vec<f32>,
    num_tables: usize,
    batch: usize,
    dim: usize,
}

impl TrainArena {
    /// Creates an empty arena; buffers grow on first use.
    pub fn new() -> Self {
        Self::default()
    }

    /// Re-shapes the arenas for one iteration, keeping capacity. The
    /// contents are **not** zeroed: every pooled element is overwritten by
    /// [`gather_pooled`] (which zero-fills its slice) and every gradient
    /// element by the [`DenseBackend::step`] contract, so re-clearing here
    /// would just add two redundant memsets per iteration.
    ///
    /// [`DenseBackend::step`]: crate::backend::DenseBackend::step
    pub fn prepare(&mut self, num_tables: usize, batch: usize, dim: usize) {
        self.num_tables = num_tables;
        self.batch = batch;
        self.dim = dim;
        let n = num_tables * batch * dim;
        self.pooled.resize(n, 0.0);
        self.grads.resize(n, 0.0);
    }

    fn stride(&self) -> usize {
        self.batch * self.dim
    }

    /// Mutable `batch × dim` pooled block of table `t` (gather target).
    pub fn pooled_table_mut(&mut self, t: usize) -> &mut [f32] {
        let stride = self.stride();
        &mut self.pooled[t * stride..(t + 1) * stride]
    }

    /// Disjoint mutable per-table pooled blocks, in table order — the
    /// gather targets handed to train workers.
    pub fn pooled_blocks_mut(&mut self) -> impl Iterator<Item = &mut [f32]> {
        let stride = self.stride();
        self.pooled.chunks_exact_mut(stride)
    }

    /// Gradient block of table `t` (scatter source).
    pub fn grads_table(&self, t: usize) -> &[f32] {
        let stride = self.stride();
        &self.grads[t * stride..(t + 1) * stride]
    }

    /// Splits the arena into the backend's two halves: an immutable
    /// [`PooledView`] and the mutable gradient buffer.
    pub fn split(&mut self) -> (PooledView<'_>, &mut [f32]) {
        (
            PooledView::new(&self.pooled, self.num_tables, self.batch, self.dim),
            &mut self.grads,
        )
    }
}

/// \[Plan\] — one mini-batch across all tables: advance each scratchpad
/// manager, pick fills and victims, and charge the sparse-ID upload +
/// Hit-Map probe traffic. `uniq[j][t]` are the sorted unique IDs of batch
/// `j`, table `t`; the `future_depth` batches after `i` are registered so
/// their rows cannot be evicted (the paper's look-*forward*).
///
/// # Errors
///
/// Returns [`ScratchError::CapacityExhausted`] (tagged with the failing
/// table) if a scratchpad cannot hold the window's working set.
pub fn plan(
    managers: &mut [ScratchpadManager],
    batch: &SparseBatch,
    uniq: &[Vec<Vec<u64>>],
    i: usize,
    future_depth: usize,
) -> Result<(Vec<TablePlan>, Traffic), ScratchError> {
    let mut traffic = Traffic::ZERO;
    let mut plans = Vec::with_capacity(managers.len());
    for (t, manager) in managers.iter_mut().enumerate() {
        let futures: Vec<&[u64]> = (1..=future_depth)
            .filter_map(|k| uniq.get(i + k).map(|per_table| per_table[t].as_slice()))
            .collect();
        let mut plan = manager.plan(&uniq[i][t], &futures).map_err(|e| match e {
            ScratchError::CapacityExhausted { cycle, slots, .. } => {
                ScratchError::CapacityExhausted {
                    table: t,
                    cycle,
                    slots,
                }
            }
            other => other,
        })?;
        index_lookups(&mut plan, batch.bag(t));
        // Deduplicated sparse-ID upload: one u32 slot per unique ID plus
        // the u32 per-lookup index into the unique set — what the Train
        // gather actually consumes — instead of the raw u64 per lookup.
        let lookups = batch.bag(t).total_lookups() as u64;
        let uniques = uniq[i][t].len() as u64;
        traffic.pcie_h2d_bytes += (uniques + lookups) * 4;
        // Hit-Map probes: one per unique ID.
        traffic.gpu_random_read_bytes += uniques * 16;
        traffic.gpu_ops += 1;
        plans.push(plan);
    }
    traffic.pcie_ops += 1;
    Ok((plans, traffic))
}

/// Fills [`TablePlan::lookup_unique`]: for every raw lookup of `bag` (in
/// bag order), the index of its ID within the plan's sorted `unique_ids`.
/// This is the indirection the deduplicated Train gather/scatter kernels
/// fan out through, so each unique row is resolved exactly once per
/// (table, batch).
///
/// # Panics
///
/// Panics if a bag ID is missing from the plan (a planning bug — the
/// always-hit guarantee makes this impossible with correct windows).
pub fn index_lookups(plan: &mut TablePlan, bag: &TableBag) {
    debug_assert!(
        plan.unique_ids.windows(2).all(|w| w[0] <= w[1]),
        "plan ids must be sorted"
    );
    plan.lookup_unique.clear();
    plan.lookup_unique.reserve(bag.ids().len());
    for &id in bag.ids() {
        let k = plan
            .unique_ids
            .binary_search(&id)
            .unwrap_or_else(|_| panic!("id {id} missing from plan"));
        plan.lookup_unique.push(k as u32);
    }
}

/// \[Collect\] traffic: CPU-table gathers of missed rows and scratchpad
/// gathers of victim rows.
pub fn collect_traffic(plans: &[TablePlan], row_bytes: u64) -> Traffic {
    let mut traffic = Traffic::ZERO;
    for plan in plans {
        let fills = plan.fills.len() as u64;
        let evicts = plan.evictions.len() as u64;
        traffic.cpu_random_read_bytes += fills * row_bytes;
        traffic.cpu_stream_write_bytes += fills * row_bytes;
        traffic.gpu_random_read_bytes += evicts * row_bytes;
        traffic.gpu_stream_write_bytes += evicts * row_bytes;
        if fills > 0 {
            traffic.cpu_ops += 1;
        }
        if evicts > 0 {
            traffic.gpu_ops += 1;
        }
    }
    traffic
}

/// \[Collect\], miss half of one table, direct to arena: writes the
/// planned fills' rows into the pre-sized table block of a
/// [`StagedRows::prepare`]d arena — the only staging path (no
/// intermediate copy), addressable by any worker. Fills are already
/// unique per batch (Plan deduplicates), so each missed row is staged
/// exactly once.
///
/// # Panics
///
/// Panics if `block.len() != plan.fills.len() × dim`.
pub fn stage_misses_into(plan: &TablePlan, cpu_table: &EmbeddingTable, block: &mut [f32]) {
    let dim = cpu_table.dim();
    assert_eq!(block.len(), plan.fills.len() * dim, "miss block shape");
    for (dst, f) in block.chunks_exact_mut(dim).zip(&plan.fills) {
        dst.copy_from_slice(cpu_table.row(f.row as usize));
    }
}

/// \[Collect\], eviction half of one table, direct to arena: writes the
/// planned victims' rows into the pre-sized table block of a
/// [`StagedRows::prepare`]d arena — the only staging path (no
/// intermediate copy), addressable by any worker.
///
/// # Panics
///
/// Panics if `block.len() != plan.evictions.len() × dim`.
pub fn stage_evictions_into(plan: &TablePlan, storage: &DenseStore, block: &mut [f32]) {
    let dim = storage.dim();
    assert_eq!(block.len(), plan.evictions.len() * dim, "evict block shape");
    for (dst, ev) in block.chunks_exact_mut(dim).zip(&plan.evictions) {
        dst.copy_from_slice(storage.row(ev.slot as usize));
    }
}

/// \[Exchange\] — duplex PCIe transfer accounting (the data movement
/// itself is the staging arenas changing owner).
pub fn exchange_traffic(plans: &[TablePlan], row_bytes: u64) -> Traffic {
    let mut traffic = Traffic::ZERO;
    for plan in plans {
        traffic.pcie_h2d_bytes += plan.fills.len() as u64 * row_bytes;
        traffic.pcie_d2h_bytes += plan.evictions.len() as u64 * row_bytes;
    }
    if traffic.pcie_bytes() > 0 {
        traffic.pcie_ops += 2;
    }
    traffic
}

/// \[Insert\] traffic: CPU-table write-backs and scratchpad fills.
pub fn insert_traffic(plans: &[TablePlan], row_bytes: u64) -> Traffic {
    let mut traffic = Traffic::ZERO;
    for plan in plans {
        traffic.cpu_random_write_bytes += plan.evictions.len() as u64 * row_bytes;
        traffic.gpu_random_write_bytes += plan.fills.len() as u64 * row_bytes;
        if !plan.evictions.is_empty() {
            traffic.cpu_ops += 1;
        }
        if !plan.fills.is_empty() {
            traffic.gpu_ops += 1;
        }
    }
    traffic
}

/// \[Insert\], write-back half of one table: land the staged victim rows
/// in the CPU table.
pub fn insert_evictions(
    t: usize,
    plan: &TablePlan,
    staged_evict: &StagedRows,
    cpu_table: &mut EmbeddingTable,
) {
    for (k, ev) in plan.evictions.iter().enumerate() {
        cpu_table
            .row_mut(ev.row as usize)
            .copy_from_slice(staged_evict.row(t, k));
    }
}

/// \[Insert\], fill half of one table: land the staged missed rows in
/// their assigned scratchpad slots.
pub fn insert_fills(
    t: usize,
    plan: &TablePlan,
    staged_miss: &StagedRows,
    storage: &mut DenseStore,
) {
    for (k, f) in plan.fills.iter().enumerate() {
        storage
            .row_mut(f.slot as usize)
            .copy_from_slice(staged_miss.row(t, k));
    }
}

/// \[Train\] traffic of the embedding half under the deduplicated
/// layout: each unique row is gathered from GPU memory once and fanned
/// out to its lookups through the `u32` index (a streaming read), the
/// backward pass coalesces pooled gradients straight into per-unique
/// buckets (streaming read of the pooled grads, streaming write of one
/// bucket per unique row — the raw-lookup-sized duplicate buffer no
/// longer exists), and the SGD scatter read-modify-writes each unique
/// row once. All against GPU memory (the always-hit guarantee); the
/// dense backend's own traffic is added by the caller.
pub fn train_traffic(plans: &[TablePlan], batch: &SparseBatch, dim: usize) -> Traffic {
    let mut traffic = Traffic::ZERO;
    let rb = dim as u64 * 4;
    for (t, plan) in plans.iter().enumerate() {
        let bag = batch.bag(t);
        let lookups = bag.total_lookups() as u64;
        let uniques = plan.num_unique() as u64;
        // Forward: gather each unique row once, fan out via the index.
        traffic.gpu_random_read_bytes += primitives::gather_bytes(uniques, dim as u32);
        traffic.gpu_stream_read_bytes += lookups * rb;
        traffic.gpu_stream_write_bytes +=
            primitives::reduce_output_bytes(bag.batch_size() as u64, dim as u32);
        // Backward: coalesce pooled grads into per-unique buckets.
        traffic.gpu_stream_read_bytes += lookups * rb;
        traffic.gpu_stream_write_bytes += uniques * rb;
        // SGD scatter: one RMW per unique row.
        traffic.gpu_random_read_bytes += uniques * rb;
        traffic.gpu_random_write_bytes += uniques * rb;
        traffic.gpu_ops += 4;
    }
    traffic
}

/// \[Train\], forward half of one table: gather + sum-pool the batch's
/// rows out of the scratchpad into the pooled arena slice, resolving each
/// lookup through the plan's deduplicated `lookup_unique → unique_slots`
/// indirection (no hash probe per lookup).
///
/// # Panics
///
/// Panics if the plan's lookup index was not built for this bag (see
/// [`index_lookups`]).
pub fn gather_pooled(storage: &DenseStore, bag: &TableBag, plan: &TablePlan, out: &mut [f32]) {
    ops::gather_reduce_indexed(
        storage,
        bag,
        &plan.lookup_unique,
        &plan.unique_slots,
        0,
        bag.batch_size(),
        out,
    );
}

/// [`gather_pooled`] restricted to the sample range `lo..hi` — the
/// batch-chunk shard a train worker owns. Stitching the full range from
/// any partition reproduces [`gather_pooled`] bit-for-bit (each sample's
/// pooled sum is computed whole by exactly one shard).
pub fn gather_pooled_range(
    storage: &DenseStore,
    bag: &TableBag,
    plan: &TablePlan,
    lo: usize,
    hi: usize,
    out: &mut [f32],
) {
    ops::gather_reduce_indexed(
        storage,
        bag,
        &plan.lookup_unique,
        &plan.unique_slots,
        lo,
        hi,
        out,
    );
}

/// \[Train\], backward half of one table: coalesce the dense backend's
/// pooled gradients into per-unique buckets (occurrence order, matching
/// the duplicate→coalesce reference bit-for-bit) and SGD-scatter them
/// into the scratchpad — one buffer of `num_unique × dim` instead of the
/// raw-lookup-sized duplicate buffer, and no per-call sort.
pub fn scatter_grads(
    storage: &mut DenseStore,
    bag: &TableBag,
    grads: &[f32],
    lr: f32,
    plan: &TablePlan,
) {
    ops::embedding_backward_indexed(
        storage,
        bag,
        grads,
        lr,
        &plan.lookup_unique,
        &plan.unique_slots,
    );
}

/// Final-flush traffic for one table with `resident_rows` live scratchpad
/// rows: GPU gather → PCIe D2H → CPU scatter.
pub fn flush_traffic(resident_rows: u64, row_bytes: u64) -> Traffic {
    Traffic {
        gpu_random_read_bytes: resident_rows * row_bytes,
        pcie_d2h_bytes: resident_rows * row_bytes,
        cpu_random_write_bytes: resident_rows * row_bytes,
        ..Traffic::ZERO
    }
}

/// Final flush of one table: copy every resident scratchpad row that
/// passes `keep` back to the CPU table. The synchronous runtime filters on
/// its data-residency shadow (rows whose data never arrived under a broken
/// window are skipped); the threaded runtime keeps everything.
pub fn flush_rows(
    storage: &DenseStore,
    cpu_table: &mut EmbeddingTable,
    residents: &[(u64, u32)],
    mut keep: impl FnMut(u64, u32) -> bool,
) {
    for &(row, slot) in residents {
        if keep(row, slot) {
            cpu_table
                .row_mut(row as usize)
                .copy_from_slice(storage.row(slot as usize));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn staged_rows_round_trip() {
        let mut s = StagedRows::new(2);
        s.push_row(&[1.0, 2.0]);
        s.push_row(&[3.0, 4.0]);
        s.end_table();
        s.end_table(); // empty table 1
        s.push_row(&[5.0, 6.0]);
        s.end_table();
        assert_eq!(s.table_rows(0), 2);
        assert_eq!(s.table_rows(1), 0);
        assert_eq!(s.table_rows(2), 1);
        assert_eq!(s.row(0, 1), &[3.0, 4.0]);
        assert_eq!(s.row(2, 0), &[5.0, 6.0]);
        assert_eq!(s.total_rows(), 3);
        assert_eq!(s.staged_bytes(), 3 * 2 * 4);
        s.reset();
        assert_eq!(s.total_rows(), 0);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn staged_rows_bounds_checked_per_table() {
        let mut s = StagedRows::new(2);
        s.push_row(&[1.0, 2.0]);
        s.end_table();
        s.push_row(&[3.0, 4.0]);
        s.end_table();
        let _ = s.row(0, 1); // row 1 belongs to table 1, not table 0
    }

    #[test]
    fn prepared_blocks_match_the_push_path() {
        // Filling pre-sized blocks (in any order) must be indistinguishable
        // from pushing rows table by table.
        let mut pushed = StagedRows::new(2);
        pushed.push_row(&[1.0, 2.0]);
        pushed.push_row(&[3.0, 4.0]);
        pushed.end_table();
        pushed.end_table(); // empty table 1
        pushed.push_row(&[5.0, 6.0]);
        pushed.end_table();

        let mut prepared = StagedRows::new(2);
        prepared.push_row(&[9.0, 9.0]); // dirty from a previous iteration
        prepared.end_table();
        prepared.prepare(&[2, 0, 1]);
        let blocks = prepared.table_blocks_mut();
        assert_eq!(blocks.len(), 3);
        let mut blocks = blocks.into_iter();
        let b0 = blocks.next().unwrap();
        let b1 = blocks.next().unwrap();
        let b2 = blocks.next().unwrap();
        assert!(b1.is_empty());
        b2.copy_from_slice(&[5.0, 6.0]); // out of order on purpose
        b0.copy_from_slice(&[1.0, 2.0, 3.0, 4.0]);

        assert_eq!(prepared.total_rows(), pushed.total_rows());
        assert_eq!(prepared.staged_bytes(), pushed.staged_bytes());
        for t in 0..3 {
            assert_eq!(prepared.table_rows(t), pushed.table_rows(t));
            for k in 0..pushed.table_rows(t) {
                assert_eq!(prepared.row(t, k), pushed.row(t, k));
            }
        }
    }

    #[test]
    fn payload_pool_recycles_allocations() {
        let mut pool = PayloadPool::new();
        let mut p = pool.acquire(4, 0, Vec::new());
        p.staged_miss.push_row(&[0.0; 4]);
        p.staged_miss.end_table();
        pool.release(p);
        let p = pool.acquire(4, 7, Vec::new());
        assert_eq!(p.index, 7);
        assert_eq!(p.staged_miss.total_rows(), 0, "re-arm must reset arenas");
        assert_eq!(p.traffic, StageTraffic::default());
    }

    #[test]
    fn train_arena_layout_and_split() {
        let mut a = TrainArena::new();
        a.prepare(2, 3, 2);
        a.pooled_table_mut(1).copy_from_slice(&[9.0; 6]);
        let (view, grads) = a.split();
        assert_eq!(view.num_tables(), 2);
        assert_eq!(view.table(1), &[9.0; 6]);
        assert_eq!(grads.len(), 12);
        grads.fill(1.0);
        assert_eq!(a.grads_table(0), &[1.0; 6]);
        // Re-preparing with a smaller shape keeps it consistent; contents
        // are deliberately NOT zeroed (the step contract overwrites them).
        a.prepare(1, 2, 2);
        assert_eq!(a.grads_table(0).len(), 4);
    }
}
