//! The supervised recovery runtime's policy, bookkeeping and result
//! types.
//!
//! [`Pipeline::run_supervised`] executes the trace in checkpointed
//! segments. Before each segment it snapshots the cheap-but-global state
//! (the \[Plan\] stage's scratchpad managers and the dense backend) and
//! arms a first-touch undo log on the expensive shared state (CPU table
//! rows, scratchpad slots and the residency shadow save their pre-image
//! the first time a stage dirties them — deltas, not full copies). A
//! failed segment rolls everything back and retries under
//! [`RecoveryPolicy::retry_budget`]; when a rung of the schedule ladder
//! exhausts its budget the runtime degrades
//! `DataParallel → Threaded → Sync` before giving up with
//! [`ScratchError::Aborted`](crate::error::ScratchError::Aborted),
//! leaving the tables exactly at the last committed segment.
//!
//! [`Pipeline::run_supervised`]: crate::pipeline::Pipeline::run_supervised

use std::collections::HashMap;

use embeddings::{EmbeddingTable, VectorStore};

use crate::pipeline::Schedule;
use crate::runtime::PipelineReport;

/// Tuning knobs of [`Pipeline::run_supervised`].
///
/// [`Pipeline::run_supervised`]: crate::pipeline::Pipeline::run_supervised
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RecoveryPolicy {
    /// Attempts per schedule rung before degrading (≥ 1). With a ladder
    /// of `L` rungs a segment gets `L × retry_budget` total attempts.
    pub retry_budget: u32,
    /// Iterations per checkpointed segment (≥ 1). The default of 1
    /// snapshots at every iteration boundary, which also pins the whole
    /// recovery decision sequence — retries, degradations, the audit
    /// stream — to be deterministic under every schedule rung, because at
    /// most one mini-batch is in flight per attempt.
    pub checkpoint_interval: usize,
}

impl Default for RecoveryPolicy {
    fn default() -> Self {
        RecoveryPolicy {
            retry_budget: 3,
            checkpoint_interval: 1,
        }
    }
}

/// What the supervisor did to finish a run (all zero on a fault-free
/// run).
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct RecoveryStats {
    /// Segments rolled back (each failed attempt rolls back once).
    pub rollbacks: u64,
    /// Retries on the same schedule rung.
    pub retries: u64,
    /// Rung-to-rung degradations down the schedule ladder.
    pub degradations: u64,
    /// Faults the injector fired (0 when no plan is armed).
    pub faults_injected: u64,
    /// The rung the run finished on (the starting schedule when nothing
    /// degraded).
    pub final_schedule: Option<Schedule>,
}

/// A completed supervised run: the ordinary report plus the recovery
/// story. The report — and the trained tables — are byte-identical to a
/// fault-free [`Pipeline::run`] whenever every injected fault was
/// recovered.
///
/// [`Pipeline::run`]: crate::pipeline::Pipeline::run
#[derive(Debug, Clone)]
pub struct SupervisedRun {
    /// The report, exactly as an unsupervised run would produce it.
    pub report: PipelineReport,
    /// What recovery work the supervisor performed.
    pub stats: RecoveryStats,
}

/// First-touch undo log of one table's mutable state for the current
/// segment: the pre-image of every CPU row, scratchpad slot and residency
/// entry dirtied since the last checkpoint. Saves are idempotent (only
/// the first touch records), so any number of stages may report the same
/// row and rollback still restores the checkpoint image.
#[derive(Debug, Default)]
pub(crate) struct TableUndo {
    cpu_rows: HashMap<u64, Vec<f32>>,
    store_rows: HashMap<u32, Vec<f32>>,
    resident: HashMap<u32, Option<u64>>,
}

impl TableUndo {
    pub(crate) fn save_cpu_row(&mut self, row: u64, data: &[f32]) {
        self.cpu_rows.entry(row).or_insert_with(|| data.to_vec());
    }

    pub(crate) fn save_store_row(&mut self, slot: u32, data: &[f32]) {
        self.store_rows.entry(slot).or_insert_with(|| data.to_vec());
    }

    pub(crate) fn save_resident(&mut self, slot: u32, value: Option<u64>) {
        self.resident.entry(slot).or_insert(value);
    }

    /// Restores every saved pre-image and clears the log.
    pub(crate) fn rollback(
        &mut self,
        cpu_table: Option<&mut EmbeddingTable>,
        store: Option<&mut embeddings::store::DenseStore>,
        resident: &mut [Option<u64>],
    ) {
        if let Some(table) = cpu_table {
            for (&row, data) in &self.cpu_rows {
                table.row_mut(row as usize).copy_from_slice(data);
            }
        }
        if let Some(store) = store {
            for (&slot, data) in &self.store_rows {
                store.row_mut(slot as usize).copy_from_slice(data);
            }
        }
        for (&slot, &value) in &self.resident {
            resident[slot as usize] = value;
        }
        self.clear();
    }

    /// Drops the log (the segment committed).
    pub(crate) fn clear(&mut self) {
        self.cpu_rows.clear();
        self.store_rows.clear();
        self.resident.clear();
    }

    #[cfg(test)]
    pub(crate) fn is_empty(&self) -> bool {
        self.cpu_rows.is_empty() && self.store_rows.is_empty() && self.resident.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use embeddings::store::DenseStore;

    #[test]
    fn default_policy_is_sane() {
        let p = RecoveryPolicy::default();
        assert_eq!(p.retry_budget, 3);
        assert_eq!(p.checkpoint_interval, 1);
    }

    #[test]
    fn undo_restores_first_touch_pre_images() {
        let mut table = EmbeddingTable::seeded(4, 2, 7);
        let mut store = DenseStore::zeros(3, 2);
        let mut resident = vec![None, Some(9u64), None];
        let table_before: Vec<Vec<f32>> = (0..4).map(|r| table.row(r).to_vec()).collect();

        let mut undo = TableUndo::default();
        undo.save_cpu_row(2, table.row(2));
        undo.save_store_row(1, store.row(1));
        undo.save_resident(1, resident[1]);
        // Dirty everything, then re-save (idempotent: first touch wins).
        table.row_mut(2).copy_from_slice(&[5.0, 5.0]);
        store.row_mut(1).copy_from_slice(&[6.0, 6.0]);
        resident[1] = Some(42);
        undo.save_cpu_row(2, table.row(2));
        undo.save_store_row(1, store.row(1));
        undo.save_resident(1, resident[1]);

        undo.rollback(Some(&mut table), Some(&mut store), &mut resident);
        assert_eq!(table.row(2), table_before[2].as_slice());
        assert_eq!(store.row(1), &[0.0, 0.0]);
        assert_eq!(resident[1], Some(9));
        assert!(undo.is_empty(), "rollback clears the log");
    }
}
