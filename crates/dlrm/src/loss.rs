//! Fused sigmoid + binary cross-entropy for CTR prediction.
//!
//! RecSys training predicts a click probability per sample (paper §II-A);
//! the loss is `BCE(σ(z), label)`. Fusing the sigmoid into the loss gives
//! the numerically stable form
//! `L(z, y) = max(z, 0) − z·y + ln(1 + e^{−|z|})` with the famously simple
//! gradient `dL/dz = σ(z) − y`.

/// The logistic function.
pub fn sigmoid(z: f32) -> f32 {
    if z >= 0.0 {
        1.0 / (1.0 + (-z).exp())
    } else {
        let e = z.exp();
        e / (1.0 + e)
    }
}

/// Mean binary cross-entropy over a batch of logits, plus per-sample logit
/// gradients (already divided by the batch size).
///
/// # Panics
///
/// Panics if `logits` and `labels` differ in length or labels are outside
/// `[0, 1]`.
pub fn bce_with_logits(logits: &[f32], labels: &[f32]) -> (f32, Vec<f32>) {
    assert_eq!(logits.len(), labels.len(), "batch size mismatch");
    assert!(
        labels.iter().all(|&y| (0.0..=1.0).contains(&y)),
        "labels must be in [0, 1]"
    );
    let n = logits.len().max(1) as f32;
    let mut loss = 0.0f32;
    let mut grads = Vec::with_capacity(logits.len());
    for (&z, &y) in logits.iter().zip(labels) {
        loss += z.max(0.0) - z * y + (1.0 + (-z.abs()).exp()).ln();
        grads.push((sigmoid(z) - y) / n);
    }
    (loss / n, grads)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sigmoid_properties() {
        assert!((sigmoid(0.0) - 0.5).abs() < 1e-7);
        assert!(sigmoid(10.0) > 0.9999);
        assert!(sigmoid(-10.0) < 0.0001);
        // Symmetry: σ(-z) = 1 - σ(z).
        for z in [-3.0f32, -0.5, 0.7, 2.2] {
            assert!((sigmoid(-z) - (1.0 - sigmoid(z))).abs() < 1e-6);
        }
    }

    #[test]
    fn loss_is_low_for_confident_correct_predictions() {
        let (good, _) = bce_with_logits(&[8.0, -8.0], &[1.0, 0.0]);
        let (bad, _) = bce_with_logits(&[8.0, -8.0], &[0.0, 1.0]);
        assert!(good < 0.01);
        assert!(bad > 5.0);
    }

    #[test]
    fn gradient_is_sigmoid_minus_label_over_n() {
        let (_, g) = bce_with_logits(&[1.2, -0.7], &[1.0, 0.0]);
        assert!((g[0] - (sigmoid(1.2) - 1.0) / 2.0).abs() < 1e-7);
        assert!((g[1] - (sigmoid(-0.7) - 0.0) / 2.0).abs() < 1e-7);
    }

    #[test]
    fn gradient_matches_finite_differences() {
        let logits = [0.3f32, -1.1, 2.0];
        let labels = [1.0f32, 0.0, 1.0];
        let (_, g) = bce_with_logits(&logits, &labels);
        let eps = 1e-3f32;
        for i in 0..3 {
            let mut lp = logits;
            lp[i] += eps;
            let mut lm = logits;
            lm[i] -= eps;
            let (fp, _) = bce_with_logits(&lp, &labels);
            let (fm, _) = bce_with_logits(&lm, &labels);
            let numeric = (fp - fm) / (2.0 * eps);
            assert!((g[i] - numeric).abs() < 1e-3, "logit {i}");
        }
    }

    #[test]
    fn extreme_logits_do_not_overflow() {
        let (loss, g) = bce_with_logits(&[100.0, -100.0], &[0.0, 1.0]);
        assert!(loss.is_finite());
        assert!(g.iter().all(|v| v.is_finite()));
    }

    #[test]
    fn soft_labels_are_accepted() {
        let (loss, _) = bce_with_logits(&[0.0], &[0.3]);
        assert!(loss.is_finite());
    }

    #[test]
    #[should_panic(expected = "labels must be in [0, 1]")]
    fn out_of_range_label_rejected() {
        let _ = bce_with_logits(&[0.0], &[1.5]);
    }

    #[test]
    #[should_panic(expected = "batch size mismatch")]
    fn mismatched_lengths_rejected() {
        let _ = bce_with_logits(&[0.0, 1.0], &[1.0]);
    }
}
