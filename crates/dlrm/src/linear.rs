//! Fully-connected layers with explicit forward/backward.

use crate::kernels;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A dense layer `y = x·Wᵀ + b` over row-major batches.
///
/// Weights are stored `out_dim × in_dim`. The layer owns no optimizer
/// state beyond the weights themselves; [`Linear::backward`] applies a
/// plain SGD update immediately (matching the paper's SGD training).
#[derive(Debug, Clone, PartialEq)]
pub struct Linear {
    in_dim: usize,
    out_dim: usize,
    weights: Vec<f32>,
    bias: Vec<f32>,
}

impl Linear {
    /// Creates a layer with He-uniform initialization from a seed.
    ///
    /// # Panics
    ///
    /// Panics if either dimension is zero.
    pub fn seeded(in_dim: usize, out_dim: usize, seed: u64) -> Self {
        assert!(in_dim > 0 && out_dim > 0, "dimensions must be positive");
        let mut rng = StdRng::seed_from_u64(seed);
        let bound = (6.0 / in_dim as f32).sqrt();
        let weights = (0..in_dim * out_dim)
            .map(|_| rng.gen_range(-bound..=bound))
            .collect();
        let bias = vec![0.0; out_dim];
        Linear {
            in_dim,
            out_dim,
            weights,
            bias,
        }
    }

    /// Input width.
    pub fn in_dim(&self) -> usize {
        self.in_dim
    }

    /// Output width.
    pub fn out_dim(&self) -> usize {
        self.out_dim
    }

    /// Immutable weight matrix (row-major `out_dim × in_dim`).
    pub fn weights(&self) -> &[f32] {
        &self.weights
    }

    /// Immutable bias vector.
    pub fn bias(&self) -> &[f32] {
        &self.bias
    }

    /// Number of trainable parameters.
    pub fn param_count(&self) -> usize {
        self.weights.len() + self.bias.len()
    }

    /// Forward pass for a batch of `x.len() / in_dim` rows.
    ///
    /// # Panics
    ///
    /// Panics if `x.len()` is not a multiple of `in_dim`.
    pub fn forward(&self, x: &[f32]) -> Vec<f32> {
        let mut y = Vec::new();
        self.forward_into(x, &mut y);
        y
    }

    /// Forward pass writing into a reusable output buffer (cleared and
    /// resized in place, so repeated calls don't reallocate).
    ///
    /// # Panics
    ///
    /// Panics if `x.len()` is not a multiple of `in_dim`.
    pub fn forward_into(&self, x: &[f32], y: &mut Vec<f32>) {
        assert_eq!(x.len() % self.in_dim, 0, "ragged input batch");
        let batch = x.len() / self.in_dim;
        y.clear();
        y.resize(batch * self.out_dim, 0.0);
        for (xs, ys) in x
            .chunks_exact(self.in_dim)
            .zip(y.chunks_exact_mut(self.out_dim))
        {
            for ((yo, w), &b) in ys
                .iter_mut()
                .zip(self.weights.chunks_exact(self.in_dim))
                .zip(&self.bias)
            {
                *yo = kernels::dot_from(b, xs, w);
            }
        }
    }

    /// Backward pass: given the forward input `x` and the output gradient
    /// `dy`, returns `dx` and applies the SGD update
    /// `W -= lr·dyᵀx, b -= lr·Σ dy` in place.
    ///
    /// # Panics
    ///
    /// Panics if shapes are inconsistent.
    pub fn backward(&mut self, x: &[f32], dy: &[f32], lr: f32) -> Vec<f32> {
        assert_eq!(x.len() % self.in_dim, 0, "ragged input batch");
        let batch = x.len() / self.in_dim;
        assert_eq!(dy.len(), batch * self.out_dim, "gradient shape mismatch");
        let mut dx = vec![0.0f32; batch * self.in_dim];
        // dx = dy · W
        for (dys, dxs) in dy
            .chunks_exact(self.out_dim)
            .zip(dx.chunks_exact_mut(self.in_dim))
        {
            for (&g, w) in dys.iter().zip(self.weights.chunks_exact(self.in_dim)) {
                kernels::axpy(dxs, g, w);
            }
        }
        // W -= lr · dyᵀ · x ; b -= lr · Σ_batch dy
        for (xs, dys) in x
            .chunks_exact(self.in_dim)
            .zip(dy.chunks_exact(self.out_dim))
        {
            for ((&g, w), b) in dys
                .iter()
                .zip(self.weights.chunks_exact_mut(self.in_dim))
                .zip(self.bias.iter_mut())
            {
                let step = lr * g;
                kernels::axpy(w, -step, xs);
                *b -= step;
            }
        }
        dx
    }

    /// Exact bitwise equality of parameters (see
    /// `EmbeddingTable::bit_eq` for why tests need this).
    pub fn bit_eq(&self, other: &Linear) -> bool {
        self.in_dim == other.in_dim
            && self.out_dim == other.out_dim
            && self
                .weights
                .iter()
                .zip(&other.weights)
                .all(|(a, b)| a.to_bits() == b.to_bits())
            && self
                .bias
                .iter()
                .zip(&other.bias)
                .all(|(a, b)| a.to_bits() == b.to_bits())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A 2→2 layer with hand-written weights for exact arithmetic checks.
    fn fixture() -> Linear {
        let mut l = Linear::seeded(2, 2, 0);
        l.weights.copy_from_slice(&[1.0, 2.0, 3.0, 4.0]);
        l.bias.copy_from_slice(&[0.5, -0.5]);
        l
    }

    #[test]
    fn forward_matches_hand_computation() {
        let l = fixture();
        // x = (1, 1): y0 = 1+2+0.5 = 3.5; y1 = 3+4-0.5 = 6.5
        let y = l.forward(&[1.0, 1.0]);
        assert_eq!(y, vec![3.5, 6.5]);
        // batch of two
        let y = l.forward(&[1.0, 0.0, 0.0, 1.0]);
        assert_eq!(y, vec![1.5, 2.5, 2.5, 3.5]);
    }

    #[test]
    fn backward_dx_matches_hand_computation() {
        let mut l = fixture();
        // dy = (1, 1): dx = dy·W = (1·1+1·3, 1·2+1·4) = (4, 6)
        let dx = l.backward(&[1.0, 1.0], &[1.0, 1.0], 0.0);
        assert_eq!(dx, vec![4.0, 6.0]);
    }

    #[test]
    fn sgd_update_moves_weights_down_gradient() {
        let mut l = fixture();
        let _ = l.backward(&[1.0, 2.0], &[1.0, 0.0], 0.1);
        // dW row 0 = dy0 · x = (1, 2); W row 0 -= 0.1·(1,2) → (0.9, 1.8)
        assert_eq!(&l.weights[..2], &[0.9, 1.8]);
        // Row 1 has zero gradient — untouched.
        assert_eq!(&l.weights[2..], &[3.0, 4.0]);
        assert_eq!(l.bias, vec![0.4, -0.5]);
    }

    #[test]
    fn gradient_check_against_finite_differences() {
        // Numeric gradient of a scalar loss L = Σ y wrt one weight.
        let l = Linear::seeded(3, 2, 7);
        let x = vec![0.3, -0.2, 0.8, 0.1, 0.5, -0.6];
        let eps = 1e-3f32;
        let loss = |layer: &Linear| -> f32 { layer.forward(&x).iter().sum() };
        // Analytic: dL/dW[o][i] = Σ_batch x[s][i] (since dy = 1).
        let mut l_mut = l.clone();
        let before = l.weights.clone();
        let dy = vec![1.0f32; 4];
        let _ = l_mut.backward(&x, &dy, 1.0); // lr=1 → ΔW = -dW
        for (idx, &w_before) in before.iter().enumerate() {
            let analytic = w_before - l_mut.weights[idx]; // dW[idx]
            let mut lp = l.clone();
            lp.weights[idx] += eps;
            let mut lm = l.clone();
            lm.weights[idx] -= eps;
            let numeric = (loss(&lp) - loss(&lm)) / (2.0 * eps);
            assert!(
                (analytic - numeric).abs() < 1e-2,
                "weight {idx}: analytic {analytic} vs numeric {numeric}"
            );
        }
    }

    #[test]
    fn seeded_init_is_deterministic() {
        let a = Linear::seeded(8, 4, 3);
        let b = Linear::seeded(8, 4, 3);
        assert!(a.bit_eq(&b));
        assert!(!a.bit_eq(&Linear::seeded(8, 4, 4)));
    }

    #[test]
    fn param_count() {
        let l = Linear::seeded(10, 5, 0);
        assert_eq!(l.param_count(), 55);
        assert_eq!(l.in_dim(), 10);
        assert_eq!(l.out_dim(), 5);
    }

    #[test]
    #[should_panic(expected = "ragged input batch")]
    fn ragged_input_rejected() {
        let l = Linear::seeded(3, 2, 0);
        let _ = l.forward(&[1.0; 4]);
    }

    #[test]
    #[should_panic(expected = "gradient shape mismatch")]
    fn bad_gradient_shape_rejected() {
        let mut l = Linear::seeded(2, 2, 0);
        let _ = l.backward(&[1.0, 2.0], &[1.0; 3], 0.1);
    }
}
