//! `dlrm` — the dense ("backend DNN") half of a DLRM-style recommendation
//! model.
//!
//! The ScratchPipe paper trains a representative DLRM (§V, Figure 1): a
//! **bottom MLP** transforms continuous features, an **embedding layer**
//! (the `embeddings` crate) pools sparse features, a **feature
//! interaction** stage combines them via pairwise dot products, and a
//! **top MLP** produces the click-through-rate logit trained with binary
//! cross-entropy. This crate implements that dense path with full
//! forward/backward passes and SGD, in deterministic pure Rust:
//!
//! * [`Linear`] — fully-connected layer with cached activations,
//! * [`Mlp`] — ReLU MLP stack,
//! * [`interaction`] — DLRM dot-product feature interaction,
//! * [`loss`] — fused sigmoid + binary cross-entropy,
//! * [`DlrmModel`] — the assembled model: takes pooled embeddings, returns
//!   the gradients to backpropagate *into* the embedding layer — the
//!   boundary where ScratchPipe's scratchpad takes over,
//! * [`DlrmConfig`] — model shapes, including the paper's default and the
//!   FLOP counts the timing model charges for MLP training.
//!
//! # Example
//!
//! ```
//! use dlrm::{DlrmConfig, DlrmModel, DlrmScratch};
//!
//! let cfg = DlrmConfig::tiny();
//! let mut model = DlrmModel::seeded(&cfg, 42);
//! let b = 4;
//! let dense = vec![0.1f32; b * cfg.dense_dim];
//! // Pooled embeddings are one flat num_tables × batch × emb_dim buffer
//! // (table t at t·b·emb_dim..), and gradients come back the same way —
//! // allocate both once and reuse them every iteration.
//! let pooled = vec![0.2f32; cfg.num_tables * b * cfg.emb_dim];
//! let mut emb_grads = vec![0.0f32; pooled.len()];
//! let mut scratch = DlrmScratch::new();
//! let labels = vec![1.0, 0.0, 1.0, 0.0];
//! let out = model.train_step_with(&mut scratch, &dense, &pooled, &labels, 0.01, &mut emb_grads);
//! assert!(out.loss.is_finite());
//! assert_eq!(emb_grads.len(), cfg.num_tables * b * cfg.emb_dim);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod config;
pub mod interaction;
pub mod kernels;
pub mod linear;
pub mod loss;
pub mod mlp;
pub mod model;

pub use config::DlrmConfig;
pub use linear::Linear;
pub use mlp::{Mlp, MlpActivations};
pub use model::{DlrmModel, DlrmScratch, TrainStepOutput};
