//! Model-shape configuration and FLOP accounting.

use serde::{Deserialize, Serialize};

use crate::interaction;

/// Shapes of a DLRM model.
///
/// Invariants (checked by [`DlrmConfig::validate`]):
/// * the bottom MLP's output width equals `emb_dim` (required by dot
///   interaction),
/// * the top MLP's input width equals the interaction output width,
/// * the top MLP ends in a single logit.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DlrmConfig {
    /// Width of the continuous ("dense") input features.
    pub dense_dim: usize,
    /// Bottom MLP widths, `[dense_dim, …, emb_dim]`.
    pub bottom_widths: Vec<usize>,
    /// Top MLP widths, `[interaction_dim, …, 1]`.
    pub top_widths: Vec<usize>,
    /// Embedding vector width.
    pub emb_dim: usize,
    /// Number of embedding tables.
    pub num_tables: usize,
}

impl DlrmConfig {
    /// The paper's default model (§V): 8 tables × 10 M rows × 128-dim,
    /// MLP shapes following the MLPerf DLRM reference.
    pub fn paper_default() -> Self {
        let emb_dim = 128;
        let num_tables = 8;
        let interaction_dim = interaction::output_dim(num_tables, emb_dim);
        DlrmConfig {
            dense_dim: 13,
            bottom_widths: vec![13, 512, 256, emb_dim],
            top_widths: vec![interaction_dim, 1024, 1024, 512, 256, 1],
            emb_dim,
            num_tables,
        }
    }

    /// A paper-shaped model with a different embedding dimension and table
    /// count (used by the Figure 15 sensitivity sweeps).
    pub fn paper_with(emb_dim: usize, num_tables: usize) -> Self {
        let interaction_dim = interaction::output_dim(num_tables, emb_dim);
        DlrmConfig {
            dense_dim: 13,
            bottom_widths: vec![13, 512, 256, emb_dim],
            top_widths: vec![interaction_dim, 1024, 1024, 512, 256, 1],
            emb_dim,
            num_tables,
        }
    }

    /// A miniature model for tests and functional examples.
    pub fn tiny() -> Self {
        let emb_dim = 8;
        let num_tables = 2;
        let interaction_dim = interaction::output_dim(num_tables, emb_dim);
        DlrmConfig {
            dense_dim: 4,
            bottom_widths: vec![4, 16, emb_dim],
            top_widths: vec![interaction_dim, 16, 1],
            emb_dim,
            num_tables,
        }
    }

    /// A tiny model with an explicit table count (functional-run helper).
    pub fn tiny_with_tables(num_tables: usize) -> Self {
        let emb_dim = 8;
        let interaction_dim = interaction::output_dim(num_tables, emb_dim);
        DlrmConfig {
            dense_dim: 4,
            bottom_widths: vec![4, 16, emb_dim],
            top_widths: vec![interaction_dim, 16, 1],
            emb_dim,
            num_tables,
        }
    }

    /// Validates the shape invariants.
    pub fn validate(&self) -> Result<(), String> {
        if self.bottom_widths.len() < 2 || self.top_widths.len() < 2 {
            return Err("MLPs need at least one layer".to_owned());
        }
        if self.bottom_widths[0] != self.dense_dim {
            return Err(format!(
                "bottom MLP input {} != dense_dim {}",
                self.bottom_widths[0], self.dense_dim
            ));
        }
        if *self.bottom_widths.last().expect("non-empty") != self.emb_dim {
            return Err(format!(
                "bottom MLP output {} != emb_dim {} (dot interaction requires equality)",
                self.bottom_widths.last().expect("non-empty"),
                self.emb_dim
            ));
        }
        let want = interaction::output_dim(self.num_tables, self.emb_dim);
        if self.top_widths[0] != want {
            return Err(format!(
                "top MLP input {} != interaction output {want}",
                self.top_widths[0]
            ));
        }
        if *self.top_widths.last().expect("non-empty") != 1 {
            return Err("top MLP must end in a single logit".to_owned());
        }
        Ok(())
    }

    /// Forward-pass multiply-accumulate FLOPs per sample across both MLPs
    /// (2 FLOPs per MAC).
    pub fn forward_flops_per_sample(&self) -> u64 {
        let macs = |widths: &[usize]| -> u64 {
            widths.windows(2).map(|w| (w[0] * w[1]) as u64).sum::<u64>()
        };
        2 * (macs(&self.bottom_widths) + macs(&self.top_widths))
    }

    /// Total training FLOPs per iteration (forward + backward ≈ 3× forward)
    /// for a batch, including the interaction stage.
    pub fn train_flops(&self, batch: usize) -> u64 {
        let mlp = 3 * self.forward_flops_per_sample();
        let v = self.num_tables + 1;
        let pairs = (v * (v - 1) / 2) as u64;
        // Interaction: 2d FLOPs per pair forward, 4d backward.
        let inter = 6 * pairs * self.emb_dim as u64;
        (mlp + inter) * batch as u64
    }

    /// Number of kernel/operator dispatches one training iteration costs on
    /// the dense path (forward + backward per layer, plus interaction and
    /// loss). Drives the per-kernel overhead in the timing model.
    pub fn train_kernel_count(&self) -> u32 {
        let layers = (self.bottom_widths.len() - 1) + (self.top_widths.len() - 1);
        // fwd (1) + bwd-dx (1) + bwd-dw (1) per layer, + interaction fwd/bwd,
        // + loss, + optimizer fusion.
        (3 * layers + 4) as u32
    }

    /// Bytes of one pooled-embedding activation set (`batch × dim` per
    /// table), the tensor volume flowing between the embedding layer and
    /// the interaction stage.
    pub fn pooled_bytes(&self, batch: usize) -> u64 {
        (self.num_tables * batch * self.emb_dim * 4) as u64
    }
}

impl Default for DlrmConfig {
    fn default() -> Self {
        Self::paper_default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_default_validates() {
        let c = DlrmConfig::paper_default();
        c.validate().expect("paper default must validate");
        assert_eq!(c.num_tables, 8);
        assert_eq!(c.emb_dim, 128);
        assert_eq!(c.top_widths[0], 128 + 36);
    }

    #[test]
    fn tiny_validates() {
        DlrmConfig::tiny().validate().expect("tiny must validate");
        for t in 1..6 {
            DlrmConfig::tiny_with_tables(t)
                .validate()
                .unwrap_or_else(|e| panic!("tables={t}: {e}"));
        }
    }

    #[test]
    fn sensitivity_shapes_validate() {
        for dim in [64, 128, 256] {
            DlrmConfig::paper_with(dim, 8)
                .validate()
                .unwrap_or_else(|e| panic!("dim={dim}: {e}"));
        }
    }

    #[test]
    fn validation_catches_bottom_mismatch() {
        let mut c = DlrmConfig::paper_default();
        c.bottom_widths = vec![13, 512, 64];
        assert!(c.validate().is_err());
    }

    #[test]
    fn validation_catches_top_input_mismatch() {
        let mut c = DlrmConfig::paper_default();
        c.top_widths[0] = 100;
        assert!(c.validate().is_err());
    }

    #[test]
    fn validation_catches_non_logit_output() {
        let mut c = DlrmConfig::paper_default();
        *c.top_widths.last_mut().expect("non-empty") = 2;
        assert!(c.validate().is_err());
    }

    #[test]
    fn flops_are_plausible_for_paper_model() {
        let c = DlrmConfig::paper_default();
        let per_sample = c.forward_flops_per_sample();
        // Bottom ≈ 170 K MACs, top ≈ 1.9 M MACs → ≈ 4.1 MFLOPs forward.
        assert!(
            per_sample > 3_000_000 && per_sample < 6_000_000,
            "{per_sample}"
        );
        let per_iter = c.train_flops(2048);
        assert!(per_iter > 20_000_000_000, "{per_iter}"); // > 20 GFLOP
    }

    #[test]
    fn kernel_count_scales_with_depth() {
        let small = DlrmConfig::tiny().train_kernel_count();
        let big = DlrmConfig::paper_default().train_kernel_count();
        assert!(big > small);
    }

    #[test]
    fn pooled_bytes_matches_shape() {
        let c = DlrmConfig::paper_default();
        assert_eq!(c.pooled_bytes(2048), 8 * 2048 * 128 * 4);
    }
}
