//! The assembled DLRM dense path.
//!
//! [`DlrmModel`] owns the bottom and top MLPs and performs one *dense-side*
//! training step: everything in the paper's Figure 4 training pipeline
//! except the embedding gathers/scatters themselves. Its output — the
//! gradient of the loss w.r.t. every table's pooled embedding — is exactly
//! the tensor the embedding backward pass (gradient duplicate / coalesce /
//! scatter) consumes, wherever the embeddings happen to live (CPU table,
//! static GPU cache, or ScratchPipe scratchpad).
//!
//! Pooled embeddings and their gradients cross the model boundary as **one
//! flat `num_tables × batch × emb_dim` buffer each** (table-major, row
//! `s` of table `t` at `t·batch·dim + s·dim`): the caller gathers into a
//! reusable arena, the model writes gradients back into a second arena,
//! and no per-table `Vec`s are allocated on the training hot path.
//! [`DlrmScratch`] extends the same discipline to the large MLP
//! activation buffers.

use crate::config::DlrmConfig;
use crate::interaction;
use crate::loss;
use crate::mlp::{Mlp, MlpActivations};

/// The dense half of a DLRM: bottom MLP, dot interaction, top MLP, BCE.
#[derive(Debug, Clone, PartialEq)]
pub struct DlrmModel {
    config: DlrmConfig,
    bottom: Mlp,
    top: Mlp,
}

/// Result of one dense-side training step. The pooled-embedding gradients
/// are written into the caller's flat buffer rather than returned, so the
/// steady-state training loop allocates nothing per step.
#[derive(Debug, Clone)]
pub struct TrainStepOutput {
    /// Mean binary cross-entropy of the batch.
    pub loss: f32,
    /// The batch's raw logits (pre-sigmoid), for evaluation metrics.
    pub logits: Vec<f32>,
}

/// Reusable forward/backward scratch buffers for [`DlrmModel`] training:
/// MLP activation caches and the interaction output — the large,
/// layer-width×batch buffers of a step. Allocate once and pass to every
/// [`DlrmModel::train_step_with`] call; only small per-step vectors
/// (logits, the BCE gradient seed, and the backward chain's intermediate
/// gradients) are still allocated per iteration.
#[derive(Debug, Clone, Default)]
pub struct DlrmScratch {
    acts_bottom: MlpActivations,
    acts_top: MlpActivations,
    z: Vec<f32>,
}

impl DlrmScratch {
    /// Creates an empty scratch; buffers grow to steady-state size on the
    /// first step and are reused afterwards.
    pub fn new() -> Self {
        Self::default()
    }
}

impl DlrmModel {
    /// Builds a model with seeded deterministic initialization.
    ///
    /// # Panics
    ///
    /// Panics if `config` fails validation.
    pub fn seeded(config: &DlrmConfig, seed: u64) -> Self {
        config
            .validate()
            .unwrap_or_else(|e| panic!("invalid DLRM config: {e}"));
        DlrmModel {
            config: config.clone(),
            bottom: Mlp::seeded(&config.bottom_widths, true, seed),
            top: Mlp::seeded(&config.top_widths, false, seed.wrapping_add(0xD1A0)),
        }
    }

    /// The model configuration.
    pub fn config(&self) -> &DlrmConfig {
        &self.config
    }

    /// Total trainable dense parameters.
    pub fn param_count(&self) -> usize {
        self.bottom.param_count() + self.top.param_count()
    }

    /// Forward-only prediction: returns per-sample click probabilities.
    /// `pooled` is the flat `num_tables × batch × emb_dim` buffer.
    ///
    /// # Panics
    ///
    /// Panics if buffer shapes disagree with the configuration.
    pub fn predict(&self, dense: &[f32], pooled: &[f32]) -> Vec<f32> {
        let c = &self.config;
        let acts_b = self.bottom.forward(dense);
        let z = interaction::forward(acts_b.output(), pooled, c.num_tables, c.emb_dim);
        let acts_t = self.top.forward(&z);
        acts_t.output().iter().map(|&z| loss::sigmoid(z)).collect()
    }

    /// One full dense-side training step with SGD at learning rate `lr`,
    /// allocating fresh scratch (convenience wrapper over
    /// [`DlrmModel::train_step_with`]; hot loops should hold a
    /// [`DlrmScratch`] instead).
    ///
    /// # Panics
    ///
    /// Same conditions as [`DlrmModel::train_step_with`].
    pub fn train_step(
        &mut self,
        dense: &[f32],
        pooled: &[f32],
        labels: &[f32],
        lr: f32,
        emb_grads: &mut [f32],
    ) -> TrainStepOutput {
        let mut scratch = DlrmScratch::new();
        self.train_step_with(&mut scratch, dense, pooled, labels, lr, emb_grads)
    }

    /// One full dense-side training step with SGD at learning rate `lr`:
    /// forward through bottom MLP → interaction → top MLP → BCE, backward
    /// all the way, update both MLPs, and write the pooled-embedding
    /// gradients into `emb_grads` (same flat layout as `pooled`,
    /// overwritten — a dirty reused arena is fine).
    ///
    /// # Panics
    ///
    /// Panics if `dense` is not `batch × dense_dim`, `pooled` is not
    /// `num_tables × batch × emb_dim`, `labels` is not `batch` long, or
    /// `emb_grads` does not match `pooled`.
    pub fn train_step_with(
        &mut self,
        scratch: &mut DlrmScratch,
        dense: &[f32],
        pooled: &[f32],
        labels: &[f32],
        lr: f32,
        emb_grads: &mut [f32],
    ) -> TrainStepOutput {
        let c = &self.config;
        assert_eq!(dense.len() % c.dense_dim, 0, "ragged dense batch");
        let batch = dense.len() / c.dense_dim;
        assert_eq!(
            pooled.len(),
            c.num_tables * batch * c.emb_dim,
            "pooled must be num_tables × batch × emb_dim"
        );
        assert_eq!(labels.len(), batch, "one label per sample");
        assert_eq!(
            emb_grads.len(),
            pooled.len(),
            "gradient buffer must match pooled layout"
        );

        // Forward.
        self.bottom.forward_into(dense, &mut scratch.acts_bottom);
        interaction::forward_into(
            scratch.acts_bottom.output(),
            pooled,
            c.num_tables,
            c.emb_dim,
            &mut scratch.z,
        );
        self.top.forward_into(&scratch.z, &mut scratch.acts_top);
        let logits = scratch.acts_top.output().to_vec();
        let (loss_val, dlogits) = loss::bce_with_logits(&logits, labels);

        // Backward.
        let dz = self.top.backward(&scratch.acts_top, &dlogits, lr);
        let d_bottom_out = interaction::backward(
            scratch.acts_bottom.output(),
            pooled,
            c.num_tables,
            c.emb_dim,
            &dz,
            emb_grads,
        );
        let _d_dense = self
            .bottom
            .backward(&scratch.acts_bottom, &d_bottom_out, lr);

        TrainStepOutput {
            loss: loss_val,
            logits,
        }
    }

    /// Exact bitwise equality of all dense parameters.
    pub fn bit_eq(&self, other: &DlrmModel) -> bool {
        self.bottom.bit_eq(&other.bottom) && self.top.bit_eq(&other.top)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn inputs(cfg: &DlrmConfig, batch: usize, seed: u64) -> (Vec<f32>, Vec<f32>, Vec<f32>) {
        let mut rng = StdRng::seed_from_u64(seed);
        let dense: Vec<f32> = (0..batch * cfg.dense_dim)
            .map(|_| rng.gen_range(-1.0..1.0))
            .collect();
        let pooled: Vec<f32> = (0..cfg.num_tables * batch * cfg.emb_dim)
            .map(|_| rng.gen_range(-0.5..0.5))
            .collect();
        let labels: Vec<f32> = (0..batch).map(|_| f32::from(rng.gen_bool(0.5))).collect();
        (dense, pooled, labels)
    }

    fn grads_for(cfg: &DlrmConfig, batch: usize) -> Vec<f32> {
        vec![0.0f32; cfg.num_tables * batch * cfg.emb_dim]
    }

    #[test]
    fn train_step_shapes() {
        let cfg = DlrmConfig::tiny();
        let mut m = DlrmModel::seeded(&cfg, 1);
        let (dense, pooled, labels) = inputs(&cfg, 6, 2);
        let mut grads = grads_for(&cfg, 6);
        let out = m.train_step(&dense, &pooled, &labels, 0.01, &mut grads);
        assert_eq!(grads.len(), cfg.num_tables * 6 * cfg.emb_dim);
        assert_eq!(out.logits.len(), 6);
        assert!(out.loss.is_finite());
    }

    #[test]
    fn training_reduces_loss_on_fixed_batch() {
        let cfg = DlrmConfig::tiny();
        let mut m = DlrmModel::seeded(&cfg, 3);
        let (dense, pooled, labels) = inputs(&cfg, 16, 4);
        let mut grads = grads_for(&cfg, 16);
        let mut scratch = DlrmScratch::new();
        let first = m
            .train_step_with(&mut scratch, &dense, &pooled, &labels, 0.1, &mut grads)
            .loss;
        let mut last = first;
        for _ in 0..60 {
            last = m
                .train_step_with(&mut scratch, &dense, &pooled, &labels, 0.1, &mut grads)
                .loss;
        }
        assert!(
            last < first * 0.7,
            "loss should fall on a memorizable batch: {first} → {last}"
        );
    }

    #[test]
    fn reused_scratch_trains_bit_identically_to_fresh() {
        let cfg = DlrmConfig::tiny();
        let mut fresh = DlrmModel::seeded(&cfg, 13);
        let mut reused = fresh.clone();
        let mut scratch = DlrmScratch::new();
        for i in 0..5 {
            let (dense, pooled, labels) = inputs(&cfg, 8, 100 + i);
            let mut ga = grads_for(&cfg, 8);
            let mut gb = grads_for(&cfg, 8);
            let oa = fresh.train_step(&dense, &pooled, &labels, 0.05, &mut ga);
            let ob = reused.train_step_with(&mut scratch, &dense, &pooled, &labels, 0.05, &mut gb);
            assert_eq!(oa.loss.to_bits(), ob.loss.to_bits());
            for (a, b) in ga.iter().zip(&gb) {
                assert_eq!(a.to_bits(), b.to_bits());
            }
        }
        assert!(fresh.bit_eq(&reused));
    }

    #[test]
    fn predictions_are_probabilities() {
        let cfg = DlrmConfig::tiny();
        let m = DlrmModel::seeded(&cfg, 5);
        let (dense, pooled, _) = inputs(&cfg, 10, 6);
        let p = m.predict(&dense, &pooled);
        assert_eq!(p.len(), 10);
        assert!(p.iter().all(|&v| (0.0..=1.0).contains(&v)));
    }

    #[test]
    fn embedding_gradients_match_finite_differences() {
        let cfg = DlrmConfig::tiny();
        let m = DlrmModel::seeded(&cfg, 7);
        let batch = 2;
        let (dense, pooled, labels) = inputs(&cfg, batch, 8);
        // Analytic gradient from a zero-lr step (no parameter movement).
        let mut grads = grads_for(&cfg, batch);
        let _ = m
            .clone()
            .train_step(&dense, &pooled, &labels, 0.0, &mut grads);
        let loss_of = |pooled: &[f32]| -> f32 {
            let acts_b = m.bottom.forward(&dense);
            let z = interaction::forward(acts_b.output(), pooled, cfg.num_tables, cfg.emb_dim);
            let acts_t = m.top.forward(&z);
            loss::bce_with_logits(acts_t.output(), &labels).0
        };
        let eps = 1e-2f32;
        for t in 0..cfg.num_tables {
            for i in (0..batch * cfg.emb_dim).step_by(5) {
                let idx = t * batch * cfg.emb_dim + i;
                let mut pp = pooled.clone();
                pp[idx] += eps;
                let mut pm = pooled.clone();
                pm[idx] -= eps;
                let numeric = (loss_of(&pp) - loss_of(&pm)) / (2.0 * eps);
                let analytic = grads[idx];
                assert!(
                    (analytic - numeric).abs() < 2e-2,
                    "table {t} elem {i}: analytic {analytic} vs numeric {numeric}"
                );
            }
        }
    }

    #[test]
    fn identical_seeds_train_identically() {
        let cfg = DlrmConfig::tiny();
        let mut a = DlrmModel::seeded(&cfg, 11);
        let mut b = DlrmModel::seeded(&cfg, 11);
        let (dense, pooled, labels) = inputs(&cfg, 8, 12);
        let mut ga = grads_for(&cfg, 8);
        let mut gb = grads_for(&cfg, 8);
        for _ in 0..5 {
            let oa = a.train_step(&dense, &pooled, &labels, 0.05, &mut ga);
            let ob = b.train_step(&dense, &pooled, &labels, 0.05, &mut gb);
            assert_eq!(oa.loss.to_bits(), ob.loss.to_bits());
        }
        assert!(a.bit_eq(&b));
    }

    #[test]
    fn param_count_is_positive_and_config_accessible() {
        let cfg = DlrmConfig::tiny();
        let m = DlrmModel::seeded(&cfg, 0);
        assert!(m.param_count() > 0);
        assert_eq!(m.config(), &cfg);
    }

    #[test]
    #[should_panic(expected = "num_tables × batch × emb_dim")]
    fn wrong_pooled_shape_rejected() {
        let cfg = DlrmConfig::tiny();
        let mut m = DlrmModel::seeded(&cfg, 0);
        let mut grads = [];
        let _ = m.train_step(&[0.0; 4], &[], &[1.0], 0.1, &mut grads);
    }

    #[test]
    #[should_panic(expected = "invalid DLRM config")]
    fn invalid_config_rejected_at_construction() {
        let mut cfg = DlrmConfig::tiny();
        cfg.top_widths[0] = 3;
        let _ = DlrmModel::seeded(&cfg, 0);
    }
}
