//! The assembled DLRM dense path.
//!
//! [`DlrmModel`] owns the bottom and top MLPs and performs one *dense-side*
//! training step: everything in the paper's Figure 4 training pipeline
//! except the embedding gathers/scatters themselves. Its output — the
//! gradient of the loss w.r.t. every table's pooled embedding — is exactly
//! the tensor the embedding backward pass (gradient duplicate / coalesce /
//! scatter) consumes, wherever the embeddings happen to live (CPU table,
//! static GPU cache, or ScratchPipe scratchpad).

use crate::config::DlrmConfig;
use crate::interaction;
use crate::loss;
use crate::mlp::Mlp;

/// The dense half of a DLRM: bottom MLP, dot interaction, top MLP, BCE.
#[derive(Debug, Clone, PartialEq)]
pub struct DlrmModel {
    config: DlrmConfig,
    bottom: Mlp,
    top: Mlp,
}

/// Result of one dense-side training step.
#[derive(Debug, Clone)]
pub struct TrainStepOutput {
    /// Mean binary cross-entropy of the batch.
    pub loss: f32,
    /// Per-table gradients w.r.t. the pooled embeddings (`batch × emb_dim`
    /// each) — the input to the embedding backward pass.
    pub embedding_grads: Vec<Vec<f32>>,
    /// The batch's raw logits (pre-sigmoid), for evaluation metrics.
    pub logits: Vec<f32>,
}

impl DlrmModel {
    /// Builds a model with seeded deterministic initialization.
    ///
    /// # Panics
    ///
    /// Panics if `config` fails validation.
    pub fn seeded(config: &DlrmConfig, seed: u64) -> Self {
        config
            .validate()
            .unwrap_or_else(|e| panic!("invalid DLRM config: {e}"));
        DlrmModel {
            config: config.clone(),
            bottom: Mlp::seeded(&config.bottom_widths, true, seed),
            top: Mlp::seeded(&config.top_widths, false, seed.wrapping_add(0xD1A0)),
        }
    }

    /// The model configuration.
    pub fn config(&self) -> &DlrmConfig {
        &self.config
    }

    /// Total trainable dense parameters.
    pub fn param_count(&self) -> usize {
        self.bottom.param_count() + self.top.param_count()
    }

    /// Forward-only prediction: returns per-sample click probabilities.
    ///
    /// # Panics
    ///
    /// Panics if buffer shapes disagree with the configuration.
    pub fn predict(&self, dense: &[f32], pooled: &[Vec<f32>]) -> Vec<f32> {
        let acts_b = self.bottom.forward(dense);
        let z = interaction::forward(acts_b.output(), pooled, self.config.emb_dim);
        let acts_t = self.top.forward(&z);
        acts_t.output().iter().map(|&z| loss::sigmoid(z)).collect()
    }

    /// One full dense-side training step with SGD at learning rate `lr`:
    /// forward through bottom MLP → interaction → top MLP → BCE, backward
    /// all the way, update both MLPs, and return the pooled-embedding
    /// gradients.
    ///
    /// # Panics
    ///
    /// Panics if `dense` is not `batch × dense_dim`, `pooled` is not
    /// `num_tables` buffers of `batch × emb_dim`, or `labels` is not
    /// `batch` long.
    pub fn train_step(
        &mut self,
        dense: &[f32],
        pooled: &[Vec<f32>],
        labels: &[f32],
        lr: f32,
    ) -> TrainStepOutput {
        let c = &self.config;
        assert_eq!(dense.len() % c.dense_dim, 0, "ragged dense batch");
        let batch = dense.len() / c.dense_dim;
        assert_eq!(pooled.len(), c.num_tables, "one pooled buffer per table");
        assert_eq!(labels.len(), batch, "one label per sample");

        // Forward.
        let acts_b = self.bottom.forward(dense);
        let bottom_out = acts_b.output().to_vec();
        let z = interaction::forward(&bottom_out, pooled, c.emb_dim);
        let acts_t = self.top.forward(&z);
        let logits = acts_t.output().to_vec();
        let (loss_val, dlogits) = loss::bce_with_logits(&logits, labels);

        // Backward.
        let dz = self.top.backward(&acts_t, &dlogits, lr);
        let (d_bottom_out, embedding_grads) =
            interaction::backward(&bottom_out, pooled, c.emb_dim, &dz);
        let _d_dense = self.bottom.backward(&acts_b, &d_bottom_out, lr);

        TrainStepOutput {
            loss: loss_val,
            embedding_grads,
            logits,
        }
    }

    /// Exact bitwise equality of all dense parameters.
    pub fn bit_eq(&self, other: &DlrmModel) -> bool {
        self.bottom.bit_eq(&other.bottom) && self.top.bit_eq(&other.top)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn inputs(cfg: &DlrmConfig, batch: usize, seed: u64) -> (Vec<f32>, Vec<Vec<f32>>, Vec<f32>) {
        let mut rng = StdRng::seed_from_u64(seed);
        let dense: Vec<f32> = (0..batch * cfg.dense_dim)
            .map(|_| rng.gen_range(-1.0..1.0))
            .collect();
        let pooled: Vec<Vec<f32>> = (0..cfg.num_tables)
            .map(|_| {
                (0..batch * cfg.emb_dim)
                    .map(|_| rng.gen_range(-0.5..0.5))
                    .collect()
            })
            .collect();
        let labels: Vec<f32> = (0..batch).map(|_| f32::from(rng.gen_bool(0.5))).collect();
        (dense, pooled, labels)
    }

    #[test]
    fn train_step_shapes() {
        let cfg = DlrmConfig::tiny();
        let mut m = DlrmModel::seeded(&cfg, 1);
        let (dense, pooled, labels) = inputs(&cfg, 6, 2);
        let out = m.train_step(&dense, &pooled, &labels, 0.01);
        assert_eq!(out.embedding_grads.len(), cfg.num_tables);
        for g in &out.embedding_grads {
            assert_eq!(g.len(), 6 * cfg.emb_dim);
        }
        assert_eq!(out.logits.len(), 6);
        assert!(out.loss.is_finite());
    }

    #[test]
    fn training_reduces_loss_on_fixed_batch() {
        let cfg = DlrmConfig::tiny();
        let mut m = DlrmModel::seeded(&cfg, 3);
        let (dense, pooled, labels) = inputs(&cfg, 16, 4);
        let first = m.train_step(&dense, &pooled, &labels, 0.1).loss;
        let mut last = first;
        for _ in 0..60 {
            last = m.train_step(&dense, &pooled, &labels, 0.1).loss;
        }
        assert!(
            last < first * 0.7,
            "loss should fall on a memorizable batch: {first} → {last}"
        );
    }

    #[test]
    fn predictions_are_probabilities() {
        let cfg = DlrmConfig::tiny();
        let m = DlrmModel::seeded(&cfg, 5);
        let (dense, pooled, _) = inputs(&cfg, 10, 6);
        let p = m.predict(&dense, &pooled);
        assert_eq!(p.len(), 10);
        assert!(p.iter().all(|&v| (0.0..=1.0).contains(&v)));
    }

    #[test]
    fn embedding_gradients_match_finite_differences() {
        let cfg = DlrmConfig::tiny();
        let m = DlrmModel::seeded(&cfg, 7);
        let (dense, pooled, labels) = inputs(&cfg, 2, 8);
        // Analytic gradient from a zero-lr step (no parameter movement).
        let out = m.clone().train_step(&dense, &pooled, &labels, 0.0);
        let loss_of = |pooled: &[Vec<f32>]| -> f32 {
            let acts_b = m.bottom.forward(&dense);
            let z = interaction::forward(acts_b.output(), pooled, cfg.emb_dim);
            let acts_t = m.top.forward(&z);
            loss::bce_with_logits(acts_t.output(), &labels).0
        };
        let eps = 1e-2f32;
        for t in 0..cfg.num_tables {
            for i in (0..2 * cfg.emb_dim).step_by(5) {
                let mut pp = pooled.clone();
                pp[t][i] += eps;
                let mut pm = pooled.clone();
                pm[t][i] -= eps;
                let numeric = (loss_of(&pp) - loss_of(&pm)) / (2.0 * eps);
                let analytic = out.embedding_grads[t][i];
                assert!(
                    (analytic - numeric).abs() < 2e-2,
                    "table {t} elem {i}: analytic {analytic} vs numeric {numeric}"
                );
            }
        }
    }

    #[test]
    fn identical_seeds_train_identically() {
        let cfg = DlrmConfig::tiny();
        let mut a = DlrmModel::seeded(&cfg, 11);
        let mut b = DlrmModel::seeded(&cfg, 11);
        let (dense, pooled, labels) = inputs(&cfg, 8, 12);
        for _ in 0..5 {
            let oa = a.train_step(&dense, &pooled, &labels, 0.05);
            let ob = b.train_step(&dense, &pooled, &labels, 0.05);
            assert_eq!(oa.loss.to_bits(), ob.loss.to_bits());
        }
        assert!(a.bit_eq(&b));
    }

    #[test]
    fn param_count_is_positive_and_config_accessible() {
        let cfg = DlrmConfig::tiny();
        let m = DlrmModel::seeded(&cfg, 0);
        assert!(m.param_count() > 0);
        assert_eq!(m.config(), &cfg);
    }

    #[test]
    #[should_panic(expected = "one pooled buffer per table")]
    fn wrong_table_count_rejected() {
        let cfg = DlrmConfig::tiny();
        let mut m = DlrmModel::seeded(&cfg, 0);
        let _ = m.train_step(&[0.0; 4], &[], &[1.0], 0.1);
    }

    #[test]
    #[should_panic(expected = "invalid DLRM config")]
    fn invalid_config_rejected_at_construction() {
        let mut cfg = DlrmConfig::tiny();
        cfg.top_widths[0] = 3;
        let _ = DlrmModel::seeded(&cfg, 0);
    }
}
