//! DLRM dot-product feature interaction.
//!
//! The interaction stage (paper Figure 1) combines the bottom-MLP output
//! with every table's pooled embedding: all `T + 1` vectors (each of width
//! `d`) are paired and their dot products, concatenated after the bottom
//! output itself, form the top MLP's input of width `d + (T+1)·T/2`.
//!
//! Pooled embeddings arrive as **one flat buffer**: table `t` occupies
//! `t·batch·dim .. (t+1)·batch·dim`, and sample `s`'s pooled vector sits
//! at `s·dim` within that table block — the same stride-indexed layout the
//! ScratchPipe \[Train\] stage's pooled arena uses, so no per-table `Vec`s
//! are ever materialized on the hot path.

use crate::kernels;

/// Number of interaction features for `t` tables and width-`d` vectors:
/// `d + C(t+1, 2)`.
pub fn output_dim(num_tables: usize, dim: usize) -> usize {
    let v = num_tables + 1;
    dim + v * (v - 1) / 2
}

/// Forward interaction.
///
/// * `bottom` — bottom-MLP output, `batch × dim`.
/// * `pooled` — flat `num_tables × batch × dim` pooled embeddings.
///
/// Returns the `batch × output_dim` interaction output: for each sample,
/// the bottom vector followed by the upper-triangle pairwise dot products
/// in row-major `(i, j), i < j` order over the vector list
/// `[bottom, table_0, …, table_{T-1}]`.
///
/// # Panics
///
/// Panics if buffer shapes disagree.
pub fn forward(bottom: &[f32], pooled: &[f32], num_tables: usize, dim: usize) -> Vec<f32> {
    let mut out = Vec::new();
    forward_into(bottom, pooled, num_tables, dim, &mut out);
    out
}

/// [`forward`] into a reusable output buffer (cleared in place, so
/// repeated calls don't reallocate).
///
/// # Panics
///
/// Panics if buffer shapes disagree.
pub fn forward_into(
    bottom: &[f32],
    pooled: &[f32],
    num_tables: usize,
    dim: usize,
    out: &mut Vec<f32>,
) {
    let batch = bottom.len() / dim;
    assert_eq!(bottom.len(), batch * dim, "ragged bottom buffer");
    assert_eq!(
        pooled.len(),
        num_tables * batch * dim,
        "pooled buffer shape mismatch"
    );
    let t = num_tables;
    let out_dim = output_dim(t, dim);
    out.clear();
    out.reserve(batch * out_dim);
    for s in 0..batch {
        let vector = |v: usize| -> &[f32] {
            if v == 0 {
                &bottom[s * dim..(s + 1) * dim]
            } else {
                let base = (v - 1) * batch * dim + s * dim;
                &pooled[base..base + dim]
            }
        };
        out.extend_from_slice(vector(0));
        for i in 0..=t {
            for j in (i + 1)..=t {
                out.push(kernels::dot_from(0.0, vector(i), vector(j)));
            }
        }
    }
}

/// Backward interaction: maps the gradient of the interaction output to
/// gradients of the bottom output and each pooled embedding.
///
/// `d_pooled` is a caller-provided flat `num_tables × batch × dim` buffer
/// (same layout as `pooled`); it is zeroed and then accumulated into, so a
/// reused arena needs no clearing by the caller. Returns `d_bottom` with
/// the same shape as `bottom`.
///
/// # Panics
///
/// Panics if buffer shapes disagree.
pub fn backward(
    bottom: &[f32],
    pooled: &[f32],
    num_tables: usize,
    dim: usize,
    dout: &[f32],
    d_pooled: &mut [f32],
) -> Vec<f32> {
    let batch = bottom.len() / dim;
    let t = num_tables;
    let out_dim = output_dim(t, dim);
    assert_eq!(
        pooled.len(),
        t * batch * dim,
        "pooled buffer shape mismatch"
    );
    assert_eq!(dout.len(), batch * out_dim, "output gradient shape");
    assert_eq!(d_pooled.len(), pooled.len(), "pooled gradient buffer shape");
    let mut d_bottom = vec![0.0f32; batch * dim];
    d_pooled.fill(0.0);
    for s in 0..batch {
        let vector = |v: usize| -> &[f32] {
            if v == 0 {
                &bottom[s * dim..(s + 1) * dim]
            } else {
                let base = (v - 1) * batch * dim + s * dim;
                &pooled[base..base + dim]
            }
        };
        let g = &dout[s * out_dim..(s + 1) * out_dim];
        // Pass-through part: the first `dim` outputs are the bottom vector.
        d_bottom[s * dim..(s + 1) * dim].copy_from_slice(&g[..dim]);
        // Dot-product part.
        let mut k = dim;
        for i in 0..=t {
            for j in (i + 1)..=t {
                let gk = g[k];
                k += 1;
                if gk == 0.0 {
                    continue;
                }
                // d(a·b)/da = b, /db = a — accumulate into the right owner.
                let (vi, vj) = (vector(i), vector(j));
                {
                    let di: &mut [f32] = if i == 0 {
                        &mut d_bottom[s * dim..(s + 1) * dim]
                    } else {
                        let base = (i - 1) * batch * dim + s * dim;
                        &mut d_pooled[base..base + dim]
                    };
                    kernels::axpy(di, gk, vj);
                }
                {
                    let base = (j - 1) * batch * dim + s * dim;
                    kernels::axpy(&mut d_pooled[base..base + dim], gk, vi);
                }
            }
        }
    }
    d_bottom
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn output_dim_formula() {
        assert_eq!(output_dim(0, 8), 8); // no tables: just bottom
        assert_eq!(output_dim(1, 8), 9); // one pair
        assert_eq!(output_dim(8, 128), 128 + 36);
    }

    #[test]
    fn forward_matches_hand_computation() {
        // bottom = (1, 2); table0 = (3, 4); table1 = (5, 6), batch 1.
        let bottom = vec![1.0, 2.0];
        let pooled = vec![3.0, 4.0, 5.0, 6.0];
        let out = forward(&bottom, &pooled, 2, 2);
        // pairs: b·t0 = 3+8 = 11; b·t1 = 5+12 = 17; t0·t1 = 15+24 = 39
        assert_eq!(out, vec![1.0, 2.0, 11.0, 17.0, 39.0]);
    }

    #[test]
    fn forward_handles_batches_independently() {
        let bottom = vec![1.0, 0.0, 0.0, 1.0];
        let pooled = vec![2.0, 2.0, 3.0, 3.0];
        let out = forward(&bottom, &pooled, 1, 2);
        // sample 0: [1, 0, (1,0)·(2,2) = 2]; sample 1: [0, 1, (0,1)·(3,3) = 3]
        assert_eq!(out, vec![1.0, 0.0, 2.0, 0.0, 1.0, 3.0]);
    }

    #[test]
    fn forward_into_reuses_buffer() {
        let bottom = vec![1.0, 2.0];
        let pooled = vec![3.0, 4.0];
        let mut out = vec![9.9f32; 32]; // dirty, over-sized
        forward_into(&bottom, &pooled, 1, 2, &mut out);
        assert_eq!(out, forward(&bottom, &pooled, 1, 2));
    }

    #[test]
    fn backward_pass_through_part() {
        let bottom = vec![1.0, 2.0];
        let mut dp: [f32; 0] = [];
        let db = backward(&bottom, &[], 0, 2, &[7.0, 9.0], &mut dp);
        assert_eq!(db, vec![7.0, 9.0]);
    }

    #[test]
    fn backward_matches_finite_differences() {
        let dim = 3;
        let batch = 1;
        let bottom = vec![0.5, -0.2, 0.8];
        let pooled = vec![0.1, 0.9, -0.4, -0.6, 0.3, 0.7]; // 2 tables × 1 × 3
        let dout: Vec<f32> = (0..output_dim(2, dim))
            .map(|i| 0.1 * (i as f32 + 1.0))
            .collect();
        let loss = |bottom: &[f32], pooled: &[f32]| -> f32 {
            forward(bottom, pooled, 2, dim)
                .iter()
                .zip(&dout)
                .map(|(y, g)| y * g)
                .sum()
        };
        let mut dp = vec![0.0f32; pooled.len()];
        let db = backward(&bottom, &pooled, 2, dim, &dout, &mut dp);
        let eps = 1e-3f32;
        for i in 0..dim {
            let mut bp = bottom.clone();
            bp[i] += eps;
            let mut bm = bottom.clone();
            bm[i] -= eps;
            let numeric = (loss(&bp, &pooled) - loss(&bm, &pooled)) / (2.0 * eps);
            assert!((db[i] - numeric).abs() < 1e-2, "bottom[{i}]");
        }
        for t in 0..2 {
            for i in 0..dim {
                let idx = t * batch * dim + i;
                let mut pp = pooled.clone();
                pp[idx] += eps;
                let mut pm = pooled.clone();
                pm[idx] -= eps;
                let numeric = (loss(&bottom, &pp) - loss(&bottom, &pm)) / (2.0 * eps);
                assert!(
                    (dp[idx] - numeric).abs() < 1e-2,
                    "pooled[{t}][{i}]: {} vs {numeric}",
                    dp[idx]
                );
            }
        }
    }

    #[test]
    fn backward_zeroes_a_dirty_gradient_arena() {
        let bottom = vec![1.0, 1.0];
        let pooled = vec![2.0, 2.0];
        let mut dout = vec![0.0f32; output_dim(1, 2)];
        dout[0] = 1.0; // only the pass-through part
        let mut dp = vec![f32::NAN; 2]; // reused arena full of garbage
        let db = backward(&bottom, &pooled, 1, 2, &dout, &mut dp);
        assert_eq!(db, vec![1.0, 0.0]);
        assert_eq!(dp, vec![0.0, 0.0]);
    }

    #[test]
    #[should_panic(expected = "pooled buffer shape mismatch")]
    fn ragged_pooled_rejected() {
        let _ = forward(&[1.0, 2.0], &[1.0; 3], 1, 2);
    }
}
