//! Multi-layer perceptrons with ReLU activations.

use crate::kernels;
use crate::linear::Linear;

/// A stack of [`Linear`] layers with ReLU between (and optionally after)
/// them.
///
/// DLRM uses two MLPs: the *bottom* MLP (ReLU after every layer, including
/// the last, whose output feeds feature interaction) and the *top* MLP
/// (ReLU after every layer except the last, which emits the CTR logit).
#[derive(Debug, Clone, PartialEq)]
pub struct Mlp {
    layers: Vec<Linear>,
    relu_last: bool,
}

/// Forward activations cached for the backward pass.
///
/// Activation widths differ per layer, so this is the one place a
/// vector-of-vectors layout is structural rather than incidental; the
/// buffers are *reused* across iterations via [`Mlp::forward_into`], which
/// refills them in place without reallocating.
#[derive(Debug, Clone, Default)]
pub struct MlpActivations {
    /// `inputs[l]` is the input to layer `l`; `inputs.last()` is the final
    /// output (post-activation).
    inputs: Vec<Vec<f32>>,
    /// Pre-activation outputs of each layer (needed for the ReLU mask).
    pre_act: Vec<Vec<f32>>,
}

impl MlpActivations {
    /// Creates an empty activation cache, ready to be filled by
    /// [`Mlp::forward_into`].
    pub fn new() -> Self {
        Self::default()
    }

    /// The MLP's final output.
    ///
    /// # Panics
    ///
    /// Panics if no forward pass has filled the cache yet.
    pub fn output(&self) -> &[f32] {
        self.inputs.last().expect("at least one layer")
    }
}

impl Mlp {
    /// Builds an MLP with the given layer widths, e.g. `[13, 512, 256, 128]`
    /// creates three layers. `relu_last` controls whether the final layer's
    /// output passes through ReLU (true for DLRM bottom MLPs).
    ///
    /// # Panics
    ///
    /// Panics if fewer than two widths are given.
    pub fn seeded(widths: &[usize], relu_last: bool, seed: u64) -> Self {
        assert!(widths.len() >= 2, "an MLP needs at least one layer");
        let layers = widths
            .windows(2)
            .enumerate()
            .map(|(i, w)| Linear::seeded(w[0], w[1], seed.wrapping_add(i as u64 * 0x9E37)))
            .collect();
        Mlp { layers, relu_last }
    }

    /// Input width of the first layer.
    pub fn in_dim(&self) -> usize {
        self.layers.first().expect("non-empty").in_dim()
    }

    /// Output width of the last layer.
    pub fn out_dim(&self) -> usize {
        self.layers.last().expect("non-empty").out_dim()
    }

    /// The layers.
    pub fn layers(&self) -> &[Linear] {
        &self.layers
    }

    /// Total trainable parameters.
    pub fn param_count(&self) -> usize {
        self.layers.iter().map(Linear::param_count).sum()
    }

    /// Forward pass, retaining the activations needed by
    /// [`Mlp::backward`].
    pub fn forward(&self, x: &[f32]) -> MlpActivations {
        let mut acts = MlpActivations::new();
        self.forward_into(x, &mut acts);
        acts
    }

    /// Forward pass into a reusable activation cache: every buffer is
    /// cleared and refilled in place, so a steady-state training loop
    /// performs no activation allocations (the hot-path variant the
    /// pipeline's \[Train\] stage uses every iteration).
    pub fn forward_into(&self, x: &[f32], acts: &mut MlpActivations) {
        let n = self.layers.len();
        acts.inputs.resize_with(n + 1, Vec::new);
        acts.pre_act.resize_with(n, Vec::new);
        acts.inputs[0].clear();
        acts.inputs[0].extend_from_slice(x);
        for (l, layer) in self.layers.iter().enumerate() {
            let (head, tail) = acts.inputs.split_at_mut(l + 1);
            layer.forward_into(&head[l], &mut acts.pre_act[l]);
            let is_last = l + 1 == n;
            let post = &mut tail[0];
            post.clear();
            if !is_last || self.relu_last {
                kernels::relu_extend(post, &acts.pre_act[l]);
            } else {
                post.extend_from_slice(&acts.pre_act[l]);
            }
        }
    }

    /// Backward pass from the output gradient; applies SGD to every layer
    /// and returns the gradient w.r.t. the MLP input.
    ///
    /// # Panics
    ///
    /// Panics if `dy` does not match the cached activation shapes.
    pub fn backward(&mut self, acts: &MlpActivations, dy: &[f32], lr: f32) -> Vec<f32> {
        let mut grad = dy.to_vec();
        for (l, layer) in self.layers.iter_mut().enumerate().rev() {
            let is_last = l + 1 == acts.pre_act.len();
            if !is_last || self.relu_last {
                // ReLU mask from the pre-activation values.
                kernels::relu_mask(&mut grad, &acts.pre_act[l]);
            }
            grad = layer.backward(&acts.inputs[l], &grad, lr);
        }
        grad
    }

    /// Exact bitwise equality of all parameters.
    pub fn bit_eq(&self, other: &Mlp) -> bool {
        self.layers.len() == other.layers.len()
            && self
                .layers
                .iter()
                .zip(&other.layers)
                .all(|(a, b)| a.bit_eq(b))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shapes_propagate() {
        let mlp = Mlp::seeded(&[13, 64, 32, 8], true, 1);
        assert_eq!(mlp.in_dim(), 13);
        assert_eq!(mlp.out_dim(), 8);
        assert_eq!(mlp.layers().len(), 3);
        let acts = mlp.forward(&[0.1; 2 * 13]);
        assert_eq!(acts.output().len(), 2 * 8);
    }

    #[test]
    fn relu_clamps_negative_activations() {
        let mlp = Mlp::seeded(&[4, 4], true, 5);
        let acts = mlp.forward(&[-1.0, 2.0, -3.0, 0.5]);
        assert!(acts.output().iter().all(|&v| v >= 0.0));
    }

    #[test]
    fn no_relu_on_last_layer_when_disabled() {
        // With relu_last = false some outputs should be negative for a
        // generic input.
        let mlp = Mlp::seeded(&[8, 16, 8], false, 9);
        let x: Vec<f32> = (0..8).map(|i| (i as f32 - 4.0) / 4.0).collect();
        let out = mlp.forward(&x);
        assert!(
            out.output().iter().any(|&v| v < 0.0),
            "expected some negative logits: {:?}",
            out.output()
        );
    }

    #[test]
    fn backward_reduces_loss() {
        // One SGD step on L = ½‖y‖² must reduce the loss.
        let mut mlp = Mlp::seeded(&[6, 12, 4], false, 3);
        let x = vec![0.5, -0.3, 0.8, 0.2, -0.7, 0.9];
        let loss = |m: &Mlp| -> f32 { m.forward(&x).output().iter().map(|v| 0.5 * v * v).sum() };
        let before = loss(&mlp);
        let acts = mlp.forward(&x);
        let dy: Vec<f32> = acts.output().to_vec(); // dL/dy = y
        let _ = mlp.backward(&acts, &dy, 0.01);
        let after = loss(&mlp);
        assert!(after < before, "loss {before} → {after}");
    }

    #[test]
    fn input_gradient_matches_finite_differences() {
        let mut mlp = Mlp::seeded(&[5, 7, 3], true, 11);
        let x = vec![0.4, -0.2, 0.9, 0.1, -0.5];
        let loss = |m: &Mlp, x: &[f32]| -> f32 { m.forward(x).output().iter().sum() };
        let acts = mlp.forward(&x);
        let dy = vec![1.0f32; 3];
        let dx = mlp.clone().backward(&acts, &dy, 0.0);
        let eps = 1e-3f32;
        for i in 0..x.len() {
            let mut xp = x.clone();
            xp[i] += eps;
            let mut xm = x.clone();
            xm[i] -= eps;
            let numeric = (loss(&mlp, &xp) - loss(&mlp, &xm)) / (2.0 * eps);
            assert!(
                (dx[i] - numeric).abs() < 1e-2,
                "input {i}: analytic {} vs numeric {numeric}",
                dx[i]
            );
        }
        let _ = &mut mlp;
    }

    #[test]
    fn param_count_sums_layers() {
        let mlp = Mlp::seeded(&[3, 5, 2], true, 0);
        assert_eq!(mlp.param_count(), (3 * 5 + 5) + (5 * 2 + 2));
    }

    #[test]
    fn bit_eq_detects_divergence() {
        let a = Mlp::seeded(&[4, 4], true, 1);
        let mut b = a.clone();
        assert!(a.bit_eq(&b));
        let acts = b.forward(&[1.0; 4]);
        let _ = b.backward(&acts, &[1.0; 4], 0.1);
        assert!(!a.bit_eq(&b));
    }

    #[test]
    #[should_panic(expected = "at least one layer")]
    fn too_few_widths_rejected() {
        let _ = Mlp::seeded(&[4], true, 0);
    }

    #[test]
    fn forward_into_reuses_buffers_bitwise() {
        let mlp = Mlp::seeded(&[6, 12, 4], true, 7);
        let a: Vec<f32> = (0..12).map(|i| (i as f32 - 6.0) / 3.0).collect();
        let b: Vec<f32> = (0..12).map(|i| (i as f32) * 0.11 - 0.7).collect();
        let fresh = mlp.forward(&a);
        // Fill the cache with a different batch first, then reuse it.
        let mut acts = MlpActivations::new();
        mlp.forward_into(&b, &mut acts);
        mlp.forward_into(&a, &mut acts);
        assert_eq!(
            fresh
                .output()
                .iter()
                .map(|v| v.to_bits())
                .collect::<Vec<_>>(),
            acts.output()
                .iter()
                .map(|v| v.to_bits())
                .collect::<Vec<_>>()
        );
    }
}
