//! SIMD-friendly inner-loop kernels shared by the dense layers.
//!
//! Every hot loop in `linear`, `mlp`, and `interaction` funnels through
//! these helpers. Each one asserts exact slice-length equality up front so
//! LLVM can drop the per-element bounds checks and autovectorize, while
//! keeping the floating-point accumulation order *identical* to the
//! open-coded loops they replaced — dot products fold strictly left to
//! right from their initial value, and axpy is elementwise. That order is
//! load-bearing: the pipeline's bit-exactness suites compare results
//! across schedules and worker counts down to the last ulp.

/// Sequential dot product folded onto an initial value: `init + Σ a·b`,
/// accumulated strictly left to right (NOT reassociated — bit-compatible
/// with the scalar loop `acc = init; for.. { acc += a[i] * b[i] }`).
///
/// # Panics
///
/// Panics if `a.len() != b.len()`.
#[inline]
pub fn dot_from(init: f32, a: &[f32], b: &[f32]) -> f32 {
    assert_eq!(a.len(), b.len(), "dot operand width mismatch");
    let mut acc = init;
    for (x, y) in a.iter().zip(b) {
        acc += x * y;
    }
    acc
}

/// `y += a · x`, elementwise. Fully data-parallel, so it vectorizes
/// cleanly; bit-identical to `*y -= s * x` when called with `a = -s`
/// (IEEE-754 negation commutes through multiplication, and subtraction is
/// addition of the negation).
///
/// # Panics
///
/// Panics if `y.len() != x.len()`.
#[inline]
pub fn axpy(y: &mut [f32], a: f32, x: &[f32]) {
    assert_eq!(y.len(), x.len(), "axpy operand width mismatch");
    for (yv, xv) in y.iter_mut().zip(x) {
        *yv += a * xv;
    }
}

/// Appends `max(v, 0)` of every element of `src` to `dst` — the ReLU
/// forward, elementwise and branch-free.
#[inline]
pub fn relu_extend(dst: &mut Vec<f32>, src: &[f32]) {
    dst.extend(src.iter().map(|&v| v.max(0.0)));
}

/// Zeroes every gradient whose pre-activation was non-positive — the ReLU
/// backward mask.
///
/// # Panics
///
/// Panics if `grad.len() != pre_act.len()`.
#[inline]
pub fn relu_mask(grad: &mut [f32], pre_act: &[f32]) {
    assert_eq!(grad.len(), pre_act.len(), "mask width mismatch");
    for (g, &p) in grad.iter_mut().zip(pre_act) {
        if p <= 0.0 {
            *g = 0.0;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dot_from_matches_scalar_loop_bitwise() {
        let a: Vec<f32> = (0..33).map(|i| (i as f32).sin() * 1e-3).collect();
        let b: Vec<f32> = (0..33).map(|i| (i as f32).cos() * 7.0).collect();
        let mut acc = 0.25f32;
        for (x, y) in a.iter().zip(&b) {
            acc += x * y;
        }
        assert_eq!(dot_from(0.25, &a, &b).to_bits(), acc.to_bits());
    }

    #[test]
    fn axpy_negated_scale_equals_subtraction_bitwise() {
        let x: Vec<f32> = (0..19).map(|i| 1e-4 * i as f32 - 0.3).collect();
        let mut sub: Vec<f32> = (0..19).map(|i| (i as f32).sqrt()).collect();
        let mut add = sub.clone();
        let s = 0.037f32;
        for (y, xv) in sub.iter_mut().zip(&x) {
            *y -= s * xv;
        }
        axpy(&mut add, -s, &x);
        for (a, b) in add.iter().zip(&sub) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
    }

    #[test]
    fn relu_pair_round_trips() {
        let pre = [1.5f32, -2.0, 0.0, 3.0];
        let mut act = Vec::new();
        relu_extend(&mut act, &pre);
        assert_eq!(act, vec![1.5, 0.0, 0.0, 3.0]);
        let mut grad = [1.0f32; 4];
        relu_mask(&mut grad, &pre);
        assert_eq!(grad, [1.0, 0.0, 0.0, 1.0]);
    }

    #[test]
    #[should_panic(expected = "width mismatch")]
    fn ragged_operands_rejected() {
        let _ = dot_from(0.0, &[1.0], &[1.0, 2.0]);
    }
}
