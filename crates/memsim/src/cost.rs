//! The cost model: converting [`Traffic`] vectors into [`SimTime`].
//!
//! A stage's time is computed per *resource* (CPU memory system, GPU, PCIe
//! up/down, NVLink fabric). Work on distinct resources within one stage is
//! assumed to overlap perfectly (e.g. the [Collect] stage reads missed rows
//! from CPU DRAM while the GPU reads victim rows from the scratchpad), so the
//! stage time is the **max** of the per-resource times. Work on the *same*
//! resource serializes, so per-resource time is the **sum** of its
//! components.

use serde::{Deserialize, Serialize};

use crate::pipeline::Resource;
use crate::spec::SystemSpec;
use crate::time::SimTime;
use crate::traffic::Traffic;

/// Converts traffic vectors to time under a given [`SystemSpec`].
///
/// # Example
///
/// ```
/// use memsim::{CostModel, SystemSpec, Traffic};
///
/// let model = CostModel::new(SystemSpec::isca_paper());
/// let t = Traffic { pcie_h2d_bytes: 128 << 20, pcie_ops: 1, ..Traffic::default() };
/// // 128 MiB over a 12.8 GB/s effective link ≈ 10.5 ms.
/// let ms = model.traffic_time(&t).as_millis();
/// assert!(ms > 9.0 && ms < 12.0, "{ms}");
/// ```
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct CostModel {
    spec: SystemSpec,
}

impl CostModel {
    /// Creates a cost model for the given system.
    pub fn new(spec: SystemSpec) -> Self {
        CostModel { spec }
    }

    /// The underlying system specification.
    pub fn spec(&self) -> &SystemSpec {
        &self.spec
    }

    /// Time spent by the CPU memory system (and CPU arithmetic) on `t`.
    pub fn cpu_time(&self, t: &Traffic) -> SimTime {
        let m = &self.spec.cpu_mem;
        let mut secs = t.cpu_random_read_bytes as f64 / m.random_read_bw()
            + t.cpu_random_write_bytes as f64 / m.random_write_bw()
            + (t.cpu_stream_read_bytes + t.cpu_stream_write_bytes) as f64 / m.stream_bw()
            + t.cpu_ops as f64 * m.op_latency;
        if t.cpu_flops > 0 {
            secs += t.cpu_flops as f64 / self.spec.cpu_compute.effective_flops();
        }
        SimTime::from_secs(secs)
    }

    /// Time spent by the GPU (memory traffic + GEMM + kernel dispatch) on `t`.
    pub fn gpu_time(&self, t: &Traffic) -> SimTime {
        let m = &self.spec.gpu_mem;
        let mut secs = t.gpu_random_read_bytes as f64 / m.random_read_bw()
            + t.gpu_random_write_bytes as f64 / m.random_write_bw()
            + (t.gpu_stream_read_bytes + t.gpu_stream_write_bytes) as f64 / m.stream_bw()
            + t.gpu_ops as f64 * self.spec.gpu_compute.kernel_overhead;
        if t.gpu_flops > 0 {
            secs += t.gpu_flops as f64 / self.spec.gpu_compute.effective_flops();
        }
        SimTime::from_secs(secs)
    }

    /// Time of the host→device PCIe channel for `t`.
    pub fn pcie_h2d_time(&self, t: &Traffic) -> SimTime {
        if t.pcie_h2d_bytes == 0 {
            return SimTime::ZERO;
        }
        SimTime::from_secs(
            t.pcie_h2d_bytes as f64 / self.spec.pcie.effective_bw()
                + t.pcie_ops.max(1) as f64 * self.spec.pcie.latency,
        )
    }

    /// Time of the device→host PCIe channel for `t`.
    pub fn pcie_d2h_time(&self, t: &Traffic) -> SimTime {
        if t.pcie_d2h_bytes == 0 {
            return SimTime::ZERO;
        }
        SimTime::from_secs(
            t.pcie_d2h_bytes as f64 / self.spec.pcie.effective_bw()
                + t.pcie_ops.max(1) as f64 * self.spec.pcie.latency,
        )
    }

    /// Time of the inter-GPU fabric for `t` (zero on single-GPU nodes).
    pub fn nvlink_time(&self, t: &Traffic) -> SimTime {
        if t.nvlink_bytes == 0 || self.spec.nvlink_bw == 0.0 {
            return SimTime::ZERO;
        }
        SimTime::from_secs(t.nvlink_bytes as f64 / self.spec.nvlink_bw)
    }

    /// Per-resource busy times for `t`, in [`Resource`] order.
    pub fn resource_times(&self, t: &Traffic) -> [(Resource, SimTime); 5] {
        [
            (Resource::CpuMem, self.cpu_time(t)),
            (Resource::Gpu, self.gpu_time(t)),
            (Resource::PcieH2D, self.pcie_h2d_time(t)),
            (Resource::PcieD2H, self.pcie_d2h_time(t)),
            (Resource::NvLink, self.nvlink_time(t)),
        ]
    }

    /// Time for one stage executing `t` in isolation: resources overlap, so
    /// this is the maximum of the per-resource times.
    pub fn traffic_time(&self, t: &Traffic) -> SimTime {
        self.resource_times(t)
            .iter()
            .fold(SimTime::ZERO, |acc, (_, s)| acc.max(*s))
    }

    /// Time for `t` with *no* overlap between resources (the fully
    /// serialized upper bound). Useful for un-pipelined reference points.
    pub fn serialized_time(&self, t: &Traffic) -> SimTime {
        self.resource_times(t).iter().map(|(_, s)| *s).sum()
    }

    /// Time for a GEMM of `flops` floating-point operations on the GPU,
    /// dispatched as `kernels` kernel launches.
    pub fn gemm_time(&self, flops: u64, kernels: u32) -> SimTime {
        SimTime::from_secs(
            flops as f64 / self.spec.gpu_compute.effective_flops()
                + kernels as f64 * self.spec.gpu_compute.kernel_overhead,
        )
    }
}

/// Helpers to compute traffic for the embedding primitives of §II-B.
///
/// These functions count the *bytes the algorithm must move*; the caller
/// decides which device fields of [`Traffic`] to charge them to.
pub mod primitives {
    /// Bytes read by an embedding gather of `rows` rows of `dim` fp32 values.
    pub fn gather_bytes(rows: u64, dim: u32) -> u64 {
        rows * dim as u64 * 4
    }

    /// Bytes written by the pooled-reduction output: `batch` vectors of
    /// `dim` fp32 values (one reduced vector per sample per table).
    pub fn reduce_output_bytes(batch: u64, dim: u32) -> u64 {
        batch * dim as u64 * 4
    }

    /// Streaming bytes moved by gradient duplication: each of the `rows`
    /// looked-up positions receives a copy of its sample's gradient vector.
    pub fn duplicate_bytes(rows: u64, dim: u32) -> u64 {
        rows * dim as u64 * 4
    }

    /// Streaming bytes moved by gradient coalescing (sort + segmented sum):
    /// approximately one read and one write of the duplicated gradients,
    /// plus a read of the index array.
    pub fn coalesce_bytes(rows: u64, dim: u32) -> u64 {
        2 * rows * dim as u64 * 4 + rows * 8
    }

    /// Bytes of read-modify-write traffic for an SGD scatter update of
    /// `unique_rows` rows (each row is read, updated, and written back).
    pub fn scatter_update_bytes(unique_rows: u64, dim: u32) -> u64 {
        2 * unique_rows * dim as u64 * 4
    }

    /// FLOPs of one dense layer `out = in × W` for a batch: 2·B·I·O for the
    /// forward pass; backward costs roughly twice the forward (dX and dW).
    pub fn gemm_flops(batch: u64, in_dim: u64, out_dim: u64) -> u64 {
        2 * batch * in_dim * out_dim
    }
}

#[cfg(test)]
mod tests {
    use super::primitives::*;
    use super::*;

    fn model() -> CostModel {
        CostModel::new(SystemSpec::isca_paper())
    }

    #[test]
    fn cpu_random_read_dominates_equivalent_stream() {
        let m = model();
        let rand = Traffic {
            cpu_random_read_bytes: 1 << 30,
            ..Traffic::default()
        };
        let stream = Traffic {
            cpu_stream_read_bytes: 1 << 30,
            ..Traffic::default()
        };
        assert!(m.cpu_time(&rand) > m.cpu_time(&stream) * 3.0);
    }

    #[test]
    fn stage_time_is_max_across_resources() {
        let m = model();
        let t = Traffic {
            cpu_random_read_bytes: 1 << 28,
            pcie_h2d_bytes: 1 << 20,
            pcie_ops: 1,
            ..Traffic::default()
        };
        let cpu = m.cpu_time(&t);
        let pcie = m.pcie_h2d_time(&t);
        assert!(cpu > pcie);
        assert_eq!(m.traffic_time(&t), cpu);
        assert_eq!(m.serialized_time(&t), cpu + pcie);
    }

    #[test]
    fn pcie_directions_are_independent() {
        let m = model();
        let t = Traffic {
            pcie_h2d_bytes: 1 << 30,
            pcie_d2h_bytes: 1 << 30,
            pcie_ops: 1,
            ..Traffic::default()
        };
        // Full duplex: total time ≈ one direction's time, not double.
        let each = m.pcie_h2d_time(&t);
        assert_eq!(m.traffic_time(&t), each.max(m.pcie_d2h_time(&t)));
    }

    #[test]
    fn zero_traffic_is_free() {
        assert_eq!(model().traffic_time(&Traffic::ZERO), SimTime::ZERO);
    }

    #[test]
    fn gemm_includes_kernel_overhead() {
        let m = model();
        let pure = m.gemm_time(1_000_000, 0);
        let with_overhead = m.gemm_time(1_000_000, 10);
        let spec = SystemSpec::isca_paper();
        let expected = pure + SimTime::from_secs(10.0 * spec.gpu_compute.kernel_overhead);
        assert!((with_overhead.as_secs() - expected.as_secs()).abs() < 1e-12);
    }

    #[test]
    fn default_gather_lands_in_paper_band() {
        // The paper's default model: 8 tables × 20 lookups × batch 2048 of
        // 128-dim fp32 rows = 167.8 MB of random CPU reads per iteration.
        // Under the calibrated CPU spec this must take tens of ms — the
        // paper's Figure 5 shows CPU embedding forward ≈ 40-90 ms once the
        // ≈2× framework-operator factor of the baseline systems applies.
        let rows = 8 * 20 * 2048u64;
        let t = Traffic {
            cpu_random_read_bytes: gather_bytes(rows, 128),
            cpu_ops: 8,
            ..Traffic::default()
        };
        let ms = model().cpu_time(&t).as_millis();
        assert!(ms > 12.0 && ms < 60.0, "gather took {ms} ms");
    }

    #[test]
    fn primitive_byte_counts() {
        assert_eq!(gather_bytes(10, 128), 10 * 512);
        assert_eq!(reduce_output_bytes(4, 128), 4 * 512);
        assert_eq!(duplicate_bytes(10, 128), 10 * 512);
        assert_eq!(coalesce_bytes(10, 128), 2 * 10 * 512 + 80);
        assert_eq!(scatter_update_bytes(10, 128), 2 * 10 * 512);
        assert_eq!(gemm_flops(2, 3, 5), 60);
    }

    #[test]
    fn nvlink_zero_on_single_gpu() {
        let t = Traffic {
            nvlink_bytes: 1 << 30,
            ..Traffic::default()
        };
        assert_eq!(model().nvlink_time(&t), SimTime::ZERO);
        let multi = CostModel::new(SystemSpec::p3_16xlarge());
        assert!(multi.nvlink_time(&t) > SimTime::ZERO);
    }

    #[test]
    fn resource_times_ordering_is_stable() {
        let times = model().resource_times(&Traffic::ZERO);
        assert_eq!(times[0].0, Resource::CpuMem);
        assert_eq!(times[1].0, Resource::Gpu);
        assert_eq!(times[4].0, Resource::NvLink);
    }
}
