//! Hardware specifications for the simulated training node.
//!
//! The default preset, [`SystemSpec::isca_paper`], mirrors the evaluation
//! platform of the ScratchPipe paper (§V Methodology): an Intel Xeon
//! E5-2698v4 with 256 GB DDR4 at 76.8 GB/s, an NVIDIA V100 with 32 GB HBM2
//! at 900 GB/s, and a PCIe gen3 x16 link at 16 GB/s per direction.
//!
//! Peak bandwidths are de-rated by *access-class efficiencies*: a 512 B
//! embedding row fetched at a random table offset achieves only a few percent
//! of peak on a CPU (DRAM page misses, TLB pressure, limited MLP), while a
//! streaming copy achieves most of peak. The GPU, whose memory system is
//! built for massively parallel gather/scatter, sustains a much higher
//! fraction on the same pattern. These efficiencies are the model's only
//! free parameters and are documented in `EXPERIMENTS.md`.

use serde::{Deserialize, Serialize};

/// A memory device (CPU DRAM or GPU HBM) with effective bandwidths.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DeviceSpec {
    /// Peak theoretical bandwidth in bytes/second.
    pub peak_bw: f64,
    /// Fraction of peak achieved by random row-granule reads (gathers).
    pub random_read_eff: f64,
    /// Fraction of peak achieved by random row-granule read-modify-writes
    /// (scatter updates). Usually lower than reads: each update both reads
    /// and writes the line and defeats prefetchers.
    pub random_write_eff: f64,
    /// Fraction of peak achieved by streaming (sequential) access.
    pub stream_eff: f64,
    /// Fixed per-operation latency in seconds (kernel launch, driver call,
    /// framework dispatch). Charged once per logical memory operation.
    pub op_latency: f64,
}

impl DeviceSpec {
    /// Effective random-read bandwidth in bytes/second.
    pub fn random_read_bw(&self) -> f64 {
        self.peak_bw * self.random_read_eff
    }

    /// Effective random-write (read-modify-write) bandwidth in bytes/second.
    pub fn random_write_bw(&self) -> f64 {
        self.peak_bw * self.random_write_eff
    }

    /// Effective streaming bandwidth in bytes/second.
    pub fn stream_bw(&self) -> f64 {
        self.peak_bw * self.stream_eff
    }

    /// Validates that every efficiency lies in `(0, 1]` and the peak is
    /// positive.
    pub fn validate(&self) -> Result<(), SpecError> {
        let effs = [
            ("random_read_eff", self.random_read_eff),
            ("random_write_eff", self.random_write_eff),
            ("stream_eff", self.stream_eff),
        ];
        for (name, v) in effs {
            if !(v > 0.0 && v <= 1.0) {
                return Err(SpecError::BadEfficiency {
                    field: name,
                    value: v,
                });
            }
        }
        if !(self.peak_bw > 0.0 && self.peak_bw.is_finite()) {
            return Err(SpecError::BadBandwidth {
                value: self.peak_bw,
            });
        }
        Ok(())
    }
}

/// A host↔device interconnect with independent duplex channels.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LinkSpec {
    /// Per-direction peak bandwidth in bytes/second.
    pub peak_bw: f64,
    /// Achievable fraction of peak for large DMA transfers.
    pub efficiency: f64,
    /// Per-transfer setup latency in seconds.
    pub latency: f64,
}

impl LinkSpec {
    /// Effective per-direction bandwidth in bytes/second.
    pub fn effective_bw(&self) -> f64 {
        self.peak_bw * self.efficiency
    }
}

/// Compute throughput of a device (used for the MLP layers).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ComputeSpec {
    /// Peak FLOP/s (fp32).
    pub peak_flops: f64,
    /// Achieved fraction of peak for the GEMM shapes in DLRM training.
    pub gemm_eff: f64,
    /// Per-kernel launch overhead in seconds, charged once per logical layer
    /// invocation. Models framework/driver dispatch cost that dominates the
    /// paper's absolute stage times.
    pub kernel_overhead: f64,
}

impl ComputeSpec {
    /// Effective sustained FLOP/s.
    pub fn effective_flops(&self) -> f64 {
        self.peak_flops * self.gemm_eff
    }
}

/// Full system specification of one simulated training node.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SystemSpec {
    /// Host memory (capacity-optimized DDR4 behind a Xeon).
    pub cpu_mem: DeviceSpec,
    /// GPU local memory (bandwidth-optimized HBM2).
    pub gpu_mem: DeviceSpec,
    /// Host↔GPU interconnect (PCIe gen3 x16 in the paper).
    pub pcie: LinkSpec,
    /// GPU compute throughput.
    pub gpu_compute: ComputeSpec,
    /// CPU compute throughput (only exercised by CPU-side reduction/coalesce
    /// arithmetic, which is bandwidth-bound; kept for completeness).
    pub cpu_compute: ComputeSpec,
    /// Number of GPUs attached to the node (1 for the ScratchPipe node,
    /// 8 for the multi-GPU comparator).
    pub num_gpus: u32,
    /// Per-direction bandwidth of the inter-GPU fabric in bytes/second
    /// (NVLink on a p3.16xlarge). Unused when `num_gpus == 1`.
    pub nvlink_bw: f64,
}

const GB: f64 = 1e9;

impl SystemSpec {
    /// The single-GPU evaluation node of the ScratchPipe paper (§V):
    /// Xeon E5-2698v4 (76.8 GB/s DDR4), V100 (900 GB/s HBM2, 32 GB),
    /// PCIe gen3 x16 (16 GB/s per direction).
    ///
    /// Efficiency calibration (see `EXPERIMENTS.md` for the derivation):
    /// CPU random 512 B gathers sustain ≈10 % of peak, CPU streaming
    /// ≈45 %; GPU random gathers ≈55 % of peak, streaming ≈80 %; GEMMs
    /// reach 30 % of fp32 peak with a ≈200 µs per-operator dispatch
    /// overhead (the PyTorch-v1.8-era framework cost that dominates the
    /// paper's absolute GPU-stage times).
    pub fn isca_paper() -> Self {
        SystemSpec {
            cpu_mem: DeviceSpec {
                peak_bw: 76.8 * GB,
                random_read_eff: 0.100,
                random_write_eff: 0.085,
                stream_eff: 0.45,
                op_latency: 30e-6,
            },
            gpu_mem: DeviceSpec {
                peak_bw: 900.0 * GB,
                random_read_eff: 0.55,
                random_write_eff: 0.40,
                stream_eff: 0.80,
                op_latency: 25e-6,
            },
            pcie: LinkSpec {
                peak_bw: 16.0 * GB,
                efficiency: 0.80,
                latency: 20e-6,
            },
            gpu_compute: ComputeSpec {
                peak_flops: 14.0e12,
                gemm_eff: 0.30,
                kernel_overhead: 200e-6,
            },
            cpu_compute: ComputeSpec {
                peak_flops: 1.4e12,
                gemm_eff: 0.25,
                kernel_overhead: 10e-6,
            },
            num_gpus: 1,
            nvlink_bw: 0.0,
        }
    }

    /// An 8×V100 node (AWS p3.16xlarge) used for the paper's multi-GPU,
    /// "GPU-only" comparator in Table I. NVLink hybrid-mesh sustains
    /// ≈100 GB/s effective per GPU for the all-to-all patterns DLRM uses.
    pub fn p3_16xlarge() -> Self {
        SystemSpec {
            num_gpus: 8,
            nvlink_bw: 100.0 * GB,
            ..Self::isca_paper()
        }
    }

    /// Validates all device sub-specs.
    pub fn validate(&self) -> Result<(), SpecError> {
        self.cpu_mem.validate()?;
        self.gpu_mem.validate()?;
        if self.num_gpus == 0 {
            return Err(SpecError::NoGpus);
        }
        Ok(())
    }
}

impl Default for SystemSpec {
    fn default() -> Self {
        Self::isca_paper()
    }
}

/// Error produced by specification validation.
#[derive(Debug, Clone, PartialEq)]
pub enum SpecError {
    /// An efficiency factor was outside `(0, 1]`.
    BadEfficiency {
        /// Name of the offending field.
        field: &'static str,
        /// Offending value.
        value: f64,
    },
    /// A bandwidth was not positive.
    BadBandwidth {
        /// Offending value.
        value: f64,
    },
    /// The node was configured with zero GPUs.
    NoGpus,
}

impl std::fmt::Display for SpecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SpecError::BadEfficiency { field, value } => {
                write!(f, "efficiency `{field}` must be in (0, 1], got {value}")
            }
            SpecError::BadBandwidth { value } => {
                write!(f, "peak bandwidth must be positive, got {value}")
            }
            SpecError::NoGpus => write!(f, "system must have at least one GPU"),
        }
    }
}

impl std::error::Error for SpecError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_preset_matches_methodology_section() {
        let s = SystemSpec::isca_paper();
        assert_eq!(s.cpu_mem.peak_bw, 76.8e9);
        assert_eq!(s.gpu_mem.peak_bw, 900.0e9);
        assert_eq!(s.pcie.peak_bw, 16.0e9);
        assert_eq!(s.num_gpus, 1);
        s.validate().expect("paper preset must be valid");
    }

    #[test]
    fn multi_gpu_preset_has_eight_gpus_and_nvlink() {
        let s = SystemSpec::p3_16xlarge();
        assert_eq!(s.num_gpus, 8);
        assert!(s.nvlink_bw > 0.0);
        s.validate().expect("p3 preset must be valid");
    }

    #[test]
    fn effective_bandwidths_are_derated() {
        let s = SystemSpec::isca_paper();
        assert!(s.cpu_mem.random_read_bw() < s.cpu_mem.stream_bw());
        assert!(s.cpu_mem.stream_bw() < s.cpu_mem.peak_bw);
        // GPU handles random access far better than CPU, relatively.
        assert!(s.gpu_mem.random_read_eff > 5.0 * s.cpu_mem.random_read_eff);
    }

    #[test]
    fn gpu_random_access_is_orders_faster_than_cpu() {
        // The core premise of the paper: embedding ops at GPU memory speed.
        let s = SystemSpec::isca_paper();
        let ratio = s.gpu_mem.random_read_bw() / s.cpu_mem.random_read_bw();
        assert!(ratio > 50.0, "ratio was {ratio}");
    }

    #[test]
    fn validation_rejects_bad_efficiency() {
        let mut s = SystemSpec::isca_paper();
        s.cpu_mem.random_read_eff = 0.0;
        assert!(matches!(
            s.validate(),
            Err(SpecError::BadEfficiency {
                field: "random_read_eff",
                ..
            })
        ));
        s = SystemSpec::isca_paper();
        s.gpu_mem.stream_eff = 1.5;
        assert!(s.validate().is_err());
    }

    #[test]
    fn validation_rejects_zero_gpus() {
        let mut s = SystemSpec::isca_paper();
        s.num_gpus = 0;
        assert_eq!(s.validate(), Err(SpecError::NoGpus));
    }

    #[test]
    fn spec_error_displays() {
        let e = SpecError::BadEfficiency {
            field: "stream_eff",
            value: 2.0,
        };
        assert!(e.to_string().contains("stream_eff"));
        assert!(SpecError::NoGpus.to_string().contains("GPU"));
    }
}
