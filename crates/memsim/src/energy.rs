//! Energy model (paper Figure 14).
//!
//! The paper measures socket power with `pcm-power` and GPU power with
//! `nvidia-smi`, then multiplies average power by execution time. We model
//! each device with an idle floor plus an active increment, integrate over
//! the per-resource busy times of a [`Schedule`](crate::pipeline::Schedule)
//! (or over explicitly supplied busy times), and report Joules.

use serde::{Deserialize, Serialize};

use crate::pipeline::{Resource, Schedule};
use crate::time::SimTime;

/// Active/idle power draw of the platform's devices, in Watts.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PowerModel {
    /// CPU socket power when its memory system is saturated.
    pub cpu_active_w: f64,
    /// CPU socket idle power.
    pub cpu_idle_w: f64,
    /// Per-GPU power under load.
    pub gpu_active_w: f64,
    /// Per-GPU idle power.
    pub gpu_idle_w: f64,
    /// Number of GPUs in the node.
    pub num_gpus: u32,
}

impl PowerModel {
    /// Nominal constants for the paper's Xeon E5-2698v4 (135 W TDP) and
    /// V100 (300 W TDP) with ≈35 % idle floors.
    pub fn isca_paper() -> Self {
        PowerModel {
            cpu_active_w: 135.0,
            cpu_idle_w: 48.0,
            gpu_active_w: 300.0,
            gpu_idle_w: 55.0,
            num_gpus: 1,
        }
    }

    /// The same constants for an 8-GPU node.
    pub fn p3_16xlarge() -> Self {
        PowerModel {
            num_gpus: 8,
            ..Self::isca_paper()
        }
    }

    /// Energy for an execution of length `makespan` where the CPU memory
    /// system is busy for `cpu_busy` and the GPU(s) for `gpu_busy` each.
    pub fn energy(&self, makespan: SimTime, cpu_busy: SimTime, gpu_busy: SimTime) -> EnergyReport {
        let wall = makespan.as_secs();
        let cpu_b = cpu_busy.as_secs().min(wall);
        let gpu_b = gpu_busy.as_secs().min(wall);
        let cpu_j = self.cpu_idle_w * wall + (self.cpu_active_w - self.cpu_idle_w) * cpu_b;
        let gpu_j = self.num_gpus as f64
            * (self.gpu_idle_w * wall + (self.gpu_active_w - self.gpu_idle_w) * gpu_b);
        EnergyReport {
            cpu_joules: cpu_j,
            gpu_joules: gpu_j,
        }
    }

    /// Energy of a simulated [`Schedule`], attributing PCIe/host work to the
    /// CPU socket (DMA engines and loader threads draw socket power).
    pub fn energy_of_schedule(&self, sched: &Schedule) -> EnergyReport {
        let cpu_busy = sched.resource_busy[Resource::CpuMem.index()]
            + sched.resource_busy[Resource::Host.index()];
        let gpu_busy = sched.resource_busy[Resource::Gpu.index()];
        self.energy(sched.makespan, cpu_busy, gpu_busy)
    }
}

impl Default for PowerModel {
    fn default() -> Self {
        Self::isca_paper()
    }
}

/// Energy in Joules attributed to each device class.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct EnergyReport {
    /// CPU socket energy (Joules).
    pub cpu_joules: f64,
    /// Total GPU energy across all GPUs (Joules).
    pub gpu_joules: f64,
}

impl EnergyReport {
    /// Total node energy in Joules.
    pub fn total_joules(&self) -> f64 {
        self.cpu_joules + self.gpu_joules
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fully_idle_run_draws_idle_power() {
        let p = PowerModel::isca_paper();
        let e = p.energy(SimTime::from_secs(1.0), SimTime::ZERO, SimTime::ZERO);
        assert!((e.cpu_joules - 48.0).abs() < 1e-9);
        assert!((e.gpu_joules - 55.0).abs() < 1e-9);
    }

    #[test]
    fn fully_busy_run_draws_active_power() {
        let p = PowerModel::isca_paper();
        let s = SimTime::from_secs(2.0);
        let e = p.energy(s, s, s);
        assert!((e.cpu_joules - 270.0).abs() < 1e-9);
        assert!((e.gpu_joules - 600.0).abs() < 1e-9);
        assert!((e.total_joules() - 870.0).abs() < 1e-9);
    }

    #[test]
    fn busy_time_is_clamped_to_makespan() {
        let p = PowerModel::isca_paper();
        let e = p.energy(
            SimTime::from_secs(1.0),
            SimTime::from_secs(5.0),
            SimTime::ZERO,
        );
        assert!((e.cpu_joules - 135.0).abs() < 1e-9);
    }

    #[test]
    fn multi_gpu_scales_gpu_energy() {
        let p1 = PowerModel::isca_paper();
        let p8 = PowerModel::p3_16xlarge();
        let s = SimTime::from_secs(1.0);
        assert!((p8.energy(s, s, s).gpu_joules - 8.0 * p1.energy(s, s, s).gpu_joules).abs() < 1e-9);
    }

    #[test]
    fn shorter_runs_cost_less_energy() {
        // The paper's headline energy claim follows directly: ScratchPipe's
        // shorter iteration time cuts energy roughly proportionally.
        let p = PowerModel::isca_paper();
        let slow = p.energy(
            SimTime::from_millis(100.0),
            SimTime::from_millis(80.0),
            SimTime::from_millis(30.0),
        );
        let fast = p.energy(
            SimTime::from_millis(30.0),
            SimTime::from_millis(10.0),
            SimTime::from_millis(25.0),
        );
        assert!(fast.total_joules() < slow.total_joules() * 0.5);
    }

    #[test]
    fn energy_of_schedule_attributes_resources() {
        use crate::pipeline::{PipelineSim, StageDef, StageTimes};
        let sim = PipelineSim::new(vec![
            StageDef::new("c", Resource::CpuMem),
            StageDef::new("g", Resource::Gpu),
        ]);
        let sched = sim.schedule(&vec![
            StageTimes(vec![
                SimTime::from_millis(10.0),
                SimTime::from_millis(10.0)
            ]);
            5
        ]);
        let e = PowerModel::isca_paper().energy_of_schedule(&sched);
        assert!(e.cpu_joules > 0.0 && e.gpu_joules > 0.0);
    }
}
