//! `memsim` — analytical memory-system and pipeline timing substrate.
//!
//! The ScratchPipe paper ([ISCA 2022][paper]) evaluates on a real
//! Xeon + V100 node; every result it reports is ultimately a story about
//! *bytes moved per device at some effective bandwidth*. This crate is the
//! stand-in for that hardware: it models
//!
//! * **devices** (CPU DDR4, GPU HBM2) with distinct effective bandwidths for
//!   random-granule vs streaming access ([`DeviceSpec`]),
//! * **links** (PCIe gen3) with duplex channels ([`LinkSpec`]),
//! * **compute** (GEMM throughput with an efficiency factor and a per-stage
//!   framework/kernel-launch overhead) ([`ComputeSpec`]),
//! * a **cost model** mapping a [`Traffic`] vector (bytes per device and
//!   access class, FLOPs, link bytes) to wall-clock time ([`CostModel`]),
//! * a **pipeline schedule simulator** that turns per-stage latencies into
//!   end-to-end makespans under resource contention ([`pipeline`]),
//! * an **energy model** (active/idle power per device × residency)
//!   ([`energy`]) and an **AWS pricing model** ([`pricing`]) used to
//!   regenerate the paper's Figure 14 and Table I.
//!
//! The numbers produced are *nominal*: they are calibrated so that the
//! baseline hybrid CPU-GPU system lands in the paper's reported band
//! (≈100–190 ms/iteration for the default model), after which every other
//! result follows from traffic counts rather than tuning.
//!
//! # Example
//!
//! ```
//! use memsim::{CostModel, SystemSpec, Traffic};
//!
//! let spec = SystemSpec::isca_paper();
//! let model = CostModel::new(spec);
//! let mut t = Traffic::default();
//! // One mini-batch of embedding gathers: 327,680 rows of 512 B, random.
//! t.cpu_random_read_bytes = 327_680 * 512;
//! let time = model.traffic_time(&t);
//! assert!(time.as_millis() > 1.0);
//! ```
//!
//! [paper]: https://arxiv.org/abs/2205.04702

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod cost;
pub mod energy;
pub mod pipeline;
pub mod pricing;
pub mod spec;
pub mod time;
pub mod traffic;

pub use cost::CostModel;
pub use energy::{EnergyReport, PowerModel};
pub use pipeline::{PipelineSim, Resource, StageDef, StageTimes};
pub use pricing::{InstanceSpec, TrainingCost};
pub use spec::{ComputeSpec, DeviceSpec, LinkSpec, SystemSpec};
pub use time::SimTime;
pub use traffic::Traffic;
