//! Pipeline schedule simulation.
//!
//! ScratchPipe overlaps six stages (`Load → Plan → Collect → Exchange →
//! Insert → Train`) across consecutive mini-batches (paper Figure 10). Each
//! stage occupies one hardware *resource* (GPU, CPU memory system, a PCIe
//! direction, …); stages bound to the same resource serialize, stages on
//! different resources overlap. This module computes, for a sequence of
//! per-iteration stage latencies:
//!
//! * the exact **makespan** under FCFS resource arbitration
//!   ([`PipelineSim::schedule`]),
//! * the analytic **steady-state initiation interval** — the pipeline
//!   "cycle time" of Figure 7 — which is the per-resource sum of stage
//!   latencies, maximized over resources
//!   ([`PipelineSim::steady_state_interval`]).

use std::collections::BinaryHeap;
use std::fmt;

use serde::{Deserialize, Serialize};

use crate::time::SimTime;

/// A hardware resource that executes pipeline stages exclusively.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Resource {
    /// Host DRAM + CPU cores (embedding table reads/writes).
    CpuMem,
    /// The GPU: SMs plus its HBM memory system.
    Gpu,
    /// PCIe host→device channel.
    PcieH2D,
    /// PCIe device→host channel.
    PcieD2H,
    /// Inter-GPU fabric.
    NvLink,
    /// Host-side dataset loading (storage / preprocessing threads).
    Host,
}

impl Resource {
    /// All resources, in the canonical order used by reports.
    pub const ALL: [Resource; 6] = [
        Resource::CpuMem,
        Resource::Gpu,
        Resource::PcieH2D,
        Resource::PcieD2H,
        Resource::NvLink,
        Resource::Host,
    ];

    /// Stable index of this resource in [`Resource::ALL`].
    pub fn index(self) -> usize {
        match self {
            Resource::CpuMem => 0,
            Resource::Gpu => 1,
            Resource::PcieH2D => 2,
            Resource::PcieD2H => 3,
            Resource::NvLink => 4,
            Resource::Host => 5,
        }
    }
}

impl fmt::Display for Resource {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Resource::CpuMem => "cpu-mem",
            Resource::Gpu => "gpu",
            Resource::PcieH2D => "pcie-h2d",
            Resource::PcieD2H => "pcie-d2h",
            Resource::NvLink => "nvlink",
            Resource::Host => "host",
        };
        f.write_str(s)
    }
}

/// Static definition of one pipeline stage.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StageDef {
    /// Human-readable stage name (e.g. `"Plan"`).
    pub name: String,
    /// Resource the stage occupies while executing.
    pub resource: Resource,
}

impl StageDef {
    /// Creates a stage definition.
    pub fn new(name: impl Into<String>, resource: Resource) -> Self {
        StageDef {
            name: name.into(),
            resource,
        }
    }
}

/// Latencies of every stage for one iteration (indexed like the stage list).
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct StageTimes(pub Vec<SimTime>);

impl StageTimes {
    /// Sum of all stage latencies (the un-pipelined iteration time).
    pub fn total(&self) -> SimTime {
        self.0.iter().copied().sum()
    }
}

/// One scheduled execution interval of a stage instance, for Gantt output.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ScheduledSlot {
    /// Iteration (mini-batch) index.
    pub iteration: usize,
    /// Stage index into the pipeline's stage list.
    pub stage: usize,
    /// Start time of the execution.
    pub start: SimTime,
    /// Finish time of the execution.
    pub finish: SimTime,
}

/// The result of simulating a pipelined execution.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Schedule {
    /// Total wall-clock time from first start to last finish.
    pub makespan: SimTime,
    /// Completion time of each iteration (finish of its last stage).
    pub iteration_finish: Vec<SimTime>,
    /// Busy time accumulated per resource (indexed by [`Resource::index`]).
    pub resource_busy: [SimTime; 6],
    /// Every scheduled slot, ordered by start time (for visualization).
    pub slots: Vec<ScheduledSlot>,
}

impl Schedule {
    /// Average time between consecutive iteration completions at steady
    /// state, measured over the middle half of the run so that neither the
    /// pipeline-fill prefix nor the drain tail (where departing batches no
    /// longer contend for resources) skews the estimate.
    ///
    /// Returns the per-iteration average of the makespan if there are too
    /// few iterations to measure.
    pub fn steady_state_iteration_time(&self) -> SimTime {
        let n = self.iteration_finish.len();
        if n < 8 {
            return self.makespan / n.max(1) as f64;
        }
        let lo = n / 4;
        let hi = (3 * n) / 4;
        let span = self.iteration_finish[hi] - self.iteration_finish[lo];
        span / (hi - lo) as f64
    }

    /// Utilization of `r` over the makespan, in `[0, 1]`.
    pub fn utilization(&self, r: Resource) -> f64 {
        if self.makespan.is_zero() {
            return 0.0;
        }
        self.resource_busy[r.index()] / self.makespan
    }
}

/// Simulates pipelined execution of stages over shared resources.
///
/// # Example
///
/// ```
/// use memsim::{PipelineSim, Resource, StageDef, StageTimes, SimTime};
///
/// // Two stages on different resources fully overlap across iterations.
/// let sim = PipelineSim::new(vec![
///     StageDef::new("a", Resource::CpuMem),
///     StageDef::new("b", Resource::Gpu),
/// ]);
/// let per_iter = StageTimes(vec![SimTime::from_millis(10.0); 2]);
/// let sched = sim.schedule(&vec![per_iter; 100]);
/// // Steady state: one iteration completes every 10 ms, not every 20 ms.
/// let ms = sched.steady_state_iteration_time().as_millis();
/// assert!((ms - 10.0).abs() < 0.5, "{ms}");
/// ```
#[derive(Debug, Clone)]
pub struct PipelineSim {
    stages: Vec<StageDef>,
}

#[derive(PartialEq)]
struct Ready {
    time: SimTime,
    iter: usize,
    stage: usize,
}

impl Eq for Ready {}

impl Ord for Ready {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // BinaryHeap is a max-heap; invert so earliest-ready pops first.
        other
            .time
            .partial_cmp(&self.time)
            .unwrap_or(std::cmp::Ordering::Equal)
            .then_with(|| other.iter.cmp(&self.iter))
            .then_with(|| other.stage.cmp(&self.stage))
    }
}

impl PartialOrd for Ready {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl PipelineSim {
    /// Creates a simulator for the given ordered stage list.
    ///
    /// # Panics
    ///
    /// Panics if `stages` is empty.
    pub fn new(stages: Vec<StageDef>) -> Self {
        assert!(!stages.is_empty(), "pipeline needs at least one stage");
        PipelineSim { stages }
    }

    /// The stage definitions.
    pub fn stages(&self) -> &[StageDef] {
        &self.stages
    }

    /// Analytic steady-state initiation interval for constant per-iteration
    /// stage times: per resource, stages serialize, so the interval is the
    /// largest per-resource sum of stage latencies.
    pub fn steady_state_interval(&self, times: &StageTimes) -> SimTime {
        assert_eq!(times.0.len(), self.stages.len(), "stage-count mismatch");
        let mut per_resource = [SimTime::ZERO; 6];
        for (def, t) in self.stages.iter().zip(&times.0) {
            per_resource[def.resource.index()] += *t;
        }
        per_resource
            .iter()
            .fold(SimTime::ZERO, |acc, t| acc.max(*t))
    }

    /// Simulates the full pipelined execution of `iterations` (one
    /// [`StageTimes`] per mini-batch) under FCFS resource arbitration, with
    /// the structural dependencies `stage s of batch i` after both
    /// `stage s-1 of batch i` and `stage s of batch i-1`.
    ///
    /// # Panics
    ///
    /// Panics if any iteration's stage count differs from the pipeline's.
    pub fn schedule(&self, iterations: &[StageTimes]) -> Schedule {
        let s_count = self.stages.len();
        let n = iterations.len();
        for it in iterations {
            assert_eq!(it.0.len(), s_count, "stage-count mismatch");
        }
        let mut finish = vec![vec![SimTime::ZERO; s_count]; n];
        let mut executed = vec![vec![false; s_count]; n];
        let mut pushed = vec![vec![false; s_count]; n];
        let mut resource_free = [SimTime::ZERO; 6];
        let mut resource_busy = [SimTime::ZERO; 6];
        let mut slots = Vec::with_capacity(n * s_count);
        let mut heap = BinaryHeap::new();
        if n > 0 {
            heap.push(Ready {
                time: SimTime::ZERO,
                iter: 0,
                stage: 0,
            });
            pushed[0][0] = true;
        }
        let mut makespan = SimTime::ZERO;
        while let Some(Ready { time, iter, stage }) = heap.pop() {
            let r = self.stages[stage].resource.index();
            let start = time.max(resource_free[r]);
            let dur = iterations[iter].0[stage];
            let end = start + dur;
            resource_free[r] = end;
            resource_busy[r] += dur;
            finish[iter][stage] = end;
            executed[iter][stage] = true;
            makespan = makespan.max(end);
            slots.push(ScheduledSlot {
                iteration: iter,
                stage,
                start,
                finish: end,
            });
            // A node enters the heap only when *all* of its predecessors have
            // executed, so the ready time computed from their finish times is
            // final. Each executed node re-checks both of its successors.
            let mut try_push = |i: usize, s: usize| {
                if pushed[i][s] {
                    return;
                }
                let prev_stage_done = s == 0 || executed[i][s - 1];
                let prev_iter_done = i == 0 || executed[i - 1][s];
                if !(prev_stage_done && prev_iter_done) {
                    return;
                }
                let mut ready = SimTime::ZERO;
                if s > 0 {
                    ready = ready.max(finish[i][s - 1]);
                }
                if i > 0 {
                    // FIFO within a stage: batch i waits for batch i-1.
                    ready = ready.max(finish[i - 1][s]);
                }
                pushed[i][s] = true;
                heap.push(Ready {
                    time: ready,
                    iter: i,
                    stage: s,
                });
            };
            if stage + 1 < s_count {
                try_push(iter, stage + 1);
            }
            if iter + 1 < n {
                try_push(iter + 1, stage);
            }
        }
        slots.sort_by(|a, b| {
            a.start
                .partial_cmp(&b.start)
                .unwrap_or(std::cmp::Ordering::Equal)
                .then(a.iteration.cmp(&b.iteration))
        });
        let iteration_finish = finish
            .iter()
            .map(|f| *f.last().expect("stage count > 0"))
            .collect();
        Schedule {
            makespan,
            iteration_finish,
            resource_busy,
            slots,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ms(v: f64) -> SimTime {
        SimTime::from_millis(v)
    }

    fn six_stage() -> PipelineSim {
        PipelineSim::new(vec![
            StageDef::new("Load", Resource::Host),
            StageDef::new("Plan", Resource::Gpu),
            StageDef::new("Collect", Resource::CpuMem),
            StageDef::new("Exchange", Resource::PcieH2D),
            StageDef::new("Insert", Resource::CpuMem),
            StageDef::new("Train", Resource::Gpu),
        ])
    }

    #[test]
    fn single_iteration_is_sum_of_stages() {
        let sim = six_stage();
        let t = StageTimes(vec![ms(1.0); 6]);
        let sched = sim.schedule(std::slice::from_ref(&t));
        assert!((sched.makespan.as_millis() - 6.0).abs() < 1e-9);
        assert_eq!(sched.iteration_finish.len(), 1);
    }

    #[test]
    fn disjoint_resources_fully_overlap() {
        let sim = PipelineSim::new(vec![
            StageDef::new("a", Resource::CpuMem),
            StageDef::new("b", Resource::Gpu),
            StageDef::new("c", Resource::PcieH2D),
        ]);
        let per = StageTimes(vec![ms(10.0); 3]);
        let sched = sim.schedule(&vec![per; 50]);
        // Fill (2 stages) + 50 initiations of 10ms: makespan ≈ 520 ms.
        let got = sched.makespan.as_millis();
        assert!((got - 520.0).abs() < 1.0, "{got}");
    }

    #[test]
    fn shared_resource_serializes() {
        // Collect and Insert share CpuMem: interval is their sum.
        let sim = six_stage();
        let times = StageTimes(vec![
            ms(0.1), // Load
            ms(1.0), // Plan (gpu)
            ms(8.0), // Collect (cpu)
            ms(2.0), // Exchange
            ms(7.0), // Insert (cpu)
            ms(5.0), // Train (gpu)
        ]);
        let ii = sim.steady_state_interval(&times);
        assert!((ii.as_millis() - 15.0).abs() < 1e-9); // 8 + 7 on CpuMem
        let sched = sim.schedule(&vec![times; 60]);
        let measured = sched.steady_state_iteration_time().as_millis();
        assert!((measured - 15.0).abs() < 0.2, "{measured}");
    }

    #[test]
    fn gpu_bound_pipeline_cycles_at_gpu_time() {
        let sim = six_stage();
        let times = StageTimes(vec![
            ms(0.1),
            ms(2.0),  // Plan (gpu)
            ms(3.0),  // Collect
            ms(2.0),  // Exchange
            ms(3.0),  // Insert
            ms(20.0), // Train (gpu)
        ]);
        let ii = sim.steady_state_interval(&times);
        assert!((ii.as_millis() - 22.0).abs() < 1e-9); // Plan + Train
        let sched = sim.schedule(&vec![times; 40]);
        let measured = sched.steady_state_iteration_time().as_millis();
        assert!((measured - 22.0).abs() < 0.3, "{measured}");
    }

    #[test]
    fn pipelining_beats_sequential_execution() {
        let sim = six_stage();
        let times = StageTimes(vec![ms(1.0), ms(4.0), ms(6.0), ms(3.0), ms(5.0), ms(8.0)]);
        let n = 100;
        let sched = sim.schedule(&vec![times.clone(); n]);
        let sequential = times.total() * n as f64;
        assert!(
            sched.makespan < sequential * 0.6,
            "pipelined {} vs sequential {}",
            sched.makespan,
            sequential
        );
    }

    #[test]
    fn variable_iteration_times_are_handled() {
        let sim = PipelineSim::new(vec![
            StageDef::new("a", Resource::CpuMem),
            StageDef::new("b", Resource::Gpu),
        ]);
        let iters: Vec<StageTimes> = (0..20)
            .map(|i| StageTimes(vec![ms(1.0 + (i % 3) as f64), ms(2.0)]))
            .collect();
        let sched = sim.schedule(&iters);
        assert_eq!(sched.iteration_finish.len(), 20);
        // Completions must be monotonically non-decreasing (FIFO stages).
        for w in sched.iteration_finish.windows(2) {
            assert!(w[0] <= w[1]);
        }
    }

    #[test]
    fn busy_times_and_utilization() {
        let sim = six_stage();
        let times = StageTimes(vec![ms(0.5), ms(1.0), ms(2.0), ms(1.0), ms(2.0), ms(4.0)]);
        let n = 30;
        let sched = sim.schedule(&vec![times; n]);
        let gpu_busy = sched.resource_busy[Resource::Gpu.index()];
        assert!((gpu_busy.as_millis() - (5.0 * n as f64)).abs() < 1e-6);
        let u = sched.utilization(Resource::Gpu);
        assert!(u > 0.5 && u <= 1.0, "{u}");
    }

    #[test]
    fn empty_input_gives_empty_schedule() {
        let sim = six_stage();
        let sched = sim.schedule(&[]);
        assert_eq!(sched.makespan, SimTime::ZERO);
        assert!(sched.slots.is_empty());
    }

    #[test]
    fn slots_cover_all_stage_instances() {
        let sim = six_stage();
        let times = StageTimes(vec![ms(1.0); 6]);
        let sched = sim.schedule(&vec![times; 7]);
        assert_eq!(sched.slots.len(), 7 * 6);
        // Starts are sorted.
        for w in sched.slots.windows(2) {
            assert!(w[0].start <= w[1].start);
        }
    }

    #[test]
    #[should_panic(expected = "stage-count mismatch")]
    fn mismatched_stage_count_panics() {
        let sim = six_stage();
        let _ = sim.schedule(&[StageTimes(vec![ms(1.0); 3])]);
    }

    #[test]
    fn steady_state_measurement_matches_analytic_on_random_times() {
        let sim = six_stage();
        let times = StageTimes(vec![ms(0.3), ms(2.1), ms(6.7), ms(4.4), ms(5.9), ms(9.2)]);
        let analytic = sim.steady_state_interval(&times);
        let sched = sim.schedule(&vec![times; 80]);
        let measured = sched.steady_state_iteration_time();
        let rel = (measured.as_secs() - analytic.as_secs()).abs() / analytic.as_secs();
        assert!(rel < 0.05, "analytic {analytic} vs measured {measured}");
    }
}
