//! Simulated wall-clock time.
//!
//! [`SimTime`] is a thin newtype over `f64` seconds. It exists so that the
//! rest of the workspace cannot accidentally mix seconds with milliseconds or
//! with raw byte counts; see C-NEWTYPE in the Rust API guidelines.

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Sub};

use serde::{Deserialize, Serialize};

/// A span of simulated time, stored in seconds.
///
/// `SimTime` is ordered, additive and scalable; division of two spans yields
/// a dimensionless ratio (used for speedup computations).
///
/// # Example
///
/// ```
/// use memsim::SimTime;
///
/// let a = SimTime::from_millis(30.0);
/// let b = SimTime::from_millis(10.0);
/// assert_eq!((a + b).as_millis(), 40.0);
/// assert!((a / b - 3.0).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default, Serialize, Deserialize)]
pub struct SimTime(f64);

impl SimTime {
    /// The zero time span.
    pub const ZERO: SimTime = SimTime(0.0);

    /// Creates a time span from seconds.
    ///
    /// # Panics
    ///
    /// Panics if `secs` is negative or NaN — simulated durations are always
    /// non-negative.
    pub fn from_secs(secs: f64) -> Self {
        assert!(secs >= 0.0 && secs.is_finite(), "invalid duration: {secs}");
        SimTime(secs)
    }

    /// Creates a time span from milliseconds.
    pub fn from_millis(ms: f64) -> Self {
        Self::from_secs(ms * 1e-3)
    }

    /// Creates a time span from microseconds.
    pub fn from_micros(us: f64) -> Self {
        Self::from_secs(us * 1e-6)
    }

    /// Returns the span in seconds.
    pub fn as_secs(self) -> f64 {
        self.0
    }

    /// Returns the span in milliseconds.
    pub fn as_millis(self) -> f64 {
        self.0 * 1e3
    }

    /// Returns the span in microseconds.
    pub fn as_micros(self) -> f64 {
        self.0 * 1e6
    }

    /// Returns the larger of two spans.
    pub fn max(self, other: SimTime) -> SimTime {
        if self.0 >= other.0 {
            self
        } else {
            other
        }
    }

    /// Returns the smaller of two spans.
    pub fn min(self, other: SimTime) -> SimTime {
        if self.0 <= other.0 {
            self
        } else {
            other
        }
    }

    /// True if this span is exactly zero.
    pub fn is_zero(self) -> bool {
        self.0 == 0.0
    }

    /// Saturating subtraction: returns zero instead of a negative span.
    pub fn saturating_sub(self, other: SimTime) -> SimTime {
        SimTime((self.0 - other.0).max(0.0))
    }
}

impl Add for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimTime) -> SimTime {
        SimTime(self.0 + rhs.0)
    }
}

impl AddAssign for SimTime {
    fn add_assign(&mut self, rhs: SimTime) {
        self.0 += rhs.0;
    }
}

impl Sub for SimTime {
    type Output = SimTime;
    /// # Panics
    ///
    /// Panics in debug builds if the result would be negative.
    fn sub(self, rhs: SimTime) -> SimTime {
        debug_assert!(self.0 >= rhs.0, "negative duration: {} - {}", self.0, rhs.0);
        SimTime((self.0 - rhs.0).max(0.0))
    }
}

impl Mul<f64> for SimTime {
    type Output = SimTime;
    fn mul(self, rhs: f64) -> SimTime {
        SimTime::from_secs(self.0 * rhs)
    }
}

impl Div<f64> for SimTime {
    type Output = SimTime;
    fn div(self, rhs: f64) -> SimTime {
        SimTime::from_secs(self.0 / rhs)
    }
}

impl Div for SimTime {
    type Output = f64;
    /// Ratio of two spans (e.g. a speedup).
    fn div(self, rhs: SimTime) -> f64 {
        self.0 / rhs.0
    }
}

impl Sum for SimTime {
    fn sum<I: Iterator<Item = SimTime>>(iter: I) -> SimTime {
        iter.fold(SimTime::ZERO, |a, b| a + b)
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let ms = self.as_millis();
        if ms >= 1000.0 {
            write!(f, "{:.3} s", self.as_secs())
        } else if ms >= 1.0 {
            write!(f, "{ms:.2} ms")
        } else {
            write!(f, "{:.2} µs", self.as_micros())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_round_trips() {
        assert_eq!(SimTime::from_secs(1.5).as_millis(), 1500.0);
        assert_eq!(SimTime::from_millis(2.0).as_secs(), 0.002);
        assert_eq!(SimTime::from_micros(1000.0).as_millis(), 1.0);
    }

    #[test]
    fn arithmetic() {
        let a = SimTime::from_millis(10.0);
        let b = SimTime::from_millis(4.0);
        assert_eq!((a + b).as_millis(), 14.0);
        assert_eq!((a - b).as_millis(), 6.0);
        assert_eq!((a * 2.0).as_millis(), 20.0);
        assert_eq!((a / 2.0).as_millis(), 5.0);
        assert!((a / b - 2.5).abs() < 1e-12);
    }

    #[test]
    fn ordering_and_extrema() {
        let a = SimTime::from_millis(1.0);
        let b = SimTime::from_millis(2.0);
        assert!(a < b);
        assert_eq!(a.max(b), b);
        assert_eq!(a.min(b), a);
    }

    #[test]
    fn saturating_sub_clamps_to_zero() {
        let a = SimTime::from_millis(1.0);
        let b = SimTime::from_millis(2.0);
        assert_eq!(a.saturating_sub(b), SimTime::ZERO);
        assert_eq!(b.saturating_sub(a).as_millis(), 1.0);
    }

    #[test]
    fn sum_over_iterator() {
        let total: SimTime = (1..=4).map(|i| SimTime::from_millis(i as f64)).sum();
        assert_eq!(total.as_millis(), 10.0);
    }

    #[test]
    fn display_picks_sensible_units() {
        assert_eq!(format!("{}", SimTime::from_secs(1.5)), "1.500 s");
        assert_eq!(format!("{}", SimTime::from_millis(12.34)), "12.34 ms");
        assert_eq!(format!("{}", SimTime::from_micros(5.0)), "5.00 µs");
    }

    #[test]
    #[should_panic(expected = "invalid duration")]
    fn negative_duration_panics() {
        let _ = SimTime::from_secs(-1.0);
    }

    #[test]
    fn zero_checks() {
        assert!(SimTime::ZERO.is_zero());
        assert!(!SimTime::from_millis(0.1).is_zero());
    }
}
