//! Traffic vectors: the interface between functional simulation and timing.
//!
//! Every training-system stage in the `systems` crate *counts* what it does —
//! bytes gathered from CPU DRAM, bytes scattered into GPU HBM, bytes DMA'd
//! over PCIe, FLOPs of GEMM — into a [`Traffic`] value. The
//! [`CostModel`](crate::CostModel) then converts the vector into time. This
//! split keeps the functional code free of timing assumptions and lets a
//! single run be re-priced under a different [`SystemSpec`](crate::SystemSpec).

use std::ops::{Add, AddAssign};

use serde::{Deserialize, Serialize};

/// Byte/FLOP counts for one logical stage of work.
///
/// All fields are plain totals; `Traffic` values form a commutative monoid
/// under `+` so per-table or per-iteration counts can be accumulated freely.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct Traffic {
    /// Bytes read from CPU DRAM at random row granularity (embedding gather).
    pub cpu_random_read_bytes: u64,
    /// Bytes written to CPU DRAM at random row granularity
    /// (gradient scatter / write-back; counted as read-modify-write).
    pub cpu_random_write_bytes: u64,
    /// Bytes read from CPU DRAM by streaming access (sort/coalesce passes).
    pub cpu_stream_read_bytes: u64,
    /// Bytes written to CPU DRAM by streaming access.
    pub cpu_stream_write_bytes: u64,
    /// Bytes read from GPU HBM at random row granularity.
    pub gpu_random_read_bytes: u64,
    /// Bytes written to GPU HBM at random row granularity.
    pub gpu_random_write_bytes: u64,
    /// Bytes read from GPU HBM by streaming access.
    pub gpu_stream_read_bytes: u64,
    /// Bytes written to GPU HBM by streaming access.
    pub gpu_stream_write_bytes: u64,
    /// Bytes transferred host→device over PCIe.
    pub pcie_h2d_bytes: u64,
    /// Bytes transferred device→host over PCIe.
    pub pcie_d2h_bytes: u64,
    /// Bytes exchanged over the inter-GPU fabric (all-to-all, all-reduce).
    pub nvlink_bytes: u64,
    /// GEMM floating-point operations executed on the GPU.
    pub gpu_flops: u64,
    /// GEMM floating-point operations executed on the CPU.
    pub cpu_flops: u64,
    /// Number of distinct GPU kernel/framework dispatches in this stage.
    pub gpu_ops: u32,
    /// Number of distinct CPU operator dispatches in this stage.
    pub cpu_ops: u32,
    /// Number of distinct PCIe DMA transfers in this stage.
    pub pcie_ops: u32,
}

impl Traffic {
    /// A traffic vector with every counter zero.
    pub const ZERO: Traffic = Traffic {
        cpu_random_read_bytes: 0,
        cpu_random_write_bytes: 0,
        cpu_stream_read_bytes: 0,
        cpu_stream_write_bytes: 0,
        gpu_random_read_bytes: 0,
        gpu_random_write_bytes: 0,
        gpu_stream_read_bytes: 0,
        gpu_stream_write_bytes: 0,
        pcie_h2d_bytes: 0,
        pcie_d2h_bytes: 0,
        nvlink_bytes: 0,
        gpu_flops: 0,
        cpu_flops: 0,
        gpu_ops: 0,
        cpu_ops: 0,
        pcie_ops: 0,
    };

    /// Total bytes touched in CPU DRAM, across access classes.
    pub fn cpu_bytes(&self) -> u64 {
        self.cpu_random_read_bytes
            + self.cpu_random_write_bytes
            + self.cpu_stream_read_bytes
            + self.cpu_stream_write_bytes
    }

    /// Total bytes touched in GPU HBM, across access classes.
    pub fn gpu_bytes(&self) -> u64 {
        self.gpu_random_read_bytes
            + self.gpu_random_write_bytes
            + self.gpu_stream_read_bytes
            + self.gpu_stream_write_bytes
    }

    /// Total bytes crossing PCIe in either direction.
    pub fn pcie_bytes(&self) -> u64 {
        self.pcie_h2d_bytes + self.pcie_d2h_bytes
    }

    /// True if every counter is zero.
    pub fn is_zero(&self) -> bool {
        *self == Traffic::ZERO
    }

    /// Scales all byte/FLOP counters by an integer factor (e.g. replicating
    /// one modeled iteration across an epoch).
    pub fn scaled(&self, factor: u64) -> Traffic {
        Traffic {
            cpu_random_read_bytes: self.cpu_random_read_bytes * factor,
            cpu_random_write_bytes: self.cpu_random_write_bytes * factor,
            cpu_stream_read_bytes: self.cpu_stream_read_bytes * factor,
            cpu_stream_write_bytes: self.cpu_stream_write_bytes * factor,
            gpu_random_read_bytes: self.gpu_random_read_bytes * factor,
            gpu_random_write_bytes: self.gpu_random_write_bytes * factor,
            gpu_stream_read_bytes: self.gpu_stream_read_bytes * factor,
            gpu_stream_write_bytes: self.gpu_stream_write_bytes * factor,
            pcie_h2d_bytes: self.pcie_h2d_bytes * factor,
            pcie_d2h_bytes: self.pcie_d2h_bytes * factor,
            nvlink_bytes: self.nvlink_bytes * factor,
            gpu_flops: self.gpu_flops * factor,
            cpu_flops: self.cpu_flops * factor,
            gpu_ops: (self.gpu_ops as u64 * factor).min(u32::MAX as u64) as u32,
            cpu_ops: (self.cpu_ops as u64 * factor).min(u32::MAX as u64) as u32,
            pcie_ops: (self.pcie_ops as u64 * factor).min(u32::MAX as u64) as u32,
        }
    }
}

impl Add for Traffic {
    type Output = Traffic;
    fn add(self, rhs: Traffic) -> Traffic {
        Traffic {
            cpu_random_read_bytes: self.cpu_random_read_bytes + rhs.cpu_random_read_bytes,
            cpu_random_write_bytes: self.cpu_random_write_bytes + rhs.cpu_random_write_bytes,
            cpu_stream_read_bytes: self.cpu_stream_read_bytes + rhs.cpu_stream_read_bytes,
            cpu_stream_write_bytes: self.cpu_stream_write_bytes + rhs.cpu_stream_write_bytes,
            gpu_random_read_bytes: self.gpu_random_read_bytes + rhs.gpu_random_read_bytes,
            gpu_random_write_bytes: self.gpu_random_write_bytes + rhs.gpu_random_write_bytes,
            gpu_stream_read_bytes: self.gpu_stream_read_bytes + rhs.gpu_stream_read_bytes,
            gpu_stream_write_bytes: self.gpu_stream_write_bytes + rhs.gpu_stream_write_bytes,
            pcie_h2d_bytes: self.pcie_h2d_bytes + rhs.pcie_h2d_bytes,
            pcie_d2h_bytes: self.pcie_d2h_bytes + rhs.pcie_d2h_bytes,
            nvlink_bytes: self.nvlink_bytes + rhs.nvlink_bytes,
            gpu_flops: self.gpu_flops + rhs.gpu_flops,
            cpu_flops: self.cpu_flops + rhs.cpu_flops,
            gpu_ops: self.gpu_ops + rhs.gpu_ops,
            cpu_ops: self.cpu_ops + rhs.cpu_ops,
            pcie_ops: self.pcie_ops + rhs.pcie_ops,
        }
    }
}

impl AddAssign for Traffic {
    fn add_assign(&mut self, rhs: Traffic) {
        *self = *self + rhs;
    }
}

impl std::iter::Sum for Traffic {
    fn sum<I: Iterator<Item = Traffic>>(iter: I) -> Traffic {
        iter.fold(Traffic::ZERO, |a, b| a + b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Traffic {
        Traffic {
            cpu_random_read_bytes: 100,
            cpu_random_write_bytes: 50,
            cpu_stream_read_bytes: 10,
            cpu_stream_write_bytes: 5,
            gpu_random_read_bytes: 200,
            gpu_random_write_bytes: 100,
            gpu_stream_read_bytes: 20,
            gpu_stream_write_bytes: 10,
            pcie_h2d_bytes: 30,
            pcie_d2h_bytes: 40,
            nvlink_bytes: 7,
            gpu_flops: 1000,
            cpu_flops: 500,
            gpu_ops: 2,
            cpu_ops: 3,
            pcie_ops: 1,
        }
    }

    #[test]
    fn totals() {
        let t = sample();
        assert_eq!(t.cpu_bytes(), 165);
        assert_eq!(t.gpu_bytes(), 330);
        assert_eq!(t.pcie_bytes(), 70);
    }

    #[test]
    fn addition_is_fieldwise() {
        let t = sample() + sample();
        assert_eq!(t.cpu_random_read_bytes, 200);
        assert_eq!(t.gpu_ops, 4);
        assert_eq!(t.pcie_d2h_bytes, 80);
    }

    #[test]
    fn add_assign_matches_add() {
        let mut t = sample();
        t += sample();
        assert_eq!(t, sample() + sample());
    }

    #[test]
    fn zero_is_identity() {
        assert_eq!(sample() + Traffic::ZERO, sample());
        assert!(Traffic::ZERO.is_zero());
        assert!(!sample().is_zero());
        assert!(Traffic::default().is_zero());
    }

    #[test]
    fn sum_over_iterator() {
        let s: Traffic = std::iter::repeat(sample()).take(3).sum();
        assert_eq!(s.cpu_random_read_bytes, 300);
        assert_eq!(s.nvlink_bytes, 21);
    }

    #[test]
    fn scaling() {
        let s = sample().scaled(4);
        assert_eq!(s.gpu_flops, 4000);
        assert_eq!(s.cpu_ops, 12);
        assert_eq!(sample().scaled(1), sample());
        assert!(sample().scaled(0).is_zero());
    }
}
