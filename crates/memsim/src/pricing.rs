//! Cloud training-cost model (paper Table I).
//!
//! The paper prices RecSys training on AWS EC2 P3 instances: ScratchPipe
//! runs on a single-GPU `p3.2xlarge` ($3.06/hr) while the GPU-only
//! comparator needs a `p3.16xlarge` ($24.48/hr). Cost per N iterations is
//! simply `price/hour × iteration_time × N`.

use serde::{Deserialize, Serialize};

use crate::time::SimTime;

/// A cloud instance type with an hourly price.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct InstanceSpec {
    /// Instance name, e.g. `"p3.2xlarge"`.
    pub name: String,
    /// On-demand price in USD per hour.
    pub price_per_hour: f64,
    /// Number of GPUs on the instance.
    pub gpus: u32,
}

impl InstanceSpec {
    /// AWS `p3.2xlarge`: 1×V100, $3.06/hr (paper Table I).
    pub fn p3_2xlarge() -> Self {
        InstanceSpec {
            name: "p3.2xlarge".to_owned(),
            price_per_hour: 3.06,
            gpus: 1,
        }
    }

    /// AWS `p3.16xlarge`: 8×V100, $24.48/hr (paper Table I).
    pub fn p3_16xlarge() -> Self {
        InstanceSpec {
            name: "p3.16xlarge".to_owned(),
            price_per_hour: 24.48,
            gpus: 8,
        }
    }

    /// Cost of running this instance for `time`.
    pub fn cost_for(&self, time: SimTime) -> f64 {
        self.price_per_hour * time.as_secs() / 3600.0
    }
}

/// Cost summary for a fixed number of training iterations (Table I row).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TrainingCost {
    /// Instance the training runs on.
    pub instance: InstanceSpec,
    /// Steady-state time per training iteration.
    pub iteration_time: SimTime,
    /// Number of iterations priced.
    pub iterations: u64,
    /// Total cost in USD.
    pub total_usd: f64,
}

impl TrainingCost {
    /// Prices `iterations` iterations of `iteration_time` each on `instance`.
    pub fn new(instance: InstanceSpec, iteration_time: SimTime, iterations: u64) -> Self {
        let total = instance.cost_for(iteration_time * iterations as f64);
        TrainingCost {
            instance,
            iteration_time,
            iterations,
            total_usd: total,
        }
    }

    /// The paper's reference point: one million iterations.
    pub fn per_million_iterations(instance: InstanceSpec, iteration_time: SimTime) -> Self {
        Self::new(instance, iteration_time, 1_000_000)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_table1_scratchpipe_random_row_reproduces() {
        // Table I: Random / ScratchPipe / p3.2xlarge / 47.82 ms → $40.64.
        let c = TrainingCost::per_million_iterations(
            InstanceSpec::p3_2xlarge(),
            SimTime::from_millis(47.82),
        );
        assert!((c.total_usd - 40.64).abs() < 0.05, "{}", c.total_usd);
    }

    #[test]
    fn paper_table1_8gpu_random_row_reproduces() {
        // Table I: Random / 8 GPU / p3.16xlarge / 16.22 ms → $110.3.
        let c = TrainingCost::per_million_iterations(
            InstanceSpec::p3_16xlarge(),
            SimTime::from_millis(16.22),
        );
        assert!((c.total_usd - 110.3).abs() < 0.1, "{}", c.total_usd);
    }

    #[test]
    fn cost_scales_linearly_with_iterations() {
        let i = InstanceSpec::p3_2xlarge();
        let t = SimTime::from_millis(30.0);
        let one = TrainingCost::new(i.clone(), t, 1_000);
        let ten = TrainingCost::new(i, t, 10_000);
        assert!((ten.total_usd - 10.0 * one.total_usd).abs() < 1e-9);
    }

    #[test]
    fn instance_presets() {
        assert_eq!(InstanceSpec::p3_2xlarge().gpus, 1);
        assert_eq!(InstanceSpec::p3_16xlarge().gpus, 8);
        assert!(
            InstanceSpec::p3_16xlarge().price_per_hour > InstanceSpec::p3_2xlarge().price_per_hour
        );
    }

    #[test]
    fn hour_of_p3_2xlarge_costs_list_price() {
        let i = InstanceSpec::p3_2xlarge();
        assert!((i.cost_for(SimTime::from_secs(3600.0)) - 3.06).abs() < 1e-9);
    }
}
