//! `sp-bench` — the benchmark harness regenerating every table and figure
//! of the ScratchPipe paper.
//!
//! One binary per experiment (run with `cargo run -p sp-bench --release
//! --bin <name>`):
//!
//! | binary | paper artifact |
//! |--------|----------------|
//! | `fig03_access_counts` | Figure 3 — sorted access counts per dataset |
//! | `fig05_breakdown` | Figure 5 — training-time breakdown, hybrid vs static |
//! | `fig06_hit_rate` | Figure 6 — static-cache hit rate vs cache size |
//! | `fig12a_latency_static` | Figure 12(a) — latency breakdown, baselines |
//! | `fig12b_latency_scratchpipe` | Figure 12(b) — per-stage pipeline latency |
//! | `fig13_speedup` | Figure 13 — end-to-end speedup of all four systems |
//! | `fig14_energy` | Figure 14 — energy, static cache vs ScratchPipe |
//! | `fig15a_dim_sensitivity` | Figure 15(a) — embedding-dimension sweep |
//! | `fig15b_lookup_sensitivity` | Figure 15(b) — lookups-per-table sweep |
//! | `table1_training_cost` | Table I — $ per 1 M iterations vs 8-GPU |
//! | `table_overhead` | §VI-D — scratchpad capacity overhead |
//! | `ablation_policy` | §VI-E — eviction-policy ablation |
//! | `ablation_batch` | §VI-E — batch-size robustness |
//!
//! Each binary prints a markdown table and writes a CSV under `results/`.
//! Set `SP_ITERS` to change the number of simulated iterations (default
//! 12; the first third is discarded as cold-cache warm-up).

#![warn(missing_docs)]

use std::fmt::Write as _;
use std::fs;
use std::path::PathBuf;

/// A simple table that renders to markdown and CSV.
#[derive(Debug, Clone, Default)]
pub struct ResultTable {
    title: String,
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl ResultTable {
    /// Creates a table with a title and column headers.
    pub fn new(title: impl Into<String>, headers: &[&str]) -> Self {
        ResultTable {
            title: title.into(),
            headers: headers.iter().map(|s| (*s).to_owned()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends one row (stringified cells).
    pub fn row(&mut self, cells: Vec<String>) -> &mut Self {
        assert_eq!(cells.len(), self.headers.len(), "column count mismatch");
        self.rows.push(cells);
        self
    }

    /// Renders the table as GitHub-flavored markdown.
    pub fn to_markdown(&self) -> String {
        let mut s = String::new();
        let _ = writeln!(s, "\n## {}\n", self.title);
        let _ = writeln!(s, "| {} |", self.headers.join(" | "));
        let _ = writeln!(
            s,
            "|{}|",
            self.headers
                .iter()
                .map(|_| "---")
                .collect::<Vec<_>>()
                .join("|")
        );
        for r in &self.rows {
            let _ = writeln!(s, "| {} |", r.join(" | "));
        }
        s
    }

    /// Renders the table as CSV.
    pub fn to_csv(&self) -> String {
        let mut s = String::new();
        let _ = writeln!(s, "{}", self.headers.join(","));
        for r in &self.rows {
            let _ = writeln!(s, "{}", r.join(","));
        }
        s
    }

    /// Prints the markdown rendering and writes `results/<name>.csv`.
    pub fn emit(&self, name: &str) {
        print!("{}", self.to_markdown());
        let dir = out_dir();
        let path = dir.join(format!("{name}.csv"));
        if let Err(e) = fs::write(&path, self.to_csv()) {
            eprintln!("warning: could not write {}: {e}", path.display());
        } else {
            println!("\n[written {}]", path.display());
        }
    }
}

/// The output directory for CSV results (`results/`, created on demand).
pub fn out_dir() -> PathBuf {
    let dir = PathBuf::from("results");
    let _ = fs::create_dir_all(&dir);
    dir
}

/// Number of iterations to simulate (env `SP_ITERS`, default 12).
pub fn iterations() -> usize {
    std::env::var("SP_ITERS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(12)
}

/// Formats a millisecond value with two decimals.
pub fn ms(t: memsim::SimTime) -> String {
    format!("{:.2}", t.as_millis())
}

/// Formats a ratio with two decimals and a trailing `×`.
pub fn speedup(v: f64) -> String {
    format!("{v:.2}x")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_renders_markdown_and_csv() {
        let mut t = ResultTable::new("Demo", &["a", "b"]);
        t.row(vec!["1".into(), "2".into()]);
        let md = t.to_markdown();
        assert!(md.contains("## Demo"));
        assert!(md.contains("| a | b |"));
        assert!(md.contains("| 1 | 2 |"));
        let csv = t.to_csv();
        assert_eq!(csv, "a,b\n1,2\n");
    }

    #[test]
    #[should_panic(expected = "column count mismatch")]
    fn ragged_rows_rejected() {
        let mut t = ResultTable::new("Demo", &["a", "b"]);
        t.row(vec!["1".into()]);
    }

    #[test]
    fn formatting_helpers() {
        assert_eq!(ms(memsim::SimTime::from_millis(12.345)), "12.35");
        assert_eq!(speedup(2.5), "2.50x");
        assert!(iterations() > 0);
    }
}
