//! Audit-JSONL sanity checker — the CI gate on the audit contract.
//!
//! Reads one or more audit JSONL files (as written by
//! `bench_pipeline_throughput --audit` or any [`FileSink`] run) and
//! verifies, without any external tooling:
//!
//! * every line parses as a JSON object carrying the documented envelope
//!   (`event`, `run_id`, `run`, `seq`);
//! * `seq` numbers each run's lines consecutively from 0;
//! * each run is well-formed: `run_started` first, `run_completed` last,
//!   and the number of `iteration` events equals the `iterations` field
//!   claimed by *both* bracketing events;
//! * each `iteration` event deserializes as an
//!   [`IterationRecord`](scratchpipe::IterationRecord) and carries a
//!   five-stage `stage_nanos` map;
//! * the hit rate recomputed from the iteration events matches the
//!   `run_completed.hit_rate` within 1e-9.
//!
//! Exits non-zero on the first violated file, printing every violation.
//!
//! ```bash
//! cargo run --release -p sp-bench --bin audit_check -- BENCH_pipeline_audit.jsonl
//! ```

use std::collections::HashMap;
use std::process::ExitCode;

use scratchpipe::IterationRecord;
use serde::{Deserialize as _, Value};

/// Per-run accumulated state while scanning a file.
#[derive(Default)]
struct RunState {
    next_seq: u64,
    started: bool,
    completed: bool,
    claimed_iterations: Option<u64>,
    iteration_events: u64,
    hits: u64,
    misses: u64,
    completed_hit_rate: Option<f64>,
}

fn get_str<'v>(event: &'v Value, key: &str) -> Result<&'v str, String> {
    match event.get(key) {
        Some(Value::Str(s)) => Ok(s),
        other => Err(format!("field {key}: expected string, got {other:?}")),
    }
}

fn get_u64(event: &Value, key: &str) -> Result<u64, String> {
    match event.get(key) {
        Some(Value::UInt(n)) => Ok(*n),
        other => Err(format!("field {key}: expected unsigned int, got {other:?}")),
    }
}

fn check_line(event: &Value, runs: &mut HashMap<String, RunState>) -> Result<(), String> {
    let kind = get_str(event, "event")?;
    let run_id = get_str(event, "run_id")?.to_owned();
    get_str(event, "run")?;
    let seq = get_u64(event, "seq")?;

    let state = runs.entry(run_id).or_default();
    if seq != state.next_seq {
        return Err(format!("seq {seq}, expected {}", state.next_seq));
    }
    state.next_seq += 1;
    if state.completed {
        return Err("event after run_completed".to_owned());
    }
    match kind {
        "run_started" => {
            if state.started {
                return Err("duplicate run_started".to_owned());
            }
            state.started = true;
            state.claimed_iterations = Some(get_u64(event, "iterations")?);
            get_u64(event, "num_tables")?;
            get_u64(event, "dim")?;
            get_str(event, "schedule")?;
        }
        "iteration" => {
            if !state.started {
                return Err("iteration before run_started".to_owned());
            }
            let rec = IterationRecord::from_value(event)
                .map_err(|e| format!("not an IterationRecord: {e}"))?;
            if rec.index as u64 != state.iteration_events {
                return Err(format!(
                    "iteration index {} out of order (expected {})",
                    rec.index, state.iteration_events
                ));
            }
            state.iteration_events += 1;
            state.hits += rec.hits;
            state.misses += rec.misses;
            match event.get("stage_nanos") {
                Some(Value::Map(entries)) if entries.len() == 5 => {}
                other => return Err(format!("stage_nanos: expected 5-stage map, got {other:?}")),
            }
        }
        "run_completed" => {
            if !state.started {
                return Err("run_completed before run_started".to_owned());
            }
            state.completed = true;
            let n = get_u64(event, "iterations")?;
            if Some(n) != state.claimed_iterations {
                return Err(format!(
                    "run_completed.iterations {n} != run_started.iterations {:?}",
                    state.claimed_iterations
                ));
            }
            if n != state.iteration_events {
                return Err(format!(
                    "run_completed.iterations {n} != {} iteration events",
                    state.iteration_events
                ));
            }
            get_u64(event, "elapsed_ns")?;
            state.completed_hit_rate = Some(match event.get("hit_rate") {
                Some(Value::Float(x)) => *x,
                Some(Value::UInt(n)) => *n as f64,
                other => return Err(format!("hit_rate: expected number, got {other:?}")),
            });
        }
        other => return Err(format!("unknown event kind {other:?}")),
    }
    Ok(())
}

fn check_file(path: &str) -> Result<(), Vec<String>> {
    let body = match std::fs::read_to_string(path) {
        Ok(b) => b,
        Err(e) => return Err(vec![format!("cannot read: {e}")]),
    };
    let mut errors = Vec::new();
    let mut runs: HashMap<String, RunState> = HashMap::new();
    for (i, line) in body.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        let event: Value = match serde_json::from_str(line) {
            Ok(v) => v,
            Err(e) => {
                errors.push(format!("line {}: invalid JSON: {e}", i + 1));
                continue;
            }
        };
        if let Err(e) = check_line(&event, &mut runs) {
            errors.push(format!("line {}: {e}", i + 1));
        }
    }
    if runs.is_empty() {
        errors.push("no audit events found".to_owned());
    }
    for (run_id, state) in &runs {
        if !state.completed {
            errors.push(format!("run {run_id}: missing run_completed"));
            continue;
        }
        let recomputed = if state.hits + state.misses > 0 {
            state.hits as f64 / (state.hits + state.misses) as f64
        } else {
            0.0
        };
        let claimed = state.completed_hit_rate.unwrap_or(f64::NAN);
        if (recomputed - claimed).abs() > 1e-9 {
            errors.push(format!(
                "run {run_id}: recomputed hit rate {recomputed} != claimed {claimed}"
            ));
        }
    }
    if errors.is_empty() {
        Ok(())
    } else {
        Err(errors)
    }
}

fn main() -> ExitCode {
    let paths: Vec<String> = std::env::args().skip(1).collect();
    if paths.is_empty() {
        eprintln!("usage: audit_check <audit.jsonl> [more.jsonl ...]");
        return ExitCode::FAILURE;
    }
    let mut failed = false;
    for path in &paths {
        match check_file(path) {
            Ok(()) => println!("{path}: OK"),
            Err(errors) => {
                failed = true;
                eprintln!("{path}: {} violation(s)", errors.len());
                for e in &errors {
                    eprintln!("  {e}");
                }
            }
        }
    }
    if failed {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}
