//! Audit-JSONL sanity checker — the CI gate on the audit contract.
//!
//! Reads one or more audit JSONL files (as written by
//! `bench_pipeline_throughput --audit` or any [`FileSink`] run) and
//! verifies, without any external tooling:
//!
//! * every line parses as a JSON object carrying the documented envelope
//!   (`event`, `run_id`, `run`, `seq`);
//! * `seq` numbers each run's lines consecutively from 0;
//! * each run is well-formed: `run_started` first, `run_completed` last,
//!   and the number of `iteration` events equals the `iterations` field
//!   claimed by *both* bracketing events;
//! * each `iteration` event deserializes as an
//!   [`IterationRecord`](scratchpipe::IterationRecord) and carries a
//!   five-stage `stage_nanos` map;
//! * when an `iteration` event carries a `stage_shards` map (the
//!   data-parallel shard-timing breakdown), every key names a stage from
//!   `stage_nanos` and every value is a non-empty sequence of unsigned
//!   shard nanos;
//! * the hit rate recomputed from the iteration events matches the
//!   `run_completed.hit_rate` within 1e-9;
//! * the recovery events (`fault_injected`, `iteration_rolled_back`,
//!   `stage_retried`, `schedule_degraded`, `run_aborted`) carry their
//!   documented fields, and an aborted run's `iteration` events equal its
//!   `run_aborted.committed` count.
//!
//! With `--faults` the file must additionally tell a *consistent
//! recovery story*: at least one `fault_injected` event exists, and for
//! every run each rollback is answered by exactly one retry, degradation
//! or abort (`rollbacks == retries + degradations + aborted`). CI runs
//! this over the chaos suite's artifact.
//!
//! With `--bench BENCH_pipeline.json` it additionally cross-checks the
//! benchmark artifact: each shape's `speedup_threaded_vs_sync` and
//! `speedup_parallel_vs_sync` must equal the ratio of the raw
//! `*_iters_per_sec` fields (relative tolerance 1e-6), and `parallelism`
//! must be at least 1. `--parallel-floor <shape>:<ratio>` then gates a
//! shape: the check fails if that shape's `speedup_parallel_vs_sync`
//! falls below the ratio (CI uses `medium:0.9` — data-parallel must not
//! regress materially below sync even on narrow hosts).
//!
//! When the audit JSONL of the same bench run is also on the command
//! line, the dedup-accounting fields are **re-derived** from that
//! shape's `bench-<shape>-sync` audit aggregate and the check fails if
//! the artifact disagrees:
//!
//! * `unique_lookup_ratio` must equal Σ`unique_rows` / Σ`total_lookups`
//!   over the sync run's iteration events (relative tolerance 1e-6);
//! * `bytes_staged` must equal the summed Exchange-stage PCIe bytes and
//!   `bytes_staged_dedup` must equal that plus the summed Plan-stage
//!   H2D bytes — **exactly**, both sides summed the same integers;
//! * the Plan-stage H2D bytes themselves must obey the dedup upload
//!   contract, 4 bytes per unique slot + 4 per raw-lookup index:
//!   `plan_h2d == 4 * (unique_rows + total_lookups)`.
//!
//! With `--metrics METRICS.json` it reconciles the telemetry registry
//! (written by [`Telemetry::write_metrics_json`]) against the audit
//! stream, joined on the run label. The pipeline records **one integer**
//! per stage execution and reports it to both the audit `stage_nanos`
//! map and the `sp_stage_latency_ns` histogram, so for every
//! `(run, stage)`:
//!
//! * `sp_stage_latency_ns.sum` equals the summed `stage_nanos` and
//!   `.count` equals the iteration-event count — **exactly**, no
//!   tolerance; a supervised run with `iteration_rolled_back` events
//!   also recorded the failed attempts, so there equality relaxes to
//!   `>=`;
//! * `sp_run_iterations_total` equals the committed iteration events;
//! * the `sp_recovery_*_total` counters equal the corresponding audit
//!   event counts (`fault_injected`, `iteration_rolled_back`,
//!   `stage_retried`, `schedule_degraded`, `run_aborted`);
//! * `sp_scratchpad_{hits,misses}_total` summed over tables equal the
//!   summed iteration-event hits/misses (rollback-free runs only —
//!   replayed iterations re-plan).
//!
//! ```bash
//! cargo run --release -p sp-bench --bin audit_check -- BENCH_pipeline_audit.jsonl
//! cargo run --release -p sp-bench --bin audit_check -- \
//!     --bench BENCH_pipeline.json --parallel-floor medium:0.9 \
//!     --metrics METRICS.json \
//!     BENCH_pipeline_audit.jsonl BENCH_pipeline_audit_parallel.jsonl
//! ```
//!
//! Exits non-zero on the first violated file, printing every violation.
//!
//! [`Telemetry::write_metrics_json`]: scratchpipe::Telemetry::write_metrics_json

use std::collections::{BTreeMap, HashMap};
use std::process::ExitCode;

use scratchpipe::IterationRecord;
use serde::{Deserialize as _, Value};

/// Per-run accumulated state while scanning a file.
#[derive(Default)]
struct RunState {
    next_seq: u64,
    started: bool,
    completed: bool,
    aborted: bool,
    claimed_iterations: Option<u64>,
    iteration_events: u64,
    hits: u64,
    misses: u64,
    completed_hit_rate: Option<f64>,
    faults_injected: u64,
    rollbacks: u64,
    retries: u64,
    degradations: u64,
    aborted_committed: Option<u64>,
}

fn get_str<'v>(event: &'v Value, key: &str) -> Result<&'v str, String> {
    match event.get(key) {
        Some(Value::Str(s)) => Ok(s),
        other => Err(format!("field {key}: expected string, got {other:?}")),
    }
}

fn get_u64(event: &Value, key: &str) -> Result<u64, String> {
    match event.get(key) {
        Some(Value::UInt(n)) => Ok(*n),
        other => Err(format!("field {key}: expected unsigned int, got {other:?}")),
    }
}

/// Audit facts accumulated per run **label** (the telemetry join key),
/// across every checked file: what `--metrics` reconciles against.
#[derive(Default)]
struct LabelAgg {
    /// Summed `stage_nanos` per stage over the committed iterations.
    stage_ns: BTreeMap<String, u64>,
    /// Iteration events that carried each stage (== committed iterations).
    stage_iters: BTreeMap<String, u64>,
    iterations: u64,
    hits: u64,
    misses: u64,
    /// Σ raw sparse lookups over the committed iterations.
    total_lookups: u64,
    /// Σ unique rows per (table, batch) over the committed iterations.
    unique_rows: u64,
    /// Σ Plan-stage PCIe H2D bytes (the compact dedup-index upload).
    plan_h2d_bytes: u64,
    /// Σ Exchange-stage PCIe bytes, both directions (== bytes staged).
    exchange_pcie_bytes: u64,
    rollbacks: u64,
    retries: u64,
    degradations: u64,
    faults_injected: u64,
    aborts: u64,
}

fn check_line(
    event: &Value,
    runs: &mut HashMap<String, RunState>,
    labels: &mut BTreeMap<String, LabelAgg>,
) -> Result<(), String> {
    let kind = get_str(event, "event")?;
    let run_id = get_str(event, "run_id")?.to_owned();
    let label = get_str(event, "run")?.to_owned();
    let seq = get_u64(event, "seq")?;

    let state = runs.entry(run_id).or_default();
    if seq != state.next_seq {
        return Err(format!("seq {seq}, expected {}", state.next_seq));
    }
    state.next_seq += 1;
    if state.completed {
        return Err("event after the terminal run_completed/run_aborted".to_owned());
    }
    match kind {
        "run_started" => {
            if state.started {
                return Err("duplicate run_started".to_owned());
            }
            state.started = true;
            state.claimed_iterations = Some(get_u64(event, "iterations")?);
            get_u64(event, "num_tables")?;
            get_u64(event, "dim")?;
            get_str(event, "schedule")?;
        }
        "iteration" => {
            if !state.started {
                return Err("iteration before run_started".to_owned());
            }
            let rec = IterationRecord::from_value(event)
                .map_err(|e| format!("not an IterationRecord: {e}"))?;
            // Committed iterations arrive in index order even when a
            // supervised run retried them out of wall-clock order.
            if rec.index as u64 != state.iteration_events {
                return Err(format!(
                    "iteration index {} out of order (expected {})",
                    rec.index, state.iteration_events
                ));
            }
            state.iteration_events += 1;
            state.hits += rec.hits;
            state.misses += rec.misses;
            let agg = labels.entry(label).or_default();
            agg.iterations += 1;
            agg.hits += rec.hits;
            agg.misses += rec.misses;
            agg.total_lookups += rec.total_lookups;
            agg.unique_rows += rec.unique_rows;
            agg.plan_h2d_bytes += rec.traffic.plan.pcie_h2d_bytes;
            agg.exchange_pcie_bytes +=
                rec.traffic.exchange.pcie_h2d_bytes + rec.traffic.exchange.pcie_d2h_bytes;
            let stage_names: Vec<&str> = match event.get("stage_nanos") {
                Some(Value::Map(entries)) if entries.len() == 5 => {
                    for (stage, v) in entries {
                        let Value::UInt(ns) = v else {
                            return Err(format!("stage_nanos.{stage}: expected UInt, got {v:?}"));
                        };
                        *agg.stage_ns.entry(stage.clone()).or_default() += ns;
                        *agg.stage_iters.entry(stage.clone()).or_default() += 1;
                    }
                    entries.iter().map(|(k, _)| k.as_str()).collect()
                }
                other => return Err(format!("stage_nanos: expected 5-stage map, got {other:?}")),
            };
            match event.get("stage_shards") {
                None => {}
                Some(Value::Map(entries)) => {
                    for (stage, shards) in entries {
                        if !stage_names.contains(&stage.as_str()) {
                            return Err(format!("stage_shards: unknown stage {stage:?}"));
                        }
                        match shards {
                            Value::Seq(items) if !items.is_empty() => {
                                if items.iter().any(|v| !matches!(v, Value::UInt(_))) {
                                    return Err(format!(
                                        "stage_shards.{stage}: non-integer shard nanos"
                                    ));
                                }
                            }
                            other => {
                                return Err(format!(
                                    "stage_shards.{stage}: expected non-empty seq, got {other:?}"
                                ))
                            }
                        }
                    }
                }
                other => return Err(format!("stage_shards: expected map, got {other:?}")),
            }
        }
        "run_completed" => {
            if !state.started {
                return Err("run_completed before run_started".to_owned());
            }
            state.completed = true;
            let n = get_u64(event, "iterations")?;
            if Some(n) != state.claimed_iterations {
                return Err(format!(
                    "run_completed.iterations {n} != run_started.iterations {:?}",
                    state.claimed_iterations
                ));
            }
            if n != state.iteration_events {
                return Err(format!(
                    "run_completed.iterations {n} != {} iteration events",
                    state.iteration_events
                ));
            }
            get_u64(event, "elapsed_ns")?;
            state.completed_hit_rate = Some(match event.get("hit_rate") {
                Some(Value::Float(x)) => *x,
                Some(Value::UInt(n)) => *n as f64,
                other => return Err(format!("hit_rate: expected number, got {other:?}")),
            });
        }
        "fault_injected" => {
            if !state.started {
                return Err("fault_injected before run_started".to_owned());
            }
            state.faults_injected += 1;
            labels.entry(label).or_default().faults_injected += 1;
            get_u64(event, "iteration")?;
            get_u64(event, "attempt")?;
            get_str(event, "stage")?;
            get_u64(event, "shard")?;
            let kind = get_str(event, "kind")?;
            const KINDS: [&str; 4] = [
                "stage_error",
                "worker_panic",
                "slow_shard",
                "corrupt_payload",
            ];
            if !KINDS.contains(&kind) {
                return Err(format!("fault_injected: unknown fault kind {kind:?}"));
            }
        }
        "iteration_rolled_back" => {
            if !state.started {
                return Err("iteration_rolled_back before run_started".to_owned());
            }
            state.rollbacks += 1;
            labels.entry(label).or_default().rollbacks += 1;
            get_u64(event, "iteration")?;
            get_u64(event, "attempt")?;
            get_str(event, "cause")?;
        }
        "stage_retried" => {
            state.retries += 1;
            labels.entry(label).or_default().retries += 1;
            get_u64(event, "iteration")?;
            get_u64(event, "attempt")?;
            get_str(event, "schedule")?;
        }
        "schedule_degraded" => {
            state.degradations += 1;
            labels.entry(label).or_default().degradations += 1;
            get_u64(event, "iteration")?;
            let from = get_str(event, "from")?;
            let to = get_str(event, "to")?;
            if from == to {
                return Err(format!("schedule_degraded: from == to ({from:?})"));
            }
        }
        "run_aborted" => {
            if !state.started {
                return Err("run_aborted before run_started".to_owned());
            }
            state.completed = true;
            state.aborted = true;
            state.aborted_committed = Some(get_u64(event, "committed")?);
            labels.entry(label).or_default().aborts += 1;
            get_u64(event, "iteration")?;
            get_u64(event, "attempts")?;
            get_str(event, "schedule")?;
            get_str(event, "cause")?;
        }
        other => return Err(format!("unknown event kind {other:?}")),
    }
    Ok(())
}

fn check_file(
    path: &str,
    faults_mode: bool,
    labels: &mut BTreeMap<String, LabelAgg>,
) -> Result<(), Vec<String>> {
    let body = match std::fs::read_to_string(path) {
        Ok(b) => b,
        Err(e) => return Err(vec![format!("cannot read: {e}")]),
    };
    let mut errors = Vec::new();
    let mut runs: HashMap<String, RunState> = HashMap::new();
    for (i, line) in body.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        let event: Value = match serde_json::from_str(line) {
            Ok(v) => v,
            Err(e) => {
                errors.push(format!("line {}: invalid JSON: {e}", i + 1));
                continue;
            }
        };
        if let Err(e) = check_line(&event, &mut runs, labels) {
            errors.push(format!("line {}: {e}", i + 1));
        }
    }
    if runs.is_empty() {
        errors.push("no audit events found".to_owned());
    }
    for (run_id, state) in &runs {
        if !state.completed {
            errors.push(format!(
                "run {run_id}: missing terminal run_completed/run_aborted"
            ));
            continue;
        }
        if state.aborted {
            // An aborted run audits exactly the committed prefix.
            let committed = state.aborted_committed.unwrap_or(u64::MAX);
            if state.iteration_events != committed {
                errors.push(format!(
                    "run {run_id}: {} iteration events != run_aborted.committed {committed}",
                    state.iteration_events
                ));
            }
        } else {
            let recomputed = if state.hits + state.misses > 0 {
                state.hits as f64 / (state.hits + state.misses) as f64
            } else {
                0.0
            };
            let claimed = state.completed_hit_rate.unwrap_or(f64::NAN);
            if (recomputed - claimed).abs() > 1e-9 {
                errors.push(format!(
                    "run {run_id}: recomputed hit rate {recomputed} != claimed {claimed}"
                ));
            }
        }
        // Every rollback must be answered by exactly one retry,
        // degradation or abort — the supervisor's decision invariant.
        let answered = state.retries + state.degradations + u64::from(state.aborted);
        if state.rollbacks != answered {
            errors.push(format!(
                "run {run_id}: {} rollbacks != {} retries + {} degradations + {} aborts",
                state.rollbacks,
                state.retries,
                state.degradations,
                u64::from(state.aborted)
            ));
        }
    }
    if faults_mode && !runs.is_empty() && runs.values().all(|s| s.faults_injected == 0) {
        errors.push("--faults: no fault_injected events in the file".to_owned());
    }
    if errors.is_empty() {
        Ok(())
    } else {
        Err(errors)
    }
}

/// Reconciles `METRICS.json` against the audit facts aggregated per run
/// label — the exactness contract: both sides summed the *same
/// integers*, so equality is `==`, not a tolerance (relaxed to `>=` for
/// labels that rolled iterations back, whose failed attempts were
/// metered but never audited).
fn check_metrics(path: &str, labels: &BTreeMap<String, LabelAgg>) -> Result<(), Vec<String>> {
    let body = match std::fs::read_to_string(path) {
        Ok(b) => b,
        Err(e) => return Err(vec![format!("cannot read: {e}")]),
    };
    let doc: Value = match serde_json::from_str(&body) {
        Ok(v) => v,
        Err(e) => return Err(vec![format!("invalid JSON: {e}")]),
    };
    let Some(Value::Seq(metrics)) = doc.get("metrics") else {
        return Err(vec!["metrics: expected a sequence".to_owned()]);
    };
    let mut errors = Vec::new();
    let mut stage_entries = 0usize;
    // (label -> summed-over-tables) scratchpad totals.
    let mut hits: BTreeMap<String, u64> = BTreeMap::new();
    let mut misses: BTreeMap<String, u64> = BTreeMap::new();
    for m in metrics {
        let checked = (|| -> Result<(), String> {
            let name = get_str(m, "name")?;
            let Some(Value::Map(label_entries)) = m.get("labels") else {
                return Err("labels: expected a map".to_owned());
            };
            let label_of = |key: &str| -> Result<String, String> {
                label_entries
                    .iter()
                    .find(|(k, _)| k == key)
                    .and_then(|(_, v)| match v {
                        Value::Str(s) => Some(s.clone()),
                        _ => None,
                    })
                    .ok_or_else(|| format!("{name}: missing {key} label"))
            };
            let run = label_of("run")?;
            let Some(agg) = labels.get(&run) else {
                return Err(format!("{name}: run {run:?} not in the audit stream"));
            };
            // `==` for clean runs, `>=` once iterations were replayed.
            let reconcile = |what: &str, metered: u64, audited: u64| -> Result<(), String> {
                let ok = if agg.rollbacks > 0 {
                    metered >= audited
                } else {
                    metered == audited
                };
                if ok {
                    Ok(())
                } else {
                    Err(format!(
                        "{name} run {run:?}: {what} {metered} {} audit {audited}",
                        if agg.rollbacks > 0 { "<" } else { "!=" }
                    ))
                }
            };
            let exact = |what: &str, metered: u64, audited: u64| -> Result<(), String> {
                if metered == audited {
                    Ok(())
                } else {
                    Err(format!(
                        "{name} run {run:?}: {what} {metered} != audit {audited}"
                    ))
                }
            };
            match name {
                "sp_stage_latency_ns" => {
                    stage_entries += 1;
                    let stage = label_of("stage")?;
                    let audited_ns = agg.stage_ns.get(&stage).copied().unwrap_or(0);
                    let audited_n = agg.stage_iters.get(&stage).copied().unwrap_or(0);
                    reconcile(
                        &format!("stage {stage} sum"),
                        get_u64(m, "sum")?,
                        audited_ns,
                    )?;
                    reconcile(
                        &format!("stage {stage} count"),
                        get_u64(m, "count")?,
                        audited_n,
                    )?;
                }
                "sp_run_iterations_total" => {
                    // finish_run reports the *committed* count even for
                    // aborted runs, so this one is always exact.
                    exact("iterations", get_u64(m, "value")?, agg.iterations)?;
                }
                "sp_recovery_rollbacks_total" => {
                    exact("rollbacks", get_u64(m, "value")?, agg.rollbacks)?;
                }
                "sp_recovery_retries_total" => {
                    exact("retries", get_u64(m, "value")?, agg.retries)?;
                }
                "sp_recovery_degradations_total" => {
                    exact("degradations", get_u64(m, "value")?, agg.degradations)?;
                }
                "sp_recovery_faults_injected_total" => {
                    exact("faults_injected", get_u64(m, "value")?, agg.faults_injected)?;
                }
                "sp_recovery_aborts_total" => {
                    exact("aborts", get_u64(m, "value")?, agg.aborts)?;
                }
                "sp_scratchpad_hits_total" => {
                    *hits.entry(run.clone()).or_default() += get_u64(m, "value")?;
                }
                "sp_scratchpad_misses_total" => {
                    *misses.entry(run.clone()).or_default() += get_u64(m, "value")?;
                }
                _ => {}
            }
            Ok(())
        })();
        if let Err(e) = checked {
            errors.push(e);
        }
    }
    let mut check_totals =
        |kind: &str, totals: &BTreeMap<String, u64>, audited: fn(&LabelAgg) -> u64| {
            for (run, &metered) in totals {
                let Some(agg) = labels.get(run) else {
                    continue; // already reported above
                };
                // Replayed iterations re-plan, recounting cache traffic.
                if agg.rollbacks == 0 && metered != audited(agg) {
                    errors.push(format!(
                        "sp_scratchpad_{kind}_total run {run:?}: {metered} != audit {}",
                        audited(agg)
                    ));
                }
            }
        };
    check_totals("hits", &hits, |a| a.hits);
    check_totals("misses", &misses, |a| a.misses);
    if stage_entries == 0 {
        errors.push("no sp_stage_latency_ns entries to reconcile".to_owned());
    }
    if errors.is_empty() {
        Ok(())
    } else {
        Err(errors)
    }
}

fn get_f64(event: &Value, key: &str) -> Result<f64, String> {
    match event.get(key) {
        Some(Value::Float(x)) => Ok(*x),
        Some(Value::UInt(n)) => Ok(*n as f64),
        other => Err(format!("field {key}: expected number, got {other:?}")),
    }
}

/// Validates `BENCH_pipeline.json`: the `speedup_*_vs_sync` fields must
/// reproduce from the raw throughputs, `parallelism` must be ≥ 1, and
/// every `--parallel-floor <shape>:<ratio>` gate must hold. When the
/// same run's audit stream was checked first (so `labels` holds a
/// `bench-<shape>-sync` aggregate), the dedup-accounting fields
/// (`unique_lookup_ratio`, `bytes_staged`, `bytes_staged_dedup`) are
/// re-derived from the audit facts and must agree.
fn check_bench(
    path: &str,
    floors: &[(String, f64)],
    labels: &BTreeMap<String, LabelAgg>,
) -> Result<(), Vec<String>> {
    let body = match std::fs::read_to_string(path) {
        Ok(b) => b,
        Err(e) => return Err(vec![format!("cannot read: {e}")]),
    };
    let report: Value = match serde_json::from_str(&body) {
        Ok(v) => v,
        Err(e) => return Err(vec![format!("invalid JSON: {e}")]),
    };
    let mut errors = Vec::new();
    let Some(Value::Seq(shapes)) = report.get("shapes") else {
        return Err(vec!["shapes: expected a sequence".to_owned()]);
    };
    let mut seen = Vec::new();
    for shape in shapes {
        let name = match get_str(shape, "name") {
            Ok(n) => n.to_owned(),
            Err(e) => {
                errors.push(e);
                continue;
            }
        };
        let checks = (|| -> Result<(), String> {
            let sync = get_f64(shape, "sync_iters_per_sec")?;
            let threaded = get_f64(shape, "threaded_iters_per_sec")?;
            let parallel = get_f64(shape, "parallel_iters_per_sec")?;
            let sp_threaded = get_f64(shape, "speedup_threaded_vs_sync")?;
            let sp_parallel = get_f64(shape, "speedup_parallel_vs_sync")?;
            if get_u64(shape, "parallelism")? < 1 {
                return Err("parallelism below 1".to_owned());
            }
            let rel = |claimed: f64, derived: f64| {
                (claimed - derived).abs() > 1e-6 * derived.abs().max(1e-12)
            };
            if rel(sp_threaded, threaded / sync) {
                return Err(format!(
                    "speedup_threaded_vs_sync {sp_threaded} != {threaded}/{sync}"
                ));
            }
            if rel(sp_parallel, parallel / sync) {
                return Err(format!(
                    "speedup_parallel_vs_sync {sp_parallel} != {parallel}/{sync}"
                ));
            }
            for (floor_shape, ratio) in floors {
                if *floor_shape == name && sp_parallel < *ratio {
                    return Err(format!(
                        "speedup_parallel_vs_sync {sp_parallel} below floor {ratio}"
                    ));
                }
            }
            let ratio = get_f64(shape, "unique_lookup_ratio")?;
            if !(ratio > 0.0 && ratio <= 1.0) {
                return Err(format!("unique_lookup_ratio {ratio} outside (0, 1]"));
            }
            let staged = get_u64(shape, "bytes_staged")?;
            let staged_dedup = get_u64(shape, "bytes_staged_dedup")?;
            if staged_dedup < staged {
                return Err(format!(
                    "bytes_staged_dedup {staged_dedup} below bytes_staged {staged}"
                ));
            }
            // Re-derive the dedup accounting from the sync run's audit
            // aggregate whenever the audit stream was supplied alongside.
            if let Some(agg) = labels.get(&format!("bench-{name}-sync")) {
                let derived_ratio = agg.unique_rows as f64 / agg.total_lookups as f64;
                if rel(ratio, derived_ratio) {
                    return Err(format!(
                        "unique_lookup_ratio {ratio} != audit {}/{} = {derived_ratio}",
                        agg.unique_rows, agg.total_lookups
                    ));
                }
                if staged != agg.exchange_pcie_bytes {
                    return Err(format!(
                        "bytes_staged {staged} != audit exchange PCIe {}",
                        agg.exchange_pcie_bytes
                    ));
                }
                let derived_dedup = agg.plan_h2d_bytes + agg.exchange_pcie_bytes;
                if staged_dedup != derived_dedup {
                    return Err(format!(
                        "bytes_staged_dedup {staged_dedup} != audit plan H2D {} \
                         + exchange PCIe {}",
                        agg.plan_h2d_bytes, agg.exchange_pcie_bytes
                    ));
                }
                // The Plan upload contract: one u32 slot per unique row
                // plus one u32 index per raw lookup.
                let contract = 4 * (agg.unique_rows + agg.total_lookups);
                if agg.plan_h2d_bytes != contract {
                    return Err(format!(
                        "plan H2D {} != 4 * (unique {} + lookups {}) = {contract}",
                        agg.plan_h2d_bytes, agg.unique_rows, agg.total_lookups
                    ));
                }
            }
            Ok(())
        })();
        if let Err(e) = checks {
            errors.push(format!("shape {name}: {e}"));
        }
        seen.push(name);
    }
    for (floor_shape, _) in floors {
        if !seen.contains(floor_shape) {
            errors.push(format!(
                "--parallel-floor names shape {floor_shape}, not in the report"
            ));
        }
    }
    if errors.is_empty() {
        Ok(())
    } else {
        Err(errors)
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut paths = Vec::new();
    let mut bench_path = None;
    let mut metrics_path = None;
    let mut faults_mode = false;
    let mut floors: Vec<(String, f64)> = Vec::new();
    let mut it = args.into_iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--faults" => faults_mode = true,
            "--bench" => match it.next() {
                Some(p) => bench_path = Some(p),
                None => {
                    eprintln!("--bench needs a path");
                    return ExitCode::FAILURE;
                }
            },
            "--metrics" => match it.next() {
                Some(p) => metrics_path = Some(p),
                None => {
                    eprintln!("--metrics needs a path");
                    return ExitCode::FAILURE;
                }
            },
            "--parallel-floor" => {
                let Some(spec) = it.next() else {
                    eprintln!("--parallel-floor needs <shape>:<ratio>");
                    return ExitCode::FAILURE;
                };
                let Some((shape, ratio)) = spec.split_once(':') else {
                    eprintln!("--parallel-floor: malformed spec {spec:?}");
                    return ExitCode::FAILURE;
                };
                let Ok(ratio) = ratio.parse::<f64>() else {
                    eprintln!("--parallel-floor: bad ratio in {spec:?}");
                    return ExitCode::FAILURE;
                };
                floors.push((shape.to_owned(), ratio));
            }
            _ => paths.push(arg),
        }
    }
    if paths.is_empty() && bench_path.is_none() {
        eprintln!(
            "usage: audit_check [--faults] [--bench BENCH_pipeline.json] \
             [--metrics METRICS.json] [--parallel-floor shape:ratio] \
             <audit.jsonl> [more.jsonl ...]"
        );
        return ExitCode::FAILURE;
    }
    if !floors.is_empty() && bench_path.is_none() {
        eprintln!("--parallel-floor requires --bench");
        return ExitCode::FAILURE;
    }
    if metrics_path.is_some() && paths.is_empty() {
        eprintln!("--metrics needs at least one audit JSONL to reconcile against");
        return ExitCode::FAILURE;
    }
    let mut failed = false;
    let mut report = |path: &str, result: Result<(), Vec<String>>| match result {
        Ok(()) => println!("{path}: OK"),
        Err(errors) => {
            failed = true;
            eprintln!("{path}: {} violation(s)", errors.len());
            for e in &errors {
                eprintln!("  {e}");
            }
        }
    };
    let mut labels: BTreeMap<String, LabelAgg> = BTreeMap::new();
    for path in &paths {
        report(path, check_file(path, faults_mode, &mut labels));
    }
    if let Some(path) = &bench_path {
        report(path, check_bench(path, &floors, &labels));
    }
    if let Some(path) = &metrics_path {
        report(path, check_metrics(path, &labels));
    }
    if failed {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}
