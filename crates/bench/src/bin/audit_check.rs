//! Audit-JSONL sanity checker — the CI gate on the audit contract.
//!
//! Reads one or more audit JSONL files (as written by
//! `bench_pipeline_throughput --audit` or any [`FileSink`] run) and
//! verifies, without any external tooling:
//!
//! * every line parses as a JSON object carrying the documented envelope
//!   (`event`, `run_id`, `run`, `seq`);
//! * `seq` numbers each run's lines consecutively from 0;
//! * each run is well-formed: `run_started` first, `run_completed` last,
//!   and the number of `iteration` events equals the `iterations` field
//!   claimed by *both* bracketing events;
//! * each `iteration` event deserializes as an
//!   [`IterationRecord`](scratchpipe::IterationRecord) and carries a
//!   five-stage `stage_nanos` map;
//! * when an `iteration` event carries a `stage_shards` map (the
//!   data-parallel shard-timing breakdown), every key names a stage from
//!   `stage_nanos` and every value is a non-empty sequence of unsigned
//!   shard nanos;
//! * the hit rate recomputed from the iteration events matches the
//!   `run_completed.hit_rate` within 1e-9;
//! * the recovery events (`fault_injected`, `iteration_rolled_back`,
//!   `stage_retried`, `schedule_degraded`, `run_aborted`) carry their
//!   documented fields, and an aborted run's `iteration` events equal its
//!   `run_aborted.committed` count.
//!
//! With `--faults` the file must additionally tell a *consistent
//! recovery story*: at least one `fault_injected` event exists, and for
//! every run each rollback is answered by exactly one retry, degradation
//! or abort (`rollbacks == retries + degradations + aborted`). CI runs
//! this over the chaos suite's artifact.
//!
//! With `--bench BENCH_pipeline.json` it additionally cross-checks the
//! benchmark artifact: each shape's `speedup_threaded_vs_sync` and
//! `speedup_parallel_vs_sync` must equal the ratio of the raw
//! `*_iters_per_sec` fields (relative tolerance 1e-6), and `parallelism`
//! must be at least 1. `--parallel-floor <shape>:<ratio>` then gates a
//! shape: the check fails if that shape's `speedup_parallel_vs_sync`
//! falls below the ratio (CI uses `medium:0.9` — data-parallel must not
//! regress materially below sync even on narrow hosts).
//!
//! Exits non-zero on the first violated file, printing every violation.
//!
//! ```bash
//! cargo run --release -p sp-bench --bin audit_check -- BENCH_pipeline_audit.jsonl
//! cargo run --release -p sp-bench --bin audit_check -- \
//!     --bench BENCH_pipeline.json --parallel-floor medium:0.9 \
//!     BENCH_pipeline_audit.jsonl BENCH_pipeline_audit_parallel.jsonl
//! ```

use std::collections::HashMap;
use std::process::ExitCode;

use scratchpipe::IterationRecord;
use serde::{Deserialize as _, Value};

/// Per-run accumulated state while scanning a file.
#[derive(Default)]
struct RunState {
    next_seq: u64,
    started: bool,
    completed: bool,
    aborted: bool,
    claimed_iterations: Option<u64>,
    iteration_events: u64,
    hits: u64,
    misses: u64,
    completed_hit_rate: Option<f64>,
    faults_injected: u64,
    rollbacks: u64,
    retries: u64,
    degradations: u64,
    aborted_committed: Option<u64>,
}

fn get_str<'v>(event: &'v Value, key: &str) -> Result<&'v str, String> {
    match event.get(key) {
        Some(Value::Str(s)) => Ok(s),
        other => Err(format!("field {key}: expected string, got {other:?}")),
    }
}

fn get_u64(event: &Value, key: &str) -> Result<u64, String> {
    match event.get(key) {
        Some(Value::UInt(n)) => Ok(*n),
        other => Err(format!("field {key}: expected unsigned int, got {other:?}")),
    }
}

fn check_line(event: &Value, runs: &mut HashMap<String, RunState>) -> Result<(), String> {
    let kind = get_str(event, "event")?;
    let run_id = get_str(event, "run_id")?.to_owned();
    get_str(event, "run")?;
    let seq = get_u64(event, "seq")?;

    let state = runs.entry(run_id).or_default();
    if seq != state.next_seq {
        return Err(format!("seq {seq}, expected {}", state.next_seq));
    }
    state.next_seq += 1;
    if state.completed {
        return Err("event after the terminal run_completed/run_aborted".to_owned());
    }
    match kind {
        "run_started" => {
            if state.started {
                return Err("duplicate run_started".to_owned());
            }
            state.started = true;
            state.claimed_iterations = Some(get_u64(event, "iterations")?);
            get_u64(event, "num_tables")?;
            get_u64(event, "dim")?;
            get_str(event, "schedule")?;
        }
        "iteration" => {
            if !state.started {
                return Err("iteration before run_started".to_owned());
            }
            let rec = IterationRecord::from_value(event)
                .map_err(|e| format!("not an IterationRecord: {e}"))?;
            // Committed iterations arrive in index order even when a
            // supervised run retried them out of wall-clock order.
            if rec.index as u64 != state.iteration_events {
                return Err(format!(
                    "iteration index {} out of order (expected {})",
                    rec.index, state.iteration_events
                ));
            }
            state.iteration_events += 1;
            state.hits += rec.hits;
            state.misses += rec.misses;
            let stage_names: Vec<&str> = match event.get("stage_nanos") {
                Some(Value::Map(entries)) if entries.len() == 5 => {
                    entries.iter().map(|(k, _)| k.as_str()).collect()
                }
                other => return Err(format!("stage_nanos: expected 5-stage map, got {other:?}")),
            };
            match event.get("stage_shards") {
                None => {}
                Some(Value::Map(entries)) => {
                    for (stage, shards) in entries {
                        if !stage_names.contains(&stage.as_str()) {
                            return Err(format!("stage_shards: unknown stage {stage:?}"));
                        }
                        match shards {
                            Value::Seq(items) if !items.is_empty() => {
                                if items.iter().any(|v| !matches!(v, Value::UInt(_))) {
                                    return Err(format!(
                                        "stage_shards.{stage}: non-integer shard nanos"
                                    ));
                                }
                            }
                            other => {
                                return Err(format!(
                                    "stage_shards.{stage}: expected non-empty seq, got {other:?}"
                                ))
                            }
                        }
                    }
                }
                other => return Err(format!("stage_shards: expected map, got {other:?}")),
            }
        }
        "run_completed" => {
            if !state.started {
                return Err("run_completed before run_started".to_owned());
            }
            state.completed = true;
            let n = get_u64(event, "iterations")?;
            if Some(n) != state.claimed_iterations {
                return Err(format!(
                    "run_completed.iterations {n} != run_started.iterations {:?}",
                    state.claimed_iterations
                ));
            }
            if n != state.iteration_events {
                return Err(format!(
                    "run_completed.iterations {n} != {} iteration events",
                    state.iteration_events
                ));
            }
            get_u64(event, "elapsed_ns")?;
            state.completed_hit_rate = Some(match event.get("hit_rate") {
                Some(Value::Float(x)) => *x,
                Some(Value::UInt(n)) => *n as f64,
                other => return Err(format!("hit_rate: expected number, got {other:?}")),
            });
        }
        "fault_injected" => {
            if !state.started {
                return Err("fault_injected before run_started".to_owned());
            }
            state.faults_injected += 1;
            get_u64(event, "iteration")?;
            get_u64(event, "attempt")?;
            get_str(event, "stage")?;
            get_u64(event, "shard")?;
            let kind = get_str(event, "kind")?;
            const KINDS: [&str; 4] = [
                "stage_error",
                "worker_panic",
                "slow_shard",
                "corrupt_payload",
            ];
            if !KINDS.contains(&kind) {
                return Err(format!("fault_injected: unknown fault kind {kind:?}"));
            }
        }
        "iteration_rolled_back" => {
            if !state.started {
                return Err("iteration_rolled_back before run_started".to_owned());
            }
            state.rollbacks += 1;
            get_u64(event, "iteration")?;
            get_u64(event, "attempt")?;
            get_str(event, "cause")?;
        }
        "stage_retried" => {
            state.retries += 1;
            get_u64(event, "iteration")?;
            get_u64(event, "attempt")?;
            get_str(event, "schedule")?;
        }
        "schedule_degraded" => {
            state.degradations += 1;
            get_u64(event, "iteration")?;
            let from = get_str(event, "from")?;
            let to = get_str(event, "to")?;
            if from == to {
                return Err(format!("schedule_degraded: from == to ({from:?})"));
            }
        }
        "run_aborted" => {
            if !state.started {
                return Err("run_aborted before run_started".to_owned());
            }
            state.completed = true;
            state.aborted = true;
            state.aborted_committed = Some(get_u64(event, "committed")?);
            get_u64(event, "iteration")?;
            get_u64(event, "attempts")?;
            get_str(event, "schedule")?;
            get_str(event, "cause")?;
        }
        other => return Err(format!("unknown event kind {other:?}")),
    }
    Ok(())
}

fn check_file(path: &str, faults_mode: bool) -> Result<(), Vec<String>> {
    let body = match std::fs::read_to_string(path) {
        Ok(b) => b,
        Err(e) => return Err(vec![format!("cannot read: {e}")]),
    };
    let mut errors = Vec::new();
    let mut runs: HashMap<String, RunState> = HashMap::new();
    for (i, line) in body.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        let event: Value = match serde_json::from_str(line) {
            Ok(v) => v,
            Err(e) => {
                errors.push(format!("line {}: invalid JSON: {e}", i + 1));
                continue;
            }
        };
        if let Err(e) = check_line(&event, &mut runs) {
            errors.push(format!("line {}: {e}", i + 1));
        }
    }
    if runs.is_empty() {
        errors.push("no audit events found".to_owned());
    }
    for (run_id, state) in &runs {
        if !state.completed {
            errors.push(format!(
                "run {run_id}: missing terminal run_completed/run_aborted"
            ));
            continue;
        }
        if state.aborted {
            // An aborted run audits exactly the committed prefix.
            let committed = state.aborted_committed.unwrap_or(u64::MAX);
            if state.iteration_events != committed {
                errors.push(format!(
                    "run {run_id}: {} iteration events != run_aborted.committed {committed}",
                    state.iteration_events
                ));
            }
        } else {
            let recomputed = if state.hits + state.misses > 0 {
                state.hits as f64 / (state.hits + state.misses) as f64
            } else {
                0.0
            };
            let claimed = state.completed_hit_rate.unwrap_or(f64::NAN);
            if (recomputed - claimed).abs() > 1e-9 {
                errors.push(format!(
                    "run {run_id}: recomputed hit rate {recomputed} != claimed {claimed}"
                ));
            }
        }
        // Every rollback must be answered by exactly one retry,
        // degradation or abort — the supervisor's decision invariant.
        let answered = state.retries + state.degradations + u64::from(state.aborted);
        if state.rollbacks != answered {
            errors.push(format!(
                "run {run_id}: {} rollbacks != {} retries + {} degradations + {} aborts",
                state.rollbacks,
                state.retries,
                state.degradations,
                u64::from(state.aborted)
            ));
        }
    }
    if faults_mode && !runs.is_empty() && runs.values().all(|s| s.faults_injected == 0) {
        errors.push("--faults: no fault_injected events in the file".to_owned());
    }
    if errors.is_empty() {
        Ok(())
    } else {
        Err(errors)
    }
}

fn get_f64(event: &Value, key: &str) -> Result<f64, String> {
    match event.get(key) {
        Some(Value::Float(x)) => Ok(*x),
        Some(Value::UInt(n)) => Ok(*n as f64),
        other => Err(format!("field {key}: expected number, got {other:?}")),
    }
}

/// Validates `BENCH_pipeline.json`: the `speedup_*_vs_sync` fields must
/// reproduce from the raw throughputs, `parallelism` must be ≥ 1, and
/// every `--parallel-floor <shape>:<ratio>` gate must hold.
fn check_bench(path: &str, floors: &[(String, f64)]) -> Result<(), Vec<String>> {
    let body = match std::fs::read_to_string(path) {
        Ok(b) => b,
        Err(e) => return Err(vec![format!("cannot read: {e}")]),
    };
    let report: Value = match serde_json::from_str(&body) {
        Ok(v) => v,
        Err(e) => return Err(vec![format!("invalid JSON: {e}")]),
    };
    let mut errors = Vec::new();
    let Some(Value::Seq(shapes)) = report.get("shapes") else {
        return Err(vec!["shapes: expected a sequence".to_owned()]);
    };
    let mut seen = Vec::new();
    for shape in shapes {
        let name = match get_str(shape, "name") {
            Ok(n) => n.to_owned(),
            Err(e) => {
                errors.push(e);
                continue;
            }
        };
        let checks = (|| -> Result<(), String> {
            let sync = get_f64(shape, "sync_iters_per_sec")?;
            let threaded = get_f64(shape, "threaded_iters_per_sec")?;
            let parallel = get_f64(shape, "parallel_iters_per_sec")?;
            let sp_threaded = get_f64(shape, "speedup_threaded_vs_sync")?;
            let sp_parallel = get_f64(shape, "speedup_parallel_vs_sync")?;
            if get_u64(shape, "parallelism")? < 1 {
                return Err("parallelism below 1".to_owned());
            }
            let rel = |claimed: f64, derived: f64| {
                (claimed - derived).abs() > 1e-6 * derived.abs().max(1e-12)
            };
            if rel(sp_threaded, threaded / sync) {
                return Err(format!(
                    "speedup_threaded_vs_sync {sp_threaded} != {threaded}/{sync}"
                ));
            }
            if rel(sp_parallel, parallel / sync) {
                return Err(format!(
                    "speedup_parallel_vs_sync {sp_parallel} != {parallel}/{sync}"
                ));
            }
            for (floor_shape, ratio) in floors {
                if *floor_shape == name && sp_parallel < *ratio {
                    return Err(format!(
                        "speedup_parallel_vs_sync {sp_parallel} below floor {ratio}"
                    ));
                }
            }
            Ok(())
        })();
        if let Err(e) = checks {
            errors.push(format!("shape {name}: {e}"));
        }
        seen.push(name);
    }
    for (floor_shape, _) in floors {
        if !seen.contains(floor_shape) {
            errors.push(format!(
                "--parallel-floor names shape {floor_shape}, not in the report"
            ));
        }
    }
    if errors.is_empty() {
        Ok(())
    } else {
        Err(errors)
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut paths = Vec::new();
    let mut bench_path = None;
    let mut faults_mode = false;
    let mut floors: Vec<(String, f64)> = Vec::new();
    let mut it = args.into_iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--faults" => faults_mode = true,
            "--bench" => match it.next() {
                Some(p) => bench_path = Some(p),
                None => {
                    eprintln!("--bench needs a path");
                    return ExitCode::FAILURE;
                }
            },
            "--parallel-floor" => {
                let Some(spec) = it.next() else {
                    eprintln!("--parallel-floor needs <shape>:<ratio>");
                    return ExitCode::FAILURE;
                };
                let Some((shape, ratio)) = spec.split_once(':') else {
                    eprintln!("--parallel-floor: malformed spec {spec:?}");
                    return ExitCode::FAILURE;
                };
                let Ok(ratio) = ratio.parse::<f64>() else {
                    eprintln!("--parallel-floor: bad ratio in {spec:?}");
                    return ExitCode::FAILURE;
                };
                floors.push((shape.to_owned(), ratio));
            }
            _ => paths.push(arg),
        }
    }
    if paths.is_empty() && bench_path.is_none() {
        eprintln!(
            "usage: audit_check [--faults] [--bench BENCH_pipeline.json] \
             [--parallel-floor shape:ratio] <audit.jsonl> [more.jsonl ...]"
        );
        return ExitCode::FAILURE;
    }
    if !floors.is_empty() && bench_path.is_none() {
        eprintln!("--parallel-floor requires --bench");
        return ExitCode::FAILURE;
    }
    let mut failed = false;
    let mut report = |path: &str, result: Result<(), Vec<String>>| match result {
        Ok(()) => println!("{path}: OK"),
        Err(errors) => {
            failed = true;
            eprintln!("{path}: {} violation(s)", errors.len());
            for e in &errors {
                eprintln!("  {e}");
            }
        }
    };
    for path in &paths {
        report(path, check_file(path, faults_mode));
    }
    if let Some(path) = &bench_path {
        report(path, check_bench(path, &floors));
    }
    if failed {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}
