//! Figure 12(b) — ScratchPipe's per-stage pipeline latency
//! (Plan / Collect / Exchange / Insert / Train) across localities and
//! cache sizes 2–10 %.
//!
//! Note the paper's point about scale: these bars live on a 0–70 ms axis
//! while Figure 12(a) needs 0–200 ms.

use sp_bench::{iterations, ms, ResultTable};
use systems::{run_system, ExperimentConfig, SystemKind};
use tracegen::LocalityProfile;

fn main() {
    let iters = iterations();
    let mut table = ResultTable::new(
        "Figure 12(b) — ScratchPipe per-stage pipeline latency (ms)",
        &[
            "locality",
            "cache",
            "Plan",
            "Collect",
            "Exchange",
            "Insert",
            "Train",
            "pipeline cycle",
            "hit rate",
        ],
    );

    for profile in LocalityProfile::SWEEP {
        for pct in [2usize, 4, 6, 8, 10] {
            let cfg = ExperimentConfig::paper(profile, pct as f64 / 100.0, iters);
            let report = run_system(SystemKind::ScratchPipe, &cfg).expect("simulation");
            let b = &report.breakdown;
            table.row(vec![
                profile.name().to_owned(),
                format!("{pct}%"),
                ms(b[0].1),
                ms(b[1].1),
                ms(b[2].1),
                ms(b[3].1),
                ms(b[4].1),
                ms(report.iteration_time),
                report
                    .hit_rate
                    .map(|h| format!("{:.0}%", 100.0 * h))
                    .unwrap_or_default(),
            ]);
        }
    }
    table.emit("fig12b_latency_scratchpipe");

    println!(
        "\nShape check: at high locality the GPU [Train] stage bounds the \
         pipeline; as locality falls, [Collect]/[Insert] (CPU) grow and take \
         over. Totals sit far below Figure 12(a)'s."
    );
}
