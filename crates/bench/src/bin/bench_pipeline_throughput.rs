//! Functional-pipeline throughput baseline — the repo's machine-readable
//! perf trajectory.
//!
//! Runs the *functional* ScratchPipe pipeline (real embedding rows moving
//! through the flat staging arenas, real SGD) at fixed shapes, under both
//! the synchronous driver ([`PipelineRuntime::run`]) and the per-stage
//! thread driver ([`run_threaded`]), and writes `BENCH_pipeline.json`:
//! iterations/second, bytes staged across PCIe, and the peak rows held
//! per table (the §VI-D working-set measurement).
//!
//! ```bash
//! cargo run --release -p sp-bench --bin bench_pipeline_throughput            # full
//! cargo run --release -p sp-bench --bin bench_pipeline_throughput -- --quick # CI
//! ```
//!
//! The JSON is an append-only perf contract: regressions in a PR show up
//! as a drop in `*_iters_per_sec` against the artifact of the previous
//! run, with everything else (shapes, seeds, trace) held fixed.

use std::time::Instant;

use embeddings::EmbeddingTable;
use scratchpipe::threaded::run_threaded;
use scratchpipe::{PipelineConfig, PipelineRuntime, UnitBackend};
use serde::Serialize;
use tracegen::{LocalityProfile, TraceConfig, TraceGenerator};

/// One fixed benchmark shape.
struct Shape {
    name: &'static str,
    num_tables: usize,
    rows_per_table: u64,
    dim: usize,
    lookups_per_sample: usize,
    batch_size: usize,
    slots_per_table: usize,
    /// Only run when not in `--quick` mode.
    full_only: bool,
}

const SHAPES: [Shape; 3] = [
    Shape {
        name: "small",
        num_tables: 4,
        rows_per_table: 20_000,
        dim: 16,
        lookups_per_sample: 4,
        batch_size: 64,
        slots_per_table: 2_000,
        full_only: false,
    },
    Shape {
        name: "medium",
        num_tables: 4,
        rows_per_table: 50_000,
        dim: 32,
        lookups_per_sample: 8,
        batch_size: 128,
        slots_per_table: 6_800,
        full_only: false,
    },
    Shape {
        name: "wide",
        num_tables: 8,
        rows_per_table: 100_000,
        dim: 32,
        lookups_per_sample: 8,
        batch_size: 256,
        slots_per_table: 13_500,
        full_only: true,
    },
];

#[derive(Debug, Serialize)]
struct ShapeResult {
    name: String,
    num_tables: usize,
    rows_per_table: u64,
    dim: usize,
    lookups_per_sample: usize,
    batch_size: usize,
    slots_per_table: usize,
    iterations: usize,
    sync_iters_per_sec: f64,
    threaded_iters_per_sec: f64,
    /// Total bytes staged across PCIe (fills + evictions) by the sync run.
    bytes_staged: u64,
    /// Max over tables of the peak held (non-evictable) slots.
    peak_rows_held: usize,
    hit_rate: f64,
}

#[derive(Debug, Serialize)]
struct BenchReport {
    bench: String,
    mode: String,
    shapes: Vec<ShapeResult>,
}

fn make_tables(shape: &Shape) -> Vec<EmbeddingTable> {
    (0..shape.num_tables)
        .map(|t| EmbeddingTable::seeded(shape.rows_per_table as usize, shape.dim, t as u64))
        .collect()
}

fn run_shape(shape: &Shape, iterations: usize) -> ShapeResult {
    let tc = TraceConfig {
        num_tables: shape.num_tables,
        rows_per_table: shape.rows_per_table,
        lookups_per_sample: shape.lookups_per_sample,
        batch_size: shape.batch_size,
        profile: LocalityProfile::Medium,
        seed: 0xBE_AC,
    };
    let batches = TraceGenerator::new(tc).take_batches(iterations);

    // Synchronous driver.
    let mut rt = PipelineRuntime::new(
        PipelineConfig::functional(shape.dim, shape.slots_per_table),
        make_tables(shape),
        UnitBackend::new(0.01),
    )
    .expect("runtime");
    let t0 = Instant::now();
    let report = rt.run(&batches).expect("sync run");
    let sync_secs = t0.elapsed().as_secs_f64();

    // Per-stage thread driver, same trace and shape.
    let t0 = Instant::now();
    let (_, threaded_report) = run_threaded(
        PipelineConfig::functional(shape.dim, shape.slots_per_table),
        make_tables(shape),
        UnitBackend::new(0.01),
        &batches,
    )
    .expect("threaded run");
    let threaded_secs = t0.elapsed().as_secs_f64();
    assert_eq!(threaded_report.iterations, iterations);

    let exchange = report.total_traffic().exchange;
    ShapeResult {
        name: shape.name.to_owned(),
        num_tables: shape.num_tables,
        rows_per_table: shape.rows_per_table,
        dim: shape.dim,
        lookups_per_sample: shape.lookups_per_sample,
        batch_size: shape.batch_size,
        slots_per_table: shape.slots_per_table,
        iterations,
        sync_iters_per_sec: iterations as f64 / sync_secs,
        threaded_iters_per_sec: iterations as f64 / threaded_secs,
        bytes_staged: exchange.pcie_h2d_bytes + exchange.pcie_d2h_bytes,
        peak_rows_held: report.peak_held_slots.iter().copied().max().unwrap_or(0),
        hit_rate: report.hit_rate(),
    }
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let quick = args.iter().any(|a| a == "--quick");
    let out_path = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1).cloned())
        .unwrap_or_else(|| "BENCH_pipeline.json".to_owned());
    let iterations = if quick { 24 } else { 120 };

    let mut shapes = Vec::new();
    println!(
        "{:<8} {:>6} {:>14} {:>18} {:>14} {:>10}",
        "shape", "iters", "sync it/s", "threaded it/s", "staged MiB", "peak rows"
    );
    for shape in &SHAPES {
        if shape.full_only && quick {
            continue;
        }
        let r = run_shape(shape, iterations);
        println!(
            "{:<8} {:>6} {:>14.1} {:>18.1} {:>14.2} {:>10}",
            r.name,
            r.iterations,
            r.sync_iters_per_sec,
            r.threaded_iters_per_sec,
            r.bytes_staged as f64 / (1024.0 * 1024.0),
            r.peak_rows_held
        );
        shapes.push(r);
    }

    let report = BenchReport {
        bench: "pipeline_throughput".to_owned(),
        mode: if quick { "quick" } else { "full" }.to_owned(),
        shapes,
    };
    let json = serde_json::to_string(&report).expect("serialize");
    std::fs::write(&out_path, &json).expect("write BENCH_pipeline.json");
    println!("\nwrote {out_path}");
}
