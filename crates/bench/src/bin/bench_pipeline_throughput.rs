//! Functional-pipeline throughput baseline — the repo's machine-readable
//! perf trajectory.
//!
//! Runs the *functional* ScratchPipe pipeline (real embedding rows moving
//! through the flat staging arenas, real SGD) at fixed shapes, under the
//! synchronous, per-stage-thread and intra-stage data-parallel schedules
//! of the single [`Pipeline`] driver, and writes `BENCH_pipeline.json`:
//! iterations per second per schedule, the explicit speedup ratios over
//! sync, bytes staged across PCIe, and the peak rows held per table (the
//! §VI-D working-set measurement).
//!
//! Every run attaches an audit sink, and **every reported number is
//! parsed back out of the audit JSONL stream** rather than read from the
//! in-process `PipelineReport` — the benchmark doubles as an end-to-end
//! test that the audit log alone reproduces the perf numbers.
//!
//! ```bash
//! cargo run --release -p sp-bench --bin bench_pipeline_throughput            # full
//! cargo run --release -p sp-bench --bin bench_pipeline_throughput -- --quick # CI
//! cargo run --release -p sp-bench --bin bench_pipeline_throughput -- \
//!     --quick --audit BENCH_pipeline_audit.jsonl \
//!     --audit-parallel BENCH_pipeline_audit_parallel.jsonl                   # + JSONL
//! cargo run --release -p sp-bench --bin bench_pipeline_throughput -- \
//!     --quick --trace trace.json --metrics METRICS.json --prom metrics.prom  # + telemetry
//! ```
//!
//! `--trace` / `--metrics` / `--prom` attach one shared [`Telemetry`]
//! collector to every run and write its Chrome trace, `METRICS.json`
//! and Prometheus snapshots (inputs to `trace_report` and
//! `audit_check --metrics`); without those flags the bench runs
//! un-instrumented. The report's `host` envelope records the machine
//! (CPU count, default pool width, rustc version, quick/full mode) the
//! numbers came from.
//!
//! The JSON is an append-only perf contract: regressions in a PR show up
//! as a drop in `*_iters_per_sec` against the artifact of the previous
//! run, with everything else (shapes, seeds, trace) held fixed. The
//! `auto_schedule` field records which schedule [`Schedule::Auto`] picks
//! for the shape: small shapes fall back to the synchronous driver, whose
//! per-iteration work is too little to amortize thread handoff, and large
//! shapes upgrade to data-parallel when the worker pool is wider than one
//! thread. The `speedup_*_vs_sync` fields are derived from the same
//! audit-sourced throughputs (`audit_check --bench` re-verifies the
//! arithmetic), and `parallelism` records the worker-pool width the
//! data-parallel run actually used — on a single-core host it is 1 and
//! the data-parallel schedule degrades to the sync register pipeline.

use embeddings::EmbeddingTable;
use scratchpipe::{
    MemorySink, Pipeline, PipelineConfig, Schedule, StageTraffic, Telemetry, UnitBackend,
    WorkerPool,
};
use serde::{Deserialize as _, Serialize, Value};
use tracegen::{LocalityProfile, TraceConfig, TraceGenerator};

/// One fixed benchmark shape.
struct Shape {
    name: &'static str,
    num_tables: usize,
    rows_per_table: u64,
    dim: usize,
    lookups_per_sample: usize,
    batch_size: usize,
    slots_per_table: usize,
    /// Only run when not in `--quick` mode.
    full_only: bool,
}

const SHAPES: [Shape; 3] = [
    Shape {
        name: "small",
        num_tables: 4,
        rows_per_table: 20_000,
        dim: 16,
        lookups_per_sample: 4,
        batch_size: 64,
        slots_per_table: 2_000,
        full_only: false,
    },
    Shape {
        name: "medium",
        num_tables: 4,
        rows_per_table: 50_000,
        dim: 32,
        lookups_per_sample: 8,
        batch_size: 128,
        slots_per_table: 6_800,
        full_only: false,
    },
    Shape {
        name: "wide",
        num_tables: 8,
        rows_per_table: 100_000,
        dim: 32,
        lookups_per_sample: 8,
        batch_size: 256,
        slots_per_table: 13_500,
        full_only: true,
    },
];

#[derive(Debug, Serialize)]
struct ShapeResult {
    name: String,
    num_tables: usize,
    rows_per_table: u64,
    dim: usize,
    lookups_per_sample: usize,
    batch_size: usize,
    slots_per_table: usize,
    iterations: usize,
    sync_iters_per_sec: f64,
    threaded_iters_per_sec: f64,
    /// Throughput of `Schedule::DataParallel` at the pool width below.
    parallel_iters_per_sec: f64,
    /// Worker-pool width the data-parallel run used (machine-dependent:
    /// the available parallelism of the benchmarking host).
    parallelism: usize,
    /// `threaded_iters_per_sec / sync_iters_per_sec`.
    speedup_threaded_vs_sync: f64,
    /// `parallel_iters_per_sec / sync_iters_per_sec`.
    speedup_parallel_vs_sync: f64,
    /// Which schedule `Schedule::Auto` resolves to for this shape.
    auto_schedule: String,
    /// Throughput of the schedule `Auto` picks (one of the above).
    auto_iters_per_sec: f64,
    /// Total bytes staged across PCIe (fills + evictions) by the sync run.
    bytes_staged: u64,
    /// Unique-to-raw lookup ratio of the sync run: Σ unique rows per
    /// (table, batch) / Σ raw lookups. Below 1.0 the trace repeats IDs
    /// within batches and the Plan-time dedup pays off.
    unique_lookup_ratio: f64,
    /// Bytes the deduplicated hot path moves host-to-device in total:
    /// the Plan-stage compact index upload (4 bytes per unique slot + 4
    /// per raw-lookup index) plus the staged fill/eviction rows above.
    /// `audit_check --bench` re-derives this from the audit stream and
    /// fails if the dedup accounting disagrees.
    bytes_staged_dedup: u64,
    /// Max over tables of the peak held (non-evictable) slots.
    peak_rows_held: usize,
    hit_rate: f64,
}

/// The machine the numbers came from — perf artifacts are meaningless
/// without it. `rustc` falls back to `"unknown"` when the compiler is
/// not on PATH at bench time (the artifact must still be writable).
#[derive(Debug, Serialize)]
struct HostEnvelope {
    /// `std::thread::available_parallelism` (1 if undeterminable).
    cpus: usize,
    /// Width of the machine-sized [`WorkerPool::auto`] the data-parallel
    /// schedule defaults to.
    pool_parallelism: usize,
    /// `rustc --version` of the toolchain on PATH, or `"unknown"`.
    rustc: String,
    /// `"quick"` (CI) or `"full"` — how many iterations backed the run.
    mode: String,
}

fn host_envelope(quick: bool) -> HostEnvelope {
    let rustc = std::process::Command::new("rustc")
        .arg("--version")
        .output()
        .ok()
        .filter(|o| o.status.success())
        .and_then(|o| String::from_utf8(o.stdout).ok())
        .map(|v| v.trim().to_owned())
        .filter(|v| !v.is_empty())
        .unwrap_or_else(|| "unknown".to_owned());
    HostEnvelope {
        cpus: std::thread::available_parallelism()
            .map(std::num::NonZeroUsize::get)
            .unwrap_or(1),
        pool_parallelism: WorkerPool::auto().threads(),
        rustc,
        mode: if quick { "quick" } else { "full" }.to_owned(),
    }
}

#[derive(Debug, Serialize)]
struct BenchReport {
    bench: String,
    mode: String,
    host: HostEnvelope,
    shapes: Vec<ShapeResult>,
}

/// Everything one audit stream tells us about its run.
struct AuditNumbers {
    iterations: u64,
    elapsed_ns: u64,
    bytes_staged: u64,
    /// Σ over iteration events of the Plan stage's PCIe H2D bytes (the
    /// compact dedup-index upload).
    plan_h2d_bytes: u64,
    /// Σ raw lookups across iterations.
    total_lookups: u64,
    /// Σ unique rows per (table, batch) across iterations.
    unique_rows: u64,
    peak_rows_held: usize,
    hit_rate: f64,
}

fn field_u64(event: &Value, key: &str) -> u64 {
    match event.get(key) {
        Some(Value::UInt(n)) => *n,
        other => panic!("audit field {key}: expected UInt, got {other:?}"),
    }
}

fn field_f64(event: &Value, key: &str) -> f64 {
    match event.get(key) {
        Some(Value::Float(x)) => *x,
        Some(Value::UInt(n)) => *n as f64,
        other => panic!("audit field {key}: expected number, got {other:?}"),
    }
}

/// Reconstructs the benchmark numbers from the audit JSONL alone.
fn parse_audit(lines: &[String]) -> AuditNumbers {
    let mut bytes_staged = 0u64;
    let mut plan_h2d_bytes = 0u64;
    let mut total_lookups = 0u64;
    let mut unique_rows = 0u64;
    let mut completed = None;
    for line in lines {
        let event: Value = serde_json::from_str(line).expect("audit line parses");
        match event.get("event") {
            Some(Value::Str(kind)) if kind == "iteration" => {
                let traffic = event.get("traffic").expect("iteration.traffic");
                let st = StageTraffic::from_value(traffic).expect("StageTraffic");
                bytes_staged += st.exchange.pcie_h2d_bytes + st.exchange.pcie_d2h_bytes;
                plan_h2d_bytes += st.plan.pcie_h2d_bytes;
                total_lookups += field_u64(&event, "total_lookups");
                unique_rows += field_u64(&event, "unique_rows");
            }
            Some(Value::Str(kind)) if kind == "run_completed" => {
                let peak = match event.get("peak_held_slots") {
                    Some(Value::Seq(items)) => items
                        .iter()
                        .map(|v| match v {
                            Value::UInt(n) => *n as usize,
                            other => panic!("peak_held_slots entry: {other:?}"),
                        })
                        .max()
                        .unwrap_or(0),
                    other => panic!("peak_held_slots: expected Seq, got {other:?}"),
                };
                completed = Some(AuditNumbers {
                    iterations: field_u64(&event, "iterations"),
                    elapsed_ns: field_u64(&event, "elapsed_ns"),
                    bytes_staged: 0,
                    plan_h2d_bytes: 0,
                    total_lookups: 0,
                    unique_rows: 0,
                    peak_rows_held: peak,
                    hit_rate: field_f64(&event, "hit_rate"),
                });
            }
            _ => {}
        }
    }
    let mut numbers = completed.expect("audit stream has run_completed");
    numbers.bytes_staged = bytes_staged;
    numbers.plan_h2d_bytes = plan_h2d_bytes;
    numbers.total_lookups = total_lookups;
    numbers.unique_rows = unique_rows;
    numbers
}

fn make_tables(shape: &Shape) -> Vec<EmbeddingTable> {
    (0..shape.num_tables)
        .map(|t| EmbeddingTable::seeded(shape.rows_per_table as usize, shape.dim, t as u64))
        .collect()
}

/// Runs one shape under `schedule` and returns the audit-derived numbers
/// plus the raw audit lines.
fn run_schedule(
    shape: &Shape,
    batches: &[embeddings::SparseBatch],
    schedule: Schedule,
    telemetry: Option<&Telemetry>,
) -> (AuditNumbers, Vec<String>) {
    let sink = MemorySink::new();
    let mut builder = Pipeline::builder()
        .config(PipelineConfig::functional(shape.dim, shape.slots_per_table))
        .tables(make_tables(shape))
        .backend(UnitBackend::new(0.01))
        .schedule(schedule)
        .audit(sink.clone())
        .named(&format!("bench-{}-{}", shape.name, schedule.name()));
    if let Some(t) = telemetry {
        builder = builder.telemetry(t.clone());
    }
    let mut rt = builder.build().expect("pipeline");
    rt.run(batches).expect("run");
    let lines = sink.lines();
    (parse_audit(&lines), lines)
}

fn run_shape(
    shape: &Shape,
    iterations: usize,
    telemetry: Option<&Telemetry>,
    audit_lines: &mut Vec<String>,
    parallel_lines: &mut Vec<String>,
) -> ShapeResult {
    let tc = TraceConfig {
        num_tables: shape.num_tables,
        rows_per_table: shape.rows_per_table,
        lookups_per_sample: shape.lookups_per_sample,
        batch_size: shape.batch_size,
        profile: LocalityProfile::Medium,
        seed: 0xBE_AC,
    };
    let batches = TraceGenerator::new(tc).take_batches(iterations);

    let (sync, sync_log) = run_schedule(shape, &batches, Schedule::Sync, telemetry);
    let (threaded, threaded_log) = run_schedule(shape, &batches, Schedule::Threaded, telemetry);
    let (parallel, parallel_log) = run_schedule(shape, &batches, Schedule::DataParallel, telemetry);
    assert_eq!(sync.iterations as usize, iterations);
    assert_eq!(threaded.iterations as usize, iterations);
    assert_eq!(parallel.iterations as usize, iterations);
    audit_lines.extend(sync_log);
    audit_lines.extend(threaded_log);
    parallel_lines.extend(parallel_log);

    // What would `Schedule::Auto` have picked for this shape, and how
    // wide is the default (machine-sized) worker pool?
    let auto_probe = Pipeline::builder()
        .config(PipelineConfig::functional(shape.dim, shape.slots_per_table))
        .tables(make_tables(shape))
        .backend(UnitBackend::new(0.01))
        .schedule(Schedule::Auto)
        .build()
        .expect("pipeline");
    let resolved = auto_probe.effective_schedule(&batches).expect("resolve");
    let parallelism = auto_probe.workers().threads();

    let sync_ips = iterations as f64 / (sync.elapsed_ns as f64 / 1e9);
    let threaded_ips = iterations as f64 / (threaded.elapsed_ns as f64 / 1e9);
    let parallel_ips = iterations as f64 / (parallel.elapsed_ns as f64 / 1e9);
    ShapeResult {
        name: shape.name.to_owned(),
        num_tables: shape.num_tables,
        rows_per_table: shape.rows_per_table,
        dim: shape.dim,
        lookups_per_sample: shape.lookups_per_sample,
        batch_size: shape.batch_size,
        slots_per_table: shape.slots_per_table,
        iterations,
        sync_iters_per_sec: sync_ips,
        threaded_iters_per_sec: threaded_ips,
        parallel_iters_per_sec: parallel_ips,
        parallelism,
        speedup_threaded_vs_sync: threaded_ips / sync_ips,
        speedup_parallel_vs_sync: parallel_ips / sync_ips,
        auto_schedule: resolved.name().to_owned(),
        auto_iters_per_sec: match resolved {
            Schedule::Threaded => threaded_ips,
            Schedule::DataParallel => parallel_ips,
            _ => sync_ips,
        },
        bytes_staged: sync.bytes_staged,
        unique_lookup_ratio: sync.unique_rows as f64 / sync.total_lookups as f64,
        bytes_staged_dedup: sync.plan_h2d_bytes + sync.bytes_staged,
        peak_rows_held: sync.peak_rows_held,
        hit_rate: sync.hit_rate,
    }
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let quick = args.iter().any(|a| a == "--quick");
    let out_path = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1).cloned())
        .unwrap_or_else(|| "BENCH_pipeline.json".to_owned());
    let audit_path = args
        .iter()
        .position(|a| a == "--audit")
        .and_then(|i| args.get(i + 1).cloned());
    let parallel_audit_path = args
        .iter()
        .position(|a| a == "--audit-parallel")
        .and_then(|i| args.get(i + 1).cloned());
    let flag_path = |flag: &str| {
        args.iter()
            .position(|a| a == flag)
            .and_then(|i| args.get(i + 1).cloned())
    };
    let trace_path = flag_path("--trace");
    let metrics_path = flag_path("--metrics");
    let prom_path = flag_path("--prom");
    let iterations = if quick { 24 } else { 120 };
    // One shared collector across every shape and schedule, so the trace
    // renders each `bench-{shape}-{schedule}` run as its own process and
    // METRICS.json joins to the audit JSONL on those labels. Only
    // attached when an output was requested: the default bench stays
    // un-instrumented.
    let telemetry = (trace_path.is_some() || metrics_path.is_some() || prom_path.is_some())
        .then(Telemetry::new);

    let mut shapes = Vec::new();
    let mut audit_lines = Vec::new();
    let mut parallel_lines = Vec::new();
    println!(
        "{:<8} {:>6} {:>12} {:>14} {:>14} {:>13} {:>12} {:>10}",
        "shape",
        "iters",
        "sync it/s",
        "threaded it/s",
        "parallel it/s",
        "auto",
        "staged MiB",
        "peak rows"
    );
    for shape in &SHAPES {
        if shape.full_only && quick {
            continue;
        }
        let r = run_shape(
            shape,
            iterations,
            telemetry.as_ref(),
            &mut audit_lines,
            &mut parallel_lines,
        );
        println!(
            "{:<8} {:>6} {:>12.1} {:>14.1} {:>14.1} {:>13} {:>12.2} {:>10}",
            r.name,
            r.iterations,
            r.sync_iters_per_sec,
            r.threaded_iters_per_sec,
            r.parallel_iters_per_sec,
            r.auto_schedule,
            r.bytes_staged as f64 / (1024.0 * 1024.0),
            r.peak_rows_held
        );
        shapes.push(r);
    }

    let report = BenchReport {
        bench: "pipeline_throughput".to_owned(),
        mode: if quick { "quick" } else { "full" }.to_owned(),
        host: host_envelope(quick),
        shapes,
    };
    let json = serde_json::to_string(&report).expect("serialize");
    std::fs::write(&out_path, &json).expect("write BENCH_pipeline.json");
    println!("\nwrote {out_path}");
    if let Some(path) = audit_path {
        let mut body = audit_lines.join("\n");
        body.push('\n');
        std::fs::write(&path, body).expect("write audit JSONL");
        println!("wrote {path} ({} events)", audit_lines.len());
    }
    if let Some(path) = parallel_audit_path {
        let mut body = parallel_lines.join("\n");
        body.push('\n');
        std::fs::write(&path, body).expect("write parallel audit JSONL");
        println!("wrote {path} ({} events)", parallel_lines.len());
    }
    if let Some(tel) = &telemetry {
        if let Some(path) = &trace_path {
            tel.write_chrome_trace(path).expect("write trace.json");
            println!("wrote {path}");
        }
        if let Some(path) = &metrics_path {
            tel.write_metrics_json(path).expect("write METRICS.json");
            println!("wrote {path}");
        }
        if let Some(path) = &prom_path {
            tel.write_prometheus(path).expect("write Prometheus text");
            println!("wrote {path}");
        }
    }
}
