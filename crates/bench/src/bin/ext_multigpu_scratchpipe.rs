//! §VI-G extension — the quantitative evaluation the paper leaves as
//! future work: ScratchPipe scaled table-wise across 8 GPUs, vs the
//! single-GPU design and the GPU-only comparator, in time *and* TCO.

use memsim::{InstanceSpec, SystemSpec, TrainingCost};
use sp_bench::{iterations, ms, ResultTable};
use systems::report::TrainingSystem;
use systems::{run_system, ExperimentConfig, ModelShape, ScratchPipeMultiGpu, SystemKind};
use tracegen::{LocalityProfile, TraceGenerator};

fn main() {
    let iters = iterations();
    let mut table = ResultTable::new(
        "§VI-G extension — ScratchPipe on 8 GPUs vs 1 GPU vs GPU-only (2% cache)",
        &[
            "locality",
            "system",
            "iter (ms)",
            "speedup vs 1-GPU SP",
            "1M-iter cost",
            "cost vs 1-GPU SP",
        ],
    );

    for profile in LocalityProfile::SWEEP {
        let cfg = ExperimentConfig::paper(profile, 0.02, iters);
        let single = run_system(SystemKind::ScratchPipe, &cfg).expect("single-GPU SP");
        let gpu_only = run_system(SystemKind::MultiGpu8, &cfg).expect("GPU-only");

        let shape = ModelShape::paper_default();
        let mut multi =
            ScratchPipeMultiGpu::new(shape.clone(), cfg.cache_fraction, SystemSpec::p3_16xlarge());
        let slots = multi.slots_per_table() as u64;
        let gen = TraceGenerator::new(shape.trace_config(profile, cfg.seed));
        let hot: Vec<Vec<u64>> = (0..shape.num_tables)
            .map(|t| gen.hot_rows(t, slots))
            .collect();
        multi = multi.with_prewarm(hot);
        let multi_r = multi.simulate(&cfg.batches()).expect("multi-GPU SP");

        let single_cost =
            TrainingCost::per_million_iterations(InstanceSpec::p3_2xlarge(), single.iteration_time);
        for (report, instance) in [
            (&single, InstanceSpec::p3_2xlarge()),
            (&multi_r, InstanceSpec::p3_16xlarge()),
            (&gpu_only, InstanceSpec::p3_16xlarge()),
        ] {
            let cost = TrainingCost::per_million_iterations(instance, report.iteration_time);
            table.row(vec![
                profile.name().to_owned(),
                report.system.clone(),
                ms(report.iteration_time),
                format!("{:.2}x", single.iteration_time / report.iteration_time),
                format!("${:.2}", cost.total_usd),
                format!("{:.2}x", cost.total_usd / single_cost.total_usd),
            ]);
        }
    }
    table.emit("ext_multigpu_scratchpipe");

    println!(
        "\nShape check (§VI-G): multi-GPU ScratchPipe helps only where the \
         Train stage was the bottleneck (high locality) and costs 8x the \
         hourly rate everywhere — the single-GPU design point remains the \
         TCO winner, as the paper's discussion predicts."
    );
}
