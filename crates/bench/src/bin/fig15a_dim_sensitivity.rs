//! Figure 15(a) — sensitivity to the embedding vector dimension
//! (64 / 128 / 256), speedups normalized to static cache at 2 %.
//!
//! Paper's takeaway: larger embeddings raise memory-bandwidth pressure,
//! so ScratchPipe's advantage *grows* with dimension.

use sp_bench::{iterations, speedup, ResultTable};
use systems::{run_system, ExperimentConfig, ModelShape, SystemKind};
use tracegen::LocalityProfile;

fn main() {
    let iters = iterations();
    let mut table = ResultTable::new(
        "Figure 15(a) — speedup vs static cache across embedding dimensions",
        &[
            "locality",
            "dim",
            "Hybrid CPU-GPU",
            "Static cache",
            "Straw-man",
            "ScratchPipe",
        ],
    );

    let mut sp_by_dim: Vec<(usize, f64)> = Vec::new();
    for profile in LocalityProfile::SWEEP {
        for dim in [64usize, 128, 256] {
            let mut cfg = ExperimentConfig::paper(profile, 0.02, iters);
            cfg.shape = ModelShape::paper_with_dim(dim);
            let reports: Vec<_> = SystemKind::FIGURE13
                .iter()
                .map(|&k| run_system(k, &cfg).expect("simulation"))
                .collect();
            let static_time = reports[1].iteration_time;
            sp_by_dim.push((dim, static_time / reports[3].iteration_time));
            table.row(vec![
                profile.name().to_owned(),
                dim.to_string(),
                speedup(static_time / reports[0].iteration_time),
                speedup(1.0),
                speedup(static_time / reports[2].iteration_time),
                speedup(static_time / reports[3].iteration_time),
            ]);
        }
    }
    table.emit("fig15a_dim_sensitivity");

    let mean_for = |d: usize| {
        let v: Vec<f64> = sp_by_dim
            .iter()
            .filter(|&&(dd, _)| dd == d)
            .map(|&(_, s)| s)
            .collect();
        v.iter().sum::<f64>() / v.len() as f64
    };
    println!(
        "\nShape check: mean ScratchPipe speedup grows with dimension: \
         64d {:.2}x → 128d {:.2}x → 256d {:.2}x (paper: larger dims → larger gains)",
        mean_for(64),
        mean_for(128),
        mean_for(256)
    );
}
