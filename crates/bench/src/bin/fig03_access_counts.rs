//! Figure 3 — (sorted) access counts of embedding-table entries for the
//! four dataset models (Alibaba, Kaggle Anime, MovieLens, Criteo).
//!
//! The paper's characterization: every dataset follows a power law with a
//! long tail, but the *steepness* varies by an order of magnitude. We
//! sample each dataset model's first table, sort per-row access counts
//! descending, and report the count at logarithmically spaced ranks plus
//! the top-2 % traffic share (the paper's quoted anchor metric).

use rand::rngs::StdRng;
use rand::SeedableRng;
use sp_bench::ResultTable;
use tracegen::{AccessHistogram, DatasetModel, Scrambler, ZipfSampler};

fn main() {
    let draws_per_table = 2_000_000usize;
    let mut table = ResultTable::new(
        "Figure 3 — sorted access counts (first table of each dataset model)",
        &[
            "dataset",
            "table",
            "rows",
            "zipf s",
            "rank 1",
            "rank 10",
            "rank 100",
            "rank 10k",
            "median",
            "top-2% share",
        ],
    );

    for dataset in DatasetModel::all() {
        let profile = &dataset.tables[0];
        let sampler = ZipfSampler::new(profile.rows, profile.zipf_exponent);
        let scrambler = Scrambler::new(profile.rows, 7);
        let mut rng = StdRng::seed_from_u64(42);
        let mut hist = AccessHistogram::new(profile.rows);
        for _ in 0..draws_per_table {
            hist.record(scrambler.apply(sampler.sample(&mut rng)));
        }
        let sorted = hist.sorted_counts();
        let at = |rank: usize| sorted.get(rank).copied().unwrap_or(0).to_string();
        table.row(vec![
            dataset.name.clone(),
            profile.name.clone(),
            profile.rows.to_string(),
            format!("{:.2}", profile.zipf_exponent),
            at(0),
            at(9),
            at(99),
            at(9_999),
            at(sorted.len() / 2),
            format!("{:.1}%", 100.0 * hist.top_fraction_share(0.02)),
        ]);
    }
    table.emit("fig03_access_counts");

    println!(
        "\nShape check: every dataset is head-heavy with a long tail; Criteo's \
         top-2% share is the largest, Alibaba-User's the smallest (paper §III-A \
         quotes >80% and 8.5%)."
    );
}
