//! Figure 13 — end-to-end speedup of all four design points, normalized
//! to the static cache (the paper's presentation), across localities and
//! cache sizes 2–10 %.
//!
//! Paper headline: ScratchPipe averages 2.8× (max 4.2×) over static
//! caching and 5.1× (max 6.6×) over the no-cache hybrid; gains shrink as
//! locality rises but stay ≥1.6×.

use sp_bench::{iterations, ms, speedup, ResultTable};
use systems::{run_system, ExperimentConfig, SystemKind};
use tracegen::LocalityProfile;

fn main() {
    let iters = iterations();
    let mut table = ResultTable::new(
        "Figure 13 — speedup normalized to static cache",
        &[
            "locality",
            "cache",
            "Hybrid CPU-GPU",
            "Static cache",
            "Straw-man",
            "ScratchPipe",
            "static (ms)",
            "ScratchPipe (ms)",
        ],
    );

    let mut sp_vs_static = Vec::new();
    let mut sp_vs_hybrid = Vec::new();

    for profile in LocalityProfile::SWEEP {
        for pct in [2usize, 4, 6, 8, 10] {
            let cfg = ExperimentConfig::paper(profile, pct as f64 / 100.0, iters);
            let reports: Vec<_> = SystemKind::FIGURE13
                .iter()
                .map(|&k| run_system(k, &cfg).expect("simulation"))
                .collect();
            let static_time = reports[1].iteration_time;
            let cells: Vec<String> = reports
                .iter()
                .map(|r| speedup(static_time / r.iteration_time))
                .collect();
            sp_vs_static.push(static_time / reports[3].iteration_time);
            sp_vs_hybrid.push(reports[0].iteration_time / reports[3].iteration_time);
            table.row(vec![
                profile.name().to_owned(),
                format!("{pct}%"),
                cells[0].clone(),
                cells[1].clone(),
                cells[2].clone(),
                cells[3].clone(),
                ms(static_time),
                ms(reports[3].iteration_time),
            ]);
        }
    }
    table.emit("fig13_speedup");

    let avg = |v: &[f64]| v.iter().sum::<f64>() / v.len() as f64;
    let max = |v: &[f64]| v.iter().cloned().fold(0.0f64, f64::max);
    println!(
        "\nSummary: ScratchPipe vs static cache: avg {:.2}x, max {:.2}x \
         (paper: avg 2.8x, max 4.2x)",
        avg(&sp_vs_static),
        max(&sp_vs_static)
    );
    println!(
        "         ScratchPipe vs hybrid:       avg {:.2}x, max {:.2}x \
         (paper: avg 5.1x, max 6.6x)",
        avg(&sp_vs_hybrid),
        max(&sp_vs_hybrid)
    );
}
