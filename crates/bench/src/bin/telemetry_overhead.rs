//! Telemetry overhead gate — proof that observing the pipeline is
//! close to free.
//!
//! Runs the same functional pipeline shape repeatedly in **alternating
//! A/B pairs** — one run without a telemetry handle, one with a fresh
//! [`Telemetry`] collector attached — and compares the median wall-clock
//! of the two arms. Alternation cancels slow drift (thermal, cache,
//! scheduler) that would bias a run-all-A-then-all-B design; the median
//! shrugs off stray outlier trials. The gate fails (non-zero exit) when
//! the enabled arm's median exceeds the disabled arm's by more than
//! `--max-overhead` (default 2%).
//!
//! The **disabled** side of the contract is structural, not measured: a
//! pipeline without a handle pays exactly one `Option` check per hook —
//! the same pattern as fault injection — so the disabled arm *is* the
//! pre-telemetry code path. What this bench bounds is the **enabled**
//! side: span pushes, histogram observations and the shard-region
//! arithmetic, all of it off the mutex except one lock per record.
//!
//! Writes `TELEMETRY_overhead.json` with both arms' raw trial times so a
//! regression is diagnosable from the artifact alone.
//!
//! ```bash
//! cargo run --release -p sp-bench --bin telemetry_overhead -- --quick
//! cargo run --release -p sp-bench --bin telemetry_overhead -- --max-overhead 0.02
//! ```

use std::process::ExitCode;
use std::time::Instant;

use embeddings::EmbeddingTable;
use scratchpipe::{Pipeline, PipelineConfig, Schedule, Telemetry, UnitBackend};
use serde::Serialize;
use tracegen::{LocalityProfile, TraceConfig, TraceGenerator};

const NUM_TABLES: usize = 4;
const ROWS_PER_TABLE: u64 = 50_000;
const DIM: usize = 32;
const SLOTS_PER_TABLE: usize = 6_800;

#[derive(Debug, Serialize)]
struct OverheadReport {
    bench: String,
    mode: String,
    schedule: String,
    iterations: usize,
    trials: usize,
    disabled_ns: Vec<u64>,
    enabled_ns: Vec<u64>,
    disabled_median_ns: u64,
    enabled_median_ns: u64,
    /// `enabled_median / disabled_median - 1` (negative = in the noise).
    overhead_frac: f64,
    max_overhead: f64,
    pass: bool,
}

fn median(samples: &[u64]) -> u64 {
    let mut sorted = samples.to_vec();
    sorted.sort_unstable();
    sorted[sorted.len() / 2]
}

/// One timed run over `batches`; only `run()` is measured — building the
/// pipeline (table seeding, arena allocation) is setup, not pipeline.
fn timed_run(batches: &[embeddings::SparseBatch], telemetry: Option<&Telemetry>) -> u64 {
    let tables: Vec<EmbeddingTable> = (0..NUM_TABLES)
        .map(|t| EmbeddingTable::seeded(ROWS_PER_TABLE as usize, DIM, t as u64))
        .collect();
    let mut builder = Pipeline::builder()
        .config(PipelineConfig::functional(DIM, SLOTS_PER_TABLE))
        .tables(tables)
        .backend(UnitBackend::new(0.01))
        .schedule(Schedule::Sync)
        .named("telemetry-overhead");
    if let Some(t) = telemetry {
        builder = builder.telemetry(t.clone());
    }
    let mut rt = builder.build().expect("pipeline");
    let t0 = Instant::now();
    rt.run(batches).expect("run");
    t0.elapsed().as_nanos() as u64
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().collect();
    let quick = args.iter().any(|a| a == "--quick");
    let out_path = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1).cloned())
        .unwrap_or_else(|| "TELEMETRY_overhead.json".to_owned());
    let max_overhead = args
        .iter()
        .position(|a| a == "--max-overhead")
        .and_then(|i| args.get(i + 1)?.parse::<f64>().ok())
        .unwrap_or(0.02);
    let (trials, iterations) = if quick { (7, 30) } else { (9, 60) };

    let tc = TraceConfig {
        num_tables: NUM_TABLES,
        rows_per_table: ROWS_PER_TABLE,
        lookups_per_sample: 8,
        batch_size: 128,
        profile: LocalityProfile::Medium,
        seed: 0xBE_AC,
    };
    let batches = TraceGenerator::new(tc).take_batches(iterations);

    // Warm both arms once (page-in, branch predictors) before measuring.
    timed_run(&batches, None);
    timed_run(&batches, Some(&Telemetry::new()));

    let mut disabled_ns = Vec::with_capacity(trials);
    let mut enabled_ns = Vec::with_capacity(trials);
    for trial in 0..trials {
        let off = timed_run(&batches, None);
        // A fresh collector per run: steady-state cost, no accumulation.
        let on = timed_run(&batches, Some(&Telemetry::new()));
        disabled_ns.push(off);
        enabled_ns.push(on);
        println!(
            "trial {trial}: disabled {:.3} ms, enabled {:.3} ms ({:+.2}%)",
            off as f64 / 1e6,
            on as f64 / 1e6,
            (on as f64 / off as f64 - 1.0) * 100.0
        );
    }

    let disabled_median_ns = median(&disabled_ns);
    let enabled_median_ns = median(&enabled_ns);
    let overhead_frac = enabled_median_ns as f64 / disabled_median_ns as f64 - 1.0;
    let pass = overhead_frac <= max_overhead;
    println!(
        "median: disabled {:.3} ms, enabled {:.3} ms -> overhead {:+.2}% (gate {:.1}%): {}",
        disabled_median_ns as f64 / 1e6,
        enabled_median_ns as f64 / 1e6,
        overhead_frac * 100.0,
        max_overhead * 100.0,
        if pass { "PASS" } else { "FAIL" }
    );

    let report = OverheadReport {
        bench: "telemetry_overhead".to_owned(),
        mode: if quick { "quick" } else { "full" }.to_owned(),
        schedule: "sync".to_owned(),
        iterations,
        trials,
        disabled_ns,
        enabled_ns,
        disabled_median_ns,
        enabled_median_ns,
        overhead_frac,
        max_overhead,
        pass,
    };
    let json = serde_json::to_string(&report).expect("serialize");
    std::fs::write(&out_path, &json).expect("write TELEMETRY_overhead.json");
    println!("wrote {out_path}");
    if pass {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
