//! §VI-E ablation — GPU scratchpad replacement policy (LRU default vs LFU
//! vs random eviction).
//!
//! The paper reports robustness across policies and omits the figure; we
//! regenerate the numbers. Policy choice affects only the hit rate (and
//! hence Collect/Insert traffic), never correctness — the equivalence
//! tests in `tests/` prove all three train identically.

use scratchpipe::EvictionPolicy;
use sp_bench::{iterations, ms, ResultTable};
use systems::{run_system, ExperimentConfig, SystemKind};
use tracegen::LocalityProfile;

fn main() {
    let iters = iterations();
    let mut table = ResultTable::new(
        "§VI-E — eviction-policy ablation (ScratchPipe, 2% scratchpad)",
        &["locality", "policy", "hit rate", "iteration (ms)", "vs LRU"],
    );

    for profile in LocalityProfile::SWEEP {
        let mut lru_time = None;
        for policy in EvictionPolicy::ALL {
            let mut cfg = ExperimentConfig::paper(profile, 0.02, iters);
            cfg.policy = policy;
            let r = run_system(SystemKind::ScratchPipe, &cfg).expect("simulation");
            let base = *lru_time.get_or_insert(r.iteration_time);
            table.row(vec![
                profile.name().to_owned(),
                policy.to_string(),
                r.hit_rate
                    .map(|h| format!("{:.1}%", 100.0 * h))
                    .unwrap_or_default(),
                ms(r.iteration_time),
                format!("{:.2}x", base / r.iteration_time),
            ]);
        }
    }
    table.emit("ablation_policy");

    println!(
        "\nShape check: all three policies land within a few percent of each \
         other (paper §VI-E: ScratchPipe is robust to the replacement policy)."
    );
}
