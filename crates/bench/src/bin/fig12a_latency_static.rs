//! Figure 12(a) — latency breakdown of the baseline CPU-GPU without
//! caching (0 %) and with the static GPU embedding cache sized 2–10 %.

use sp_bench::{iterations, ms, ResultTable};
use systems::{run_system, ExperimentConfig, HybridCpuGpu, StaticCacheSystem, SystemKind};
use tracegen::LocalityProfile;

fn main() {
    let iters = iterations();
    let mut table = ResultTable::new(
        "Figure 12(a) — latency breakdown, hybrid + static cache (ms/iteration)",
        &[
            "locality",
            "cache",
            "CPU emb fwd",
            "CPU emb bwd",
            "GPU",
            "total",
            "hit rate",
        ],
    );

    for profile in LocalityProfile::SWEEP {
        for pct in [0usize, 2, 4, 6, 8, 10] {
            let fraction = pct as f64 / 100.0;
            let (kind, groups) = if pct == 0 {
                (SystemKind::Hybrid, HybridCpuGpu::FIG5_GROUPS)
            } else {
                (SystemKind::StaticCache, StaticCacheSystem::FIG5_GROUPS)
            };
            let cfg = ExperimentConfig::paper(profile, fraction, iters);
            let report = run_system(kind, &cfg).expect("simulation");
            let g = report.grouped_breakdown(&groups);
            table.row(vec![
                profile.name().to_owned(),
                format!("{pct}%"),
                ms(g[0].1),
                ms(g[1].1),
                ms(g[2].1),
                ms(report.iteration_time),
                report
                    .hit_rate
                    .map(|h| format!("{:.0}%", 100.0 * h))
                    .unwrap_or_else(|| "-".to_owned()),
            ]);
        }
    }
    table.emit("fig12a_latency_static");

    println!(
        "\nShape check: larger caches shrink the CPU stages in proportion to \
         the hit rate, but the CPU-side embedding stages never vanish."
    );
}
