//! Critical-path profiler over a telemetry trace — answers "which stage
//! do I shard next?" from artifacts alone.
//!
//! Consumes the Chrome trace-event JSON written by
//! [`Telemetry::write_chrome_trace`] (and, optionally, the matching
//! audit JSONL) and prints, per run:
//!
//! * the wall-clock critical path (the run span) and total stage work;
//! * **overlap %** — how much concurrent stage work exceeded wall-clock
//!   (`0%` means no pipelining; `+80%` means stages ran 1.8× wall);
//! * a per-stage breakdown: self time, share of stage work, barrier
//!   stall time, shard-task count;
//! * the top-k slowest shard tasks (stage, iteration, worker, duration);
//! * a verdict naming the **dominant stage** — the one to shard or
//!   optimize next — with its share of total stage work.
//!
//! With `--audit <jsonl>` it also reconciles the trace against the audit
//! stream: per stage and run label, the summed stage-span nanoseconds
//! must equal the summed `stage_nanos` from the iteration events —
//! **exactly**, because both numbers are the same integer recorded once
//! per stage execution. A supervised run that rolled iterations back
//! records spans for the failed attempts too, so the trace total may
//! exceed the audit total there (reported, not failed).
//!
//! ```bash
//! cargo run --release -p sp-bench --bin bench_pipeline_throughput -- \
//!     --quick --trace trace.json --audit audit.jsonl
//! cargo run --release -p sp-bench --bin trace_report -- trace.json --audit audit.jsonl
//! ```
//!
//! Exits non-zero on unreadable or structurally empty inputs, or when
//! `--audit` reconciliation finds a trace total *below* its audit total
//! (spans lost); it never fails on slow runs — it is a profiler, not a
//! perf gate.
//!
//! [`Telemetry::write_chrome_trace`]: scratchpipe::Telemetry::write_chrome_trace

use std::collections::BTreeMap;
use std::process::ExitCode;

use serde::Value;

/// One duration span pulled out of the trace (`ph == "X"` events carry
/// their exact integer nanos in `args`; the float `ts`/`dur` fields are
/// only for the trace viewer).
struct Span {
    pid: u64,
    cat: String,
    name: String,
    stage: String,
    iteration: u64,
    worker: u64,
    dur_ns: u64,
}

#[derive(Default)]
struct StageStats {
    self_ns: u64,
    spans: u64,
    stall_ns: u64,
    stalls: u64,
    shard_tasks: u64,
    shard_busy_ns: u64,
}

#[derive(Default)]
struct RunReport {
    label: String,
    schedule: String,
    wall_ns: u64,
    iterations: u64,
    stages: BTreeMap<String, StageStats>,
    /// `(dur_ns, stage, iteration, worker)`, kept sorted, top-k only.
    slowest_shards: Vec<(u64, String, u64, u64)>,
}

fn get_str(v: &Value, key: &str) -> Option<String> {
    match v.get(key) {
        Some(Value::Str(s)) => Some(s.clone()),
        _ => None,
    }
}

fn get_u64(v: &Value, key: &str) -> Option<u64> {
    match v.get(key) {
        Some(Value::UInt(n)) => Some(*n),
        Some(Value::Int(n)) if *n >= 0 => Some(*n as u64),
        _ => None,
    }
}

/// The five pipeline stages in execution order, for stable tables.
const STAGE_ORDER: [&str; 5] = ["Plan", "Collect", "Exchange", "Insert", "Train"];
/// Stages that already run sharded over the worker pool.
const SHARDED: [&str; 3] = ["Collect", "Insert", "Train"];

fn stage_sort_key(name: &str) -> usize {
    STAGE_ORDER
        .iter()
        .position(|s| *s == name)
        .unwrap_or(STAGE_ORDER.len())
}

fn parse_trace(body: &str, top_k: usize) -> Result<Vec<RunReport>, String> {
    let doc: Value = serde_json::from_str(body).map_err(|e| format!("invalid JSON: {e}"))?;
    let Some(Value::Seq(events)) = doc.get("traceEvents") else {
        return Err("traceEvents: expected a sequence".to_owned());
    };
    // pid -> (label, schedule) from the metadata events.
    let mut processes: BTreeMap<u64, (String, String)> = BTreeMap::new();
    let mut spans: Vec<Span> = Vec::new();
    for ev in events {
        let Some(ph) = get_str(ev, "ph") else {
            continue;
        };
        let Some(pid) = get_u64(ev, "pid") else {
            continue;
        };
        match ph.as_str() {
            "M" => {
                let Some(name) = get_str(ev, "name") else {
                    continue;
                };
                let arg = ev
                    .get("args")
                    .and_then(|a| get_str(a, "name"))
                    .unwrap_or_default();
                let entry = processes.entry(pid).or_default();
                match name.as_str() {
                    "process_name" => entry.0 = arg,
                    "process_labels" => entry.1 = arg,
                    _ => {}
                }
            }
            "X" => {
                let args = ev.get("args").cloned().unwrap_or(Value::Null);
                spans.push(Span {
                    pid,
                    cat: get_str(ev, "cat").unwrap_or_default(),
                    name: get_str(ev, "name").unwrap_or_default(),
                    stage: get_str(&args, "stage").unwrap_or_default(),
                    iteration: get_u64(&args, "iteration").unwrap_or(0),
                    worker: get_u64(&args, "worker").unwrap_or(0),
                    dur_ns: get_u64(&args, "dur_ns").unwrap_or(0),
                });
            }
            _ => {}
        }
    }
    if spans.is_empty() {
        return Err("no duration spans in the trace".to_owned());
    }

    let mut runs: BTreeMap<u64, RunReport> = BTreeMap::new();
    for span in &spans {
        let run = runs.entry(span.pid).or_default();
        match span.cat.as_str() {
            "run" => run.wall_ns = run.wall_ns.max(span.dur_ns),
            "iteration" => run.iterations += 1,
            "stage" => {
                let st = run.stages.entry(span.stage.clone()).or_default();
                st.self_ns += span.dur_ns;
                st.spans += 1;
            }
            "stall" => {
                // Stall spans carry the *waiting* stage in args.stage.
                let st = run.stages.entry(span.stage.clone()).or_default();
                st.stall_ns += span.dur_ns;
                st.stalls += 1;
            }
            "shard" => {
                let st = run.stages.entry(span.stage.clone()).or_default();
                st.shard_tasks += 1;
                st.shard_busy_ns += span.dur_ns;
                run.slowest_shards.push((
                    span.dur_ns,
                    span.stage.clone(),
                    span.iteration,
                    span.worker,
                ));
                run.slowest_shards.sort_by_key(|s| std::cmp::Reverse(s.0));
                run.slowest_shards.truncate(top_k);
            }
            _ => {
                let _ = &span.name;
            }
        }
    }
    for (pid, run) in &mut runs {
        if let Some((label, schedule)) = processes.get(pid) {
            run.label = label.clone();
            run.schedule = schedule.clone();
        }
        if run.label.is_empty() {
            run.label = format!("run-{pid}");
        }
    }
    Ok(runs.into_values().collect())
}

/// Per-(run label, stage) summed `stage_nanos` from the audit stream,
/// plus whether the label saw any rollback (which relaxes equality).
struct AuditTotals {
    stage_ns: BTreeMap<(String, String), u64>,
    rolled_back: BTreeMap<String, bool>,
}

fn parse_audit(body: &str) -> Result<AuditTotals, String> {
    let mut totals = AuditTotals {
        stage_ns: BTreeMap::new(),
        rolled_back: BTreeMap::new(),
    };
    for (i, line) in body.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        let event: Value =
            serde_json::from_str(line).map_err(|e| format!("line {}: invalid JSON: {e}", i + 1))?;
        let Some(kind) = get_str(&event, "event") else {
            return Err(format!("line {}: no event field", i + 1));
        };
        let label = get_str(&event, "run").unwrap_or_default();
        match kind.as_str() {
            "iteration" => {
                let Some(Value::Map(nanos)) = event.get("stage_nanos") else {
                    return Err(format!("line {}: iteration lacks stage_nanos", i + 1));
                };
                for (stage, v) in nanos {
                    let Value::UInt(ns) = v else {
                        return Err(format!("line {}: stage_nanos.{stage} not UInt", i + 1));
                    };
                    *totals
                        .stage_ns
                        .entry((label.clone(), stage.clone()))
                        .or_default() += ns;
                }
            }
            "iteration_rolled_back" => {
                totals.rolled_back.insert(label, true);
            }
            _ => {}
        }
    }
    if totals.stage_ns.is_empty() {
        return Err("no iteration events in the audit stream".to_owned());
    }
    Ok(totals)
}

fn ms(ns: u64) -> f64 {
    ns as f64 / 1e6
}

fn print_run(run: &RunReport) {
    println!("run {:?} (schedule {})", run.label, run.schedule);
    let stage_work: u64 = run.stages.values().map(|s| s.self_ns).sum();
    let overlap_pct = if run.wall_ns > 0 {
        (stage_work as f64 / run.wall_ns as f64 - 1.0) * 100.0
    } else {
        0.0
    };
    println!(
        "  wall {:.2} ms over {} iterations; stage work {:.2} ms; overlap {:+.1}%",
        ms(run.wall_ns),
        run.iterations,
        ms(stage_work),
        overlap_pct.max(-100.0)
    );
    println!(
        "  {:<10} {:>12} {:>7} {:>12} {:>8} {:>12}",
        "stage", "self ms", "share", "stall ms", "shards", "shard ms"
    );
    let mut stages: Vec<(&String, &StageStats)> = run.stages.iter().collect();
    stages.sort_by_key(|(name, _)| stage_sort_key(name));
    for (name, st) in &stages {
        let share = if stage_work > 0 {
            st.self_ns as f64 / stage_work as f64 * 100.0
        } else {
            0.0
        };
        println!(
            "  {:<10} {:>12.3} {:>6.1}% {:>12.3} {:>8} {:>12.3}",
            name,
            ms(st.self_ns),
            share,
            ms(st.stall_ns),
            st.shard_tasks,
            ms(st.shard_busy_ns)
        );
    }
    for (dur, stage, iteration, worker) in &run.slowest_shards {
        println!(
            "  slow shard: {stage} iter {iteration} worker {worker}  {:.3} ms",
            ms(*dur)
        );
    }
    // The verdict: where does the next unit of optimization effort go?
    if let Some((name, st)) = stages.iter().max_by_key(|(_, s)| s.self_ns) {
        let share = if stage_work > 0 {
            st.self_ns as f64 / stage_work as f64 * 100.0
        } else {
            0.0
        };
        let advice = if SHARDED.contains(&name.as_str()) {
            "already sharded - widen the pool or split its shards finer"
        } else {
            "not yet sharded - add data parallelism to it next"
        };
        println!(
            "  dominant stage: {name} ({share:.1}% of stage work, overlap {:+.1}%) - {advice}",
            overlap_pct.max(-100.0)
        );
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut trace_path = None;
    let mut audit_path = None;
    let mut top_k = 5usize;
    let mut it = args.into_iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--audit" => match it.next() {
                Some(p) => audit_path = Some(p),
                None => {
                    eprintln!("--audit needs a path");
                    return ExitCode::FAILURE;
                }
            },
            "--top" => match it.next().and_then(|v| v.parse().ok()) {
                Some(k) => top_k = k,
                None => {
                    eprintln!("--top needs a count");
                    return ExitCode::FAILURE;
                }
            },
            _ if trace_path.is_none() => trace_path = Some(arg),
            other => {
                eprintln!("unexpected argument {other:?}");
                return ExitCode::FAILURE;
            }
        }
    }
    let Some(trace_path) = trace_path else {
        eprintln!("usage: trace_report <trace.json> [--audit audit.jsonl] [--top K]");
        return ExitCode::FAILURE;
    };
    let body = match std::fs::read_to_string(&trace_path) {
        Ok(b) => b,
        Err(e) => {
            eprintln!("{trace_path}: cannot read: {e}");
            return ExitCode::FAILURE;
        }
    };
    let runs = match parse_trace(&body, top_k) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("{trace_path}: {e}");
            return ExitCode::FAILURE;
        }
    };
    for run in &runs {
        print_run(run);
    }

    let Some(audit_path) = audit_path else {
        return ExitCode::SUCCESS;
    };
    let audit_body = match std::fs::read_to_string(&audit_path) {
        Ok(b) => b,
        Err(e) => {
            eprintln!("{audit_path}: cannot read: {e}");
            return ExitCode::FAILURE;
        }
    };
    let totals = match parse_audit(&audit_body) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("{audit_path}: {e}");
            return ExitCode::FAILURE;
        }
    };
    // Trace vs audit: same integers, summed two ways.
    let mut failed = false;
    let mut checked = 0usize;
    for run in &runs {
        let retried = totals.rolled_back.get(&run.label).copied().unwrap_or(false);
        for (stage, st) in &run.stages {
            let Some(&audit_ns) = totals.stage_ns.get(&(run.label.clone(), stage.clone())) else {
                continue; // trace-only run, or stage absent from the stream
            };
            checked += 1;
            let ok = if retried {
                st.self_ns >= audit_ns
            } else {
                st.self_ns == audit_ns
            };
            if !ok {
                failed = true;
                eprintln!(
                    "reconcile FAIL: run {:?} stage {stage}: trace {} ns {} audit {} ns",
                    run.label,
                    st.self_ns,
                    if retried { "<" } else { "!=" },
                    audit_ns
                );
            }
        }
    }
    if checked == 0 {
        eprintln!("reconcile: no (run, stage) pair appears in both trace and audit");
        return ExitCode::FAILURE;
    }
    if failed {
        return ExitCode::FAILURE;
    }
    println!("reconcile OK: {checked} (run, stage) totals match the audit stream");
    ExitCode::SUCCESS
}
