//! Figure 15(b) — sensitivity to the number of embedding-table lookups
//! per sample (1 / 20 / 50), speedups normalized to static cache at 2 %.
//!
//! Paper's takeaway: at 50 lookups the embedding layer bottleneck
//! intensifies and ScratchPipe reaches avg 3.7× (max 5.6×); at a single
//! lookup the model is MLP-bound and gains shrink but remain >1×.

use sp_bench::{iterations, speedup, ResultTable};
use systems::{run_system, ExperimentConfig, ModelShape, SystemKind};
use tracegen::LocalityProfile;

fn main() {
    let iters = iterations();
    let mut table = ResultTable::new(
        "Figure 15(b) — speedup vs static cache across lookups per table",
        &[
            "locality",
            "lookups",
            "Hybrid CPU-GPU",
            "Static cache",
            "Straw-man",
            "ScratchPipe",
        ],
    );

    let mut sp_by_lookup: Vec<(usize, f64)> = Vec::new();
    for profile in LocalityProfile::SWEEP {
        for lookups in [1usize, 20, 50] {
            let mut cfg = ExperimentConfig::paper(profile, 0.02, iters);
            cfg.shape = ModelShape::paper_with_lookups(lookups);
            let reports: Vec<_> = SystemKind::FIGURE13
                .iter()
                .map(|&k| run_system(k, &cfg).expect("simulation"))
                .collect();
            let static_time = reports[1].iteration_time;
            sp_by_lookup.push((lookups, static_time / reports[3].iteration_time));
            table.row(vec![
                profile.name().to_owned(),
                lookups.to_string(),
                speedup(static_time / reports[0].iteration_time),
                speedup(1.0),
                speedup(static_time / reports[2].iteration_time),
                speedup(static_time / reports[3].iteration_time),
            ]);
        }
    }
    table.emit("fig15b_lookup_sensitivity");

    let stats_for = |l: usize| {
        let v: Vec<f64> = sp_by_lookup
            .iter()
            .filter(|&&(ll, _)| ll == l)
            .map(|&(_, s)| s)
            .collect();
        (
            v.iter().sum::<f64>() / v.len() as f64,
            v.iter().cloned().fold(0.0f64, f64::max),
            v.iter().cloned().fold(f64::INFINITY, f64::min),
        )
    };
    let (a50, m50, _) = stats_for(50);
    let (a1, _, min1) = stats_for(1);
    println!(
        "\nShape check: 50 lookups → avg {a50:.2}x max {m50:.2}x (paper: 3.7x / 5.6x); \
         1 lookup → avg {a1:.2}x, min {min1:.2}x (still ≥1x)."
    );
}
