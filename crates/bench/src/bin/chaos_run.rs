//! Chaos harness — CI's executable proof of the recovery contract.
//!
//! For every seed in the matrix this binary arms a seeded
//! [`FaultPlan`](scratchpipe::FaultPlan) against a supervised
//! data-parallel pipeline run and verifies the headline chaos property:
//!
//! * the recovered `PipelineReport` serializes **byte-identically** to a
//!   fault-free run over the same trace, and the trained tables are
//!   **bit-identical**;
//! * a persistent (unrecoverable) fault aborts cleanly with
//!   `ScratchError::Aborted` and leaves the tables exactly at the last
//!   committed iteration (cross-checked against direct training of the
//!   committed prefix).
//!
//! Every audit line of every chaos run is appended to the output JSONL
//! artifact, which CI then reconciles with `audit_check --faults`.
//! Exits non-zero on the first violated seed.
//!
//! ```bash
//! cargo run --release -p sp-bench --bin chaos_run -- \
//!     --out BENCH_chaos_audit.jsonl --seeds 11,23,37,58 --iterations 16
//! ```

use std::io::Write as _;
use std::process::ExitCode;

use embeddings::EmbeddingTable;
use scratchpipe::runtime::train_direct;
use scratchpipe::{
    Fault, FaultKind, FaultPlan, MemorySink, Pipeline, PipelineConfig, RecoveryPolicy, Schedule,
    ScratchError, UnitBackend,
};
use tracegen::{LocalityProfile, TraceConfig, TraceGenerator};

const DIM: usize = 8;
const ROWS: u64 = 500;
const NUM_TABLES: usize = 3;
const SLOTS: usize = 192;
const LEARNING_RATE: f32 = 0.05;

fn trace(iterations: usize) -> Vec<embeddings::SparseBatch> {
    let tc = TraceConfig {
        num_tables: NUM_TABLES,
        rows_per_table: ROWS,
        lookups_per_sample: 4,
        batch_size: 8,
        profile: LocalityProfile::Medium,
        seed: 0xC4A0,
    };
    TraceGenerator::new(tc).take_batches(iterations)
}

fn tables() -> Vec<EmbeddingTable> {
    (0..NUM_TABLES)
        .map(|t| EmbeddingTable::seeded(ROWS as usize, DIM, 900 + t as u64))
        .collect()
}

fn build(plan: Option<FaultPlan>, sink: Option<MemorySink>, name: &str) -> Pipeline<UnitBackend> {
    let mut b = Pipeline::builder()
        .config(PipelineConfig::functional(DIM, SLOTS))
        .tables(tables())
        .backend(UnitBackend::new(LEARNING_RATE))
        .schedule(Schedule::DataParallel)
        .parallelism(2)
        .named(name);
    if let Some(plan) = plan {
        b = b.faults(plan);
    }
    if let Some(sink) = sink {
        b = b.audit(sink);
    }
    b.build().expect("pipeline builds")
}

/// Verifies one recoverable seed; returns its audit lines.
fn check_seed(
    seed: u64,
    iterations: usize,
    base_json: &str,
    base_tables: &[EmbeddingTable],
) -> Result<Vec<String>, String> {
    let plan = FaultPlan::seeded(seed, iterations, 4);
    let sink = MemorySink::new();
    let mut rt = build(Some(plan), Some(sink.clone()), &format!("chaos-{seed}"));
    let run = rt
        .run_supervised(&trace(iterations), RecoveryPolicy::default())
        .map_err(|e| format!("seed {seed}: supervised run failed: {e}"))?;
    let json = serde_json::to_string(&run.report).expect("serialize report");
    if json != base_json {
        return Err(format!(
            "seed {seed}: recovered report is not byte-identical to fault-free"
        ));
    }
    for (t, (got, want)) in rt.into_tables().iter().zip(base_tables).enumerate() {
        if !got.bit_eq(want) {
            return Err(format!(
                "seed {seed}: table {t} diverged from the fault-free run"
            ));
        }
    }
    println!(
        "seed {seed}: OK ({} faults, {} rollbacks, {} degradations, final schedule {:?})",
        run.stats.faults_injected,
        run.stats.rollbacks,
        run.stats.degradations,
        run.stats.final_schedule
    );
    Ok(sink.lines())
}

/// Verifies the unrecoverable case; returns its audit lines.
fn check_abort(iterations: usize) -> Result<Vec<String>, String> {
    let abort_at = iterations / 2;
    let plan = FaultPlan::new(vec![Fault {
        iteration: abort_at,
        stage: "Train".to_owned(),
        shard: 0,
        kind: FaultKind::StageError,
        fires: u32::MAX,
        slow_nanos: 0,
    }]);
    let sink = MemorySink::new();
    let mut rt = build(Some(plan), Some(sink.clone()), "chaos-abort");
    let err = match rt.run_supervised(&trace(iterations), RecoveryPolicy::default()) {
        Err(e) => e,
        Ok(_) => return Err("persistent fault did not abort".to_owned()),
    };
    match &err {
        ScratchError::Aborted {
            iteration,
            schedule,
            ..
        } => {
            if *iteration != abort_at {
                return Err(format!("aborted at {iteration}, expected {abort_at}"));
            }
            if schedule != "sync" {
                return Err(format!(
                    "abort must come off the ladder's last rung (sync), got {schedule}"
                ));
            }
        }
        other => return Err(format!("expected Aborted, got {other:?}")),
    }
    let mut expected = tables();
    let mut backend = UnitBackend::new(LEARNING_RATE);
    train_direct(&mut expected, &trace(iterations)[..abort_at], &mut backend);
    for (t, (got, want)) in rt.into_tables().iter().zip(&expected).enumerate() {
        if !got.bit_eq(want) {
            return Err(format!("table {t} not at the committed prefix after abort"));
        }
    }
    println!("abort case: OK (clean Aborted at iteration {abort_at}, tables at committed prefix)");
    Ok(sink.lines())
}

fn main() -> ExitCode {
    // Injected worker panics are caught by the pool and recovered from;
    // keep their default-hook backtraces out of the CI log. Anything
    // else still reports through the original hook.
    let default_hook = std::panic::take_hook();
    std::panic::set_hook(Box::new(move |info| {
        let injected = info
            .payload()
            .downcast_ref::<String>()
            .is_some_and(|m| m.contains("injected worker panic"));
        if !injected {
            default_hook(info);
        }
    }));

    let mut out_path = "BENCH_chaos_audit.jsonl".to_owned();
    let mut seeds: Vec<u64> = vec![11, 23, 37, 58];
    let mut iterations = 16usize;
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--out" => match it.next() {
                Some(p) => out_path = p,
                None => {
                    eprintln!("--out needs a path");
                    return ExitCode::FAILURE;
                }
            },
            "--seeds" => {
                let Some(spec) = it.next() else {
                    eprintln!("--seeds needs a comma-separated list");
                    return ExitCode::FAILURE;
                };
                match spec.split(',').map(str::parse).collect() {
                    Ok(parsed) => seeds = parsed,
                    Err(e) => {
                        eprintln!("--seeds: bad seed in {spec:?}: {e}");
                        return ExitCode::FAILURE;
                    }
                }
            }
            "--iterations" => {
                let Some(spec) = it.next() else {
                    eprintln!("--iterations needs a count");
                    return ExitCode::FAILURE;
                };
                match spec.parse() {
                    Ok(n) => iterations = n,
                    Err(e) => {
                        eprintln!("--iterations: {e}");
                        return ExitCode::FAILURE;
                    }
                }
            }
            other => {
                eprintln!("unknown argument {other:?}");
                eprintln!("usage: chaos_run [--out FILE.jsonl] [--seeds 1,2,3] [--iterations N]");
                return ExitCode::FAILURE;
            }
        }
    }

    // Fault-free baseline: the byte-identity reference for every seed.
    let mut baseline = build(None, None, "chaos-baseline");
    let base_report = baseline.run(&trace(iterations)).expect("baseline run");
    let base_json = serde_json::to_string(&base_report).expect("serialize baseline");
    let base_tables = baseline.into_tables();

    let mut artifact: Vec<String> = Vec::new();
    let mut failed = false;
    for &seed in &seeds {
        match check_seed(seed, iterations, &base_json, &base_tables) {
            Ok(lines) => artifact.extend(lines),
            Err(e) => {
                failed = true;
                eprintln!("FAIL {e}");
            }
        }
    }
    match check_abort(iterations) {
        Ok(lines) => artifact.extend(lines),
        Err(e) => {
            failed = true;
            eprintln!("FAIL abort case: {e}");
        }
    }

    let write = std::fs::File::create(&out_path).and_then(|mut f| {
        for line in &artifact {
            writeln!(f, "{line}")?;
        }
        f.flush()
    });
    if let Err(e) = write {
        eprintln!("cannot write {out_path}: {e}");
        return ExitCode::FAILURE;
    }
    println!(
        "wrote {} audit lines from {} chaos runs to {out_path}",
        artifact.len(),
        seeds.len() + 1
    );
    if failed {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}
