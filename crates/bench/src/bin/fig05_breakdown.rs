//! Figure 5 — training time broken down by where the key stages execute
//! (CPU embedding forward / CPU embedding backward / GPU) for the hybrid
//! CPU-GPU baseline and the static GPU embedding cache at 2 % and 10 %.
//!
//! Paper's takeaway: even with a static cache, 77–94 % of training time is
//! spent servicing cache-missed embedding work on the slow CPU memory.

use sp_bench::{iterations, ms, ResultTable};
use systems::{
    run_system, ExperimentConfig, HybridCpuGpu, StaticCacheSystem, SystemKind, SystemReport,
};
use tracegen::LocalityProfile;

fn grouped(report: &SystemReport, kind: SystemKind) -> [(String, memsim::SimTime); 3] {
    let groups = match kind {
        SystemKind::Hybrid => HybridCpuGpu::FIG5_GROUPS,
        _ => StaticCacheSystem::FIG5_GROUPS,
    };
    let g = report.grouped_breakdown(&groups);
    [g[0].clone(), g[1].clone(), g[2].clone()]
}

fn main() {
    let iters = iterations();
    let mut table = ResultTable::new(
        "Figure 5 — training-time breakdown (ms/iteration)",
        &[
            "system",
            "locality",
            "CPU emb fwd",
            "CPU emb bwd",
            "GPU",
            "total",
            "CPU share",
        ],
    );

    let configs: [(SystemKind, f64, &str); 3] = [
        (SystemKind::Hybrid, 0.0, "Hybrid CPU-GPU"),
        (SystemKind::StaticCache, 0.02, "Static cache (2%)"),
        (SystemKind::StaticCache, 0.10, "Static cache (10%)"),
    ];

    for (kind, fraction, label) in configs {
        for profile in LocalityProfile::SWEEP {
            let cfg = ExperimentConfig::paper(profile, fraction, iters);
            let report = run_system(kind, &cfg).expect("simulation");
            let g = grouped(&report, kind);
            let total = report.iteration_time;
            let cpu = g[0].1 + g[1].1;
            table.row(vec![
                label.to_owned(),
                profile.name().to_owned(),
                ms(g[0].1),
                ms(g[1].1),
                ms(g[2].1),
                ms(total),
                format!("{:.0}%", 100.0 * (cpu / total)),
            ]);
        }
    }
    table.emit("fig05_breakdown");

    println!(
        "\nShape check: CPU embedding work dominates everywhere; the static \
         cache shrinks it with locality but never removes it (paper: 77–94% \
         CPU share even with the cache)."
    );
}
