//! Figure 6 — static GPU embedding-cache hit rate as a function of cache
//! size, for every table of the four dataset models.
//!
//! Paper's takeaway: Criteo-like tables saturate with tiny caches, while
//! the Alibaba User table needs >65 % of the table cached to reach a 90 %
//! hit rate — which is why static caching cannot close the gap to a
//! GPU-only system.

use rand::rngs::StdRng;
use rand::SeedableRng;
use sp_bench::ResultTable;
use tracegen::{AccessHistogram, DatasetModel, Scrambler, ZipfSampler};

fn main() {
    let draws = 1_000_000usize;
    let fractions = [0.02, 0.05, 0.10, 0.20, 0.40, 0.65, 1.0];
    let mut table = ResultTable::new(
        "Figure 6 — static-cache hit rate vs cache size",
        &[
            "dataset", "table", "2%", "5%", "10%", "20%", "40%", "65%", "100%",
        ],
    );

    for dataset in DatasetModel::all() {
        for profile in &dataset.tables {
            let sampler = ZipfSampler::new(profile.rows, profile.zipf_exponent);
            let scrambler = Scrambler::new(profile.rows, 11);
            let mut rng = StdRng::seed_from_u64(5);
            let mut hist = AccessHistogram::new(profile.rows);
            for _ in 0..draws {
                hist.record(scrambler.apply(sampler.sample(&mut rng)));
            }
            let curve = hist.hit_rate_curve(&fractions);
            let mut row = vec![dataset.name.clone(), profile.name.clone()];
            row.extend(curve.iter().map(|&(_, r)| format!("{:.1}%", 100.0 * r)));
            table.row(row);
        }
    }
    table.emit("fig06_hit_rate");

    println!(
        "\nShape check: hit rate is monotone in cache size and saturates early \
         for Criteo-like tables; the Alibaba User curve stays low until most \
         of the table is cached (paper: >65% needed for 90% hits)."
    );
}
