//! §VI-D — ScratchPipe's implementation overhead: the worst-case Storage
//! provisioning bound vs the *measured* peak working set of the sliding
//! window.
//!
//! Paper: the worst case for the default model is
//! `(8 tables × 20 gathers × 2048 batch × 512 B) × 6 batches = 960 MB`,
//! but the measured held set is far smaller because in-window IDs overlap
//! (more so with locality).

use sp_bench::{iterations, ResultTable};
use systems::{run_system, CacheMode};
use systems::{ExperimentConfig, ScratchPipeSystem, SystemKind};
use tracegen::LocalityProfile;

fn main() {
    let iters = iterations().max(12);
    let shape = systems::ModelShape::paper_default();
    let per_batch_worst =
        shape.num_tables as u64 * shape.lookups_per_batch() / shape.num_tables as u64;
    let worst_bytes = shape.lookups_per_batch() * shape.row_bytes() * 6;
    println!(
        "Worst-case §VI-D bound: {} lookups/batch × {} B × 6 batches = {:.0} MB \
         (paper: 960 MB)",
        shape.lookups_per_batch(),
        shape.row_bytes(),
        worst_bytes as f64 / 1e6
    );
    let _ = per_batch_worst;

    let mut table = ResultTable::new(
        "§VI-D — measured peak held working set of the sliding window",
        &[
            "locality",
            "peak held slots (all tables)",
            "peak held MB",
            "worst-case MB",
            "fraction of worst case",
        ],
    );

    for profile in LocalityProfile::SWEEP {
        let cfg = ExperimentConfig::paper(profile, 0.02, iters);
        // Use the system wrapper to run the analytic pipeline, then read
        // the held-slot statistics off the cache report.
        let mut sys = ScratchPipeSystem::new(
            cfg.shape.clone(),
            cfg.cache_fraction,
            CacheMode::Pipelined,
            cfg.spec,
        );
        use systems::TrainingSystem;
        let _ = sys.simulate(&cfg.batches()).expect("simulate");
        let report = sys.last_pipeline_report().expect("report");
        let held: u64 = report.peak_held_slots.iter().map(|&p| p as u64).sum();
        let held_bytes = held * shape.row_bytes();
        table.row(vec![
            profile.name().to_owned(),
            held.to_string(),
            format!("{:.0}", held_bytes as f64 / 1e6),
            format!("{:.0}", worst_bytes as f64 / 1e6),
            format!("{:.1}%", 100.0 * held_bytes as f64 / worst_bytes as f64),
        ]);
    }
    table.emit("table_overhead");

    // Sanity: the figure-13 headline systems still run under this config.
    let cfg = ExperimentConfig::paper(LocalityProfile::High, 0.02, 4);
    let _ = run_system(SystemKind::ScratchPipe, &cfg).expect("scratchpipe runs");

    println!(
        "\nShape check: the measured held set is a small fraction of the \
         worst-case bound and shrinks with locality (paper §VI-D)."
    );
}
