//! §VI-E ablation — batch-size robustness (the paper trains with larger
//! and smaller batches and reports ScratchPipe's gains persist).

use sp_bench::{iterations, ms, speedup, ResultTable};
use systems::{run_system, ExperimentConfig, SystemKind};
use tracegen::LocalityProfile;

fn main() {
    let iters = iterations();
    let mut table = ResultTable::new(
        "§VI-E — batch-size robustness (speedup vs static cache, 2% cache)",
        &[
            "locality",
            "batch",
            "static (ms)",
            "ScratchPipe (ms)",
            "speedup",
        ],
    );

    for profile in [
        LocalityProfile::Random,
        LocalityProfile::Medium,
        LocalityProfile::High,
    ] {
        for batch in [512usize, 2048, 8192] {
            let mut cfg = ExperimentConfig::paper(profile, 0.02, iters);
            cfg.shape.batch_size = batch;
            let stat = run_system(SystemKind::StaticCache, &cfg).expect("static");
            let sp = run_system(SystemKind::ScratchPipe, &cfg).expect("scratchpipe");
            table.row(vec![
                profile.name().to_owned(),
                batch.to_string(),
                ms(stat.iteration_time),
                ms(sp.iteration_time),
                speedup(sp.speedup_over(&stat)),
            ]);
        }
    }
    table.emit("ablation_batch");

    println!(
        "\nShape check: ScratchPipe's advantage persists across batch sizes \
         (paper §VI-E), growing slightly with batch (more embedding traffic \
         per dense launch)."
    );
}
