//! Table I — training cost of ScratchPipe (1×V100, p3.2xlarge) vs an
//! 8-GPU GPU-only system (p3.16xlarge), priced per one million iterations.
//!
//! Paper headline: despite being slower per iteration, ScratchPipe cuts
//! training cost by avg 4.0× (max 5.7×) because the 8-GPU node costs 8×
//! the hourly rate for only a 29–66 % iteration-time reduction.

use memsim::{InstanceSpec, TrainingCost};
use sp_bench::{iterations, ms, ResultTable};
use systems::{run_system, ExperimentConfig, SystemKind};
use tracegen::LocalityProfile;

fn main() {
    let iters = iterations();
    let mut table = ResultTable::new(
        "Table I — training cost per 1M iterations",
        &[
            "dataset",
            "system",
            "instance",
            "price/hr",
            "iter time (ms)",
            "1M-iter cost",
            "cost saving",
        ],
    );

    let mut savings = Vec::new();
    for profile in LocalityProfile::SWEEP {
        let cfg = ExperimentConfig::paper(profile, 0.02, iters);
        let sp = run_system(SystemKind::ScratchPipe, &cfg).expect("scratchpipe");
        let mg = run_system(SystemKind::MultiGpu8, &cfg).expect("multi-gpu");
        let sp_cost =
            TrainingCost::per_million_iterations(InstanceSpec::p3_2xlarge(), sp.iteration_time);
        let mg_cost =
            TrainingCost::per_million_iterations(InstanceSpec::p3_16xlarge(), mg.iteration_time);
        let saving = mg_cost.total_usd / sp_cost.total_usd;
        savings.push(saving);
        table.row(vec![
            profile.name().to_owned(),
            "ScratchPipe".to_owned(),
            sp_cost.instance.name.clone(),
            format!("${:.2}", sp_cost.instance.price_per_hour),
            ms(sp.iteration_time),
            format!("${:.2}", sp_cost.total_usd),
            format!("{saving:.2}x"),
        ]);
        table.row(vec![
            profile.name().to_owned(),
            "8 GPU".to_owned(),
            mg_cost.instance.name.clone(),
            format!("${:.2}", mg_cost.instance.price_per_hour),
            ms(mg.iteration_time),
            format!("${:.2}", mg_cost.total_usd),
            "1.00x".to_owned(),
        ]);
    }
    table.emit("table1_training_cost");

    let avg = savings.iter().sum::<f64>() / savings.len() as f64;
    let max = savings.iter().cloned().fold(0.0f64, f64::max);
    println!(
        "\nSummary: ScratchPipe cost saving vs 8-GPU: avg {avg:.2}x, max {max:.2}x \
         (paper: avg 4.0x, max 5.7x; paper reference points — Random: 47.82 ms \
         $40.64 vs 16.22 ms $110.3)."
    );
}
