//! Figure 14 — per-iteration energy consumption of the static cache vs
//! ScratchPipe across localities.
//!
//! The paper measures socket power (`pcm-power`) and GPU power
//! (`nvidia-smi`) and multiplies by wall-clock; our model integrates
//! active/idle device power over the simulated per-resource residency.

use sp_bench::{iterations, ResultTable};
use systems::{run_system, ExperimentConfig, SystemKind};
use tracegen::LocalityProfile;

fn main() {
    let iters = iterations();
    let mut table = ResultTable::new(
        "Figure 14 — energy per iteration (J), static cache (2%) vs ScratchPipe (2%)",
        &[
            "locality",
            "static CPU J",
            "static GPU J",
            "static total J",
            "ScratchPipe CPU J",
            "ScratchPipe GPU J",
            "ScratchPipe total J",
            "ratio",
        ],
    );

    for profile in LocalityProfile::SWEEP {
        let cfg = ExperimentConfig::paper(profile, 0.02, iters);
        let stat = run_system(SystemKind::StaticCache, &cfg).expect("static");
        let sp = run_system(SystemKind::ScratchPipe, &cfg).expect("scratchpipe");
        let se = stat.energy_per_iteration;
        let pe = sp.energy_per_iteration;
        table.row(vec![
            profile.name().to_owned(),
            format!("{:.1}", se.cpu_joules),
            format!("{:.1}", se.gpu_joules),
            format!("{:.1}", se.total_joules()),
            format!("{:.1}", pe.cpu_joules),
            format!("{:.1}", pe.gpu_joules),
            format!("{:.1}", pe.total_joules()),
            format!("{:.2}x", se.total_joules() / pe.total_joules()),
        ]);
    }
    table.emit("fig14_energy");

    println!(
        "\nShape check: ScratchPipe's shorter iterations translate almost \
         directly into proportional energy savings (paper Figure 14)."
    );
}
