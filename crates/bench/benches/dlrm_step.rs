//! Micro-benchmarks of the dense DLRM training step (bottom MLP →
//! interaction → top MLP → BCE, forward + backward + SGD).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use dlrm::{DlrmConfig, DlrmModel, DlrmScratch};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn bench_train_step(c: &mut Criterion) {
    let mut group = c.benchmark_group("dlrm_train_step");
    for &batch in &[16usize, 64] {
        let cfg = DlrmConfig {
            dense_dim: 13,
            bottom_widths: vec![13, 128, 32],
            top_widths: vec![dlrm::interaction::output_dim(4, 32), 128, 1],
            emb_dim: 32,
            num_tables: 4,
        };
        let mut model = DlrmModel::seeded(&cfg, 1);
        let mut rng = StdRng::seed_from_u64(2);
        let dense: Vec<f32> = (0..batch * cfg.dense_dim)
            .map(|_| rng.gen_range(-1.0..1.0))
            .collect();
        let pooled: Vec<f32> = (0..cfg.num_tables * batch * cfg.emb_dim)
            .map(|_| rng.gen_range(-0.5..0.5))
            .collect();
        let mut grads = vec![0.0f32; pooled.len()];
        let mut scratch = DlrmScratch::new();
        let labels: Vec<f32> = (0..batch).map(|_| f32::from(rng.gen_bool(0.5))).collect();
        group.throughput(Throughput::Elements(batch as u64));
        group.bench_with_input(BenchmarkId::from_parameter(batch), &batch, |b, _| {
            b.iter(|| {
                model.train_step_with(&mut scratch, &dense, &pooled, &labels, 0.01, &mut grads)
            });
        });
    }
    group.finish();
}

fn bench_interaction(c: &mut Criterion) {
    let dim = 64;
    let tables = 8;
    let batch = 128;
    let mut rng = StdRng::seed_from_u64(3);
    let bottom: Vec<f32> = (0..batch * dim).map(|_| rng.gen_range(-1.0..1.0)).collect();
    let pooled: Vec<f32> = (0..tables * batch * dim)
        .map(|_| rng.gen_range(-1.0..1.0))
        .collect();
    let mut group = c.benchmark_group("feature_interaction");
    group.throughput(Throughput::Elements(batch as u64));
    let mut z = Vec::new();
    group.bench_function("forward_8tables_64d", |b| {
        b.iter(|| dlrm::interaction::forward_into(&bottom, &pooled, tables, dim, &mut z));
    });
    let out = dlrm::interaction::forward(&bottom, &pooled, tables, dim);
    let dout = vec![0.1f32; out.len()];
    let mut d_pooled = vec![0.0f32; pooled.len()];
    group.bench_function("backward_8tables_64d", |b| {
        b.iter(|| dlrm::interaction::backward(&bottom, &pooled, tables, dim, &dout, &mut d_pooled));
    });
    group.finish();
}

criterion_group!(benches, bench_train_step, bench_interaction);
criterion_main!(benches);
