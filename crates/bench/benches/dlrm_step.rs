//! Micro-benchmarks of the dense DLRM training step (bottom MLP →
//! interaction → top MLP → BCE, forward + backward + SGD).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use dlrm::{DlrmConfig, DlrmModel};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn bench_train_step(c: &mut Criterion) {
    let mut group = c.benchmark_group("dlrm_train_step");
    for &batch in &[16usize, 64] {
        let cfg = DlrmConfig {
            dense_dim: 13,
            bottom_widths: vec![13, 128, 32],
            top_widths: vec![dlrm::interaction::output_dim(4, 32), 128, 1],
            emb_dim: 32,
            num_tables: 4,
        };
        let mut model = DlrmModel::seeded(&cfg, 1);
        let mut rng = StdRng::seed_from_u64(2);
        let dense: Vec<f32> = (0..batch * cfg.dense_dim)
            .map(|_| rng.gen_range(-1.0..1.0))
            .collect();
        let pooled: Vec<Vec<f32>> = (0..cfg.num_tables)
            .map(|_| {
                (0..batch * cfg.emb_dim)
                    .map(|_| rng.gen_range(-0.5..0.5))
                    .collect()
            })
            .collect();
        let labels: Vec<f32> = (0..batch).map(|_| f32::from(rng.gen_bool(0.5))).collect();
        group.throughput(Throughput::Elements(batch as u64));
        group.bench_with_input(BenchmarkId::from_parameter(batch), &batch, |b, _| {
            b.iter(|| model.train_step(&dense, &pooled, &labels, 0.01));
        });
    }
    group.finish();
}

fn bench_interaction(c: &mut Criterion) {
    let dim = 64;
    let tables = 8;
    let batch = 128;
    let mut rng = StdRng::seed_from_u64(3);
    let bottom: Vec<f32> = (0..batch * dim).map(|_| rng.gen_range(-1.0..1.0)).collect();
    let pooled: Vec<Vec<f32>> = (0..tables)
        .map(|_| (0..batch * dim).map(|_| rng.gen_range(-1.0..1.0)).collect())
        .collect();
    let mut group = c.benchmark_group("feature_interaction");
    group.throughput(Throughput::Elements(batch as u64));
    group.bench_function("forward_8tables_64d", |b| {
        b.iter(|| dlrm::interaction::forward(&bottom, &pooled, dim));
    });
    let out = dlrm::interaction::forward(&bottom, &pooled, dim);
    let dout = vec![0.1f32; out.len()];
    group.bench_function("backward_8tables_64d", |b| {
        b.iter(|| dlrm::interaction::backward(&bottom, &pooled, dim, &dout));
    });
    group.finish();
}

criterion_group!(benches, bench_train_step, bench_interaction);
criterion_main!(benches);
