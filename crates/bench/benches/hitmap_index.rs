//! Micro-benchmarks of the open-addressing Hit-Map index against the std
//! `HashMap` it replaced, plus the deduplicated Train gather against the
//! raw per-lookup gather it replaced.
//!
//! * `probe` / `insert_remove`: 10k and 100k resident keys — the working
//!   sets of the bench shapes' per-table scratchpads.
//! * `gather`: deduped (index fan-out) vs raw (hash probe per lookup) at
//!   duplicate ratios 1×, 2×, 8× — the skewed-trace regimes where batch
//!   dedup pays.

use std::collections::HashMap;

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use embeddings::store::DenseStore;
use embeddings::{ops, TableBag};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use scratchpipe::SlotIndex;

/// `n` distinct keys in insertion order, spread over a 4× larger domain.
fn keys(n: usize, seed: u64) -> Vec<u64> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut v: Vec<u64> = (0..n * 2).map(|_| rng.gen_range(0..n as u64 * 4)).collect();
    v.sort_unstable();
    v.dedup();
    v.truncate(n);
    v
}

fn bench_probe(c: &mut Criterion) {
    let mut group = c.benchmark_group("hitmap_probe");
    for &n in &[10_000usize, 100_000] {
        let ks = keys(n, 7);
        group.throughput(Throughput::Elements(ks.len() as u64));
        group.bench_with_input(BenchmarkId::new("std_hashmap", n), &ks, |b, ks| {
            let mut m: HashMap<u64, u32> = HashMap::with_capacity(n);
            for (i, &k) in ks.iter().enumerate() {
                m.insert(k, i as u32);
            }
            b.iter(|| {
                let mut acc = 0u64;
                for &k in ks {
                    acc += u64::from(*m.get(&k).expect("resident"));
                    acc += u64::from(m.get(&(k ^ 0x5555_5555)).copied().unwrap_or(0));
                }
                black_box(acc)
            });
        });
        group.bench_with_input(BenchmarkId::new("slot_index", n), &ks, |b, ks| {
            let mut m = SlotIndex::with_capacity(n);
            for (i, &k) in ks.iter().enumerate() {
                m.insert(k, i as u32);
            }
            b.iter(|| {
                let mut acc = 0u64;
                for &k in ks {
                    acc += u64::from(m.get(k).expect("resident"));
                    acc += u64::from(m.get(k ^ 0x5555_5555).unwrap_or(0));
                }
                black_box(acc)
            });
        });
    }
    group.finish();
}

fn bench_insert_remove(c: &mut Criterion) {
    let mut group = c.benchmark_group("hitmap_insert_remove");
    for &n in &[10_000usize, 100_000] {
        let ks = keys(n, 13);
        group.throughput(Throughput::Elements(ks.len() as u64 * 2));
        group.bench_with_input(BenchmarkId::new("std_hashmap", n), &ks, |b, ks| {
            b.iter(|| {
                let mut m: HashMap<u64, u32> = HashMap::with_capacity(n);
                for (i, &k) in ks.iter().enumerate() {
                    m.insert(k, i as u32);
                }
                // Churn half the keys (the eviction/refill cycle).
                for &k in ks.iter().step_by(2) {
                    m.remove(&k);
                    m.insert(k | (1 << 62), 1);
                }
                black_box(m.len())
            });
        });
        group.bench_with_input(BenchmarkId::new("slot_index", n), &ks, |b, ks| {
            b.iter(|| {
                let mut m = SlotIndex::with_capacity(n);
                for (i, &k) in ks.iter().enumerate() {
                    m.insert(k, i as u32);
                }
                for &k in ks.iter().step_by(2) {
                    m.remove(k);
                    m.insert(k | (1 << 62), 1);
                }
                black_box(m.len())
            });
        });
    }
    group.finish();
}

/// A bag of `batch × lookups` IDs where each unique ID repeats ~`ratio`
/// times batch-wide, plus the dedup index pair over a slot permutation.
fn dup_bag(ratio: usize, seed: u64) -> (TableBag, Vec<u32>, Vec<u32>, Vec<u64>) {
    let batch = 128;
    let lookups = 8;
    let domain = (batch * lookups / ratio).max(1) as u64;
    let mut rng = StdRng::seed_from_u64(seed);
    let samples: Vec<Vec<u64>> = (0..batch)
        .map(|_| (0..lookups).map(|_| rng.gen_range(0..domain)).collect())
        .collect();
    let bag = TableBag::from_samples(&samples);
    let unique = bag.unique_ids();
    let unique_slots: Vec<u32> = unique
        .iter()
        .map(|&id| ((id * 31 + 7) % domain) as u32)
        .collect();
    let lookup_unique: Vec<u32> = bag
        .ids()
        .iter()
        .map(|id| unique.binary_search(id).expect("in unique") as u32)
        .collect();
    (bag, lookup_unique, unique_slots, unique)
}

fn bench_gather(c: &mut Criterion) {
    let dim = 32;
    let mut group = c.benchmark_group("train_gather");
    for &ratio in &[1usize, 2, 8] {
        let (bag, lookup_unique, unique_slots, unique) = dup_bag(ratio, 42);
        let domain = (128 * 8 / ratio).max(1);
        let store = DenseStore::from_flat(
            (0..domain * dim).map(|i| (i % 97) as f32 * 0.01).collect(),
            dim,
        );
        let map: HashMap<u64, u32> = unique
            .iter()
            .zip(&unique_slots)
            .map(|(&id, &s)| (id, s))
            .collect();
        group.throughput(Throughput::Elements(bag.total_lookups() as u64));
        group.bench_with_input(
            BenchmarkId::new("raw_hash_probe", format!("{ratio}x")),
            &bag,
            |b, bag| {
                let mut out = vec![0.0f32; bag.batch_size() * dim];
                b.iter(|| {
                    ops::gather_reduce_into(&store, bag, |id| map[&id] as usize, &mut out);
                    black_box(out[0])
                });
            },
        );
        group.bench_with_input(
            BenchmarkId::new("dedup_index", format!("{ratio}x")),
            &bag,
            |b, bag| {
                let mut out = vec![0.0f32; bag.batch_size() * dim];
                b.iter(|| {
                    ops::gather_reduce_indexed(
                        &store,
                        bag,
                        &lookup_unique,
                        &unique_slots,
                        0,
                        bag.batch_size(),
                        &mut out,
                    );
                    black_box(out[0])
                });
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_probe, bench_insert_remove, bench_gather);
criterion_main!(benches);
