//! Micro-benchmarks of the pipeline schedule simulator and one full
//! functional ScratchPipe iteration.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use memsim::pipeline::{PipelineSim, Resource, StageDef, StageTimes};
use memsim::SimTime;
use scratchpipe::{Pipeline, PipelineConfig, Schedule, UnitBackend};
use tracegen::{LocalityProfile, TraceConfig, TraceGenerator};

fn bench_schedule(c: &mut Criterion) {
    let sim = PipelineSim::new(vec![
        StageDef::new("Plan", Resource::Gpu),
        StageDef::new("Collect", Resource::CpuMem),
        StageDef::new("Exchange", Resource::PcieH2D),
        StageDef::new("Insert", Resource::CpuMem),
        StageDef::new("Train", Resource::Gpu),
    ]);
    let mut group = c.benchmark_group("pipeline_schedule");
    for &n in &[100usize, 1_000] {
        let iters = vec![StageTimes(vec![SimTime::from_millis(5.0); 5]); n];
        group.throughput(Throughput::Elements(n as u64));
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| sim.schedule(&iters));
        });
    }
    group.finish();
}

fn bench_functional_iteration(c: &mut Criterion) {
    let tc = TraceConfig {
        num_tables: 4,
        rows_per_table: 50_000,
        lookups_per_sample: 8,
        batch_size: 128,
        profile: LocalityProfile::Medium,
        seed: 5,
    };
    let batches = TraceGenerator::new(tc).take_batches(16);
    let mut group = c.benchmark_group("scratchpipe_functional");
    group.throughput(Throughput::Elements((batches.len() * tc.batch_size) as u64));
    group.bench_function("16_iterations", |b| {
        b.iter(|| {
            let tables: Vec<embeddings::EmbeddingTable> = (0..tc.num_tables)
                .map(|t| {
                    embeddings::EmbeddingTable::seeded(tc.rows_per_table as usize, 16, t as u64)
                })
                .collect();
            let mut rt = Pipeline::builder()
                .config(PipelineConfig::functional(16, 6_000))
                .tables(tables)
                .backend(UnitBackend::new(0.01))
                .schedule(Schedule::Sync)
                .build()
                .expect("pipeline");
            rt.run(&batches).expect("run")
        });
    });
    group.finish();
}

fn bench_threaded_iteration(c: &mut Criterion) {
    let tc = TraceConfig {
        num_tables: 4,
        rows_per_table: 50_000,
        lookups_per_sample: 8,
        batch_size: 128,
        profile: LocalityProfile::Medium,
        seed: 5,
    };
    let batches = TraceGenerator::new(tc).take_batches(16);
    let mut group = c.benchmark_group("scratchpipe_threaded");
    group.throughput(Throughput::Elements((batches.len() * tc.batch_size) as u64));
    group.bench_function("16_iterations", |b| {
        b.iter(|| {
            let tables: Vec<embeddings::EmbeddingTable> = (0..tc.num_tables)
                .map(|t| {
                    embeddings::EmbeddingTable::seeded(tc.rows_per_table as usize, 16, t as u64)
                })
                .collect();
            let mut rt = Pipeline::builder()
                .config(PipelineConfig::functional(16, 6_800))
                .tables(tables)
                .backend(UnitBackend::new(0.01))
                .schedule(Schedule::Threaded)
                .build()
                .expect("pipeline");
            rt.run(&batches).expect("threaded run")
        });
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_schedule,
    bench_functional_iteration,
    bench_threaded_iteration
);
criterion_main!(benches);
