//! Micro-benchmarks of the trace generator: Zipf sampling across
//! exponents and full mini-batch production.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use rand::rngs::StdRng;
use rand::SeedableRng;
use tracegen::{LocalityProfile, TraceConfig, TraceGenerator, ZipfSampler};

fn bench_zipf(c: &mut Criterion) {
    let mut group = c.benchmark_group("zipf_sample");
    group.throughput(Throughput::Elements(10_000));
    for &s in &[0.0, 0.37, 0.80, 1.05] {
        group.bench_with_input(BenchmarkId::from_parameter(s), &s, |b, &s| {
            let z = ZipfSampler::new(10_000_000, s);
            let mut rng = StdRng::seed_from_u64(1);
            b.iter(|| {
                let mut acc = 0u64;
                for _ in 0..10_000 {
                    acc = acc.wrapping_add(z.sample(&mut rng));
                }
                acc
            });
        });
    }
    group.finish();
}

fn bench_batch_generation(c: &mut Criterion) {
    let mut group = c.benchmark_group("batch_generation");
    for profile in [LocalityProfile::Random, LocalityProfile::High] {
        let cfg = TraceConfig {
            num_tables: 8,
            rows_per_table: 10_000_000,
            lookups_per_sample: 20,
            batch_size: 256,
            profile,
            seed: 3,
        };
        group.throughput(Throughput::Elements(cfg.lookups_per_batch()));
        group.bench_with_input(
            BenchmarkId::from_parameter(profile.name()),
            &cfg,
            |b, cfg| {
                let mut gen = TraceGenerator::new(*cfg);
                b.iter(|| gen.next_batch());
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_zipf, bench_batch_generation);
criterion_main!(benches);
