//! Micro-benchmarks of the embedding-layer training kernels (§II-B):
//! gather+reduce, gradient duplication, coalescing and SGD scatter.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use embeddings::{ops, EmbeddingTable, TableBag};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn make_bag(batch: usize, lookups: usize, rows: u64, seed: u64) -> TableBag {
    let mut rng = StdRng::seed_from_u64(seed);
    let samples: Vec<Vec<u64>> = (0..batch)
        .map(|_| (0..lookups).map(|_| rng.gen_range(0..rows)).collect())
        .collect();
    TableBag::from_samples(&samples)
}

fn bench_forward(c: &mut Criterion) {
    let mut group = c.benchmark_group("gather_reduce");
    for &dim in &[64usize, 128] {
        let table = EmbeddingTable::seeded(100_000, dim, 1);
        let bag = make_bag(256, 20, 100_000, 2);
        group.throughput(Throughput::Bytes((bag.total_lookups() * dim * 4) as u64));
        group.bench_with_input(BenchmarkId::from_parameter(dim), &dim, |b, _| {
            b.iter(|| ops::gather_reduce(&table, &bag));
        });
    }
    group.finish();
}

/// The scratchpad hot-path kernels at the dims the pipeline shapes use:
/// `gather_reduce_into` (Train forward into the flat pooled arena) and
/// `scatter_sgd_mapped` (Train backward through slot indirection).
fn bench_mapped_kernels(c: &mut Criterion) {
    let rows = 100_000u64;

    let mut group = c.benchmark_group("gather_reduce_into");
    for &dim in &[16usize, 32, 64] {
        let table = EmbeddingTable::seeded(rows as usize, dim, 1);
        let bag = make_bag(256, 20, rows, 2);
        let mut out = vec![0.0f32; bag.batch_size() * dim];
        group.throughput(Throughput::Bytes((bag.total_lookups() * dim * 4) as u64));
        group.bench_with_input(BenchmarkId::from_parameter(dim), &dim, |b, _| {
            b.iter(|| ops::gather_reduce_into(&table, &bag, |id| id as usize, &mut out));
        });
    }
    group.finish();

    let mut group = c.benchmark_group("scatter_sgd_mapped");
    for &dim in &[16usize, 32, 64] {
        let table = EmbeddingTable::seeded(rows as usize, dim, 1);
        let bag = make_bag(256, 20, rows, 3);
        let dup = ops::duplicate_gradients(&bag, &vec![0.5f32; bag.batch_size() * dim], dim);
        let (ids, summed) = ops::coalesce(bag.ids(), &dup, dim);
        group.throughput(Throughput::Bytes((ids.len() * dim * 4) as u64));
        group.bench_with_input(BenchmarkId::from_parameter(dim), &dim, |b, _| {
            let mut t = table.clone();
            b.iter(|| ops::scatter_sgd_mapped(&mut t, &ids, &summed, 0.01, |id| id as usize));
        });
    }
    group.finish();
}

fn bench_backward(c: &mut Criterion) {
    let dim = 128;
    let table = EmbeddingTable::seeded(100_000, dim, 1);
    let bag = make_bag(256, 20, 100_000, 3);
    let grads = vec![0.5f32; bag.batch_size() * dim];

    let mut group = c.benchmark_group("embedding_backward");
    group.throughput(Throughput::Bytes((bag.total_lookups() * dim * 4) as u64));
    group.bench_function("duplicate", |b| {
        b.iter(|| ops::duplicate_gradients(&bag, &grads, dim));
    });
    let dup = ops::duplicate_gradients(&bag, &grads, dim);
    group.bench_function("coalesce", |b| {
        b.iter(|| ops::coalesce(bag.ids(), &dup, dim));
    });
    let (ids, summed) = ops::coalesce(bag.ids(), &dup, dim);
    group.bench_function("scatter_sgd", |b| {
        let mut t = table.clone();
        b.iter(|| ops::scatter_sgd(&mut t, &ids, &summed, 0.01));
    });
    group.bench_function("full_backward", |b| {
        let mut t = table.clone();
        b.iter(|| ops::embedding_backward(&mut t, &bag, &grads, 0.01));
    });
    group.finish();
}

criterion_group!(benches, bench_forward, bench_mapped_kernels, bench_backward);
criterion_main!(benches);
