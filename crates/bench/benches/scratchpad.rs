//! Micro-benchmarks of ScratchPipe's cache-management structures: the
//! \[Plan\] stage (Hit-Map query + Hold-mask update + victim selection)
//! and the two Hold-mask implementations.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use scratchpipe::holdmask::{HoldMask, NaiveHoldMask};
use scratchpipe::{EvictionPolicy, ScratchpadManager, WindowConfig};

fn unique_ids(n: usize, rows: u64, seed: u64) -> Vec<u64> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut v: Vec<u64> = (0..n).map(|_| rng.gen_range(0..rows)).collect();
    v.sort_unstable();
    v.dedup();
    v
}

fn bench_plan_stage(c: &mut Criterion) {
    let mut group = c.benchmark_group("plan_stage");
    for &slots in &[10_000usize, 100_000] {
        let ids_per_batch = 2_000;
        group.throughput(Throughput::Elements(ids_per_batch as u64));
        group.bench_with_input(BenchmarkId::from_parameter(slots), &slots, |b, &slots| {
            let batches: Vec<Vec<u64>> = (0..64)
                .map(|i| unique_ids(ids_per_batch, slots as u64 * 4, i))
                .collect();
            b.iter(|| {
                let mut m = ScratchpadManager::new(slots, WindowConfig::PAPER, EvictionPolicy::Lru)
                    .expect("manager");
                for (i, ids) in batches.iter().enumerate() {
                    let f1 = batches.get(i + 1).map(|v| v.as_slice()).unwrap_or(&[]);
                    let f2 = batches.get(i + 2).map(|v| v.as_slice()).unwrap_or(&[]);
                    let _ = m.plan(ids, &[f1, f2]).expect("plan");
                }
            });
        });
    }
    group.finish();
}

fn bench_holdmask(c: &mut Criterion) {
    let slots = 100_000usize;
    let mut group = c.benchmark_group("holdmask_advance_and_set");
    group.throughput(Throughput::Elements(1_000));

    group.bench_function("naive_algorithm1", |b| {
        let mut m = NaiveHoldMask::new(slots, 6);
        let mut rng = StdRng::seed_from_u64(1);
        b.iter(|| {
            m.advance(); // O(slots) global shift
            for _ in 0..1_000 {
                m.set_bit(rng.gen_range(0..slots as u32), 3);
            }
        });
    });
    group.bench_function("stamped_lazy", |b| {
        let mut m = HoldMask::new(slots, 6);
        let mut rng = StdRng::seed_from_u64(1);
        b.iter(|| {
            m.advance(); // O(1)
            for _ in 0..1_000 {
                m.set_bit(rng.gen_range(0..slots as u32), 3);
            }
        });
    });
    group.finish();
}

criterion_group!(benches, bench_plan_stage, bench_holdmask);
criterion_main!(benches);
