//! §VI-G extension — ScratchPipe across multiple GPUs.
//!
//! The paper's discussion section sketches how ScratchPipe extends to a
//! table-wise model-parallel multi-GPU node: each GPU hosts the scratchpad
//! of its own tables ("RecSys with N embedding tables will have N
//! instances of ScratchPipe's cache manager"), so no inter-GPU RAW hazards
//! arise and the Hold-mask machinery works unchanged per GPU. The paper
//! then argues the design is *"likely not going to be cost-effective in
//! terms of TCO reduction"* because the DNNs were never the bottleneck —
//! and leaves the quantitative evaluation as future work.
//!
//! This module is that evaluation. It reuses the single-GPU analytic
//! runtime per GPU (per-table managers are already independent) and
//! re-times the pipeline under the multi-GPU resource topology:
//!
//! * \[Plan\]/\[Train\] run per GPU **in parallel** — the slowest GPU sets
//!   the stage time; the dense work is data-parallel (`/G`) with an
//!   all-to-all + all-reduce like the GPU-only comparator;
//! * \[Collect\]/\[Insert\] still funnel through the **single** host
//!   memory system — their traffic is the *sum* over GPUs;
//! * \[Exchange\] shares the host's PCIe complex (model: one x16 link per
//!   direction, as on the paper's Zion-like host).
//!
//! The punchline (see the `ext_multigpu_scratchpipe` bench): on
//! low-locality traces the pipeline stays CPU-bound, so 8× the GPUs buy
//! almost nothing; on high-locality traces the Train stage shrinks ~G-fold
//! but the price grows 8× — the single-GPU design point remains the TCO
//! winner, exactly as §VI-G predicts.

use embeddings::{SparseBatch, TableBag};
use memsim::pipeline::Resource;
use memsim::{CostModel, PowerModel, SimTime, SystemSpec, Traffic};
use scratchpipe::{EvictionPolicy, Pipeline, PipelineConfig, Schedule};

use crate::report::{SystemError, SystemReport, TrainingSystem};
use crate::scratchpipe_sys::ScratchPipeSystem;
use crate::shape::ModelShape;
use crate::timing;

/// ScratchPipe running table-wise model-parallel across `G` GPUs.
#[derive(Debug, Clone)]
pub struct ScratchPipeMultiGpu {
    shape: ModelShape,
    cache_fraction: f64,
    policy: EvictionPolicy,
    cost: CostModel,
    power: PowerModel,
    gpus: u32,
    prewarm: Option<Vec<Vec<u64>>>,
    /// Same NCCL-style per-iteration synchronization overhead as the
    /// GPU-only comparator.
    pub sync_overhead: SimTime,
}

impl ScratchPipeMultiGpu {
    /// Creates the extension on a multi-GPU node spec.
    pub fn new(shape: ModelShape, cache_fraction: f64, spec: SystemSpec) -> Self {
        let gpus = spec.num_gpus;
        ScratchPipeMultiGpu {
            shape,
            cache_fraction: cache_fraction.clamp(0.0, 1.0),
            policy: EvictionPolicy::Lru,
            cost: CostModel::new(spec),
            power: PowerModel::p3_16xlarge(),
            gpus,
            prewarm: None,
            sync_overhead: SimTime::from_millis(8.0),
        }
    }

    /// Pre-warms every table's scratchpad (hottest rows first).
    pub fn with_prewarm(mut self, hot_rows: Vec<Vec<u64>>) -> Self {
        self.prewarm = Some(hot_rows);
        self
    }

    /// Scratchpad slots per table — same §VI-D provisioning as the
    /// single-GPU system.
    pub fn slots_per_table(&self) -> usize {
        ScratchPipeSystem::new(
            self.shape.clone(),
            self.cache_fraction,
            crate::scratchpipe_sys::CacheMode::Pipelined,
            *self.cost.spec(),
        )
        .slots_per_table()
    }

    /// Which GPU owns table `t` (round-robin table-wise parallelism).
    fn owner(&self, t: usize) -> usize {
        t % self.gpus as usize
    }

    /// Splits one batch into per-GPU sub-batches (each GPU sees only the
    /// bags of its own tables, in stable table order).
    fn split_batch(&self, batch: &SparseBatch) -> Vec<Vec<TableBag>> {
        let mut per_gpu: Vec<Vec<TableBag>> = vec![Vec::new(); self.gpus as usize];
        for (t, bag) in batch.bags() {
            per_gpu[self.owner(t)].push(bag.clone());
        }
        per_gpu
    }
}

impl TrainingSystem for ScratchPipeMultiGpu {
    fn name(&self) -> &'static str {
        "ScratchPipe 8-GPU (§VI-G)"
    }

    fn simulate(&mut self, batches: &[SparseBatch]) -> Result<SystemReport, SystemError> {
        self.shape.validate().map_err(SystemError::Shape)?;
        if self.gpus < 2 {
            return Err(SystemError::Shape(
                "multi-GPU ScratchPipe needs num_gpus ≥ 2".to_owned(),
            ));
        }
        let g = self.gpus as usize;
        let slots = self.slots_per_table();

        // One analytic ScratchPipe runtime per GPU over its own tables.
        let mut per_gpu_tables: Vec<Vec<usize>> = vec![Vec::new(); g];
        for t in 0..self.shape.num_tables {
            per_gpu_tables[self.owner(t)].push(t);
        }
        let mut runtimes: Vec<Option<Pipeline<scratchpipe::UnitBackend>>> = per_gpu_tables
            .iter()
            .map(|tables| {
                if tables.is_empty() {
                    return Ok(None);
                }
                let config =
                    PipelineConfig::analytic(self.shape.dim, slots).with_policy(self.policy);
                let mut rt = Pipeline::builder()
                    .config(config)
                    .analytic_tables(tables.len(), self.shape.rows_per_table)
                    .backend(scratchpipe::UnitBackend::new(0.0))
                    .schedule(Schedule::Sync)
                    .named("scratchpipe-multi-gpu")
                    .build()?;
                if let Some(all_hot) = &self.prewarm {
                    let mine: Vec<Vec<u64>> = tables.iter().map(|&t| all_hot[t].clone()).collect();
                    rt.prewarm(&mine)?;
                }
                Ok(Some(rt))
            })
            .collect::<Result<_, scratchpipe::ScratchError>>()?;

        // Per-GPU sub-traces.
        let sub_traces: Vec<Vec<SparseBatch>> = (0..g)
            .map(|gpu| {
                batches
                    .iter()
                    .filter(|_| !per_gpu_tables[gpu].is_empty())
                    .map(|b| SparseBatch::new(self.split_batch(b)[gpu].clone()))
                    .collect()
            })
            .collect();
        let reports: Vec<Option<scratchpipe::PipelineReport>> = runtimes
            .iter_mut()
            .zip(&sub_traces)
            .map(|(rt, trace)| match rt {
                Some(rt) => rt.run(trace).map(Some),
                None => Ok(None),
            })
            .collect::<Result<_, scratchpipe::ScratchError>>()?;

        // Re-time each iteration under the multi-GPU topology.
        let pooled_bytes = self.shape.dlrm.pooled_bytes(self.shape.batch_size);
        let params = 2_100_000u64;
        let gq = self.gpus as u64;
        let times: Vec<Vec<SimTime>> = (0..batches.len())
            .map(|i| {
                // GPU-parallel stages: slowest GPU wins.
                let mut plan = SimTime::ZERO;
                let mut train_emb = SimTime::ZERO;
                // Host-funnel stages: sum over GPUs.
                let mut collect = Traffic::ZERO;
                let mut exchange = Traffic::ZERO;
                let mut insert = Traffic::ZERO;
                for rep in reports.iter().flatten() {
                    let st = &rep.records[i].traffic;
                    plan = plan.max(self.cost.traffic_time(&st.plan));
                    train_emb = train_emb.max(self.cost.gpu_time(&st.train));
                    collect += st.collect;
                    exchange += st.exchange;
                    insert += st.insert;
                }
                let max_dup = batches[i]
                    .bags()
                    .map(|(_, bag)| timing::max_dup_count(bag))
                    .max()
                    .unwrap_or(0);
                // Dense: data-parallel shard + fabric traffic + sync.
                let dense = Traffic {
                    gpu_flops: self.shape.dlrm.train_flops(self.shape.batch_size) / gq,
                    gpu_ops: self.shape.dlrm.train_kernel_count(),
                    gpu_stream_read_bytes: 2 * pooled_bytes / gq,
                    gpu_stream_write_bytes: 2 * pooled_bytes / gq,
                    nvlink_bytes: 2 * pooled_bytes * (gq - 1) / gq + 2 * params * 4 * (gq - 1) / gq,
                    ..Traffic::ZERO
                };
                let train = train_emb
                    + self.cost.traffic_time(&dense)
                    + self.sync_overhead
                    + timing::contention_time(max_dup, self.shape.dim);
                vec![
                    plan,
                    self.cost.traffic_time(&collect),
                    self.cost.traffic_time(&exchange),
                    self.cost.traffic_time(&insert),
                    train,
                ]
            })
            .collect();

        let skip = (batches.len() / 3).min(10);
        let mut report = SystemReport::from_pipelined_stages(
            self.name(),
            ["Plan", "Collect", "Exchange", "Insert", "Train"]
                .iter()
                .map(|s| (*s).to_owned())
                .collect(),
            vec![
                Resource::Gpu,
                Resource::CpuMem,
                Resource::PcieH2D,
                Resource::CpuMem,
                Resource::Gpu,
            ],
            times,
            &self.power,
            skip,
        );
        let (hits, misses) = reports.iter().flatten().fold((0u64, 0u64), |acc, r| {
            let h: u64 = r.records.iter().map(|x| x.hits).sum();
            let m: u64 = r.records.iter().map(|x| x.misses).sum();
            (acc.0 + h, acc.1 + m)
        });
        report.hit_rate = if hits + misses > 0 {
            Some(hits as f64 / (hits + misses) as f64)
        } else {
            None
        };
        Ok(report)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tracegen::{LocalityProfile, TraceGenerator};

    fn run(profile: LocalityProfile, shape: ModelShape, fraction: f64) -> SystemReport {
        let tc = shape.trace_config(profile, 3);
        let gen = TraceGenerator::new(tc);
        let slots = ScratchPipeMultiGpu::new(shape.clone(), fraction, SystemSpec::p3_16xlarge())
            .slots_per_table() as u64;
        let hot: Vec<Vec<u64>> = (0..shape.num_tables)
            .map(|t| gen.hot_rows(t, slots))
            .collect();
        let batches = gen.take_batches(8);
        let mut sys =
            ScratchPipeMultiGpu::new(shape, fraction, SystemSpec::p3_16xlarge()).with_prewarm(hot);
        sys.simulate(&batches).expect("simulate")
    }

    fn scaled_shape() -> ModelShape {
        let mut s =
            crate::runner::ExperimentConfig::scaled_down(LocalityProfile::Medium, 0.1, 1).shape;
        s.num_tables = 4;
        s
    }

    #[test]
    fn runs_and_reports_at_scaled_size() {
        let r = run(LocalityProfile::Medium, scaled_shape(), 0.1);
        assert_eq!(r.stage_names.len(), 5);
        assert!(r.iteration_time.as_millis() > 0.0);
        assert!(r.hit_rate.is_some());
    }

    #[test]
    #[cfg_attr(debug_assertions, ignore = "paper-scale: run with --release")]
    fn cpu_funnel_limits_multi_gpu_scratchpipe_at_low_locality() {
        // §VI-G's argument, quantified: on a Random trace the pipeline is
        // CPU-bound, so 8 GPUs barely improve on 1.
        let shape = ModelShape::paper_default();
        let multi = run(LocalityProfile::Random, shape.clone(), 0.02);
        let single = {
            let cfg = crate::runner::ExperimentConfig::paper(LocalityProfile::Random, 0.02, 8);
            crate::runner::run_system(crate::runner::SystemKind::ScratchPipe, &cfg)
                .expect("single-GPU")
        };
        let gain = single.iteration_time / multi.iteration_time;
        assert!(
            gain < 1.35,
            "8 GPUs should barely help a CPU-bound pipeline: gain {gain}"
        );
    }

    #[test]
    #[cfg_attr(debug_assertions, ignore = "paper-scale: run with --release")]
    fn multi_gpu_scratchpipe_is_never_cost_effective() {
        // TCO check across localities: gain < 8× price ratio everywhere.
        use memsim::{InstanceSpec, TrainingCost};
        for profile in tracegen::LocalityProfile::SWEEP {
            let shape = ModelShape::paper_default();
            let multi = run(profile, shape.clone(), 0.02);
            let cfg = crate::runner::ExperimentConfig::paper(profile, 0.02, 8);
            let single = crate::runner::run_system(crate::runner::SystemKind::ScratchPipe, &cfg)
                .expect("single");
            let multi_cost = TrainingCost::per_million_iterations(
                InstanceSpec::p3_16xlarge(),
                multi.iteration_time,
            );
            let single_cost = TrainingCost::per_million_iterations(
                InstanceSpec::p3_2xlarge(),
                single.iteration_time,
            );
            assert!(
                multi_cost.total_usd > single_cost.total_usd,
                "{profile}: multi ${} vs single ${}",
                multi_cost.total_usd,
                single_cost.total_usd
            );
        }
    }
}
