//! ScratchPipe and its straw-man as simulated training systems.
//!
//! Both share the dynamic scratchpad of the `scratchpipe` crate; they
//! differ only in scheduling:
//!
//! * [`CacheMode::Sequential`] — the §IV-B straw-man: Query/Collect/
//!   Exchange/Insert run to completion before every training step, so the
//!   iteration time is the *sum* of the stage times.
//! * [`CacheMode::Pipelined`] — full ScratchPipe: six concurrent
//!   mini-batches, Hold-mask hazard elimination, and an iteration time
//!   equal to the pipeline's steady-state initiation interval — in
//!   practice `max(GPU: Plan+Train, CPU: Collect+Insert, PCIe: Exchange)`.

use dlrm::DlrmConfig;
use embeddings::{EmbeddingTable, SparseBatch};
use memsim::pipeline::Resource;
use memsim::{CostModel, PowerModel, SimTime, SystemSpec, Traffic};
use scratchpipe::backend::{DenseBackend, PooledView, StepResult};
use scratchpipe::{EvictionPolicy, Pipeline, PipelineConfig, PipelineReport, Schedule};
use serde::{Deserialize, Serialize};

use crate::backend::DlrmBackend;
use crate::report::{SystemError, SystemReport, TrainingSystem};
use crate::shape::ModelShape;
use crate::timing;

/// Scheduling discipline of the dynamic cache.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum CacheMode {
    /// Straw-man: cache management serializes with training (§IV-B).
    Sequential,
    /// Full ScratchPipe: six-stage pipelined execution (§IV-C).
    Pipelined,
}

/// A backend that contributes only *traffic* — used for analytic
/// (paper-scale) runs where the dense arithmetic never executes.
#[derive(Debug, Clone)]
struct TrafficOnlyBackend {
    config: DlrmConfig,
}

impl DenseBackend for TrafficOnlyBackend {
    fn step(
        &mut self,
        _: usize,
        _: &SparseBatch,
        _pooled: PooledView<'_>,
        grads: &mut [f32],
    ) -> StepResult {
        grads.fill(0.0);
        StepResult { loss: 0.0 }
    }

    fn learning_rate(&self) -> f32 {
        0.0
    }

    fn traffic(&self, batch_size: usize) -> Traffic {
        Traffic {
            gpu_flops: self.config.train_flops(batch_size),
            gpu_ops: self.config.train_kernel_count(),
            gpu_stream_read_bytes: 2 * self.config.pooled_bytes(batch_size),
            gpu_stream_write_bytes: 2 * self.config.pooled_bytes(batch_size),
            ..Traffic::ZERO
        }
    }
}

/// ScratchPipe (or its straw-man) as a [`TrainingSystem`].
#[derive(Debug, Clone)]
pub struct ScratchPipeSystem {
    shape: ModelShape,
    cache_fraction: f64,
    mode: CacheMode,
    policy: EvictionPolicy,
    cost: CostModel,
    power: PowerModel,
    prewarm: Option<Vec<Vec<u64>>>,
    last_report: Option<PipelineReport>,
}

impl ScratchPipeSystem {
    /// Creates the system with the given scratchpad size (fraction of each
    /// table) and scheduling mode.
    pub fn new(shape: ModelShape, cache_fraction: f64, mode: CacheMode, spec: SystemSpec) -> Self {
        ScratchPipeSystem {
            shape,
            cache_fraction: cache_fraction.clamp(0.0, 1.0),
            mode,
            policy: EvictionPolicy::Lru,
            cost: CostModel::new(spec),
            power: PowerModel::isca_paper(),
            prewarm: None,
            last_report: None,
        }
    }

    /// Overrides the eviction policy (§VI-E ablation).
    pub fn with_policy(mut self, policy: EvictionPolicy) -> Self {
        self.policy = policy;
        self
    }

    /// Pre-warms the scratchpad with per-table hot rows (hottest first) so
    /// short simulations measure steady-state eviction traffic rather than
    /// the cold fill. Typically fed from
    /// [`TraceGenerator::hot_rows`](tracegen::TraceGenerator::hot_rows).
    pub fn with_prewarm(mut self, hot_rows: Vec<Vec<u64>>) -> Self {
        self.prewarm = Some(hot_rows);
        self
    }

    /// Scratchpad slots per table: the requested cache fraction, floored
    /// by the §VI-D provisioning rule (the window's worst-case working
    /// set must always fit; the paper sizes its Storage array the same
    /// way).
    pub fn slots_per_table(&self) -> usize {
        let want = (self.cache_fraction * self.shape.rows_per_table as f64).floor() as usize;
        let window_batches = 4; // past(3) + current — future rows are only
                                // held when already cached
        let per_batch = self.shape.batch_size * self.shape.lookups_per_sample;
        let floor = (window_batches * per_batch * 21 / 20).max(per_batch) + 8;
        want.max(floor).min(self.shape.rows_per_table as usize)
    }

    /// The cache-management report of the most recent simulation.
    pub fn last_pipeline_report(&self) -> Option<&PipelineReport> {
        self.last_report.as_ref()
    }

    /// The pipeline schedule matching this cache mode.
    fn schedule(&self) -> Schedule {
        match self.mode {
            CacheMode::Sequential => Schedule::Sequential,
            CacheMode::Pipelined => Schedule::Sync,
        }
    }

    /// Stage names shared by both modes.
    fn stage_names() -> Vec<String> {
        ["Plan", "Collect", "Exchange", "Insert", "Train"]
            .iter()
            .map(|s| (*s).to_owned())
            .collect()
    }

    fn stage_resources() -> Vec<Resource> {
        vec![
            Resource::Gpu,
            Resource::CpuMem,
            Resource::PcieH2D,
            Resource::CpuMem,
            Resource::Gpu,
        ]
    }

    /// Trains real tables functionally (used by the equivalence tests and
    /// the examples); returns the trained tables and the cache report.
    ///
    /// # Errors
    ///
    /// Propagates runtime errors (capacity, hazards, shape).
    pub fn train_functional(
        &self,
        tables: Vec<EmbeddingTable>,
        batches: &[SparseBatch],
        backend: DlrmBackend,
    ) -> Result<(Vec<EmbeddingTable>, DlrmBackend, PipelineReport), SystemError> {
        let config = PipelineConfig::functional(self.shape.dim, self.slots_per_table())
            .with_policy(self.policy);
        let config = match self.mode {
            CacheMode::Sequential => config.sequential(),
            CacheMode::Pipelined => config,
        };
        let mut pipeline = Pipeline::builder()
            .config(config)
            .tables(tables)
            .backend(backend)
            .schedule(self.schedule())
            .named("scratchpipe-system")
            .build()?;
        if let Some(rows) = &self.prewarm {
            pipeline.prewarm(rows)?;
        }
        let report = pipeline.run(batches)?;
        let backend = pipeline.backend().clone();
        Ok((pipeline.into_tables(), backend, report))
    }
}

impl TrainingSystem for ScratchPipeSystem {
    fn name(&self) -> &'static str {
        match self.mode {
            CacheMode::Sequential => "Straw-man",
            CacheMode::Pipelined => "ScratchPipe",
        }
    }

    fn simulate(&mut self, batches: &[SparseBatch]) -> Result<SystemReport, SystemError> {
        self.shape.validate().map_err(SystemError::Shape)?;
        let config = PipelineConfig::analytic(self.shape.dim, self.slots_per_table())
            .with_policy(self.policy);
        let config = match self.mode {
            CacheMode::Sequential => config.sequential(),
            CacheMode::Pipelined => config,
        };
        let backend = TrafficOnlyBackend {
            config: self.shape.dlrm.clone(),
        };
        let mut pipeline = Pipeline::builder()
            .config(config)
            .analytic_tables(self.shape.num_tables, self.shape.rows_per_table)
            .backend(backend)
            .schedule(self.schedule())
            .named("scratchpipe-analytic")
            .build()?;
        if let Some(rows) = &self.prewarm {
            pipeline.prewarm(rows)?;
        }
        let report = pipeline.run(batches)?;

        // Map per-iteration stage traffic to stage latencies, adding the
        // hot-row scatter-contention penalty to the Train stage.
        let times: Vec<Vec<SimTime>> = report
            .records
            .iter()
            .zip(batches)
            .map(|(rec, batch)| {
                let max_dup = batch
                    .bags()
                    .map(|(_, bag)| timing::max_dup_count(bag))
                    .max()
                    .unwrap_or(0);
                let st = &rec.traffic;
                vec![
                    self.cost.traffic_time(&st.plan),
                    self.cost.traffic_time(&st.collect),
                    self.cost.traffic_time(&st.exchange),
                    self.cost.traffic_time(&st.insert),
                    self.cost.traffic_time(&st.train)
                        + timing::contention_time(max_dup, self.shape.dim),
                ]
            })
            .collect();

        // Skip the cold-fill transient when averaging: the scratchpad
        // starts empty, so early iterations miss on everything.
        let skip = (batches.len() / 3).min(10);
        let mut sys_report = match self.mode {
            CacheMode::Sequential => SystemReport::from_sequential_stages(
                self.name(),
                Self::stage_names(),
                Self::stage_resources(),
                times,
                &self.power,
                skip,
            ),
            CacheMode::Pipelined => SystemReport::from_pipelined_stages(
                self.name(),
                Self::stage_names(),
                Self::stage_resources(),
                times,
                &self.power,
                skip,
            ),
        };
        sys_report.hit_rate = Some(report.hit_rate());
        self.last_report = Some(report);
        Ok(sys_report)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tracegen::{LocalityProfile, TraceGenerator};

    fn run(mode: CacheMode, profile: LocalityProfile, fraction: f64, n: usize) -> SystemReport {
        let shape = ModelShape::paper_default();
        let tc = shape.trace_config(profile, 3);
        let batches = TraceGenerator::new(tc).take_batches(n);
        let mut sys = ScratchPipeSystem::new(shape, fraction, mode, SystemSpec::isca_paper());
        sys.simulate(&batches).expect("simulate")
    }

    #[test]
    #[cfg_attr(debug_assertions, ignore = "paper-scale: run with --release")]
    fn paper_scale_iteration_lands_in_table1_band() {
        // Table I: ScratchPipe 26–48 ms per iteration across localities.
        let rand = run(CacheMode::Pipelined, LocalityProfile::Random, 0.02, 12);
        let high = run(CacheMode::Pipelined, LocalityProfile::High, 0.02, 12);
        let r = rand.iteration_time.as_millis();
        let h = high.iteration_time.as_millis();
        assert!((30.0..75.0).contains(&r), "random {r} ms");
        assert!((15.0..40.0).contains(&h), "high {h} ms");
        assert!(r > h, "locality must reduce iteration time");
    }

    #[test]
    #[cfg_attr(debug_assertions, ignore = "paper-scale: run with --release")]
    fn pipelining_beats_strawman() {
        let straw = run(CacheMode::Sequential, LocalityProfile::Medium, 0.04, 10);
        let pipe = run(CacheMode::Pipelined, LocalityProfile::Medium, 0.04, 10);
        let speedup = pipe.speedup_over(&straw);
        assert!(speedup > 1.3, "pipelining speedup {speedup}");
    }

    #[test]
    #[cfg_attr(debug_assertions, ignore = "paper-scale: run with --release")]
    fn provisioning_floor_prevents_capacity_exhaustion() {
        // Even a 0.1 % cache request gets the §VI-D floor and must run.
        let r = run(CacheMode::Pipelined, LocalityProfile::Random, 0.001, 8);
        assert!(r.iteration_time > SimTime::ZERO);
    }

    #[test]
    fn slots_respect_fraction_when_above_floor() {
        let shape = ModelShape::paper_default();
        let sys =
            ScratchPipeSystem::new(shape, 0.05, CacheMode::Pipelined, SystemSpec::isca_paper());
        assert_eq!(sys.slots_per_table(), 500_000);
    }

    #[test]
    #[cfg_attr(debug_assertions, ignore = "paper-scale: run with --release")]
    fn train_stage_dominates_at_high_locality() {
        // Figure 12(b): with locality, Collect/Insert shrink and the GPU
        // Train stage becomes the pipeline bottleneck.
        let r = run(CacheMode::Pipelined, LocalityProfile::High, 0.10, 12);
        let train = r.breakdown[4].1;
        let collect = r.breakdown[1].1;
        assert!(train > collect, "train {train} vs collect {collect}");
    }

    #[test]
    #[cfg_attr(debug_assertions, ignore = "paper-scale: run with --release")]
    fn cpu_stages_dominate_at_random() {
        // Figure 12(b): with no locality, Collect+Insert grow past Train.
        let r = run(CacheMode::Pipelined, LocalityProfile::Random, 0.02, 12);
        let train = r.breakdown[4].1;
        let cpu = r.breakdown[1].1 + r.breakdown[3].1;
        assert!(cpu > train, "cpu {cpu} vs train {train}");
    }

    #[test]
    #[cfg_attr(debug_assertions, ignore = "paper-scale: run with --release")]
    fn hit_rate_reported() {
        // Note: this is the *unique-ID* hit rate over a short run that
        // includes the cold fill, so it sits well below the per-lookup
        // steady-state hit rate the paper quotes.
        let r = run(CacheMode::Pipelined, LocalityProfile::High, 0.05, 10);
        let hr = r.hit_rate.expect("hit rate");
        assert!(hr > 0.15 && hr < 1.0, "hit rate {hr}");
    }
}
