//! The static top-N GPU embedding cache baseline (paper Figure 4(b)).
//!
//! Following Yin et al. (TT-Rec), the most-frequently-accessed `N` rows of
//! every table are pinned in GPU memory for the whole run — no eviction,
//! no write-back (the cached rows' master copy *is* the GPU copy). Hit
//! lookups train at GPU speed; missed lookups pay the full CPU path:
//! gather on the CPU, PCIe crossing, and — the expensive part — gradient
//! duplicate/coalesce/scatter back on the CPU.

use embeddings::SparseBatch;
use memsim::cost::primitives;
use memsim::pipeline::Resource;
use memsim::{CostModel, PowerModel, SimTime, SystemSpec, Traffic};
use tracegen::HotOracle;

use crate::report::{SystemError, SystemReport, TrainingSystem};
use crate::shape::ModelShape;
use crate::timing;

/// Per-batch hot/cold split statistics.
#[derive(Debug, Clone, Copy, Default)]
struct Split {
    hot_lookups: u64,
    cold_lookups: u64,
    hot_unique: u64,
    cold_unique: u64,
    max_dup_hot: u64,
}

/// Hybrid CPU-GPU training with a static top-N GPU embedding cache.
#[derive(Debug, Clone)]
pub struct StaticCacheSystem {
    shape: ModelShape,
    cache_fraction: f64,
    oracle: HotOracle,
    cost: CostModel,
    power: PowerModel,
    /// Framework slowdown of the CPU miss path. Lower than the pure-CPU
    /// baseline's factor: the missed-ID indices arrive pre-deduplicated
    /// and densely packed from the GPU's hit filter, which vectorizes far
    /// better than full-width framework operators. See `EXPERIMENTS.md`.
    pub framework_factor: f64,
    hits_seen: u64,
    lookups_seen: u64,
}

impl StaticCacheSystem {
    /// Creates the static-cache baseline.
    ///
    /// * `cache_fraction` — fraction of every table pinned on the GPU
    ///   (the paper sweeps 2–10 %).
    /// * `oracle` — popularity oracle from the trace generator, standing
    ///   in for the offline frequency profile Yin et al. compute.
    pub fn new(
        shape: ModelShape,
        cache_fraction: f64,
        oracle: HotOracle,
        spec: SystemSpec,
    ) -> Self {
        StaticCacheSystem {
            shape,
            cache_fraction: cache_fraction.clamp(0.0, 1.0),
            oracle,
            cost: CostModel::new(spec),
            power: PowerModel::isca_paper(),
            framework_factor: 1.4,
            hits_seen: 0,
            lookups_seen: 0,
        }
    }

    /// The configured cache fraction.
    pub fn cache_fraction(&self) -> f64 {
        self.cache_fraction
    }

    fn split(&self, batch: &SparseBatch) -> Split {
        let hot_rows = (self.cache_fraction * self.shape.rows_per_table as f64).floor() as u64;
        let mut sp = Split::default();
        for (t, bag) in batch.bags() {
            for &id in bag.ids() {
                if self.oracle.is_hot(t, id, hot_rows) {
                    sp.hot_lookups += 1;
                } else {
                    sp.cold_lookups += 1;
                }
            }
            for &id in &bag.unique_ids() {
                if self.oracle.is_hot(t, id, hot_rows) {
                    sp.hot_unique += 1;
                } else {
                    sp.cold_unique += 1;
                }
            }
            sp.max_dup_hot = sp.max_dup_hot.max(timing::max_dup_count(bag));
        }
        sp
    }

    fn stage_times(&mut self, batch: &SparseBatch) -> Vec<SimTime> {
        let s = &self.shape;
        let rb = s.row_bytes();
        let dim = s.dim as u32;
        let sp = self.split(batch);
        self.hits_seen += sp.hot_lookups;
        self.lookups_seen += sp.hot_lookups + sp.cold_lookups;
        let total_lookups = sp.hot_lookups + sp.cold_lookups;
        let pooled_bytes = s.dlrm.pooled_bytes(s.batch_size);

        // [0] Sparse IDs cross to the GPU; the hit filter runs there.
        let filter = Traffic {
            pcie_h2d_bytes: total_lookups * 8,
            gpu_random_read_bytes: total_lookups * 16,
            gpu_ops: s.num_tables as u32,
            pcie_ops: 1,
            ..Traffic::ZERO
        };
        // [1] Missed IDs return to the CPU.
        let miss_ids = Traffic {
            pcie_d2h_bytes: sp.cold_unique * 8,
            pcie_ops: 1,
            ..Traffic::ZERO
        };
        // [2] CPU gathers the missed rows into a pinned staging buffer.
        let cpu_gather = Traffic {
            cpu_random_read_bytes: sp.cold_unique * rb,
            cpu_stream_write_bytes: sp.cold_unique * rb,
            cpu_ops: s.num_tables as u32,
            ..Traffic::ZERO
        };
        // [3] Missed rows + dense features cross to the GPU.
        let h2d = Traffic {
            pcie_h2d_bytes: sp.cold_unique * rb + (s.batch_size * s.dlrm.dense_dim * 4) as u64,
            pcie_ops: 1,
            ..Traffic::ZERO
        };
        // [4] GPU: gather hit + staged rows, reduce, dense fwd/bwd, and the
        //     hit rows' duplicate/coalesce/scatter — all at HBM speed.
        let coalesce_hot = primitives::coalesce_bytes(sp.hot_lookups, dim);
        let gpu = Traffic {
            gpu_random_read_bytes: primitives::gather_bytes(total_lookups, dim)
                + sp.hot_unique * rb,
            gpu_random_write_bytes: sp.hot_unique * rb,
            gpu_stream_write_bytes: pooled_bytes
                + primitives::duplicate_bytes(sp.hot_lookups, dim)
                + (coalesce_hot - coalesce_hot / 2)
                + 2 * pooled_bytes,
            gpu_stream_read_bytes: coalesce_hot / 2 + 2 * pooled_bytes,
            gpu_flops: s.dlrm.train_flops(s.batch_size),
            gpu_ops: s.dlrm.train_kernel_count() + 5 * s.num_tables as u32,
            ..Traffic::ZERO
        };
        let gpu_time =
            self.cost.traffic_time(&gpu) + timing::contention_time(sp.max_dup_hot, s.dim);
        // [5] Pooled-embedding gradients return for the missed rows.
        let grad_d2h = Traffic {
            pcie_d2h_bytes: pooled_bytes,
            pcie_ops: 1,
            ..Traffic::ZERO
        };
        // [6] CPU backward for the missed rows: duplicate → coalesce →
        //     scatter over slow CPU DRAM (the stage the paper blames).
        let coalesce_cold = primitives::coalesce_bytes(sp.cold_lookups, dim);
        let cpu_bwd = Traffic {
            cpu_stream_write_bytes: primitives::duplicate_bytes(sp.cold_lookups, dim)
                + (coalesce_cold - coalesce_cold / 2),
            cpu_stream_read_bytes: coalesce_cold / 2,
            cpu_random_read_bytes: sp.cold_unique * rb,
            cpu_random_write_bytes: sp.cold_unique * rb,
            cpu_ops: 3 * s.num_tables as u32,
            ..Traffic::ZERO
        };

        vec![
            self.cost.traffic_time(&filter),
            self.cost.traffic_time(&miss_ids),
            self.cost.traffic_time(&cpu_gather) * self.framework_factor,
            self.cost.traffic_time(&h2d),
            gpu_time,
            self.cost.traffic_time(&grad_d2h),
            self.cost.traffic_time(&cpu_bwd) * self.framework_factor,
        ]
    }

    /// Figure 5 grouping for this system.
    pub const FIG5_GROUPS: [(&'static str, &'static [usize]); 3] = [
        ("CPU embedding forward", &[2]),
        ("CPU embedding backward", &[6]),
        ("GPU", &[0, 1, 3, 4, 5]),
    ];
}

impl TrainingSystem for StaticCacheSystem {
    fn name(&self) -> &'static str {
        "Static cache"
    }

    fn simulate(&mut self, batches: &[SparseBatch]) -> Result<SystemReport, SystemError> {
        self.shape.validate().map_err(SystemError::Shape)?;
        if self.oracle.num_tables() != self.shape.num_tables {
            return Err(SystemError::Shape(format!(
                "oracle covers {} tables, shape has {}",
                self.oracle.num_tables(),
                self.shape.num_tables
            )));
        }
        self.hits_seen = 0;
        self.lookups_seen = 0;
        let times: Vec<Vec<SimTime>> = batches.iter().map(|b| self.stage_times(b)).collect();
        let mut report = SystemReport::from_sequential_stages(
            self.name(),
            vec![
                "ID upload + hit filter".to_owned(),
                "Missed-ID D2H".to_owned(),
                "CPU gather missed".to_owned(),
                "Missed rows H2D".to_owned(),
                "GPU hit path + dense".to_owned(),
                "Pooled-grad D2H".to_owned(),
                "CPU backward missed".to_owned(),
            ],
            vec![
                Resource::Gpu,
                Resource::PcieD2H,
                Resource::CpuMem,
                Resource::PcieH2D,
                Resource::Gpu,
                Resource::PcieD2H,
                Resource::CpuMem,
            ],
            times,
            &self.power,
            0, // static cache: behavior is stationary from iteration 0
        );
        report.hit_rate = if self.lookups_seen == 0 {
            None
        } else {
            Some(self.hits_seen as f64 / self.lookups_seen as f64)
        };
        Ok(report)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tracegen::{LocalityProfile, TraceGenerator};

    fn run(profile: LocalityProfile, fraction: f64, n: usize) -> SystemReport {
        let shape = ModelShape::paper_default();
        let tc = shape.trace_config(profile, 3);
        let gen = TraceGenerator::new(tc);
        let oracle = gen.hot_oracle();
        let batches = gen.take_batches(n);
        let mut sys = StaticCacheSystem::new(shape, fraction, oracle, SystemSpec::isca_paper());
        sys.simulate(&batches).expect("simulate")
    }

    #[test]
    #[cfg_attr(debug_assertions, ignore = "paper-scale: run with --release")]
    fn hit_rate_tracks_locality() {
        // Paper §III-B: 12 % miss (high locality) to 91 % miss (low).
        let high = run(LocalityProfile::High, 0.02, 2);
        let low = run(LocalityProfile::Low, 0.02, 2);
        let rand = run(LocalityProfile::Random, 0.02, 2);
        let h = high.hit_rate.unwrap();
        let l = low.hit_rate.unwrap();
        let r = rand.hit_rate.unwrap();
        assert!(h > 0.6, "high-locality hit rate {h}");
        assert!(l < 0.35, "low-locality hit rate {l}");
        assert!((r - 0.02).abs() < 0.01, "random hit rate {r}");
    }

    #[test]
    #[cfg_attr(debug_assertions, ignore = "paper-scale: run with --release")]
    fn static_cache_beats_hybrid_with_locality() {
        use crate::hybrid::HybridCpuGpu;
        let shape = ModelShape::paper_default();
        let tc = shape.trace_config(LocalityProfile::High, 3);
        let gen = TraceGenerator::new(tc);
        let oracle = gen.hot_oracle();
        let batches = gen.take_batches(2);
        let mut hybrid = HybridCpuGpu::new(shape.clone(), SystemSpec::isca_paper());
        let hybrid_r = hybrid.simulate(&batches).unwrap();
        let mut cache = StaticCacheSystem::new(shape, 0.10, oracle, SystemSpec::isca_paper());
        let cache_r = cache.simulate(&batches).unwrap();
        let speedup = cache_r.speedup_over(&hybrid_r);
        assert!(speedup > 1.5, "static cache speedup {speedup}");
    }

    #[test]
    #[cfg_attr(debug_assertions, ignore = "paper-scale: run with --release")]
    fn bigger_caches_help() {
        let small = run(LocalityProfile::Medium, 0.02, 2);
        let big = run(LocalityProfile::Medium, 0.10, 2);
        assert!(big.iteration_time < small.iteration_time);
        assert!(big.hit_rate.unwrap() > small.hit_rate.unwrap());
    }

    #[test]
    #[cfg_attr(debug_assertions, ignore = "paper-scale: run with --release")]
    fn cpu_misses_still_dominate_at_low_locality() {
        // Paper: even with a cache, 77–94 % of time is CPU-side for the
        // missed rows when locality is poor.
        let r = run(LocalityProfile::Low, 0.02, 2);
        let g = r.grouped_breakdown(&StaticCacheSystem::FIG5_GROUPS);
        let cpu = g[0].1 + g[1].1;
        let total: SimTime = g.iter().map(|x| x.1).sum();
        assert!(cpu / total > 0.6, "cpu share {}", cpu / total);
    }

    #[test]
    fn oracle_table_mismatch_rejected() {
        let shape = ModelShape::paper_default();
        let small = ModelShape::tiny();
        let gen = TraceGenerator::new(small.trace_config(LocalityProfile::High, 1));
        let oracle = gen.hot_oracle();
        let mut sys = StaticCacheSystem::new(shape, 0.05, oracle, SystemSpec::isca_paper());
        assert!(matches!(sys.simulate(&[]), Err(SystemError::Shape(_))));
    }
}
