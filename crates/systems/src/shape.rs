//! The workload shape shared by every system.

use dlrm::DlrmConfig;
use serde::{Deserialize, Serialize};
use tracegen::TraceConfig;

/// Model + workload dimensions, common to all simulated systems.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ModelShape {
    /// Number of embedding tables.
    pub num_tables: usize,
    /// Rows per embedding table.
    pub rows_per_table: u64,
    /// Embedding vector width.
    pub dim: usize,
    /// Embedding gathers per table per sample.
    pub lookups_per_sample: usize,
    /// Samples per mini-batch.
    pub batch_size: usize,
    /// Dense-model shapes (MLPs + interaction).
    pub dlrm: DlrmConfig,
}

impl ModelShape {
    /// The paper's default model (§V): 8 tables × 10 M rows × 128-dim
    /// (40 GB total), 20 lookups/table, batch 2048, MLPerf-style MLPs.
    pub fn paper_default() -> Self {
        ModelShape {
            num_tables: 8,
            rows_per_table: 10_000_000,
            dim: 128,
            lookups_per_sample: 20,
            batch_size: 2048,
            dlrm: DlrmConfig::paper_default(),
        }
    }

    /// Paper shape with overridden embedding dimension (Figure 15(a)).
    pub fn paper_with_dim(dim: usize) -> Self {
        ModelShape {
            dim,
            dlrm: DlrmConfig::paper_with(dim, 8),
            ..Self::paper_default()
        }
    }

    /// Paper shape with overridden lookups per table (Figure 15(b)).
    pub fn paper_with_lookups(lookups: usize) -> Self {
        ModelShape {
            lookups_per_sample: lookups,
            ..Self::paper_default()
        }
    }

    /// A small shape for functional (real-arithmetic) runs and tests.
    pub fn tiny() -> Self {
        let dlrm = DlrmConfig::tiny_with_tables(3);
        ModelShape {
            num_tables: 3,
            rows_per_table: 2_000,
            dim: dlrm.emb_dim,
            lookups_per_sample: 4,
            batch_size: 16,
            dlrm,
        }
    }

    /// Bytes of one embedding row.
    pub fn row_bytes(&self) -> u64 {
        self.dim as u64 * 4
    }

    /// Total sparse lookups per mini-batch across all tables.
    pub fn lookups_per_batch(&self) -> u64 {
        (self.num_tables * self.lookups_per_sample * self.batch_size) as u64
    }

    /// Total model size of the embedding tables in bytes (the paper's
    /// 40 GB headline for the default shape).
    pub fn embedding_bytes(&self) -> u64 {
        self.num_tables as u64 * self.rows_per_table * self.row_bytes()
    }

    /// The matching trace-generator configuration.
    pub fn trace_config(&self, profile: tracegen::LocalityProfile, seed: u64) -> TraceConfig {
        TraceConfig {
            num_tables: self.num_tables,
            rows_per_table: self.rows_per_table,
            lookups_per_sample: self.lookups_per_sample,
            batch_size: self.batch_size,
            profile,
            seed,
        }
    }

    /// Validates internal consistency (DLRM shapes vs embedding shapes).
    pub fn validate(&self) -> Result<(), String> {
        self.dlrm.validate()?;
        if self.dlrm.num_tables != self.num_tables {
            return Err(format!(
                "dlrm.num_tables {} != num_tables {}",
                self.dlrm.num_tables, self.num_tables
            ));
        }
        if self.dlrm.emb_dim != self.dim {
            return Err(format!(
                "dlrm.emb_dim {} != dim {}",
                self.dlrm.emb_dim, self.dim
            ));
        }
        if self.rows_per_table == 0 || self.batch_size == 0 || self.lookups_per_sample == 0 {
            return Err("degenerate workload dimensions".to_owned());
        }
        Ok(())
    }
}

impl Default for ModelShape {
    fn default() -> Self {
        Self::paper_default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tracegen::LocalityProfile;

    #[test]
    fn paper_default_is_40gb() {
        let s = ModelShape::paper_default();
        s.validate().expect("valid");
        assert_eq!(s.embedding_bytes(), 8 * 10_000_000 * 128 * 4);
        assert_eq!(s.embedding_bytes() / (1 << 30), 38); // ≈ 40 GB
        assert_eq!(s.lookups_per_batch(), 327_680);
        assert_eq!(s.row_bytes(), 512);
    }

    #[test]
    fn dim_and_lookup_variants_validate() {
        for dim in [64, 128, 256] {
            ModelShape::paper_with_dim(dim).validate().expect("valid");
        }
        for l in [1, 20, 50] {
            ModelShape::paper_with_lookups(l).validate().expect("valid");
        }
    }

    #[test]
    fn tiny_is_consistent() {
        ModelShape::tiny().validate().expect("valid");
    }

    #[test]
    fn trace_config_round_trips() {
        let s = ModelShape::tiny();
        let tc = s.trace_config(LocalityProfile::High, 9);
        assert_eq!(tc.num_tables, s.num_tables);
        assert_eq!(tc.rows_per_table, s.rows_per_table);
        assert_eq!(tc.batch_size, s.batch_size);
        assert_eq!(tc.seed, 9);
    }

    #[test]
    fn validation_catches_mismatch() {
        let mut s = ModelShape::tiny();
        s.num_tables = 5;
        assert!(s.validate().is_err());
        let mut s = ModelShape::tiny();
        s.dim = 99;
        assert!(s.validate().is_err());
    }
}
