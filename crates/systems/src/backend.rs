//! The DLRM dense backend plugged into the \[Train\] stage.

use dlrm::{DlrmConfig, DlrmModel, DlrmScratch};
use embeddings::SparseBatch;
use memsim::Traffic;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use scratchpipe::backend::{DenseBackend, PooledView, StepResult};

/// A full DLRM dense path (bottom MLP → interaction → top MLP → BCE) as a
/// ScratchPipe [`DenseBackend`].
///
/// The \[Train\] stage's flat pooled arena is handed to the DLRM
/// interaction *without copying* — both sides use the same
/// `num_tables × batch × dim` stride-indexed layout — and the model writes
/// the embedding gradients straight into the runtime's gradient arena.
/// The backend holds a [`DlrmScratch`], so the large MLP activation
/// buffers are reused across steps too.
///
/// Dense inputs and click labels are generated *deterministically from the
/// iteration index*, so two systems training the same trace see the same
/// samples — the requirement for the cross-system bit-equality tests. In a
/// production system these would come from the dataset loader alongside
/// the sparse IDs.
#[derive(Debug, Clone)]
pub struct DlrmBackend {
    model: DlrmModel,
    config: DlrmConfig,
    lr: f32,
    seed: u64,
    scratch: DlrmScratch,
}

impl DlrmBackend {
    /// Creates a backend with a seeded model and input stream.
    ///
    /// # Panics
    ///
    /// Panics if `config` fails validation.
    pub fn new(config: &DlrmConfig, lr: f32, seed: u64) -> Self {
        DlrmBackend {
            model: DlrmModel::seeded(config, seed),
            config: config.clone(),
            lr,
            seed,
            scratch: DlrmScratch::new(),
        }
    }

    /// The dense model (for equality assertions in tests).
    pub fn model(&self) -> &DlrmModel {
        &self.model
    }

    /// Deterministic dense features and labels for iteration `i`.
    pub fn inputs_for(&self, i: usize, batch_size: usize) -> (Vec<f32>, Vec<f32>) {
        let mut rng = StdRng::seed_from_u64(self.seed ^ (0xDA7A_0000 + i as u64));
        let dense = (0..batch_size * self.config.dense_dim)
            .map(|_| rng.gen_range(-1.0..1.0))
            .collect();
        let labels = (0..batch_size)
            .map(|_| f32::from(rng.gen_bool(0.5)))
            .collect();
        (dense, labels)
    }
}

impl DenseBackend for DlrmBackend {
    fn step(
        &mut self,
        iteration: usize,
        batch: &SparseBatch,
        pooled: PooledView<'_>,
        grads: &mut [f32],
    ) -> StepResult {
        let (dense, labels) = self.inputs_for(iteration, batch.batch_size());
        let out = self.model.train_step_with(
            &mut self.scratch,
            &dense,
            pooled.as_flat(),
            &labels,
            self.lr,
            grads,
        );
        StepResult { loss: out.loss }
    }

    fn learning_rate(&self) -> f32 {
        self.lr
    }

    fn traffic(&self, batch_size: usize) -> Traffic {
        Traffic {
            gpu_flops: self.config.train_flops(batch_size),
            gpu_ops: self.config.train_kernel_count(),
            // Activation reads/writes through the MLP stack: roughly the
            // pooled-embedding volume twice (forward) and twice (backward).
            gpu_stream_read_bytes: 2 * self.config.pooled_bytes(batch_size),
            gpu_stream_write_bytes: 2 * self.config.pooled_bytes(batch_size),
            ..Traffic::ZERO
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn inputs_are_deterministic_per_iteration() {
        let b = DlrmBackend::new(&DlrmConfig::tiny(), 0.01, 7);
        let (d1, l1) = b.inputs_for(3, 8);
        let (d2, l2) = b.inputs_for(3, 8);
        assert_eq!(d1, d2);
        assert_eq!(l1, l2);
        let (d3, _) = b.inputs_for(4, 8);
        assert_ne!(d1, d3);
    }

    #[test]
    fn step_trains_and_reports_loss() {
        let cfg = DlrmConfig::tiny();
        let mut b = DlrmBackend::new(&cfg, 0.05, 1);
        let batch = SparseBatch::from_rows(
            cfg.num_tables,
            &[vec![vec![0], vec![1]], vec![vec![2], vec![3]]],
        );
        let pooled = vec![0.1f32; cfg.num_tables * 2 * cfg.emb_dim];
        let mut grads = vec![0.0f32; pooled.len()];
        let view = PooledView::new(&pooled, cfg.num_tables, 2, cfg.emb_dim);
        let r = b.step(0, &batch, view, &mut grads);
        assert!(r.loss.is_finite() && r.loss > 0.0);
        assert!(
            grads.iter().any(|&g| g != 0.0),
            "step must write embedding gradients"
        );
    }

    #[test]
    fn two_backends_same_seed_train_identically() {
        let cfg = DlrmConfig::tiny();
        let mut a = DlrmBackend::new(&cfg, 0.05, 3);
        let mut b = DlrmBackend::new(&cfg, 0.05, 3);
        let batch = SparseBatch::from_rows(cfg.num_tables, &[vec![vec![0], vec![1]]]);
        let pooled = vec![0.3f32; cfg.num_tables * cfg.emb_dim];
        let mut ga = vec![0.0f32; pooled.len()];
        let mut gb = vec![0.0f32; pooled.len()];
        for i in 0..4 {
            let view = PooledView::new(&pooled, cfg.num_tables, 1, cfg.emb_dim);
            let ra = a.step(i, &batch, view, &mut ga);
            let rb = b.step(i, &batch, view, &mut gb);
            assert_eq!(ra.loss.to_bits(), rb.loss.to_bits());
            for (x, y) in ga.iter().zip(&gb) {
                assert_eq!(x.to_bits(), y.to_bits());
            }
        }
        assert!(a.model().bit_eq(b.model()));
    }

    #[test]
    fn traffic_reflects_model_size() {
        let small = DlrmBackend::new(&DlrmConfig::tiny(), 0.01, 0).traffic(64);
        let big = DlrmBackend::new(&DlrmConfig::paper_default(), 0.01, 0).traffic(2048);
        assert!(big.gpu_flops > 1000 * small.gpu_flops);
        assert!(big.gpu_ops > 0);
    }
}
