//! The 8-GPU "GPU-only" comparator (paper §VI-F, Table I).
//!
//! Embedding tables are partitioned table-wise across the GPUs' pooled HBM
//! (model parallelism); every GPU runs the embedding forward/backward of
//! its own tables locally, pooled embeddings cross the NVLink fabric in an
//! all-to-all, and the MLPs train data-parallel with a gradient
//! all-reduce. Everything runs at GPU memory speed — the paper's point is
//! that this costs 8 GPUs while ScratchPipe gets most of the way there
//! with one.

use embeddings::SparseBatch;
use memsim::cost::primitives;
use memsim::pipeline::Resource;
use memsim::{CostModel, PowerModel, SimTime, SystemSpec, Traffic};

use crate::report::{SystemError, SystemReport, TrainingSystem};
use crate::shape::ModelShape;
use crate::timing;

/// Table-wise model-parallel, data-parallel-MLP multi-GPU training.
#[derive(Debug, Clone)]
pub struct MultiGpuSystem {
    shape: ModelShape,
    cost: CostModel,
    power: PowerModel,
    gpus: u32,
    /// Fixed per-iteration synchronization overhead: NCCL all-to-all /
    /// all-reduce launch latencies, stream synchronization and straggler
    /// imbalance across 8 workers (8 ms/iteration). Calibrated against
    /// Table I's 16–19 ms band; see `EXPERIMENTS.md`.
    pub sync_overhead: SimTime,
}

impl MultiGpuSystem {
    /// Creates the comparator on an 8-GPU node spec.
    pub fn new(shape: ModelShape, spec: SystemSpec) -> Self {
        let gpus = spec.num_gpus;
        MultiGpuSystem {
            shape,
            cost: CostModel::new(spec),
            power: PowerModel::p3_16xlarge(),
            gpus,
            sync_overhead: SimTime::from_millis(8.0),
        }
    }

    fn stage_times(&self, batch: &SparseBatch) -> Vec<SimTime> {
        let s = &self.shape;
        let g = self.gpus as u64;
        let rb = s.row_bytes();
        let dim = s.dim as u32;
        let tables_per_gpu = (s.num_tables as u64).div_ceil(g);
        let pooled_bytes = s.dlrm.pooled_bytes(s.batch_size);
        let params = 2_100_000u64; // dense parameter count ≈ 2.1 M for the
                                   // paper MLPs; only the all-reduce sees it

        // Worst-loaded GPU: lookups/uniques of its assigned tables.
        let mut per_gpu_lookups = vec![0u64; g as usize];
        let mut per_gpu_unique = vec![0u64; g as usize];
        let mut max_dup = 0u64;
        for (t, bag) in batch.bags() {
            let owner = t % g as usize;
            per_gpu_lookups[owner] += bag.total_lookups() as u64;
            per_gpu_unique[owner] += bag.unique_ids().len() as u64;
            max_dup = max_dup.max(timing::max_dup_count(bag));
        }
        let lookups = per_gpu_lookups.iter().copied().max().unwrap_or(0);
        let uniques = per_gpu_unique.iter().copied().max().unwrap_or(0);

        // [0] Embedding forward on the owning GPU: gather + pooled reduce.
        let fwd = Traffic {
            gpu_random_read_bytes: primitives::gather_bytes(lookups, dim),
            gpu_stream_write_bytes: (tables_per_gpu * s.batch_size as u64) * rb,
            gpu_ops: 2 * tables_per_gpu as u32,
            ..Traffic::ZERO
        };
        // [1] All-to-all of pooled embeddings (forward) and their
        //     gradients (backward): each byte crosses the fabric once per
        //     direction, minus the local fraction.
        let a2a = Traffic {
            nvlink_bytes: 2 * pooled_bytes * (g - 1) / g,
            ..Traffic::ZERO
        };
        // [2] Data-parallel dense training: per-GPU batch shard, full
        //     kernel count (launches do not shrink), plus the ring
        //     all-reduce of MLP gradients.
        let dense = Traffic {
            gpu_flops: s.dlrm.train_flops(s.batch_size) / g,
            gpu_ops: s.dlrm.train_kernel_count(),
            gpu_stream_read_bytes: 2 * pooled_bytes / g,
            gpu_stream_write_bytes: 2 * pooled_bytes / g,
            nvlink_bytes: 2 * params * 4 * (g - 1) / g,
            ..Traffic::ZERO
        };
        // [3] Embedding backward on the owning GPU: duplicate → coalesce →
        //     scatter at HBM speed, serialized on hot-row conflicts.
        let coalesce = primitives::coalesce_bytes(lookups, dim);
        let bwd = Traffic {
            gpu_stream_write_bytes: primitives::duplicate_bytes(lookups, dim)
                + (coalesce - coalesce / 2),
            gpu_stream_read_bytes: coalesce / 2,
            gpu_random_read_bytes: uniques * rb,
            gpu_random_write_bytes: uniques * rb,
            gpu_ops: 5 * tables_per_gpu as u32,
            ..Traffic::ZERO
        };

        vec![
            self.cost.traffic_time(&fwd),
            self.cost.traffic_time(&a2a),
            self.cost.traffic_time(&dense) + self.sync_overhead,
            self.cost.traffic_time(&bwd) + timing::contention_time(max_dup, s.dim),
        ]
    }
}

impl TrainingSystem for MultiGpuSystem {
    fn name(&self) -> &'static str {
        "8-GPU (GPU-only)"
    }

    fn simulate(&mut self, batches: &[SparseBatch]) -> Result<SystemReport, SystemError> {
        self.shape.validate().map_err(SystemError::Shape)?;
        if self.gpus < 2 {
            return Err(SystemError::Shape(
                "multi-GPU comparator needs num_gpus ≥ 2 (use SystemSpec::p3_16xlarge)".to_owned(),
            ));
        }
        let times: Vec<Vec<SimTime>> = batches.iter().map(|b| self.stage_times(b)).collect();
        Ok(SystemReport::from_sequential_stages(
            self.name(),
            vec![
                "Embedding forward".to_owned(),
                "All-to-all".to_owned(),
                "Dense + all-reduce".to_owned(),
                "Embedding backward".to_owned(),
            ],
            vec![
                Resource::Gpu,
                Resource::NvLink,
                Resource::Gpu,
                Resource::Gpu,
            ],
            times,
            &self.power,
            0,
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tracegen::{LocalityProfile, TraceGenerator};

    fn run(profile: LocalityProfile) -> SystemReport {
        let shape = ModelShape::paper_default();
        let tc = shape.trace_config(profile, 3);
        let batches = TraceGenerator::new(tc).take_batches(3);
        let mut sys = MultiGpuSystem::new(shape, SystemSpec::p3_16xlarge());
        sys.simulate(&batches).expect("simulate")
    }

    #[test]
    #[cfg_attr(debug_assertions, ignore = "paper-scale: run with --release")]
    fn paper_scale_iteration_lands_in_table1_band() {
        // Table I: 8-GPU iteration times 16.1–18.6 ms.
        let r = run(LocalityProfile::Random);
        let ms = r.iteration_time.as_millis();
        assert!((10.0..26.0).contains(&ms), "8-GPU iteration {ms} ms");
    }

    #[test]
    #[cfg_attr(debug_assertions, ignore = "paper-scale: run with --release")]
    fn high_locality_is_slower_due_to_contention() {
        // Table I's counter-intuitive trend: the GPU-only system slows
        // *down* with locality (hot-row atomic serialization).
        let rand = run(LocalityProfile::Random).iteration_time;
        let high = run(LocalityProfile::High).iteration_time;
        assert!(
            high > rand,
            "high locality {high} should exceed random {rand}"
        );
        let delta_ms = (high - rand).as_millis();
        assert!((0.2..8.0).contains(&delta_ms), "delta {delta_ms} ms");
    }

    #[test]
    fn single_gpu_spec_rejected() {
        let shape = ModelShape::paper_default();
        let mut sys = MultiGpuSystem::new(shape, SystemSpec::isca_paper());
        assert!(matches!(sys.simulate(&[]), Err(SystemError::Shape(_))));
    }

    #[test]
    #[cfg_attr(debug_assertions, ignore = "paper-scale: run with --release")]
    fn energy_accounts_for_eight_gpus() {
        let r = run(LocalityProfile::Medium);
        // Eight idle-plus-active GPUs must dwarf the single CPU socket.
        assert!(r.energy_per_iteration.gpu_joules > r.energy_per_iteration.cpu_joules);
    }
}
