//! The baseline hybrid CPU-GPU system (paper Figure 4(a)).
//!
//! All embedding work — forward gather + pooled reduce, backward gradient
//! duplicate/coalesce/scatter — executes against CPU DRAM through
//! framework operators; the GPU only trains the dense MLPs. This is the
//! design the paper's Figure 5 shows spending 77–94 % of its time on the
//! CPU side.

use embeddings::SparseBatch;
use memsim::cost::primitives;
use memsim::pipeline::Resource;
use memsim::{CostModel, PowerModel, SimTime, SystemSpec, Traffic};

use crate::report::{SystemError, SystemReport, TrainingSystem};
use crate::shape::ModelShape;

/// Hybrid CPU-GPU training with no embedding cache.
#[derive(Debug, Clone)]
pub struct HybridCpuGpu {
    shape: ModelShape,
    cost: CostModel,
    power: PowerModel,
    /// Slowdown factor of framework-grade CPU embedding operators relative
    /// to the raw random-access bandwidth model (PyTorch dispatch,
    /// per-table op granularity, imperfect threading). Calibrated to land
    /// the baseline in the paper's 150–200 ms band; see `EXPERIMENTS.md`.
    pub framework_factor: f64,
}

impl HybridCpuGpu {
    /// Creates the baseline for a workload shape on a hardware spec.
    pub fn new(shape: ModelShape, spec: SystemSpec) -> Self {
        HybridCpuGpu {
            shape,
            cost: CostModel::new(spec),
            power: PowerModel::isca_paper(),
            framework_factor: 2.2,
        }
    }

    /// The stage-time vector for one mini-batch.
    fn stage_times(&self, batch: &SparseBatch) -> Vec<SimTime> {
        let s = &self.shape;
        let rb = s.row_bytes();
        let dim = s.dim as u32;
        let total_lookups: u64 = batch.total_lookups() as u64;
        let unique_total: u64 = batch
            .bags()
            .map(|(_, bag)| bag.unique_ids().len() as u64)
            .sum();
        let pooled_bytes = s.dlrm.pooled_bytes(s.batch_size);

        // [1] CPU embedding forward: gather every lookup + write pooled.
        let fwd = Traffic {
            cpu_random_read_bytes: primitives::gather_bytes(total_lookups, dim),
            cpu_stream_write_bytes: pooled_bytes,
            cpu_ops: 2 * s.num_tables as u32,
            ..Traffic::ZERO
        };
        // [2] Pooled embeddings + dense features cross PCIe.
        let h2d = Traffic {
            pcie_h2d_bytes: pooled_bytes + (s.batch_size * s.dlrm.dense_dim * 4) as u64,
            pcie_ops: 1,
            ..Traffic::ZERO
        };
        // [3] GPU dense training (MLPs + interaction + loss).
        let gpu = Traffic {
            gpu_flops: s.dlrm.train_flops(s.batch_size),
            gpu_ops: s.dlrm.train_kernel_count(),
            gpu_stream_read_bytes: 2 * pooled_bytes,
            gpu_stream_write_bytes: 2 * pooled_bytes,
            ..Traffic::ZERO
        };
        // [4] Pooled-embedding gradients return.
        let d2h = Traffic {
            pcie_d2h_bytes: pooled_bytes,
            pcie_ops: 1,
            ..Traffic::ZERO
        };
        // [5] CPU embedding backward: duplicate → coalesce → scatter.
        let coalesce = primitives::coalesce_bytes(total_lookups, dim);
        let bwd = Traffic {
            cpu_stream_write_bytes: primitives::duplicate_bytes(total_lookups, dim)
                + (coalesce - coalesce / 2),
            cpu_stream_read_bytes: coalesce / 2,
            cpu_random_read_bytes: unique_total * rb,
            cpu_random_write_bytes: unique_total * rb,
            cpu_ops: 3 * s.num_tables as u32,
            ..Traffic::ZERO
        };

        vec![
            self.cost.traffic_time(&fwd) * self.framework_factor,
            self.cost.traffic_time(&h2d),
            self.cost.traffic_time(&gpu),
            self.cost.traffic_time(&d2h),
            self.cost.traffic_time(&bwd) * self.framework_factor,
        ]
    }

    /// Indices of the Figure 5 grouping:
    /// `(CPU embedding forward, CPU embedding backward, GPU-side)`.
    pub const FIG5_GROUPS: [(&'static str, &'static [usize]); 3] = [
        ("CPU embedding forward", &[0]),
        ("CPU embedding backward", &[4]),
        ("GPU", &[1, 2, 3]),
    ];
}

impl TrainingSystem for HybridCpuGpu {
    fn name(&self) -> &'static str {
        "Hybrid CPU-GPU"
    }

    fn simulate(&mut self, batches: &[SparseBatch]) -> Result<SystemReport, SystemError> {
        self.shape.validate().map_err(SystemError::Shape)?;
        let times: Vec<Vec<SimTime>> = batches.iter().map(|b| self.stage_times(b)).collect();
        Ok(SystemReport::from_sequential_stages(
            self.name(),
            vec![
                "CPU embedding forward".to_owned(),
                "Pooled H2D".to_owned(),
                "GPU dense".to_owned(),
                "Grad D2H".to_owned(),
                "CPU embedding backward".to_owned(),
            ],
            vec![
                Resource::CpuMem,
                Resource::PcieH2D,
                Resource::Gpu,
                Resource::PcieD2H,
                Resource::CpuMem,
            ],
            times,
            &self.power,
            0, // no cache → no warm-up transient
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tracegen::{LocalityProfile, TraceGenerator};

    fn paper_run(profile: LocalityProfile, n: usize) -> SystemReport {
        let shape = ModelShape::paper_default();
        let tc = shape.trace_config(profile, 3);
        let batches = TraceGenerator::new(tc).take_batches(n);
        let mut sys = HybridCpuGpu::new(shape, SystemSpec::isca_paper());
        sys.simulate(&batches).expect("simulate")
    }

    #[test]
    #[cfg_attr(debug_assertions, ignore = "paper-scale: run with --release")]
    fn paper_scale_iteration_lands_in_figure5_band() {
        // Figure 5 hybrid bars: ≈150–200 ms per iteration.
        let r = paper_run(LocalityProfile::Random, 3);
        let ms = r.iteration_time.as_millis();
        assert!((120.0..260.0).contains(&ms), "hybrid iteration {ms} ms");
    }

    #[test]
    #[cfg_attr(debug_assertions, ignore = "paper-scale: run with --release")]
    fn cpu_side_dominates() {
        // The paper's motivating observation: 77–94 % of hybrid training
        // time is CPU-side embedding work.
        let r = paper_run(LocalityProfile::Medium, 3);
        let grouped = r.grouped_breakdown(&HybridCpuGpu::FIG5_GROUPS);
        let cpu = grouped[0].1 + grouped[1].1;
        let total: SimTime = grouped.iter().map(|g| g.1).sum();
        let share = cpu / total;
        assert!(share > 0.7, "CPU share {share}");
    }

    #[test]
    #[cfg_attr(debug_assertions, ignore = "paper-scale: run with --release")]
    fn backward_costs_more_than_forward() {
        let r = paper_run(LocalityProfile::Random, 3);
        let g = r.grouped_breakdown(&HybridCpuGpu::FIG5_GROUPS);
        assert!(g[1].1 > g[0].1, "bwd {} vs fwd {}", g[1].1, g[0].1);
    }

    #[test]
    #[cfg_attr(debug_assertions, ignore = "paper-scale: run with --release")]
    fn locality_barely_matters_without_a_cache() {
        // No cache → only the unique-row count (scatter volume) changes.
        let rand = paper_run(LocalityProfile::Random, 3).iteration_time;
        let high = paper_run(LocalityProfile::High, 3).iteration_time;
        let ratio = rand / high;
        assert!((0.9..2.0).contains(&ratio), "ratio {ratio}");
    }

    #[test]
    #[cfg_attr(debug_assertions, ignore = "paper-scale: run with --release")]
    fn energy_is_positive_and_cpu_heavy() {
        let r = paper_run(LocalityProfile::Medium, 3);
        let e = r.energy_per_iteration;
        assert!(e.cpu_joules > 0.0 && e.gpu_joules > 0.0);
    }
}
